(* Command-line driver regenerating every measured figure/table of the
   paper (see DESIGN.md for the experiment index):

     rtrt datasets            Section 2.4 dataset table
     rtrt figure6 / figure7   normalized executor time (Power3 / P4)
     rtrt figure8 / figure9   inspector amortization
     rtrt figure16            remap-once overhead reduction
     rtrt figure17            cache-size-target parameter sweep
     rtrt symbolic            Section 5 symbolic composition report
     rtrt codegen             Figures 10-15 generated pseudo-code
                              (--plan also prints the Tier B executor)
     rtrt gs                  Gauss-Seidel sparse tiling (E-GS)
     rtrt guide               Section 7 runtime composition selection
     rtrt ablations           design-choice ablations A1-A9
     rtrt raw                 absolute counts for one configuration
     rtrt autotune            cost-model plan search for one configuration
     rtrt churn               repair-vs-cold re-inspection under graph churn
     rtrt bench               wall-clock tables
                              (--only hotpath|inspector|par|autotune|churn)
     rtrt bench-diff          regression gate between two BENCH_*.json files
     rtrt json                one figure's rows as JSON (jq-ready)
     rtrt trace-report        span-tree summary of a JSONL trace
     rtrt all                 the figure suite end to end

   Every command honours RTRT_TRACE (pretty | jsonl[:PATH]) and the
   --trace flag; see the README's Observability section. *)

open Cmdliner

let config_of ?(domains = 1) ?cache_dir ~scale ~steps () =
  let plan_cache =
    match cache_dir with
    | Some d when String.trim d <> "" ->
      Some (Rtrt_plancache.Cache.create ~dir:(String.trim d) ())
    | _ -> None
  in
  {
    Harness.Figures.scale;
    trace_steps = steps;
    wall_steps = max steps 3;
    domains;
    plan_cache;
  }

let trace_arg =
  let doc =
    "Trace the run (pretty sink on stderr). The RTRT_TRACE environment \
     variable (pretty | jsonl[:PATH] | off) takes precedence when set."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let setup_trace cli_trace =
  Rtrt_obs.Config.init
    ~default:(if cli_trace then Rtrt_obs.Config.Pretty else Rtrt_obs.Config.Off)
    ()

let specialize_arg =
  let doc =
    "Tier B executor specialization: compile each frozen schedule into a \
     straight-line native executor (ocamlopt -shared + Dynlink) and run \
     that instead of the interpreted walk. Equivalent to \
     RTRT_SPECIALIZE=1. Falls back to the shape-specialized executor when \
     no OCaml toolchain is available. Compiled modules are cached on disk \
     and verified bitwise against the interpreted executor."
  in
  Arg.(value & flag & info [ "specialize" ] ~doc)

let setup_specialize specialize =
  if specialize then Compose.Specialize.set_enabled true

let scale_arg =
  let doc =
    "Dataset scale divisor: node counts are the paper's divided by this \
     (1 = full size)."
  in
  Arg.(value & opt int 16 & info [ "scale" ] ~docv:"N" ~doc)

let steps_arg =
  let doc = "Time steps measured by the cache model." in
  Arg.(value & opt int 2 & info [ "steps" ] ~docv:"S" ~doc)

let domains_arg =
  let doc =
    "OCaml domains for parallel tiled execution (default: RTRT_DOMAINS or \
     1). With more than one, Full-growth sparse-tiled plans also run on a \
     domain pool and report measured speedup next to the modeled makespan."
  in
  Arg.(
    value
    & opt int (Rtrt_par.Pool.domains_from_env ())
    & info [ "domains" ] ~docv:"D" ~doc)

let plan_cache_arg =
  let doc =
    "Directory for the on-disk plan cache. Composed inspector results \
     (reordering functions and tile schedules) are stored there keyed by a \
     content hash of the kernel's access pattern and the plan, and repeated \
     inspections of the same (dataset, plan) pair replay the cached result \
     instead of re-running the inspectors — including across processes. \
     Measurements report hit/miss traffic and cached-vs-uncached \
     amortization."
  in
  let env = Cmd.Env.info "RTRT_PLAN_CACHE_DIR" in
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-cache" ] ~docv:"DIR" ~env ~doc)

let run_datasets ?cache_dir domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  let rows = Harness.Figures.dataset_table ~config () in
  Fmt.pr "Section 2.4 dataset table (generated at scale %d):@." scale;
  Fmt.pr "%a@." Harness.Figures.pp_dataset_table rows

let run_exec ?cache_dir ~machine ~label domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  Fmt.pr "%s: normalized executor time without overhead on %a@." label
    Cachesim.Machine.pp machine;
  let rows = Harness.Figures.executor_time ~machine ~config () in
  Fmt.pr "%a@." Harness.Figures.pp_exec_rows rows

let run_amort ?cache_dir ~machine ~label domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  Fmt.pr "%s: inspector amortization on %a@." label Cachesim.Machine.pp machine;
  let rows = Harness.Figures.amortization ~machine ~config () in
  Fmt.pr "%a@." Harness.Figures.pp_amort_rows rows

let run_remap ?cache_dir domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  Fmt.pr "Figure 16: inspector overhead reduction from remapping once@.";
  let rows =
    Harness.Figures.remap_overhead ~machine:Cachesim.Machine.pentium4 ~config ()
  in
  Fmt.pr "%a@." Harness.Figures.pp_remap_rows rows

let run_sweep ?cache_dir domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  let machine = Cachesim.Machine.pentium4 in
  Fmt.pr "Figure 17: executor time vs cache-size target on %a@."
    Cachesim.Machine.pp machine;
  let rows = Harness.Figures.cache_target_sweep ~machine ~config () in
  Fmt.pr "%a@." Harness.Figures.pp_sweep_rows rows

let machine_of name =
  match Cachesim.Machine.by_name name with
  | Some m -> m
  | None -> Fmt.invalid_arg "unknown machine %s" name

let kernel_of ~scale bench ds =
  let dataset =
    match Datagen.Generators.by_name ~scale ds with
    | Some d -> d
    | None -> Fmt.invalid_arg "unknown dataset %s" ds
  in
  match Kernels.by_name bench with
  | Some f -> (dataset, f dataset)
  | None -> Fmt.invalid_arg "unknown kernel %s" bench

(* The tuned-winner store shares the plan cache's directory when one
   was given (the file prefixes are disjoint). *)
let tuned_of config =
  let dir =
    Option.bind config.Harness.Figures.plan_cache Rtrt_plancache.Cache.dir
  in
  Rtrt_plancache.Tuned.create ?dir ()

let run_raw ?cache_dir bench ds machine_name plan domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  let machine = machine_of machine_name in
  let dataset, kernel = kernel_of ~scale bench ds in
  Fmt.pr "%a; kernel %s (%d B/node)@." Datagen.Dataset.pp dataset bench
    (Kernels.Kernel.bytes_per_node kernel);
  match plan with
  | None ->
    let ms = Harness.Figures.run_suite ~machine ~config kernel in
    List.iter (fun m -> Fmt.pr "%a@." Harness.Experiment.pp_measurement m) ms
  | Some which ->
    Harness.Figures.with_config_pool ~config @@ fun pool ->
    let cache = config.Harness.Figures.plan_cache in
    let plan =
      if which = "auto" then begin
        let tuned = tuned_of config in
        let result =
          Harness.Autotune.tune ?cache ?pool ~tuned
            ~trace_steps:config.Harness.Figures.trace_steps ~machine kernel
        in
        Fmt.pr "%a@." Harness.Autotune.pp_result result;
        result.Harness.Autotune.at_winner
      end
      else
        let named =
          List.filter
            (fun p -> Compose.Plan.name p = which)
            (Harness.Autotune.candidates_for ~machine kernel)
        in
        match named with
        | p :: _ -> p
        | [] -> Fmt.invalid_arg "unknown plan %s (try rtrt autotune)" which
    in
    let m =
      Harness.Experiment.measure ?cache ?pool
        ~trace_steps_n:config.Harness.Figures.trace_steps
        ~wall_steps:config.Harness.Figures.wall_steps ~machine ~plan kernel
    in
    Fmt.pr "%a@." Harness.Experiment.pp_measurement m

let run_autotune ?cache_dir bench ds machine_name domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  let machine = machine_of machine_name in
  let dataset, kernel = kernel_of ~scale bench ds in
  Fmt.pr "Autotune: %a; kernel %s on %a@." Datagen.Dataset.pp dataset bench
    Cachesim.Machine.pp machine;
  Harness.Figures.with_config_pool ~config @@ fun pool ->
  let tuned = tuned_of config in
  let result =
    Harness.Autotune.tune
      ?cache:config.Harness.Figures.plan_cache ?pool ~tuned
      ~trace_steps:config.Harness.Figures.trace_steps ~machine kernel
  in
  Fmt.pr "%a@." Harness.Autotune.pp_result result

let run_ablations ?cache_dir domains scale steps =
  ignore domains;
  let config = config_of ?cache_dir ~scale ~steps () in
  Fmt.pr "Ablations (see DESIGN.md section 5):@.";
  List.iter
    (Fmt.pr "%a" Harness.Ablations.pp_rows)
    (Harness.Ablations.all ~machine:Cachesim.Machine.pentium4 ~config ())

let run_symbolic () =
  Fmt.pr "Section 5: symbolic composition for simplified moldyn@.@.";
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  Fmt.pr "plan: %a@.@." Compose.Plan.pp plan;
  let st =
    Compose.Symbolic.apply
      (Compose.Symbolic.create Compose.Symbolic.moldyn_program)
      plan
  in
  Fmt.pr "%a@." Compose.Symbolic.pp_report st

let run_gs ?cache_dir domains scale steps =
  ignore cache_dir;
  ignore steps;
  Rtrt_obs.Span.with_ ~name:"gs.run"
    ~attrs:[ ("scale", Rtrt_obs.Json.Int scale) ]
  @@ fun () ->
  let dataset = Datagen.Generators.foil ~scale () in
  let graph = Datagen.Dataset.to_graph dataset in
  let n = Irgraph.Csr.num_nodes graph in
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 13)) in
  let slab = 3 and slabs = 8 in
  let partition =
    Rtrt_obs.Span.with_ ~name:"gs.partition" (fun () ->
        Irgraph.Partition.gpart graph ~part_size:32)
  in
  let graph', f', _sigma, seed =
    Rtrt_obs.Span.with_ ~name:"gs.renumber" (fun () ->
        Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition)
  in
  let tiling =
    Rtrt_obs.Span.with_ ~name:"gs.grow" (fun () ->
        Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep:(slab / 2)
          ~sweeps:slab)
  in
  let machine = Cachesim.Machine.pentium4 in
  let misses name run =
    Rtrt_obs.Span.with_ ~name @@ fun () ->
    let t = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
    let layout = Kernels.Gauss_seidel.layout t in
    let hierarchy = Cachesim.Machine.hierarchy machine in
    run t ~layout ~access:(Cachesim.Hierarchy.access hierarchy);
    Cachesim.Hierarchy.publish_metrics hierarchy;
    Cachesim.Hierarchy.l1_misses hierarchy
  in
  let plain =
    misses "gs.run_plain" (fun t ~layout ~access ->
        Kernels.Gauss_seidel.run_traced t ~sweeps:(slab * slabs) ~layout ~access)
  in
  let tiled =
    misses "gs.run_tiled" (fun t ~layout ~access ->
        Kernels.Gauss_seidel.run_tiled_traced ~slabs t tiling ~layout ~access)
  in
  Fmt.pr
    "Gauss-Seidel sparse tiling (E-GS) on %a, %d sweeps in %d-sweep slabs:@."
    Cachesim.Machine.pp machine (slab * slabs) slab;
  Fmt.pr "  plain %d misses, tiled %d misses (%.0f%% fewer), %d tiles, \
          constraints ok: %b@."
    plain tiled
    (100.0 *. (1.0 -. (float_of_int tiled /. float_of_int plain)))
    tiling.Kernels.Gauss_seidel.n_tiles
    (Kernels.Gauss_seidel.check_constraints graph' tiling = []);
  if domains > 1 then
    Rtrt_par.Pool.with_pool ~domains @@ fun pool ->
    let dag = Kernels.Gauss_seidel.tile_dag graph' tiling in
    let serial = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
    let par_t = Kernels.Gauss_seidel.copy serial in
    Kernels.Gauss_seidel.run_tiled serial tiling;
    Kernels.Gauss_seidel.run_tiled_par ~pool par_t tiling dag;
    let tiled_eq = par_t.Kernels.Gauss_seidel.u = serial.Kernels.Gauss_seidel.u in
    Fmt.pr
      "  parallel tiles on %d domains: %a, modeled speedup %.2fx, bitwise \
       equal: %b@."
      domains Reorder.Tile_par.pp dag
      (Reorder.Tile_par.speedup dag ~processors:domains)
      tiled_eq;
    let w =
      Reorder.Wavefront.run (Kernels.Gauss_seidel.wavefront_preds graph')
    in
    let plain_t = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
    let wave_t = Kernels.Gauss_seidel.copy plain_t in
    Kernels.Gauss_seidel.run_plain plain_t ~sweeps:slab;
    Kernels.Gauss_seidel.run_wavefront_par ~pool wave_t w ~sweeps:slab;
    Fmt.pr "  parallel wavefront: %a, bitwise equal: %b@." Reorder.Wavefront.pp
      w
      (wave_t.Kernels.Gauss_seidel.u = plain_t.Kernels.Gauss_seidel.u)

let run_guide bench ds budget scale steps =
  let machine = Cachesim.Machine.pentium4 in
  let dataset =
    match Datagen.Generators.by_name ~scale ds with
    | Some d -> d
    | None -> Fmt.invalid_arg "unknown dataset %s" ds
  in
  let kernel =
    match Kernels.by_name bench with
    | Some f -> f dataset
    | None -> Fmt.invalid_arg "unknown kernel %s" bench
  in
  let plans =
    Harness.Figures.suite_for ~machine kernel
  in
  Fmt.pr
    "Guidance (Section 7): ranking compositions for %s/%s over %d outer      iterations on %a@.@."
    bench ds budget Cachesim.Machine.pp machine;
  let ranking =
    Harness.Guidance.select ~trace_steps:steps ~machine ~steps_budget:budget
      ~plans kernel
  in
  Fmt.pr "%a" Harness.Guidance.pp_ranking ranking

let run_export ?cache_dir dir domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Fmt.pr "wrote %s@." path
  in
  List.iter
    (fun machine ->
      let tag = machine.Cachesim.Machine.name in
      write
        (Fmt.str "executor_time_%s.csv" tag)
        (Harness.Figures.csv_exec_rows
           (Harness.Figures.executor_time ~machine ~config ()));
      write
        (Fmt.str "amortization_%s.csv" tag)
        (Harness.Figures.csv_amort_rows
           (Harness.Figures.amortization ~machine ~config ())))
    [ Cachesim.Machine.power3; Cachesim.Machine.pentium4 ];
  write "cache_target_sweep_pentium4.csv"
    (Harness.Figures.csv_sweep_rows
       (Harness.Figures.cache_target_sweep ~machine:Cachesim.Machine.pentium4
          ~config ()))

let run_json ?cache_dir figure domains scale steps =
  let config = config_of ?cache_dir ~domains ~scale ~steps () in
  let module F = Harness.Figures in
  let rows =
    match figure with
    | "datasets" -> F.json_dataset_rows (F.dataset_table ~config ())
    | "figure6" ->
      F.json_exec_rows
        (F.executor_time ~machine:Cachesim.Machine.power3 ~config ())
    | "figure7" ->
      F.json_exec_rows
        (F.executor_time ~machine:Cachesim.Machine.pentium4 ~config ())
    | "figure8" ->
      F.json_amort_rows
        (F.amortization ~machine:Cachesim.Machine.power3 ~config ())
    | "figure9" ->
      F.json_amort_rows
        (F.amortization ~machine:Cachesim.Machine.pentium4 ~config ())
    | "figure16" ->
      F.json_remap_rows
        (F.remap_overhead ~machine:Cachesim.Machine.pentium4 ~config ())
    | "figure17" ->
      F.json_sweep_rows
        (F.cache_target_sweep ~machine:Cachesim.Machine.pentium4 ~config ())
    | f ->
      Fmt.invalid_arg
        "unknown figure %s (expected datasets | figure6 | figure7 | figure8 \
         | figure9 | figure16 | figure17)"
        f
  in
  print_endline
    (Rtrt_obs.Json.to_string
       (Rtrt_obs.Json.Obj
          [
            ("figure", Rtrt_obs.Json.String figure);
            ("scale", Rtrt_obs.Json.Int scale);
            ("trace_steps", Rtrt_obs.Json.Int steps);
            ("rows", rows);
          ]))

let print_trace_report events =
  Fmt.pr "Span summary (self = total minus child spans):@.%a"
    Rtrt_obs.Report.pp_summary
    (Rtrt_obs.Report.summarize events);
  let ms = Rtrt_obs.Report.metrics events in
  if ms <> [] then begin
    Fmt.pr "@.Counters and gauges:@.";
    List.iter
      (fun (m : Rtrt_obs.Sink.metric) ->
        Fmt.pr "  %-32s %g@." m.Rtrt_obs.Sink.m_name m.Rtrt_obs.Sink.m_value)
      ms
  end

let run_trace_report file scale steps =
  match file with
  | Some path ->
    let events =
      try Rtrt_obs.Report.events_of_jsonl path
      with Sys_error msg ->
        Fmt.epr "rtrt: cannot read trace: %s@." msg;
        exit 1
    in
    Fmt.pr "Trace report for %s@.@." path;
    print_trace_report events
  | None ->
    (* No trace file given: capture one instrumented suite run
       (moldyn/mol1, Pentium 4 model) in memory and report it. *)
    let config = config_of ~scale ~steps () in
    let sink, events = Rtrt_obs.Sink.memory () in
    Rtrt_obs.set_sink sink;
    let kernel =
      match
        ( Kernels.by_name "moldyn",
          Datagen.Generators.by_name ~scale "mol1" )
      with
      | Some f, Some d -> f d
      | _ -> assert false
    in
    ignore
      (Harness.Figures.run_suite ~machine:Cachesim.Machine.pentium4 ~config
         kernel);
    Rtrt_obs.Metrics.flush ();
    Rtrt_obs.disable ();
    Fmt.pr
      "Trace report for a fresh moldyn/mol1 suite run (scale %d; pass a \
       JSONL file to report an existing trace)@.@."
      scale;
    print_trace_report (events ())

let run_bench only out domains scale =
  let path default = Option.value out ~default in
  match only with
  | "par" ->
    let out = path "BENCH_PAR.json" in
    let config = config_of ~domains ~scale ~steps:2 () in
    let report =
      Harness.Parbench.measure ~machine:Cachesim.Machine.pentium4 ~config ()
    in
    Fmt.pr "%a" Harness.Parbench.pp_report report;
    Harness.Parbench.write_json ~path:out report;
    Fmt.pr "wrote %s@." out
  | "hotpath" ->
    let out = path "BENCH_HOTPATH.json" in
    let report = Harness.Hotpath.measure ~scale () in
    Fmt.pr "%a" Harness.Hotpath.pp_report report;
    Harness.Hotpath.write_json ~path:out report;
    Fmt.pr "wrote %s@." out
  | "inspector" ->
    let out = path "BENCH_INSPECTOR.json" in
    let report = Harness.Inspctime.measure ~scale () in
    Fmt.pr "%a" Harness.Inspctime.pp_report report;
    if not (Harness.Inspctime.identical report) then
      Fmt.pr "WARNING: a fused variant diverged from the serial baseline@.";
    Harness.Inspctime.write_json ~path:out report;
    Fmt.pr "wrote %s@." out
  | "autotune" ->
    let out = path "BENCH_AUTOTUNE.json" in
    let config = config_of ~domains ~scale ~steps:2 () in
    let report = Harness.Autotune.measure ~config () in
    Fmt.pr "%a" Harness.Autotune.pp_report report;
    Harness.Autotune.write_json ~path:out report;
    Fmt.pr "wrote %s@." out
  | "churn" ->
    let out = path "BENCH_CHURN.json" in
    let report = Harness.Churnbench.measure ~scale ~domains () in
    Fmt.pr "%a" Harness.Churnbench.pp_report report;
    Harness.Churnbench.write_json ~path:out report;
    Fmt.pr "wrote %s@." out
  | o ->
    Fmt.invalid_arg
      "unknown bench table %s (expected hotpath, inspector, par, autotune, \
       or churn)"
      o

let run_churn ?cache_dir domains scale steps =
  ignore cache_dir;
  let report =
    Harness.Churnbench.measure ~rounds:(max 2 steps) ~scale ~domains ()
  in
  Fmt.pr
    "Repair vs cold re-inspection under graph churn (degree-preserving \
     rewires):@.";
  Fmt.pr "%a" Harness.Churnbench.pp_report report

let run_bench_diff old_path new_path tolerance ratios_only all =
  match
    Harness.Benchdiff.compare_files ~tolerance ~ratios_only ~old_path
      ~new_path ()
  with
  | rows ->
    Fmt.pr "bench-diff %s -> %s (tolerance %.0f%%%s)@.@." old_path new_path
      (tolerance *. 100.0)
      (if ratios_only then ", ratios only" else "");
    Harness.Benchdiff.pp_table ~all Fmt.stdout rows;
    if Harness.Benchdiff.has_regression rows then begin
      Fmt.epr "rtrt: bench-diff: regression detected@.";
      exit 1
    end
  | exception Failure msg ->
    Fmt.epr "rtrt: bench-diff: %s@." msg;
    exit 2

let run_codegen bench ds plan_name scale =
  let program =
    match Compose.Symbolic.program_by_name bench with
    | Some p -> p
    | None -> Fmt.invalid_arg "unknown program %s" bench
  in
  let plan =
    match plan_name with
    | None ->
      Compose.Plan.with_fst ~seed_part_size:64
        Compose.Plan.cpack_lexgroup_twice
    | Some which -> (
      let _, kernel = kernel_of ~scale bench ds in
      match
        List.filter
          (fun p -> Compose.Plan.name p = which)
          (Harness.Autotune.candidates_for
             ~machine:Cachesim.Machine.pentium4 kernel)
      with
      | p :: _ -> p
      | [] -> Fmt.invalid_arg "unknown plan %s (try rtrt autotune)" which)
  in
  Fmt.pr
    "Figures 10-15: generated specialized inspectors and executor for %s,@.\
     plan %a@.@."
    bench Compose.Plan.pp plan;
  let st = Compose.Symbolic.apply (Compose.Symbolic.create program) plan in
  print_string (Compose.Codegen.full_report st ~program);
  (* With an explicit plan, additionally freeze the schedule on the
     real dataset and print the Tier B executor module the specializer
     would compile for it. *)
  match plan_name with
  | None -> ()
  | Some _ -> (
    let _, kernel = kernel_of ~scale bench ds in
    let result = Harness.Experiment.inspect plan kernel in
    match result.Compose.Inspector.schedule with
    | None ->
      Fmt.pr
        "@.(plan does not sparse-tile: no frozen schedule, no Tier B \
         executor)@."
    | Some sched -> (
      match
        Compose.Specialize.dump_source result.Compose.Inspector.kernel sched
      with
      | None ->
        Fmt.pr
          "@.(Tier B emitter declined this schedule — source budget \
           exceeded)@."
      | Some src ->
        Fmt.pr
          "@.Tier B specialized executor (dataset %s, scale %d; what \
           --specialize compiles and loads):@.@."
          ds scale;
        print_string src))

let run_all ?cache_dir domains scale steps =
  run_datasets ?cache_dir domains scale steps;
  run_symbolic ();
  run_exec ?cache_dir ~machine:Cachesim.Machine.power3 ~label:"Figure 6"
    domains scale steps;
  run_exec ?cache_dir ~machine:Cachesim.Machine.pentium4 ~label:"Figure 7"
    domains scale steps;
  run_amort ?cache_dir ~machine:Cachesim.Machine.power3 ~label:"Figure 8"
    domains scale steps;
  run_amort ?cache_dir ~machine:Cachesim.Machine.pentium4 ~label:"Figure 9"
    domains scale steps;
  run_remap ?cache_dir domains scale steps;
  run_sweep ?cache_dir domains scale steps

let cmd_of ~name ~doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun trace specialize cache_dir domains scale steps ->
          setup_trace trace;
          setup_specialize specialize;
          f ?cache_dir domains scale steps)
      $ trace_arg $ specialize_arg $ plan_cache_arg $ domains_arg $ scale_arg
      $ steps_arg)

let datasets_cmd = cmd_of ~name:"datasets" ~doc:"Section 2.4 table" run_datasets

let figure6_cmd =
  cmd_of ~name:"figure6" ~doc:"Normalized executor time, Power3 model"
    (run_exec ~machine:Cachesim.Machine.power3 ~label:"Figure 6")

let figure7_cmd =
  cmd_of ~name:"figure7" ~doc:"Normalized executor time, Pentium 4 model"
    (run_exec ~machine:Cachesim.Machine.pentium4 ~label:"Figure 7")

let figure8_cmd =
  cmd_of ~name:"figure8" ~doc:"Inspector amortization, Power3 model"
    (run_amort ~machine:Cachesim.Machine.power3 ~label:"Figure 8")

let figure9_cmd =
  cmd_of ~name:"figure9" ~doc:"Inspector amortization, Pentium 4 model"
    (run_amort ~machine:Cachesim.Machine.pentium4 ~label:"Figure 9")

let figure16_cmd =
  cmd_of ~name:"figure16" ~doc:"Remap-once overhead reduction" run_remap

let figure17_cmd =
  cmd_of ~name:"figure17" ~doc:"Cache-size-target sweep" run_sweep

let raw_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  let ds = Arg.(value & opt string "mol1" & info [ "dataset" ] ~docv:"DATA") in
  let machine =
    Arg.(value & opt string "pentium4" & info [ "machine" ] ~docv:"M")
  in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Measure a single plan instead of the whole standard suite: a \
             plan name from the candidate space (e.g. $(b,GL+FST)) or \
             $(b,auto) to run the autotuner and measure its winner.")
  in
  Cmd.v
    (Cmd.info "raw" ~doc:"Raw measurements for one kernel/dataset/machine")
    Term.(
      const
        (fun trace specialize cache_dir bench ds machine plan domains scale
             steps ->
          setup_trace trace;
          setup_specialize specialize;
          run_raw ?cache_dir bench ds machine plan domains scale steps)
      $ trace_arg $ specialize_arg $ plan_cache_arg $ bench $ ds $ machine
      $ plan $ domains_arg $ scale_arg $ steps_arg)

let autotune_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  let ds = Arg.(value & opt string "mol1" & info [ "dataset" ] ~docv:"DATA") in
  let machine =
    Arg.(value & opt string "pentium4" & info [ "machine" ] ~docv:"M")
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Search the validated plan space for one kernel/dataset/machine: \
          score every candidate with the cache model (plus the makespan \
          model when --domains > 1) and report the winner. With \
          --plan-cache, winners persist on disk and replay on repeat runs.")
    Term.(
      const (fun trace cache_dir bench ds machine domains scale steps ->
          setup_trace trace;
          run_autotune ?cache_dir bench ds machine domains scale steps)
      $ trace_arg $ plan_cache_arg $ bench $ ds $ machine $ domains_arg
      $ scale_arg $ steps_arg)

let ablations_cmd =
  cmd_of ~name:"ablations" ~doc:"Design-choice ablations" run_ablations

let churn_cmd =
  cmd_of ~name:"churn"
    ~doc:
      "Repair composed plans under graph churn instead of re-inspecting: \
       rewire 1/2/5/10% of interactions (degree-preserving), repair the \
       frozen plan incrementally, and compare against a true cold \
       re-inspection (--steps sets the chained churn rounds per cell)."
    run_churn

let gs_cmd = cmd_of ~name:"gs" ~doc:"Gauss-Seidel sparse tiling (E-GS)" run_gs

let export_cmd =
  let dir =
    Arg.(value & opt string "results" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for the CSV files.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write plot-ready CSVs for Figures 6-9 and 17")
    Term.(
      const (fun trace cache_dir dir domains scale steps ->
          setup_trace trace;
          run_export ?cache_dir dir domains scale steps)
      $ trace_arg $ plan_cache_arg $ dir $ domains_arg $ scale_arg $ steps_arg)

let guide_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  let ds = Arg.(value & opt string "mol1" & info [ "dataset" ] ~docv:"DATA") in
  let budget =
    Arg.(value & opt int 100 & info [ "iterations" ] ~docv:"N"
           ~doc:"Outer-loop iterations the application will run.")
  in
  Cmd.v
    (Cmd.info "guide" ~doc:"Section 7 guidance: pick a composition at runtime")
    Term.(
      const (fun trace bench ds budget scale steps ->
          setup_trace trace;
          run_guide bench ds budget scale steps)
      $ trace_arg $ bench $ ds $ budget $ scale_arg $ steps_arg)

let codegen_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  let ds = Arg.(value & opt string "mol1" & info [ "dataset" ] ~docv:"DATA") in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Also print the Tier B specialized executor source for this \
             plan's frozen schedule on the real dataset: a plan name from \
             the candidate space (e.g. $(b,CLCL+FST)). This is the exact \
             OCaml module $(b,--specialize) compiles and Dynlinks.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generated specialized inspector/executor pseudo-code")
    Term.(
      const (fun trace bench ds plan scale ->
          setup_trace trace;
          run_codegen bench ds plan scale)
      $ trace_arg $ bench $ ds $ plan $ scale_arg)

let symbolic_cmd =
  Cmd.v
    (Cmd.info "symbolic" ~doc:"Section 5 symbolic composition report")
    Term.(
      const (fun trace () ->
          setup_trace trace;
          Rtrt_obs.Span.with_ ~name:"symbolic.report" run_symbolic)
      $ trace_arg $ const ())

let json_cmd =
  let figure =
    let names =
      [ "datasets"; "figure6"; "figure7"; "figure8"; "figure9"; "figure16";
        "figure17" ]
    in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [] ~docv:"FIGURE"
          ~doc:
            "One of: datasets, figure6, figure7, figure8, figure9, figure16, \
             figure17.")
  in
  Cmd.v
    (Cmd.info "json"
       ~doc:"Emit one figure's rows as JSON on stdout (pipe into jq)")
    Term.(
      const (fun trace cache_dir figure domains scale steps ->
          setup_trace trace;
          run_json ?cache_dir figure domains scale steps)
      $ trace_arg $ plan_cache_arg $ figure $ domains_arg $ scale_arg
      $ steps_arg)

let bench_cmd =
  let only =
    Arg.(
      value
      & opt
          (enum
             [
               ("hotpath", "hotpath"); ("inspector", "inspector");
               ("par", "par"); ("autotune", "autotune");
               ("churn", "churn");
             ])
          "hotpath"
      & info [ "only" ] ~docv:"TABLE"
          ~doc:
            "Which wall-clock table to run. $(b,hotpath): flat-CSR \
             schedule-walk bandwidth vs the nested reference, moldyn \
             tiled-vs-plain steady state, and the inspector phase breakdown. \
             $(b,inspector): cold-inspection cost, serial vs fused vs \
             fused+pool, with bit-identity checks. $(b,par): serial vs \
             domain-pool tiled execution with the makespan model's \
             prediction (honours --domains / RTRT_DOMAINS). $(b,autotune): \
             cost-model plan search per (bench, dataset, machine) cell with \
             the winner's and the best hand-named plan's wall clocks. \
             $(b,churn): incremental plan repair vs cold re-inspection \
             after rewiring 1/2/5/10% of interactions, with bit-identity \
             checks and steps-to-amortize.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Path for the JSON results (default BENCH_HOTPATH.json, \
             BENCH_INSPECTOR.json, or BENCH_PAR.json, by table).")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Wall-clock hot-path benchmarks")
    Term.(
      const (fun trace specialize only out domains scale ->
          setup_trace trace;
          setup_specialize specialize;
          run_bench only out domains scale)
      $ trace_arg $ specialize_arg $ only $ out $ domains_arg $ scale_arg)

let bench_diff_cmd =
  let old_path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline BENCH_*.json.")
  in
  let new_path =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate BENCH_*.json.")
  in
  let tolerance =
    Arg.(
      value
      & opt float 0.1
      & info [ "tolerance" ] ~docv:"REL"
          ~doc:
            "Relative tolerance before a gated metric's change counts as a \
             regression or improvement (0.1 = 10%).")
  in
  let ratios_only =
    Arg.(
      value
      & flag
      & info [ "ratios-only" ]
          ~doc:
            "Gate only on dimensionless or modeled metrics (speedups, \
             normalized ratios, identity booleans) — absolute timings still \
             print but cannot fail the diff. For CI, where baseline and \
             candidate ran on different machines.")
  in
  let all =
    Arg.(
      value
      & flag
      & info [ "all" ]
          ~doc:"Print every metric row, including unchanged informational ones.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_*.json files metric-by-metric; exit 1 on \
          regression")
    Term.(
      const run_bench_diff $ old_path $ new_path $ tolerance $ ratios_only
      $ all)

let trace_report_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:
            "JSONL trace to summarize (as written by RTRT_TRACE=jsonl:PATH). \
             When omitted, a fresh instrumented moldyn/mol1 suite run is \
             captured and reported.")
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:"Summarize a span trace: total vs self time per span name")
    Term.(const run_trace_report $ file $ scale_arg $ steps_arg)

let all_cmd = cmd_of ~name:"all" ~doc:"Run every experiment" run_all

let () =
  let info =
    Cmd.info "rtrt" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Compile-time Composition of Run-time Data and \
         Iteration Reorderings' (PLDI 2003)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            datasets_cmd; figure6_cmd; figure7_cmd; figure8_cmd; figure9_cmd;
            figure16_cmd; figure17_cmd; symbolic_cmd; raw_cmd; autotune_cmd;
            ablations_cmd; churn_cmd; codegen_cmd; gs_cmd; guide_cmd;
            export_cmd;
            bench_cmd; bench_diff_cmd; json_cmd; trace_report_cmd; all_cmd;
          ]))
