(* The full evaluation pipeline on the moldyn benchmark: every standard
   composition of the paper (base, CPACK, CL, GL, CLCL, and the full
   sparse tiling extensions) measured against both machine models.

   This is Figures 6/7 for one benchmark/dataset pair, with raw counts.

   Run with: dune exec examples/moldyn_pipeline.exe *)

let () =
  let dataset = Datagen.Generators.mol1 ~scale:48 () in
  Fmt.pr "dataset: %a@." Datagen.Dataset.pp dataset;
  let kernel = Kernels.Moldyn.of_dataset dataset in
  Fmt.pr "kernel: moldyn, %d bytes per molecule (the paper's 72)@.@."
    (Kernels.Kernel.bytes_per_node kernel);

  let config =
    { Harness.Figures.scale = 48; trace_steps = 2; wall_steps = 3; domains = 2;
      plan_cache = None }
  in
  List.iter
    (fun machine ->
      Fmt.pr "--- %a ---@." Cachesim.Machine.pp machine;
      let measurements = Harness.Figures.run_suite ~machine ~config kernel in
      List.iter
        (fun m -> Fmt.pr "%a@." Harness.Experiment.pp_measurement m)
        measurements;
      (match Harness.Experiment.normalize measurements with
      | [] -> ()
      | normalized ->
        Fmt.pr "normalized modeled cycles:@.";
        List.iter
          (fun ((m : Harness.Experiment.measurement), cycles, _) ->
            Fmt.pr "  %-10s %.3f@." m.Harness.Experiment.plan_name cycles)
          normalized);
      Fmt.pr "@.")
    [ Cachesim.Machine.power3; Cachesim.Machine.pentium4 ];

  (* The composed inspector's cost and the remap-once saving
     (Section 6 / Figure 16). *)
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  let seconds strategy =
    (Compose.Inspector.run ~strategy plan kernel)
      .Compose.Inspector.inspector_seconds
  in
  let each = seconds Compose.Inspector.Remap_each in
  let once = seconds Compose.Inspector.Remap_once in
  Fmt.pr "inspector for %s: remap-each %.1f ms, remap-once %.1f ms (%.0f%% \
          less)@."
    (Compose.Plan.name plan) (1000.0 *. each) (1000.0 *. once)
    (100.0 *. (each -. once) /. each);

  (* Amortized inspection through the plan cache: the second run with
     the same (dataset, plan) pair replays the cached reordering
     functions instead of re-running the inspectors. *)
  let cache = Rtrt_plancache.Cache.create () in
  let cold = Compose.Inspector.run ~cache plan kernel in
  let warm = Compose.Inspector.run ~cache plan kernel in
  Fmt.pr "plan cache: cold inspection %.1f ms, warm replay %.1f ms@."
    (1000.0 *. cold.Compose.Inspector.inspector_seconds)
    (1000.0 *. warm.Compose.Inspector.inspector_seconds)
