(* Tests for the experiment harness: measurement math (normalization,
   amortization), parameter sizing, and smoke tests of the figure and
   ablation drivers at tiny scale. *)

let mk ?(plan = "p") ?(insp = 1.0) ?(exec = 1.0) ?(cycles = 100.0) () =
  {
    Harness.Experiment.plan_name = plan;
    inspector_seconds = insp;
    executor_seconds_per_step = exec;
    modeled_cycles_per_step = cycles;
    misses_per_step = 10.0;
    accesses_per_step = 100.0;
    miss_ratio = 0.1;
    n_data_remaps = 1;
    n_tiles = 1;
    par = None;
    plancache = None;
    profile = [];
  }

let test_normalize () =
  let base = mk ~plan:"base" ~cycles:200.0 ~exec:2.0 () in
  let other = mk ~plan:"t" ~cycles:100.0 ~exec:1.0 () in
  match Harness.Experiment.normalize [ base; other ] with
  | [ (_, 1.0, 1.0); (m, nc, nw) ] ->
    Alcotest.(check string) "name" "t" m.Harness.Experiment.plan_name;
    Alcotest.(check (float 1e-9)) "cycles ratio" 0.5 nc;
    Alcotest.(check (float 1e-9)) "wall ratio" 0.5 nw
  | _ -> Alcotest.fail "unexpected shape"

let test_normalize_empty () =
  Alcotest.(check int) "empty" 0
    (List.length (Harness.Experiment.normalize []))

let test_amortization () =
  let base = mk ~exec:2.0 () in
  let faster = mk ~insp:3.0 ~exec:1.5 () in
  (match Harness.Experiment.amortization ~base faster with
  | Some steps -> Alcotest.(check (float 1e-9)) "steps" 6.0 steps
  | None -> Alcotest.fail "expected amortization");
  let slower = mk ~insp:3.0 ~exec:2.5 () in
  Alcotest.(check bool) "no savings" true
    (Harness.Experiment.amortization ~base slower = None)

let test_amortization_modeled () =
  let base = mk ~cycles:200.0 () in
  (* 1e6 cycles/s at exec 1.0e-4 s/step... use simple numbers: cycles
     100, exec 1.0 => 100 cycles/s; savings 100 cycles; inspector 2 s
     = 200 cycles => 2 steps. *)
  let m = mk ~insp:2.0 ~exec:1.0 ~cycles:100.0 () in
  match Harness.Experiment.amortization_modeled ~base m with
  | Some steps -> Alcotest.(check (float 1e-6)) "steps" 2.0 steps
  | None -> Alcotest.fail "expected amortization"

let test_sizing () =
  let d = Datagen.Generators.foil ~scale:512 () in
  let kernel = Kernels.Irreg.of_dataset d in
  (* irreg: 16 bytes/node; 8KB target -> 512 nodes/part, seed 128. *)
  Alcotest.(check int) "gpart size" 512
    (Harness.Figures.gpart_size_for ~target_bytes:8192 kernel);
  Alcotest.(check int) "seed size" 128
    (Harness.Figures.seed_size_for ~target_bytes:8192 kernel);
  (* Floors at 16. *)
  Alcotest.(check int) "floor" 16
    (Harness.Figures.seed_size_for ~target_bytes:64 kernel)

let tiny =
  { Harness.Figures.scale = 512; trace_steps = 1; wall_steps = 1; domains = 1;
    plan_cache = None }

let test_dataset_table () =
  let rows = Harness.Figures.dataset_table ~config:tiny () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "nodes positive" true (r.Harness.Figures.gen_nodes > 0);
      Alcotest.(check bool) "paper nodes recorded" true
        (r.Harness.Figures.paper_nodes > 0))
    rows

let test_measure_sanity () =
  let d = Datagen.Generators.foil ~scale:512 () in
  let kernel = Kernels.Irreg.of_dataset d in
  let m =
    Harness.Experiment.measure ~trace_steps_n:1 ~wall_steps:1
      ~machine:Cachesim.Machine.pentium4 ~plan:Compose.Plan.cpack_lexgroup
      kernel
  in
  Alcotest.(check string) "plan name" "CL" m.Harness.Experiment.plan_name;
  Alcotest.(check bool) "positive cycles" true
    (m.Harness.Experiment.modeled_cycles_per_step > 0.0);
  Alcotest.(check bool) "misses <= accesses" true
    (m.Harness.Experiment.misses_per_step
    <= m.Harness.Experiment.accesses_per_step);
  Alcotest.(check int) "one remap" 1 m.Harness.Experiment.n_data_remaps

let test_measure_improves () =
  (* CL must beat base in modeled cycles on the small cache. *)
  let d = Datagen.Generators.foil ~scale:128 () in
  let kernel = Kernels.Irreg.of_dataset d in
  let cycles plan =
    (Harness.Experiment.measure ~trace_steps_n:2 ~wall_steps:1
       ~machine:Cachesim.Machine.pentium4 ~plan kernel)
      .Harness.Experiment.modeled_cycles_per_step
  in
  Alcotest.(check bool) "CL < base" true
    (cycles Compose.Plan.cpack_lexgroup < cycles Compose.Plan.base)

let test_executor_rows_smoke () =
  let rows =
    Harness.Figures.executor_time ~machine:Cachesim.Machine.pentium4
      ~config:tiny ()
  in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "ten plans" 10
        (List.length r.Harness.Figures.per_plan);
      match r.Harness.Figures.per_plan with
      | ("base", 1.0, 1.0) :: _ -> ()
      | _ -> Alcotest.fail "base must normalize to 1.0")
    rows

let test_remap_rows_smoke () =
  let rows =
    Harness.Figures.remap_overhead ~repeats:1
      ~machine:Cachesim.Machine.pentium4 ~config:tiny ()
  in
  Alcotest.(check int) "twelve rows" 12 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "positive times" true
        (r.Harness.Figures.seconds_each > 0.0
        && r.Harness.Figures.seconds_once > 0.0))
    rows

let test_ablations_smoke () =
  let machine = Cachesim.Machine.pentium4 in
  let foil = Option.get (Datagen.Generators.by_name ~scale:512 "foil") in
  let mol = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let checks =
    [
      Harness.Ablations.data_reorderings ~machine ~config:tiny foil;
      Harness.Ablations.seed_partitioning ~machine ~config:tiny foil;
      Harness.Ablations.seed_loop ~machine ~config:tiny mol;
      Harness.Ablations.regrouping ~machine ~config:tiny mol;
      Harness.Ablations.tile_parallelism ~machine ~config:tiny foil;
    ]
  in
  List.iter
    (fun (title, rows) ->
      Alcotest.(check bool) (title ^ " nonempty") true (List.length rows >= 2))
    checks

let test_ablation_regrouping_direction () =
  (* Regrouping must reduce misses for moldyn (9 co-accessed arrays). *)
  let machine = Cachesim.Machine.pentium4 in
  let mol = Option.get (Datagen.Generators.by_name ~scale:128 "mol1") in
  let _, rows = Harness.Ablations.regrouping ~machine ~config:tiny mol in
  match rows with
  | [ grouped; separate; _; _ ] ->
    Alcotest.(check bool) "grouped fewer misses" true
      (grouped.Harness.Ablations.value < separate.Harness.Ablations.value)
  | _ -> Alcotest.fail "unexpected rows"

let test_guidance_ranks () =
  let d = Datagen.Generators.foil ~scale:96 () in
  let kernel = Kernels.Irreg.of_dataset d in
  let machine = Cachesim.Machine.pentium4 in
  let plans = [ Compose.Plan.base; Compose.Plan.cpack_lexgroup ] in
  let ranking =
    Harness.Guidance.select ~trace_steps:1 ~machine ~steps_budget:1_000_000
      ~plans kernel
  in
  Alcotest.(check int) "both ranked" 2 (List.length ranking);
  (* Totals ascend by construction. *)
  (match ranking with
  | [ a; b ] ->
    Alcotest.(check bool) "sorted" true
      (a.Harness.Guidance.total_cycles <= b.Harness.Guidance.total_cycles);
    (* Over a million steps the reordered executor must win. *)
    Alcotest.(check string) "CL wins long runs" "CL"
      (Compose.Plan.name a.Harness.Guidance.plan)
  | _ -> Alcotest.fail "two choices expected");
  (* The winner of a long run has the cheaper per-step executor. *)
  let best =
    Harness.Guidance.best ~trace_steps:1 ~machine ~steps_budget:1_000_000
      ~plans kernel
  in
  Alcotest.(check bool) "positive costs" true
    (best.Harness.Guidance.executor_cycles_per_step > 0.0)

let test_guidance_empty () =
  let d = Datagen.Generators.foil ~scale:512 () in
  let kernel = Kernels.Irreg.of_dataset d in
  Alcotest.check_raises "no plans"
    (Invalid_argument "Guidance.best: no candidate plans") (fun () ->
      ignore
        (Harness.Guidance.best ~machine:Cachesim.Machine.pentium4
           ~steps_budget:1 ~plans:[] kernel))

(* ------------------------------------------------------------------ *)
(* Bench-diff: flattening, direction heuristics, verdicts             *)

let bench_json ~speedup ~seconds ~misses =
  Rtrt_obs.Json.(
    Obj
      [
        ("schema", String "rtrt.bench/1");
        ("scale", Int 1024);
        ( "rows",
          List
            [
              Obj
                [
                  ("bench", String "moldyn");
                  ("plan", String "cpack_lexgroup");
                  ("measured_speedup", Float speedup);
                  ("serial_seconds_per_step", Float seconds);
                  ("misses_per_step", Float misses);
                  ("bitwise_equal", Bool true);
                ];
            ] );
      ])

let find_row rows path =
  match
    List.find_opt (fun r -> r.Harness.Benchdiff.r_path = path) rows
  with
  | Some r -> r
  | None ->
    Alcotest.fail
      (Fmt.str "no row for %s (have: %s)" path
         (String.concat ", "
            (List.map (fun r -> r.Harness.Benchdiff.r_path) rows)))

let row_path = "rows[moldyn/cpack_lexgroup]"
let verdict = Alcotest.testable (fun ppf v ->
    Fmt.string ppf
      (match v with
      | Harness.Benchdiff.Improved -> "improved"
      | Regressed -> "regressed"
      | Equal -> "equal"
      | Neutral -> "neutral"
      | Missing -> "missing"
      | Added -> "added"))
    ( = )

let test_benchdiff_equal () =
  let j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  let rows = Harness.Benchdiff.compare_json j j in
  Alcotest.(check bool) "identical inputs never regress" false
    (Harness.Benchdiff.has_regression rows);
  Alcotest.check verdict "speedup equal" Harness.Benchdiff.Equal
    (find_row rows (row_path ^ ".measured_speedup")).r_verdict;
  (* Informational keys are neutral, never gates. *)
  Alcotest.check verdict "scale is info" Harness.Benchdiff.Neutral
    (find_row rows "scale").r_verdict

let test_benchdiff_regressed () =
  let old_j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  (* Speedup halves (higher-better down) and seconds double
     (lower-better up): both regress. *)
  let new_j = bench_json ~speedup:1.5 ~seconds:1.0 ~misses:100.0 in
  let rows = Harness.Benchdiff.compare_json old_j new_j in
  Alcotest.(check bool) "regression detected" true
    (Harness.Benchdiff.has_regression rows);
  Alcotest.check verdict "speedup regressed" Harness.Benchdiff.Regressed
    (find_row rows (row_path ^ ".measured_speedup")).r_verdict;
  Alcotest.check verdict "seconds regressed" Harness.Benchdiff.Regressed
    (find_row rows (row_path ^ ".serial_seconds_per_step")).r_verdict;
  Alcotest.check verdict "misses unchanged" Harness.Benchdiff.Equal
    (find_row rows (row_path ^ ".misses_per_step")).r_verdict;
  Alcotest.(check int) "two regressions" 2
    (List.length (Harness.Benchdiff.regressions rows))

let test_benchdiff_improved () =
  let old_j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  let new_j = bench_json ~speedup:4.0 ~seconds:0.25 ~misses:50.0 in
  let rows = Harness.Benchdiff.compare_json old_j new_j in
  Alcotest.(check bool) "improvements never gate" false
    (Harness.Benchdiff.has_regression rows);
  Alcotest.check verdict "speedup improved" Harness.Benchdiff.Improved
    (find_row rows (row_path ^ ".measured_speedup")).r_verdict;
  Alcotest.check verdict "seconds improved" Harness.Benchdiff.Improved
    (find_row rows (row_path ^ ".serial_seconds_per_step")).r_verdict

let test_benchdiff_tolerance () =
  let old_j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  (* 5% worse: inside the default 10% tolerance, outside 1%. *)
  let new_j = bench_json ~speedup:2.85 ~seconds:0.5 ~misses:100.0 in
  let lenient = Harness.Benchdiff.compare_json old_j new_j in
  Alcotest.check verdict "within default tolerance" Harness.Benchdiff.Equal
    (find_row lenient (row_path ^ ".measured_speedup")).r_verdict;
  let strict = Harness.Benchdiff.compare_json ~tolerance:0.01 old_j new_j in
  Alcotest.check verdict "outside strict tolerance"
    Harness.Benchdiff.Regressed
    (find_row strict (row_path ^ ".measured_speedup")).r_verdict

let test_benchdiff_boolean_flip () =
  (* bitwise_equal true -> false is a full-magnitude drop in a
     higher-better metric: regression at any tolerance. *)
  let old_j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  let new_j =
    match bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 with
    | Rtrt_obs.Json.Obj kvs ->
      Rtrt_obs.Json.Obj
        (List.map
           (function
             | "rows", Rtrt_obs.Json.List [ Rtrt_obs.Json.Obj row ] ->
               ( "rows",
                 Rtrt_obs.Json.List
                   [
                     Rtrt_obs.Json.Obj
                       (List.map
                          (function
                            | "bitwise_equal", _ ->
                              ("bitwise_equal", Rtrt_obs.Json.Bool false)
                            | kv -> kv)
                          row);
                   ] )
             | kv -> kv)
           kvs)
    | _ -> assert false
  in
  let rows = Harness.Benchdiff.compare_json old_j new_j in
  Alcotest.check verdict "bitwise flip regresses" Harness.Benchdiff.Regressed
    (find_row rows (row_path ^ ".bitwise_equal")).r_verdict

let test_benchdiff_missing_added () =
  let old_j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  let new_j = Rtrt_obs.Json.(Obj [ ("schema", String "rtrt.bench/1"); ("extra", Int 7) ]) in
  let rows = Harness.Benchdiff.compare_json old_j new_j in
  Alcotest.check verdict "dropped metric is Missing" Harness.Benchdiff.Missing
    (find_row rows (row_path ^ ".measured_speedup")).r_verdict;
  Alcotest.check verdict "new metric is Added" Harness.Benchdiff.Added
    (find_row rows "extra").r_verdict;
  (* Missing/Added report but do not gate. *)
  Alcotest.(check bool) "no regression" false
    (Harness.Benchdiff.has_regression rows)

let test_benchdiff_ratios_only () =
  let old_j = bench_json ~speedup:3.0 ~seconds:0.5 ~misses:100.0 in
  (* Seconds blow up (machine-dependent) but the speedup holds:
     ratios_only must not gate on the timing. *)
  let new_j = bench_json ~speedup:3.0 ~seconds:5.0 ~misses:100.0 in
  let gated = Harness.Benchdiff.compare_json old_j new_j in
  Alcotest.(check bool) "absolute timing gates by default" true
    (Harness.Benchdiff.has_regression gated);
  let ratios = Harness.Benchdiff.compare_json ~ratios_only:true old_j new_j in
  Alcotest.(check bool) "ratios_only ignores absolute timing" false
    (Harness.Benchdiff.has_regression ratios);
  Alcotest.check verdict "timing demoted to info" Harness.Benchdiff.Neutral
    (find_row ratios (row_path ^ ".serial_seconds_per_step")).r_verdict

let test_benchdiff_directions () =
  List.iter
    (fun (path, expected) ->
      let got = Harness.Benchdiff.direction_of path in
      let name = function
        | Harness.Benchdiff.Lower_better -> "lower"
        | Higher_better -> "higher"
        | Info -> "info"
      in
      Alcotest.(check string) path (name expected) (name got))
    [
      ("rows[x].measured_speedup", Harness.Benchdiff.Higher_better);
      ("rows[x].bitwise_equal", Harness.Benchdiff.Higher_better);
      ("rows[x].serial_seconds_per_step", Harness.Benchdiff.Lower_better);
      ("hist.p99_ns", Harness.Benchdiff.Lower_better);
      ("rows[x].misses_per_step", Harness.Benchdiff.Lower_better);
      ("scale", Harness.Benchdiff.Info);
      ("domains", Harness.Benchdiff.Info);
      ("profile[inspect].minor_collections", Harness.Benchdiff.Info);
      ("schema", Harness.Benchdiff.Info);
    ];
  List.iter
    (fun (path, expected) ->
      Alcotest.(check bool) ("ratio_like " ^ path) expected
        (Harness.Benchdiff.ratio_like path))
    [
      ("rows[x].measured_speedup", true);
      ("rows[x].bitwise_equal", true);
      ("rows[x].miss_ratio", true);
      ("rows[x].serial_seconds_per_step", false);
      ("scale", false);
    ]

let () =
  Alcotest.run "harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "normalize empty" `Quick test_normalize_empty;
          Alcotest.test_case "amortization" `Quick test_amortization;
          Alcotest.test_case "amortization modeled" `Quick
            test_amortization_modeled;
          Alcotest.test_case "measure sanity" `Quick test_measure_sanity;
          Alcotest.test_case "measure improves" `Quick test_measure_improves;
        ] );
      ( "figures",
        [
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "dataset table" `Quick test_dataset_table;
          Alcotest.test_case "executor rows" `Slow test_executor_rows_smoke;
          Alcotest.test_case "remap rows" `Slow test_remap_rows_smoke;
        ] );
      ( "guidance",
        [
          Alcotest.test_case "ranking" `Slow test_guidance_ranks;
          Alcotest.test_case "empty" `Quick test_guidance_empty;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "smoke" `Slow test_ablations_smoke;
          Alcotest.test_case "regrouping direction" `Quick
            test_ablation_regrouping_direction;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "identical inputs are equal" `Quick
            test_benchdiff_equal;
          Alcotest.test_case "regressions detected" `Quick
            test_benchdiff_regressed;
          Alcotest.test_case "improvements never gate" `Quick
            test_benchdiff_improved;
          Alcotest.test_case "tolerance boundary" `Quick
            test_benchdiff_tolerance;
          Alcotest.test_case "boolean flip regresses" `Quick
            test_benchdiff_boolean_flip;
          Alcotest.test_case "missing and added" `Quick
            test_benchdiff_missing_added;
          Alcotest.test_case "ratios-only gating" `Quick
            test_benchdiff_ratios_only;
          Alcotest.test_case "direction heuristics" `Quick
            test_benchdiff_directions;
        ] );
    ]
