(* The Fused inspector strategy must be a pure cost optimization:
   random composition chains on every kernel produce bit-identical
   results (sigma/delta, per-layer reordering functions, tile
   schedule, and remapped kernel arrays) under Remap_each, Remap_once
   and Fused — serial and on a pool — and plan-cache entries written
   by one strategy replay for the other. *)

(* ------------------------------------------------------------------ *)
(* Random datasets (same shape as test_par's generator) *)

let dataset_of (n, pairs) =
  {
    Datagen.Dataset.name = "rand";
    n_nodes = n;
    left = Array.map fst pairs;
    right = Array.map snd pairs;
    coords = None;
  }

let kernels_under_test =
  [
    ("moldyn", Kernels.Moldyn.of_dataset);
    ("nbf", Kernels.Nbf.of_dataset);
    ("irreg", Kernels.Irreg.of_dataset);
  ]

(* ------------------------------------------------------------------ *)
(* Random valid plans: 1-4 transforms, an optional sparse tiling at
   the end (optionally followed by tilePack), data/iteration
   reorderings before it. Valid by construction; [Plan.validate]
   double-checks. *)

let gen_prefix_transform =
  QCheck.Gen.(
    let* pick = int_range 0 6 in
    let* sz = int_range 4 16 in
    return
      (match pick with
      | 0 -> Compose.Transform.(Data_reorder Cpack)
      | 1 -> Compose.Transform.(Data_reorder (Gpart { part_size = sz }))
      | 2 -> Compose.Transform.(Data_reorder (Multilevel { part_size = sz }))
      | 3 -> Compose.Transform.(Data_reorder Rcm)
      | 4 -> Compose.Transform.(Iter_reorder Lexgroup)
      | 5 -> Compose.Transform.(Iter_reorder Lexsort)
      | _ ->
        Compose.Transform.(
          Iter_reorder (Bucket_tile { bucket_size = max 2 (sz / 2) }))))

let gen_plan =
  QCheck.Gen.(
    let* tail = int_range 0 2 in
    (* 0 = none, 1 = sparse tile, 2 = sparse tile + tilePack *)
    let tail_len = if tail = 0 then 0 else tail in
    let* prefix_len = int_range (max 1 (1 - tail_len)) (4 - tail_len) in
    let* prefix = list_repeat prefix_len gen_prefix_transform in
    let* growth =
      oneofl Compose.Transform.[ Full; Cache_block ]
    in
    let* seed_sz = int_range 4 16 in
    let* seed =
      oneofl
        Compose.Transform.
          [
            Seed_block { part_size = seed_sz };
            Seed_gpart { part_size = seed_sz };
          ]
    in
    let tailt =
      match tail with
      | 0 -> []
      | 1 -> [ Compose.Transform.Sparse_tile { growth; seed } ]
      | _ ->
        [
          Compose.Transform.Sparse_tile { growth; seed };
          Compose.Transform.(Data_reorder Tile_pack);
        ]
    in
    return (Compose.Plan.make ~name:"rand" (prefix @ tailt)))

let arb_case =
  QCheck.make
    ~print:(fun ((n, e), plan) ->
      Fmt.str "n=%d m=%d plan=%a" n (Array.length e) Compose.Plan.pp plan)
    QCheck.Gen.(
      let* n = int_range 8 60 in
      let* m = int_range 4 150 in
      let* pairs =
        array_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let pairs =
        Array.map
          (fun (a, b) -> if a = b then (a, (b + 1) mod n) else (a, b))
          pairs
      in
      let* plan = gen_plan in
      return ((n, pairs), plan))

(* ------------------------------------------------------------------ *)
(* Bit-identity of two inspector results *)

let schedules_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    Reorder.Schedule.row_ptr a = Reorder.Schedule.row_ptr b
    && Reorder.Schedule.flat_items a = Reorder.Schedule.flat_items b
  | _ -> false

let results_equal (a : Compose.Inspector.result) (b : Compose.Inspector.result)
    =
  Reorder.Perm.equal a.sigma_total b.sigma_total
  && Reorder.Perm.equal a.delta_total b.delta_total
  && schedules_equal a.schedule b.schedule
  && List.length a.reordering_fns = List.length b.reordering_fns
  && List.for_all2
       (fun (na, pa) (nb, pb) -> na = nb && Reorder.Perm.equal pa pb)
       a.reordering_fns b.reordering_fns
  && Kernels.Kernel.snapshots_equal_bits
       (a.kernel.Kernels.Kernel.snapshot ())
       (b.kernel.Kernels.Kernel.snapshot ())

let run ?cache ?pool ~strategy plan kernel =
  Compose.Inspector.run ?cache ?pool ~strategy plan kernel

(* ------------------------------------------------------------------ *)
(* Fused = Remap_once = Remap_each, serial and pooled *)

let prop_fused_bit_identical =
  QCheck.Test.make ~name:"fused = remap-once = remap-each (all kernels)"
    ~count:40 arb_case (fun (spec, plan) ->
      QCheck.assume (Result.is_ok (Compose.Plan.validate plan));
      let d = dataset_of spec in
      List.for_all
        (fun (_, of_dataset) ->
          let kernel = of_dataset d in
          let once = run ~strategy:Compose.Inspector.Remap_once plan kernel in
          let each = run ~strategy:Compose.Inspector.Remap_each plan kernel in
          let fused = run ~strategy:Compose.Inspector.Fused plan kernel in
          results_equal once each && results_equal once fused)
        kernels_under_test)

let prop_fused_pool_bit_identical =
  QCheck.Test.make ~name:"pooled fused = serial remap-once" ~count:15 arb_case
    (fun (spec, plan) ->
      QCheck.assume (Result.is_ok (Compose.Plan.validate plan));
      let kernel = Kernels.Moldyn.of_dataset (dataset_of spec) in
      let once = run ~strategy:Compose.Inspector.Remap_once plan kernel in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              results_equal once
                (run ~pool ~strategy:Compose.Inspector.Fused plan kernel)))
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Plan-cache interop: entries stored under one strategy replay for
   the other (Fused fingerprints as Remap_once), in both directions. *)

let check_cache_interop ~first ~second () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let kernel = Kernels.Moldyn.of_dataset d in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:16 Compose.Plan.cpack_lexgroup
  in
  let cache = Rtrt_plancache.Cache.create () in
  let cold = run ~cache ~strategy:first plan kernel in
  let st = Rtrt_plancache.Cache.stats cache in
  Alcotest.(check int) "cold run misses" 1 st.Rtrt_plancache.Cache.misses;
  let warm = run ~cache ~strategy:second plan kernel in
  let st = Rtrt_plancache.Cache.stats cache in
  Alcotest.(check int) "warm run hits" 1 st.Rtrt_plancache.Cache.hits;
  Alcotest.(check bool)
    "replayed result bit-identical" true (results_equal cold warm)

let test_cache_once_then_fused =
  check_cache_interop ~first:Compose.Inspector.Remap_once
    ~second:Compose.Inspector.Fused

let test_cache_fused_then_once =
  check_cache_interop ~first:Compose.Inspector.Fused
    ~second:Compose.Inspector.Remap_once

(* The GC composition (two data reorderings back to back) end to end
   at a real scale, serial and pooled. *)
let test_gc_fused () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let kernel = Kernels.Moldyn.of_dataset d in
  let plan = Compose.Plan.gpart_cpack ~part_size:16 in
  let once = run ~strategy:Compose.Inspector.Remap_once plan kernel in
  let fused = run ~strategy:Compose.Inspector.Fused plan kernel in
  Alcotest.(check bool) "serial fused" true (results_equal once fused);
  Rtrt_par.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check bool)
        "pooled fused" true
        (results_equal once
           (run ~pool ~strategy:Compose.Inspector.Fused plan kernel)))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "fused"
    [
      ( "equivalence",
        qsuite [ prop_fused_bit_identical; prop_fused_pool_bit_identical ] );
      ( "plan-cache",
        [
          Alcotest.test_case "remap-once entry replays for fused" `Quick
            test_cache_once_then_fused;
          Alcotest.test_case "fused entry replays for remap-once" `Quick
            test_cache_fused_then_once;
        ] );
      ( "compositions",
        [ Alcotest.test_case "GC fused end to end" `Quick test_gc_fused ] );
    ]
