(* Tests for the graph substrate: CSR construction, BFS, components,
   Cuthill-McKee, and the bounded-size partitioners. *)

open Irgraph

(* A 2x3 grid graph:
   0 - 1 - 2
   |   |   |
   3 - 4 - 5 *)
let grid23 () =
  Csr.of_edges ~n:6
    [| (0, 1); (1, 2); (3, 4); (4, 5); (0, 3); (1, 4); (2, 5) |]

(* A path 0-1-2-...-(n-1). *)
let path n = Csr.of_edges ~n (Array.init (n - 1) (fun i -> (i, i + 1)))

let test_csr_basic () =
  let g = grid23 () in
  Alcotest.(check int) "nodes" 6 (Csr.num_nodes g);
  Alcotest.(check int) "edges" 7 (Csr.num_edges g);
  Alcotest.(check int) "arcs" 14 (Csr.num_arcs g);
  Alcotest.(check int) "corner degree" 2 (Csr.degree g 0);
  Alcotest.(check int) "middle degree" 3 (Csr.degree g 1);
  let nbrs = Array.to_list (Csr.neighbors g 4) |> List.sort compare in
  Alcotest.(check (list int)) "neighbors of 4" [ 1; 3; 5 ] nbrs

let test_csr_self_loops () =
  let g = Csr.of_edges ~n:3 [| (0, 0); (0, 1); (1, 1) |] in
  Alcotest.(check int) "self-loops dropped" 1 (Csr.num_edges g)

let test_csr_multigraph_edges () =
  (* num_edges counts parallel copies; num_distinct_edges collapses
     them; edges lists u < v pairs, u-ascending, with multiplicity. *)
  let g = Csr.of_edges ~n:4 [| (0, 1); (1, 0); (2, 3); (3, 3) |] in
  Alcotest.(check int) "parallel copies counted" 3 (Csr.num_edges g);
  Alcotest.(check int) "distinct pairs" 2 (Csr.num_distinct_edges g);
  Alcotest.(check (array (pair int int)))
    "edges u<v, u-ascending, with multiplicity"
    [| (0, 1); (0, 1); (2, 3) |]
    (Csr.edges g)

let test_csr_of_accesses () =
  (* Iterations touching pairs: a clique is induced per iteration. *)
  let g = Csr.of_accesses ~n_data:4 [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |] |] in
  Alcotest.(check int) "edges" 3 (Csr.num_edges g);
  Alcotest.(check int) "degree 1" 2 (Csr.degree g 1)

let test_bfs_order () =
  let g = path 5 in
  Alcotest.(check (list int)) "path bfs from 0" [ 0; 1; 2; 3; 4 ]
    (Array.to_list (Csr.bfs_order g))

let test_components () =
  let g = Csr.of_edges ~n:6 [| (0, 1); (1, 2); (4, 5) |] in
  let count, comp = Csr.connected_components g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0 and 2 together" true (comp.(0) = comp.(2));
  Alcotest.(check bool) "3 alone" true (comp.(3) <> comp.(0) && comp.(3) <> comp.(4))

let test_partition_block () =
  let p = Partition.block ~n:10 ~part_size:4 in
  Alcotest.(check int) "3 parts" 3 (Partition.n_parts p);
  Alcotest.(check (list int)) "sizes" [ 4; 4; 2 ]
    (Array.to_list (Partition.sizes p));
  Alcotest.(check int) "part of 7" 1 (Partition.part_of p 7)

let test_partition_gpart_sizes () =
  let g = grid23 () in
  let p = Partition.gpart g ~part_size:3 in
  Alcotest.(check int) "2 parts" 2 (Partition.n_parts p);
  Array.iter
    (fun s -> Alcotest.(check bool) "size bound" true (s <= 3))
    (Partition.sizes p)

let test_partition_gpart_connected_parts () =
  (* On a path, BFS-grown parts of size k are contiguous runs, so the
     edge cut is exactly n/k - 1. *)
  let n = 32 in
  let g = path n in
  let p = Partition.gpart g ~part_size:8 in
  Alcotest.(check int) "parts" 4 (Partition.n_parts p);
  Alcotest.(check int) "cut" 3 (Partition.edge_cut g p)

let test_partition_gpart_disconnected () =
  let g = Csr.of_edges ~n:6 [| (0, 1); (2, 3); (4, 5) |] in
  let p = Partition.gpart g ~part_size:4 in
  (* All nodes assigned. *)
  Array.iter
    (fun a -> Alcotest.(check bool) "assigned" true (a >= 0))
    (Partition.assignment p);
  let total = Array.fold_left ( + ) 0 (Partition.sizes p) in
  Alcotest.(check int) "covers all" 6 total

let test_partition_members () =
  let p = Partition.make ~n_parts:2 ~assign:[| 0; 1; 0; 1; 0 |] in
  let m = Partition.members p in
  Alcotest.(check (list int)) "part 0" [ 0; 2; 4 ] (Array.to_list m.(0));
  Alcotest.(check (list int)) "part 1" [ 1; 3 ] (Array.to_list m.(1))

let test_partition_invalid () =
  Alcotest.check_raises "bad id" (Invalid_argument "Partition.make: id 5")
    (fun () -> ignore (Partition.make ~n_parts:2 ~assign:[| 0; 5 |]))

let test_rcm_path () =
  (* RCM on a path numbered badly should recover bandwidth 1. *)
  let n = 16 in
  let edges = Array.init (n - 1) (fun i -> ((i * 7) mod n, ((i + 1) * 7) mod n)) in
  let g = Csr.of_edges ~n edges in
  let order = Rcm.rcm_order g in
  let position = Array.make n 0 in
  Array.iteri (fun pos v -> position.(v) <- pos) order;
  let bw = Rcm.bandwidth g ~position in
  Alcotest.(check bool) "rcm reduces path bandwidth to <= 2" true (bw <= 2)

let test_rcm_is_permutation () =
  let g = grid23 () in
  let order = Rcm.rcm_order g in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5 ]
    (Array.to_list sorted)

let test_bandwidth_identity () =
  let g = path 5 in
  let position = Array.init 5 (fun i -> i) in
  Alcotest.(check int) "path identity bandwidth" 1 (Rcm.bandwidth g ~position)

(* Multilevel partitioner *)

let grid n m =
  (* n x m grid graph with natural numbering. *)
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let v = (i * m) + j in
      if j < m - 1 then edges := (v, v + 1) :: !edges;
      if i < n - 1 then edges := (v, v + m) :: !edges
    done
  done;
  Csr.of_edges ~n:(n * m) (Array.of_list !edges)

let test_multilevel_valid_partition () =
  let g = grid 16 16 in
  let p = Multilevel.partition g ~n_parts:8 in
  Alcotest.(check int) "8 parts" 8 (Partition.n_parts p);
  Alcotest.(check int) "covers all" 256
    (Array.fold_left ( + ) 0 (Partition.sizes p))

let test_multilevel_balance () =
  let g = grid 20 20 in
  let p = Multilevel.partition g ~n_parts:4 in
  let sizes = Partition.sizes p in
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "size %d within 35%% of 100" s)
        true
        (s >= 65 && s <= 135))
    sizes

let test_multilevel_cut_quality () =
  (* On a 2-D grid, a good 4-way cut is O(side); a random one is
     O(edges). Require the multilevel cut to be far below random and
     no worse than ~4x the ideal two-line cut. *)
  let side = 24 in
  let g = grid side side in
  let p = Multilevel.partition g ~n_parts:4 in
  let cut = Partition.edge_cut g p in
  Alcotest.(check bool) (Fmt.str "cut %d reasonable" cut) true
    (cut <= 8 * side)

let test_multilevel_beats_or_matches_gpart_on_mesh () =
  let d = Datagen.Generators.foil ~scale:256 () in
  let g = Datagen.Dataset.to_graph d in
  let ml = Multilevel.partition_by_size g ~part_size:64 in
  let gp = Partition.gpart g ~part_size:64 in
  let cut_ml = Partition.edge_cut g ml in
  let cut_gp = Partition.edge_cut g gp in
  (* The multilevel partitioner should be in the same league or better;
     allow generous slack to keep the test robust. *)
  Alcotest.(check bool)
    (Fmt.str "multilevel cut %d vs gpart %d" cut_ml cut_gp)
    true
    (cut_ml <= (3 * cut_gp) + 10)

let test_multilevel_small_and_edge_cases () =
  let g = Csr.of_edges ~n:1 [||] in
  let p = Multilevel.partition g ~n_parts:4 in
  Alcotest.(check int) "one node one part" 1 (Partition.n_parts p);
  let g3 = Csr.of_edges ~n:3 [| (0, 1) |] in
  let p3 = Multilevel.partition g3 ~n_parts:2 in
  Alcotest.(check int) "two parts" 2 (Partition.n_parts p3)

(* Property tests *)

let arb_graph =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 40 in
      let* m = int_range 0 80 in
      let* edges =
        list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, Array.of_list edges))
  in
  QCheck.make
    ~print:(fun (n, e) -> Printf.sprintf "n=%d, %d edges" n (Array.length e))
    gen

let prop_multilevel_is_partition =
  QCheck.Test.make ~name:"multilevel covers every node exactly once"
    ~count:60 arb_graph (fun (n, edges) ->
      let g = Csr.of_edges ~n edges in
      let p = Multilevel.partition g ~n_parts:4 in
      Array.fold_left ( + ) 0 (Partition.sizes p) = n
      && Array.for_all
           (fun a -> a >= 0 && a < Partition.n_parts p)
           (Partition.assignment p))

let prop_gpart_is_partition =
  QCheck.Test.make ~name:"gpart covers every node exactly once" ~count:100
    arb_graph (fun (n, edges) ->
      let g = Csr.of_edges ~n edges in
      let p = Partition.gpart g ~part_size:5 in
      Array.fold_left ( + ) 0 (Partition.sizes p) = n
      && Array.for_all (fun a -> a >= 0 && a < Partition.n_parts p)
           (Partition.assignment p))

let prop_gpart_respects_size =
  QCheck.Test.make ~name:"gpart part sizes bounded" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Csr.of_edges ~n edges in
      let p = Partition.gpart g ~part_size:7 in
      Array.for_all (fun s -> s <= 7) (Partition.sizes p))

let prop_rcm_permutation =
  QCheck.Test.make ~name:"rcm order is a permutation" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Csr.of_edges ~n edges in
      let order = Rcm.rcm_order g in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) order;
      Array.for_all (fun b -> b) seen)

let prop_components_consistent =
  QCheck.Test.make ~name:"edges stay within components" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Csr.of_edges ~n edges in
      let _, comp = Csr.connected_components g in
      Array.for_all (fun (u, v) -> comp.(u) = comp.(v)) (Csr.edges g))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "graph"
    [
      ( "csr",
        [
          Alcotest.test_case "basic" `Quick test_csr_basic;
          Alcotest.test_case "self loops" `Quick test_csr_self_loops;
          Alcotest.test_case "multigraph edges" `Quick
            test_csr_multigraph_edges;
          Alcotest.test_case "of_accesses" `Quick test_csr_of_accesses;
          Alcotest.test_case "bfs order" `Quick test_bfs_order;
          Alcotest.test_case "components" `Quick test_components;
        ] );
      ( "partition",
        [
          Alcotest.test_case "block" `Quick test_partition_block;
          Alcotest.test_case "gpart sizes" `Quick test_partition_gpart_sizes;
          Alcotest.test_case "gpart path cut" `Quick
            test_partition_gpart_connected_parts;
          Alcotest.test_case "gpart disconnected" `Quick
            test_partition_gpart_disconnected;
          Alcotest.test_case "members" `Quick test_partition_members;
          Alcotest.test_case "invalid" `Quick test_partition_invalid;
        ] );
      ( "multilevel",
        [
          Alcotest.test_case "valid partition" `Quick
            test_multilevel_valid_partition;
          Alcotest.test_case "balance" `Quick test_multilevel_balance;
          Alcotest.test_case "cut quality" `Quick test_multilevel_cut_quality;
          Alcotest.test_case "vs gpart on mesh" `Quick
            test_multilevel_beats_or_matches_gpart_on_mesh;
          Alcotest.test_case "edge cases" `Quick
            test_multilevel_small_and_edge_cases;
        ] );
      ( "rcm",
        [
          Alcotest.test_case "path bandwidth" `Quick test_rcm_path;
          Alcotest.test_case "is permutation" `Quick test_rcm_is_permutation;
          Alcotest.test_case "bandwidth identity" `Quick test_bandwidth_identity;
        ] );
      ( "prop",
        qsuite
          [
            prop_multilevel_is_partition;
            prop_gpart_is_partition;
            prop_gpart_respects_size;
            prop_rcm_permutation;
            prop_components_consistent;
          ] );
    ]
