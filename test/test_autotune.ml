(* Tests for the plan autotuner: candidate-space validity, plan
   (de)serialization round trips, winner optimality against the
   hand-named suite, the tuned-winner store (including the disk tier),
   bit-identical replay of tuned winners through the plan cache, and
   the degenerate one-candidate space. *)

module A = Harness.Autotune
module Tuned = Rtrt_plancache.Tuned
module Cache = Rtrt_plancache.Cache
open Compose

let machine = Cachesim.Machine.pentium4

let test_kernel () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  Kernels.Moldyn.of_dataset d

(* A fresh empty directory under the system temp dir. *)
let fresh_dir () =
  let f = Filename.temp_file "rtrt_autotune" "" in
  Sys.remove f;
  f

(* ------------------------------------------------------------------ *)
(* Candidate space                                                     *)

let test_candidates_validate () =
  let space = Plan.candidates ~gpart_size:32 ~seed_part_size:24 in
  Alcotest.(check bool)
    "space is a real search space" true
    (List.length space >= 20);
  List.iter
    (fun p ->
      Alcotest.(check (result unit string))
        (Plan.name p ^ " validates") (Ok ()) (Plan.validate p))
    space;
  let names = List.map Plan.name space in
  Alcotest.(check int)
    "candidate names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* The hand-named standard suite is a subset of the space, so the
     winner can never lose to a named plan on the model. *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Plan.name p ^ " from the suite is in the space")
        true
        (List.mem (Plan.name p) names))
    (Plan.standard_suite ~gpart_size:32 ~seed_part_size:24)

let test_plan_string_roundtrip () =
  List.iter
    (fun p ->
      match A.plan_of_string (A.plan_to_string p) with
      | Error e -> Alcotest.failf "%s does not round-trip: %s" (Plan.name p) e
      | Ok p' ->
        Alcotest.(check string) "name survives" (Plan.name p) (Plan.name p');
        Alcotest.(check string)
          "transforms survive"
          (Fmt.str "%a" Plan.pp p)
          (Fmt.str "%a" Plan.pp p'))
    (Plan.candidates ~gpart_size:32 ~seed_part_size:24);
  match A.plan_of_string "{not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

(* ------------------------------------------------------------------ *)
(* Winner optimality                                                   *)

let test_winner_beats_named () =
  let kernel = test_kernel () in
  let r = A.tune ~machine kernel in
  Alcotest.(check (result unit string))
    "winner validates" (Ok ())
    (Plan.validate r.A.at_winner);
  Alcotest.(check bool) "fresh search" false r.A.at_cached;
  Alcotest.(check bool)
    "winner score is the minimum of the table" true
    (List.for_all (fun (_, s) -> r.A.at_winner_score_ns <= s) r.A.at_scores);
  (* Every hand-named suite plan was scored, and none beats the
     winner. *)
  List.iter
    (fun p ->
      match List.assoc_opt (Plan.name p) r.A.at_scores with
      | None -> Alcotest.failf "suite plan %s was not scored" (Plan.name p)
      | Some s ->
        Alcotest.(check bool)
          (Fmt.str "winner <= %s" (Plan.name p))
          true
          (r.A.at_winner_score_ns <= s))
    (Harness.Figures.suite_for ~machine kernel)

(* ------------------------------------------------------------------ *)
(* Tuned store and bit-identical replay                                *)

let test_tuned_store_roundtrip () =
  let kernel = test_kernel () in
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let tuned = Tuned.create ~dir () in
  let cold = A.tune ~cache ~tuned ~machine kernel in
  Alcotest.(check bool) "first tune searches" false cold.A.at_cached;
  let warm = A.tune ~cache ~tuned ~machine kernel in
  Alcotest.(check bool) "second tune is served" true warm.A.at_cached;
  Alcotest.(check string)
    "same winner"
    (Plan.name cold.A.at_winner)
    (Plan.name warm.A.at_winner);
  Alcotest.(check (float 0.0))
    "same score" cold.A.at_winner_score_ns warm.A.at_winner_score_ns;
  (* A fresh store over the same directory (a new process) still
     serves the winner from the disk tier. *)
  let reopened = A.tune ~cache ~tuned:(Tuned.create ~dir ()) ~machine kernel in
  Alcotest.(check bool) "disk tier serves" true reopened.A.at_cached;
  Alcotest.(check string)
    "disk tier winner"
    (Plan.name cold.A.at_winner)
    (Plan.name reopened.A.at_winner);
  (* The tuned winner replays bit-identically through the plan cache:
     a cache-hit inspection drives the same executor output as a cold
     one. *)
  let winner = warm.A.at_winner in
  let cold_r = Harness.Experiment.inspect winner kernel in
  let warm_r = Harness.Experiment.inspect ~cache winner kernel in
  let run (r : Inspector.result) =
    let k = r.Inspector.kernel.Kernels.Kernel.copy () in
    (match r.Inspector.schedule with
    | None -> k.Kernels.Kernel.run ~steps:2
    | Some sched -> k.Kernels.Kernel.run_tiled sched ~steps:2);
    k.Kernels.Kernel.snapshot ()
  in
  Alcotest.(check bool)
    "tuned winner replays bit-identically" true
    (Kernels.Kernel.snapshots_equal_bits (run cold_r) (run warm_r))

(* A tuned entry for a different machine must not be served. *)
let test_tuned_store_machine_keyed () =
  let kernel = test_kernel () in
  let tuned = Tuned.create () in
  let _ = A.tune ~tuned ~machine kernel in
  let other = A.tune ~tuned ~machine:Cachesim.Machine.power3 kernel in
  Alcotest.(check bool)
    "other machine searches afresh" false other.A.at_cached

(* ------------------------------------------------------------------ *)
(* Degenerate spaces                                                   *)

let test_single_candidate () =
  let kernel = test_kernel () in
  let only = Plan.cpack_lexgroup in
  let r = A.tune ~candidates:[ only ] ~machine kernel in
  Alcotest.(check string)
    "one-candidate space degenerates to it" (Plan.name only)
    (Plan.name r.A.at_winner);
  Alcotest.(check int) "one score" 1 (List.length r.A.at_scores)

let test_bad_spaces_rejected () =
  let kernel = test_kernel () in
  (match A.tune ~candidates:[] ~machine kernel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty space must be rejected");
  let invalid =
    Plan.with_fst ~seed_part_size:8 (Plan.with_fst ~seed_part_size:8 Plan.base)
  in
  match A.tune ~candidates:[ invalid ] ~machine kernel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid candidate must be rejected"

let () =
  Alcotest.run "autotune"
    [
      ( "space",
        [
          Alcotest.test_case "candidates validate" `Quick
            test_candidates_validate;
          Alcotest.test_case "plan string round trip" `Quick
            test_plan_string_roundtrip;
        ] );
      ( "tune",
        [
          Alcotest.test_case "winner beats every named plan" `Slow
            test_winner_beats_named;
          Alcotest.test_case "tuned store round trip + replay" `Slow
            test_tuned_store_roundtrip;
          Alcotest.test_case "tuned store keyed by machine" `Slow
            test_tuned_store_machine_keyed;
          Alcotest.test_case "single-candidate space" `Quick
            test_single_candidate;
          Alcotest.test_case "bad spaces rejected" `Quick
            test_bad_spaces_rejected;
        ] );
    ]
