(* Tests for staged executor specialization: the Shape run-length
   detector, the Tier A shaped executors (bitwise identical to the
   interpreted walk, serial and pooled), the Tier B compiled executors
   (bitwise identical, with graceful no-toolchain fallback), and the
   validated-once memos that let plan-cache hits skip the O(rows)
   re-validation scans. *)

module Shape = Reorder.Shape
module Schedule = Reorder.Schedule
module Specialize = Compose.Specialize

let tf n_tiles tile_of = { Reorder.Sparse_tile.n_tiles; tile_of }

(* Counters are no-ops while tracing is disabled; counter-asserting
   tests run under a throwaway memory sink. *)
let with_metrics f =
  let sink, _events = Rtrt_obs.Sink.memory () in
  Rtrt_obs.set_sink sink;
  Fun.protect ~finally:Rtrt_obs.disable f

(* Re-enumerate a shape's runs and check they reproduce the schedule's
   stored item sequence exactly — the structural fact Tier A's bitwise
   identity rests on. *)
let check_runs_reconstruct name sched shape =
  let rq = Shape.run_ptr shape in
  let rlo = Shape.run_lo shape in
  let rln = Shape.run_len shape in
  let out = ref [] in
  let rows = Array.length rq - 1 in
  for r = 0 to rows - 1 do
    for k = rq.(r) to rq.(r + 1) - 1 do
      for v = rlo.(k) to rlo.(k) + rln.(k) - 1 do
        out := v :: !out
      done
    done
  done;
  let got = Array.of_list (List.rev !out) in
  Alcotest.(check (array int))
    (name ^ " runs reconstruct items")
    (Schedule.flat_items sched) got

(* ------------------------------------------------------------------ *)
(* Shape detector units *)

let test_shape_identity () =
  let n = 64 in
  let s = Schedule.of_tile_fns [| tf 1 (Array.make n 0) |] in
  let sh = Shape.analyze s in
  let sm = Shape.summary sh in
  Alcotest.(check int) "rows" 1 sm.Shape.rows;
  Alcotest.(check int) "runs" 1 sm.Shape.runs;
  Alcotest.(check int) "identity rows" 1 sm.Shape.identity_rows;
  Alcotest.(check int) "max run" n sm.Shape.max_run;
  Alcotest.(check bool) "single loop" true sm.Shape.single_loop;
  Alcotest.(check (option int)) "uniform" (Some n) sm.Shape.uniform_tile_items;
  Alcotest.(check bool) "profitable" true (Shape.profitable sm);
  Alcotest.(check bool) "pinned to schedule" true (Shape.for_schedule sh s);
  check_runs_reconstruct "identity" s sh

let test_shape_single_run_rows () =
  let n = 64 and tiles = 4 in
  let s = Schedule.of_tile_fns [| tf tiles (Array.init n (fun i -> i / 16)) |] in
  let sh = Shape.analyze s in
  let sm = Shape.summary sh in
  Alcotest.(check int) "rows" tiles sm.Shape.rows;
  Alcotest.(check int) "one run per row" tiles sm.Shape.runs;
  Alcotest.(check int) "all identity rows" tiles sm.Shape.identity_rows;
  Alcotest.(check (float 1e-9)) "avg run length" 16.0 sm.Shape.avg_run_len;
  Alcotest.(check bool) "profitable" true (Shape.profitable sm);
  check_runs_reconstruct "single-run" s sh

let test_shape_adversarial_alternating () =
  let n = 64 in
  let s = Schedule.of_tile_fns [| tf 2 (Array.init n (fun i -> i mod 2)) |] in
  let sh = Shape.analyze s in
  let sm = Shape.summary sh in
  (* Stride-2 rows: every item its own run, nothing to exploit. *)
  Alcotest.(check int) "runs" n sm.Shape.runs;
  Alcotest.(check int) "no identity rows" 0 sm.Shape.identity_rows;
  Alcotest.(check (float 1e-9)) "avg run length" 1.0 sm.Shape.avg_run_len;
  Alcotest.(check bool) "not profitable" false (Shape.profitable sm);
  check_runs_reconstruct "alternating" s sh

let test_shape_ragged () =
  let n = 64 in
  let tile_of =
    Array.init n (fun i -> if i = 0 then 0 else if i = n - 1 then 2 else 1)
  in
  let s = Schedule.of_tile_fns [| tf 3 tile_of |] in
  let sh = Shape.analyze s in
  let sm = Shape.summary sh in
  Alcotest.(check int) "rows" 3 sm.Shape.rows;
  Alcotest.(check (option int)) "ragged tiles not uniform" None
    sm.Shape.uniform_tile_items;
  Alcotest.(check int) "identity rows" 3 sm.Shape.identity_rows;
  check_runs_reconstruct "ragged" s sh

(* A fresh-array transformation invalidates the physical pin. *)
let test_shape_pin_invalidated () =
  let n = 32 in
  let s = Schedule.of_tile_fns [| tf 2 (Array.init n (fun i -> i / 16)) |] in
  let sh = Shape.analyze s in
  let s' = Schedule.remap_loop s ~loop:0 (Reorder.Perm.id n) in
  Alcotest.(check bool) "pin holds on source" true (Shape.for_schedule sh s);
  Alcotest.(check bool) "pin broken on remap" false (Shape.for_schedule sh s')

(* ------------------------------------------------------------------ *)
(* Random schedules over a kernel's loop chain *)

let arb_dataset =
  QCheck.make
    ~print:(fun (n, e) -> Printf.sprintf "n=%d m=%d" n (Array.length e))
    QCheck.Gen.(
      let* n = int_range 8 60 in
      let* m = int_range 4 150 in
      let* pairs =
        array_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let pairs =
        Array.map
          (fun (a, b) -> if a = b then (a, (b + 1) mod n) else (a, b))
          pairs
      in
      return (n, pairs))

let dataset_of (n, pairs) =
  {
    Datagen.Dataset.name = "rand";
    n_nodes = n;
    left = Array.map fst pairs;
    right = Array.map snd pairs;
    coords = None;
  }

let kernels_under_test =
  [
    ("moldyn", Kernels.Moldyn.of_dataset);
    ("nbf", Kernels.Nbf.of_dataset);
    ("irreg", Kernels.Irreg.of_dataset);
  ]

(* A random but valid schedule for the kernel: every loop of the chain
   gets an arbitrary tile assignment (coverage holds by construction). *)
let random_sched rng (k : Kernels.Kernel.t) =
  let n_tiles = 1 + Datagen.Rng.int rng 5 in
  Schedule.of_tile_fns
    (Array.map
       (fun size -> tf n_tiles (Array.init size (fun _ -> Datagen.Rng.int rng n_tiles)))
       k.Kernels.Kernel.loop_sizes)

(* Tier A bitwise identity on random schedules, all pair kernels. The
   [Specialize.make] call additionally runs its own two-step bitwise
   verification internally. *)
let prop_shaped_bitwise =
  QCheck.Test.make ~name:"tier A shaped executors bitwise = interpreted"
    ~count:20 arb_dataset (fun spec ->
      let d = dataset_of spec in
      List.for_all
        (fun (_, of_dataset) ->
          let k : Kernels.Kernel.t = of_dataset d in
          let rng = Datagen.Rng.create 42 in
          let sched = random_sched rng k in
          let shape = Shape.analyze sched in
          let k_interp = k.Kernels.Kernel.copy () in
          let k_shaped = k.Kernels.Kernel.copy () in
          k_interp.Kernels.Kernel.run_tiled sched ~steps:3;
          k_shaped.Kernels.Kernel.run_tiled_shaped sched shape ~steps:3;
          let spec_r = Specialize.make ~tier_b:false k sched in
          spec_r.Specialize.tier <> Specialize.Codegen
          && Kernels.Kernel.snapshots_equal_bits
               (k_interp.Kernels.Kernel.snapshot ())
               (k_shaped.Kernels.Kernel.snapshot ()))
        kernels_under_test)

(* Gauss-Seidel: shaped schedule walk bitwise = interpreted walk. *)
let gs_problem ~scale =
  let d = Datagen.Generators.foil ~scale () in
  let graph = Datagen.Dataset.to_graph d in
  let n = Irgraph.Csr.num_nodes graph in
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 17)) in
  (graph, f)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_gs_shaped_bitwise () =
  let graph, f = gs_problem ~scale:256 in
  let n = Irgraph.Csr.num_nodes graph in
  let t1 = Kernels.Gauss_seidel.create ~graph ~f in
  let t2 = Kernels.Gauss_seidel.create ~graph ~f in
  let sched = Schedule.of_tile_fns [| tf 4 (Array.init n (fun i -> i mod 4)) |] in
  let shape = Shape.analyze sched in
  for _ = 1 to 3 do
    Kernels.Gauss_seidel.run_sched t1 sched;
    Kernels.Gauss_seidel.run_sched_shaped t2 sched shape
  done;
  Alcotest.(check bool)
    "gs shaped bitwise" true
    (bits_equal t1.Kernels.Gauss_seidel.u t2.Kernels.Gauss_seidel.u)

(* Tier A under the pool: the shaped walk of the level-major renumbered
   schedule is bitwise identical to the parallel executor on it. *)
let check_shaped_matches_par ~domains plan kernel =
  let result = Harness.Experiment.inspect plan kernel in
  match result.Compose.Inspector.schedule with
  | None -> Alcotest.fail "sparse-tiled plan produced no schedule"
  | Some sched ->
    let k = result.Compose.Inspector.kernel in
    let tiles =
      Compose.Legality.tile_fns_of_schedule sched
        ~loop_sizes:k.Kernels.Kernel.loop_sizes
    in
    let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
    let par = Reorder.Tile_par.analyze ~chain ~tiles in
    let k_shaped = k.Kernels.Kernel.copy () in
    let k_par = k.Kernels.Kernel.copy () in
    Rtrt_par.Pool.with_pool ~domains (fun pool ->
        let pe =
          k_par.Kernels.Kernel.plan_par ~pool sched
            ~level_of:par.Reorder.Tile_par.level_of
        in
        let psched = pe.Kernels.Kernel.par_sched in
        let pshape = Shape.analyze psched in
        k_shaped.Kernels.Kernel.run_tiled_shaped psched pshape ~steps:2;
        pe.Kernels.Kernel.par_run ~steps:2 ());
    Kernels.Kernel.snapshots_equal_bits
      (k_shaped.Kernels.Kernel.snapshot ())
      (k_par.Kernels.Kernel.snapshot ())

let test_shaped_matches_par () =
  let d = Datagen.Generators.foil ~scale:256 () in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:24 Compose.Plan.cpack_lexgroup_twice
  in
  List.iter
    (fun (name, of_dataset) ->
      List.iter
        (fun domains ->
          Alcotest.(check bool)
            (Printf.sprintf "%s shaped = pooled (%d domains)" name domains)
            true
            (check_shaped_matches_par ~domains plan (of_dataset d)))
        [ 2; 4 ])
    kernels_under_test

(* ------------------------------------------------------------------ *)
(* Tier B: compiled executors *)

let have_toolchain () =
  Sys.command "ocamlfind ocamlopt -version >/dev/null 2>&1" = 0
  || Sys.command "ocamlopt.opt -version >/dev/null 2>&1" = 0
  || Sys.command "ocamlopt -version >/dev/null 2>&1" = 0

let test_codegen_bitwise () =
  if not (have_toolchain ()) then ()
  else begin
    let d = Datagen.Generators.foil ~scale:256 () in
    let plan =
      Compose.Plan.with_fst ~seed_part_size:32 Compose.Plan.cpack_lexgroup
    in
    List.iter
      (fun (name, of_dataset) ->
        let result = Harness.Experiment.inspect plan (of_dataset d) in
        match result.Compose.Inspector.schedule with
        | None -> Alcotest.fail "plan produced no schedule"
        | Some sched ->
          let k = result.Compose.Inspector.kernel in
          let k_interp = k.Kernels.Kernel.copy () in
          let k_spec = k.Kernels.Kernel.copy () in
          (* make's internal verification also asserts bitwise. *)
          let r = Specialize.make ~tier_b:true k_spec sched in
          Alcotest.(check string)
            (name ^ " reaches codegen tier")
            "codegen"
            (Specialize.tier_name r.Specialize.tier);
          r.Specialize.run ~steps:3;
          k_interp.Kernels.Kernel.run_tiled sched ~steps:3;
          Alcotest.(check bool)
            (name ^ " codegen bitwise")
            true
            (Kernels.Kernel.snapshots_equal_bits
               (k_interp.Kernels.Kernel.snapshot ())
               (k_spec.Kernels.Kernel.snapshot ())))
      kernels_under_test
  end

let test_codegen_gs_bitwise () =
  if not (have_toolchain ()) then ()
  else begin
    let graph, f = gs_problem ~scale:192 in
    let n = Irgraph.Csr.num_nodes graph in
    let t_interp = Kernels.Gauss_seidel.create ~graph ~f in
    let t_spec = Kernels.Gauss_seidel.create ~graph ~f in
    let sched =
      Schedule.of_tile_fns [| tf 3 (Array.init n (fun i -> i * 3 / n)) |]
    in
    let r = Specialize.make_gs ~tier_b:true t_spec sched in
    Alcotest.(check string)
      "gs reaches codegen tier" "codegen"
      (Specialize.tier_name r.Specialize.tier);
    r.Specialize.run ~steps:3;
    for _ = 1 to 3 do
      Kernels.Gauss_seidel.run_sched t_interp sched
    done;
    Alcotest.(check bool)
      "gs codegen bitwise u" true
      (bits_equal t_interp.Kernels.Gauss_seidel.u t_spec.Kernels.Gauss_seidel.u)
  end

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* The emitted source is printable without a toolchain and carries the
   registration footer the host looks up. *)
let test_codegen_source_dump () =
  let d = Datagen.Generators.foil ~scale:128 () in
  let k = Kernels.Irreg.of_dataset d in
  let rng = Datagen.Rng.create 7 in
  let sched = random_sched rng k in
  match Specialize.dump_source k sched with
  | None -> Alcotest.fail "emitter declined a small schedule"
  | Some src ->
    Alcotest.(check bool)
      "has exec" true
      (contains src "let exec (ia : int array array)");
    Alcotest.(check bool) "registers" true (contains src "Callback.register")

(* Pointing the compiler override at a nonexistent binary simulates a
   toolchain-free host: Tier B must degrade, not raise. *)
let test_no_toolchain_fallback () =
  with_metrics (fun () ->
      let d = Datagen.Generators.foil ~scale:96 () in
      let k = Kernels.Irreg.of_dataset d in
      let rng = Datagen.Rng.create 11 in
      let sched = random_sched rng k in
      let fallbacks = Rtrt_obs.Metrics.counter "specialize.fallbacks" in
      let before = Rtrt_obs.Metrics.value fallbacks in
      Unix.putenv "RTRT_SPECIALIZE_OCAMLOPT" "/nonexistent/ocamlopt";
      let r =
        Fun.protect
          ~finally:(fun () -> Unix.putenv "RTRT_SPECIALIZE_OCAMLOPT" "")
          (fun () -> Specialize.make ~tier_b:true k sched)
      in
      Alcotest.(check bool)
        "did not reach codegen" true
        (r.Specialize.tier <> Specialize.Codegen);
      Alcotest.(check bool)
        "fallback counted" true
        (Rtrt_obs.Metrics.value fallbacks > before))

(* ------------------------------------------------------------------ *)
(* Validated-once memos (satellite: skip O(rows) re-validation on
   plan-cache hits) *)

let test_check_fits_memo () =
  with_metrics (fun () ->
      let n = 40 in
      let s = Schedule.of_tile_fns [| tf 2 (Array.init n (fun i -> i mod 2)) |] in
      let skips = Rtrt_obs.Metrics.counter "plancache.schedule_check_skips" in
      Alcotest.(check bool)
        "first scan" true
        (Schedule.check_fits s ~loop_sizes:[| n |]);
      let before = Rtrt_obs.Metrics.value skips in
      Alcotest.(check bool)
        "memoized" true
        (Schedule.check_fits s ~loop_sizes:[| n |]);
      Alcotest.(check int)
        "skip counted" (before + 1)
        (Rtrt_obs.Metrics.value skips);
      (* Different claimed sizes must not reuse the memo (and must
         fail). *)
      Alcotest.(check bool)
        "different sizes rescan" false
        (Schedule.check_fits s ~loop_sizes:[| n / 2 |]))

let test_coverage_memo_from_construction () =
  with_metrics (fun () ->
      let n = 40 in
      let s = Schedule.of_tile_fns [| tf 4 (Array.init n (fun i -> i / 10)) |] in
      let skips = Rtrt_obs.Metrics.counter "plancache.coverage_check_skips" in
      let before = Rtrt_obs.Metrics.value skips in
      (* of_tile_fns proved coverage by construction; the first
         explicit check is already a skip. *)
      Alcotest.(check bool)
        "covered" true
        (Schedule.check_coverage s ~loop_sizes:[| n |]);
      Alcotest.(check int)
        "constructed coverage skips" (before + 1)
        (Rtrt_obs.Metrics.value skips))

let test_endpoint_scan_memo () =
  with_metrics (fun () ->
      let d = Datagen.Generators.foil ~scale:128 () in
      let k = Kernels.Irreg.of_dataset d in
      let rng = Datagen.Rng.create 3 in
      let sched = random_sched rng k in
      let skips = Rtrt_obs.Metrics.counter "plancache.endpoint_scan_skips" in
      k.Kernels.Kernel.run_tiled sched ~steps:1;
      let before = Rtrt_obs.Metrics.value skips in
      k.Kernels.Kernel.run_tiled sched ~steps:1;
      Alcotest.(check bool)
        "endpoint rescan skipped" true
        (Rtrt_obs.Metrics.value skips > before);
      (* A data permutation rebuilds the index arrays: the memo must
         not survive it. *)
      let k' =
        k.Kernels.Kernel.apply_data_perm
          (Reorder.Perm.id k.Kernels.Kernel.n_nodes)
      in
      let mid = Rtrt_obs.Metrics.value skips in
      let sched' = random_sched rng k' in
      k'.Kernels.Kernel.run_tiled sched' ~steps:1;
      k'.Kernels.Kernel.run_tiled sched' ~steps:1;
      Alcotest.(check bool)
        "fresh state scans then skips" true
        (Rtrt_obs.Metrics.value skips > mid))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "specialize"
    [
      ( "shape",
        [
          Alcotest.test_case "identity block" `Quick test_shape_identity;
          Alcotest.test_case "single-run rows" `Quick test_shape_single_run_rows;
          Alcotest.test_case "adversarial alternating" `Quick
            test_shape_adversarial_alternating;
          Alcotest.test_case "ragged tiles" `Quick test_shape_ragged;
          Alcotest.test_case "pin invalidated by remap" `Quick
            test_shape_pin_invalidated;
        ] );
      ( "tier-a",
        Alcotest.test_case "gs shaped bitwise" `Quick test_gs_shaped_bitwise
        :: Alcotest.test_case "shaped = pooled executors" `Quick
             test_shaped_matches_par
        :: qsuite [ prop_shaped_bitwise ] );
      ( "tier-b",
        [
          Alcotest.test_case "codegen bitwise (pair kernels)" `Quick
            test_codegen_bitwise;
          Alcotest.test_case "codegen bitwise (gauss-seidel)" `Quick
            test_codegen_gs_bitwise;
          Alcotest.test_case "source dump" `Quick test_codegen_source_dump;
          Alcotest.test_case "no-toolchain fallback" `Quick
            test_no_toolchain_fallback;
        ] );
      ( "memos",
        [
          Alcotest.test_case "check_fits memo" `Quick test_check_fits_memo;
          Alcotest.test_case "coverage memo from construction" `Quick
            test_coverage_memo_from_construction;
          Alcotest.test_case "endpoint scan memo" `Quick test_endpoint_scan_memo;
        ] );
    ]
