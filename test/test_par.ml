(* Tests for the rtrt_par multicore execution engine: pool/chunk
   mechanics, bitwise serial/parallel equivalence of every parallel
   executor (tiled kernels with the reduction-combining path,
   Gauss-Seidel tile-DAG and wavefront), parallel-inspector
   equivalence with the serial reorderings, and Atomic metrics under
   concurrent increments. Domain counts 1/2/4 run even on few-core
   hosts (oversubscription only affects timing, never results). *)

let domain_counts = [ 1; 2; 4 ]

let with_memory_sink f =
  let sink, events = Rtrt_obs.Sink.memory () in
  Rtrt_obs.set_sink sink;
  Fun.protect ~finally:Rtrt_obs.disable f;
  events ()

(* ------------------------------------------------------------------ *)
(* Pool and chunking *)

let test_pool_sum () =
  Rtrt_par.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "size" 4 (Rtrt_par.Pool.size pool);
      let n = 10_000 in
      let chunks = Rtrt_par.Chunk.even ~n ~lanes:4 in
      let partial = Array.make 4 0 in
      Rtrt_par.Pool.parallel pool (fun lane ->
          let start, len = chunks.(lane) in
          let s = ref 0 in
          for i = start to start + len - 1 do
            s := !s + i
          done;
          partial.(lane) <- !s);
      Alcotest.(check int)
        "sum" (n * (n - 1) / 2)
        (Array.fold_left ( + ) 0 partial))

let test_pool_one_inline () =
  Rtrt_par.Pool.with_pool ~domains:1 (fun pool ->
      let self = Domain.self () in
      let seen = ref None in
      Rtrt_par.Pool.parallel pool (fun lane -> seen := Some (lane, Domain.self ()));
      match !seen with
      | Some (0, d) when d = self -> ()
      | _ -> Alcotest.fail "size-1 pool must run lane 0 on the caller")

exception Lane_failed of int

let test_pool_exception () =
  Rtrt_par.Pool.with_pool ~domains:3 (fun pool ->
      (match
         Rtrt_par.Pool.parallel pool (fun lane ->
             if lane = 1 then raise (Lane_failed lane))
       with
      | () -> Alcotest.fail "exception was swallowed"
      | exception Lane_failed 1 -> ()
      | exception e -> raise e);
      (* The pool survives a failing call. *)
      let hits = Atomic.make 0 in
      Rtrt_par.Pool.parallel pool (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "pool reusable after exception" 3 (Atomic.get hits))

let check_chunks name ~n chunks =
  let covered = Array.make n false in
  Array.iter
    (fun (start, len) ->
      for i = start to start + len - 1 do
        Alcotest.(check bool) (name ^ " no overlap") false covered.(i);
        covered.(i) <- true
      done)
    chunks;
  Array.iteri
    (fun i c -> Alcotest.(check bool) (Fmt.str "%s covers %d" name i) true c)
    covered

let test_chunking () =
  check_chunks "even" ~n:17 (Rtrt_par.Chunk.even ~n:17 ~lanes:4);
  check_chunks "even tiny" ~n:2 (Rtrt_par.Chunk.even ~n:2 ~lanes:8);
  let weights = Array.init 23 (fun i -> 1 + ((i * 7) mod 11)) in
  check_chunks "weighted" ~n:23 (Rtrt_par.Chunk.weighted ~weights ~lanes:3);
  Alcotest.(check bool)
    "weighted deterministic" true
    (Rtrt_par.Chunk.weighted ~weights ~lanes:3
    = Rtrt_par.Chunk.weighted ~weights ~lanes:3)

(* Chunk.weighted invariants on random weight vectors: the chunks
   partition [0, n) in order; no chunk is empty when n >= lanes (the
   n < lanes clamp once handed middle lanes empty chunks and the whole
   tail to the last lane); the heaviest chunk is within one item of
   the ideal share; all-zero weights split evenly. *)
let prop_weighted_chunks =
  let arb =
    QCheck.make
      ~print:(fun (ws, lanes) ->
        Printf.sprintf "lanes=%d weights=[%s]" lanes
          (String.concat ";" (List.map string_of_int (Array.to_list ws))))
      QCheck.Gen.(
        let* lanes = int_range 1 8 in
        let* n = int_range 0 40 in
        let* ws = array_repeat n (int_range 0 20) in
        return (ws, lanes))
  in
  QCheck.Test.make ~name:"Chunk.weighted invariants" ~count:500 arb
    (fun (weights, lanes) ->
      let n = Array.length weights in
      let chunks = Rtrt_par.Chunk.weighted ~weights ~lanes in
      if Array.length chunks <> lanes then
        QCheck.Test.fail_report "wrong number of chunks";
      (* Contiguous in-order partition of [0, n). *)
      let pos = ref 0 in
      Array.iter
        (fun (start, len) ->
          if start <> !pos || len < 0 then
            QCheck.Test.fail_report "not a contiguous partition";
          pos := start + len)
        chunks;
      if !pos <> n then QCheck.Test.fail_report "does not cover [0, n)";
      (* No empty chunk when there are enough items. *)
      if n >= lanes && Array.exists (fun (_, len) -> len = 0) chunks then
        QCheck.Test.fail_report "empty chunk despite n >= lanes";
      (* n < lanes: one item each for the first n lanes, empty tail. *)
      if n < lanes then
        Array.iteri
          (fun l (_, len) ->
            if len <> (if l < n then 1 else 0) then
              QCheck.Test.fail_report "n < lanes must give 1 item per lane")
          chunks;
      (* Weight balance: no chunk exceeds the ideal share by more than
         one item's weight. *)
      let total = Array.fold_left ( + ) 0 weights in
      let max_w = Array.fold_left max 0 weights in
      let bound = ((total + lanes - 1) / lanes) + max_w in
      Array.iter
        (fun (start, len) ->
          let w = ref 0 in
          for i = start to start + len - 1 do
            w := !w + weights.(i)
          done;
          if !w > bound then
            QCheck.Test.fail_reportf "chunk weight %d exceeds bound %d" !w
              bound)
        chunks;
      (* All-zero weights carry no information: split evenly. *)
      (total <> 0 || chunks = Rtrt_par.Chunk.even ~n ~lanes))

(* ------------------------------------------------------------------ *)
(* Random datasets (same shape as test_compose's generator) *)

let arb_dataset =
  QCheck.make
    ~print:(fun (n, e) -> Printf.sprintf "n=%d m=%d" n (Array.length e))
    QCheck.Gen.(
      let* n = int_range 8 60 in
      let* m = int_range 4 150 in
      let* pairs =
        array_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let pairs =
        Array.map
          (fun (a, b) -> if a = b then (a, (b + 1) mod n) else (a, b))
          pairs
      in
      return (n, pairs))

let dataset_of (n, pairs) =
  {
    Datagen.Dataset.name = "rand";
    n_nodes = n;
    left = Array.map fst pairs;
    right = Array.map snd pairs;
    coords = None;
  }

(* ------------------------------------------------------------------ *)
(* Parallel tiled executors are bitwise identical to the serial
   executor on the same (level-major renumbered) schedule — including
   the privatize-and-combine reduction path, for every kernel, plan
   and domain count. *)

let kernels_under_test =
  [
    ("moldyn", Kernels.Moldyn.of_dataset);
    ("nbf", Kernels.Nbf.of_dataset);
    ("irreg", Kernels.Irreg.of_dataset);
  ]

let full_growth_plans =
  [
    Compose.Plan.with_fst ~seed_part_size:5 Compose.Plan.cpack_lexgroup_twice;
    Compose.Plan.with_fst ~seed_part_size:7 Compose.Plan.cpack;
  ]

let check_par_matches_serial ?batch ?tier ?(steps = 2) ~domains plan kernel =
  let result = Harness.Experiment.inspect plan kernel in
  match result.Compose.Inspector.schedule with
  | None -> Alcotest.fail "sparse-tiled plan produced no schedule"
  | Some sched ->
    let k = result.Compose.Inspector.kernel in
    let tiles =
      Compose.Legality.tile_fns_of_schedule sched
        ~loop_sizes:k.Kernels.Kernel.loop_sizes
    in
    let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
    let par = Reorder.Tile_par.analyze ~chain ~tiles in
    let k_ser = k.Kernels.Kernel.copy () in
    let k_par = k.Kernels.Kernel.copy () in
    Rtrt_par.Pool.with_pool ~domains (fun pool ->
        let pe =
          k_par.Kernels.Kernel.plan_par ~pool sched
            ~level_of:par.Reorder.Tile_par.level_of
        in
        k_ser.Kernels.Kernel.run_tiled pe.Kernels.Kernel.par_sched ~steps;
        pe.Kernels.Kernel.par_run ?batch ?tier ~steps ());
    Kernels.Kernel.snapshots_equal_bits
      (k_ser.Kernels.Kernel.snapshot ())
      (k_par.Kernels.Kernel.snapshot ())

let prop_kernels_bitwise =
  QCheck.Test.make ~name:"parallel tiled executors bitwise = serial" ~count:12
    arb_dataset (fun spec ->
      let d = dataset_of spec in
      List.for_all
        (fun (_, of_dataset) ->
          List.for_all
            (fun plan ->
              List.for_all
                (fun domains ->
                  check_par_matches_serial ~domains plan (of_dataset d))
                domain_counts)
            full_growth_plans)
        kernels_under_test)

(* The reduction-combining path specifically: moldyn at a scale where
   many tiles share force entries, on an off-count pool. *)
let test_moldyn_reduction_combine () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let kernel = Kernels.Moldyn.of_dataset d in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:24 Compose.Plan.cpack_lexgroup_twice
  in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Fmt.str "moldyn bitwise at %d domains" domains)
        true
        (check_par_matches_serial ~domains plan kernel))
    [ 2; 3 ]

(* Step batching never changes results: k whole sweeps per pool
   dispatch must be bitwise-identical to one sweep per dispatch, for
   every kernel (including the reduction combining path) and domain
   count. steps = 5 exercises partial tails for both k = 2 (5 = 2+2+1)
   and k = 8 (one short batch). *)
let prop_batch_bitwise =
  QCheck.Test.make ~name:"~batch:k bitwise = serial, k in {1,2,8}" ~count:6
    arb_dataset (fun spec ->
      let d = dataset_of spec in
      let plan = List.hd full_growth_plans in
      List.for_all
        (fun (_, of_dataset) ->
          List.for_all
            (fun batch ->
              List.for_all
                (fun domains ->
                  check_par_matches_serial ~batch ~steps:5 ~domains plan
                    (of_dataset d))
                domain_counts)
            [ 1; 2; 8 ])
        kernels_under_test)

(* The auto-fallback Serial tier runs the plain tile-major loop on the
   caller — still bitwise-identical, and batching composes with it. *)
let test_serial_tier_bitwise () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:24 Compose.Plan.cpack_lexgroup_twice
  in
  List.iter
    (fun (name, of_dataset) ->
      Alcotest.(check bool)
        (name ^ " serial tier bitwise") true
        (check_par_matches_serial ~batch:2 ~tier:Rtrt_par.Exec.Serial ~steps:3
           ~domains:4 plan (of_dataset d)))
    kernels_under_test

(* Tier decision sanity: when a serial step costs ~nothing, barrier
   overhead alone must push the decision to Serial; when a serial step
   is astronomically slow, the modeled parallel fraction wins. *)
let test_tier_decision () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let kernel = Kernels.Moldyn.of_dataset d in
  let result =
    Harness.Experiment.inspect
      (Compose.Plan.with_fst ~seed_part_size:24
         Compose.Plan.cpack_lexgroup_twice)
      kernel
  in
  let sched = Option.get result.Compose.Inspector.schedule in
  let k = result.Compose.Inspector.kernel in
  let tiles =
    Compose.Legality.tile_fns_of_schedule sched
      ~loop_sizes:k.Kernels.Kernel.loop_sizes
  in
  let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
  let par = Reorder.Tile_par.analyze ~chain ~tiles in
  Rtrt_par.Pool.with_pool ~domains:2 (fun pool ->
      let pe =
        k.Kernels.Kernel.plan_par ~pool sched
          ~level_of:par.Reorder.Tile_par.level_of
      in
      let cheap =
        pe.Kernels.Kernel.par_decide ~serial_ns_per_step:1.0 ~batch:1
      in
      Alcotest.(check string)
        "negligible serial work falls back to serial" "serial"
        (Rtrt_par.Exec.tier_name cheap.Rtrt_par.Exec.d_tier);
      Alcotest.(check bool)
        "parallel steps pay barriers" true
        (cheap.Rtrt_par.Exec.d_barriers_per_step > 0);
      Alcotest.(check bool)
        "calibration ran" true
        (cheap.Rtrt_par.Exec.d_barrier_cost_ns >= 0.0
        && cheap.Rtrt_par.Exec.d_dispatch_cost_ns >= 0.0);
      let dear =
        pe.Kernels.Kernel.par_decide ~serial_ns_per_step:1e12 ~batch:8
      in
      Alcotest.(check string)
        "huge serial work goes parallel" "parallel"
        (Rtrt_par.Exec.tier_name dear.Rtrt_par.Exec.d_tier);
      Alcotest.(check bool)
        "modeled parallel step beats serial" true
        (dear.Rtrt_par.Exec.d_modeled_par_ns_per_step < 1e12))

(* Mid-range tier decision: the Amdahl model divides the
   parallelizable share by the lane count, so Parallel wins above a
   FINITE pivot cost

     pivot = (barriers x barrier_cost + dispatch / batch)
             / (frac x (1 - 1/lanes))

   computed here from the decision's own read-back overheads. A model
   that forgets the division charges serial + overheads at every
   serial cost and never picks Parallel at any finite pivot, so the
   2 x pivot case passes only with the division in place. *)
let test_tier_decision_midrange () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
  let kernel = Kernels.Moldyn.of_dataset d in
  let result =
    Harness.Experiment.inspect
      (Compose.Plan.with_fst ~seed_part_size:24
         Compose.Plan.cpack_lexgroup_twice)
      kernel
  in
  let sched = Option.get result.Compose.Inspector.schedule in
  let k = result.Compose.Inspector.kernel in
  let tiles =
    Compose.Legality.tile_fns_of_schedule sched
      ~loop_sizes:k.Kernels.Kernel.loop_sizes
  in
  let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
  let par = Reorder.Tile_par.analyze ~chain ~tiles in
  Rtrt_par.Pool.with_pool ~domains:2 (fun pool ->
      let pe =
        k.Kernels.Kernel.plan_par ~pool sched
          ~level_of:par.Reorder.Tile_par.level_of
      in
      let batch = 4 in
      let probe = pe.Kernels.Kernel.par_decide ~serial_ns_per_step:1.0 ~batch in
      let frac = probe.Rtrt_par.Exec.d_par_frac in
      let lanes = float_of_int probe.Rtrt_par.Exec.d_lanes in
      Alcotest.(check bool)
        "some iterations live in parallel levels" true
        (frac > 0.0 && frac <= 1.0);
      Alcotest.(check bool) "multi-lane pool" true (lanes >= 2.0);
      let overhead =
        (float_of_int probe.Rtrt_par.Exec.d_barriers_per_step
        *. probe.Rtrt_par.Exec.d_barrier_cost_ns)
        +. (probe.Rtrt_par.Exec.d_dispatch_cost_ns /. float_of_int batch)
      in
      let pivot = overhead /. (frac *. (1.0 -. (1.0 /. lanes))) in
      Alcotest.(check bool)
        "pivot is mid-range, not an extreme" true
        (pivot > 1.0 && pivot < 1e12);
      let above =
        pe.Kernels.Kernel.par_decide ~serial_ns_per_step:(2.0 *. pivot) ~batch
      in
      Alcotest.(check string)
        "2x pivot goes parallel" "parallel"
        (Rtrt_par.Exec.tier_name above.Rtrt_par.Exec.d_tier);
      (* The modeled step must be the Amdahl formula exactly. *)
      let expect =
        (2.0 *. pivot *. (1.0 -. frac))
        +. (2.0 *. pivot *. frac /. lanes)
        +. overhead
      in
      Alcotest.(check bool)
        "modeled step matches the Amdahl formula" true
        (Float.abs (above.Rtrt_par.Exec.d_modeled_par_ns_per_step -. expect)
        <= 1e-6 *. expect);
      (* An undivided model (serial + overheads) would reject this
         point — and every other finite one. *)
      Alcotest.(check bool)
        "undivided model would stay serial here" true
        ((2.0 *. pivot) +. overhead > 2.0 *. pivot);
      let below =
        pe.Kernels.Kernel.par_decide ~serial_ns_per_step:(0.5 *. pivot) ~batch
      in
      Alcotest.(check string)
        "half pivot stays serial" "serial"
        (Rtrt_par.Exec.tier_name below.Rtrt_par.Exec.d_tier))

(* Property: on a multi-lane pool with parallel levels, the tier IS
   the model — Parallel exactly when the modeled parallel step is no
   slower than the serial step (ties go to Parallel). Serial costs
   sweep 1 ns .. 1e12 ns on a log grid. *)
let prop_tier_iff_modeled =
  let setup =
    lazy
      (let d = Option.get (Datagen.Generators.by_name ~scale:512 "mol1") in
       let kernel = Kernels.Moldyn.of_dataset d in
       let result =
         Harness.Experiment.inspect
           (Compose.Plan.with_fst ~seed_part_size:24
              Compose.Plan.cpack_lexgroup_twice)
           kernel
       in
       let sched = Option.get result.Compose.Inspector.schedule in
       let k = result.Compose.Inspector.kernel in
       let tiles =
         Compose.Legality.tile_fns_of_schedule sched
           ~loop_sizes:k.Kernels.Kernel.loop_sizes
       in
       let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
       let par = Reorder.Tile_par.analyze ~chain ~tiles in
       (k, sched, par.Reorder.Tile_par.level_of))
  in
  QCheck.Test.make ~name:"tier = Parallel iff modeled <= serial (2+ lanes)"
    ~count:12
    QCheck.(pair (int_range 0 120) (int_range 1 8))
    (fun (e, batch) ->
      let k, sched, level_of = Lazy.force setup in
      let serial = 10.0 ** (float_of_int e /. 10.0) in
      Rtrt_par.Pool.with_pool ~domains:2 (fun pool ->
          let pe = k.Kernels.Kernel.plan_par ~pool sched ~level_of in
          let d = pe.Kernels.Kernel.par_decide ~serial_ns_per_step:serial ~batch in
          (d.Rtrt_par.Exec.d_tier = Rtrt_par.Exec.Parallel)
          = (d.Rtrt_par.Exec.d_modeled_par_ns_per_step <= serial)))

(* ------------------------------------------------------------------ *)
(* Barrier stress: the sense-reversing barrier under randomized
   per-lane arrival jitter. Each dispatch round r reads every lane's
   slot (must hold r - 1: the previous round's post-barrier writes are
   visible, and no write of round r can overtake the in-job barrier),
   then barriers in-job, then writes its own slot. 1000 rounds of this
   hammers wake-up, reuse-after-reset and cross-lane publication; a
   single lost wake-up deadlocks the test rather than corrupting it. *)

let barrier_stress ~domains ~rounds pool =
  let slots = Array.make (domains * 16) 0 in
  let bad = Atomic.make 0 in
  let rng = Array.init (domains * 16) (fun i -> Random.State.make [| i |]) in
  for r = 1 to rounds do
    Rtrt_par.Pool.parallel pool (fun lane ->
        let st = rng.(lane * 16) in
        let spin = Random.State.int st 512 in
        for _ = 1 to spin do
          ignore (Sys.opaque_identity spin)
        done;
        for l = 0 to domains - 1 do
          if slots.(l * 16) <> r - 1 then Atomic.incr bad
        done;
        Rtrt_par.Pool.barrier pool ~lane;
        let spin = Random.State.int st 512 in
        for _ = 1 to spin do
          ignore (Sys.opaque_identity spin)
        done;
        slots.(lane * 16) <- r)
  done;
  Alcotest.(check int) "no stale cross-lane reads" 0 (Atomic.get bad);
  Array.iteri
    (fun l _ ->
      if l mod 16 = 0 then
        Alcotest.(check int)
          (Fmt.str "lane %d completed every round" (l / 16))
          rounds slots.(l))
    slots

let test_barrier_stress () =
  List.iter
    (fun domains ->
      Rtrt_par.Pool.with_pool ~domains (barrier_stress ~domains ~rounds:1000))
    domain_counts

(* Same stress with tracing on: the in-job barrier feeds the lane's
   barrier split and the exact accounting invariant must survive all
   the jitter — work + barrier + idle = accounted wall time, per lane,
   to the nanosecond. *)
let test_barrier_stress_accounting () =
  let domains = 4 and rounds = 200 in
  ignore
    (with_memory_sink (fun () ->
         Rtrt_par.Pool.with_pool ~domains (fun pool ->
             barrier_stress ~domains ~rounds pool;
             Alcotest.(check int) "all rounds accounted" rounds
               (Rtrt_par.Pool.accounted_rounds pool);
             let total = Rtrt_par.Pool.accounted_ns pool in
             Array.iteri
               (fun lane { Rtrt_par.Pool.work_ns; barrier_ns; idle_ns } ->
                 Alcotest.(check int)
                   (Fmt.str "lane %d: work + barrier + idle = accounted" lane)
                   total
                   (work_ns + barrier_ns + idle_ns))
               (Rtrt_par.Pool.lane_stats pool))))

(* ------------------------------------------------------------------ *)
(* Gauss-Seidel: tile-DAG and wavefront parallel executors *)

let gs_setup graph =
  let n = Irgraph.Csr.num_nodes graph in
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 13)) in
  let partition = Irgraph.Partition.gpart graph ~part_size:8 in
  let graph', f', _sigma, seed =
    Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition
  in
  let tiling =
    Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep:1 ~sweeps:3
  in
  (graph', f', tiling)

let u_bits (t : Kernels.Gauss_seidel.t) = Array.map Int64.bits_of_float t.u

let prop_gs_tiled_par_bitwise =
  QCheck.Test.make ~name:"parallel tiled GS bitwise = serial tiled GS"
    ~count:20 arb_dataset (fun spec ->
      let graph = Datagen.Dataset.to_graph (dataset_of spec) in
      let graph', f', tiling = gs_setup graph in
      let dag = Kernels.Gauss_seidel.tile_dag graph' tiling in
      List.for_all
        (fun domains ->
          let t_ser = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
          let t_par = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
          Kernels.Gauss_seidel.run_tiled t_ser tiling;
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              Kernels.Gauss_seidel.run_tiled_par ~pool t_par tiling dag);
          u_bits t_ser = u_bits t_par)
        domain_counts)

let prop_gs_wavefront_bitwise =
  QCheck.Test.make ~name:"parallel wavefront GS bitwise = plain GS" ~count:20
    arb_dataset (fun spec ->
      let graph = Datagen.Dataset.to_graph (dataset_of spec) in
      let preds = Kernels.Gauss_seidel.wavefront_preds graph in
      let w = Reorder.Wavefront.run preds in
      if not (Reorder.Wavefront.check preds w) then
        QCheck.Test.fail_report "Wavefront.check rejected its own levels";
      let n = Irgraph.Csr.num_nodes graph in
      let f = Array.init n (fun i -> 0.5 +. float_of_int (i mod 7)) in
      List.for_all
        (fun domains ->
          let t_ser = Kernels.Gauss_seidel.create ~graph ~f in
          let t_par = Kernels.Gauss_seidel.create ~graph ~f in
          Kernels.Gauss_seidel.run_plain t_ser ~sweeps:3;
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              Kernels.Gauss_seidel.run_wavefront_par ~pool t_par w ~sweeps:3);
          u_bits t_ser = u_bits t_par)
        domain_counts)

let test_gs_foil_tiled_par () =
  let graph =
    Datagen.Dataset.to_graph (Datagen.Generators.foil ~scale:512 ())
  in
  let graph', f', tiling = gs_setup graph in
  let dag = Kernels.Gauss_seidel.tile_dag graph' tiling in
  Alcotest.(check (list reject))
    "tiling legal" []
    (List.map (fun _ -> ())
       (Kernels.Gauss_seidel.check_constraints graph' tiling));
  let t_ser = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  let t_par = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_tiled t_ser tiling;
  Rtrt_par.Pool.with_pool ~domains:4 (fun pool ->
      Kernels.Gauss_seidel.run_tiled_par ~pool t_par tiling dag);
  Alcotest.(check bool) "bitwise" true (u_bits t_ser = u_bits t_par)

(* ------------------------------------------------------------------ *)
(* Parallel inspector hot paths *)

let access_of spec =
  let d = dataset_of spec in
  Reorder.Access.of_pairs ~n_data:d.Datagen.Dataset.n_nodes
    d.Datagen.Dataset.left d.Datagen.Dataset.right

let prop_par_lexgroup =
  QCheck.Test.make ~name:"Inspect.lexgroup = Lexgroup.run" ~count:30
    arb_dataset (fun spec ->
      let a = access_of spec in
      let serial = Reorder.Lexgroup.run a in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              Reorder.Perm.equal serial (Rtrt_par.Inspect.lexgroup ~pool a)))
        domain_counts)

let prop_par_gpart =
  QCheck.Test.make ~name:"Inspect.gpart = Gpart_reorder.run" ~count:30
    arb_dataset (fun spec ->
      let a = access_of spec in
      let serial = Reorder.Gpart_reorder.run a ~part_size:6 in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              Reorder.Perm.equal serial
                (Rtrt_par.Inspect.gpart ~pool a ~part_size:6)))
        domain_counts)

let is_permutation p =
  let n = Reorder.Perm.size p in
  let seen = Array.make n false in
  (try
     for i = 0 to n - 1 do
       let j = Reorder.Perm.forward p i in
       if j < 0 || j >= n || seen.(j) then raise Exit;
       seen.(j) <- true
     done;
     true
   with Exit -> false)

let prop_par_gpart_cpack =
  QCheck.Test.make
    ~name:"Inspect.gpart_cpack valid and domain-count invariant" ~count:30
    arb_dataset (fun spec ->
      let a = access_of spec in
      let at domains =
        Rtrt_par.Pool.with_pool ~domains (fun pool ->
            Rtrt_par.Inspect.gpart_cpack ~pool a ~part_size:6)
      in
      let base = at 1 in
      is_permutation base
      && List.for_all
           (fun domains -> Reorder.Perm.equal base (at domains))
           domain_counts)

(* Deterministic permutation from a generated seed (Fisher-Yates over
   a private state) — fused views need a random sigma/delta pair. *)
let perm_of_seed n seed =
  let st = Random.State.make [| seed; n |] in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let arb_viewed_dataset =
  QCheck.make
    ~print:(fun ((n, e), seed) ->
      Printf.sprintf "n=%d m=%d seed=%d" n (Array.length e) seed)
    QCheck.Gen.(
      let* n = int_range 8 60 in
      let* m = int_range 4 150 in
      let* pairs =
        array_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let pairs =
        Array.map
          (fun (a, b) -> if a = b then (a, (b + 1) mod n) else (a, b))
          pairs
      in
      let* seed = int_range 0 1_000_000 in
      return ((n, pairs), seed))

let view_of spec seed =
  let a = access_of spec in
  let sigma = perm_of_seed (Reorder.Access.n_data a) seed in
  let delta_inv = perm_of_seed (Reorder.Access.n_iter a) (seed + 1) in
  (a, sigma, delta_inv)

let prop_par_cpack =
  QCheck.Test.make ~name:"Inspect.cpack = Cpack.run / run_in_order / run_view"
    ~count:30 arb_viewed_dataset (fun (spec, seed) ->
      let a, sigma, delta_inv = view_of spec seed in
      let order = perm_of_seed (Reorder.Access.n_iter a) (seed + 2) in
      let plain = Reorder.Cpack.run a in
      let in_order = Reorder.Cpack.run_in_order a ~order in
      let viewed = Reorder.Cpack.run_view a ~sigma ~delta_inv in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              Reorder.Perm.equal plain (Rtrt_par.Inspect.cpack ~pool a)
              && Reorder.Perm.equal in_order
                   (Rtrt_par.Inspect.cpack ~pool ~order a)
              && Reorder.Perm.equal viewed
                   (Rtrt_par.Inspect.cpack ~pool ~view:(sigma, delta_inv) a)))
        domain_counts)

let prop_par_materialize =
  QCheck.Test.make
    ~name:"Inspect.materialize = reorder_iters . map_data" ~count:30
    arb_viewed_dataset (fun (spec, seed) ->
      let a, sigma, delta_inv = view_of spec seed in
      let serial =
        Reorder.Access.reorder_iters
          (Reorder.Perm.of_inverse delta_inv)
          (Reorder.Access.map_data (Reorder.Perm.of_forward sigma) a)
      in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              serial = Rtrt_par.Inspect.materialize ~pool a ~sigma ~delta_inv))
        domain_counts)

let prop_par_to_graph =
  QCheck.Test.make ~name:"Inspect.to_graph = Access.to_graph" ~count:30
    arb_viewed_dataset (fun (spec, seed) ->
      let a, sigma, delta_inv = view_of spec seed in
      let plain = Reorder.Access.to_graph a in
      let viewed =
        Reorder.Access.to_graph
          (Reorder.Access.reorder_iters
             (Reorder.Perm.of_inverse delta_inv)
             (Reorder.Access.map_data (Reorder.Perm.of_forward sigma) a))
      in
      let eq (x : Irgraph.Csr.t) (y : Irgraph.Csr.t) =
        x.Irgraph.Csr.row_ptr = y.Irgraph.Csr.row_ptr
        && x.Irgraph.Csr.col = y.Irgraph.Csr.col
      in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              eq plain (Rtrt_par.Inspect.to_graph ~pool a)
              && eq viewed
                   (Rtrt_par.Inspect.to_graph ~pool ~view:(sigma, delta_inv) a)))
        domain_counts)

let tile_fn_of_seed ~n ~n_tiles seed =
  let st = Random.State.make [| seed; n; n_tiles |] in
  {
    Reorder.Sparse_tile.n_tiles;
    tile_of = Array.init n (fun _ -> Random.State.int st n_tiles);
  }

let prop_par_growth =
  QCheck.Test.make
    ~name:"Inspect.grow_backward/forward = serial growth" ~count:30
    arb_viewed_dataset (fun (spec, seed) ->
      let conn = access_of spec in
      let nb = Reorder.Access.n_iter conn in
      let n = Reorder.Access.n_data conn in
      let n_tiles = 1 + (seed mod 7) in
      let next = tile_fn_of_seed ~n:nb ~n_tiles seed in
      let prev = tile_fn_of_seed ~n ~n_tiles (seed + 1) in
      let back = Reorder.Sparse_tile.grow_backward_scatter ~conn ~next in
      let fwd = Reorder.Sparse_tile.grow_forward ~conn ~prev in
      let eq (x : Reorder.Sparse_tile.tile_fn) (y : Reorder.Sparse_tile.tile_fn)
          =
        x.Reorder.Sparse_tile.n_tiles = y.Reorder.Sparse_tile.n_tiles
        && x.Reorder.Sparse_tile.tile_of = y.Reorder.Sparse_tile.tile_of
      in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              eq back (Rtrt_par.Inspect.grow_backward ~pool ~conn ~next)
              && eq fwd (Rtrt_par.Inspect.grow_forward ~pool ~conn ~prev)))
        domain_counts)

let prop_par_legality =
  QCheck.Test.make
    ~name:"Inspect.check_legality = Sparse_tile.check_legality" ~count:30
    arb_viewed_dataset (fun (spec, seed) ->
      let conn = access_of spec in
      let nb = Reorder.Access.n_iter conn in
      let n = Reorder.Access.n_data conn in
      let chain =
        Reorder.Sparse_tile.make_chain ~loop_sizes:[| n; nb |] ~conn:[| conn |]
      in
      let n_tiles = 1 + (seed mod 5) in
      let tiles =
        [|
          tile_fn_of_seed ~n ~n_tiles seed;
          tile_fn_of_seed ~n:nb ~n_tiles (seed + 1);
        |]
      in
      let serial = Reorder.Sparse_tile.check_legality ~chain ~tiles in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              serial = Rtrt_par.Inspect.check_legality ~pool ~chain ~tiles))
        domain_counts)

let prop_par_multilevel =
  QCheck.Test.make ~name:"Inspect.multilevel = Multilevel_reorder.run"
    ~count:15 arb_dataset (fun spec ->
      let a = access_of spec in
      let serial = Reorder.Multilevel_reorder.run a ~part_size:6 in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              Reorder.Perm.equal serial
                (Rtrt_par.Inspect.multilevel ~pool a ~part_size:6)))
        domain_counts)

(* A pooled inspector run produces the same schedule/kernel as the
   serial inspector, end to end. *)
let test_inspector_pool_invariant () =
  let d = Option.get (Datagen.Generators.by_name ~scale:512 "foil") in
  let kernel = Kernels.Irreg.of_dataset d in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:16
      (Compose.Plan.gpart_lexgroup ~part_size:16)
  in
  let serial = Harness.Experiment.inspect plan kernel in
  Rtrt_par.Pool.with_pool ~domains:4 (fun pool ->
      let pooled = Harness.Experiment.inspect ~pool plan kernel in
      let snap (r : Compose.Inspector.result) =
        let k = r.Compose.Inspector.kernel in
        k.Kernels.Kernel.run ~steps:1;
        k.Kernels.Kernel.snapshot ()
      in
      Alcotest.(check bool)
        "pooled inspector = serial inspector" true
        (Kernels.Kernel.snapshots_equal_bits (snap serial) (snap pooled)))

(* ------------------------------------------------------------------ *)
(* Metrics are atomic under concurrent increments *)

(* Per-lane accounting: with tracing on, every round is accounted and
   each lane's work/barrier/idle split sums exactly to the pool's
   accounted wall time; barrier waits feed the pool.barrier_wait
   histogram; shutdown publishes per-lane gauges. *)
let test_pool_accounting () =
  let lanes = 4 and rounds = 5 in
  let h = Rtrt_obs.Hist.hist "pool.barrier_wait" in
  let hd = Rtrt_obs.Hist.hist "pool.dispatch_wait" in
  ignore
    (with_memory_sink (fun () ->
         Rtrt_par.Pool.with_pool ~domains:lanes (fun pool ->
             for _ = 1 to rounds do
               Rtrt_par.Pool.parallel pool (fun lane ->
                   (* Skewed work so barrier waits are non-trivial. *)
                   ignore
                     (Sys.opaque_identity
                        (Array.init (1024 * (lane + 1)) (fun i -> i * i))))
             done;
             Alcotest.(check int) "all rounds accounted" rounds
               (Rtrt_par.Pool.accounted_rounds pool);
             let total = Rtrt_par.Pool.accounted_ns pool in
             Alcotest.(check bool) "accounted time positive" true (total > 0);
             let stats = Rtrt_par.Pool.lane_stats pool in
             Alcotest.(check int) "a stats entry per lane" lanes
               (Array.length stats);
             Array.iteri
               (fun lane
                    { Rtrt_par.Pool.work_ns; barrier_ns; idle_ns } ->
                 Alcotest.(check bool)
                   (Fmt.str "lane %d components non-negative" lane)
                   true
                   (work_ns >= 0 && barrier_ns >= 0 && idle_ns >= 0);
                 Alcotest.(check int)
                   (Fmt.str "lane %d: work + barrier + idle = accounted" lane)
                   total
                   (work_ns + barrier_ns + idle_ns))
               stats;
             Alcotest.(check int) "barrier histogram fed by every lane"
               (rounds * lanes) (Rtrt_obs.Hist.count h);
             Alcotest.(check int) "dispatch histogram fed once per round"
               rounds (Rtrt_obs.Hist.count hd);
             Alcotest.(check bool) "dispatch wait accumulated" true
               (Rtrt_par.Pool.dispatch_wait_ns pool >= 0));
         (* with_pool shut the pool down, publishing per-lane gauges. *)
         List.iter
           (fun name ->
             match
               Rtrt_obs.Metrics.gauge_value (Rtrt_obs.Metrics.gauge name)
             with
             | Some v ->
               Alcotest.(check bool) (name ^ " non-negative") true (v >= 0.0)
             | None -> Alcotest.fail (name ^ " gauge missing"))
           [
             "pool.lane0.work_ns"; "pool.lane0.barrier_ns";
             "pool.lane0.idle_ns"; "pool.lane3.work_ns";
           ]))

let test_pool_accounting_disabled () =
  Alcotest.(check bool) "tracing off" false (Rtrt_obs.enabled ());
  Rtrt_par.Pool.with_pool ~domains:2 (fun pool ->
      Rtrt_par.Pool.parallel pool (fun _ -> ());
      Alcotest.(check int) "no rounds accounted" 0
        (Rtrt_par.Pool.accounted_rounds pool);
      Alcotest.(check int) "no accounted ns" 0
        (Rtrt_par.Pool.accounted_ns pool))

(* Registration from one domain racing dump on another: every handle
   must appear — the registry traversals snapshot under the mutex, so
   a Hashtbl resize can no longer truncate a concurrent dump. *)
let test_concurrent_registration () =
  let n_each = 200 in
  ignore
    (with_memory_sink (fun () ->
         let other =
           Domain.spawn (fun () ->
               for i = 1 to n_each do
                 Rtrt_obs.Metrics.incr
                   (Rtrt_obs.Metrics.counter (Fmt.str "stress.a.%d" i));
                 ignore (Rtrt_obs.Metrics.dump ())
               done)
         in
         for i = 1 to n_each do
           Rtrt_obs.Metrics.incr
             (Rtrt_obs.Metrics.counter (Fmt.str "stress.b.%d" i));
           ignore (Rtrt_obs.Metrics.dump ())
         done;
         Domain.join other;
         let dump = Rtrt_obs.Metrics.dump () in
         let count prefix =
           List.length
             (List.filter
                (fun (name, _) ->
                  String.length name >= String.length prefix
                  && String.sub name 0 (String.length prefix) = prefix)
                dump)
         in
         Alcotest.(check int) "all domain-A counters dumped" n_each
           (count "stress.a.");
         Alcotest.(check int) "all domain-B counters dumped" n_each
           (count "stress.b.")))

let test_metrics_atomic () =
  let c = Rtrt_obs.Metrics.counter "par.test.hits" in
  Rtrt_obs.Metrics.reset ();
  let per_lane = 10_000 and lanes = 4 in
  ignore
    (with_memory_sink (fun () ->
         Rtrt_par.Pool.with_pool ~domains:lanes (fun pool ->
             Rtrt_par.Pool.parallel pool (fun _ ->
                 for _ = 1 to per_lane do
                   Rtrt_obs.Metrics.incr c
                 done));
         Alcotest.(check int)
           "no lost increments" (per_lane * lanes)
           (Rtrt_obs.Metrics.value c)))

(* ------------------------------------------------------------------ *)
(* Tile_par / Schedule micro-tests *)

let test_tile_par_of_edges () =
  (* 0 -> 1, 0 -> 2, {1,2} -> 3: levels {0} {1,2} {3}. *)
  let p =
    Reorder.Tile_par.of_edges ~n_tiles:4 ~tile_cost:[| 1; 1; 1; 1 |]
      [| (0, 1); (0, 2); (1, 3); (2, 3) |]
  in
  Alcotest.(check int) "levels" 3 p.Reorder.Tile_par.n_levels;
  Alcotest.(check (array int)) "level_of" [| 0; 1; 1; 2 |]
    p.Reorder.Tile_par.level_of;
  match
    Reorder.Tile_par.of_edges ~n_tiles:2 ~tile_cost:[| 1; 1 |] [| (1, 0) |]
  with
  | _ -> Alcotest.fail "backward edge accepted"
  | exception Invalid_argument _ -> ()

let test_permute_tiles_rejects () =
  let tf tile_of = { Reorder.Sparse_tile.n_tiles = 2; tile_of } in
  let sched =
    Reorder.Schedule.of_tile_fns
      [| tf [| 0; 0; 1; 1 |]; tf [| 0; 1; 0; 1 |] |]
  in
  (match Reorder.Schedule.permute_tiles sched ~order:[| 0 |] with
  | _ -> Alcotest.fail "wrong-size order accepted"
  | exception Invalid_argument _ -> ());
  match
    Reorder.Schedule.permute_tiles sched
      ~order:(Array.make (Reorder.Schedule.n_tiles sched) 0)
  with
  | _ -> Alcotest.fail "non-permutation order accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel sum" `Quick test_pool_sum;
          Alcotest.test_case "size-1 inline" `Quick test_pool_one_inline;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "chunking" `Quick test_chunking;
        ]
        @ qsuite [ prop_weighted_chunks ] );
      ( "barrier",
        [
          Alcotest.test_case "stress 1/2/4 domains x 1000 rounds" `Slow
            test_barrier_stress;
          Alcotest.test_case "stress accounting invariant" `Slow
            test_barrier_stress_accounting;
        ] );
      ( "executors",
        Alcotest.test_case "moldyn reduction combine" `Slow
          test_moldyn_reduction_combine
        :: Alcotest.test_case "serial tier bitwise" `Slow
             test_serial_tier_bitwise
        :: Alcotest.test_case "tier decision" `Slow test_tier_decision
        :: Alcotest.test_case "tier decision mid-range pivot" `Slow
             test_tier_decision_midrange
        :: qsuite
             [ prop_kernels_bitwise; prop_batch_bitwise; prop_tier_iff_modeled ] );
      ( "gauss-seidel",
        Alcotest.test_case "foil tiled par" `Slow test_gs_foil_tiled_par
        :: qsuite [ prop_gs_tiled_par_bitwise; prop_gs_wavefront_bitwise ] );
      ( "inspector",
        Alcotest.test_case "pooled inspector invariant" `Slow
          test_inspector_pool_invariant
        :: qsuite
             [
               prop_par_lexgroup;
               prop_par_gpart;
               prop_par_gpart_cpack;
               prop_par_cpack;
               prop_par_materialize;
               prop_par_to_graph;
               prop_par_growth;
               prop_par_legality;
               prop_par_multilevel;
             ] );
      ( "obs",
        [
          Alcotest.test_case "atomic metrics" `Quick test_metrics_atomic;
          Alcotest.test_case "pool accounting invariant" `Quick
            test_pool_accounting;
          Alcotest.test_case "accounting off when disabled" `Quick
            test_pool_accounting_disabled;
          Alcotest.test_case "concurrent registration vs dump" `Quick
            test_concurrent_registration;
        ] );
      ( "tile-par",
        [
          Alcotest.test_case "of_edges" `Quick test_tile_par_of_edges;
          Alcotest.test_case "permute_tiles rejects" `Quick
            test_permute_tiles_rejects;
        ] );
    ]
