(* Plan repair under graph churn must be a pure cost optimization:
   after rewiring k% of interactions, [Compose.Repair.repair] must be
   bit-identical — schedule, reordering functions, and executor
   results — to regrowing the frozen plan from scratch over the
   churned access, on every kernel, serial and pooled, across chained
   churn rounds. The churn itself must preserve the degree multiset
   and be deterministic under the figure RNG, and repaired plans must
   interoperate with the plan cache and the staged specializer without
   replaying anything stale. *)

open Compose

let dataset_of (n, pairs) =
  {
    Datagen.Dataset.name = "rand";
    n_nodes = n;
    left = Array.map fst pairs;
    right = Array.map snd pairs;
    coords = None;
  }

let kernels_under_test =
  [
    ("moldyn", Kernels.Moldyn.of_dataset);
    ("nbf", Kernels.Nbf.of_dataset);
    ("irreg", Kernels.Irreg.of_dataset);
    ("cg", Kernels.Cg.of_dataset);
  ]

(* ------------------------------------------------------------------ *)
(* Random full-sparse-tiling plans (repair's supported growth). *)

let gen_prefix_transform =
  QCheck.Gen.(
    let* pick = int_range 0 5 in
    let* sz = int_range 4 16 in
    return
      (match pick with
      | 0 -> Transform.(Data_reorder Cpack)
      | 1 -> Transform.(Data_reorder (Gpart { part_size = sz }))
      | 2 -> Transform.(Data_reorder Rcm)
      | 3 -> Transform.(Iter_reorder Lexgroup)
      | _ -> Transform.(Iter_reorder Lexsort)))

let gen_fst_plan =
  QCheck.Gen.(
    let* prefix_len = int_range 1 2 in
    let* prefix = list_repeat prefix_len gen_prefix_transform in
    let* seed_sz = int_range 4 16 in
    let* seed =
      oneofl
        Transform.
          [
            Seed_block { part_size = seed_sz };
            Seed_gpart { part_size = seed_sz };
          ]
    in
    let* tile_pack = bool in
    let tail =
      Transform.Sparse_tile { growth = Transform.Full; seed }
      ::
      (if tile_pack then [ Transform.(Data_reorder Tile_pack) ] else [])
    in
    return (Plan.make ~name:"rand-fst" (prefix @ tail)))

let arb_case =
  QCheck.make
    ~print:(fun ((n, e, churn_seed), plan) ->
      Fmt.str "n=%d m=%d churn_seed=%d plan=%a" n (Array.length e) churn_seed
        Plan.pp plan)
    QCheck.Gen.(
      let* n = int_range 8 60 in
      let* m = int_range 4 150 in
      let* pairs =
        array_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let pairs =
        Array.map
          (fun (a, b) -> if a = b then (a, (b + 1) mod n) else (a, b))
          pairs
      in
      let* churn_seed = int_range 0 10_000 in
      let* plan = gen_fst_plan in
      return ((n, pairs, churn_seed), plan))

(* ------------------------------------------------------------------ *)
(* Bit-identity of two inspector results, including executor output *)

let schedules_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Reorder.Schedule.equal a b
  | _ -> false

let exec_bits (r : Inspector.result) =
  let k = r.kernel.Kernels.Kernel.copy () in
  (match r.schedule with
  | Some s -> k.Kernels.Kernel.run_tiled s ~steps:2
  | None -> k.Kernels.Kernel.run ~steps:2);
  k.Kernels.Kernel.snapshot ()

let results_equal (a : Inspector.result) (b : Inspector.result) =
  Reorder.Perm.equal a.sigma_total b.sigma_total
  && Reorder.Perm.equal a.delta_total b.delta_total
  && schedules_equal a.schedule b.schedule
  && Kernels.Kernel.snapshots_equal_bits
       (a.kernel.Kernels.Kernel.snapshot ())
       (b.kernel.Kernels.Kernel.snapshot ())
  && Kernels.Kernel.snapshots_equal_bits (exec_bits a) (exec_bits b)

(* ------------------------------------------------------------------ *)
(* Churn invariants: degree multiset preserved, deterministic *)

let degrees (d : Datagen.Dataset.t) =
  let deg = Array.make d.n_nodes 0 in
  Array.iter (fun v -> deg.(v) <- deg.(v) + 1) d.left;
  Array.iter (fun v -> deg.(v) <- deg.(v) + 1) d.right;
  deg

let prop_churn_degree_preserving =
  QCheck.Test.make ~name:"churn preserves the degree multiset" ~count:100
    arb_case (fun ((n, pairs, seed), _) ->
      let d = dataset_of (n, pairs) in
      let churned, damage =
        Datagen.Churn.rewire ~rng:(Datagen.Rng.create seed) ~fraction:0.1 d
      in
      degrees churned = degrees d
      && Array.length churned.Datagen.Dataset.left = Array.length d.left
      && Datagen.Churn.damaged_edges damage
         <= damage.Datagen.Churn.requested_edges * 2)

let prop_churn_deterministic =
  QCheck.Test.make ~name:"churn is deterministic under the figure RNG"
    ~count:50 arb_case (fun ((n, pairs, seed), _) ->
      let d = dataset_of (n, pairs) in
      let c1, g1 =
        Datagen.Churn.rewire ~rng:(Datagen.Rng.create seed) ~fraction:0.05 d
      in
      let c2, g2 =
        Datagen.Churn.rewire ~rng:(Datagen.Rng.create seed) ~fraction:0.05 d
      in
      c1.Datagen.Dataset.left = c2.Datagen.Dataset.left
      && c1.Datagen.Dataset.right = c2.Datagen.Dataset.right
      && g1.Datagen.Churn.rewired = g2.Datagen.Churn.rewired
      && g1.Datagen.Churn.touched_nodes = g2.Datagen.Churn.touched_nodes)

(* ------------------------------------------------------------------ *)
(* The contract: repair(churn(d, k)) == frozen regrowth, bit for bit,
   on every kernel, at k in {1, 5, 10}%, across two chained rounds. *)

let repair_matches_regrow ?pool ~fraction ~rounds plan of_dataset d seed =
  let kernel = of_dataset d in
  let cold = Inspector.run ?pool plan kernel in
  let state = Repair.prepare plan cold in
  (match Repair.supported state with
  | Ok () -> ()
  | Error r -> QCheck.Test.fail_reportf "unsupported FST plan: %s" r);
  let rng = Datagen.Rng.create seed in
  let rec go d round =
    round > rounds
    ||
    let churned, damage = Datagen.Churn.rewire ~rng ~fraction d in
    let kernel' = of_dataset churned in
    let repaired, info =
      Repair.repair ?pool ~policy:`Repair ~verify:true state kernel' ~damage
    in
    let reference = Repair.regrow ?pool state kernel' in
    (not info.Repair.fell_back)
    && info.Repair.verified = Some true
    && results_equal repaired reference
    && go churned (round + 1)
  in
  go d 1

let prop_repair_bit_identical =
  QCheck.Test.make
    ~name:"repair = frozen regrowth (all kernels, 1/5/10%, chained)"
    ~count:20 arb_case (fun ((n, pairs, seed), plan) ->
      QCheck.assume (Result.is_ok (Plan.validate plan));
      let d = dataset_of (n, pairs) in
      List.for_all
        (fun (_, of_dataset) ->
          List.for_all
            (fun fraction ->
              repair_matches_regrow ~fraction ~rounds:2 plan of_dataset d seed)
            [ 0.01; 0.05; 0.10 ])
        kernels_under_test)

let prop_repair_pooled =
  QCheck.Test.make ~name:"pooled repair/regrow = serial" ~count:8 arb_case
    (fun ((n, pairs, seed), plan) ->
      QCheck.assume (Result.is_ok (Plan.validate plan));
      let d = dataset_of (n, pairs) in
      List.for_all
        (fun domains ->
          Rtrt_par.Pool.with_pool ~domains (fun pool ->
              repair_matches_regrow ~pool ~fraction:0.05 ~rounds:1 plan
                Kernels.Moldyn.of_dataset d seed))
        [ 1; 2; 4 ])

(* Plans without sparse tiling repair by pure frozen replay. *)
let prop_repair_pure_replay =
  QCheck.Test.make ~name:"pure-replay repair (no tiling)" ~count:15 arb_case
    (fun ((n, pairs, seed), _) ->
      let d = dataset_of (n, pairs) in
      repair_matches_regrow ~fraction:0.05 ~rounds:1 Plan.cpack_lexgroup
        Kernels.Nbf.of_dataset d seed)

(* ------------------------------------------------------------------ *)
(* Fallback paths *)

let fst_plan = Plan.with_fst ~seed_part_size:16 Plan.cpack_lexgroup

let mol1 () = Option.get (Datagen.Generators.by_name ~scale:512 "mol1")

let churn ?(fraction = 0.05) ?(seed = 7) d =
  Datagen.Churn.rewire ~rng:(Datagen.Rng.create seed) ~fraction d

(* Heavy damage takes the cold path and re-seeds the state; the result
   must be a genuine fresh inspection. *)
let test_auto_fallback () =
  let d = mol1 () in
  let kernel = Kernels.Moldyn.of_dataset d in
  let cold = Inspector.run fst_plan kernel in
  let state = Repair.prepare fst_plan cold in
  let churned, damage = churn ~fraction:0.6 d in
  let kernel' = Kernels.Moldyn.of_dataset churned in
  let repaired, info = Repair.repair state kernel' ~damage in
  Alcotest.(check bool) "fell back" true info.Repair.fell_back;
  Alcotest.(check bool)
    "matches a cold inspection" true
    (results_equal repaired (Inspector.run fst_plan kernel'));
  (* ... and the re-seeded state repairs incrementally again. *)
  let churned2, damage2 = churn ~seed:8 churned in
  let kernel2 = Kernels.Moldyn.of_dataset churned2 in
  let repaired2, info2 =
    Repair.repair ~policy:`Repair ~verify:true state kernel2 ~damage:damage2
  in
  Alcotest.(check bool) "second round incremental" false info2.Repair.fell_back;
  Alcotest.(check bool)
    "second round = regrowth" true
    (results_equal repaired2 (Repair.regrow state kernel2))

(* Cache-block growth is not incrementally repairable: the state says
   so and every repair is a (correct) cold fallback. *)
let test_cache_block_unsupported () =
  let d = mol1 () in
  let plan = Plan.with_cache_block ~seed_part_size:16 Plan.cpack in
  let kernel = Kernels.Moldyn.of_dataset d in
  let cold = Inspector.run plan kernel in
  let state = Repair.prepare plan cold in
  Alcotest.(check bool)
    "unsupported" true
    (Result.is_error (Repair.supported state));
  let churned, damage = churn d in
  let kernel' = Kernels.Moldyn.of_dataset churned in
  let repaired, info = Repair.repair ~policy:`Repair state kernel' ~damage in
  Alcotest.(check bool) "falls back" true info.Repair.fell_back;
  Alcotest.(check bool)
    "fallback is a cold inspection" true
    (results_equal repaired (Inspector.run plan kernel'))

(* ------------------------------------------------------------------ *)
(* Plan-cache and specialization interplay *)

let test_plancache_interop () =
  let d = mol1 () in
  let kernel = Kernels.Moldyn.of_dataset d in
  let cache = Rtrt_plancache.Cache.create () in
  let cold = Inspector.run ~cache fst_plan kernel in
  let state = Repair.prepare fst_plan cold in
  let churned, damage = churn d in
  let kernel' = Kernels.Moldyn.of_dataset churned in
  (* Content addressing: the pre-churn entry cannot replay against the
     churned kernel — its key is gone. *)
  Alcotest.(check bool)
    "churn re-fingerprints the cold key" false
    (Rtrt_plancache.Fingerprint.equal
       (Inspector.fingerprint fst_plan kernel)
       (Inspector.fingerprint fst_plan kernel'));
  (* The repair key is distinct from the churned kernel's cold key:
     the repaired entry never shadows a cold inspection. *)
  Alcotest.(check bool)
    "repair key distinct from cold key" false
    (Rtrt_plancache.Fingerprint.equal
       (Repair.fingerprint state kernel')
       (Inspector.fingerprint fst_plan kernel'));
  let repaired, info =
    Repair.repair ~cache ~policy:`Repair state kernel' ~damage
  in
  Alcotest.(check bool) "first repair stores" false info.Repair.cache_replayed;
  Alcotest.(check bool)
    "moved something (churn was real)" true
    (info.Repair.tiles_moved > 0);
  (* A second process arriving at the same churned state replays the
     stored repair and verifies it against its own splice. *)
  let state2 = Repair.prepare fst_plan (Inspector.run fst_plan kernel) in
  let repaired2, info2 =
    Repair.repair ~cache ~policy:`Repair state2 kernel' ~damage
  in
  Alcotest.(check bool) "second repair replays" true info2.Repair.cache_replayed;
  Alcotest.(check bool)
    "replayed repair bit-identical" true
    (results_equal repaired repaired2)

(* The spliced schedule is a fresh value with its own shape and
   specialization key: nothing pinned to the pre-churn schedule can be
   replayed against it. *)
let test_no_stale_specialization () =
  let d = mol1 () in
  let kernel = Kernels.Moldyn.of_dataset d in
  let cold = Inspector.run fst_plan kernel in
  let state = Repair.prepare fst_plan cold in
  let old_sched = Option.get cold.Inspector.schedule in
  let old_shape = Reorder.Shape.analyze old_sched in
  let old_spec = Specialize.make kernel old_sched in
  let churned, damage = churn d in
  let kernel' = Kernels.Moldyn.of_dataset churned in
  let repaired, info = Repair.repair ~policy:`Repair state kernel' ~damage in
  Alcotest.(check bool) "moved something" true (info.Repair.tiles_moved > 0);
  let new_sched = Option.get repaired.Inspector.schedule in
  Alcotest.(check bool)
    "old shape index does not apply to the repaired schedule" false
    (Reorder.Shape.for_schedule old_shape new_sched);
  let new_spec = Specialize.make repaired.Inspector.kernel new_sched in
  Alcotest.(check bool)
    "specialization key re-fingerprints" true
    (old_spec.Specialize.key <> new_spec.Specialize.key);
  Alcotest.(check bool)
    "repaired result carries a fresh shape summary" true
    (match repaired.Inspector.shape_summary with
    | Some s ->
      Reorder.Shape.summary_equal s
        (Reorder.Shape.summary (Reorder.Shape.analyze new_sched))
    | None -> false)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "churn"
    [
      ( "datagen",
        qsuite [ prop_churn_degree_preserving; prop_churn_deterministic ] );
      ( "bit-identity",
        qsuite
          [
            prop_repair_bit_identical;
            prop_repair_pooled;
            prop_repair_pure_replay;
          ] );
      ( "fallback",
        [
          Alcotest.test_case "auto fallback past the damage threshold" `Quick
            test_auto_fallback;
          Alcotest.test_case "cache-block plans fall back" `Quick
            test_cache_block_unsupported;
        ] );
      ( "interop",
        [
          Alcotest.test_case "plan cache: repair keys and replay" `Quick
            test_plancache_interop;
          Alcotest.test_case "no stale specialization" `Quick
            test_no_stale_specialization;
        ] );
    ]
