(* Tests for the run-time reordering library: permutations, access
   patterns, and every inspector (CPACK, Gpart, RCM, lexGroup, lexSort,
   bucket tiling, sparse tiling, tilePack, schedules). Small concrete
   cases mirror the paper's Figures 2-5 example. *)

open Reorder

let perm = Alcotest.testable Perm.pp Perm.equal

(* ------------------------------------------------------------------ *)
(* Perm *)

let test_perm_roundtrip () =
  let p = Perm.of_forward [| 2; 0; 1; 3 |] in
  Alcotest.(check int) "forward" 2 (Perm.forward p 0);
  Alcotest.(check int) "backward" 0 (Perm.backward p 2);
  Alcotest.check perm "invert twice" p (Perm.invert (Perm.invert p))

let test_perm_of_inverse () =
  (* inv.(new) = old: positions [2;0;1] mean old 2 is first. *)
  let p = Perm.of_inverse [| 2; 0; 1 |] in
  Alcotest.(check int) "old 2 -> new 0" 0 (Perm.forward p 2);
  Alcotest.(check int) "old 0 -> new 1" 1 (Perm.forward p 0)

let test_perm_compose () =
  let p1 = Perm.of_forward [| 1; 2; 0 |] in
  let p2 = Perm.of_forward [| 0; 2; 1 |] in
  let c = Perm.compose p2 p1 in
  (* 0 -p1-> 1 -p2-> 2 *)
  Alcotest.(check int) "composition order" 2 (Perm.forward c 0)

let test_perm_apply () =
  let p = Perm.of_forward [| 2; 0; 1 |] in
  let a = Perm.apply_to_array p [| "a"; "b"; "c" |] in
  Alcotest.(check (array string)) "moved" [| "b"; "c"; "a" |] a;
  let f = Perm.apply_to_float_array p [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 0.0))) "floats" [| 2.0; 3.0; 1.0 |] f

let test_perm_remap_values () =
  let p = Perm.of_forward [| 2; 0; 1 |] in
  Alcotest.(check (array int)) "values remapped" [| 2; 0; 1; 2 |]
    (Perm.remap_values p [| 0; 1; 2; 0 |])

let test_perm_invalid () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Perm: value 1 duplicated")
    (fun () -> ignore (Perm.of_forward [| 1; 1 |]));
  Alcotest.check_raises "range" (Invalid_argument "Perm: value 4 out of range")
    (fun () -> ignore (Perm.of_forward [| 0; 4 |]))

(* ------------------------------------------------------------------ *)
(* Access *)

(* The running example: 6 data locations, 6 interactions. This is the
   shape of Figure 2 (j-loop iterations touching pairs in x / fx). *)
let left_ex = [| 0; 3; 2; 5; 1; 4 |]
let right_ex = [| 3; 2; 5; 1; 4; 0 |]
let access_ex () = Access.of_pairs ~n_data:6 left_ex right_ex

let test_access_of_pairs () =
  let a = access_ex () in
  Alcotest.(check int) "iters" 6 (Access.n_iter a);
  Alcotest.(check int) "data" 6 (Access.n_data a);
  Alcotest.(check int) "touches" 12 (Access.n_touches a);
  Alcotest.(check (array int)) "touch of 1" [| 3; 2 |] (Access.touches a 1);
  Alcotest.(check int) "first touch" 3 (Access.first_touch a 1)

let test_access_identity () =
  let a = Access.identity 4 in
  Alcotest.(check (array int)) "identity" [| 2 |] (Access.touches a 2)

let test_access_map_data () =
  let a = access_ex () in
  let sigma = Perm.of_forward [| 5; 4; 3; 2; 1; 0 |] in
  let a' = Access.map_data sigma a in
  Alcotest.(check (array int)) "reversed locations" [| 5; 2 |]
    (Access.touches a' 0)

let test_access_reorder_iters () =
  let a = access_ex () in
  let delta = Perm.of_forward [| 5; 0; 1; 2; 3; 4 |] in
  let a' = Access.reorder_iters delta a in
  (* New iteration 0 is old iteration 1. *)
  Alcotest.(check (array int)) "moved iteration" [| 3; 2 |]
    (Access.touches a' 0);
  Alcotest.(check (array int)) "old 0 now last" [| 0; 3 |]
    (Access.touches a' 5)

let test_access_transpose () =
  let a = access_ex () in
  let t = Access.transpose a in
  Alcotest.(check int) "transpose iters = data" 6 (Access.n_iter t);
  (* Datum 0 is touched by iterations 0 (left) and 5 (right). *)
  Alcotest.(check (array int)) "touchers of 0" [| 0; 5 |] (Access.touches t 0)

let test_access_to_graph () =
  let a = access_ex () in
  let g = Access.to_graph a in
  Alcotest.(check int) "affinity edges" 6 (Irgraph.Csr.num_edges g)

(* ------------------------------------------------------------------ *)
(* CPACK *)

let test_cpack_first_touch_order () =
  let a = access_ex () in
  let sigma = Cpack.run a in
  (* Traversal order of locations: 0,3 / 3,2 / 2,5 / 5,1 / 1,4 / 4,0
     -> first touches: 0, 3, 2, 5, 1, 4. *)
  Alcotest.(check int) "0 stays" 0 (Perm.forward sigma 0);
  Alcotest.(check int) "3 second" 1 (Perm.forward sigma 3);
  Alcotest.(check int) "2 third" 2 (Perm.forward sigma 2);
  Alcotest.(check int) "5 fourth" 3 (Perm.forward sigma 5);
  Alcotest.(check int) "1 fifth" 4 (Perm.forward sigma 1);
  Alcotest.(check int) "4 sixth" 5 (Perm.forward sigma 4)

let test_cpack_untouched_tail () =
  (* Locations never touched keep original relative order at the end
     (the paper's final i-loop in Figure 10). *)
  let a = Access.of_pairs ~n_data:6 [| 4 |] [| 2 |] in
  let sigma = Cpack.run a in
  Alcotest.(check int) "4 first" 0 (Perm.forward sigma 4);
  Alcotest.(check int) "2 second" 1 (Perm.forward sigma 2);
  Alcotest.(check int) "0 third" 2 (Perm.forward sigma 0);
  Alcotest.(check int) "1 fourth" 3 (Perm.forward sigma 1);
  Alcotest.(check int) "3 fifth" 4 (Perm.forward sigma 3);
  Alcotest.(check int) "5 last" 5 (Perm.forward sigma 5)

let test_cpack_in_order () =
  let a = Access.of_pairs ~n_data:4 [| 0; 2 |] [| 1; 3 |] in
  let sigma = Cpack.run_in_order a ~order:[| 1; 0 |] in
  (* Visiting iteration 1 first: 2, 3, then 0, 1. *)
  Alcotest.(check int) "2 first" 0 (Perm.forward sigma 2);
  Alcotest.(check int) "0 third" 2 (Perm.forward sigma 0)

(* ------------------------------------------------------------------ *)
(* Gpart / RCM *)

let test_gpart_permutation_and_locality () =
  let a = access_ex () in
  let sigma, partition = Gpart_reorder.run_with_partition a ~part_size:3 in
  Alcotest.(check int) "parts" 2 (Irgraph.Partition.n_parts partition);
  (* Every part's data is numbered consecutively. *)
  let assign = Irgraph.Partition.assignment partition in
  let part_of_new = Array.make 6 (-1) in
  Array.iteri (fun old part -> part_of_new.(Perm.forward sigma old) <- part) assign;
  let changes = ref 0 in
  for nw = 1 to 5 do
    if part_of_new.(nw) <> part_of_new.(nw - 1) then incr changes
  done;
  Alcotest.(check int) "consecutive parts" 1 !changes

let test_rcm_reorder_is_perm () =
  let a = access_ex () in
  let sigma = Rcm_reorder.run a in
  Alcotest.(check int) "size" 6 (Perm.size sigma)

(* ------------------------------------------------------------------ *)
(* lexGroup / lexSort / bucket tiling *)

let test_lexgroup_groups_by_first_touch () =
  (* After CPACK the interactions touching low locations should come
     first (Figure 4). *)
  let a = access_ex () in
  let sigma = Cpack.run a in
  let a1 = Access.map_data sigma a in
  let delta = Lexgroup.run a1 in
  let a2 = Access.reorder_iters delta a1 in
  (* First touches must be non-decreasing in the new order. *)
  let prev = ref (-1) in
  for j = 0 to Access.n_iter a2 - 1 do
    let ft = Access.first_touch a2 j in
    Alcotest.(check bool) "sorted by first touch" true (ft >= !prev);
    prev := ft
  done

let test_lexgroup_stable () =
  (* Iterations with the same first touch keep original order. *)
  let a = Access.of_pairs ~n_data:3 [| 1; 0; 1; 0 |] [| 2; 2; 0; 1 |] in
  let delta = Lexgroup.run a in
  (* first touches: 1,0,1,0 -> groups: (1,3) then (0,2). *)
  Alcotest.(check int) "iter 1 first" 0 (Perm.forward delta 1);
  Alcotest.(check int) "iter 3 second" 1 (Perm.forward delta 3);
  Alcotest.(check int) "iter 0 third" 2 (Perm.forward delta 0);
  Alcotest.(check int) "iter 2 fourth" 3 (Perm.forward delta 2)

let test_lexsort_orders_tuples () =
  let a = Access.of_pairs ~n_data:4 [| 2; 0; 2; 0 |] [| 3; 1; 0; 2 |] in
  let delta = Lexsort.run a in
  let a' = Access.reorder_iters delta a in
  let tuples = List.init 4 (fun j -> Array.to_list (Access.touches a' j)) in
  Alcotest.(check (list (list int)))
    "lexicographically sorted"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 2; 0 ]; [ 2; 3 ] ]
    tuples

let test_lexsort_compare () =
  Alcotest.(check bool) "prefix shorter first" true
    (Lexsort.compare_tuples [| 1 |] [| 1; 0 |] < 0);
  Alcotest.(check bool) "equal" true (Lexsort.compare_tuples [| 2; 3 |] [| 2; 3 |] = 0)

let test_bucket_tile () =
  let a = Access.of_pairs ~n_data:8 [| 6; 1; 5; 0 |] [| 7; 2; 4; 3 |] in
  let bt = Bucket_tile.run a ~bucket_size:4 in
  Alcotest.(check int) "buckets" 2 bt.Bucket_tile.n_buckets;
  (* Iterations with first touch < 4 (iters 1 and 3) come first. *)
  Alcotest.(check int) "iter 1 early" 0 (Perm.forward bt.Bucket_tile.delta 1);
  Alcotest.(check int) "iter 3 second" 1 (Perm.forward bt.Bucket_tile.delta 3);
  Alcotest.(check (array int)) "bucket ids" [| 0; 0; 1; 1 |]
    bt.Bucket_tile.bucket_of_new

(* ------------------------------------------------------------------ *)
(* Sparse tiling *)

(* moldyn-shaped chain: i loop (6 iters, writes x[i]), j loop (6
   interactions reading x, writing fx), k loop (6 iters reading fx).
   conn.(0): j-iteration -> i-iterations it depends on = the pair
   access; conn.(1): k-iteration -> j-iterations = transpose. *)
let moldyn_chain () =
  let acc = access_ex () in
  let conn0 = acc in
  let conn1 = Access.transpose acc in
  Sparse_tile.make_chain ~loop_sizes:[| 6; 6; 6 |] ~conn:[| conn0; conn1 |]

let test_fst_legality () =
  let chain = moldyn_chain () in
  let seed =
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block ~n:6 ~part_size:2)
  in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  Alcotest.(check int) "three loops" 3 (Array.length tiles);
  Alcotest.(check (list (triple int int int)))
    "no violations" []
    (Sparse_tile.check_legality ~chain ~tiles)

let test_fst_seed_preserved () =
  let chain = moldyn_chain () in
  let seed =
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block ~n:6 ~part_size:3)
  in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  Alcotest.(check (array int)) "seed loop unchanged" seed.Sparse_tile.tile_of
    tiles.(1).Sparse_tile.tile_of

let test_fst_backward_min_forward_max () =
  (* Two j-iterations per tile; i-iterations take the min tile of the
     j's reading them, k's take the max of the j's writing them. *)
  let left = [| 0; 1; 2 |] and right = [| 1; 2; 3 |] in
  let acc = Access.of_pairs ~n_data:4 left right in
  let chain =
    Sparse_tile.make_chain ~loop_sizes:[| 4; 3; 4 |]
      ~conn:[| acc; Access.transpose acc |]
  in
  let seed = { Sparse_tile.n_tiles = 3; tile_of = [| 0; 1; 2 |] } in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  (* i=1 is read by j=0 (tile 0) and j=1 (tile 1): min = 0. *)
  Alcotest.(check int) "i1 min" 0 tiles.(0).Sparse_tile.tile_of.(1);
  (* k=2 is written by j=1 (tile 1) and j=2 (tile 2): max = 2. *)
  Alcotest.(check int) "k2 max" 2 tiles.(2).Sparse_tile.tile_of.(2);
  (* untouched i=... all touched here; i=0 read only by j=0 -> 0. *)
  Alcotest.(check int) "i0" 0 tiles.(0).Sparse_tile.tile_of.(0);
  Alcotest.(check (list (triple int int int)))
    "legal" []
    (Sparse_tile.check_legality ~chain ~tiles)

let test_cache_block_leftover () =
  let left = [| 0; 1; 2 |] and right = [| 1; 2; 3 |] in
  let acc = Access.of_pairs ~n_data:4 left right in
  let chain =
    Sparse_tile.make_chain ~loop_sizes:[| 4; 3; 4 |]
      ~conn:[| acc; Access.transpose acc |]
  in
  (* Seed on loop 0: tiles {0,1} and {2,3}. *)
  let seed = { Sparse_tile.n_tiles = 2; tile_of = [| 0; 0; 1; 1 |] } in
  let tiles = Sparse_tile.cache_block ~chain ~seed_tiles:seed in
  (* j=0 reads i-iterations 0,1 (both tile 0) -> tile 0.
     j=1 reads 1,2 (tiles 0 and 1) -> leftover tile 2.
     j=2 reads 2,3 (both tile 1) -> tile 1. *)
  Alcotest.(check (array int)) "j tiles" [| 0; 2; 1 |]
    tiles.(1).Sparse_tile.tile_of;
  Alcotest.(check int) "unified tile count" 3 tiles.(1).Sparse_tile.n_tiles;
  Alcotest.(check (list (triple int int int)))
    "legal" []
    (Sparse_tile.check_legality ~chain ~tiles)

(* ------------------------------------------------------------------ *)
(* Schedule + tilePack *)

let test_schedule_coverage_and_order () =
  let chain = moldyn_chain () in
  let seed =
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block ~n:6 ~part_size:2)
  in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  let sched = Schedule.of_tile_fns tiles in
  Alcotest.(check bool) "coverage" true
    (Schedule.check_coverage sched ~loop_sizes:[| 6; 6; 6 |]);
  Alcotest.(check int) "total" 18 (Schedule.total_iterations sched);
  (* The seed loop's order concatenates blocks in tile order. *)
  Alcotest.(check (array int)) "seed order" [| 0; 1; 2; 3; 4; 5 |]
    (Schedule.loop_order sched 1)

let test_schedule_perm_of_loop () =
  let tf0 = { Sparse_tile.n_tiles = 2; tile_of = [| 1; 0; 1 |] } in
  let sched = Schedule.of_tile_fns [| tf0 |] in
  (* Tile 0 holds iter 1; tile 1 holds iters 0, 2. Order: 1, 0, 2. *)
  let p = Schedule.perm_of_loop sched 0 in
  Alcotest.(check int) "iter 1 first" 0 (Perm.forward p 1);
  Alcotest.(check int) "iter 0 second" 1 (Perm.forward p 0);
  Alcotest.(check int) "iter 2 third" 2 (Perm.forward p 2)

let test_tile_pack_contiguous () =
  (* After tilePack, the data touched by tile 0's seed-loop iterations
     occupies a prefix of the data space. *)
  let chain = moldyn_chain () in
  let acc = access_ex () in
  let seed =
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block ~n:6 ~part_size:2)
  in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  let sched = Schedule.of_tile_fns tiles in
  let sigma = Tile_pack.run ~schedule:sched ~accesses:[ (1, acc) ] ~n_data:6 in
  let tile0_iters = Schedule.items sched ~tile:0 ~loop:1 in
  let touched =
    Array.to_list tile0_iters
    |> List.concat_map (fun j -> Array.to_list (Access.touches acc j))
    |> List.sort_uniq compare
  in
  let new_locs = List.map (Perm.forward sigma) touched |> List.sort compare in
  List.iteri
    (fun k loc -> Alcotest.(check int) "prefix" k loc)
    new_locs

(* ------------------------------------------------------------------ *)
(* Property tests *)

let arb_access =
  let gen =
    QCheck.Gen.(
      let* n_data = int_range 2 30 in
      let* n_iter = int_range 1 60 in
      let* left = array_repeat n_iter (int_range 0 (n_data - 1)) in
      let* right = array_repeat n_iter (int_range 0 (n_data - 1)) in
      return (n_data, left, right))
  in
  QCheck.make
    ~print:(fun (n, l, _) ->
      Printf.sprintf "n_data=%d n_iter=%d" n (Array.length l))
    gen

let prop_cpack_permutation =
  QCheck.Test.make ~name:"cpack returns a permutation" ~count:200 arb_access
    (fun (n_data, left, right) ->
      let a = Access.of_pairs ~n_data left right in
      let sigma = Cpack.run a in
      Perm.size sigma = n_data
      &&
      let seen = Array.make n_data false in
      Array.iter (fun v -> seen.(v) <- true) (Perm.to_forward_array sigma);
      Array.for_all (fun b -> b) seen)

let prop_lexgroup_permutation =
  QCheck.Test.make ~name:"lexgroup returns an iteration permutation"
    ~count:200 arb_access (fun (n_data, left, right) ->
      let a = Access.of_pairs ~n_data left right in
      let delta = Lexgroup.run a in
      let n = Array.length left in
      Perm.size delta = n
      &&
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) (Perm.to_forward_array delta);
      Array.for_all (fun b -> b) seen)

let prop_lexgroup_sorts_first_touch =
  QCheck.Test.make ~name:"lexgroup first-touches non-decreasing" ~count:200
    arb_access (fun (n_data, left, right) ->
      let a = Access.of_pairs ~n_data left right in
      let a' = Access.reorder_iters (Lexgroup.run a) a in
      let ok = ref true in
      let prev = ref (-1) in
      for j = 0 to Access.n_iter a' - 1 do
        let ft = Access.first_touch a' j in
        if ft < !prev then ok := false;
        prev := ft
      done;
      !ok)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose . transpose preserves touches"
    ~count:200 arb_access (fun (n_data, left, right) ->
      let a = Access.of_pairs ~n_data left right in
      let tt = Access.transpose (Access.transpose a) in
      Access.n_iter tt = Access.n_iter a
      && List.for_all
           (fun it ->
             let s1 = Array.to_list (Access.touches a it) |> List.sort compare in
             let s2 = Array.to_list (Access.touches tt it) |> List.sort compare in
             s1 = s2)
           (List.init (Access.n_iter a) Fun.id))

let prop_fst_always_legal =
  QCheck.Test.make ~name:"full sparse tiling is always legal" ~count:100
    arb_access (fun (n_data, left, right) ->
      let acc = Access.of_pairs ~n_data left right in
      let n_iter = Array.length left in
      let chain =
        Sparse_tile.make_chain
          ~loop_sizes:[| n_data; n_iter; n_data |]
          ~conn:[| acc; Access.transpose acc |]
      in
      let seed =
        Sparse_tile.tile_fn_of_partition
          (Irgraph.Partition.block ~n:n_iter ~part_size:4)
      in
      let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
      Sparse_tile.check_legality ~chain ~tiles = [])

let prop_cache_block_always_legal =
  QCheck.Test.make ~name:"cache blocking is always legal" ~count:100
    arb_access (fun (n_data, left, right) ->
      let acc = Access.of_pairs ~n_data left right in
      let n_iter = Array.length left in
      let chain =
        Sparse_tile.make_chain
          ~loop_sizes:[| n_data; n_iter; n_data |]
          ~conn:[| acc; Access.transpose acc |]
      in
      let seed =
        Sparse_tile.tile_fn_of_partition
          (Irgraph.Partition.block ~n:n_data ~part_size:4)
      in
      let tiles = Sparse_tile.cache_block ~chain ~seed_tiles:seed in
      Sparse_tile.check_legality ~chain ~tiles = [])

let prop_schedule_covers =
  QCheck.Test.make ~name:"schedule covers all iterations once" ~count:100
    arb_access (fun (n_data, left, right) ->
      let acc = Access.of_pairs ~n_data left right in
      let n_iter = Array.length left in
      let chain =
        Sparse_tile.make_chain
          ~loop_sizes:[| n_data; n_iter; n_data |]
          ~conn:[| acc; Access.transpose acc |]
      in
      let seed =
        Sparse_tile.tile_fn_of_partition
          (Irgraph.Partition.block ~n:n_iter ~part_size:3)
      in
      let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
      let sched = Schedule.of_tile_fns tiles in
      Schedule.check_coverage sched ~loop_sizes:[| n_data; n_iter; n_data |])

(* Reference schedule implementation over nested arrays — the pre-flat
   representation, reimplemented independently so the flat-CSR
   [Schedule] can be checked operation by operation against it. *)
module Nested_sched = struct
  type t = { nt : int; nl : int; rows : int array array array }
  (* rows.(tile).(loop) = member iterations, ascending *)

  let of_tile_fns (tiles : Sparse_tile.tile_fn array) =
    let nt = tiles.(0).Sparse_tile.n_tiles in
    let nl = Array.length tiles in
    let rows = Array.init nt (fun _ -> Array.make nl [||]) in
    Array.iteri
      (fun l (tf : Sparse_tile.tile_fn) ->
        let lists = Array.make nt [] in
        let tile_of = tf.Sparse_tile.tile_of in
        for it = Array.length tile_of - 1 downto 0 do
          lists.(tile_of.(it)) <- it :: lists.(tile_of.(it))
        done;
        Array.iteri (fun t members -> rows.(t).(l) <- Array.of_list members)
          lists)
      tiles;
    { nt; nl; rows }

  let items s ~tile ~loop = s.rows.(tile).(loop)

  let loop_order s l =
    Array.concat (Array.to_list (Array.map (fun per -> per.(l)) s.rows))

  let remap_loop s ~loop p =
    let rows =
      Array.map
        (fun per ->
          Array.mapi
            (fun l row ->
              if l <> loop then Array.copy row
              else begin
                let r = Array.map (Perm.forward p) row in
                Array.sort compare r;
                r
              end)
            per)
        s.rows
    in
    { s with rows }

  let permute_tiles s ~order =
    { s with rows = Array.map (fun old -> s.rows.(old)) order }
end

let schedules_agree sched (r : Nested_sched.t) =
  Schedule.n_tiles sched = r.Nested_sched.nt
  && Schedule.n_loops sched = r.Nested_sched.nl
  &&
  let ok = ref true in
  for tile = 0 to r.Nested_sched.nt - 1 do
    for loop = 0 to r.Nested_sched.nl - 1 do
      if Schedule.items sched ~tile ~loop <> Nested_sched.items r ~tile ~loop
      then ok := false
    done
  done;
  for l = 0 to r.Nested_sched.nl - 1 do
    if Schedule.loop_order sched l <> Nested_sched.loop_order r l then
      ok := false
  done;
  !ok

let prop_schedule_flat_matches_nested =
  QCheck.Test.make ~name:"flat schedule matches nested reference" ~count:100
    arb_access (fun (n_data, left, right) ->
      let acc = Access.of_pairs ~n_data left right in
      let n_iter = Array.length left in
      let chain =
        Sparse_tile.make_chain
          ~loop_sizes:[| n_data; n_iter; n_data |]
          ~conn:[| acc; Access.transpose acc |]
      in
      let seed =
        Sparse_tile.tile_fn_of_partition
          (Irgraph.Partition.block ~n:n_iter ~part_size:3)
      in
      let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
      let sched = Schedule.of_tile_fns tiles in
      let r = Nested_sched.of_tile_fns tiles in
      let rot n = Perm.of_forward (Array.init n (fun i -> (i + 1) mod n)) in
      let p = rot n_iter in
      let nt = Schedule.n_tiles sched in
      let order = Array.init nt (fun t -> (t + 1) mod nt) in
      schedules_agree sched r
      && schedules_agree
           (Schedule.remap_loop sched ~loop:1 p)
           (Nested_sched.remap_loop r ~loop:1 p)
      && schedules_agree
           (Schedule.permute_tiles sched ~order)
           (Nested_sched.permute_tiles r ~order))

(* Data and iteration reorderings act on independent coordinates of an
   access pattern, so their application order cannot matter. *)
let prop_map_data_reorder_iters_commute =
  QCheck.Test.make ~name:"map_data and reorder_iters commute" ~count:150
    arb_access (fun (n_data, left, right) ->
      let a = Access.of_pairs ~n_data left right in
      let n_iter = Array.length left in
      let rng_perm seed n =
        let arr = Array.init n (fun i -> i) in
        let s = ref seed in
        for i = n - 1 downto 1 do
          s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
          let j = !s mod (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        Perm.of_forward arr
      in
      let sigma = rng_perm 7 n_data and delta = rng_perm 11 n_iter in
      let ab = Access.map_data sigma (Access.reorder_iters delta a) in
      let ba = Access.reorder_iters delta (Access.map_data sigma a) in
      List.for_all
        (fun it -> Access.touches ab it = Access.touches ba it)
        (List.init n_iter Fun.id))

let prop_perm_compose_assoc =
  let arb_perm =
    QCheck.make
      ~print:(fun a ->
        String.concat "," (List.map string_of_int (Array.to_list a)))
      QCheck.Gen.(
        let* n = return 8 in
        let a = Array.init n (fun i -> i) in
        let* swaps = list_repeat 10 (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
        List.iter
          (fun (i, j) ->
            let t = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- t)
          swaps;
        return a)
  in
  QCheck.Test.make ~name:"perm compose associative" ~count:200
    (QCheck.triple arb_perm arb_perm arb_perm) (fun (a, b, c) ->
      let pa = Perm.of_forward a
      and pb = Perm.of_forward b
      and pc = Perm.of_forward c in
      Perm.equal
        (Perm.compose (Perm.compose pc pb) pa)
        (Perm.compose pc (Perm.compose pb pa)))

let prop_perm_inverse_cancels =
  let arb_perm =
    QCheck.make
      ~print:(fun a ->
        String.concat "," (List.map string_of_int (Array.to_list a)))
      QCheck.Gen.(
        let* n = int_range 1 12 in
        let a = Array.init n (fun i -> i) in
        let* swaps =
          list_repeat 12 (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
        in
        List.iter
          (fun (i, j) ->
            let t = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- t)
          swaps;
        return a)
  in
  QCheck.Test.make ~name:"p . p^-1 = id" ~count:200 arb_perm (fun a ->
      let p = Perm.of_forward a in
      Perm.is_id (Perm.compose p (Perm.invert p))
      && Perm.is_id (Perm.compose (Perm.invert p) p))

let test_access_shift_data () =
  let a = Access.of_pairs ~n_data:4 [| 0; 2 |] [| 1; 3 |] in
  let shifted = Access.shift_data ~offset:10 ~n_data:14 a in
  Alcotest.(check (array int)) "shifted" [| 10; 11 |] (Access.touches shifted 0);
  Alcotest.(check int) "n_data" 14 (Access.n_data shifted);
  Alcotest.check_raises "bad embedding"
    (Invalid_argument "Access.shift_data: bad embedding") (fun () ->
      ignore (Access.shift_data ~offset:12 ~n_data:14 a))

let test_access_of_lists () =
  let a = Access.of_lists ~n_data:5 [| [ 0; 1; 2 ]; []; [ 4 ] |] in
  Alcotest.(check int) "iters" 3 (Access.n_iter a);
  Alcotest.(check (array int)) "triple" [| 0; 1; 2 |] (Access.touches a 0);
  Alcotest.(check (array int)) "empty" [||] (Access.touches a 1);
  Alcotest.check_raises "first touch of empty"
    (Invalid_argument "Access.first_touch: empty") (fun () ->
      ignore (Access.first_touch a 1))

let test_schedule_remap_loop () =
  let tf = { Sparse_tile.n_tiles = 2; tile_of = [| 0; 0; 1; 1 |] } in
  let sched = Schedule.of_tile_fns [| tf |] in
  (* Reverse the ids; members must be re-sorted within tiles. *)
  let p = Perm.of_forward [| 3; 2; 1; 0 |] in
  let sched' = Schedule.remap_loop sched ~loop:0 p in
  Alcotest.(check (array int)) "tile 0 remapped sorted" [| 2; 3 |]
    (Schedule.items sched' ~tile:0 ~loop:0);
  Alcotest.(check (array int)) "tile 1 remapped sorted" [| 0; 1 |]
    (Schedule.items sched' ~tile:1 ~loop:0)

(* ------------------------------------------------------------------ *)
(* Wavefront parallelization *)

let test_wavefront_chain () =
  (* 0 <- 1 <- 2: a pure chain has no parallelism. *)
  let preds = Access.of_lists ~n_data:3 [| []; [ 0 ]; [ 1 ] |] in
  let w = Wavefront.run preds in
  Alcotest.(check int) "levels" 3 w.Wavefront.n_levels;
  Alcotest.(check bool) "valid" true (Wavefront.check preds w)

let test_wavefront_independent () =
  let preds = Access.of_lists ~n_data:4 [| []; []; []; [] |] in
  let w = Wavefront.run preds in
  Alcotest.(check int) "one level" 1 w.Wavefront.n_levels;
  Alcotest.(check (float 0.001)) "parallelism 4" 4.0
    (Wavefront.average_parallelism w)

let test_wavefront_diamond () =
  (* 1 and 2 depend on 0; 3 depends on both. *)
  let preds = Access.of_lists ~n_data:4 [| []; [ 0 ]; [ 0 ]; [ 1; 2 ] |] in
  let w = Wavefront.run preds in
  Alcotest.(check int) "3 levels" 3 w.Wavefront.n_levels;
  Alcotest.(check (array int)) "middle level" [| 1; 2 |] w.Wavefront.levels.(1);
  Alcotest.(check int) "makespan 1 proc" 4 (Wavefront.makespan w ~processors:1);
  Alcotest.(check int) "makespan 2 procs" 3 (Wavefront.makespan w ~processors:2)

let test_wavefront_rejects_forward () =
  let preds = Access.of_lists ~n_data:2 [| [ 1 ]; [] |] in
  Alcotest.check_raises "forward dep"
    (Invalid_argument "Wavefront.run: dependence on a later iteration")
    (fun () -> ignore (Wavefront.run preds))

(* ------------------------------------------------------------------ *)
(* Tile-level parallelism *)

let tiled_example () =
  (* Two disjoint interaction groups: tiles over them are independent. *)
  let left = [| 0; 1; 4; 5 |] and right = [| 1; 2; 5; 6 |] in
  let acc = Access.of_pairs ~n_data:8 left right in
  let chain =
    Sparse_tile.make_chain ~loop_sizes:[| 8; 4; 8 |]
      ~conn:[| acc; Access.transpose acc |]
  in
  let seed = { Sparse_tile.n_tiles = 2; tile_of = [| 0; 0; 1; 1 |] } in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  (chain, tiles)

let test_tile_par_independent () =
  let chain, tiles = tiled_example () in
  let par = Tile_par.analyze ~chain ~tiles in
  (* The two tiles touch disjoint node sets, so no DAG edge and one
     level. *)
  Alcotest.(check int) "one level" 1 par.Tile_par.n_levels;
  Alcotest.(check (float 0.001)) "parallelism 2" 2.0
    (Tile_par.average_parallelism par);
  Alcotest.(check int) "no conflicts" 0
    (Tile_par.shared_data_conflicts par
       ~access:(Access.of_pairs ~n_data:8 [| 0; 1; 4; 5 |] [| 1; 2; 5; 6 |])
       ~tile_of_iter:tiles.(1).Sparse_tile.tile_of)

let test_tile_par_chained () =
  (* Overlapping interactions force a DAG edge 0 -> 1. *)
  let left = [| 0; 1 |] and right = [| 1; 2 |] in
  let acc = Access.of_pairs ~n_data:3 left right in
  let chain =
    Sparse_tile.make_chain ~loop_sizes:[| 3; 2; 3 |]
      ~conn:[| acc; Access.transpose acc |]
  in
  let seed = { Sparse_tile.n_tiles = 2; tile_of = [| 0; 1 |] } in
  let tiles = Sparse_tile.full ~chain ~seed:1 ~seed_tiles:seed () in
  let par = Tile_par.analyze ~chain ~tiles in
  Alcotest.(check int) "two levels" 2 par.Tile_par.n_levels;
  Alcotest.(check int) "serial cost = all iterations" 8
    (Tile_par.serial_cost par)

let test_tile_par_speedup_bounds () =
  let chain, tiles = tiled_example () in
  let par = Tile_par.analyze ~chain ~tiles in
  let s4 = Tile_par.speedup par ~processors:4 in
  Alcotest.(check bool) "speedup within [1, 4]" true (s4 >= 1.0 && s4 <= 4.0)

(* ------------------------------------------------------------------ *)
(* Space-filling-curve reordering *)

let test_morton_key_ordering () =
  (* Nearby points share key prefixes: key(0,0,0) < key(1,1,1) at any
     bit width. *)
  let k000 = Sfc_reorder.morton_key ~bits:4 0 0 0 in
  let k111 = Sfc_reorder.morton_key ~bits:4 15 15 15 in
  Alcotest.(check bool) "ordering" true (k000 < k111);
  Alcotest.(check int) "origin is zero" 0 k000

let test_sfc_is_permutation () =
  let coords =
    Array.init 64 (fun i ->
        (float_of_int (i mod 4), float_of_int (i / 4 mod 4), float_of_int (i / 16)))
  in
  let p = Sfc_reorder.run coords in
  Alcotest.(check int) "size" 64 (Perm.size p)

let test_sfc_improves_locality () =
  (* On a scrambled 2-D grid, Morton ordering reduces the average
     numbering distance between spatial neighbors. *)
  let side = 16 in
  let coords = Array.make (side * side) (0.0, 0.0, 0.0) in
  (* Scrambled assignment of grid points to ids. *)
  let ids = Array.init (side * side) (fun i -> (i * 73) mod (side * side)) in
  Array.iteri
    (fun k id ->
      coords.(id) <- (float_of_int (k mod side), float_of_int (k / side), 0.0))
    ids;
  let p = Sfc_reorder.run coords in
  let dist perm =
    (* Average |num(a) - num(b)| over horizontally adjacent points. *)
    let total = ref 0 in
    let count = ref 0 in
    Array.iteri
      (fun k id ->
        if k mod side < side - 1 then begin
          let id' = ids.(k + 1) in
          let na = match perm with Some p -> Perm.forward p id | None -> id in
          let nb = match perm with Some p -> Perm.forward p id' | None -> id' in
          total := !total + abs (na - nb);
          incr count
        end)
      ids;
    float_of_int !total /. float_of_int !count
  in
  Alcotest.(check bool) "sfc shrinks neighbor distance" true
    (dist (Some p) < dist None /. 2.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "reorder"
    [
      ( "perm",
        [
          Alcotest.test_case "roundtrip" `Quick test_perm_roundtrip;
          Alcotest.test_case "of_inverse" `Quick test_perm_of_inverse;
          Alcotest.test_case "compose" `Quick test_perm_compose;
          Alcotest.test_case "apply" `Quick test_perm_apply;
          Alcotest.test_case "remap values" `Quick test_perm_remap_values;
          Alcotest.test_case "invalid" `Quick test_perm_invalid;
        ] );
      ( "access",
        [
          Alcotest.test_case "of_pairs" `Quick test_access_of_pairs;
          Alcotest.test_case "identity" `Quick test_access_identity;
          Alcotest.test_case "map_data" `Quick test_access_map_data;
          Alcotest.test_case "reorder_iters" `Quick test_access_reorder_iters;
          Alcotest.test_case "transpose" `Quick test_access_transpose;
          Alcotest.test_case "to_graph" `Quick test_access_to_graph;
          Alcotest.test_case "shift_data" `Quick test_access_shift_data;
          Alcotest.test_case "of_lists" `Quick test_access_of_lists;
        ] );
      ( "cpack",
        [
          Alcotest.test_case "first-touch order" `Quick
            test_cpack_first_touch_order;
          Alcotest.test_case "untouched tail" `Quick test_cpack_untouched_tail;
          Alcotest.test_case "explicit order" `Quick test_cpack_in_order;
        ] );
      ( "gpart/rcm",
        [
          Alcotest.test_case "gpart locality" `Quick
            test_gpart_permutation_and_locality;
          Alcotest.test_case "rcm perm" `Quick test_rcm_reorder_is_perm;
        ] );
      ( "iteration reorderings",
        [
          Alcotest.test_case "lexgroup sorted" `Quick
            test_lexgroup_groups_by_first_touch;
          Alcotest.test_case "lexgroup stable" `Quick test_lexgroup_stable;
          Alcotest.test_case "lexsort tuples" `Quick test_lexsort_orders_tuples;
          Alcotest.test_case "lexsort compare" `Quick test_lexsort_compare;
          Alcotest.test_case "bucket tile" `Quick test_bucket_tile;
        ] );
      ( "sparse tiling",
        [
          Alcotest.test_case "fst legality" `Quick test_fst_legality;
          Alcotest.test_case "fst seed preserved" `Quick test_fst_seed_preserved;
          Alcotest.test_case "fst min/max growth" `Quick
            test_fst_backward_min_forward_max;
          Alcotest.test_case "cache block leftover" `Quick
            test_cache_block_leftover;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "coverage and order" `Quick
            test_schedule_coverage_and_order;
          Alcotest.test_case "perm of loop" `Quick test_schedule_perm_of_loop;
          Alcotest.test_case "tile pack contiguous" `Quick
            test_tile_pack_contiguous;
          Alcotest.test_case "remap loop" `Quick test_schedule_remap_loop;
        ] );
      ( "wavefront",
        [
          Alcotest.test_case "chain" `Quick test_wavefront_chain;
          Alcotest.test_case "independent" `Quick test_wavefront_independent;
          Alcotest.test_case "diamond" `Quick test_wavefront_diamond;
          Alcotest.test_case "rejects forward" `Quick
            test_wavefront_rejects_forward;
        ] );
      ( "tile-par",
        [
          Alcotest.test_case "independent tiles" `Quick
            test_tile_par_independent;
          Alcotest.test_case "chained tiles" `Quick test_tile_par_chained;
          Alcotest.test_case "speedup bounds" `Quick
            test_tile_par_speedup_bounds;
        ] );
      ( "sfc",
        [
          Alcotest.test_case "morton key" `Quick test_morton_key_ordering;
          Alcotest.test_case "is permutation" `Quick test_sfc_is_permutation;
          Alcotest.test_case "improves locality" `Quick
            test_sfc_improves_locality;
        ] );
      ( "prop",
        qsuite
          [
            prop_cpack_permutation;
            prop_lexgroup_permutation;
            prop_lexgroup_sorts_first_touch;
            prop_transpose_involution;
            prop_fst_always_legal;
            prop_cache_block_always_legal;
            prop_schedule_covers;
            prop_schedule_flat_matches_nested;
            prop_map_data_reorder_iters_commute;
            prop_perm_compose_assoc;
            prop_perm_inverse_cancels;
          ] );
    ]
