(* Tests for the plan-cache subsystem: fingerprint stability and
   sensitivity, memory-tier hit/miss accounting, bit-identical warm
   replay (the headline guarantee), the on-disk tier including
   corruption recovery, LRU eviction, metrics visibility, and the
   Experiment.measure integration. *)

module F = Rtrt_plancache.Fingerprint
module Cache = Rtrt_plancache.Cache
open Compose

let with_memory_sink f =
  let sink, events = Rtrt_obs.Sink.memory () in
  Rtrt_obs.set_sink sink;
  Fun.protect ~finally:Rtrt_obs.disable f;
  events ()

let test_kernel ?(name = "moldyn") () =
  let scale = 512 in
  let d =
    match name with
    | "moldyn" -> Datagen.Generators.mol1 ~scale ()
    | _ -> Datagen.Generators.foil ~scale ()
  in
  (Option.get (Kernels.by_name name)) d

let tiled_plan = Plan.with_fst ~seed_part_size:24 Plan.cpack_lexgroup

(* A fresh empty directory under the system temp dir. *)
let fresh_dir () =
  let f = Filename.temp_file "rtrt_plancache" "" in
  Sys.remove f;
  f

let key_of_string s =
  let b = F.create () in
  F.add_string b s;
  F.value b

let dummy_entry n =
  {
    Cache.sigma_total = Reorder.Perm.id n;
    delta_total = Reorder.Perm.id n;
    schedule = None;
    shape_summary = None;
    reordering_fns = [];
    n_data_remaps = 0;
    cold_inspector_seconds = 0.5;
  }

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)

let test_fingerprint_stable () =
  let kernel = test_kernel () in
  let a = Inspector.fingerprint tiled_plan kernel in
  let b = Inspector.fingerprint tiled_plan kernel in
  Alcotest.(check bool) "same inputs, same key" true (F.equal a b);
  Alcotest.(check string) "same hex" (F.to_hex a) (F.to_hex b);
  Alcotest.(check int) "hex is 16 chars" 16 (String.length (F.to_hex a))

let test_fingerprint_sensitive () =
  let kernel = test_kernel () in
  let base = Inspector.fingerprint tiled_plan kernel in
  let distinct =
    [
      ("plan", Inspector.fingerprint Plan.cpack_lexgroup kernel);
      ( "plan parameter",
        Inspector.fingerprint
          (Plan.with_fst ~seed_part_size:32 Plan.cpack_lexgroup)
          kernel );
      ( "strategy",
        Inspector.fingerprint ~strategy:Inspector.Remap_each tiled_plan kernel
      );
      ( "symmetric-deps flag",
        Inspector.fingerprint ~share_symmetric_deps:false tiled_plan kernel );
      ("kernel", Inspector.fingerprint tiled_plan (test_kernel ~name:"irreg" ()));
    ]
  in
  List.iter
    (fun (what, k) ->
      Alcotest.(check bool) (what ^ " changes the key") false (F.equal base k))
    distinct

let test_fingerprint_ignores_plan_name () =
  let kernel = test_kernel () in
  let renamed = Plan.make ~name:"other-name" (Plan.transforms tiled_plan) in
  Alcotest.(check bool) "same transforms, same key" true
    (F.equal
       (Inspector.fingerprint tiled_plan kernel)
       (Inspector.fingerprint renamed kernel))

(* ------------------------------------------------------------------ *)
(* Memory tier: hit/miss and bit-identical replay                      *)

let check_results_identical label (cold : Inspector.result)
    (warm : Inspector.result) =
  Alcotest.(check bool) (label ^ ": sigma identical") true
    (Reorder.Perm.equal cold.Inspector.sigma_total warm.Inspector.sigma_total);
  Alcotest.(check bool) (label ^ ": delta identical") true
    (Reorder.Perm.equal cold.Inspector.delta_total warm.Inspector.delta_total);
  Alcotest.(check bool) (label ^ ": schedule identical") true
    (match (cold.Inspector.schedule, warm.Inspector.schedule) with
    | None, None -> true
    | Some a, Some b -> Reorder.Schedule.equal a b
    | _ -> false);
  List.iter2
    (fun (n1, p1) (n2, p2) ->
      Alcotest.(check string) (label ^ ": fn name") n1 n2;
      Alcotest.(check bool) (label ^ ": fn perm") true (Reorder.Perm.equal p1 p2))
    cold.Inspector.reordering_fns warm.Inspector.reordering_fns;
  Alcotest.(check bool) (label ^ ": transformed kernel bit-identical") true
    (Kernels.Kernel.snapshots_equal_bits
       (cold.Inspector.kernel.Kernels.Kernel.snapshot ())
       (warm.Inspector.kernel.Kernels.Kernel.snapshot ()));
  (* And the executors driven by the two results stay bit-identical. *)
  let run (r : Inspector.result) =
    let k = r.Inspector.kernel.Kernels.Kernel.copy () in
    (match r.Inspector.schedule with
    | None -> k.Kernels.Kernel.run ~steps:2
    | Some sched -> k.Kernels.Kernel.run_tiled sched ~steps:2);
    k.Kernels.Kernel.snapshot ()
  in
  Alcotest.(check bool) (label ^ ": executor output bit-identical") true
    (Kernels.Kernel.snapshots_equal_bits (run cold) (run warm))

let test_memory_hit_roundtrip () =
  let kernel = test_kernel () in
  let cache = Cache.create () in
  let cold = Inspector.run ~cache tiled_plan kernel in
  let s1 = Cache.stats cache in
  Alcotest.(check int) "first run misses" 1 s1.Cache.misses;
  Alcotest.(check int) "first run stores" 1 s1.Cache.stores;
  Alcotest.(check int) "no hit yet" 0 s1.Cache.hits;
  let warm = Inspector.run ~cache tiled_plan kernel in
  let s2 = Cache.stats cache in
  Alcotest.(check int) "second run hits" 1 s2.Cache.hits;
  Alcotest.(check int) "no new miss" 1 s2.Cache.misses;
  check_results_identical "memory tier" cold warm;
  (* The replay performed at most the one final remap. *)
  Alcotest.(check bool) "replay remaps at most once" true
    (warm.Inspector.n_data_remaps <= 1)

let test_cache_isolation () =
  (* A warm result must not alias cached state: mutating its kernel
     must not corrupt later replays. *)
  let kernel = test_kernel () in
  let cache = Cache.create () in
  let cold = Inspector.run ~cache tiled_plan kernel in
  let warm1 = Inspector.run ~cache tiled_plan kernel in
  warm1.Inspector.kernel.Kernels.Kernel.run ~steps:3;
  let warm2 = Inspector.run ~cache tiled_plan kernel in
  check_results_identical "after mutation" cold warm2

let test_validation_rejects_shape_mismatch () =
  (* An entry stored for one kernel shape must not serve another, even
     under a colliding key. *)
  let cache = Cache.create () in
  let key = key_of_string "shape" in
  Cache.store cache ~key (dummy_entry 8);
  Alcotest.(check bool) "matching shape hits" true
    (Cache.find cache ~key ~n_data:8 ~n_iter:8 ~loop_sizes:[| 8 |] <> None);
  Alcotest.(check bool) "mismatched shape misses" true
    (Cache.find cache ~key ~n_data:9 ~n_iter:8 ~loop_sizes:[| 8 |] = None)

let test_lru_eviction () =
  let cache = Cache.create ~mem_budget_bytes:1 () in
  Cache.store cache ~key:(key_of_string "a") (dummy_entry 16);
  Cache.store cache ~key:(key_of_string "b") (dummy_entry 16);
  let s = Cache.stats cache in
  Alcotest.(check int) "one entry resident" 1 s.Cache.entries;
  Alcotest.(check bool) "evicted at least once" true (s.Cache.evictions >= 1);
  Alcotest.(check bool) "older key evicted" true
    (Cache.peek cache ~key:(key_of_string "a") = None);
  Alcotest.(check bool) "newer key resident" true
    (Cache.peek cache ~key:(key_of_string "b") <> None)

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)

(* When RTRT_PLAN_CACHE_DIR is set (the CI cold/warm leg), the test
   reuses it so a second `dune runtest` in the same job starts from
   populated files and exercises the load-validate path for real. *)
let disk_dir () =
  match Cache.dir_from_env () with
  | Some d -> Filename.concat d "test-disk-tier"
  | None -> fresh_dir ()

let test_disk_roundtrip () =
  let kernel = test_kernel () in
  let dir = disk_dir () in
  let cold = Inspector.run ~cache:(Cache.create ~dir ()) tiled_plan kernel in
  let hex = F.to_hex (Inspector.fingerprint tiled_plan kernel) in
  Alcotest.(check bool) "entry file written" true
    (Sys.file_exists (Filename.concat dir (hex ^ ".json")));
  (* A brand-new cache (fresh process, in spirit) must hit via disk. *)
  let cache2 = Cache.create ~dir () in
  let warm = Inspector.run ~cache:cache2 tiled_plan kernel in
  let s = Cache.stats cache2 in
  Alcotest.(check int) "disk hit" 1 s.Cache.disk_hits;
  Alcotest.(check int) "hit" 1 s.Cache.hits;
  Alcotest.(check int) "no disk error" 0 s.Cache.disk_errors;
  check_results_identical "disk tier" cold warm

let test_disk_corruption_degrades_to_miss () =
  let kernel = test_kernel () in
  let dir = fresh_dir () in
  let reference = Inspector.run tiled_plan kernel in
  ignore (Inspector.run ~cache:(Cache.create ~dir ()) tiled_plan kernel);
  let hex = F.to_hex (Inspector.fingerprint tiled_plan kernel) in
  let path = Filename.concat dir (hex ^ ".json") in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc "{ not json at all");
  let cache = Cache.create ~dir () in
  let r = Inspector.run ~cache tiled_plan kernel in
  let s = Cache.stats cache in
  Alcotest.(check int) "corrupt file is a miss" 1 s.Cache.misses;
  Alcotest.(check int) "disk error counted" 1 s.Cache.disk_errors;
  check_results_identical "after corruption" reference r;
  (* The miss re-inspected and re-stored a good entry. *)
  let cache2 = Cache.create ~dir () in
  let warm = Inspector.run ~cache:cache2 tiled_plan kernel in
  Alcotest.(check int) "rewritten entry hits again" 1
    (Cache.stats cache2).Cache.hits;
  check_results_identical "after rewrite" reference warm

let test_disk_rejects_non_bijective_perm () =
  (* Well-formed JSON whose sigma is not a permutation must degrade to
     a miss, never produce a bogus reordering. *)
  let dir = fresh_dir () in
  let cache0 = Cache.create ~dir () in
  ignore cache0;
  let key = key_of_string "bad-perm" in
  let path = Filename.concat dir (F.to_hex key ^ ".json") in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc
        (Fmt.str
           {|{"version":2,"key":"%s","sigma":[0,0],"delta":[0,1],"schedule":null,"fns":[],"n_data_remaps":0,"cold_inspector_seconds":0.0}|}
           (F.to_hex key)));
  let cache = Cache.create ~dir () in
  Alcotest.(check bool) "non-bijective sigma is a miss" true
    (Cache.find cache ~key ~n_data:2 ~n_iter:2 ~loop_sizes:[| 2 |] = None);
  Alcotest.(check int) "disk error counted" 1
    (Cache.stats cache).Cache.disk_errors

let test_disk_rejects_stale_format_version () =
  (* A version-1 file (nested "tiles" schedule shape, from before the
     flat-CSR migration) must degrade to a miss, never crash — the
     re-inspection then overwrites it in the v2 flat shape. *)
  let dir = fresh_dir () in
  let key = key_of_string "stale-v1" in
  let path = Filename.concat dir (F.to_hex key ^ ".json") in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Out_channel.with_open_bin path (fun oc ->
      output_string oc
        (Fmt.str
           {|{"version":1,"key":"%s","sigma":[0,1],"delta":[0,1],"schedule":{"n_tiles":1,"n_loops":1,"tiles":[[[0,1]]]},"fns":[],"n_data_remaps":0,"cold_inspector_seconds":0.0}|}
           (F.to_hex key)));
  let cache = Cache.create ~dir () in
  Alcotest.(check bool) "v1 entry is a miss" true
    (Cache.find cache ~key ~n_data:2 ~n_iter:2 ~loop_sizes:[| 2 |] = None);
  Alcotest.(check int) "disk error counted" 1
    (Cache.stats cache).Cache.disk_errors;
  (* Storing through the current code writes the flat v2 shape. *)
  Cache.store cache ~key (dummy_entry 2);
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rewritten as version 2" true
    (has_sub contents {|"version":2|})

(* ------------------------------------------------------------------ *)
(* Metrics and Experiment integration                                  *)

let test_metrics_visible () =
  ignore
    (with_memory_sink (fun () ->
         Rtrt_obs.Metrics.reset ();
         let kernel = test_kernel () in
         let cache = Cache.create () in
         ignore (Inspector.run ~cache tiled_plan kernel);
         ignore (Inspector.run ~cache tiled_plan kernel);
         let dump = Rtrt_obs.Metrics.dump () in
         let v name = List.assoc_opt name dump in
         Alcotest.(check (option (float 0.0))) "plancache.hit" (Some 1.0)
           (v "plancache.hit");
         Alcotest.(check (option (float 0.0))) "plancache.miss" (Some 1.0)
           (v "plancache.miss");
         Alcotest.(check (option (float 0.0))) "plancache.store" (Some 1.0)
           (v "plancache.store");
         Alcotest.(check bool) "plancache.bytes gauge set" true
           (match v "plancache.bytes" with Some b -> b > 0.0 | None -> false)))

let test_measure_reports_traffic () =
  let kernel = test_kernel () in
  let cache = Cache.create () in
  let machine = Cachesim.Machine.pentium4 in
  let m1 =
    Harness.Experiment.measure ~cache ~trace_steps_n:1 ~wall_steps:1 ~machine
      ~plan:tiled_plan kernel
  in
  let m2 =
    Harness.Experiment.measure ~cache ~trace_steps_n:1 ~wall_steps:1 ~machine
      ~plan:tiled_plan kernel
  in
  (match (m1.Harness.Experiment.plancache, m2.Harness.Experiment.plancache) with
  | Some pc1, Some pc2 ->
    Alcotest.(check bool) "first is a miss" false
      pc1.Harness.Experiment.pc_hit;
    Alcotest.(check bool) "second is a hit" true pc2.Harness.Experiment.pc_hit;
    Alcotest.(check int) "one hit total" 1 pc2.Harness.Experiment.pc_hits;
    Alcotest.(check int) "one miss total" 1 pc2.Harness.Experiment.pc_misses;
    Alcotest.(check (float 0.0)) "cold cost carried over"
      pc1.Harness.Experiment.pc_cold_inspector_seconds
      pc2.Harness.Experiment.pc_cold_inspector_seconds;
    Alcotest.(check bool) "replay cheaper than or equal to cold" true
      (m2.Harness.Experiment.inspector_seconds
      <= pc2.Harness.Experiment.pc_cold_inspector_seconds)
  | _ -> Alcotest.fail "expected plancache reports");
  (* Cached-vs-uncached break-even: with a positive saving, the cached
     side never needs more steps than the uncached side. *)
  let base =
    { m2 with Harness.Experiment.executor_seconds_per_step = 1.0 }
  in
  let faster =
    { m2 with Harness.Experiment.executor_seconds_per_step = 0.5 }
  in
  match Harness.Experiment.amortization_cached ~base faster with
  | Some (uncached, cached) ->
    Alcotest.(check bool) "cached pays off no later" true (cached <= uncached)
  | None -> Alcotest.fail "expected a break-even pair"

let () =
  Alcotest.run "plancache"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "sensitive" `Quick test_fingerprint_sensitive;
          Alcotest.test_case "ignores plan name" `Quick
            test_fingerprint_ignores_plan_name;
        ] );
      ( "memory tier",
        [
          Alcotest.test_case "hit roundtrip" `Quick test_memory_hit_roundtrip;
          Alcotest.test_case "isolation" `Quick test_cache_isolation;
          Alcotest.test_case "shape validation" `Quick
            test_validation_rejects_shape_mismatch;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
        ] );
      ( "disk tier",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "corruption -> miss" `Quick
            test_disk_corruption_degrades_to_miss;
          Alcotest.test_case "non-bijective perm -> miss" `Quick
            test_disk_rejects_non_bijective_perm;
          Alcotest.test_case "stale v1 format -> miss" `Quick
            test_disk_rejects_stale_format_version;
        ] );
      ( "integration",
        [
          Alcotest.test_case "metrics visible" `Quick test_metrics_visible;
          Alcotest.test_case "measure reports traffic" `Quick
            test_measure_reports_traffic;
        ] );
    ]
