(* Tests for the benchmark kernels: executor correctness under every
   transformation (transformed results must match the original run
   after un-permuting), trace/plain consistency, and the Gauss-Seidel
   sparse tiling (bitwise equality with the plain smoother). *)

let small_dataset () = Datagen.Generators.foil ~scale:512 ()
let mol_dataset () = Datagen.Generators.mol1 ~scale:512 ()

let kernels () =
  [
    ("irreg", Kernels.Irreg.of_dataset (small_dataset ()));
    ("nbf", Kernels.Nbf.of_dataset (small_dataset ()));
    ("moldyn", Kernels.Moldyn.of_dataset (mol_dataset ()));
    ("cg", Kernels.Cg.of_dataset (small_dataset ()));
  ]

let check_close name s1 s2 =
  Alcotest.(check bool)
    (Fmt.str "%s results match" name)
    true
    (Kernels.Kernel.snapshots_close ~rtol:1e-9 s1 s2)

(* Reference snapshot: run the untransformed kernel. *)
let reference (k : Kernels.Kernel.t) ~steps =
  let k = k.Kernels.Kernel.copy () in
  k.Kernels.Kernel.run ~steps;
  k.Kernels.Kernel.snapshot ()

let test_identity_perm_roundtrip () =
  List.iter
    (fun (name, (k : Kernels.Kernel.t)) ->
      let id = Reorder.Perm.id k.Kernels.Kernel.n_nodes in
      let k' = k.Kernels.Kernel.apply_data_perm id in
      let r1 = reference k ~steps:3 in
      let r2 = reference k' ~steps:3 in
      check_close (name ^ " identity") r1 r2)
    (kernels ())

(* A data reordering permutes state and results consistently:
   unpermuting the transformed run recovers the original run. *)
let test_data_perm_correct () =
  List.iter
    (fun (name, (k : Kernels.Kernel.t)) ->
      let rng = Datagen.Rng.create 5 in
      let sigma =
        Reorder.Perm.of_forward
          (Datagen.Rng.permutation rng k.Kernels.Kernel.n_nodes)
      in
      let k' = k.Kernels.Kernel.apply_data_perm sigma in
      let r_orig = reference k ~steps:3 in
      k'.Kernels.Kernel.run ~steps:3;
      let r_perm =
        Kernels.Kernel.unpermute_snapshot sigma (k'.Kernels.Kernel.snapshot ())
      in
      check_close (name ^ " data perm") r_orig r_perm)
    (kernels ())

(* An interaction reordering must not change any result (reduction). *)
let test_iter_perm_correct () =
  List.iter
    (fun (name, (k : Kernels.Kernel.t)) ->
      let rng = Datagen.Rng.create 6 in
      let delta =
        Reorder.Perm.of_forward
          (Datagen.Rng.permutation rng k.Kernels.Kernel.n_inter)
      in
      let k' = k.Kernels.Kernel.apply_iter_perm delta in
      let r_orig = reference k ~steps:3 in
      let r_perm = reference k' ~steps:3 in
      check_close (name ^ " iter perm") r_orig r_perm)
    (kernels ())

(* The sparse-tiled executor over any legal schedule matches the plain
   executor. *)
let test_tiled_executor_correct () =
  List.iter
    (fun (name, (k : Kernels.Kernel.t)) ->
      let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
      let seed_loop = k.Kernels.Kernel.seed_loop in
      let seed =
        Reorder.Sparse_tile.tile_fn_of_partition
          (Irgraph.Partition.block
             ~n:k.Kernels.Kernel.loop_sizes.(seed_loop)
             ~part_size:7)
      in
      let tiles =
        Reorder.Sparse_tile.full ~chain ~seed:seed_loop ~seed_tiles:seed ()
      in
      Alcotest.(check bool)
        (name ^ " legal") true
        (Reorder.Sparse_tile.check_legality ~chain ~tiles = []);
      let sched = Reorder.Schedule.of_tile_fns tiles in
      let r_plain = reference k ~steps:3 in
      let k' = k.Kernels.Kernel.copy () in
      k'.Kernels.Kernel.run_tiled sched ~steps:3;
      check_close (name ^ " tiled") r_plain (k'.Kernels.Kernel.snapshot ()))
    (kernels ())

(* Traced executors emit the same number of references per step in
   plain and tiled form (same loop bodies, different order). *)
let test_trace_counts_match () =
  List.iter
    (fun (name, (k : Kernels.Kernel.t)) ->
      let layout = Kernels.Kernel.layout k in
      let count run =
        let cache =
          Cachesim.Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2
        in
        run ~layout ~access:(fun a -> ignore (Cachesim.Cache.access cache a));
        Cachesim.Cache.accesses cache
      in
      let plain = count (fun ~layout ~access ->
          k.Kernels.Kernel.run_traced ~steps:2 ~layout ~access)
      in
      let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
      let seed =
        Reorder.Sparse_tile.tile_fn_of_partition
          (Irgraph.Partition.block
             ~n:k.Kernels.Kernel.loop_sizes.(k.Kernels.Kernel.seed_loop)
             ~part_size:11)
      in
      let tiles =
        Reorder.Sparse_tile.full ~chain ~seed:k.Kernels.Kernel.seed_loop
          ~seed_tiles:seed ()
      in
      let sched = Reorder.Schedule.of_tile_fns tiles in
      let tiled = count (fun ~layout ~access ->
          k.Kernels.Kernel.run_tiled_traced sched ~steps:2 ~layout ~access)
      in
      Alcotest.(check int) (name ^ " trace counts") plain tiled)
    (kernels ())

let test_bytes_per_node () =
  let checks =
    [ ("irreg", 16); ("nbf", 48); ("moldyn", 72); ("cg", 48) ]
  in
  List.iter
    (fun (name, k) ->
      let expected = List.assoc name checks in
      Alcotest.(check int)
        (name ^ " bytes/node")
        expected
        (Kernels.Kernel.bytes_per_node k))
    (kernels ())

let test_copy_isolates () =
  List.iter
    (fun (name, (k : Kernels.Kernel.t)) ->
      let before = k.Kernels.Kernel.snapshot () in
      let k' = k.Kernels.Kernel.copy () in
      k'.Kernels.Kernel.run ~steps:2;
      check_close (name ^ " copy isolated") before (k.Kernels.Kernel.snapshot ()))
    (kernels ())

(* ------------------------------------------------------------------ *)
(* Gauss-Seidel sparse tiling *)

let gs_problem ~scale =
  let d = Datagen.Generators.foil ~scale () in
  let graph = Datagen.Dataset.to_graph d in
  let n = Irgraph.Csr.num_nodes graph in
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 17)) in
  (graph, f)

let test_gs_plain_converges () =
  let graph, f = gs_problem ~scale:512 in
  let t = Kernels.Gauss_seidel.create ~graph ~f in
  Kernels.Gauss_seidel.run_plain t ~sweeps:50;
  (* After many sweeps the residual change per sweep is small. *)
  let before = Array.copy t.Kernels.Gauss_seidel.u in
  Kernels.Gauss_seidel.run_plain t ~sweeps:1;
  let delta = ref 0.0 in
  Array.iteri
    (fun i u -> delta := !delta +. abs_float (u -. before.(i)))
    t.Kernels.Gauss_seidel.u;
  Alcotest.(check bool) "converging" true
    (!delta /. float_of_int (Array.length f) < 1e-3)

let tiled_setup ~sweeps ~part_size ~seed_sweep graph f =
  let g = Irgraph.Partition.gpart graph ~part_size in
  let graph', f', _sigma, seed =
    Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition:g
  in
  let tiling = Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep ~sweeps in
  (graph', f', tiling)

let test_gs_constraints_hold () =
  let graph, f = gs_problem ~scale:512 in
  List.iter
    (fun seed_sweep ->
      let graph', _, tiling =
        tiled_setup ~sweeps:5 ~part_size:40 ~seed_sweep graph f
      in
      Alcotest.(check int)
        (Fmt.str "no violations (seed sweep %d)" seed_sweep)
        0
        (List.length (Kernels.Gauss_seidel.check_constraints graph' tiling)))
    [ 0; 2; 4 ]

let test_gs_tiled_equals_plain () =
  let graph, f = gs_problem ~scale:512 in
  let graph', f', tiling = tiled_setup ~sweeps:6 ~part_size:40 ~seed_sweep:3 graph f in
  let t_plain = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_plain t_plain ~sweeps:6;
  let t_tiled = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_tiled t_tiled tiling;
  (* Every dependence is respected, so the executions are bitwise
     identical. *)
  Alcotest.(check bool) "bitwise equal" true
    (Array.for_all2 ( = ) t_plain.Kernels.Gauss_seidel.u
       t_tiled.Kernels.Gauss_seidel.u)

let test_gs_traced_counts () =
  let graph, f = gs_problem ~scale:512 in
  let graph', f', tiling = tiled_setup ~sweeps:4 ~part_size:40 ~seed_sweep:2 graph f in
  let t = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  let layout = Kernels.Gauss_seidel.layout t in
  let count run =
    let cache = Cachesim.Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 in
    run ~layout ~access:(fun a -> ignore (Cachesim.Cache.access cache a));
    Cachesim.Cache.accesses cache
  in
  let plain = count (Kernels.Gauss_seidel.run_traced t ~sweeps:4) in
  let tiled = count (Kernels.Gauss_seidel.run_tiled_traced t tiling) in
  Alcotest.(check int) "same references" plain tiled

(* Property: GS tiling constraints hold on random graphs. *)
let prop_gs_constraints =
  let arb =
    QCheck.make
      ~print:(fun (n, e) -> Printf.sprintf "n=%d, %d edges" n (List.length e))
      QCheck.Gen.(
        let* n = int_range 4 40 in
        let* m = int_range 3 80 in
        let* edges = list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
        return (n, edges))
  in
  QCheck.Test.make ~name:"gs tiling constraints on random graphs" ~count:100
    arb (fun (n, edges) ->
      let graph = Irgraph.Csr.of_edges ~n (Array.of_list edges) in
      let f = Array.init n (fun i -> float_of_int (i + 1)) in
      let graph', f', tiling = tiled_setup ~sweeps:4 ~part_size:5 ~seed_sweep:1 graph f in
      ignore f';
      Kernels.Gauss_seidel.check_constraints graph' tiling = [])

let prop_gs_tiled_equals_plain =
  let arb =
    QCheck.make
      ~print:(fun (n, e) -> Printf.sprintf "n=%d, %d edges" n (List.length e))
      QCheck.Gen.(
        let* n = int_range 4 30 in
        let* m = int_range 3 60 in
        let* edges = list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
        return (n, edges))
  in
  QCheck.Test.make ~name:"gs tiled equals plain on random graphs" ~count:100
    arb (fun (n, edges) ->
      let graph = Irgraph.Csr.of_edges ~n (Array.of_list edges) in
      let f = Array.init n (fun i -> float_of_int ((i * 7 mod 13) + 1)) in
      let graph', f', tiling = tiled_setup ~sweeps:3 ~part_size:4 ~seed_sweep:1 graph f in
      let t1 = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
      Kernels.Gauss_seidel.run_plain t1 ~sweeps:3;
      let t2 = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
      Kernels.Gauss_seidel.run_tiled t2 tiling;
      Array.for_all2 ( = ) t1.Kernels.Gauss_seidel.u t2.Kernels.Gauss_seidel.u)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "kernels"
    [
      ( "executors",
        [
          Alcotest.test_case "identity roundtrip" `Quick
            test_identity_perm_roundtrip;
          Alcotest.test_case "data perm correct" `Quick test_data_perm_correct;
          Alcotest.test_case "iter perm correct" `Quick test_iter_perm_correct;
          Alcotest.test_case "tiled executor correct" `Quick
            test_tiled_executor_correct;
          Alcotest.test_case "trace counts match" `Quick test_trace_counts_match;
          Alcotest.test_case "bytes per node" `Quick test_bytes_per_node;
          Alcotest.test_case "copy isolates" `Quick test_copy_isolates;
        ] );
      ( "gauss-seidel",
        [
          Alcotest.test_case "plain converges" `Quick test_gs_plain_converges;
          Alcotest.test_case "constraints hold" `Quick test_gs_constraints_hold;
          Alcotest.test_case "tiled equals plain" `Quick
            test_gs_tiled_equals_plain;
          Alcotest.test_case "traced counts" `Quick test_gs_traced_counts;
        ] );
      ( "prop",
        qsuite [ prop_gs_constraints; prop_gs_tiled_equals_plain ] );
    ]
