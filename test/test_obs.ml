(* Tests for the Rtrt_obs observability layer: span nesting and
   self-time arithmetic, counter accumulation (and the disabled-path
   no-op), JSONL sink round-trips through the parser, figure JSON
   export validity, and the guarantee that instrumentation does not
   change Experiment.measure results. *)

let with_memory_sink f =
  let sink, events = Rtrt_obs.Sink.memory () in
  Rtrt_obs.set_sink sink;
  Fun.protect ~finally:Rtrt_obs.disable f;
  events ()

let span_name (n : Rtrt_obs.Report.node) = n.Rtrt_obs.Report.span.Rtrt_obs.Sink.name

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let busy () = ignore (Sys.opaque_identity (Array.init 4096 (fun i -> i * i)))

let test_span_nesting () =
  let events =
    with_memory_sink (fun () ->
        Rtrt_obs.Span.with_ ~name:"root" (fun () ->
            Rtrt_obs.Span.with_ ~name:"child" busy;
            Rtrt_obs.Span.with_ ~name:"child" (fun () ->
                Rtrt_obs.Span.with_ ~name:"grandchild" busy)))
  in
  (* 4 spans, each with a start and an end event, plus the wall-clock
     trace-header metric set_sink emits. *)
  Alcotest.(check int) "nine events" 9 (List.length events);
  match Rtrt_obs.Report.tree_of_events events with
  | [ root ] ->
    Alcotest.(check string) "root name" "root" (span_name root);
    Alcotest.(check int) "root depth" 0 root.span.Rtrt_obs.Sink.depth;
    Alcotest.(check bool) "root has no parent" true
      (root.span.Rtrt_obs.Sink.parent = None);
    Alcotest.(check int) "two children" 2 (List.length root.children);
    List.iter
      (fun (c : Rtrt_obs.Report.node) ->
        Alcotest.(check string) "child name" "child" (span_name c);
        Alcotest.(check int) "child depth" 1 c.span.Rtrt_obs.Sink.depth;
        Alcotest.(check bool) "child parent is root" true
          (c.span.Rtrt_obs.Sink.parent = Some root.span.Rtrt_obs.Sink.id))
      root.children;
    (* Self-time arithmetic: self + children = total, exactly. *)
    let self = Rtrt_obs.Report.self_seconds root in
    let kids = Rtrt_obs.Report.child_seconds root in
    Alcotest.(check (float 1e-12)) "self + children = total" root.dur
      (self +. kids);
    Alcotest.(check bool) "children fit in parent" true (kids <= root.dur)
  | roots -> Alcotest.fail (Fmt.str "expected 1 root, got %d" (List.length roots))

let test_span_disabled_is_transparent () =
  (* Tracing off: with_ must run the body and emit nothing. *)
  Alcotest.(check bool) "disabled" false (Rtrt_obs.enabled ());
  let hit = ref 0 in
  let y = Rtrt_obs.Span.with_ ~name:"ignored" (fun () -> incr hit; 42) in
  Alcotest.(check int) "body ran" 1 !hit;
  Alcotest.(check int) "value through" 42 y

let test_span_exception_pops_stack () =
  let events =
    with_memory_sink (fun () ->
        (try
           Rtrt_obs.Span.with_ ~name:"outer" (fun () ->
               Rtrt_obs.Span.with_ ~name:"thrower" (fun () -> failwith "boom"))
         with Failure _ -> ());
        Rtrt_obs.Span.with_ ~name:"after" (fun () -> ()))
  in
  match Rtrt_obs.Report.tree_of_events events with
  | [ outer; after ] ->
    Alcotest.(check string) "outer closed" "outer" (span_name outer);
    Alcotest.(check string) "after is a root" "after" (span_name after);
    Alcotest.(check int) "after at depth 0" 0 after.span.Rtrt_obs.Sink.depth
  | roots -> Alcotest.fail (Fmt.str "expected 2 roots, got %d" (List.length roots))

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)

let test_counter_accumulation () =
  let c = Rtrt_obs.Metrics.counter "test.counter" in
  let g = Rtrt_obs.Metrics.gauge "test.gauge" in
  Rtrt_obs.Metrics.reset ();
  (* Disabled: adds are no-ops. *)
  Rtrt_obs.Metrics.add c 5;
  Rtrt_obs.Metrics.set g 1.5;
  Alcotest.(check int) "disabled add is a no-op" 0 (Rtrt_obs.Metrics.value c);
  Alcotest.(check bool) "disabled set is a no-op" true
    (Rtrt_obs.Metrics.gauge_value g = None);
  let events =
    with_memory_sink (fun () ->
        Rtrt_obs.Metrics.add c 3;
        Rtrt_obs.Metrics.incr c;
        Rtrt_obs.Metrics.set g 2.5;
        Alcotest.(check int) "accumulated" 4 (Rtrt_obs.Metrics.value c);
        Rtrt_obs.Metrics.flush ())
  in
  let ms = Rtrt_obs.Report.metrics events in
  let find name =
    List.find_opt (fun (m : Rtrt_obs.Sink.metric) -> m.m_name = name) ms
  in
  (match find "test.counter" with
  | Some m ->
    Alcotest.(check (float 0.0)) "counter flushed" 4.0 m.Rtrt_obs.Sink.m_value;
    Alcotest.(check bool) "kind counter" true
      (m.Rtrt_obs.Sink.m_kind = Rtrt_obs.Sink.Counter)
  | None -> Alcotest.fail "counter event missing");
  (match find "test.gauge" with
  | Some m ->
    Alcotest.(check (float 0.0)) "gauge flushed" 2.5 m.Rtrt_obs.Sink.m_value
  | None -> Alcotest.fail "gauge event missing");
  Rtrt_obs.Metrics.reset ();
  Alcotest.(check int) "reset" 0 (Rtrt_obs.Metrics.value c);
  (* Same name returns the same handle. *)
  Alcotest.(check bool) "registry is idempotent" true
    (Rtrt_obs.Metrics.counter "test.counter" == c)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let test_hist_basic () =
  let h = Rtrt_obs.Hist.hist "basic.hist" in
  ignore
    (with_memory_sink (fun () ->
         (* Values below 16 land in exact unit buckets. *)
         List.iter (Rtrt_obs.Hist.record h) [ 5; 5; 7; 10; 15 ];
         Rtrt_obs.Hist.record h (-3) (* clamps to 0 *)));
  let st = Rtrt_obs.Hist.stats h in
  Alcotest.(check int) "count" 6 st.Rtrt_obs.Hist.st_count;
  Alcotest.(check int) "min (clamped sample)" 0 st.Rtrt_obs.Hist.st_min;
  Alcotest.(check int) "max" 15 st.Rtrt_obs.Hist.st_max;
  Alcotest.(check (float 1e-9)) "mean is exact" 7.0 st.Rtrt_obs.Hist.st_mean;
  Alcotest.(check int) "p50" 5 st.Rtrt_obs.Hist.st_p50;
  Alcotest.(check int) "p99 clamps to max" 15 st.Rtrt_obs.Hist.st_p99;
  (* Derived pairs appear in dump under <name>.<stat>. *)
  let dumped = Rtrt_obs.Hist.dump () in
  Alcotest.(check bool) "dump has basic.hist.count" true
    (List.assoc_opt "basic.hist.count" dumped = Some 6.0);
  Alcotest.(check bool) "dump has basic.hist.p50_ns" true
    (List.assoc_opt "basic.hist.p50_ns" dumped = Some 5.0)

let test_hist_disabled_noop () =
  Alcotest.(check bool) "tracing off" false (Rtrt_obs.enabled ());
  let h = Rtrt_obs.Hist.hist "disabled.hist" in
  Rtrt_obs.Hist.record h 123;
  Alcotest.(check int) "record is a no-op when disabled" 0
    (Rtrt_obs.Hist.count h);
  (* Same name returns the same handle, like counters. *)
  Alcotest.(check bool) "registry is idempotent" true
    (Rtrt_obs.Hist.hist "disabled.hist" == h)

(* Bucket geometry: [lower_bound (index_of v)] brackets v, and bucket
   widths stay within the documented 6.25% relative error (unit
   buckets below 16). *)
let prop_hist_buckets =
  let arb =
    QCheck.make ~print:string_of_int
      QCheck.Gen.(
        frequency
          [
            (1, int_bound 15);
            (2, int_bound 4095);
            (2, int_bound ((1 lsl 30) - 1));
          ])
  in
  QCheck.Test.make ~name:"bucket bounds bracket the value" ~count:1000 arb
    (fun v ->
      let idx = Rtrt_obs.Hist.index_of v in
      let lo = Rtrt_obs.Hist.lower_bound idx in
      let hi = Rtrt_obs.Hist.lower_bound (idx + 1) in
      if not (lo <= v && v < hi) then
        QCheck.Test.fail_reportf "v=%d outside bucket [%d, %d)" v lo hi;
      if v < 16 then hi - lo = 1 else (hi - lo) * 16 <= lo)

(* Quantile estimates are within one bucket width of the exact
   rank-order quantile of the recorded samples. *)
let prop_hist_quantiles =
  let arb =
    QCheck.make
      ~print:QCheck.Print.(list int)
      QCheck.Gen.(
        list_size (int_range 1 300)
          (frequency
             [
               (1, int_bound 15);
               (2, int_bound 4095);
               (2, int_bound ((1 lsl 30) - 1));
             ]))
  in
  QCheck.Test.make ~name:"quantiles within one bucket of exact" ~count:100 arb
    (fun samples ->
      let h = Rtrt_obs.Hist.hist "qcheck.hist" in
      (* set_sink resets every histogram, so each trial starts clean. *)
      ignore
        (with_memory_sink (fun () ->
             List.iter (Rtrt_obs.Hist.record h) samples));
      let n = List.length samples in
      let sorted = List.sort compare samples in
      let st = Rtrt_obs.Hist.stats h in
      if st.Rtrt_obs.Hist.st_count <> n then
        QCheck.Test.fail_reportf "count %d, wanted %d"
          st.Rtrt_obs.Hist.st_count n;
      if st.Rtrt_obs.Hist.st_min <> List.hd sorted then
        QCheck.Test.fail_reportf "min %d, wanted %d" st.Rtrt_obs.Hist.st_min
          (List.hd sorted);
      if st.Rtrt_obs.Hist.st_max <> List.nth sorted (n - 1) then
        QCheck.Test.fail_reportf "max %d, wanted %d" st.Rtrt_obs.Hist.st_max
          (List.nth sorted (n - 1));
      let exact_mean =
        float_of_int (List.fold_left ( + ) 0 samples) /. float_of_int n
      in
      if Float.abs (st.Rtrt_obs.Hist.st_mean -. exact_mean) > 1e-6 then
        QCheck.Test.fail_reportf "mean %f, wanted %f"
          st.Rtrt_obs.Hist.st_mean exact_mean;
      List.for_all
        (fun q ->
          let rank =
            let r = int_of_float (ceil (q *. float_of_int n)) in
            max 1 (min n r)
          in
          let exact = List.nth sorted (rank - 1) in
          let est = Rtrt_obs.Hist.quantile h q in
          let idx = Rtrt_obs.Hist.index_of exact in
          let width =
            Rtrt_obs.Hist.lower_bound (idx + 1)
            - Rtrt_obs.Hist.lower_bound idx
          in
          if abs (est - exact) > width then
            QCheck.Test.fail_reportf
              "q=%.2f: estimate %d vs exact %d exceeds bucket width %d" q est
              exact width
          else true)
        [ 0.5; 0.9; 0.99 ])

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_clock_monotonic () =
  let prev = ref (Rtrt_obs.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Rtrt_obs.Clock.now_ns () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  let (), dt = Rtrt_obs.Clock.time busy in
  Alcotest.(check bool) "time elapsed non-negative" true (dt >= 0.0);
  let (), ns = Rtrt_obs.Clock.time_ns busy in
  Alcotest.(check bool) "time_ns elapsed non-negative" true (ns >= 0);
  Alcotest.(check (float 1e-12)) "to_s scales" 1.5 (Rtrt_obs.Clock.to_s 1_500_000_000);
  (* wall_s is Unix-epoch seconds: the one wall-clock reading kept for
     trace headers. Sanity-check the epoch range (2017..2112). *)
  let w = Rtrt_obs.Clock.wall_s () in
  Alcotest.(check bool) "wall clock in a sane epoch range" true
    (w > 1.5e9 && w < 4.5e9)

(* ------------------------------------------------------------------ *)
(* Sink lifecycle: switching flushes the old trace and resets state    *)

let test_switch_sink_flushes_and_resets () =
  let sink_a, events_a = Rtrt_obs.Sink.memory () in
  let sink_b, events_b = Rtrt_obs.Sink.memory () in
  Rtrt_obs.set_sink sink_a;
  let c = Rtrt_obs.Metrics.counter "switch.counter" in
  let h = Rtrt_obs.Hist.hist "switch.hist" in
  Rtrt_obs.Metrics.add c 11;
  Rtrt_obs.Hist.record h 1_000;
  Alcotest.(check int) "recorded while sink A active" 1 (Rtrt_obs.Hist.count h);
  (* Switching flushes pending values to the old sink... *)
  Rtrt_obs.set_sink sink_b;
  let find name ms =
    List.find_opt (fun (m : Rtrt_obs.Sink.metric) -> m.m_name = name) ms
  in
  let ms_a = Rtrt_obs.Report.metrics (events_a ()) in
  (match find "switch.counter" ms_a with
  | Some m ->
    Alcotest.(check (float 0.0)) "counter flushed to old sink" 11.0
      m.Rtrt_obs.Sink.m_value
  | None -> Alcotest.fail "counter not flushed to old sink");
  (match find "switch.hist.count" ms_a with
  | Some m ->
    Alcotest.(check (float 0.0)) "hist derived metric flushed" 1.0
      m.Rtrt_obs.Sink.m_value
  | None -> Alcotest.fail "histogram not flushed to old sink");
  (* ...and resets state so the new trace starts clean. *)
  Alcotest.(check int) "counter reset on switch" 0 (Rtrt_obs.Metrics.value c);
  Alcotest.(check int) "histogram reset on switch" 0 (Rtrt_obs.Hist.count h);
  Rtrt_obs.disable ();
  let ms_b = Rtrt_obs.Report.metrics (events_b ()) in
  Alcotest.(check bool) "new trace has its own header" true
    (find "trace.wall_start_unix_s" ms_b <> None);
  Alcotest.(check bool) "no stale counter in new trace" true
    (find "switch.counter" ms_b = None)

(* ------------------------------------------------------------------ *)
(* JSON / JSONL                                                        *)

let test_json_roundtrip () =
  let v =
    Rtrt_obs.Json.(
      Obj
        [
          ("s", String "a \"quoted\"\nline");
          ("i", Int (-42));
          ("f", Float 0.1);
          ("b", Bool true);
          ("n", Null);
          ("l", List [ Int 1; Float 2.5; String "x" ]);
          ("o", Obj [ ("nested", Bool false) ]);
        ])
  in
  let s = Rtrt_obs.Json.to_string v in
  (match Rtrt_obs.Json.of_string s with
  | Ok v' -> Alcotest.(check bool) "value round-trips" true (v = v')
  | Error msg -> Alcotest.fail msg);
  (* Malformed inputs are rejected. *)
  List.iter
    (fun bad ->
      match Rtrt_obs.Json.of_string bad with
      | Ok _ -> Alcotest.fail (Fmt.str "accepted malformed %S" bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* Every scalar value in [0x20, 0x10FFFF] written as a \uXXXX escape
   (a surrogate pair above the BMP) must decode to the code point's
   UTF-8 bytes — checked against the stdlib encoder, not our own —
   and the decoded string must survive another print/parse cycle. *)
let prop_json_unicode_escapes =
  let arb =
    QCheck.make
      ~print:(Printf.sprintf "U+%04X")
      QCheck.Gen.(
        frequency
          [
            (1, int_range 0x20 0xD7FF);
            (1, int_range 0xE000 0x10FFFF);
          ])
  in
  QCheck.Test.make ~name:"\\u escapes decode to UTF-8 and round-trip"
    ~count:500 arb (fun cp ->
      let escaped =
        if cp < 0x10000 then Printf.sprintf "\"\\u%04x\"" cp
        else
          let u = cp - 0x10000 in
          (* Mixed hex case on purpose: both must parse. *)
          Printf.sprintf "\"\\u%04X\\u%04x\""
            (0xD800 lor (u lsr 10))
            (0xDC00 lor (u land 0x3FF))
      in
      let expected =
        let b = Buffer.create 4 in
        Buffer.add_utf_8_uchar b (Uchar.of_int cp);
        Buffer.contents b
      in
      match Rtrt_obs.Json.of_string escaped with
      | Error msg -> QCheck.Test.fail_reportf "rejected %s: %s" escaped msg
      | Ok (Rtrt_obs.Json.String s) ->
        if s <> expected then
          QCheck.Test.fail_reportf "decoded %S, wanted %S" s expected;
        (match
           Rtrt_obs.Json.of_string
             (Rtrt_obs.Json.to_string (Rtrt_obs.Json.String s))
         with
        | Ok v -> v = Rtrt_obs.Json.String s
        | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s" msg)
      | Ok _ -> QCheck.Test.fail_report "parsed to a non-string")

let test_json_bad_escapes () =
  (* Unpaired or malformed surrogates and loose hex are parse errors,
     never silently mangled output. *)
  List.iter
    (fun bad ->
      match Rtrt_obs.Json.of_string bad with
      | Ok _ -> Alcotest.fail (Fmt.str "accepted %S" bad)
      | Error _ -> ())
    [
      {|"\ud800"|} (* unpaired high surrogate *);
      {|"\udc00"|} (* unpaired low surrogate *);
      {|"\ud800\u0041"|} (* high surrogate followed by a non-low one *);
      {|"\ud800\ud800"|};
      {|"\ud83d x"|};
      {|"\u12g4"|} (* non-hex digit *);
      {|"\u+123"|} (* int_of_string would have taken the sign *);
      {|"\u12"|} (* truncated *);
    ];
  (match Rtrt_obs.Json.of_string {|"\ud83d\ude00"|} with
  | Ok (Rtrt_obs.Json.String s) ->
    Alcotest.(check string) "surrogate pair" "\xF0\x9F\x98\x80" s
  | _ -> Alcotest.fail "valid surrogate pair rejected");
  match Rtrt_obs.Json.of_string {|"\u00e9"|} with
  | Ok (Rtrt_obs.Json.String s) ->
    Alcotest.(check string) "two-byte code point" "\xC3\xA9" s
  | _ -> Alcotest.fail "\\u00e9 rejected"

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "rtrt_obs" ".jsonl" in
  Rtrt_obs.set_sink (Rtrt_obs.Sink.jsonl_file path);
  let c = Rtrt_obs.Metrics.counter "jsonl.test" in
  Rtrt_obs.Metrics.reset ();
  Rtrt_obs.Span.with_ ~name:"a"
    ~attrs:[ ("k", Rtrt_obs.Json.String "v") ]
    (fun () ->
      Rtrt_obs.Metrics.add c 7;
      Rtrt_obs.Span.with_ ~name:"b" busy);
  Rtrt_obs.Metrics.flush ();
  Rtrt_obs.disable () (* closes the file *);
  let events = Rtrt_obs.Report.events_of_jsonl path in
  Sys.remove path;
  (* trace header + 2 span starts + 2 span ends + 1 counter. *)
  Alcotest.(check int) "six events" 6 (List.length events);
  (match Rtrt_obs.Report.tree_of_events events with
  | [ a ] ->
    Alcotest.(check string) "root is a" "a" (span_name a);
    Alcotest.(check int) "one child" 1 (List.length a.children);
    Alcotest.(check string) "child is b" "b" (span_name (List.hd a.children));
    Alcotest.(check bool) "attr survives the round-trip" true
      (List.assoc_opt "k" a.span.Rtrt_obs.Sink.attrs
      = Some (Rtrt_obs.Json.String "v"));
    Alcotest.(check bool) "durations nest" true
      ((List.hd a.children).dur <= a.dur)
  | roots -> Alcotest.fail (Fmt.str "expected 1 root, got %d" (List.length roots)));
  let ms = Rtrt_obs.Report.metrics events in
  (* The trace header plus our counter. *)
  Alcotest.(check int) "two metrics" 2 (List.length ms);
  Alcotest.(check bool) "header metric present" true
    (List.exists
       (fun (m : Rtrt_obs.Sink.metric) ->
         m.Rtrt_obs.Sink.m_name = "trace.wall_start_unix_s")
       ms);
  match
    List.find_opt
      (fun (m : Rtrt_obs.Sink.metric) -> m.Rtrt_obs.Sink.m_name = "jsonl.test")
      ms
  with
  | Some m ->
    Alcotest.(check (float 0.0)) "counter value" 7.0 m.Rtrt_obs.Sink.m_value
  | None -> Alcotest.fail "counter metric missing"

(* ------------------------------------------------------------------ *)
(* Figure JSON export                                                  *)

let tiny =
  { Harness.Figures.scale = 512; trace_steps = 1; wall_steps = 1; domains = 1;
    plan_cache = None }

let test_figure_json_parses () =
  (* The same payloads `rtrt json datasets` / `rtrt json figure6`
     print, parsed back through our own parser. *)
  let check_roundtrip label j =
    let s = Rtrt_obs.Json.to_string j in
    match Rtrt_obs.Json.of_string s with
    | Ok v -> v
    | Error msg -> Alcotest.fail (Fmt.str "%s: %s" label msg)
  in
  let datasets =
    Harness.Figures.json_dataset_rows
      (Harness.Figures.dataset_table ~config:tiny ())
  in
  (match
     Rtrt_obs.Json.to_list_opt (check_roundtrip "datasets" datasets)
   with
  | Some rows -> Alcotest.(check int) "four dataset rows" 4 (List.length rows)
  | None -> Alcotest.fail "datasets: expected a JSON list");
  let exec =
    Harness.Figures.json_exec_rows
      (Harness.Figures.executor_time ~machine:Cachesim.Machine.pentium4
         ~config:tiny ())
  in
  match Rtrt_obs.Json.to_list_opt (check_roundtrip "figure7" exec) with
  | Some rows ->
    Alcotest.(check int) "six exec rows" 6 (List.length rows);
    List.iter
      (fun row ->
        match
          Option.bind (Rtrt_obs.Json.member "plans" row) Rtrt_obs.Json.to_list_opt
        with
        | Some plans ->
          Alcotest.(check int) "ten plans" 10 (List.length plans);
          List.iter
            (fun p ->
              match
                Option.bind
                  (Rtrt_obs.Json.member "normalized_cycles" p)
                  Rtrt_obs.Json.to_float_opt
              with
              | Some v ->
                Alcotest.(check bool) "finite normalized cycles" true
                  (Float.is_finite v && v > 0.0)
              | None -> Alcotest.fail "plan without normalized_cycles")
            plans
        | None -> Alcotest.fail "row without plans")
      rows
  | None -> Alcotest.fail "figure7: expected a JSON list"

(* ------------------------------------------------------------------ *)
(* Inspector span coverage and self-time consistency                   *)

let test_inspector_span_coverage () =
  let d = Datagen.Generators.mol1 ~scale:512 () in
  let kernel = Kernels.Moldyn.of_dataset d in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:16 Compose.Plan.cpack_lexgroup_twice
  in
  let n_transforms = List.length (Compose.Plan.transforms plan) in
  let result = ref None in
  let events =
    with_memory_sink (fun () ->
        result := Some (Harness.Experiment.inspect plan kernel))
  in
  let result = Option.get !result in
  let ends =
    List.filter_map
      (function Rtrt_obs.Sink.Span_end (s, d) -> Some (s, d) | _ -> None)
      events
  in
  (* One span per transformation in the composed plan... *)
  let transforms =
    List.filter (fun (s, _) -> s.Rtrt_obs.Sink.name = "inspector.transform") ends
  in
  Alcotest.(check int) "a span per transformation" n_transforms
    (List.length transforms);
  (* ...tagged with the reordering-function name the step produced. *)
  let tagged =
    List.filter
      (fun (s, _) -> List.mem_assoc "fn" s.Rtrt_obs.Sink.attrs)
      transforms
  in
  Alcotest.(check int) "fn attribute on every reordering step"
    (List.length result.Compose.Inspector.reordering_fns)
    (List.length tagged);
  (* Phase times sum back to the reported inspector_seconds. *)
  let root =
    match
      List.find_opt (fun (s, _) -> s.Rtrt_obs.Sink.name = "inspector.run") ends
    with
    | Some r -> r
    | None -> Alcotest.fail "no inspector.run span"
  in
  let roots = Rtrt_obs.Report.tree_of_events events in
  let rec find_node name = function
    | [] -> None
    | (n : Rtrt_obs.Report.node) :: rest ->
      if span_name n = name then Some n
      else (
        match find_node name n.children with
        | Some hit -> Some hit
        | None -> find_node name rest)
  in
  let run_node = Option.get (find_node "inspector.run" roots) in
  let phase_sum =
    Rtrt_obs.Report.child_seconds run_node
    +. Rtrt_obs.Report.self_seconds run_node
  in
  Alcotest.(check (float 1e-12)) "phases sum to the span" (snd root) phase_sum;
  let reported = result.Compose.Inspector.inspector_seconds in
  Alcotest.(check bool)
    (Fmt.str "span duration %.6f matches inspector_seconds %.6f" (snd root)
       reported)
    true
    (Float.abs (snd root -. reported) <= 0.05 *. reported +. 0.005)

(* ------------------------------------------------------------------ *)
(* No-op guarantee: instrumentation doesn't change results             *)

let test_noop_measure_unchanged () =
  let d = Datagen.Generators.foil ~scale:512 () in
  let kernel = Kernels.Irreg.of_dataset d in
  let measure () =
    Harness.Experiment.measure ~trace_steps_n:1 ~wall_steps:1
      ~machine:Cachesim.Machine.pentium4 ~plan:Compose.Plan.cpack_lexgroup
      kernel
  in
  Alcotest.(check bool) "tracing starts disabled" false (Rtrt_obs.enabled ());
  let plain = measure () in
  let traced = ref None in
  ignore (with_memory_sink (fun () -> traced := Some (measure ())));
  let traced = Option.get !traced in
  (* Every deterministic field must be identical (wall-clock fields
     vary run to run, instrumented or not). *)
  let open Harness.Experiment in
  Alcotest.(check string) "plan" plain.plan_name traced.plan_name;
  Alcotest.(check (float 0.0)) "modeled cycles" plain.modeled_cycles_per_step
    traced.modeled_cycles_per_step;
  Alcotest.(check (float 0.0)) "misses" plain.misses_per_step
    traced.misses_per_step;
  Alcotest.(check (float 0.0)) "accesses" plain.accesses_per_step
    traced.accesses_per_step;
  Alcotest.(check (float 0.0)) "miss ratio" plain.miss_ratio traced.miss_ratio;
  Alcotest.(check int) "remaps" plain.n_data_remaps traced.n_data_remaps;
  Alcotest.(check int) "tiles" plain.n_tiles traced.n_tiles

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and self-time" `Quick test_span_nesting;
          Alcotest.test_case "disabled is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "exception pops the stack" `Quick
            test_span_exception_pops_stack;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter accumulation" `Quick
            test_counter_accumulation;
          Alcotest.test_case "switch_sink flushes and resets" `Quick
            test_switch_sink_flushes_and_resets;
        ] );
      ( "hist",
        [
          Alcotest.test_case "basic stats" `Quick test_hist_basic;
          Alcotest.test_case "disabled record is a no-op" `Quick
            test_hist_disabled_noop;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_hist_buckets; prop_hist_quantiles ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "bad escapes rejected" `Quick
            test_json_bad_escapes;
          Alcotest.test_case "jsonl sink round-trip" `Quick
            test_jsonl_sink_roundtrip;
          Alcotest.test_case "figure export parses" `Quick
            test_figure_json_parses;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_json_unicode_escapes ] );
      ( "integration",
        [
          Alcotest.test_case "inspector span coverage" `Quick
            test_inspector_span_coverage;
          Alcotest.test_case "measure unchanged by tracing" `Quick
            test_noop_measure_unchanged;
        ] );
    ]
