(* Tests for the Presburger-with-UFS layer: terms, constraints, sets,
   relations, solving, lexicographic order, and the parser. The
   composition tests mirror the worked example of Section 5 of the
   paper (simplified moldyn). *)

open Presburger

let term = Alcotest.testable Term.pp Term.equal
let rel = Alcotest.testable Rel.pp Rel.equal

let check_term = Alcotest.check term
let check_rel = Alcotest.check rel

(* ------------------------------------------------------------------ *)
(* Term tests *)

let test_term_normalization () =
  let t1 = Term.add (Term.var "i") (Term.var "j") in
  let t2 = Term.add (Term.var "j") (Term.var "i") in
  check_term "commutative" t1 t2;
  let z = Term.sub t1 t1 in
  check_term "self-subtraction" Term.zero z;
  Alcotest.(check bool) "is_const" true (Term.is_const z)

let test_term_scale () =
  let t = Term.add (Term.scale 2 (Term.var "i")) (Term.const 3) in
  let doubled = Term.scale 2 t in
  check_term "scale distributes"
    (Term.add (Term.scale 4 (Term.var "i")) (Term.const 6))
    doubled;
  check_term "scale by zero" Term.zero (Term.scale 0 t)

let test_term_subst () =
  (* sigma(left(j)) with j := lg_inv(j1), as in the second CPACK
     inspector of Figure 12. *)
  let m = Term.ufs "sigma" [ Term.ufs "left" [ Term.var "j" ] ] in
  let m' = Term.subst "j" (Term.ufs "lg_inv" [ Term.var "j1" ]) m in
  check_term "subst inside nested UFS"
    (Term.ufs "sigma"
       [ Term.ufs "left" [ Term.ufs "lg_inv" [ Term.var "j1" ] ] ])
    m';
  Alcotest.(check (list string)) "vars" [ "j1" ] (Term.vars m')

let test_term_subst_affine () =
  let t = Term.add (Term.scale 3 (Term.var "x")) (Term.var "y") in
  let t' = Term.subst "x" (Term.add (Term.var "y") (Term.const 1)) t in
  check_term "affine substitution"
    (Term.add (Term.scale 4 (Term.var "y")) (Term.const 3))
    t'

let test_term_eval () =
  let t =
    Term.add
      (Term.scale 2 (Term.ufs "f" [ Term.var "i" ]))
      (Term.sub (Term.var "j") (Term.const 5))
  in
  let env = function "i" -> 3 | "j" -> 10 | _ -> raise Not_found in
  let interp f args =
    match f, args with "f", [ x ] -> x * x | _ -> assert false
  in
  Alcotest.(check int) "eval" ((2 * 9) + 10 - 5) (Term.eval ~env ~interp t)

let test_term_as () =
  Alcotest.(check (option string)) "as_var" (Some "i") (Term.as_var (Term.var "i"));
  Alcotest.(check (option string)) "as_var no" None
    (Term.as_var (Term.add (Term.var "i") (Term.const 1)));
  match Term.as_ufs (Term.ufs "f" [ Term.var "x" ]) with
  | Some ("f", [ arg ]) -> check_term "ufs arg" (Term.var "x") arg
  | _ -> Alcotest.fail "as_ufs"

(* ------------------------------------------------------------------ *)
(* Constraint tests *)

let test_constr_truth () =
  let tv c = Constr.truth c in
  Alcotest.(check bool) "0 = 0 true" true (tv (Constr.eq Term.zero Term.zero) = `True);
  Alcotest.(check bool) "1 = 0 false" true
    (tv (Constr.eq (Term.const 1) Term.zero) = `False);
  Alcotest.(check bool) "3 >= 1 true" true
    (tv (Constr.geq (Term.const 3) (Term.const 1)) = `True);
  Alcotest.(check bool) "1 >= 3 false" true
    (tv (Constr.geq (Term.const 1) (Term.const 3)) = `False);
  Alcotest.(check bool) "i >= 0 unknown" true
    (tv (Constr.geq (Term.var "i") Term.zero) = `Unknown)

let test_constr_eval () =
  let c = Constr.lt (Term.var "i") (Term.var "n") in
  let env = function "i" -> 3 | "n" -> 4 | _ -> raise Not_found in
  let interp _ _ = 0 in
  Alcotest.(check bool) "3 < 4" true (Constr.eval ~env ~interp c);
  let env = function "i" -> 4 | "n" -> 4 | _ -> raise Not_found in
  Alcotest.(check bool) "4 < 4 fails" false (Constr.eval ~env ~interp c)

let test_constr_normalize () =
  let c1 = Constr.eq (Term.var "x") (Term.var "y") in
  let c2 = Constr.eq (Term.var "y") (Term.var "x") in
  Alcotest.(check bool) "sign-normalized equalities match" true
    (Constr.equal (Constr.normalize c1) (Constr.normalize c2))

(* ------------------------------------------------------------------ *)
(* Solve tests *)

let bij_env =
  Ufs_env.add_bijection "sigma" ~inverse:"sigma_inv" ~arity:1
    (Ufs_env.add_bijection "lg" ~inverse:"lg_inv" ~arity:1 Ufs_env.empty)

let test_solve_affine () =
  (* j1 - j - 2 = 0 solved for j gives j1 - 2. *)
  let t = Term.sub (Term.var "j1") (Term.add (Term.var "j") (Term.const 2)) in
  match Solve.solve Ufs_env.empty t "j" with
  | Some s -> check_term "affine solve" (Term.sub (Term.var "j1") (Term.const 2)) s
  | None -> Alcotest.fail "expected solution"

let test_solve_ufs () =
  (* j1 - lg(j) = 0 solved for j gives lg_inv(j1). *)
  let t = Term.sub (Term.var "j1") (Term.ufs "lg" [ Term.var "j" ]) in
  match Solve.solve bij_env t "j" with
  | Some s -> check_term "ufs solve" (Term.ufs "lg_inv" [ Term.var "j1" ]) s
  | None -> Alcotest.fail "expected solution"

let test_solve_nested_ufs () =
  (* x - sigma(lg(j)) = 0 solved for j gives lg_inv(sigma_inv(x)). *)
  let t =
    Term.sub (Term.var "x") (Term.ufs "sigma" [ Term.ufs "lg" [ Term.var "j" ] ])
  in
  match Solve.solve bij_env t "j" with
  | Some s ->
    check_term "nested solve"
      (Term.ufs "lg_inv" [ Term.ufs "sigma_inv" [ Term.var "x" ] ])
      s
  | None -> Alcotest.fail "expected solution"

let test_solve_no_inverse () =
  (* x - left(j) = 0: [left] is an index array, not a bijection. *)
  let t = Term.sub (Term.var "x") (Term.ufs "left" [ Term.var "j" ]) in
  Alcotest.(check bool) "no inverse registered" true
    (Solve.solve Ufs_env.empty t "j" = None)

(* ------------------------------------------------------------------ *)
(* Relation tests *)

let interp_tbl assoc f args =
  match List.assoc_opt (f, args) assoc with
  | Some v -> v
  | None ->
    Alcotest.fail
      (Fmt.str "no interpretation for %s(%a)" f Fmt.(list ~sep:comma int) args)

let test_rel_identity () =
  let id = Rel.identity 3 in
  Alcotest.(check (list int)) "identity eval" [ 4; 5; 6 ]
    (Rel.eval_fn id [ 4; 5; 6 ])

let test_rel_compose_functional () =
  (* {[i] -> [sigma(i)]} then {[m] -> [sigma2(m)]}
     = {[i] -> [sigma2(sigma(i))]}  (Section 5.3's R_{x0->x2}). *)
  let r1 = Parser.relation "{[i] -> [sigma(i)]}" in
  let r2 = Parser.relation "{[m] -> [sigma2(m)]}" in
  let c = Rel.compose r2 r1 in
  check_rel "nested" (Parser.relation "{[i] -> [sigma2(sigma(i))]}") c

let test_rel_compose_affine () =
  let r1 = Parser.relation "{[i] -> [2i + 1]}" in
  let r2 = Parser.relation "{[m] -> [m - 1]}" in
  let c = Rel.compose r2 r1 in
  Alcotest.(check (list int)) "eval composed" [ 10 ] (Rel.eval_fn c [ 5 ])

let test_rel_compose_union () =
  (* Data mapping for x in the j loop: left and right branches, then a
     data reordering sigma. *)
  let m = Parser.relation "{[j] -> [left(j)]} union {[j] -> [right(j)]}" in
  let r = Parser.relation "{[m] -> [sigma(m)]}" in
  let c = Rel.compose r m in
  check_rel "both branches reordered"
    (Parser.relation
       "{[j] -> [sigma(left(j))]} union {[j] -> [sigma(right(j))]}")
    c

let test_rel_inverse_affine () =
  let r = Parser.relation "{[i] -> [i + 3]}" in
  let inv = Rel.inverse r in
  Alcotest.(check (list int)) "inverse eval" [ 7 ] (Rel.eval_fn inv [ 10 ]);
  Alcotest.(check bool) "functional inverse" true (Rel.is_functional inv)

let test_rel_inverse_ufs () =
  let r = Parser.relation "{[j] -> [lg(j)]}" in
  let inv = Rel.inverse ~env:bij_env r in
  check_rel "inverse via registered bijection"
    (Rel.rename_in_vars [ "y0" ] (Parser.relation "{[j1] -> [lg_inv(j1)]}"))
    inv

let test_rel_inverse_no_env () =
  (* Without a registered inverse the relation stays implicit: an
     existential constrained by an equality. *)
  let r = Parser.relation "{[j] -> [lg(j)]}" in
  let inv = Rel.inverse r in
  Alcotest.(check bool) "not functional" false (Rel.is_functional inv)

let test_rel_inverse_multidim () =
  let r = Parser.relation "{[s,i] -> [s, sigma(i)]}" in
  let inv = Rel.inverse ~env:bij_env r in
  Alcotest.(check bool) "functional" true (Rel.is_functional inv);
  let interp = interp_tbl [ (("sigma_inv", [ 9 ]), 4) ] in
  Alcotest.(check (list int)) "eval" [ 2; 4 ] (Rel.eval_fn ~interp inv [ 2; 9 ])

let test_rel_roundtrip_inverse () =
  let r = Parser.relation "{[s,i] -> [s, sigma(i)]}" in
  let rt = Rel.compose ~env:bij_env (Rel.inverse ~env:bij_env r) r in
  (* sigma_inv(sigma(i)) does not syntactically reduce without rewrite
     rules, so evaluate instead. *)
  let interp f args =
    match f, args with
    | "sigma", [ x ] -> (x + 3) mod 10
    | "sigma_inv", [ x ] -> (x + 7) mod 10
    | _ -> assert false
  in
  Alcotest.(check (list int)) "roundtrip" [ 1; 5 ] (Rel.eval_fn ~interp rt [ 1; 5 ])

let test_rel_union_arity_mismatch () =
  let r1 = Parser.relation "{[i] -> [i]}" in
  let r2 = Parser.relation "{[i,j] -> [i]}" in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Rel.union: arity mismatch (1x1 vs 2x1)") (fun () ->
      ignore (Rel.union r1 r2))

let test_rel_eval_constraints () =
  let r = Parser.relation "{[i] -> [i] : 1 <= i && i <= 10}" in
  Alcotest.(check (list (list int))) "in range" [ [ 5 ] ] (Rel.eval r [ 5 ]);
  Alcotest.(check (list (list int))) "out of range" [] (Rel.eval r [ 11 ])

let test_rel_ufs_names () =
  let r = Parser.relation "{[j] -> [sigma(left(j))] : right(j) >= 1}" in
  Alcotest.(check (list string)) "ufs names" [ "left"; "right"; "sigma" ]
    (Rel.ufs_names r)

(* The full Section 5 composition: check the headline formula
   M_{I0->x1} = R . M_{I0->x0} for the j-loop part. *)
let test_paper_section5_data_mapping () =
  let m_j =
    Parser.relation "{[s,2,j,q] -> [left(j)]} union {[s,2,j,q] -> [right(j)]}"
  in
  let r = Parser.relation "{[m] -> [sigma_cp(m)]}" in
  let m' = Rel.compose r m_j in
  check_rel "M_{I0->x1} j-loop part"
    (Parser.relation
       "{[s,2,j,q] -> [sigma_cp(left(j))]} union {[s,2,j,q] -> \
        [sigma_cp(right(j))]}")
    m'

(* T_{I1->I2} . T_{I0->I1} for the j dimensions: j2 = lg2(lg(j)). *)
let test_paper_section5_iter_composition () =
  let t01 = Parser.relation "{[s,2,j,q] -> [s,2,lg(j),q]}" in
  let t12 = Parser.relation "{[s,2,j1,q] -> [s,2,lg2(j1),q]}" in
  let t02 = Rel.compose t12 t01 in
  check_rel "T_{I0->I2} j part"
    (Parser.relation "{[s,2,j,q] -> [s,2,lg2(lg(j)),q]}")
    t02

(* Updated dependences: apply the k-loop part of an iteration
   reordering to the target side of d24 (Section 5.2). *)
let test_paper_dependence_update () =
  let d24 =
    Parser.relation "{[s,2,j,q] -> [s,3,left(j),1] : 1 <= q && q <= 2}"
  in
  let t_k = Parser.relation "{[s,c,k,w] -> [s,c,sigma_cp(k),w]}" in
  let d' = Rel.compose t_k d24 in
  check_rel "target-side update"
    (Parser.relation
       "{[s,2,j,q] -> [s,3,sigma_cp(left(j)),1] : 1 <= q && q <= 2}")
    d'

let test_rel_domain () =
  let r = Parser.relation "{[i] -> [i + 1] : 1 <= i && i <= 5}" in
  let d = Rel.domain r in
  Alcotest.(check bool) "3 in domain" true (Set.mem d [ 3 ]);
  Alcotest.(check bool) "6 not in domain" false (Set.mem d [ 6 ])

let test_rel_range () =
  let r = Parser.relation "{[i] -> [i + 10] : 1 <= i && i <= 3}" in
  let rng = Rel.range r in
  Alcotest.(check bool) "11 in range" true (Set.mem rng [ 11 ]);
  Alcotest.(check bool) "13 in range" true (Set.mem rng [ 13 ]);
  Alcotest.(check bool) "14 not in range" false (Set.mem rng [ 14 ])

let test_rel_restrict_domain () =
  let r = Parser.relation "{[i] -> [2 i]}" in
  let s = Parser.set "{[i] : 1 <= i && i <= 3}" in
  let r' = Rel.restrict_domain r s in
  Alcotest.(check (list (list int))) "inside" [ [ 4 ] ] (Rel.eval r' [ 2 ]);
  Alcotest.(check (list (list int))) "outside" [] (Rel.eval r' [ 5 ])

let test_rel_image_union () =
  (* Image through a union relation collects both branches. *)
  let r = Parser.relation "{[i] -> [i]} union {[i] -> [i + 10]}" in
  let s = Parser.set "{[i] : i = 2}" in
  let img = Rel.image r s in
  Alcotest.(check bool) "2 in image" true (Set.mem img [ 2 ]);
  Alcotest.(check bool) "12 in image" true (Set.mem img [ 12 ]);
  Alcotest.(check bool) "3 not in image" false (Set.mem img [ 3 ])

(* ------------------------------------------------------------------ *)
(* Set tests *)

let test_set_mem () =
  let s = Parser.set "{[s,i] : 1 <= s && s <= 3 && 1 <= i && i <= 5}" in
  Alcotest.(check bool) "member" true (Set.mem s [ 2; 4 ]);
  Alcotest.(check bool) "not member" false (Set.mem s [ 4; 4 ])

let test_set_union_mem () =
  let s = Parser.set "{[i] : i = 1} union {[i] : i = 5}" in
  Alcotest.(check bool) "first" true (Set.mem s [ 1 ]);
  Alcotest.(check bool) "second" true (Set.mem s [ 5 ]);
  Alcotest.(check bool) "neither" false (Set.mem s [ 3 ])

let test_set_enumerate () =
  let s = Parser.set "{[i,j] : 1 <= i && i <= 2 && i <= j && j <= 3}" in
  Alcotest.(check (list (list int)))
    "triangular enumeration"
    [ [ 1; 1 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 2 ]; [ 2; 3 ] ]
    (Set.enumerate ~bounds:[ (0, 4); (0, 4) ] s)

let test_set_apply () =
  let s = Parser.set "{[i] : 1 <= i && i <= 4}" in
  let r = Parser.relation "{[i] -> [i + 10]}" in
  let image = Rel.image r s in
  Alcotest.(check bool) "11 in image" true (Set.mem image [ 11 ]);
  Alcotest.(check bool) "14 in image" true (Set.mem image [ 14 ]);
  Alcotest.(check bool) "15 not in image" false (Set.mem image [ 15 ])

let test_set_intersect () =
  let s1 = Parser.set "{[i] : 1 <= i && i <= 10}" in
  let s2 = Parser.set "{[i] : 5 <= i && i <= 15}" in
  let s = Set.intersect s1 s2 in
  Alcotest.(check bool) "7 in" true (Set.mem s [ 7 ]);
  Alcotest.(check bool) "3 out" false (Set.mem s [ 3 ]);
  Alcotest.(check bool) "12 out" false (Set.mem s [ 12 ])

(* The unified iteration space I0 of the simplified moldyn example
   (Section 3.1), instantiated with n_steps=2, n_nodes=3, n_inter=4. *)
let test_unified_iteration_space () =
  let i0c =
    Parser.set
      "{[s,1,i,1] : 1 <= s && s <= 2 && 1 <= i && i <= 3} union {[s,2,j,q] : \
       1 <= s && s <= 2 && 1 <= j && j <= 4 && 1 <= q && q <= 2} union \
       {[s,3,k,1] : 1 <= s && s <= 2 && 1 <= k && k <= 3}"
  in
  Alcotest.(check int) "arity 4" 4 (Set.arity i0c);
  Alcotest.(check bool) "S1 iteration" true (Set.mem i0c [ 1; 1; 2; 1 ]);
  Alcotest.(check bool) "S2/S3 iteration" true (Set.mem i0c [ 2; 2; 4; 2 ]);
  Alcotest.(check bool) "S4 iteration" true (Set.mem i0c [ 2; 3; 3; 1 ]);
  Alcotest.(check bool) "bad statement" false (Set.mem i0c [ 1; 4; 1; 1 ]);
  Alcotest.(check int) "cardinality" (6 + 16 + 6)
    (List.length (Set.enumerate ~bounds:[ (1, 2); (1, 3); (1, 4); (1, 2) ] i0c))

(* ------------------------------------------------------------------ *)
(* Lexicographic order *)

let test_lexord_concrete () =
  Alcotest.(check bool) "prefix lt" true
    (Lexord.precedes_concrete [ 1; 1; 2; 1 ] [ 1; 2; 1; 1 ]);
  Alcotest.(check bool) "equal not lt" false
    (Lexord.precedes_concrete [ 1; 2 ] [ 1; 2 ]);
  Alcotest.(check bool) "later not lt" false
    (Lexord.precedes_concrete [ 2; 0 ] [ 1; 9 ])

let test_lexord_symbolic () =
  let open Lexord in
  let t v = Term.var v and c k = Term.const k in
  Alcotest.(check bool) "constant diff" true
    (compare_symbolic [ t "s"; c 1 ] [ t "s"; c 2 ] = Lt);
  Alcotest.(check bool) "identical tail" true
    (compare_symbolic [ t "s"; t "i" ] [ t "s"; t "i" ] = Eq);
  Alcotest.(check bool) "ufs vs ufs unknown" true
    (compare_symbolic [ Term.ufs "f" [ t "i" ] ] [ Term.ufs "g" [ t "i" ] ]
     = Unknown);
  Alcotest.(check bool) "same ufs prefix decides" true
    (compare_symbolic
       [ Term.ufs "f" [ t "i" ]; c 1 ]
       [ Term.ufs "f" [ t "i" ]; c 3 ]
     = Lt)

(* ------------------------------------------------------------------ *)
(* Parser round-trips *)

let test_parser_roundtrip () =
  let srcs =
    [
      "{[i] -> [i]}";
      "{[s,1,i,1] -> [s,1,sigma(i),1]}";
      "{[j] -> [left(j)]} union {[j] -> [right(j)]}";
      "{[i] -> [2 i + 1] : 1 <= i && i <= n}";
      "{[i,j] -> [j,i] : i < j}";
    ]
  in
  List.iter
    (fun src ->
      let r = Parser.relation src in
      let printed = Rel.to_string r in
      let r' = Parser.relation printed in
      Alcotest.(check bool) (Fmt.str "roundtrip %s" src) true (Rel.equal r r'))
    srcs

let test_parser_errors () =
  let bad = [ "{[i] -> }"; "{[i]"; "{[i] -> [i] : }" ] in
  List.iter
    (fun src ->
      match Parser.relation src with
      | exception (Parser.Parse_error _ | Invalid_argument _) -> ()
      | _ -> Alcotest.fail (Fmt.str "expected failure on %s" src))
    bad

let test_parser_exists () =
  let r = Parser.relation "{[j] -> [k] : exists(k : k = left(j))}" in
  (* k is bound existentially and determined by an equality that cannot
     be solved (no inverse for left), so the relation is not
     functional. *)
  Alcotest.(check bool) "not functional" false (Rel.is_functional r)

let test_parser_chain () =
  let s = Parser.set "{[i] : 1 <= i <= 10}" in
  Alcotest.(check bool) "chained in" true (Set.mem s [ 10 ]);
  Alcotest.(check bool) "chained out" false (Set.mem s [ 11 ])

(* ------------------------------------------------------------------ *)
(* Ufs_env and Fresh *)

let test_ufs_env () =
  let env = Ufs_env.add_bijection "f" ~inverse:"f_inv" ~arity:1 Ufs_env.empty in
  Alcotest.(check (option string)) "inverse" (Some "f_inv") (Ufs_env.inverse "f" env);
  Alcotest.(check (option string)) "inverse of inverse" (Some "f")
    (Ufs_env.inverse "f_inv" env);
  Alcotest.(check (option int)) "arity" (Some 1) (Ufs_env.arity "f" env);
  Alcotest.(check (option string)) "unknown" None (Ufs_env.inverse "g" env);
  let env2 = Ufs_env.add ~arity:2 "theta" env in
  Alcotest.(check (option string)) "non-bijection has no inverse" None
    (Ufs_env.inverse "theta" env2);
  Alcotest.(check (list string)) "names" [ "f"; "f_inv"; "theta" ]
    (Ufs_env.names env2)

let test_fresh_names () =
  let a = Fresh.var () and b = Fresh.var () in
  Alcotest.(check bool) "distinct" true (not (String.equal a b));
  Alcotest.(check bool) "marked fresh" true (Fresh.is_fresh a);
  Alcotest.(check bool) "user names not fresh" false (Fresh.is_fresh "i");
  Alcotest.(check int) "vars count" 3 (List.length (Fresh.vars 3))

(* Parser corner cases. *)
let test_parser_corners () =
  (* Implicit product [2 i], explicit [2 * i], negation, ==. *)
  let t1 = Parser.term "2 i + 1" in
  let t2 = Parser.term "2 * i + 1" in
  Alcotest.(check bool) "products equal" true (Term.equal t1 t2);
  let t3 = Parser.term "-i + 3" in
  Alcotest.(check bool) "negation" true
    (Term.equal t3 (Term.add (Term.neg (Term.var "i")) (Term.const 3)));
  let s = Parser.set "{[i] : i == 4}" in
  Alcotest.(check bool) "== accepted" true (Set.mem s [ 4 ]);
  (* Multi-argument UFS. *)
  let t4 = Parser.term "theta(2, j)" in
  Alcotest.(check bool) "2-arg ufs" true
    (Term.equal t4 (Term.ufs "theta" [ Term.const 2; Term.var "j" ]))

(* Pretty-printer / parser roundtrip on terms with negative and
   multi-coefficient monomials. *)
let test_term_pp_roundtrip () =
  List.iter
    (fun src ->
      let t = Parser.term src in
      let t' = Parser.term (Term.to_string t) in
      Alcotest.(check bool) (Fmt.str "roundtrip %s" src) true (Term.equal t t'))
    [ "i"; "-i"; "2 i - 3 j + 7"; "-2 i - 1"; "f(i) - 2 g(j, k)"; "0" ]

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let small_tuple = QCheck.(list_of_size (Gen.return 3) (int_range (-20) 20))

let prop_lexord_total =
  QCheck.Test.make ~name:"lexord trichotomy" ~count:200
    (QCheck.pair small_tuple small_tuple) (fun (a, b) ->
      let c = Lexord.compare_concrete a b in
      let c' = Lexord.compare_concrete b a in
      (c = 0 && c' = 0) || (c < 0 && c' > 0) || (c > 0 && c' < 0))

let prop_lexord_transitive =
  QCheck.Test.make ~name:"lexord transitive" ~count:200
    (QCheck.triple small_tuple small_tuple small_tuple) (fun (a, b, c) ->
      let ( <= ) x y = Lexord.compare_concrete x y <= 0 in
      if a <= b && b <= c then a <= c else true)

let affine_term_gen =
  QCheck.Gen.(
    let* c = int_range (-5) 5 in
    let* ci = int_range (-3) 3 in
    let* cj = int_range (-3) 3 in
    return (Term.make c [ (Term.Var "i", ci); (Term.Var "j", cj) ]))

let arb_term = QCheck.make ~print:Term.to_string affine_term_gen

let prop_term_add_commutative =
  QCheck.Test.make ~name:"term add commutative" ~count:200
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      Term.equal (Term.add a b) (Term.add b a))

let prop_term_add_associative =
  QCheck.Test.make ~name:"term add associative" ~count:200
    (QCheck.triple arb_term arb_term arb_term) (fun (a, b, c) ->
      Term.equal (Term.add (Term.add a b) c) (Term.add a (Term.add b c)))

let prop_term_sub_self =
  QCheck.Test.make ~name:"term sub self is zero" ~count:200 arb_term (fun a ->
      Term.equal Term.zero (Term.sub a a))

let prop_term_eval_homomorphic =
  QCheck.Test.make ~name:"eval is additive" ~count:200
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      let env = function "i" -> 2 | "j" -> -3 | _ -> raise Not_found in
      let interp _ _ = 0 in
      Term.eval ~env ~interp (Term.add a b)
      = Term.eval ~env ~interp a + Term.eval ~env ~interp b)

let arb_affine_rel =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "x -> %dx + %d" a b)
    QCheck.Gen.(
      let* a = int_range (-3) 3 in
      let* b = int_range (-10) 10 in
      return (a, b))

let rel_of_pair (a, b) =
  Rel.make ~in_vars:[ "x" ]
    ~out_tuple:[ Term.add (Term.scale a (Term.var "x")) (Term.const b) ]
    ()

let prop_compose_associative =
  QCheck.Test.make ~name:"compose associative (eval)" ~count:100
    (QCheck.triple arb_affine_rel arb_affine_rel arb_affine_rel)
    (fun (p1, p2, p3) ->
      let r1 = rel_of_pair p1 and r2 = rel_of_pair p2 and r3 = rel_of_pair p3 in
      let lhs = Rel.compose (Rel.compose r3 r2) r1 in
      let rhs = Rel.compose r3 (Rel.compose r2 r1) in
      List.for_all
        (fun x -> Rel.eval_fn lhs [ x ] = Rel.eval_fn rhs [ x ])
        [ -5; 0; 1; 7 ])

let prop_compose_matches_eval =
  QCheck.Test.make ~name:"compose agrees with sequential eval" ~count:100
    (QCheck.pair arb_affine_rel arb_affine_rel) (fun (p1, p2) ->
      let r1 = rel_of_pair p1 and r2 = rel_of_pair p2 in
      let c = Rel.compose r2 r1 in
      List.for_all
        (fun x -> Rel.eval_fn c [ x ] = Rel.eval_fn r2 (Rel.eval_fn r1 [ x ]))
        [ -3; 0; 2; 11 ])

(* Inverse of a random invertible affine map, evaluated: inverse
   composed with the relation is the identity. Maps x -> x + b (unit
   coefficient) are always invertible over the integers. *)
let prop_inverse_cancels =
  QCheck.Test.make ~name:"inverse . relation = identity (eval)" ~count:200
    (QCheck.int_range (-50) 50) (fun b ->
      let r =
        Rel.make ~in_vars:[ "x" ]
          ~out_tuple:[ Term.add (Term.var "x") (Term.const b) ]
          ()
      in
      let roundtrip = Rel.compose (Rel.inverse r) r in
      List.for_all
        (fun x -> Rel.eval_fn roundtrip [ x ] = [ x ])
        [ -7; 0; 3; 99 ])

(* Simplification never changes the evaluated meaning of a functional
   relation. *)
let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:200
    (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-10) 10))
    (fun (a, b) ->
      let t = Term.add (Term.scale a (Term.var "x")) (Term.const b) in
      let r = Rel.make ~in_vars:[ "x" ] ~out_tuple:[ t ] () in
      let s = Rel.simplify r in
      List.for_all (fun x -> Rel.eval_fn r [ x ] = Rel.eval_fn s [ x ]) [ -2; 0; 5 ])

(* Union is commutative under evaluation. *)
let prop_union_commutative_eval =
  QCheck.Test.make ~name:"union commutative (eval)" ~count:200
    (QCheck.pair (QCheck.int_range (-5) 5) (QCheck.int_range (-5) 5))
    (fun (b1, b2) ->
      let mk b =
        Rel.make ~in_vars:[ "x" ]
          ~out_tuple:[ Term.add (Term.var "x") (Term.const b) ]
          ()
      in
      let u1 = Rel.union (mk b1) (mk b2) in
      let u2 = Rel.union (mk b2) (mk b1) in
      List.for_all
        (fun x ->
          List.sort compare (Rel.eval u1 [ x ])
          = List.sort compare (Rel.eval u2 [ x ]))
        [ -1; 0; 4 ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "presburger"
    [
      ( "term",
        [
          Alcotest.test_case "normalization" `Quick test_term_normalization;
          Alcotest.test_case "scale" `Quick test_term_scale;
          Alcotest.test_case "subst nested ufs" `Quick test_term_subst;
          Alcotest.test_case "subst affine" `Quick test_term_subst_affine;
          Alcotest.test_case "eval" `Quick test_term_eval;
          Alcotest.test_case "as_var/as_ufs" `Quick test_term_as;
        ] );
      ( "constr",
        [
          Alcotest.test_case "truth" `Quick test_constr_truth;
          Alcotest.test_case "eval" `Quick test_constr_eval;
          Alcotest.test_case "normalize" `Quick test_constr_normalize;
        ] );
      ( "solve",
        [
          Alcotest.test_case "affine" `Quick test_solve_affine;
          Alcotest.test_case "ufs" `Quick test_solve_ufs;
          Alcotest.test_case "nested ufs" `Quick test_solve_nested_ufs;
          Alcotest.test_case "no inverse" `Quick test_solve_no_inverse;
        ] );
      ( "rel",
        [
          Alcotest.test_case "identity" `Quick test_rel_identity;
          Alcotest.test_case "compose functional" `Quick
            test_rel_compose_functional;
          Alcotest.test_case "compose affine" `Quick test_rel_compose_affine;
          Alcotest.test_case "compose union" `Quick test_rel_compose_union;
          Alcotest.test_case "inverse affine" `Quick test_rel_inverse_affine;
          Alcotest.test_case "inverse ufs" `Quick test_rel_inverse_ufs;
          Alcotest.test_case "inverse w/o env" `Quick test_rel_inverse_no_env;
          Alcotest.test_case "inverse multidim" `Quick test_rel_inverse_multidim;
          Alcotest.test_case "roundtrip inverse" `Quick
            test_rel_roundtrip_inverse;
          Alcotest.test_case "union arity mismatch" `Quick
            test_rel_union_arity_mismatch;
          Alcotest.test_case "eval constraints" `Quick test_rel_eval_constraints;
          Alcotest.test_case "ufs names" `Quick test_rel_ufs_names;
          Alcotest.test_case "paper 5.1 data mapping" `Quick
            test_paper_section5_data_mapping;
          Alcotest.test_case "paper 5.3 iter composition" `Quick
            test_paper_section5_iter_composition;
          Alcotest.test_case "paper dependence update" `Quick
            test_paper_dependence_update;
          Alcotest.test_case "domain" `Quick test_rel_domain;
          Alcotest.test_case "range" `Quick test_rel_range;
          Alcotest.test_case "restrict domain" `Quick test_rel_restrict_domain;
          Alcotest.test_case "image union" `Quick test_rel_image_union;
        ] );
      ( "set",
        [
          Alcotest.test_case "mem" `Quick test_set_mem;
          Alcotest.test_case "union mem" `Quick test_set_union_mem;
          Alcotest.test_case "enumerate" `Quick test_set_enumerate;
          Alcotest.test_case "apply" `Quick test_set_apply;
          Alcotest.test_case "intersect" `Quick test_set_intersect;
          Alcotest.test_case "unified iteration space" `Quick
            test_unified_iteration_space;
        ] );
      ( "lexord",
        [
          Alcotest.test_case "concrete" `Quick test_lexord_concrete;
          Alcotest.test_case "symbolic" `Quick test_lexord_symbolic;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "exists" `Quick test_parser_exists;
          Alcotest.test_case "chained comparisons" `Quick test_parser_chain;
          Alcotest.test_case "corners" `Quick test_parser_corners;
          Alcotest.test_case "term pp roundtrip" `Quick test_term_pp_roundtrip;
        ] );
      ( "env",
        [
          Alcotest.test_case "ufs_env" `Quick test_ufs_env;
          Alcotest.test_case "fresh" `Quick test_fresh_names;
        ] );
      ("prop:lexord", qsuite [ prop_lexord_total; prop_lexord_transitive ]);
      ( "prop:term",
        qsuite
          [
            prop_term_add_commutative;
            prop_term_add_associative;
            prop_term_sub_self;
            prop_term_eval_homomorphic;
          ] );
      ( "prop:rel",
        qsuite
          [
            prop_compose_associative;
            prop_compose_matches_eval;
            prop_inverse_cancels;
            prop_simplify_preserves_eval;
            prop_union_commutative_eval;
          ] );
    ]
