(* Smoke tests exercising the same top-level flows as the runnable
   examples (quickstart, composition DSL, Gauss-Seidel, parallelism,
   time tiling) at tiny scale, so the documented walkthroughs cannot
   rot silently. *)

let tiny_dataset () = Datagen.Generators.foil ~scale:512 ()

(* The quickstart flow: plan -> inspector -> legality -> miss
   comparison -> result equality. *)
let test_quickstart_flow () =
  (* Node data must exceed the 8KB L1 for reordering to matter. *)
  let kernel = Kernels.Irreg.of_dataset (Datagen.Generators.foil ~scale:96 ()) in
  let result = Compose.Inspector.run Compose.Plan.cpack_lexgroup kernel in
  Alcotest.(check bool) "legal" true (Compose.Legality.check result = Ok ());
  let misses (k : Kernels.Kernel.t) =
    let h = Cachesim.Machine.hierarchy Cachesim.Machine.pentium4 in
    let layout = Kernels.Kernel.layout k in
    k.Kernels.Kernel.run_traced ~steps:2 ~layout
      ~access:(Cachesim.Hierarchy.access h);
    Cachesim.Hierarchy.l1_misses h
  in
  Alcotest.(check bool) "CL reduces misses" true
    (misses result.Compose.Inspector.kernel < misses kernel)

(* The composition-DSL flow: notation in, paper formula out. *)
let test_dsl_flow () =
  let open Presburger in
  let env =
    Ufs_env.add_bijection "sigma_cp" ~inverse:"sigma_cp_inv" ~arity:1
      Ufs_env.empty
  in
  let m = Parser.relation "{[j] -> [left(j)]} union {[j] -> [right(j)]}" in
  let r = Parser.relation "{[m] -> [sigma_cp(m)]}" in
  let m' = Rel.compose ~env r m in
  Alcotest.(check bool) "paper formula" true
    (Rel.equal m'
       (Parser.relation
          "{[j] -> [sigma_cp(left(j))]} union {[j] -> [sigma_cp(right(j))]}"))

(* Formula evaluated against the concrete inspector output agrees. *)
let test_formula_matches_inspector () =
  let left = [| 0; 3; 2; 5; 1; 4 |] and right = [| 3; 2; 5; 1; 4; 0 |] in
  let access = Reorder.Access.of_pairs ~n_data:6 left right in
  let sigma = Reorder.Cpack.run access in
  let interp f args =
    match f, args with
    | "sigma_cp", [ m ] -> Reorder.Perm.forward sigma m
    | "left", [ j ] -> left.(j)
    | "right", [ j ] -> right.(j)
    | _ -> Alcotest.fail ("uninterpreted " ^ f)
  in
  let formula = Presburger.Parser.relation "{[j] -> [sigma_cp(left(j))]}" in
  for j = 0 to 5 do
    Alcotest.(check (list int))
      (Fmt.str "j=%d" j)
      [ Reorder.Perm.forward sigma left.(j) ]
      (Presburger.Rel.eval_fn ~interp formula [ j ])
  done

(* The Gauss-Seidel example flow at tiny scale. *)
let test_gs_flow () =
  let d = tiny_dataset () in
  let graph = Datagen.Dataset.to_graph d in
  let n = Irgraph.Csr.num_nodes graph in
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 13)) in
  let partition = Irgraph.Partition.gpart graph ~part_size:16 in
  let graph', f', _sigma, seed =
    Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition
  in
  let tiling = Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep:1 ~sweeps:3 in
  Alcotest.(check int) "no violations" 0
    (List.length (Kernels.Gauss_seidel.check_constraints graph' tiling));
  let plain = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_plain plain ~sweeps:6;
  let tiled = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_tiled_slabbed tiled tiling ~total_sweeps:6;
  Alcotest.(check bool) "bitwise" true
    (Array.for_all2 ( = ) plain.Kernels.Gauss_seidel.u
       tiled.Kernels.Gauss_seidel.u)

(* The parallel-tiles example flow. *)
let test_parallel_flow () =
  let kernel = Kernels.Irreg.of_dataset (tiny_dataset ()) in
  Alcotest.(check string) "reduction loop" "reduction"
    (Compose.Depcheck.verdict_name
       (Compose.Depcheck.check_kernel_interaction_loop kernel));
  let plan =
    Compose.Plan.with_fst ~tile_pack:false ~seed_part_size:16
      Compose.Plan.cpack_lexgroup
  in
  let result = Compose.Inspector.run plan kernel in
  let k = result.Compose.Inspector.kernel in
  let sched = Option.get result.Compose.Inspector.schedule in
  let tiles =
    Compose.Legality.tile_fns_of_schedule sched
      ~loop_sizes:k.Kernels.Kernel.loop_sizes
  in
  let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
  let par = Reorder.Tile_par.analyze ~chain ~tiles in
  Alcotest.(check bool) "speedup sane" true
    (Reorder.Tile_par.speedup par ~processors:4 >= 1.0)

(* The codegen flow produces the Figure 12 chain. *)
let test_codegen_flow () =
  let st =
    Compose.Symbolic.apply
      (Compose.Symbolic.create Compose.Symbolic.moldyn_program)
      Compose.Plan.cpack_lexgroup
  in
  let code =
    Compose.Codegen.full_report st ~program:Compose.Symbolic.moldyn_program
  in
  let contains sub =
    let re = Str.regexp_string sub in
    try
      ignore (Str.search_forward re code 0);
      true
    with Not_found -> false
  in
  Alcotest.(check bool) "figure 12" true
    (contains "sigma_cp[left[delta_lg_inv[j]]]"
    || contains "sigma_cp[left[j]]")

let () =
  Alcotest.run "examples"
    [
      ( "flows",
        [
          Alcotest.test_case "quickstart" `Quick test_quickstart_flow;
          Alcotest.test_case "composition dsl" `Quick test_dsl_flow;
          Alcotest.test_case "formula vs inspector" `Quick
            test_formula_matches_inspector;
          Alcotest.test_case "gauss-seidel" `Quick test_gs_flow;
          Alcotest.test_case "parallel tiles" `Quick test_parallel_flow;
          Alcotest.test_case "codegen" `Quick test_codegen_flow;
        ] );
    ]
