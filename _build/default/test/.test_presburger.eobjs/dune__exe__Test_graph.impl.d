test/test_graph.ml: Alcotest Array Csr Datagen Fmt Irgraph List Multilevel Partition Printf QCheck QCheck_alcotest Rcm
