test/test_cachesim.ml: Alcotest Cache Cachesim Hierarchy Layout List Machine QCheck QCheck_alcotest
