test/test_harness.ml: Alcotest Cachesim Compose Datagen Harness Kernels List Option
