test/test_presburger.ml: Alcotest Constr Fmt Fresh Gen Lexord List Parser Presburger Printf QCheck QCheck_alcotest Rel Set Solve String Term Ufs_env
