test/test_kernels.ml: Alcotest Array Cachesim Datagen Fmt Irgraph Kernels List Printf QCheck QCheck_alcotest Reorder
