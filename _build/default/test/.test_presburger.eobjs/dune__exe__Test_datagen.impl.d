test/test_datagen.ml: Alcotest Array Datagen Fmt Fun Irgraph List Reorder
