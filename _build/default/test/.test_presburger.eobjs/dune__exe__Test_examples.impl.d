test/test_examples.ml: Alcotest Array Cachesim Compose Datagen Fmt Irgraph Kernels List Option Parser Presburger Rel Reorder Str Ufs_env
