(* Tests for the cache simulator: hit/miss behavior against
   hand-computed traces, LRU eviction, associativity conflicts, machine
   models, and address layouts. *)

open Cachesim

let test_cold_miss_then_hit () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 32);
  Alcotest.(check bool) "next line miss" false (Cache.access c 64);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_lru_eviction () =
  (* 2 sets, 2-way, 64B lines: addresses 0, 256, 512 map to set 0. *)
  let c = Cache.create ~size_bytes:256 ~line_bytes:64 ~assoc:2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  ignore (Cache.access c 512);
  (* line 0 was LRU and must be gone; 256 and 512 resident. *)
  Alcotest.(check bool) "512 hit" true (Cache.access c 512);
  Alcotest.(check bool) "256 hit" true (Cache.access c 256);
  Alcotest.(check bool) "0 evicted" false (Cache.access c 0)

let test_lru_touch_refreshes () =
  let c = Cache.create ~size_bytes:256 ~line_bytes:64 ~assoc:2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  ignore (Cache.access c 0); (* refresh 0: now 256 is LRU *)
  ignore (Cache.access c 512);
  Alcotest.(check bool) "0 survived" true (Cache.access c 0);
  Alcotest.(check bool) "256 evicted" false (Cache.access c 256)

let test_direct_mapped_conflict () =
  let c = Cache.create ~size_bytes:128 ~line_bytes:64 ~assoc:1 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 128); (* same set, evicts 0 *)
  Alcotest.(check bool) "conflict evicts" false (Cache.access c 0)

let test_full_assoc () =
  let c = Cache.create ~size_bytes:256 ~line_bytes:64 ~assoc:4 in
  List.iter (fun a -> ignore (Cache.access c a)) [ 0; 64; 128; 192 ];
  Alcotest.(check int) "4 cold misses" 4 (Cache.misses c);
  List.iter
    (fun a -> Alcotest.(check bool) "resident" true (Cache.access c a))
    [ 0; 64; 128; 192 ]

let test_reset () =
  let c = Cache.create ~size_bytes:256 ~line_bytes:64 ~assoc:2 in
  ignore (Cache.access c 0);
  Cache.reset c;
  Alcotest.(check int) "counters zero" 0 (Cache.accesses c);
  Alcotest.(check bool) "cold again" false (Cache.access c 0);
  ignore (Cache.access c 0);
  Cache.reset_counters c;
  Alcotest.(check bool) "still warm" true (Cache.access c 0)

let test_miss_ratio () =
  let c = Cache.create ~size_bytes:256 ~line_bytes:64 ~assoc:2 in
  Alcotest.(check (float 0.0)) "empty ratio" 0.0 (Cache.miss_ratio c);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  Alcotest.(check (float 1e-9)) "half" 0.5 (Cache.miss_ratio c)

let test_create_validation () =
  Alcotest.check_raises "bad line" (Invalid_argument "Cache.create: line_bytes")
    (fun () -> ignore (Cache.create ~size_bytes:256 ~line_bytes:48 ~assoc:2))

let test_machines () =
  Alcotest.(check int) "power3 line" 128 Machine.power3.Machine.l1_line;
  Alcotest.(check int) "p4 size" 8192 Machine.pentium4.Machine.l1_size;
  Alcotest.(check bool) "by_name" true (Machine.by_name "power3" = Some Machine.power3);
  Alcotest.(check bool) "unknown" true (Machine.by_name "vax" = None);
  let c = Machine.cache Machine.pentium4 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  (* 1 miss + 2 accesses: cycles = 2*1 + 1*27. *)
  Alcotest.(check (float 1e-9)) "modeled cycles" 29.0
    (Machine.modeled_cycles Machine.pentium4 c)

let test_hierarchy_levels () =
  let l1 = Cache.create ~size_bytes:128 ~line_bytes:64 ~assoc:1 in
  let l2 = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:2 in
  let h =
    Hierarchy.create ~l1 ~l2 ~l1_hit_cycles:1.0 ~l2_hit_cycles:10.0
      ~mem_cycles:100.0
  in
  (* Cold: memory access, fills both levels. *)
  Hierarchy.access h 0;
  Alcotest.(check int) "memory" 1 (Hierarchy.mem_accesses h);
  (* Now an L1 hit. *)
  Hierarchy.access h 0;
  Alcotest.(check int) "still one memory access" 1 (Hierarchy.mem_accesses h);
  (* Evict line 0 from the 2-line direct-mapped L1 via a conflicting
     line; L2 still holds it -> L2 hit on return. *)
  Hierarchy.access h 128;
  Hierarchy.access h 0;
  Alcotest.(check int) "l2 hit" 1 (Hierarchy.l1_misses h - Hierarchy.mem_accesses h);
  Alcotest.(check int) "accesses" 4 (Hierarchy.accesses h);
  (* cycles = 1 L1 hit * 1 + 1 L2 hit * 10 + 2 memory * 100. *)
  Alcotest.(check (float 1e-9)) "cycles" 211.0 (Hierarchy.modeled_cycles h)

let test_hierarchy_reset () =
  let h = Machine.hierarchy Machine.pentium4 in
  Hierarchy.access h 0;
  Hierarchy.access h 0;
  Hierarchy.reset_counters h;
  Alcotest.(check int) "counters cleared" 0 (Hierarchy.accesses h);
  Hierarchy.access h 0;
  (* Contents kept: this is an L1 hit after reset_counters. *)
  Alcotest.(check int) "warm hit" 0 (Hierarchy.l1_misses h);
  Hierarchy.reset h;
  Hierarchy.access h 0;
  Alcotest.(check int) "cold after reset" 1 (Hierarchy.mem_accesses h)

let test_machine_contrast () =
  (* The P4 model must charge relatively more for a memory-bound
     stream than the Power3 model: that asymmetry drives Figures 6/7. *)
  let run machine =
    let h = Machine.hierarchy machine in
    (* Stream far beyond both caches, twice. *)
    for rep = 1 to 2 do
      ignore rep;
      for i = 0 to 99_999 do
        Hierarchy.access h (i * 64)
      done
    done;
    Hierarchy.modeled_cycles h /. float_of_int (Hierarchy.accesses h)
  in
  Alcotest.(check bool) "p4 pays more per access on streams" true
    (run Machine.pentium4 > 2.0 *. run Machine.power3)

let test_layout_separate () =
  let l = Layout.separate [ ("a", 10); ("b", 10) ] in
  Alcotest.(check int) "a base" 0 (Layout.address l "a" 0);
  Alcotest.(check int) "a stride" 8 (Layout.address l "a" 1 - Layout.address l "a" 0);
  (* b starts at the 128-aligned boundary after a's 80 bytes. *)
  Alcotest.(check int) "b base" 128 (Layout.address l "b" 0);
  Alcotest.check_raises "unknown" (Invalid_argument "Layout.field: unknown array c")
    (fun () -> ignore (Layout.address l "c" 0))

let test_layout_grouped () =
  let l = Layout.grouped ~groups:[ [ ("x", 4); ("y", 4) ]; [ ("w", 8) ] ] () in
  (* Interleaved: x0 y0 x1 y1 ... stride 16. *)
  Alcotest.(check int) "x0" 0 (Layout.address l "x" 0);
  Alcotest.(check int) "y0" 8 (Layout.address l "y" 0);
  Alcotest.(check int) "x1" 16 (Layout.address l "x" 1);
  Alcotest.(check int) "w stride" 8 (Layout.address l "w" 1 - Layout.address l "w" 0)

let test_layout_grouped_length_mismatch () =
  Alcotest.check_raises "lengths differ"
    (Invalid_argument "Layout.grouped: lengths differ") (fun () ->
      ignore (Layout.grouped ~groups:[ [ ("x", 4); ("y", 5) ] ] ()))

(* Grouped layout puts a node's fields on the same line: touching all
   fields of one node costs at most ceil(72/64)+... lines. *)
let test_grouping_locality () =
  let names = [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i" ] in
  let grouped = Layout.grouped ~groups:[ List.map (fun n -> (n, 100)) names ] () in
  let separate = Layout.separate (List.map (fun n -> (n, 100)) names) in
  let misses layout =
    let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:4 in
    (* Touch all 9 fields of nodes 0 and 50, far apart. *)
    List.iter
      (fun node ->
        List.iter (fun n -> ignore (Cache.access c (Layout.address layout n node))) names)
      [ 0; 50 ];
    Cache.misses c
  in
  (* 72 B per node grouped: 2 lines per node = 4 misses total;
     separate: 9 arrays x 2 nodes = up to 18 lines. *)
  Alcotest.(check bool) "grouped fewer misses" true
    (misses grouped < misses separate)

(* Property: miss count never exceeds accesses; resident set bounded. *)
let prop_misses_bounded =
  QCheck.Test.make ~name:"misses <= accesses" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 10000))
    (fun addrs ->
      let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:2 in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.misses c <= Cache.accesses c
      && Cache.accesses c = List.length addrs)

(* Property: repeating a short footprint that fits in cache yields no
   further misses after the first pass. *)
let prop_fitting_footprint_hits =
  QCheck.Test.make ~name:"fitting footprint only cold misses" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 7))
    (fun lines ->
      let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:8 in
      let addrs = List.map (fun l -> l * 64) lines in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      let cold = Cache.misses c in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.misses c = cold)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "lru refresh" `Quick test_lru_touch_refreshes;
          Alcotest.test_case "direct-mapped conflict" `Quick
            test_direct_mapped_conflict;
          Alcotest.test_case "full associativity" `Quick test_full_assoc;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "miss ratio" `Quick test_miss_ratio;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "machine",
        [
          Alcotest.test_case "models and cycles" `Quick test_machines;
          Alcotest.test_case "hierarchy levels" `Quick test_hierarchy_levels;
          Alcotest.test_case "hierarchy reset" `Quick test_hierarchy_reset;
          Alcotest.test_case "machine contrast" `Quick test_machine_contrast;
        ] );
      ( "layout",
        [
          Alcotest.test_case "separate" `Quick test_layout_separate;
          Alcotest.test_case "grouped" `Quick test_layout_grouped;
          Alcotest.test_case "grouped mismatch" `Quick
            test_layout_grouped_length_mismatch;
          Alcotest.test_case "grouping locality" `Quick test_grouping_locality;
        ] );
      ("prop", qsuite [ prop_misses_bounded; prop_fitting_footprint_hits ]);
    ]
