(* Tests for the dataset generators: determinism, statistics close to
   the paper's table, scrambling, and the RNG. *)

let test_rng_deterministic () =
  let r1 = Datagen.Rng.create 42 in
  let r2 = Datagen.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Datagen.Rng.next r1) (Datagen.Rng.next r2)
  done

let test_rng_bounds () =
  let r = Datagen.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Datagen.Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let f = Datagen.Rng.float r in
    Alcotest.(check bool) "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_rng_permutation () =
  let r = Datagen.Rng.create 3 in
  let p = Datagen.Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_dataset_determinism () =
  let d1 = Datagen.Generators.mol1 ~scale:64 () in
  let d2 = Datagen.Generators.mol1 ~scale:64 () in
  Alcotest.(check (array int)) "same left" d1.Datagen.Dataset.left
    d2.Datagen.Dataset.left;
  Alcotest.(check (array int)) "same right" d1.Datagen.Dataset.right
    d2.Datagen.Dataset.right

let check_degree name d expected tolerance =
  let deg = Datagen.Dataset.avg_degree d in
  Alcotest.(check bool)
    (Fmt.str "%s degree %.1f within %.1f of %.1f" name deg tolerance expected)
    true
    (abs_float (deg -. expected) <= tolerance)

let test_mol_statistics () =
  (* Target degree 18 (boundary effects lower it at small scale). *)
  let d = Datagen.Generators.mol1 ~scale:32 () in
  Alcotest.(check bool) "nodes near request" true
    (d.Datagen.Dataset.n_nodes >= 131072 / 32);
  check_degree "mol1" d 18.0 3.0

let test_mesh_statistics () =
  let foil = Datagen.Generators.foil ~scale:32 () in
  check_degree "foil" foil 14.85 2.5;
  let auto = Datagen.Generators.auto ~scale:64 () in
  check_degree "auto" auto 14.85 3.0

let test_edges_valid () =
  List.iter
    (fun (d : Datagen.Dataset.t) ->
      let n = d.Datagen.Dataset.n_nodes in
      Array.iter
        (fun v -> Alcotest.(check bool) "left in range" true (v >= 0 && v < n))
        d.Datagen.Dataset.left;
      Array.iter
        (fun v -> Alcotest.(check bool) "right in range" true (v >= 0 && v < n))
        d.Datagen.Dataset.right;
      Array.iteri
        (fun j l ->
          Alcotest.(check bool) "no self loop" true (l <> d.Datagen.Dataset.right.(j)))
        d.Datagen.Dataset.left)
    (Datagen.Generators.all ~scale:128 ())

let test_scramble_destroys_locality () =
  (* The generator's natural numbering is spatially coherent; after
     scrambling, the average |left - right| gap must be large. *)
  let d = Datagen.Generators.mol1 ~scale:64 () in
  let n = float_of_int d.Datagen.Dataset.n_nodes in
  let avg_gap =
    let total = ref 0.0 in
    Array.iteri
      (fun j l ->
        total := !total +. abs_float (float_of_int (l - d.Datagen.Dataset.right.(j))))
      d.Datagen.Dataset.left;
    !total /. float_of_int (Datagen.Dataset.n_interactions d)
  in
  (* Random endpoints would average ~n/3. *)
  Alcotest.(check bool) "scrambled gap large" true (avg_gap > n /. 8.0)

let test_scramble_preserves_structure () =
  let d = Datagen.Generators.foil ~scale:64 () in
  let d' = Datagen.Dataset.scramble ~seed:99 d in
  Alcotest.(check int) "same node count" d.Datagen.Dataset.n_nodes
    d'.Datagen.Dataset.n_nodes;
  Alcotest.(check int) "same edge count"
    (Datagen.Dataset.n_interactions d)
    (Datagen.Dataset.n_interactions d');
  (* Degree multiset is preserved under relabeling. *)
  let degrees (x : Datagen.Dataset.t) =
    let deg = Array.make x.Datagen.Dataset.n_nodes 0 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) x.Datagen.Dataset.left;
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) x.Datagen.Dataset.right;
    Array.sort compare deg;
    deg
  in
  Alcotest.(check (array int)) "degree multiset" (degrees d) (degrees d')

let test_access_and_graph () =
  let d = Datagen.Generators.foil ~scale:128 () in
  let a = Datagen.Dataset.access d in
  Alcotest.(check int) "access iters"
    (Datagen.Dataset.n_interactions d)
    (Reorder.Access.n_iter a);
  let g = Datagen.Dataset.to_graph d in
  Alcotest.(check int) "graph nodes" d.Datagen.Dataset.n_nodes
    (Irgraph.Csr.num_nodes g)

let test_by_name () =
  Alcotest.(check bool) "mol2" true
    (Datagen.Generators.by_name ~scale:128 "mol2" <> None);
  Alcotest.(check bool) "unknown" true
    (Datagen.Generators.by_name ~scale:128 "qcd" = None)

let test_paper_sizes_recorded () =
  Alcotest.(check int) "four datasets" 4
    (List.length Datagen.Generators.paper_sizes);
  Alcotest.(check (option (pair int int)))
    "mol1 sizes"
    (Some (131072, 1179648))
    (List.assoc_opt "mol1" Datagen.Generators.paper_sizes)

let () =
  Alcotest.run "datagen"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "deterministic" `Quick test_dataset_determinism;
          Alcotest.test_case "mol statistics" `Quick test_mol_statistics;
          Alcotest.test_case "mesh statistics" `Quick test_mesh_statistics;
          Alcotest.test_case "edges valid" `Quick test_edges_valid;
          Alcotest.test_case "scramble destroys locality" `Quick
            test_scramble_destroys_locality;
          Alcotest.test_case "scramble preserves structure" `Quick
            test_scramble_preserves_structure;
          Alcotest.test_case "access and graph" `Quick test_access_and_graph;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "paper sizes" `Quick test_paper_sizes_recorded;
        ] );
    ]
