(* Integration tests for the composition framework: plan validation,
   symbolic effect computation (against the paper's Section 5
   formulas), the composed inspector under both remap strategies, and
   end-to-end executor correctness for every standard composition. *)

open Compose

let rel = Alcotest.testable Presburger.Rel.pp Presburger.Rel.equal

(* ------------------------------------------------------------------ *)
(* Plan validation *)

let fst_t =
  Transform.Sparse_tile
    { growth = Transform.Full; seed = Transform.Seed_block { part_size = 8 } }

let test_validate_ok () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Plan.name p ^ " valid")
        true
        (Plan.validate p = Ok ()))
    (Plan.standard_suite ~gpart_size:16 ~seed_part_size:16)

let test_validate_rejects () =
  let bad name transforms expected =
    let p = Plan.make ~name transforms in
    match Plan.validate p with
    | Error msg ->
      Alcotest.(check string) (name ^ " message") expected msg
    | Ok () -> Alcotest.fail (name ^ " unexpectedly valid")
  in
  bad "iter after fst"
    [ fst_t; Transform.Iter_reorder Transform.Lexgroup ]
    "plan: dependence-free iteration reordering after sparse tiling";
  bad "tilepack without fst"
    [ Transform.Data_reorder Transform.Tile_pack ]
    "plan: tilePack without a preceding sparse tiling";
  bad "double fst" [ fst_t; fst_t ] "plan: multiple sparse tilings"

let test_n_data_reorders () =
  Alcotest.(check int) "CLCL has 2" 2
    (Plan.n_data_reorders Plan.cpack_lexgroup_twice);
  Alcotest.(check int) "CLCL+FST has 3" 3
    (Plan.n_data_reorders
       (Plan.with_fst ~seed_part_size:8 Plan.cpack_lexgroup_twice));
  Alcotest.(check bool) "FST detection" true
    (Plan.has_sparse_tiling (Plan.with_fst ~seed_part_size:8 Plan.cpack));
  Alcotest.(check bool) "no FST" false (Plan.has_sparse_tiling Plan.cpack)

(* ------------------------------------------------------------------ *)
(* Symbolic: the Section 5 formulas *)

let test_symbolic_cpack_data_mapping () =
  (* After CPACK, the j-loop part of M is sigma_cp(left(j)) etc., and
     identity-mapped loops collapse to the identity (Section 5.1). *)
  let st =
    Symbolic.apply (Symbolic.create Symbolic.moldyn_program) Plan.cpack
  in
  let expected =
    Presburger.Parser.relation
      "{[s,p,i,q] -> [i] : p = 1} union {[s,p,i,q] -> [sigma_cp(left(i))] : p \
       = 2} union {[s,p,i,q] -> [sigma_cp(right(i))] : p = 2} union {[s,p,i,q] \
       -> [i] : p = 3}"
  in
  Alcotest.check rel "M after cpack" expected (Symbolic.data_map st)

let test_symbolic_cl_data_mapping () =
  (* Section 5.2: M_{I1->x1} j part = sigma_cp(left(delta_lg_inv(j))). *)
  let st =
    Symbolic.apply (Symbolic.create Symbolic.moldyn_program) Plan.cpack_lexgroup
  in
  let expected =
    Presburger.Parser.relation
      "{[s,p,j,q] -> [j] : p = 1} union {[s,p,j,q] -> \
       [sigma_cp(left(delta_lg_inv(j)))] : p = 2} union {[s,p,j,q] -> \
       [sigma_cp(right(delta_lg_inv(j)))] : p = 2} union {[s,p,j,q] -> [j] : \
       p = 3}"
  in
  Alcotest.check rel "M after CL" expected (Symbolic.data_map st)

let test_symbolic_clcl_composed_r () =
  (* Section 5.3: R_{x0->x2} = sigma_cp2 . sigma_cp. *)
  let st =
    Symbolic.apply
      (Symbolic.create Symbolic.moldyn_program)
      Plan.cpack_lexgroup_twice
  in
  Alcotest.check rel "composed R"
    (Presburger.Parser.relation "{[m] -> [sigma_cp2(sigma_cp(m))]}")
    (Symbolic.r_total st)

let test_symbolic_clcl_composed_t_jloop () =
  (* T_{I0->I2} on the j loop: j2 = delta_lg2(delta_lg(j)). *)
  let st =
    Symbolic.apply
      (Symbolic.create Symbolic.moldyn_program)
      Plan.cpack_lexgroup_twice
  in
  let t = Symbolic.t_total st in
  Alcotest.check rel "composed T"
    (Presburger.Parser.relation
       "{[s,p,i,q] -> [s, 1, sigma_cp2(sigma_cp(i)), q] : p = 1} union \
        {[s,p,i,q] -> [s, 2, delta_lg2(delta_lg(i)), q] : p = 2} union \
        {[s,p,i,q] -> [s, 3, sigma_cp2(sigma_cp(i)), q] : p = 3}")
    t

let test_symbolic_fst_adds_tile_dim () =
  let plan = Plan.with_fst ~tile_pack:false ~seed_part_size:8 Plan.cpack_lexgroup in
  let st = Symbolic.apply (Symbolic.create Symbolic.moldyn_program) plan in
  Alcotest.(check bool) "tiled" true (Symbolic.is_tiled st);
  Alcotest.(check int) "5-dim space" 5
    (Presburger.Rel.out_arity (Symbolic.t_total st))

let test_symbolic_tilepack_composed_r () =
  (* Full Section 5 composition: R = sigma_tp . sigma_cp2 . sigma_cp. *)
  let plan = Plan.with_fst ~seed_part_size:8 Plan.cpack_lexgroup_twice in
  let st = Symbolic.apply (Symbolic.create Symbolic.moldyn_program) plan in
  Alcotest.check rel "R with tilePack"
    (Presburger.Parser.relation
       "{[m] -> [sigma_tp(sigma_cp2(sigma_cp(m)))]}")
    (Symbolic.r_total st)

let test_symbolic_fresh_names () =
  let plan = Plan.cpack_lexgroup_twice in
  let st = Symbolic.apply (Symbolic.create Symbolic.moldyn_program) plan in
  let names = List.map (fun s -> s.Symbolic.fn_name) (Symbolic.steps st) in
  Alcotest.(check (list string)) "numbered instances"
    [ "sigma_cp"; "delta_lg"; "sigma_cp2"; "delta_lg2" ]
    names

let test_symbolic_rejects_nonreduction () =
  let program =
    {
      Symbolic.moldyn_program with
      Symbolic.loops =
        List.map
          (fun (l : Symbolic.loop_desc) ->
            { l with Symbolic.reduction_only = false })
          Symbolic.moldyn_program.Symbolic.loops;
    }
  in
  match Symbolic.apply (Symbolic.create program) Plan.cpack_lexgroup with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions illegality" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected legality rejection"

let test_symbolic_dependence_update () =
  (* After CL, the target side of d24+d34 must read
     sigma_cp(left(delta_lg_inv(...))). *)
  let st =
    Symbolic.apply (Symbolic.create Symbolic.moldyn_program) Plan.cpack_lexgroup
  in
  let d = List.assoc "d24+d34" (Symbolic.dependences st) in
  let printed = Presburger.Rel.to_string d in
  let contains sub =
    let re = Str.regexp_string sub in
    (try ignore (Str.search_forward re printed 0); true with Not_found -> false)
  in
  Alcotest.(check bool) "target reordered" true
    (contains "sigma_cp(left(delta_lg_inv(");
  Alcotest.(check bool) "all programs defined" true
    (List.for_all
       (fun n -> Symbolic.program_by_name n <> None)
       [ "moldyn"; "nbf"; "irreg" ])

let test_kernel name =
  let scale = 512 in
  let d =
    match name with
    | "moldyn" -> Datagen.Generators.mol1 ~scale ()
    | _ -> Datagen.Generators.foil ~scale ()
  in
  (Option.get (Kernels.by_name name)) d

(* ------------------------------------------------------------------ *)
(* Run-time dependence classification *)

let test_depcheck_independent () =
  (* Disjoint iterations: each touches its own location. *)
  let reads = Reorder.Access.of_single ~n_data:8 [| 0; 1; 2; 3 |] in
  let updates = Reorder.Access.of_single ~n_data:8 [| 4; 5; 6; 7 |] in
  Alcotest.(check string) "independent" "independent"
    (Depcheck.verdict_name (Depcheck.classify ~reads ~updates))

let test_depcheck_reduction () =
  (* Two iterations update the same location but nobody reads it. *)
  let reads = Reorder.Access.of_single ~n_data:4 [| 0; 1 |] in
  let updates = Reorder.Access.of_single ~n_data:4 [| 3; 3 |] in
  Alcotest.(check string) "reduction" "reduction"
    (Depcheck.verdict_name (Depcheck.classify ~reads ~updates))

let test_depcheck_serialized () =
  (* Iteration 1 reads what iteration 0 updates: flow dependence. *)
  let reads = Reorder.Access.of_single ~n_data:4 [| 2; 0 |] in
  let updates = Reorder.Access.of_single ~n_data:4 [| 0; 1 |] in
  match Depcheck.classify ~reads ~updates with
  | Depcheck.Serialized preds ->
    Alcotest.(check (array int)) "1 depends on 0" [| 0 |]
      (Reorder.Access.touches preds 1);
    Alcotest.(check (array int)) "0 depends on nothing" [||]
      (Reorder.Access.touches preds 0);
    (* The predecessor map feeds wavefront scheduling. *)
    let w = Reorder.Wavefront.run preds in
    Alcotest.(check int) "two levels" 2 w.Reorder.Wavefront.n_levels
  | v -> Alcotest.fail ("expected serialized, got " ^ Depcheck.verdict_name v)

let test_depcheck_kernels_are_reductions () =
  List.iter
    (fun bench ->
      let kernel = test_kernel bench in
      Alcotest.(check string)
        (bench ^ " interaction loop")
        "reduction"
        (Depcheck.verdict_name
           (Depcheck.check_kernel_interaction_loop kernel)))
    [ "irreg"; "nbf"; "moldyn" ]

(* ------------------------------------------------------------------ *)
(* Codegen: the Figure 10-15 pseudo-code *)

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let test_codegen_subscripts () =
  let t =
    Presburger.Parser.term "sigma_cp(left(delta_lg_inv(j)))"
  in
  Alcotest.(check string) "chain" "sigma_cp[left[delta_lg_inv[j]]]"
    (Codegen.subscript t)

let test_codegen_second_cpack () =
  (* The specialized second CPACK inspector must traverse the updated
     data mapping — Figure 12's sigma_cp[left[delta_lg_inv[j]]]. *)
  let st =
    Symbolic.apply (Symbolic.create Symbolic.moldyn_program) Plan.cpack_lexgroup
  in
  let code =
    Codegen.cpack_inspector ~instance:"sigma_cp2"
      ~program:Symbolic.moldyn_program (Symbolic.data_map st)
  in
  Alcotest.(check bool) "figure 12 subscript chain" true
    (contains code "sigma_cp[left[delta_lg_inv[j]]]");
  Alcotest.(check bool) "builds the inverse array" true
    (contains code "sigma_cp2_inv[count]")

let test_codegen_tiled_executor () =
  let plan = Plan.with_fst ~seed_part_size:8 Plan.cpack_lexgroup in
  let st = Symbolic.apply (Symbolic.create Symbolic.moldyn_program) plan in
  let code = Codegen.executor st ~program:Symbolic.moldyn_program in
  Alcotest.(check bool) "tiles outermost" true (contains code "do t = 1 to num_tiles");
  Alcotest.(check bool) "sched loops" true (contains code "in sched(t, 2)");
  Alcotest.(check bool) "adjusted index array" true (contains code "left'[")

let test_codegen_plain_executor () =
  let st =
    Symbolic.apply (Symbolic.create Symbolic.irreg_program) Plan.cpack_lexgroup
  in
  let code = Codegen.executor st ~program:Symbolic.irreg_program in
  Alcotest.(check bool) "no tiles" false (contains code "num_tiles");
  Alcotest.(check bool) "plain bounds" true (contains code "= 1 to n_inter")

let test_codegen_full_report () =
  let plan = Plan.with_fst ~seed_part_size:8 Plan.cpack_lexgroup_twice in
  let st = Symbolic.apply (Symbolic.create Symbolic.moldyn_program) plan in
  let code = Codegen.full_report st ~program:Symbolic.moldyn_program in
  Alcotest.(check bool) "composed remap" true
    (contains code "sigma_tp(sigma_cp2(sigma_cp(m)))");
  Alcotest.(check bool) "tilepack traverses full chain" true
    (contains code "sigma_cp2[sigma_cp[left[delta_lg_inv[delta_lg2_inv[j]]]]]")

(* ------------------------------------------------------------------ *)
(* Inspector: end-to-end correctness on every standard composition *)

let reference (k : Kernels.Kernel.t) ~steps =
  let k = k.Kernels.Kernel.copy () in
  k.Kernels.Kernel.run ~steps;
  k.Kernels.Kernel.snapshot ()

let run_result (r : Inspector.result) ~steps =
  let k = r.Inspector.kernel in
  (match r.Inspector.schedule with
  | None -> k.Kernels.Kernel.run ~steps
  | Some sched -> k.Kernels.Kernel.run_tiled sched ~steps);
  Kernels.Kernel.unpermute_snapshot r.Inspector.sigma_total
    (k.Kernels.Kernel.snapshot ())

let suite_plans kernel =
  Plan.standard_suite
    ~gpart_size:(max 16 (Kernels.Kernel.bytes_per_node kernel))
    ~seed_part_size:24

let test_all_compositions_correct () =
  List.iter
    (fun bench ->
      let kernel = test_kernel bench in
      let expected = reference kernel ~steps:3 in
      List.iter
        (fun plan ->
          let r = Inspector.run plan kernel in
          (match Legality.check r with
          | Ok () -> ()
          | Error m -> Alcotest.fail (bench ^ "/" ^ Plan.name plan ^ ": " ^ m));
          let got = run_result r ~steps:3 in
          Alcotest.(check bool)
            (Fmt.str "%s/%s matches original" bench (Plan.name plan))
            true
            (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected got))
        (suite_plans kernel))
    [ "irreg"; "nbf"; "moldyn" ]

(* Remap_each and Remap_once must produce identical reorderings. *)
let test_strategies_agree () =
  List.iter
    (fun bench ->
      let kernel = test_kernel bench in
      List.iter
        (fun plan ->
          let r1 = Inspector.run ~strategy:Inspector.Remap_each plan kernel in
          let r2 = Inspector.run ~strategy:Inspector.Remap_once plan kernel in
          Alcotest.(check bool)
            (Fmt.str "%s/%s sigma agrees" bench (Plan.name plan))
            true
            (Reorder.Perm.equal r1.Inspector.sigma_total r2.Inspector.sigma_total);
          Alcotest.(check bool)
            (Fmt.str "%s/%s delta agrees" bench (Plan.name plan))
            true
            (Reorder.Perm.equal r1.Inspector.delta_total r2.Inspector.delta_total);
          let snap r =
            List.map snd (r.Inspector.kernel.Kernels.Kernel.snapshot ())
          in
          List.iter2
            (fun a b ->
              Alcotest.(check bool) "arrays identical" true
                (Array.for_all2 (fun (x : float) y -> x = y) a b))
            (snap r1) (snap r2))
        (suite_plans kernel))
    [ "irreg"; "moldyn" ]

let test_remap_counts () =
  let kernel = test_kernel "moldyn" in
  let plan = Plan.with_fst ~seed_part_size:24 Plan.cpack_lexgroup_twice in
  let each = Inspector.run ~strategy:Inspector.Remap_each plan kernel in
  let once = Inspector.run ~strategy:Inspector.Remap_once plan kernel in
  (* CLCL+FST+tilePack has three data reorderings. *)
  Alcotest.(check int) "remap-each remaps 3x" 3 each.Inspector.n_data_remaps;
  Alcotest.(check int) "remap-once remaps 1x" 1 once.Inspector.n_data_remaps

let test_symmetric_sharing_agrees () =
  let kernel = test_kernel "moldyn" in
  let plan = Plan.with_fst ~seed_part_size:24 Plan.cpack_lexgroup in
  let shared = Inspector.run ~share_symmetric_deps:true plan kernel in
  let unshared = Inspector.run ~share_symmetric_deps:false plan kernel in
  match shared.Inspector.schedule, unshared.Inspector.schedule with
  | Some s1, Some s2 ->
    Alcotest.(check int) "same tiles" (Reorder.Schedule.n_tiles s1)
      (Reorder.Schedule.n_tiles s2);
    for l = 0 to Reorder.Schedule.n_loops s1 - 1 do
      Alcotest.(check (array int))
        (Fmt.str "loop %d order" l)
        (Reorder.Schedule.loop_order s1 l)
        (Reorder.Schedule.loop_order s2 l)
    done
  | _ -> Alcotest.fail "expected schedules"

let test_base_plan_is_noop () =
  let kernel = test_kernel "irreg" in
  let r = Inspector.run Plan.base kernel in
  Alcotest.(check bool) "sigma id" true
    (Reorder.Perm.is_id r.Inspector.sigma_total);
  Alcotest.(check bool) "delta id" true
    (Reorder.Perm.is_id r.Inspector.delta_total);
  Alcotest.(check int) "no remaps" 0 r.Inspector.n_data_remaps;
  Alcotest.(check bool) "no schedule" true (r.Inspector.schedule = None)

let test_cache_block_plan () =
  let kernel = test_kernel "moldyn" in
  let plan = Plan.with_cache_block ~seed_part_size:32 Plan.cpack_lexgroup in
  let r = Inspector.run plan kernel in
  (match Legality.check r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let expected = reference kernel ~steps:2 in
  let got = run_result r ~steps:2 in
  Alcotest.(check bool) "cache block correct" true
    (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected got)

(* Bucket tiling and lexSort also compose and stay correct. *)
let test_other_iter_reorders_correct () =
  let kernel = test_kernel "nbf" in
  let expected = reference kernel ~steps:2 in
  List.iter
    (fun (name, alg) ->
      let plan =
        Plan.make ~name
          [ Transform.Data_reorder Transform.Cpack; Transform.Iter_reorder alg ]
      in
      let r = Inspector.run plan kernel in
      (match Legality.check r with Ok () -> () | Error m -> Alcotest.fail m);
      let got = run_result r ~steps:2 in
      Alcotest.(check bool) (name ^ " correct") true
        (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected got))
    [
      ("C+lexsort", Transform.Lexsort);
      ("C+bucket", Transform.Bucket_tile { bucket_size = 16 });
    ]

let test_multilevel_plan_correct () =
  let kernel = test_kernel "irreg" in
  let plan =
    Plan.make ~name:"ML+L"
      [
        Transform.Data_reorder (Transform.Multilevel { part_size = 32 });
        Transform.Iter_reorder Transform.Lexgroup;
      ]
  in
  let r = Inspector.run plan kernel in
  (match Legality.check r with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check (list string)) "fn names" [ "sigma_ml"; "delta_lg" ]
    (List.map fst r.Inspector.reordering_fns);
  let expected = reference kernel ~steps:2 in
  let got = run_result r ~steps:2 in
  Alcotest.(check bool) "multilevel plan correct" true
    (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected got)

let test_gpart_seeded_fst () =
  let kernel = test_kernel "irreg" in
  let plan =
    Plan.make ~name:"CL+FSTgp"
      [
        Transform.Data_reorder Transform.Cpack;
        Transform.Iter_reorder Transform.Lexgroup;
        Transform.Sparse_tile
          {
            growth = Transform.Full;
            seed = Transform.Seed_gpart { part_size = 32 };
          };
        Transform.Data_reorder Transform.Tile_pack;
      ]
  in
  let r = Inspector.run plan kernel in
  (match Legality.check r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let expected = reference kernel ~steps:2 in
  let got = run_result r ~steps:2 in
  Alcotest.(check bool) "gpart-seeded FST correct" true
    (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected got)

(* The compile-time composition formulas, evaluated with the run-time
   reordering functions as the UFS interpretation, must equal the
   inspector's composed permutations — the framework's central
   consistency property. *)
let test_symbolic_agrees_with_inspector () =
  let kernel = test_kernel "moldyn" in
  let plans =
    [
      Plan.cpack;
      Plan.cpack_lexgroup;
      Plan.cpack_lexgroup_twice;
      Plan.gpart_lexgroup ~part_size:16;
    ]
  in
  List.iter
    (fun plan ->
      let r = Inspector.run plan kernel in
      let st = Symbolic.apply (Symbolic.create Symbolic.moldyn_program) plan in
      let lookup f =
        match List.assoc_opt f r.Inspector.reordering_fns with
        | Some p -> Some p
        | None ->
          let len = String.length f in
          if len > 4 && String.sub f (len - 4) 4 = "_inv" then
            Option.map Reorder.Perm.invert
              (List.assoc_opt (String.sub f 0 (len - 4))
                 r.Inspector.reordering_fns)
          else None
      in
      let interp f args =
        match lookup f, args with
        | Some p, [ x ] -> Reorder.Perm.forward p x
        | _ -> Alcotest.fail ("no interpretation for " ^ f)
      in
      (* R formula = composed data permutation. *)
      for m = 0 to min 40 (kernel.Kernels.Kernel.n_nodes - 1) do
        Alcotest.(check (list int))
          (Fmt.str "%s: R(%d)" (Plan.name plan) m)
          [ Reorder.Perm.forward r.Inspector.sigma_total m ]
          (Presburger.Rel.eval_fn ~interp (Symbolic.r_total st) [ m ])
      done;
      (* T formula on the interaction loop = composed delta; on the
         identity loops = composed sigma. *)
      let t = Symbolic.t_total st in
      for j = 0 to min 40 (kernel.Kernels.Kernel.n_inter - 1) do
        Alcotest.(check (list (list int)))
          (Fmt.str "%s: T(j=%d)" (Plan.name plan) j)
          [ [ 1; 2; Reorder.Perm.forward r.Inspector.delta_total j; 1 ] ]
          (Presburger.Rel.eval ~interp t [ 1; 2; j; 1 ])
      done;
      for i = 0 to min 40 (kernel.Kernels.Kernel.n_nodes - 1) do
        Alcotest.(check (list (list int)))
          (Fmt.str "%s: T(i=%d)" (Plan.name plan) i)
          [ [ 1; 1; Reorder.Perm.forward r.Inspector.sigma_total i; 1 ] ]
          (Presburger.Rel.eval ~interp t [ 1; 1; i; 1 ])
      done)
    plans

(* ------------------------------------------------------------------ *)
(* Time-step sparse tiling (across the outer loop) *)

let test_timetile_correct () =
  List.iter
    (fun bench ->
      let kernel = test_kernel bench in
      let expected = reference kernel ~steps:6 in
      let k = kernel.Kernels.Kernel.copy () in
      let tt = Timetile.tile k ~depth:3 ~seed_part_size:16 in
      Timetile.run k tt ~total_steps:6;
      Alcotest.(check bool)
        (bench ^ " time-tiled matches plain")
        true
        (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected
           (k.Kernels.Kernel.snapshot ())))
    [ "irreg"; "nbf"; "moldyn" ]

let test_timetile_after_reordering () =
  (* The usual pipeline first, then time-step tiling of the result. *)
  let kernel = test_kernel "moldyn" in
  let expected = reference kernel ~steps:4 in
  let r = Inspector.run Plan.cpack_lexgroup kernel in
  let k = r.Inspector.kernel in
  let tt = Timetile.tile k ~depth:2 ~seed_part_size:16 in
  Timetile.run k tt ~total_steps:4;
  let got =
    Kernels.Kernel.unpermute_snapshot r.Inspector.sigma_total
      (k.Kernels.Kernel.snapshot ())
  in
  Alcotest.(check bool) "CL then time-tiled matches" true
    (Kernels.Kernel.snapshots_close ~rtol:1e-9 expected got)

let test_timetile_chain_shape () =
  let kernel = test_kernel "irreg" in
  let chain = Timetile.unrolled_chain kernel ~depth:3 in
  Alcotest.(check int) "6 loops" 6 (Array.length chain.Reorder.Sparse_tile.loop_sizes);
  Alcotest.(check int) "5 conns" 5 (Array.length chain.Reorder.Sparse_tile.conn);
  Alcotest.(check int) "sizes repeat" chain.Reorder.Sparse_tile.loop_sizes.(0)
    chain.Reorder.Sparse_tile.loop_sizes.(2)

let test_timetile_trace_conserved () =
  (* Time-tiled execution reorders references but neither adds nor
     drops any: total traced accesses over the same number of steps
     must match the plain executor's. *)
  let kernel = test_kernel "irreg" in
  let layout = Kernels.Kernel.layout kernel in
  let count run =
    let c = Cachesim.Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:2 in
    run ~access:(fun a -> ignore (Cachesim.Cache.access c a));
    Cachesim.Cache.accesses c
  in
  let plain =
    count (fun ~access -> kernel.Kernels.Kernel.run_traced ~steps:4 ~layout ~access)
  in
  let tt = Timetile.tile kernel ~depth:2 ~seed_part_size:16 in
  let tiled =
    count (fun ~access ->
        Timetile.run_traced kernel tt ~total_steps:4 ~layout ~access)
  in
  Alcotest.(check int) "same reference count" plain tiled

let test_timetile_rejects_bad_steps () =
  let kernel = test_kernel "irreg" in
  let tt = Timetile.tile kernel ~depth:2 ~seed_part_size:16 in
  Alcotest.check_raises "non-multiple"
    (Invalid_argument "Timetile.run: 3 steps not a multiple of depth 2")
    (fun () -> Timetile.run kernel tt ~total_steps:3)

(* Property: on random small datasets, the full CLCL+FST+tilePack
   pipeline stays legal and correct. *)
let prop_pipeline_correct =
  let arb =
    QCheck.make
      ~print:(fun (n, e) -> Printf.sprintf "n=%d m=%d" n (Array.length e))
      QCheck.Gen.(
        let* n = int_range 8 60 in
        let* m = int_range 4 150 in
        let* pairs =
          array_repeat m
            (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
        in
        let pairs =
          Array.map (fun (a, b) -> if a = b then (a, (b + 1) mod n) else (a, b)) pairs
        in
        return (n, pairs))
  in
  QCheck.Test.make ~name:"CLCL+FST correct on random datasets" ~count:60 arb
    (fun (n, pairs) ->
      let d =
        {
          Datagen.Dataset.name = "rand";
          n_nodes = n;
          left = Array.map fst pairs;
          right = Array.map snd pairs;
          coords = None;
        }
      in
      let kernel = Kernels.Irreg.of_dataset d in
      let plan = Plan.with_fst ~seed_part_size:5 Plan.cpack_lexgroup_twice in
      let r = Inspector.run plan kernel in
      (match Legality.check r with Ok () -> () | Error m -> failwith m);
      let expected = reference kernel ~steps:2 in
      let got = run_result r ~steps:2 in
      Kernels.Kernel.snapshots_close ~rtol:1e-8 expected got)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "compose"
    [
      ( "plan",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "data reorder counts" `Quick test_n_data_reorders;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "cpack M" `Quick test_symbolic_cpack_data_mapping;
          Alcotest.test_case "CL M" `Quick test_symbolic_cl_data_mapping;
          Alcotest.test_case "CLCL composed R" `Quick
            test_symbolic_clcl_composed_r;
          Alcotest.test_case "CLCL composed T" `Quick
            test_symbolic_clcl_composed_t_jloop;
          Alcotest.test_case "FST tile dim" `Quick test_symbolic_fst_adds_tile_dim;
          Alcotest.test_case "tilePack R" `Quick test_symbolic_tilepack_composed_r;
          Alcotest.test_case "fresh names" `Quick test_symbolic_fresh_names;
          Alcotest.test_case "rejects non-reduction" `Quick
            test_symbolic_rejects_nonreduction;
          Alcotest.test_case "dependence update" `Quick
            test_symbolic_dependence_update;
        ] );
      ( "depcheck",
        [
          Alcotest.test_case "independent" `Quick test_depcheck_independent;
          Alcotest.test_case "reduction" `Quick test_depcheck_reduction;
          Alcotest.test_case "serialized" `Quick test_depcheck_serialized;
          Alcotest.test_case "kernels are reductions" `Quick
            test_depcheck_kernels_are_reductions;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "subscripts" `Quick test_codegen_subscripts;
          Alcotest.test_case "second cpack" `Quick test_codegen_second_cpack;
          Alcotest.test_case "tiled executor" `Quick test_codegen_tiled_executor;
          Alcotest.test_case "plain executor" `Quick test_codegen_plain_executor;
          Alcotest.test_case "full report" `Quick test_codegen_full_report;
        ] );
      ( "inspector",
        [
          Alcotest.test_case "all compositions correct" `Slow
            test_all_compositions_correct;
          Alcotest.test_case "strategies agree" `Slow test_strategies_agree;
          Alcotest.test_case "remap counts" `Quick test_remap_counts;
          Alcotest.test_case "symmetric sharing agrees" `Quick
            test_symmetric_sharing_agrees;
          Alcotest.test_case "base is noop" `Quick test_base_plan_is_noop;
          Alcotest.test_case "cache block plan" `Quick test_cache_block_plan;
          Alcotest.test_case "gpart-seeded FST" `Quick test_gpart_seeded_fst;
          Alcotest.test_case "multilevel plan" `Quick
            test_multilevel_plan_correct;
          Alcotest.test_case "lexsort/bucket plans" `Quick
            test_other_iter_reorders_correct;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "symbolic formulas = runtime perms" `Quick
            test_symbolic_agrees_with_inspector;
        ] );
      ( "timetile",
        [
          Alcotest.test_case "correct on all kernels" `Quick
            test_timetile_correct;
          Alcotest.test_case "after reordering" `Quick
            test_timetile_after_reordering;
          Alcotest.test_case "chain shape" `Quick test_timetile_chain_shape;
          Alcotest.test_case "rejects bad steps" `Quick
            test_timetile_rejects_bad_steps;
          Alcotest.test_case "trace conserved" `Quick
            test_timetile_trace_conserved;
        ] );
      ("prop", qsuite [ prop_pipeline_correct ]);
    ]
