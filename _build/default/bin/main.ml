(* Command-line driver regenerating every measured figure/table of the
   paper (see DESIGN.md for the experiment index):

     rtrt datasets            Section 2.4 dataset table
     rtrt figure6 / figure7   normalized executor time (Power3 / P4)
     rtrt figure8 / figure9   inspector amortization
     rtrt figure16            remap-once overhead reduction
     rtrt figure17            cache-size-target parameter sweep
     rtrt symbolic            Section 5 symbolic composition report
     rtrt codegen             Figures 10-15 generated pseudo-code
     rtrt gs                  Gauss-Seidel sparse tiling (E-GS)
     rtrt guide               Section 7 runtime composition selection
     rtrt ablations           design-choice ablations A1-A9
     rtrt raw                 absolute counts for one configuration
     rtrt all                 the figure suite end to end *)

open Cmdliner

let config_of ~scale ~steps =
  {
    Harness.Figures.scale;
    trace_steps = steps;
    wall_steps = max steps 3;
  }

let scale_arg =
  let doc =
    "Dataset scale divisor: node counts are the paper's divided by this \
     (1 = full size)."
  in
  Arg.(value & opt int 16 & info [ "scale" ] ~docv:"N" ~doc)

let steps_arg =
  let doc = "Time steps measured by the cache model." in
  Arg.(value & opt int 2 & info [ "steps" ] ~docv:"S" ~doc)

let run_datasets scale steps =
  let config = config_of ~scale ~steps in
  let rows = Harness.Figures.dataset_table ~config () in
  Fmt.pr "Section 2.4 dataset table (generated at scale %d):@." scale;
  Fmt.pr "%a@." Harness.Figures.pp_dataset_table rows

let run_exec ~machine ~label scale steps =
  let config = config_of ~scale ~steps in
  Fmt.pr "%s: normalized executor time without overhead on %a@." label
    Cachesim.Machine.pp machine;
  let rows = Harness.Figures.executor_time ~machine ~config () in
  Fmt.pr "%a@." Harness.Figures.pp_exec_rows rows

let run_amort ~machine ~label scale steps =
  let config = config_of ~scale ~steps in
  Fmt.pr "%s: inspector amortization on %a@." label Cachesim.Machine.pp machine;
  let rows = Harness.Figures.amortization ~machine ~config () in
  Fmt.pr "%a@." Harness.Figures.pp_amort_rows rows

let run_remap scale steps =
  let config = config_of ~scale ~steps in
  Fmt.pr "Figure 16: inspector overhead reduction from remapping once@.";
  let rows =
    Harness.Figures.remap_overhead ~machine:Cachesim.Machine.pentium4 ~config ()
  in
  Fmt.pr "%a@." Harness.Figures.pp_remap_rows rows

let run_sweep scale steps =
  let config = config_of ~scale ~steps in
  let machine = Cachesim.Machine.pentium4 in
  Fmt.pr "Figure 17: executor time vs cache-size target on %a@."
    Cachesim.Machine.pp machine;
  let rows = Harness.Figures.cache_target_sweep ~machine ~config () in
  Fmt.pr "%a@." Harness.Figures.pp_sweep_rows rows

let run_raw bench ds machine_name scale steps =
  let config = config_of ~scale ~steps in
  let machine =
    match Cachesim.Machine.by_name machine_name with
    | Some m -> m
    | None -> Fmt.invalid_arg "unknown machine %s" machine_name
  in
  let dataset =
    match Datagen.Generators.by_name ~scale ds with
    | Some d -> d
    | None -> Fmt.invalid_arg "unknown dataset %s" ds
  in
  let kernel =
    match Kernels.by_name bench with
    | Some f -> f dataset
    | None -> Fmt.invalid_arg "unknown kernel %s" bench
  in
  Fmt.pr "%a; kernel %s (%d B/node)@." Datagen.Dataset.pp dataset bench
    (Kernels.Kernel.bytes_per_node kernel);
  let ms = Harness.Figures.run_suite ~machine ~config kernel in
  List.iter (fun m -> Fmt.pr "%a@." Harness.Experiment.pp_measurement m) ms

let run_ablations scale steps =
  let config = config_of ~scale ~steps in
  Fmt.pr "Ablations (see DESIGN.md section 5):@.";
  List.iter
    (Fmt.pr "%a" Harness.Ablations.pp_rows)
    (Harness.Ablations.all ~machine:Cachesim.Machine.pentium4 ~config ())

let run_symbolic () =
  Fmt.pr "Section 5: symbolic composition for simplified moldyn@.@.";
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  Fmt.pr "plan: %a@.@." Compose.Plan.pp plan;
  let st =
    Compose.Symbolic.apply
      (Compose.Symbolic.create Compose.Symbolic.moldyn_program)
      plan
  in
  Fmt.pr "%a@." Compose.Symbolic.pp_report st

let run_gs scale steps =
  ignore steps;
  let dataset = Datagen.Generators.foil ~scale () in
  let graph = Datagen.Dataset.to_graph dataset in
  let n = Irgraph.Csr.num_nodes graph in
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 13)) in
  let slab = 3 and slabs = 8 in
  let partition = Irgraph.Partition.gpart graph ~part_size:32 in
  let graph', f', _sigma, seed =
    Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition
  in
  let tiling =
    Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep:(slab / 2) ~sweeps:slab
  in
  let machine = Cachesim.Machine.pentium4 in
  let misses run =
    let t = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
    let layout = Kernels.Gauss_seidel.layout t in
    let hierarchy = Cachesim.Machine.hierarchy machine in
    run t ~layout ~access:(Cachesim.Hierarchy.access hierarchy);
    Cachesim.Hierarchy.l1_misses hierarchy
  in
  let plain =
    misses (fun t ~layout ~access ->
        Kernels.Gauss_seidel.run_traced t ~sweeps:(slab * slabs) ~layout ~access)
  in
  let tiled =
    misses (fun t ~layout ~access ->
        Kernels.Gauss_seidel.run_tiled_traced ~slabs t tiling ~layout ~access)
  in
  Fmt.pr
    "Gauss-Seidel sparse tiling (E-GS) on %a, %d sweeps in %d-sweep slabs:@."
    Cachesim.Machine.pp machine (slab * slabs) slab;
  Fmt.pr "  plain %d misses, tiled %d misses (%.0f%% fewer), %d tiles, \
          constraints ok: %b@."
    plain tiled
    (100.0 *. (1.0 -. (float_of_int tiled /. float_of_int plain)))
    tiling.Kernels.Gauss_seidel.n_tiles
    (Kernels.Gauss_seidel.check_constraints graph' tiling = [])

let run_guide bench ds budget scale steps =
  let machine = Cachesim.Machine.pentium4 in
  let dataset =
    match Datagen.Generators.by_name ~scale ds with
    | Some d -> d
    | None -> Fmt.invalid_arg "unknown dataset %s" ds
  in
  let kernel =
    match Kernels.by_name bench with
    | Some f -> f dataset
    | None -> Fmt.invalid_arg "unknown kernel %s" bench
  in
  let plans =
    Harness.Figures.suite_for ~machine kernel
  in
  Fmt.pr
    "Guidance (Section 7): ranking compositions for %s/%s over %d outer      iterations on %a@.@."
    bench ds budget Cachesim.Machine.pp machine;
  let ranking =
    Harness.Guidance.select ~trace_steps:steps ~machine ~steps_budget:budget
      ~plans kernel
  in
  Fmt.pr "%a" Harness.Guidance.pp_ranking ranking

let run_export dir scale steps =
  let config = config_of ~scale ~steps in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Fmt.pr "wrote %s@." path
  in
  List.iter
    (fun machine ->
      let tag = machine.Cachesim.Machine.name in
      write
        (Fmt.str "executor_time_%s.csv" tag)
        (Harness.Figures.csv_exec_rows
           (Harness.Figures.executor_time ~machine ~config ()));
      write
        (Fmt.str "amortization_%s.csv" tag)
        (Harness.Figures.csv_amort_rows
           (Harness.Figures.amortization ~machine ~config ())))
    [ Cachesim.Machine.power3; Cachesim.Machine.pentium4 ];
  write "cache_target_sweep_pentium4.csv"
    (Harness.Figures.csv_sweep_rows
       (Harness.Figures.cache_target_sweep ~machine:Cachesim.Machine.pentium4
          ~config ()))

let run_codegen bench =
  let program =
    match Compose.Symbolic.program_by_name bench with
    | Some p -> p
    | None -> Fmt.invalid_arg "unknown program %s" bench
  in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  Fmt.pr
    "Figures 10-15: generated specialized inspectors and executor for %s,@.\
     plan %a@.@."
    bench Compose.Plan.pp plan;
  let st = Compose.Symbolic.apply (Compose.Symbolic.create program) plan in
  print_string (Compose.Codegen.full_report st ~program)

let run_all scale steps =
  run_datasets scale steps;
  run_symbolic ();
  run_exec ~machine:Cachesim.Machine.power3 ~label:"Figure 6" scale steps;
  run_exec ~machine:Cachesim.Machine.pentium4 ~label:"Figure 7" scale steps;
  run_amort ~machine:Cachesim.Machine.power3 ~label:"Figure 8" scale steps;
  run_amort ~machine:Cachesim.Machine.pentium4 ~label:"Figure 9" scale steps;
  run_remap scale steps;
  run_sweep scale steps

let cmd_of ~name ~doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ scale_arg $ steps_arg)

let datasets_cmd = cmd_of ~name:"datasets" ~doc:"Section 2.4 table" run_datasets

let figure6_cmd =
  cmd_of ~name:"figure6" ~doc:"Normalized executor time, Power3 model"
    (run_exec ~machine:Cachesim.Machine.power3 ~label:"Figure 6")

let figure7_cmd =
  cmd_of ~name:"figure7" ~doc:"Normalized executor time, Pentium 4 model"
    (run_exec ~machine:Cachesim.Machine.pentium4 ~label:"Figure 7")

let figure8_cmd =
  cmd_of ~name:"figure8" ~doc:"Inspector amortization, Power3 model"
    (run_amort ~machine:Cachesim.Machine.power3 ~label:"Figure 8")

let figure9_cmd =
  cmd_of ~name:"figure9" ~doc:"Inspector amortization, Pentium 4 model"
    (run_amort ~machine:Cachesim.Machine.pentium4 ~label:"Figure 9")

let figure16_cmd =
  cmd_of ~name:"figure16" ~doc:"Remap-once overhead reduction" run_remap

let figure17_cmd =
  cmd_of ~name:"figure17" ~doc:"Cache-size-target sweep" run_sweep

let raw_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  let ds = Arg.(value & opt string "mol1" & info [ "dataset" ] ~docv:"DATA") in
  let machine =
    Arg.(value & opt string "pentium4" & info [ "machine" ] ~docv:"M")
  in
  Cmd.v
    (Cmd.info "raw" ~doc:"Raw measurements for one kernel/dataset/machine")
    Term.(const run_raw $ bench $ ds $ machine $ scale_arg $ steps_arg)

let ablations_cmd =
  cmd_of ~name:"ablations" ~doc:"Design-choice ablations" run_ablations

let gs_cmd = cmd_of ~name:"gs" ~doc:"Gauss-Seidel sparse tiling (E-GS)" run_gs

let export_cmd =
  let dir =
    Arg.(value & opt string "results" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for the CSV files.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write plot-ready CSVs for Figures 6-9 and 17")
    Term.(const run_export $ dir $ scale_arg $ steps_arg)

let guide_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  let ds = Arg.(value & opt string "mol1" & info [ "dataset" ] ~docv:"DATA") in
  let budget =
    Arg.(value & opt int 100 & info [ "iterations" ] ~docv:"N"
           ~doc:"Outer-loop iterations the application will run.")
  in
  Cmd.v
    (Cmd.info "guide" ~doc:"Section 7 guidance: pick a composition at runtime")
    Term.(const run_guide $ bench $ ds $ budget $ scale_arg $ steps_arg)

let codegen_cmd =
  let bench =
    Arg.(value & opt string "moldyn" & info [ "bench" ] ~docv:"KERNEL")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generated specialized inspector/executor pseudo-code")
    Term.(const run_codegen $ bench)

let symbolic_cmd =
  Cmd.v
    (Cmd.info "symbolic" ~doc:"Section 5 symbolic composition report")
    Term.(const run_symbolic $ const ())

let all_cmd = cmd_of ~name:"all" ~doc:"Run every experiment" run_all

let () =
  let info =
    Cmd.info "rtrt" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Compile-time Composition of Run-time Data and \
         Iteration Reorderings' (PLDI 2003)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            datasets_cmd; figure6_cmd; figure7_cmd; figure8_cmd; figure9_cmd;
            figure16_cmd; figure17_cmd; symbolic_cmd; raw_cmd; ablations_cmd; codegen_cmd; gs_cmd; guide_cmd; export_cmd; all_cmd;
          ]))
