lib/harness/experiment.ml: Cachesim Compose Fmt Kernels List Reorder Unix
