lib/harness/guidance.ml: Compose Experiment Fmt List
