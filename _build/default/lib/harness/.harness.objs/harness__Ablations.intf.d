lib/harness/ablations.mli: Cachesim Datagen Figures Fmt
