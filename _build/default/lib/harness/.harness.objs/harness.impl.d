lib/harness/harness.ml: Ablations Experiment Figures Guidance
