lib/harness/guidance.mli: Cachesim Compose Fmt Kernels
