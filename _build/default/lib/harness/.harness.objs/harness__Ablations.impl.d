lib/harness/ablations.ml: Array Cachesim Compose Datagen Experiment Figures Fmt Irgraph Kernels List Option Reorder
