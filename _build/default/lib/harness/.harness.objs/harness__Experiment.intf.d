lib/harness/experiment.mli: Cachesim Compose Fmt Kernels
