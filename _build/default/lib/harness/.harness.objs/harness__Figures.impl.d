lib/harness/figures.ml: Buffer Cachesim Compose Datagen Experiment Fmt Kernels List
