lib/harness/figures.mli: Cachesim Compose Experiment Fmt Kernels
