(* Ablation studies for the design choices DESIGN.md calls out:

   A1 data-reordering algorithm (CPACK / RCM / Gpart / Morton SFC),
      each followed by lexGroup;
   A2 FST seed partitioning: block vs Gpart-derived seed;
   A3 FST seed loop: the interaction loop (paper) vs loop 0;
   A4 inter-array regrouping on/off for the baseline layout;
   A5 symmetric-dependence elision on/off (inspector time);
   A6 tile-level parallelism of the sparse-tiled schedules
      (Sections 2.3/4).

   All report modeled misses per time step on a given machine, except
   A5 (inspector seconds) and A6 (parallelism statistics). *)

type row = {
  label : string;
  value : float;
  unit_ : string;
}

let pp_rows ppf (title, rows) =
  Fmt.pf ppf "@[<v2>%s:@," title;
  List.iter
    (fun r -> Fmt.pf ppf "%-36s %12.4g %s@," r.label r.value r.unit_)
    rows;
  Fmt.pf ppf "@]@."

let misses ?layout_of ~machine ~config ~plan kernel =
  (Experiment.measure ?layout_of
     ~trace_steps_n:config.Figures.trace_steps
     ~wall_steps:1 ~machine ~plan kernel)
    .Experiment.misses_per_step

(* A1: data-reordering algorithms, composed with lexGroup. The SFC
   reordering is applied directly (it needs coordinates, which the
   framework cannot derive — related work). *)
let data_reorderings ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Irreg.of_dataset dataset in
  let gpart_size = Figures.gpart_size_for ~target_bytes:machine.Cachesim.Machine.l1_size kernel in
  let lex = Compose.Transform.Iter_reorder Compose.Transform.Lexgroup in
  let plan_rows =
    [
      ("base", Compose.Plan.base);
      ("cpack + lexGroup", Compose.Plan.cpack_lexgroup);
      ( "rcm + lexGroup",
        Compose.Plan.make ~name:"RL"
          [ Compose.Transform.Data_reorder Compose.Transform.Rcm; lex ] );
      ("gpart + lexGroup", Compose.Plan.gpart_lexgroup ~part_size:gpart_size);
      ( "multilevel + lexGroup",
        Compose.Plan.make ~name:"ML"
          [
            Compose.Transform.Data_reorder
              (Compose.Transform.Multilevel { part_size = gpart_size });
            lex;
          ] );
    ]
  in
  let rows =
    List.concat_map
      (fun (label, plan) ->
        let m =
          Experiment.measure ~trace_steps_n:config.Figures.trace_steps
            ~wall_steps:1 ~machine ~plan kernel
        in
        [
          {
            label;
            value = m.Experiment.misses_per_step;
            unit_ = "misses/step";
          };
          {
            label = "  (inspector)";
            value = m.Experiment.inspector_seconds;
            unit_ = "s";
          };
        ])
      plan_rows
  in
  (* Morton ordering from coordinates, then lexGroup via the plan
     machinery on the pre-permuted kernel. *)
  let sfc_row =
    match dataset.Datagen.Dataset.coords with
    | None -> []
    | Some coords ->
      let sigma = Reorder.Sfc_reorder.run coords in
      let kernel' = kernel.Kernels.Kernel.apply_data_perm sigma in
      let plan =
        Compose.Plan.make ~name:"SFC+L" [ lex ]
      in
      [
        {
          label = "morton sfc + lexGroup";
          value = misses ~machine ~config ~plan kernel';
          unit_ = "misses/step";
        };
      ]
  in
  ("A1: data reordering algorithm (irreg)", rows @ sfc_row)

(* A2: block vs Gpart seed for full sparse tiling after CL. *)
let seed_partitioning ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Irreg.of_dataset dataset in
  let target_bytes = machine.Cachesim.Machine.l1_size in
  let seed_size = Figures.seed_size_for ~target_bytes kernel in
  let fst_with seed =
    Compose.Plan.make ~name:"CL+FST"
      (Compose.Plan.transforms Compose.Plan.cpack_lexgroup
      @ [
          Compose.Transform.Sparse_tile { growth = Compose.Transform.Full; seed };
          Compose.Transform.Data_reorder Compose.Transform.Tile_pack;
        ])
  in
  let rows =
    [
      ( "block seed",
        fst_with (Compose.Transform.Seed_block { part_size = seed_size }) );
      ( "gpart seed",
        fst_with
          (Compose.Transform.Seed_gpart
             { part_size = Figures.gpart_size_for ~target_bytes kernel }) );
    ]
  in
  ( "A2: FST seed partitioning (irreg, after CL)",
    List.map
      (fun (label, plan) ->
        { label; value = misses ~machine ~config ~plan kernel; unit_ = "misses/step" })
      rows )

(* A3: seeding the chain on the interaction loop (the paper's choice
   after CL/GL) vs on loop 0. Implemented directly over the sparse
   tiling primitives since the Transform layer always seeds the
   interaction loop. *)
let seed_loop ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Moldyn.of_dataset dataset in
  let result = Experiment.inspect Compose.Plan.cpack_lexgroup kernel in
  let kernel = result.Compose.Inspector.kernel in
  let target_bytes = machine.Cachesim.Machine.l1_size in
  let seed_size = Figures.seed_size_for ~target_bytes kernel in
  let chain = kernel.Kernels.Kernel.chain_of_access kernel.Kernels.Kernel.access in
  let tiled_misses seed_loop part_size =
    let seed =
      Reorder.Sparse_tile.tile_fn_of_partition
        (Irgraph.Partition.block
           ~n:kernel.Kernels.Kernel.loop_sizes.(seed_loop)
           ~part_size)
    in
    let tiles = Reorder.Sparse_tile.full ~chain ~seed:seed_loop ~seed_tiles:seed () in
    let sched = Reorder.Schedule.of_tile_fns tiles in
    let hierarchy = Cachesim.Machine.hierarchy machine in
    let access = Cachesim.Hierarchy.access hierarchy in
    let layout = Kernels.Kernel.layout kernel in
    kernel.Kernels.Kernel.run_tiled_traced sched ~steps:1 ~layout ~access;
    Cachesim.Hierarchy.reset_counters hierarchy;
    kernel.Kernels.Kernel.run_tiled_traced sched
      ~steps:config.Figures.trace_steps ~layout ~access;
    float_of_int (Cachesim.Hierarchy.l1_misses hierarchy)
    /. float_of_int config.Figures.trace_steps
  in
  ( "A3: FST seed loop (moldyn, after CL)",
    [
      {
        label = "seed on j (interaction loop)";
        value = tiled_misses kernel.Kernels.Kernel.seed_loop seed_size;
        unit_ = "misses/step";
      };
      {
        label = "seed on i (loop 0)";
        value = tiled_misses 0 (Figures.gpart_size_for ~target_bytes kernel / 4);
        unit_ = "misses/step";
      };
    ] )

(* A4: inter-array regrouping on/off. *)
let regrouping ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Moldyn.of_dataset dataset in
  let row label layout_of plan =
    { label; value = misses ~layout_of ~machine ~config ~plan kernel; unit_ = "misses/step" }
  in
  ( "A4: inter-array regrouping (moldyn)",
    [
      row "base, regrouped" Kernels.Kernel.layout Compose.Plan.base;
      row "base, separate arrays" Kernels.Kernel.layout_separate Compose.Plan.base;
      row "CL, regrouped" Kernels.Kernel.layout Compose.Plan.cpack_lexgroup;
      row "CL, separate arrays" Kernels.Kernel.layout_separate
        Compose.Plan.cpack_lexgroup;
    ] )

(* A5: symmetric-dependence elision (Section 6), inspector seconds.
   Measured on a bare FST plan so the elided dependence traversal is
   not drowned by the data-reordering inspectors. *)
let symmetric_sharing ~config (dataset : Datagen.Dataset.t) =
  ignore config;
  let kernel = Kernels.Moldyn.of_dataset dataset in
  let plan =
    Compose.Plan.with_fst ~tile_pack:false ~seed_part_size:64 Compose.Plan.base
  in
  let best share =
    let run () =
      (Compose.Inspector.run ~share_symmetric_deps:share plan kernel)
        .Compose.Inspector.inspector_seconds
    in
    let r = ref (run ()) in
    for _ = 1 to 4 do
      r := min !r (run ())
    done;
    !r
  in
  ( "A5: symmetric-dependence elision (moldyn FST inspector)",
    [
      { label = "traverse both dependence sets"; value = best false; unit_ = "s" };
      { label = "traverse one (shared)"; value = best true; unit_ = "s" };
    ] )

(* A6: tile-level parallelism of the sparse-tiled schedule. *)
let tile_parallelism ~machine ~config (dataset : Datagen.Dataset.t) =
  ignore config;
  let kernel = Kernels.Irreg.of_dataset dataset in
  let target_bytes = machine.Cachesim.Machine.l1_size in
  let plan =
    Compose.Plan.with_fst ~tile_pack:false
      ~seed_part_size:(Figures.seed_size_for ~target_bytes kernel)
      Compose.Plan.cpack_lexgroup
  in
  let result = Experiment.inspect plan kernel in
  let k = result.Compose.Inspector.kernel in
  let sched = Option.get result.Compose.Inspector.schedule in
  let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
  let tiles =
    Compose.Legality.tile_fns_of_schedule sched
      ~loop_sizes:k.Kernels.Kernel.loop_sizes
  in
  let par = Reorder.Tile_par.analyze ~chain ~tiles in
  let conflicts =
    Reorder.Tile_par.shared_data_conflicts par ~access:k.Kernels.Kernel.access
      ~tile_of_iter:tiles.(k.Kernels.Kernel.seed_loop).Reorder.Sparse_tile.tile_of
  in
  ( "A6: tile-level parallelism (irreg, CL+FST)",
    [
      { label = "tiles"; value = float_of_int par.Reorder.Tile_par.n_tiles; unit_ = "" };
      { label = "levels"; value = float_of_int par.Reorder.Tile_par.n_levels; unit_ = "" };
      {
        label = "average parallelism";
        value = Reorder.Tile_par.average_parallelism par;
        unit_ = "tiles/level";
      };
      {
        label = "speedup on 4 processors";
        value = Reorder.Tile_par.speedup par ~processors:4;
        unit_ = "x";
      };
      {
        label = "speedup on 16 processors";
        value = Reorder.Tile_par.speedup par ~processors:16;
        unit_ = "x";
      };
      {
        label = "reduction-conflict tile pairs";
        value = float_of_int conflicts;
        unit_ = "";
      };
    ] )

(* A7: sparse tiling across the outer time-stepping loop (Section 2.3
   "across an outer loop", via Compose.Timetile): trades extra L1
   misses (tile halos) for much less memory traffic. Modeled cycles on
   the given machine, GL baseline. *)
let time_tiling ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Moldyn.of_dataset dataset in
  let target_bytes = machine.Cachesim.Machine.l1_size in
  let gl =
    Experiment.inspect
      (Compose.Plan.gpart_lexgroup
         ~part_size:(Figures.gpart_size_for ~target_bytes kernel))
      kernel
  in
  let k = gl.Compose.Inspector.kernel in
  let layout = Kernels.Kernel.layout k in
  let steps = 4 * config.Figures.trace_steps in
  let cycles run =
    let h = Cachesim.Machine.hierarchy machine in
    run ~access:(Cachesim.Hierarchy.access h);
    Cachesim.Hierarchy.modeled_cycles h
  in
  let plain =
    cycles (fun ~access -> k.Kernels.Kernel.run_traced ~steps ~layout ~access)
  in
  let tiled depth =
    let tt = Compose.Timetile.tile k ~depth ~seed_part_size:64 in
    cycles (fun ~access ->
        Compose.Timetile.run_traced k tt ~total_steps:steps ~layout ~access)
  in
  ( "A7: time-step sparse tiling (moldyn, after GL; modeled cycles)",
    [
      { label = "GL, untiled steps"; value = plain; unit_ = "cycles" };
      { label = "GL + 2-step slabs"; value = tiled 2; unit_ = "cycles" };
      { label = "GL + 4-step slabs"; value = tiled 4; unit_ = "cycles" };
    ] )

(* A8: the two sparse tiling growth strategies (Section 2.3): full
   sparse tiling (side-by-side growth) vs cache blocking (shrinking
   partitions + leftover tile). *)
let tiling_growth ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Moldyn.of_dataset dataset in
  let target_bytes = machine.Cachesim.Machine.l1_size in
  let seed = Figures.seed_size_for ~target_bytes kernel in
  let row label plan =
    { label; value = misses ~machine ~config ~plan kernel; unit_ = "misses/step" }
  in
  ( "A8: sparse-tile growth strategy (moldyn, after CL)",
    [
      row "full sparse tiling"
        (Compose.Plan.with_fst ~seed_part_size:seed Compose.Plan.cpack_lexgroup);
      row "cache blocking"
        (Compose.Plan.with_cache_block
           ~seed_part_size:(Figures.gpart_size_for ~target_bytes kernel / 4)
           Compose.Plan.cpack_lexgroup);
    ] )

(* A9: dependence-free iteration-reordering algorithms after CPACK
   (Section 2.2: the paper picked lexGroup for its
   performance-to-overhead trade-off). *)
let iter_reorderings ~machine ~config (dataset : Datagen.Dataset.t) =
  let kernel = Kernels.Irreg.of_dataset dataset in
  let plan_with name alg =
    Compose.Plan.make ~name
      [ Compose.Transform.Data_reorder Compose.Transform.Cpack;
        Compose.Transform.Iter_reorder alg ]
  in
  let rows =
    List.concat_map
      (fun (label, plan) ->
        let m =
          Experiment.measure ~trace_steps_n:config.Figures.trace_steps
            ~wall_steps:1 ~machine ~plan kernel
        in
        [
          { label; value = m.Experiment.misses_per_step; unit_ = "misses/step" };
          {
            label = "  (inspector)";
            value = m.Experiment.inspector_seconds;
            unit_ = "s";
          };
        ])
      [
        ("cpack only", Compose.Plan.cpack);
        ("+ lexGroup", plan_with "C+lg" Compose.Transform.Lexgroup);
        ("+ lexSort", plan_with "C+ls" Compose.Transform.Lexsort);
        ( "+ bucket tiling",
          plan_with "C+bt"
            (Compose.Transform.Bucket_tile
               { bucket_size = machine.Cachesim.Machine.l1_size / 16 / 2 }) );
      ]
  in
  ("A9: iteration-reordering algorithm (irreg, after CPACK)", rows)

let all ~machine ~config () =
  let foil = Option.get (Datagen.Generators.by_name ~scale:config.Figures.scale "foil") in
  let mol1 = Option.get (Datagen.Generators.by_name ~scale:config.Figures.scale "mol1") in
  [
    data_reorderings ~machine ~config foil;
    seed_partitioning ~machine ~config foil;
    seed_loop ~machine ~config mol1;
    regrouping ~machine ~config mol1;
    symmetric_sharing ~config mol1;
    tile_parallelism ~machine ~config foil;
    time_tiling ~machine ~config mol1;
    tiling_growth ~machine ~config mol1;
    iter_reorderings ~machine ~config foil;
  ]
