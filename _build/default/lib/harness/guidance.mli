(** Guidance prototype (the paper's Section 7 future work): rank
    candidate compositions at run time by predicted total cost —
    inspector overhead plus modeled executor cost over the
    application's intended number of outer iterations. Small budgets
    favor cheap compositions, large budgets the aggressive ones. *)

type choice = {
  plan : Compose.Plan.t;
  inspector_cycles : float;
  executor_cycles_per_step : float;
  total_cycles : float;
}

(** Measure one plan's inspector cycles and executor cycles/step. *)
val probe :
  ?trace_steps:int ->
  machine:Cachesim.Machine.t ->
  plan:Compose.Plan.t ->
  Kernels.Kernel.t ->
  float * float

(** Rank plans cheapest-total first for a [steps_budget]-iteration
    run. *)
val select :
  ?trace_steps:int ->
  machine:Cachesim.Machine.t ->
  steps_budget:int ->
  plans:Compose.Plan.t list ->
  Kernels.Kernel.t ->
  choice list

(** The cheapest choice; raises on an empty candidate list. *)
val best :
  ?trace_steps:int ->
  machine:Cachesim.Machine.t ->
  steps_budget:int ->
  plans:Compose.Plan.t list ->
  Kernels.Kernel.t ->
  choice

val pp_choice : choice Fmt.t
val pp_ranking : choice list Fmt.t
