(** Ablation studies over the design choices DESIGN.md calls out:
    data-reordering algorithm, FST seed partitioning and seed loop,
    inter-array regrouping, symmetric-dependence elision, and
    tile-level parallelism. *)

type row = {
  label : string;
  value : float;
  unit_ : string;
}

val pp_rows : (string * row list) Fmt.t

(** A1: CPACK / RCM / Gpart / Morton-SFC data reorderings (+lexGroup). *)
val data_reorderings :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A2: block vs Gpart seed for FST. *)
val seed_partitioning :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A3: seeding the chain on the interaction loop vs loop 0. *)
val seed_loop :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A4: inter-array regrouping on/off. *)
val regrouping :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A5: symmetric-dependence elision on/off (inspector seconds). *)
val symmetric_sharing :
  config:Figures.config -> Datagen.Dataset.t -> string * row list

(** A6: tile-level parallelism statistics of a sparse-tiled schedule. *)
val tile_parallelism :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A7: sparse tiling across the outer time-stepping loop
    ({!Compose.Timetile}), modeled cycles vs the untiled executor. *)
val time_tiling :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A8: full sparse tiling vs cache blocking. *)
val tiling_growth :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** A9: lexGroup vs lexSort vs bucket tiling after CPACK. *)
val iter_reorderings :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  Datagen.Dataset.t ->
  string * row list

(** Run every ablation at the config's scale. *)
val all :
  machine:Cachesim.Machine.t ->
  config:Figures.config ->
  unit ->
  (string * row list) list
