(* A guidance prototype for the paper's Section 7 future work:
   "guidance mechanisms that decide when to apply which sequence of
   transformations ... made at runtime based on the characteristics of
   the actual data mappings and dependences."

   Given a kernel, a machine model and a number of outer-loop
   iterations the application intends to run, rank candidate
   compositions by their *predicted total cost*:

     total(plan) = inspector_cycles(plan)
                   + steps_budget * executor_cycles_per_step(plan)

   Executor cost per step comes from the cache model over a short
   probe (the inspector has already paid for the reordering, so
   probing is cheap relative to a long run); inspector cost is
   measured directly and converted to cycles at the probe's measured
   cycles-per-second rate. Small budgets select cheap or empty
   compositions (the overhead cannot amortize); large budgets select
   the aggressive ones — the amortization trade-off of Figures 8/9
   turned into a decision procedure. *)

type choice = {
  plan : Compose.Plan.t;
  inspector_cycles : float;
  executor_cycles_per_step : float;
  total_cycles : float;
}

(* Probe one plan: inspector cost + modeled executor cost/step. *)
let probe ?(trace_steps = 2) ~machine ~plan kernel =
  let m =
    Experiment.measure ~trace_steps_n:trace_steps ~wall_steps:1 ~machine ~plan
      kernel
  in
  (* Convert inspector seconds to model cycles via the probe's own
     cycles-per-second, so both terms live on the same clock. *)
  let cycles_per_second =
    if m.Experiment.executor_seconds_per_step > 0.0 then
      m.Experiment.modeled_cycles_per_step
      /. m.Experiment.executor_seconds_per_step
    else 0.0
  in
  ( m.Experiment.inspector_seconds *. cycles_per_second,
    m.Experiment.modeled_cycles_per_step )

(* Rank [plans] for a run of [steps_budget] outer iterations;
   cheapest-total first. *)
let select ?trace_steps ~machine ~steps_budget ~plans kernel =
  let choices =
    List.map
      (fun plan ->
        let inspector_cycles, executor_cycles_per_step =
          probe ?trace_steps ~machine ~plan kernel
        in
        {
          plan;
          inspector_cycles;
          executor_cycles_per_step;
          total_cycles =
            inspector_cycles
            +. (float_of_int steps_budget *. executor_cycles_per_step);
        })
      plans
  in
  List.sort (fun a b -> compare a.total_cycles b.total_cycles) choices

let best ?trace_steps ~machine ~steps_budget ~plans kernel =
  match select ?trace_steps ~machine ~steps_budget ~plans kernel with
  | [] -> invalid_arg "Guidance.best: no candidate plans"
  | c :: _ -> c

let pp_choice ppf c =
  Fmt.pf ppf "%-10s total %.3e cy (inspector %.3e + %.3e/step)"
    (Compose.Plan.name c.plan) c.total_cycles c.inspector_cycles
    c.executor_cycles_per_step

let pp_ranking ppf choices =
  List.iteri (fun i c -> Fmt.pf ppf "%d. %a@." (i + 1) pp_choice c) choices
