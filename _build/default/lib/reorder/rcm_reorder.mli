(** Reverse Cuthill-McKee as a run-time data reordering. *)

(** RCM order of the data-affinity graph as a data reordering. *)
val run : Access.t -> Perm.t

(** Plain (non-reversed) Cuthill-McKee variant. *)
val run_cm : Access.t -> Perm.t
