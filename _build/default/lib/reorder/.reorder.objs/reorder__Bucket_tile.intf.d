lib/reorder/bucket_tile.mli: Access Perm
