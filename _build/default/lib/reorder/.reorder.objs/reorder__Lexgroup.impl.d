lib/reorder/lexgroup.ml: Access Array Perm
