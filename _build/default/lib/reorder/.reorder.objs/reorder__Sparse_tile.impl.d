lib/reorder/sparse_tile.ml: Access Array Fmt Irgraph List
