lib/reorder/gpart_reorder.ml: Access Array Irgraph Perm
