lib/reorder/schedule.ml: Array Fmt Perm Sparse_tile Stdlib
