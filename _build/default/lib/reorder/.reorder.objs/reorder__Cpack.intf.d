lib/reorder/cpack.mli: Access Perm
