lib/reorder/gpart_reorder.mli: Access Irgraph Perm
