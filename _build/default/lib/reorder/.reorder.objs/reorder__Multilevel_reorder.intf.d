lib/reorder/multilevel_reorder.mli: Access Irgraph Perm
