lib/reorder/lexgroup.mli: Access Perm
