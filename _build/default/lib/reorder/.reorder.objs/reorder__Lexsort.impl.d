lib/reorder/lexsort.ml: Access Array Perm Stdlib
