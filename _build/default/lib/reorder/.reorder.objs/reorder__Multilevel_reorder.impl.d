lib/reorder/multilevel_reorder.ml: Access Array Irgraph Perm Queue
