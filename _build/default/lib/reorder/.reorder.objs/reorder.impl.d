lib/reorder/reorder.ml: Access Bucket_tile Cpack Gpart_reorder Lexgroup Lexsort Multilevel_reorder Perm Rcm_reorder Schedule Sfc_reorder Sparse_tile Tile_pack Tile_par Wavefront
