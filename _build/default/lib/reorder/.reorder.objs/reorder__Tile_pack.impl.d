lib/reorder/tile_pack.ml: Access Array List Perm Schedule
