lib/reorder/schedule.mli: Fmt Perm Sparse_tile
