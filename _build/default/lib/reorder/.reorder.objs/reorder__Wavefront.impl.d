lib/reorder/wavefront.ml: Access Array Fmt
