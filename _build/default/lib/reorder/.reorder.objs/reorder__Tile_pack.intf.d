lib/reorder/tile_pack.mli: Access Perm Schedule
