lib/reorder/lexsort.mli: Access Perm
