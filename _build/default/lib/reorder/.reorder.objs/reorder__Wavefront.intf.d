lib/reorder/wavefront.mli: Access Fmt
