lib/reorder/sparse_tile.mli: Access Fmt Irgraph
