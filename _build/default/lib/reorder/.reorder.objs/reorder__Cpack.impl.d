lib/reorder/cpack.ml: Access Array Perm
