lib/reorder/tile_par.ml: Access Array Fmt Hashtbl List Sparse_tile
