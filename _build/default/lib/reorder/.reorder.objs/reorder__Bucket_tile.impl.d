lib/reorder/bucket_tile.ml: Access Array Perm
