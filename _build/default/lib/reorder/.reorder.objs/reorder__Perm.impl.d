lib/reorder/perm.ml: Array Fmt
