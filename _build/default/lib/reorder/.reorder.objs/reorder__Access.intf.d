lib/reorder/access.mli: Fmt Irgraph Perm
