lib/reorder/rcm_reorder.mli: Access Perm
