lib/reorder/tile_par.mli: Access Fmt Sparse_tile
