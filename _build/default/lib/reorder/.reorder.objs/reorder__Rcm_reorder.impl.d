lib/reorder/rcm_reorder.ml: Access Irgraph Perm
