lib/reorder/access.ml: Array Fmt Irgraph List Perm
