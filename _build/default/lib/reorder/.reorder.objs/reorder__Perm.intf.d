lib/reorder/perm.mli: Fmt
