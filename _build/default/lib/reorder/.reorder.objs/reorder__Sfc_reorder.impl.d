lib/reorder/sfc_reorder.ml: Array Perm
