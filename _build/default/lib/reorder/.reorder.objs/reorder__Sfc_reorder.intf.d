lib/reorder/sfc_reorder.mli: Perm
