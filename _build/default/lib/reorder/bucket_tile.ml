(* Bucket tiling (Mitchell, Carter & Ferrante 1999, "localizing
   non-affine array references"): partition the data space into
   contiguous buckets of [bucket_size] locations; an iteration is
   keyed by the bucket of its first touch and iterations are grouped
   bucket by bucket (stable within a bucket).

   Returns both the iteration reordering and the bucket (tile) of each
   new iteration, since executors may insert per-bucket prefetch or
   blocking. *)

type t = {
  delta : Perm.t;        (* iteration reordering *)
  n_buckets : int;
  bucket_of_new : int array; (* new iteration -> bucket id *)
}

let run (access : Access.t) ~bucket_size =
  if bucket_size <= 0 then invalid_arg "Bucket_tile.run: bucket_size";
  let n_iter = Access.n_iter access in
  let n_data = Access.n_data access in
  let n_buckets = max 1 ((n_data + bucket_size - 1) / bucket_size) in
  let key =
    Array.init n_iter (fun it -> Access.first_touch access it / bucket_size)
  in
  let count = Array.make (n_buckets + 1) 0 in
  Array.iter (fun k -> count.(k + 1) <- count.(k + 1) + 1) key;
  for b = 0 to n_buckets - 1 do
    count.(b + 1) <- count.(b + 1) + count.(b)
  done;
  let starts = Array.copy count in
  let forward = Array.make n_iter 0 in
  for it = 0 to n_iter - 1 do
    let k = key.(it) in
    forward.(it) <- count.(k);
    count.(k) <- count.(k) + 1
  done;
  let bucket_of_new = Array.make n_iter 0 in
  let b = ref 0 in
  for nw = 0 to n_iter - 1 do
    while !b < n_buckets - 1 && nw >= starts.(!b + 1) do
      incr b
    done;
    bucket_of_new.(nw) <- !b
  done;
  { delta = Perm.unsafe_of_forward forward; n_buckets; bucket_of_new }
