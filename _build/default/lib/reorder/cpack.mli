(** Consecutive packing (CPACK, Ding & Kennedy 1999): data-reordering
    inspector packing locations in first-touch order (Figure 10 of the
    paper). *)

(** [run access] traverses iterations in order and returns the data
    reordering sigma_cp. *)
val run : Access.t -> Perm.t

(** CPACK over an explicit iteration visit order (used by tilePack). *)
val run_in_order : Access.t -> order:int array -> Perm.t
