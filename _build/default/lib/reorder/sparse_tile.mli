(** Sparse tiling (Section 2.3): iteration-reordering transformations
    whose inspectors traverse data dependences. Includes full sparse
    tiling (Strout et al.) and cache blocking (Douglas et al.). *)

type tile_fn = {
  n_tiles : int;
  tile_of : int array; (** iteration -> tile id *)
}

val tile_fn_of_partition : Irgraph.Partition.t -> tile_fn

(** Validate tile ids are in range. *)
val check_tile_fn : tile_fn -> unit

(** Backward growth: [conn] maps each iteration of the loop being
    assigned to its *successors* in the already-assigned loop; the
    result takes the min successor tile (dependence-free iterations go
    to tile 0). *)
val grow_backward : conn:Access.t -> next:tile_fn -> tile_fn

(** Forward growth: [conn] maps each iteration to its *predecessors*;
    takes the max predecessor tile. *)
val grow_forward : conn:Access.t -> prev:tile_fn -> tile_fn

(** Cache-blocking growth: keep the tile only when all predecessors
    agree (and none is the leftover), otherwise fall into the shared
    [leftover] tile (executed last). *)
val grow_cache_block : leftover:int -> conn:Access.t -> prev:tile_fn -> tile_fn

(** A chain of loops executed in sequence. [conn.(l)] maps each
    iteration of loop [l+1] to its predecessor iterations in loop [l]. *)
type chain = private {
  loop_sizes : int array;
  conn : Access.t array;
}

val n_loops : chain -> int

val make_chain : loop_sizes:int array -> conn:Access.t array -> chain

(** Full sparse tiling from a seed partitioning of loop [seed]; one
    tile function per loop, side-by-side growth (min backward, max
    forward). [shared_succ] supplies precomputed successor connectivity
    for backward loops (the Section 6 symmetric-dependence elision). *)
val full :
  ?shared_succ:(int * Access.t) list ->
  chain:chain ->
  seed:int ->
  seed_tiles:tile_fn ->
  unit ->
  tile_fn array

(** Cache blocking: seed on loop 0, shrink forward, leftover tile
    last. *)
val cache_block : chain:chain -> seed_tiles:tile_fn -> tile_fn array

(** All dependence edges a -> b with tile(a) > tile(b); empty = legal. *)
val check_legality :
  chain:chain -> tiles:tile_fn array -> (int * int * int) list

val pp_tile_fn : tile_fn Fmt.t
