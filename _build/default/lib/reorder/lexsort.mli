(** Lexicographical sorting (lexSort, Han & Tseng 2000): sort
    iterations by their full tuple of touched locations (stable). *)

val run : Access.t -> Perm.t

(** Lexicographic comparison of touch tuples (exposed for tests). *)
val compare_tuples : int array -> int array -> int
