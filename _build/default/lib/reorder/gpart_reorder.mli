(** Gpart data reordering (Han & Tseng 2000): partition the
    data-affinity graph into cache-sized parts and number data
    consecutively within each part. *)

(** [run access ~part_size] returns the data reordering sigma_gp.
    [graph] supplies a prebuilt affinity graph. *)
val run : ?graph:Irgraph.Csr.t -> Access.t -> part_size:int -> Perm.t

(** Also return the partition (for metrics / sparse-tiling seeds). *)
val run_with_partition : Access.t -> part_size:int -> Perm.t * Irgraph.Partition.t
