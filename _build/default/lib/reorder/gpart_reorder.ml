(* Gpart data reordering (Han & Tseng): partition the data-affinity
   graph into parts that fit in (some level of) cache, then number the
   data consecutively within each part. Within a part we keep BFS
   discovery order, which is what the partitioner grows, so data that
   is connected ends up adjacent. *)

let run ?graph (access : Access.t) ~part_size =
  let g = match graph with Some g -> g | None -> Access.to_graph access in
  let partition = Irgraph.Partition.gpart g ~part_size in
  let members = Irgraph.Partition.members partition in
  let n_data = Access.n_data access in
  let inv = Array.make n_data 0 in
  let pos = ref 0 in
  Array.iter
    (fun part ->
      Array.iter
        (fun v ->
          inv.(!pos) <- v;
          incr pos)
        part)
    members;
  Perm.of_inverse inv

(* The partition itself, for callers that also need it (e.g. to report
   edge cuts or reuse it as a sparse-tiling seed). *)
let run_with_partition (access : Access.t) ~part_size =
  let g = Access.to_graph access in
  let partition = Irgraph.Partition.gpart g ~part_size in
  let members = Irgraph.Partition.members partition in
  let n_data = Access.n_data access in
  let inv = Array.make n_data 0 in
  let pos = ref 0 in
  Array.iter
    (fun part -> Array.iter (fun v -> inv.(!pos) <- v; incr pos) part)
    members;
  (Perm.of_inverse inv, partition)
