(** Space-filling-curve (Morton / Z-order) data reordering. Needs
    spatial coordinates, which the compiler cannot derive — the paper
    classifies SFC reorderings as not fully automatable; we provide
    one for ablations. *)

(** Morton key of quantized coordinates ([bits] per dimension). *)
val morton_key : bits:int -> int -> int -> int -> int

(** Data reordering sorting locations by the Morton key of their
    coordinates (default 16 bits per dimension). *)
val run : ?bits:int -> (float * float * float) array -> Perm.t
