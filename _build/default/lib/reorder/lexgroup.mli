(** Lexicographical grouping (lexGroup, Ding & Kennedy 1999):
    iteration-reordering inspector grouping iterations by the first
    location they touch (stable counting sort). *)

(** [run access] returns the iteration reordering delta_lg. *)
val run : Access.t -> Perm.t

(** Variant keyed on the minimum touched location. *)
val run_by_min : Access.t -> Perm.t
