(** Tile packing (tilePack): consecutive packing of data over the
    sparse-tiled execution order, so each tile's data is contiguous. *)

(** [run ~schedule ~accesses ~n_data] traverses tiles in order and,
    within each tile, the given [(loop, access)] mappings, first-touch
    packing every location; returns the data reordering sigma_tp. *)
val run :
  schedule:Schedule.t -> accesses:(int * Access.t) list -> n_data:int -> Perm.t
