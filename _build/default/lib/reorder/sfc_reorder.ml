(* Space-filling-curve data reordering (related work, Mellor-Crummey
   et al. / Singh et al.): order data by the Morton (Z-order) key of
   its spatial coordinates. As the paper notes, SFC reorderings need
   coordinate information the compiler cannot derive, so they sit
   outside the automatable transformations — we provide one for the
   ablation comparing it against CPACK/Gpart/RCM.

   Coordinates are quantized to [bits] per dimension and interleaved
   (x bit 0, y bit 0, z bit 0, x bit 1, ...). *)

let default_bits = 16

let quantize ~bits ~lo ~hi v =
  if hi <= lo then 0
  else begin
    let max_q = (1 lsl bits) - 1 in
    let q =
      int_of_float (float_of_int max_q *. ((v -. lo) /. (hi -. lo)))
    in
    min max_q (max 0 q)
  end

let morton_key ~bits qx qy qz =
  let key = ref 0 in
  for b = bits - 1 downto 0 do
    key := (!key lsl 3)
           lor (((qx lsr b) land 1) lsl 2)
           lor (((qy lsr b) land 1) lsl 1)
           lor ((qz lsr b) land 1)
  done;
  !key

(* [run coords] returns the data reordering that sorts locations by
   Morton key of their (x, y, z) coordinates. *)
let run ?(bits = default_bits) (coords : (float * float * float) array) =
  let n = Array.length coords in
  let bound proj init better =
    Array.fold_left (fun acc c -> if better (proj c) acc then proj c else acc)
      init coords
  in
  let x_lo = bound (fun (x, _, _) -> x) infinity ( < ) in
  let x_hi = bound (fun (x, _, _) -> x) neg_infinity ( > ) in
  let y_lo = bound (fun (_, y, _) -> y) infinity ( < ) in
  let y_hi = bound (fun (_, y, _) -> y) neg_infinity ( > ) in
  let z_lo = bound (fun (_, _, z) -> z) infinity ( < ) in
  let z_hi = bound (fun (_, _, z) -> z) neg_infinity ( > ) in
  let keyed =
    Array.init n (fun v ->
        let x, y, z = coords.(v) in
        let k =
          morton_key ~bits
            (quantize ~bits ~lo:x_lo ~hi:x_hi x)
            (quantize ~bits ~lo:y_lo ~hi:y_hi y)
            (quantize ~bits ~lo:z_lo ~hi:z_hi z)
        in
        (k, v))
  in
  Array.sort compare keyed;
  Perm.of_inverse (Array.map snd keyed)
