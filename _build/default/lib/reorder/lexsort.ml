(* Lexicographical sorting (Han & Tseng): iteration-reordering
   inspector that sorts iterations by the full tuple of locations they
   touch. Heavier than lexGroup (O(n log n) comparisons) but yields a
   total order on touch tuples. The sort is made stable by breaking
   ties on the original iteration id. *)

let compare_tuples (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let rec go k =
    if k >= la && k >= lb then 0
    else if k >= la then -1
    else if k >= lb then 1
    else
      let c = Stdlib.compare a.(k) b.(k) in
      if c <> 0 then c else go (k + 1)
  in
  go 0

let run (access : Access.t) =
  let n_iter = Access.n_iter access in
  let keys = Array.init n_iter (fun it -> (Access.touches access it, it)) in
  Array.sort
    (fun (ka, ia) (kb, ib) ->
      let c = compare_tuples ka kb in
      if c <> 0 then c else Stdlib.compare ia ib)
    keys;
  (* keys.(new_pos) = (_, old_iter): that is the inverse mapping. *)
  Perm.of_inverse (Array.map snd keys)
