(** Bucket tiling (Mitchell, Carter & Ferrante 1999): group iterations
    by the contiguous data bucket of their first touch. *)

type t = {
  delta : Perm.t;            (** iteration reordering *)
  n_buckets : int;
  bucket_of_new : int array; (** new iteration -> bucket id *)
}

val run : Access.t -> bucket_size:int -> t
