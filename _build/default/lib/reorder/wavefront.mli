(** Run-time partial parallelization (Section 4 / Rauchwerger et al.):
    wavefront schedules with maximal parallelism, built by traversing
    the data dependences within an iteration subspace. *)

type t = {
  n_levels : int;
  level_of : int array;
  levels : int array array;
}

(** [run preds] where [preds] maps each iteration to the (earlier)
    iterations it depends on. Raises [Invalid_argument] on a dependence
    pointing forward. *)
val run : Access.t -> t

val average_parallelism : t -> float

(** Every predecessor lies in a strictly earlier level. *)
val check : Access.t -> t -> bool

(** Barrier-synchronized makespan with unit-cost iterations. *)
val makespan : t -> processors:int -> int

val pp : t Fmt.t
