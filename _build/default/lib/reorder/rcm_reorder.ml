(* Reverse Cuthill-McKee as a run-time data reordering (Cuthill & McKee
   1969, cited in the paper's related work): number the data by the
   RCM order of the data-affinity graph. *)

let run (access : Access.t) =
  let g = Access.to_graph access in
  Perm.of_inverse (Irgraph.Rcm.rcm_order g)

let run_cm (access : Access.t) =
  let g = Access.to_graph access in
  Perm.of_inverse (Irgraph.Rcm.cm_order g)
