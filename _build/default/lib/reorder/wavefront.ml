(* Run-time partial parallelization (Rauchwerger, Amato & Padua,
   cited as [25] in Section 4): an inspector that traverses all data
   dependences within an iteration subspace and produces a schedule
   with maximal parallelism — iterations are assigned to wavefronts
   such that every iteration's predecessors lie in strictly earlier
   wavefronts. The framework expresses this by mapping parallel
   iterations to the same point in the unified iteration space.

   [preds] maps each iteration to the iterations it depends on.
   Dependences must be acyclic in iteration order (preds earlier than
   the iteration), as loop-carried flow dependences are. *)

type t = {
  n_levels : int;
  level_of : int array;  (* iteration -> wavefront *)
  levels : int array array; (* wavefront -> member iterations *)
}

let run (preds : Access.t) =
  let n = Access.n_iter preds in
  let level_of = Array.make n 0 in
  let n_levels = ref 1 in
  for it = 0 to n - 1 do
    let lvl =
      Access.fold_touches preds it
        (fun acc p ->
          if p >= it then
            invalid_arg "Wavefront.run: dependence on a later iteration"
          else max acc (level_of.(p) + 1))
        0
    in
    level_of.(it) <- lvl;
    if lvl + 1 > !n_levels then n_levels := lvl + 1
  done;
  let counts = Array.make !n_levels 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) level_of;
  let levels = Array.map (fun c -> Array.make c 0) counts in
  let cursor = Array.make !n_levels 0 in
  Array.iteri
    (fun it l ->
      levels.(l).(cursor.(l)) <- it;
      cursor.(l) <- cursor.(l) + 1)
    level_of;
  { n_levels = !n_levels; level_of; levels }

(* Average parallelism: iterations per wavefront. *)
let average_parallelism t =
  float_of_int (Array.length t.level_of) /. float_of_int t.n_levels

(* Check the schedule: every predecessor in a strictly earlier level. *)
let check (preds : Access.t) t =
  let ok = ref true in
  for it = 0 to Access.n_iter preds - 1 do
    Access.iter_touches preds it (fun p ->
        if t.level_of.(p) >= t.level_of.(it) then ok := false)
  done;
  !ok

(* Simulated makespan on [processors] with unit-cost iterations and a
   barrier between wavefronts (greedy within a level). *)
let makespan t ~processors =
  if processors <= 0 then invalid_arg "Wavefront.makespan: processors";
  Array.fold_left
    (fun acc members ->
      acc + ((Array.length members + processors - 1) / processors))
    0 t.levels

let pp ppf t =
  Fmt.pf ppf "wavefront(%d iterations in %d levels, avg parallelism %.1f)"
    (Array.length t.level_of) t.n_levels (average_parallelism t)
