(* Fresh-name supply for existential variables introduced by relation
   operations (compose, inverse, apply). Names are prefixed with "$" so
   they can never collide with user-written variable names, which the
   parser restricts to ordinary identifiers. *)

let counter = ref 0

let reset () = counter := 0

let var ?(hint = "e") () =
  incr counter;
  Printf.sprintf "$%s%d" hint !counter

let vars ?hint n = List.init n (fun _ -> var ?hint ())

let is_fresh name = String.length name > 0 && name.[0] = '$'
