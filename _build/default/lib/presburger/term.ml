(* Affine expressions over tuple variables extended with uninterpreted
   function symbol (UFS) atoms, as used by the Kelly-Pugh framework with
   Pugh-Wonnacott uninterpreted function symbols.

   A term is kept in the normal form

     const + sum_i coeff_i * atom_i

   where each [atom] is either a named integer variable or a UFS
   application [f(e1, ..., ek)] whose arguments are themselves terms.
   The coefficient list is sorted by atom and contains no zero
   coefficients, so structural equality of normalized terms coincides
   with syntactic equality of the expressions they denote. *)

type atom =
  | Var of string
  | Ufs of string * t list

and t = {
  const : int;
  coeffs : (atom * int) list;
}

let rec compare_atom a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, Ufs _ -> -1
  | Ufs _, Var _ -> 1
  | Ufs (f, args1), Ufs (g, args2) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_args args1 args2

and compare_args l1 l2 =
  match l1, l2 with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | t1 :: r1, t2 :: r2 ->
    let c = compare t1 t2 in
    if c <> 0 then c else compare_args r1 r2

and compare t1 t2 =
  let c = Stdlib.compare t1.const t2.const in
  if c <> 0 then c
  else
    let rec go l1 l2 =
      match l1, l2 with
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | (a1, c1) :: r1, (a2, c2) :: r2 ->
        let c = compare_atom a1 a2 in
        if c <> 0 then c
        else
          let c = Stdlib.compare c1 c2 in
          if c <> 0 then c else go r1 r2
    in
    go t1.coeffs t2.coeffs

let equal t1 t2 = compare t1 t2 = 0
let equal_atom a b = compare_atom a b = 0

(* Normalization: merge equal atoms, drop zero coefficients, keep sorted. *)
let normalize coeffs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare_atom a b) coeffs in
  let rec merge = function
    | [] -> []
    | [ (a, c) ] -> if c = 0 then [] else [ (a, c) ]
    | (a1, c1) :: (a2, c2) :: rest when compare_atom a1 a2 = 0 ->
      merge ((a1, c1 + c2) :: rest)
    | (a, c) :: rest -> if c = 0 then merge rest else (a, c) :: merge rest
  in
  merge sorted

let make const coeffs = { const; coeffs = normalize coeffs }
let zero = { const = 0; coeffs = [] }
let const c = { const = c; coeffs = [] }
let var x = { const = 0; coeffs = [ (Var x, 1) ] }
let of_atom a = { const = 0; coeffs = [ (a, 1) ] }
let ufs f args = { const = 0; coeffs = [ (Ufs (f, args), 1) ] }

let add t1 t2 =
  make (t1.const + t2.const) (t1.coeffs @ t2.coeffs)

let scale k t =
  if k = 0 then zero
  else { const = k * t.const; coeffs = List.map (fun (a, c) -> (a, k * c)) t.coeffs }

let neg t = scale (-1) t
let sub t1 t2 = add t1 (neg t2)
let is_const t = t.coeffs = []

let to_const t = if is_const t then Some t.const else None

(* [as_var t] is [Some x] when [t] is exactly the variable [x]. *)
let as_var t =
  match t.const, t.coeffs with
  | 0, [ (Var x, 1) ] -> Some x
  | _ -> None

(* [as_ufs t] is [Some (f, args)] when [t] is exactly one UFS application. *)
let as_ufs t =
  match t.const, t.coeffs with
  | 0, [ (Ufs (f, args), 1) ] -> Some (f, args)
  | _ -> None

let rec free_vars_atom acc = function
  | Var x -> x :: acc
  | Ufs (_, args) -> List.fold_left free_vars acc args

and free_vars acc t =
  List.fold_left (fun acc (a, _) -> free_vars_atom acc a) acc t.coeffs

let vars t =
  List.sort_uniq String.compare (free_vars [] t)

let mem_var x t = List.mem x (vars t)

let rec ufs_names_atom acc = function
  | Var _ -> acc
  | Ufs (f, args) -> List.fold_left ufs_names (f :: acc) args

and ufs_names acc t =
  List.fold_left (fun acc (a, _) -> ufs_names_atom acc a) acc t.coeffs

(* Substitute term [by] for every occurrence of variable [x], including
   occurrences inside UFS arguments. *)
let rec subst x by t =
  let subst_atom (a, c) =
    match a with
    | Var y when String.equal x y -> scale c by
    | Var _ -> { const = 0; coeffs = [ (a, c) ] }
    | Ufs (f, args) ->
      let args' = List.map (subst x by) args in
      { const = 0; coeffs = [ (Ufs (f, args'), c) ] }
  in
  List.fold_left
    (fun acc ac -> add acc (subst_atom ac))
    (const t.const) t.coeffs

(* Simultaneous substitution: later bindings must not rewrite variables
   introduced by earlier ones (relation composition depends on this). *)
let rec subst_all bindings t =
  let subst_atom (a, c) =
    match a with
    | Var y -> (
      match List.assoc_opt y bindings with
      | Some by -> scale c by
      | None -> { const = 0; coeffs = [ (a, c) ] })
    | Ufs (f, args) ->
      let args' = List.map (subst_all bindings) args in
      { const = 0; coeffs = [ (Ufs (f, args'), c) ] }
  in
  List.fold_left
    (fun acc ac -> add acc (subst_atom ac))
    (const t.const) t.coeffs

(* Collapse compositions of a bijection with its registered inverse:
   f(f_inv(e)) -> e and f_inv(f(e)) -> e, bottom-up. [inverse] reports
   the inverse's name for a bijective UFS. *)
let rec collapse_inverses ~inverse t =
  let collapse_atom (a, c) =
    match a with
    | Var _ -> { const = 0; coeffs = [ (a, c) ] }
    | Ufs (f, args) -> (
      let args = List.map (collapse_inverses ~inverse) args in
      match args, inverse f with
      | [ arg ], Some f_inv -> (
        match arg.const, arg.coeffs with
        | 0, [ (Ufs (g, [ inner ]), 1) ] when String.equal g f_inv ->
          scale c inner
        | _ -> { const = 0; coeffs = [ (Ufs (f, args), c) ] })
      | _ -> { const = 0; coeffs = [ (Ufs (f, args), c) ] })
  in
  List.fold_left
    (fun acc ac -> add acc (collapse_atom ac))
    (const t.const) t.coeffs

(* Rename variables according to [f]; renaming reaches inside UFS args. *)
let rec rename f t =
  let rename_atom (a, c) =
    match a with
    | Var y -> ((Var (f y) : atom), c)
    | Ufs (g, args) -> (Ufs (g, List.map (rename f) args), c)
  in
  { t with coeffs = normalize (List.map rename_atom t.coeffs) }

(* Evaluate a term given an environment for variables and an
   interpretation for UFS applications. Raises [Not_found] if a
   variable is unbound. *)
let rec eval ~env ~interp t =
  let eval_atom = function
    | Var x -> env x
    | Ufs (f, args) -> interp f (List.map (eval ~env ~interp) args)
  in
  List.fold_left (fun acc (a, c) -> acc + (c * eval_atom a)) t.const t.coeffs

let rec pp ppf t =
  let pp_atom ppf = function
    | Var x -> Fmt.string ppf x
    | Ufs (f, args) ->
      Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args
  in
  let pp_mono ~first ppf (a, c) =
    let sep =
      if first then if c < 0 then "-" else ""
      else if c < 0 then " - "
      else " + "
    in
    match abs c with
    | 1 -> Fmt.pf ppf "%s%a" sep pp_atom a
    | m -> Fmt.pf ppf "%s%d %a" sep m pp_atom a
  in
  match t.coeffs with
  | [] -> Fmt.int ppf t.const
  | first_mono :: rest ->
    pp_mono ~first:true ppf first_mono;
    List.iter (pp_mono ~first:false ppf) rest;
    if t.const > 0 then Fmt.pf ppf " + %d" t.const
    else if t.const < 0 then Fmt.pf ppf " - %d" (abs t.const)

let to_string t = Fmt.str "%a" pp t
