(* Recursive-descent parser for the paper's set/relation notation, e.g.

     {[s,1,i,1] -> [s,1,sigma(i),1] : 1 <= s && s <= n}
     {[s,2,j,q] -> [left(j)]} union {[s,2,j,q] -> [right(j)]}
     {[m] : 1 <= m <= n_nodes}

   Chained comparisons ([1 <= i <= n]) expand to conjunctions.
   Existentials are written [exists(e1,e2 : formula)]. *)

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | ARROW
  | ANDAND
  | UNION
  | EXISTS
  | IDENT of string
  | INT of int
  | PLUS
  | MINUS
  | STAR
  | LE
  | LT
  | EQUAL
  | GE
  | GT
  | EOF

let pp_token ppf = function
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LBRACK -> Fmt.string ppf "["
  | RBRACK -> Fmt.string ppf "]"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | COLON -> Fmt.string ppf ":"
  | ARROW -> Fmt.string ppf "->"
  | ANDAND -> Fmt.string ppf "&&"
  | UNION -> Fmt.string ppf "union"
  | EXISTS -> Fmt.string ppf "exists"
  | IDENT s -> Fmt.string ppf s
  | INT n -> Fmt.int ppf n
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | LE -> Fmt.string ppf "<="
  | LT -> Fmt.string ppf "<"
  | EQUAL -> Fmt.string ppf "="
  | GE -> Fmt.string ppf ">="
  | GT -> Fmt.string ppf ">"
  | EOF -> Fmt.string ppf "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      match word with
      | "union" -> push UNION
      | "exists" -> push EXISTS
      | _ -> push (IDENT word)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "->" -> push ARROW; i := !i + 2
      | "&&" -> push ANDAND; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | "==" -> push EQUAL; i := !i + 2
      | _ ->
        (match c with
        | '{' -> push LBRACE
        | '}' -> push RBRACE
        | '[' -> push LBRACK
        | ']' -> push RBRACK
        | '(' -> push LPAREN
        | ')' -> push RPAREN
        | ',' -> push COMMA
        | ':' -> push COLON
        | '+' -> push PLUS
        | '-' -> push MINUS
        | '*' -> push STAR
        | '<' -> push LT
        | '>' -> push GT
        | '=' -> push EQUAL
        | _ -> error "unexpected character %c" c);
        incr i
    end
  done;
  push EOF;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else error "expected %a but found %a" pp_token tok pp_token got

let accept st tok = if peek st = tok then (advance st; true) else false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr st =
  let negated = accept st MINUS in
  let first = parse_product st in
  let first = if negated then Term.neg first else first in
  let rec loop acc =
    match peek st with
    | PLUS ->
      advance st;
      loop (Term.add acc (parse_product st))
    | MINUS ->
      advance st;
      loop (Term.sub acc (parse_product st))
    | _ -> acc
  in
  loop first

and parse_product st =
  match peek st with
  | INT k -> (
    advance st;
    match peek st with
    | STAR ->
      advance st;
      Term.scale k (parse_factor st)
    | IDENT _ | LPAREN -> Term.scale k (parse_factor st)
    | _ -> Term.const k)
  | _ -> parse_factor st

and parse_factor st =
  match peek st with
  | IDENT name -> (
    advance st;
    match peek st with
    | LPAREN ->
      advance st;
      let args = parse_expr_list st in
      expect st RPAREN;
      Term.ufs name args
    | _ -> Term.var name)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | INT k ->
    advance st;
    Term.const k
  | tok -> error "expected expression, found %a" pp_token tok

and parse_expr_list st =
  let first = parse_expr st in
  let rec loop acc =
    if accept st COMMA then loop (parse_expr st :: acc) else List.rev acc
  in
  loop [ first ]

(* ------------------------------------------------------------------ *)
(* Formulas                                                            *)

let parse_relop st =
  match peek st with
  | LE -> advance st; Some `Le
  | LT -> advance st; Some `Lt
  | GE -> advance st; Some `Ge
  | GT -> advance st; Some `Gt
  | EQUAL -> advance st; Some `Eq
  | _ -> None

let constr_of_op op lhs rhs =
  match op with
  | `Le -> Constr.leq lhs rhs
  | `Lt -> Constr.lt lhs rhs
  | `Ge -> Constr.geq lhs rhs
  | `Gt -> Constr.gt lhs rhs
  | `Eq -> Constr.eq lhs rhs

(* A chain [e1 op e2 op e3] yields the conjunction of adjacent pairs. *)
let parse_chain st =
  let first = parse_expr st in
  let rec loop lhs acc =
    match parse_relop st with
    | None -> (
      match acc with
      | [] -> error "expected comparison operator"
      | _ -> List.rev acc)
    | Some op ->
      let rhs = parse_expr st in
      loop rhs (constr_of_op op lhs rhs :: acc)
  in
  loop first []

let parse_ident st =
  match peek st with
  | IDENT x -> advance st; x
  | tok -> error "expected identifier, found %a" pp_token tok

let parse_ident_list st =
  let first = parse_ident st in
  let rec loop acc =
    if accept st COMMA then loop (parse_ident st :: acc) else List.rev acc
  in
  loop [ first ]

(* formula := exists(vars : conj) | conj;  returns (exists, constrs) *)
let rec parse_formula st =
  if accept st EXISTS then begin
    expect st LPAREN;
    let vars = parse_ident_list st in
    expect st COLON;
    let exists', constrs = parse_formula st in
    expect st RPAREN;
    (vars @ exists', constrs)
  end
  else
    let rec conj acc =
      let cs = parse_chain st in
      let acc = acc @ cs in
      if accept st ANDAND then
        if peek st = EXISTS then
          let exists', constrs = parse_formula st in
          (exists', acc @ constrs)
        else conj acc
      else ([], acc)
    in
    conj []

(* ------------------------------------------------------------------ *)
(* Sets and relations                                                  *)

(* An input-tuple position may be an identifier or an integer constant
   (the paper writes statement positions as constants, e.g.
   [{[s,2,j,q] -> ...}]). A constant at position [k] becomes the
   positional variable [_pk] pinned by an equality constraint. *)
let parse_tuple_vars st =
  expect st LBRACK;
  if accept st RBRACK then ([], [])
  else begin
    let parse_item k =
      match peek st with
      | IDENT x -> advance st; (x, None)
      | INT n ->
        advance st;
        let v = Printf.sprintf "_p%d" k in
        (v, Some (Constr.eq (Term.var v) (Term.const n)))
      | tok -> error "expected tuple variable, found %a" pp_token tok
    in
    let rec loop k acc =
      let item = parse_item k in
      if accept st COMMA then loop (k + 1) (item :: acc)
      else List.rev (item :: acc)
    in
    let items = loop 0 [] in
    expect st RBRACK;
    (List.map fst items, List.filter_map snd items)
  end

let parse_tuple_exprs st =
  expect st LBRACK;
  if accept st RBRACK then []
  else begin
    let exprs = parse_expr_list st in
    expect st RBRACK;
    exprs
  end

let parse_rel_disjunct st =
  expect st LBRACE;
  let in_vars, pinned = parse_tuple_vars st in
  expect st ARROW;
  let out_tuple = parse_tuple_exprs st in
  let exists, constrs =
    if accept st COLON then parse_formula st else ([], [])
  in
  expect st RBRACE;
  Rel.make ~in_vars ~out_tuple ~exists ~constrs:(pinned @ constrs) ()

let parse_set_disjunct st =
  expect st LBRACE;
  let vars, pinned = parse_tuple_vars st in
  let exists, constrs =
    if accept st COLON then parse_formula st else ([], [])
  in
  expect st RBRACE;
  Set_.make ~vars ~exists ~constrs:(pinned @ constrs) ()

let relation src =
  let st = { toks = tokenize src } in
  let first = parse_rel_disjunct st in
  let rec loop acc =
    if accept st UNION then loop (Rel.union acc (parse_rel_disjunct st))
    else begin
      expect st EOF;
      acc
    end
  in
  loop first

let set src =
  let st = { toks = tokenize src } in
  let first = parse_set_disjunct st in
  let rec loop acc =
    if accept st UNION then loop (Set_.union acc (parse_set_disjunct st))
    else begin
      expect st EOF;
      acc
    end
  in
  loop first

let term src =
  let st = { toks = tokenize src } in
  let e = parse_expr st in
  expect st EOF;
  e
