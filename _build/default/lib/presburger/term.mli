(** Affine integer expressions extended with uninterpreted function
    symbols (UFS), the term language of the Kelly-Pugh framework with
    Pugh-Wonnacott uninterpreted function symbols.

    A term denotes [const + sum_i coeff_i * atom_i] where each atom is a
    variable or a UFS application [f(e1, ..., ek)]. Terms are kept
    normalized (sorted atoms, merged and nonzero coefficients), so
    {!equal} decides syntactic equality of the denoted expressions. *)

(** An atom: a tuple/existential variable or a UFS application whose
    arguments are themselves terms. *)
type atom =
  | Var of string
  | Ufs of string * t list

and t = private {
  const : int;
  coeffs : (atom * int) list;
}

val compare : t -> t -> int
val compare_atom : atom -> atom -> int
val equal : t -> t -> bool
val equal_atom : atom -> atom -> bool

(** [make const coeffs] builds a normalized term. *)
val make : int -> (atom * int) list -> t

val zero : t
val const : int -> t
val var : string -> t
val of_atom : atom -> t

(** [ufs f args] is the application [f(args)] as a term. *)
val ufs : string -> t list -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [scale k t] is [k * t]. *)
val scale : int -> t -> t

val is_const : t -> bool

(** [to_const t] is [Some c] iff [t] is the constant [c]. *)
val to_const : t -> int option

(** [as_var t] is [Some x] iff [t] is exactly the variable [x]. *)
val as_var : t -> string option

(** [as_ufs t] is [Some (f, args)] iff [t] is exactly [f(args)]. *)
val as_ufs : t -> (string * t list) option

(** All variables occurring in [t], including inside UFS arguments,
    sorted and deduplicated. *)
val vars : t -> string list

val mem_var : string -> t -> bool

(** Names of every UFS occurring in [t] (with duplicates), accumulated
    onto the first argument. *)
val ufs_names : string list -> t -> string list

(** [subst x by t] replaces variable [x] with term [by] everywhere in
    [t], including inside UFS arguments. *)
val subst : string -> t -> t -> t

(** Simultaneous substitution of several variables. *)
val subst_all : (string * t) list -> t -> t

(** Collapse [f(f_inv(e))] (and [f_inv(f(e))]) to [e] bottom-up, given
    a function reporting each bijective UFS's inverse name. *)
val collapse_inverses : inverse:(string -> string option) -> t -> t

(** [rename f t] renames every variable [x] to [f x]. *)
val rename : (string -> string) -> t -> t

(** [eval ~env ~interp t] evaluates [t] with variable environment [env]
    and UFS interpretation [interp]. *)
val eval : env:(string -> int) -> interp:(string -> int list -> int) -> t -> int

val pp : t Fmt.t
val to_string : t -> string
