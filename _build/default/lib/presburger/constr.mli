(** Atomic Presburger constraints: equalities [t = 0] and inequalities
    [t >= 0] over {!Term.t}. *)

type t =
  | Eq of Term.t  (** [Eq t] means [t = 0] *)
  | Geq of Term.t (** [Geq t] means [t >= 0] *)

(** [eq a b] is the constraint [a = b]. *)
val eq : Term.t -> Term.t -> t

(** [geq a b] is [a >= b]. *)
val geq : Term.t -> Term.t -> t

(** [leq a b] is [a <= b]. *)
val leq : Term.t -> Term.t -> t

(** [lt a b] is [a < b] (encoded as [b - a - 1 >= 0]). *)
val lt : Term.t -> Term.t -> t

(** [gt a b] is [a > b]. *)
val gt : Term.t -> Term.t -> t

(** The underlying term (compared against 0). *)
val term : t -> Term.t

val compare : t -> t -> int
val equal : t -> t -> bool
val map : (Term.t -> Term.t) -> t -> t
val subst : string -> Term.t -> t -> t
val rename : (string -> string) -> t -> t
val vars : t -> string list
val mem_var : string -> t -> bool

(** Syntactic truth value: [`True] / [`False] when the constraint is a
    ground (dis)equality, [`Unknown] otherwise. *)
val truth : t -> [ `True | `False | `Unknown ]

(** Sign-normalize equalities so [x - y = 0] equals [y - x = 0]. *)
val normalize : t -> t

(** Evaluate under a variable environment and UFS interpretation. *)
val eval : env:(string -> int) -> interp:(string -> int list -> int) -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
