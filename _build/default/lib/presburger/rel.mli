(** Integer tuple relations with uninterpreted function symbols — the
    compile-time representation of data mappings [M_{I->a}], dependences
    [D_{I->I}], data reorderings [R_{a->a'}] and iteration reorderings
    [T_{I->I'}] from the paper.

    A relation is a union of disjuncts over shared input variables; each
    disjunct gives the output tuple as terms over the inputs and local
    existentials, under a conjunction of constraints. *)

type disjunct = {
  exists : string list;
  out_tuple : Term.t list;
  constrs : Constr.t list;
}

type t = private {
  in_vars : string list;
  out_arity : int;
  disjuncts : disjunct list;
}

val in_arity : t -> int
val out_arity : t -> int
val in_vars : t -> string list
val disjuncts : t -> disjunct list

(** [make ~in_vars ~out_tuple ?exists ?constrs ()] builds a
    single-disjunct relation. Variables that are neither inputs nor
    existentials are symbolic constants (e.g. [n_nodes]). *)
val make :
  in_vars:string list ->
  out_tuple:Term.t list ->
  ?exists:string list ->
  ?constrs:Constr.t list ->
  unit ->
  t

(** Identity relation on [n]-tuples. *)
val identity : ?prefix:string -> int -> t

(** The empty relation of the given signature. *)
val empty : in_vars:string list -> out_arity:int -> t

val is_empty : t -> bool

(** True when no disjunct has existentials, i.e. every output tuple is a
    direct function of the inputs. *)
val is_functional : t -> bool

(** Re-express the relation over new input variable names. *)
val rename_in_vars : string list -> t -> t

(** Eliminate determined existentials (using UFS inverses registered in
    [env]), drop trivially-true constraints and trivially-false
    disjuncts. *)
val simplify : ?env:Ufs_env.t -> t -> t

(** Union of relations of equal signature. *)
val union : t -> t -> t

val union_all : t list -> t

(** [compose ?env r2 r1] is [r2 . r1] (apply [r1] first). *)
val compose : ?env:Ufs_env.t -> t -> t -> t

(** [inverse ?env r] swaps domain and range, solving for the old inputs
    where UFS inverses allow. *)
val inverse : ?env:Ufs_env.t -> ?prefix:string -> t -> t

(** The domain as a set over the input variables. *)
val domain : t -> Set_.t

(** The range as a set over fresh variables [prefix]0... *)
val range : ?env:Ufs_env.t -> ?prefix:string -> t -> Set_.t

(** Image of a set under the relation. *)
val image : ?env:Ufs_env.t -> t -> Set_.t -> Set_.t

(** Conjoin a set's constraints onto the relation's inputs. *)
val restrict_domain : t -> Set_.t -> t

(** [eval ~interp r tuple] lists the output tuples related to [tuple];
    requires exists-free disjuncts (simplify first). [interp] gives
    meaning to UFS applications. *)
val eval : ?interp:(string -> int list -> int) -> t -> int list -> int list list

(** Like {!eval} but expects exactly one result. *)
val eval_fn : ?interp:(string -> int list -> int) -> t -> int list -> int list

(** All UFS names occurring in the relation. *)
val ufs_names : t -> string list

(** Structural equality up to input-variable renaming and constraint
    order (not semantic equivalence). *)
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
