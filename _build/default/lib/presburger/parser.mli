(** Parser for the paper's textual set/relation notation.

    Examples:
    {v
      relation "{[s,1,i,1] -> [s,1,sigma(i),1] : 1 <= s && s <= n}"
      relation "{[s,2,j,q] -> [left(j)]} union {[s,2,j,q] -> [right(j)]}"
      set      "{[m] : 1 <= m <= n_nodes}"
    v}

    Chained comparisons ([1 <= i <= n]) expand into conjunctions;
    existentials are written [exists(e1,e2 : formula)]. *)

exception Parse_error of string

(** Parse a relation (a union of [{[vars] -> [exprs] : formula}]
    disjuncts). Raises {!Parse_error}. *)
val relation : string -> Rel.t

(** Parse a set (a union of [{[vars] : formula}] conjuncts). *)
val set : string -> Set_.t

(** Parse a single affine/UFS expression. *)
val term : string -> Term.t
