(** Presburger-with-UFS layer: the compile-time representation used by
    the composition framework (terms, constraints, sets, relations,
    lexicographic order, parser). This is the "sparse polyhedral"
    substrate the paper builds on Kelly-Pugh + Pugh-Wonnacott. *)

module Term = Term
module Constr = Constr
module Set = Set_
module Rel = Rel
module Lexord = Lexord
module Ufs_env = Ufs_env
module Solve = Solve
module Fresh = Fresh
module Parser = Parser
