(* Lexicographic order on integer tuples, both concrete and symbolic.

   Execution order in the unified iteration space is lexicographic
   (Kelly-Pugh), so an iteration-reordering transformation T is legal
   iff for every dependence p -> q, T(p) lexicographically precedes
   T(q). The symbolic comparison below is best-effort (sound but
   incomplete): it reports [Unknown] whenever the constraint system
   would be needed to decide. *)

type verdict = Lt | Eq | Gt | Unknown

(* Concrete comparison; tuples of different length compare by the
   common prefix, then the shorter tuple first (as for sequences). *)
let compare_concrete (a : int list) (b : int list) =
  let rec go = function
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
      let c = Stdlib.compare x y in
      if c <> 0 then c else go (xs, ys)
  in
  go (a, b)

let precedes_concrete a b = compare_concrete a b < 0

(* Symbolic comparison of tuple terms. Two components are decided when
   their difference is a constant; otherwise the result is [Unknown]
   unless they are syntactically identical (difference zero). *)
let compare_symbolic (a : Term.t list) (b : Term.t list) : verdict =
  let rec go = function
    | [], [] -> Eq
    | [], _ :: _ -> Lt
    | _ :: _, [] -> Gt
    | x :: xs, y :: ys -> (
      match Term.to_const (Term.sub y x) with
      | Some 0 -> go (xs, ys)
      | Some d when d > 0 -> Lt
      | Some _ -> Gt
      | None -> Unknown)
  in
  go (a, b)

(* [definitely_precedes a b] holds when [a] strictly precedes [b] in
   every interpretation of the UFSs. *)
let definitely_precedes a b = compare_symbolic a b = Lt
