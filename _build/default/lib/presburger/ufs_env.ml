(* Environment of facts about uninterpreted function symbols.

   The composition framework needs to know, for a UFS [f] that denotes a
   run-time permutation (a data or iteration reordering function), the
   name of its inverse [f_inv]; this is what lets the simplifier solve
   equalities such as [j1 = lg(j)] for [j] (giving [j = lg_inv(j1)]),
   exactly as the paper's composed inspectors materialize
   [delta_lg_inv]. *)

type fact = {
  arity : int;
  inverse : string option; (* name of the inverse function, if bijective *)
}

type t = (string * fact) list

let empty = []

let add ?inverse ~arity name env = (name, { arity; inverse }) :: env

(* Register a bijection together with its inverse; both directions are
   recorded so that inverting twice recovers the original symbol. *)
let add_bijection name ~inverse ~arity env =
  (name, { arity; inverse = Some inverse })
  :: (inverse, { arity; inverse = Some name })
  :: env

let find name env = List.assoc_opt name env

let inverse name env =
  match find name env with
  | Some { inverse = Some inv; _ } -> Some inv
  | _ -> None

let arity name env =
  match find name env with Some { arity; _ } -> Some arity | None -> None

let names env = List.sort_uniq String.compare (List.map fst env)
