lib/presburger/term.ml: Fmt List Stdlib String
