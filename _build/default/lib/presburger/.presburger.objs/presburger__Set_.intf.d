lib/presburger/set_.mli: Constr Fmt Ufs_env
