lib/presburger/parser.mli: Rel Set_ Term
