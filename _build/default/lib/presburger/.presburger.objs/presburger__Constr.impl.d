lib/presburger/constr.ml: Fmt List Term
