lib/presburger/set_.ml: Constr Fmt Fresh List Solve String Ufs_env
