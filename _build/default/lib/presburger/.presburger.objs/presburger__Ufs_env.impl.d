lib/presburger/ufs_env.ml: List String
