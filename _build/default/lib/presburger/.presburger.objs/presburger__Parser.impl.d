lib/presburger/parser.ml: Constr Fmt List Printf Rel Set_ String Term
