lib/presburger/rel.ml: Constr Fmt Fresh List Printf Set_ Solve String Term Ufs_env
