lib/presburger/solve.ml: Constr List String Term Ufs_env
