lib/presburger/rel.mli: Constr Fmt Set_ Term Ufs_env
