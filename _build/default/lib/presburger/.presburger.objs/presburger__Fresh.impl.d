lib/presburger/fresh.ml: List Printf String
