lib/presburger/term.mli: Fmt
