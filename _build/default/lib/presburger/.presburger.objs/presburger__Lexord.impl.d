lib/presburger/lexord.ml: Stdlib Term
