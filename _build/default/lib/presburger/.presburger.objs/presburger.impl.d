lib/presburger/presburger.ml: Constr Fresh Lexord Parser Rel Set_ Solve Term Ufs_env
