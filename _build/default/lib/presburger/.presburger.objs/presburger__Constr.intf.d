lib/presburger/constr.mli: Fmt Term
