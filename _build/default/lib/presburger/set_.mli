(** Integer tuple sets with UFS constraints: the iteration spaces and
    data spaces of the framework. A set is a union of conjuncts over
    shared tuple variables. *)

type conjunct = {
  exists : string list;
  constrs : Constr.t list;
}

type t = private {
  vars : string list;
  conjuncts : conjunct list;
}

val arity : t -> int
val vars : t -> string list
val conjuncts : t -> conjunct list

(** Build a single-conjunct set. Variables that are neither tuple
    variables nor existentials are symbolic constants. *)
val make :
  vars:string list ->
  ?exists:string list ->
  ?constrs:Constr.t list ->
  unit ->
  t

(** The unconstrained set over the given tuple variables. *)
val universe : string list -> t

val empty : vars:string list -> t
val is_empty : t -> bool
val rename_vars : string list -> t -> t
val union : t -> t -> t
val union_all : t list -> t
val intersect : t -> t -> t
val simplify : ?env:Ufs_env.t -> t -> t

(** Membership for exists-free sets, given a UFS interpretation. *)
val mem : ?interp:(string -> int list -> int) -> t -> int list -> bool

(** Raw constructor from conjuncts (used by {!Rel}'s set-producing
    operations). *)
val of_conjuncts : vars:string list -> conjunct list -> t

(** Enumerate members within inclusive per-dimension [bounds] (small
    test instances only). *)
val enumerate :
  ?interp:(string -> int list -> int) ->
  bounds:(int * int) list ->
  t ->
  int list list

val pp : t Fmt.t
val to_string : t -> string
