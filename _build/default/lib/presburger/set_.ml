(* Integer tuple sets with UFS constraints: iteration spaces and data
   spaces of the Kelly-Pugh framework. A set is a union of conjuncts
   over shared tuple variables. *)

type conjunct = {
  exists : string list;
  constrs : Constr.t list;
}

type t = {
  vars : string list;
  conjuncts : conjunct list;
}

let arity s = List.length s.vars
let vars s = s.vars
let conjuncts s = s.conjuncts

let invalid fmt = Fmt.kstr invalid_arg fmt

(* Variables that are neither tuple variables nor existentials are
   symbolic constants, as in the Omega notation. *)
let make ~vars ?(exists = []) ?(constrs = []) () =
  { vars; conjuncts = [ { exists; constrs } ] }

let universe vars = make ~vars ()
let empty ~vars = { vars; conjuncts = [] }
let is_empty s = s.conjuncts = []

let rename_vars names s =
  if List.length names <> arity s then invalid "Set.rename_vars: arity";
  let table = List.combine s.vars names in
  let f x = match List.assoc_opt x table with Some y -> y | None -> x in
  {
    vars = names;
    conjuncts =
      List.map
        (fun c -> { c with constrs = List.map (Constr.rename f) c.constrs })
        s.conjuncts;
  }

let union s1 s2 =
  if arity s1 <> arity s2 then invalid "Set.union: arity mismatch";
  let s2 = rename_vars s1.vars s2 in
  { s1 with conjuncts = s1.conjuncts @ s2.conjuncts }

let union_all = function
  | [] -> invalid "Set.union_all: empty"
  | s :: rest -> List.fold_left union s rest

let intersect s1 s2 =
  if arity s1 <> arity s2 then invalid "Set.intersect: arity mismatch";
  let s2 = rename_vars s1.vars s2 in
  let combine c1 c2 =
    let c2' =
      let renaming = List.map (fun e -> (e, Fresh.var ~hint:"w" ())) c2.exists in
      let f x =
        match List.assoc_opt x renaming with Some y -> y | None -> x
      in
      {
        exists = List.map snd renaming;
        constrs = List.map (Constr.rename f) c2.constrs;
      }
    in
    { exists = c1.exists @ c2'.exists; constrs = c1.constrs @ c2'.constrs }
  in
  {
    s1 with
    conjuncts =
      List.concat_map (fun c1 -> List.map (combine c1) s2.conjuncts) s1.conjuncts;
  }

let simplify ?(env = Ufs_env.empty) s =
  let simplify_conjunct c =
    let rec eliminate c =
      let try_var v =
        match Solve.solve_in_constrs env c.constrs v with
        | Some (sln, remaining) ->
          Some
            {
              exists = List.filter (fun e -> not (String.equal e v)) c.exists;
              constrs = List.map (Constr.subst v sln) remaining;
            }
        | None -> None
      in
      match List.find_map try_var c.exists with
      | Some c' -> eliminate c'
      | None -> c
    in
    let c = eliminate c in
    let constrs = List.filter (fun k -> Constr.truth k <> `True) c.constrs in
    if List.exists (fun k -> Constr.truth k = `False) constrs then None
    else
      Some
        {
          c with
          constrs =
            List.sort_uniq Constr.compare (List.map Constr.normalize constrs);
        }
  in
  { s with conjuncts = List.filter_map simplify_conjunct s.conjuncts }

(* Membership test for exists-free conjuncts. *)
let mem ?(interp = fun f _ -> invalid "Set.mem: uninterpreted %s" f) s tuple =
  if List.length tuple <> arity s then invalid "Set.mem: tuple arity";
  let bindings = List.combine s.vars tuple in
  let env x =
    match List.assoc_opt x bindings with
    | Some v -> v
    | None -> raise Not_found
  in
  List.exists
    (fun c ->
      if c.exists <> [] then invalid "Set.mem: existentials; simplify first";
      List.for_all (Constr.eval ~env ~interp) c.constrs)
    s.conjuncts

(* Raw constructor used by the relation operations (domain, range,
   image) that build sets. *)
let of_conjuncts ~vars conjuncts = { vars; conjuncts }

(* Enumerate the tuples of a set within inclusive per-dimension bounds;
   intended for small test instances. *)
let enumerate ?interp ~bounds s =
  if List.length bounds <> arity s then invalid "Set.enumerate: bounds arity";
  let rec go acc prefix = function
    | [] ->
      let tuple = List.rev prefix in
      if mem ?interp s tuple then tuple :: acc else acc
    | (lo, hi) :: rest ->
      let acc = ref acc in
      for v = lo to hi do
        acc := go !acc (v :: prefix) rest
      done;
      !acc
  in
  List.rev (go [] [] bounds)

let pp_conjunct vars ppf c =
  Fmt.pf ppf "{[%a]" Fmt.(list ~sep:(any ", ") string) vars;
  (match c.exists, c.constrs with
  | [], [] -> ()
  | [], cs -> Fmt.pf ppf " : %a" Fmt.(list ~sep:(any " && ") Constr.pp) cs
  | es, cs ->
    Fmt.pf ppf " : exists(%a : %a)"
      Fmt.(list ~sep:(any ", ") string)
      es
      Fmt.(list ~sep:(any " && ") Constr.pp)
      cs);
  Fmt.pf ppf "}"

let pp ppf s =
  match s.conjuncts with
  | [] -> Fmt.pf ppf "{[%a] : false}" Fmt.(list ~sep:(any ", ") string) s.vars
  | cs -> Fmt.(list ~sep:(any " union ") (pp_conjunct s.vars)) ppf cs

let to_string s = Fmt.str "%a" pp s
