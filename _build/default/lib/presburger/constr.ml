(* Atomic Presburger constraints over terms: equalities [t = 0] and
   inequalities [t >= 0]. *)

type t =
  | Eq of Term.t  (* t = 0 *)
  | Geq of Term.t (* t >= 0 *)

let eq lhs rhs = Eq (Term.sub lhs rhs)
let geq lhs rhs = Geq (Term.sub lhs rhs)
let leq lhs rhs = Geq (Term.sub rhs lhs)
let lt lhs rhs = Geq (Term.sub (Term.sub rhs lhs) (Term.const 1))
let gt lhs rhs = lt rhs lhs

let term = function Eq t | Geq t -> t

let compare c1 c2 =
  match c1, c2 with
  | Eq t1, Eq t2 | Geq t1, Geq t2 -> Term.compare t1 t2
  | Eq _, Geq _ -> -1
  | Geq _, Eq _ -> 1

let equal c1 c2 = compare c1 c2 = 0

let map f = function
  | Eq t -> Eq (f t)
  | Geq t -> Geq (f t)

let subst x by c = map (Term.subst x by) c
let rename f c = map (Term.rename f) c
let vars c = Term.vars (term c)
let mem_var x c = Term.mem_var x (term c)

(* Trivial truth-value of a constraint, if decidable syntactically. *)
let truth = function
  | Eq t -> (
    match Term.to_const t with
    | Some 0 -> `True
    | Some _ -> `False
    | None -> `Unknown)
  | Geq t -> (
    match Term.to_const t with
    | Some c when c >= 0 -> `True
    | Some _ -> `False
    | None -> `Unknown)

(* Normalize an equality by the sign of its leading coefficient so that
   [x - y = 0] and [y - x = 0] compare equal. *)
let normalize = function
  | Eq t -> (
    match (t : Term.t).coeffs with
    | (_, c) :: _ when c < 0 -> Eq (Term.neg t)
    | _ -> Eq t)
  | Geq _ as c -> c

let eval ~env ~interp = function
  | Eq t -> Term.eval ~env ~interp t = 0
  | Geq t -> Term.eval ~env ~interp t >= 0

(* Pretty-print in the paper's style: an equality [t = 0] is shown as
   [lhs = rhs] with the negative part moved to the right-hand side. *)
let split_sides t =
  let pos, neg =
    List.partition (fun (_, c) -> c > 0) (t : Term.t).coeffs
  in
  let lhs = Term.make (max (t : Term.t).const 0) pos in
  let rhs =
    Term.make
      (if (t : Term.t).const < 0 then -(t : Term.t).const else 0)
      (List.map (fun (a, c) -> (a, -c)) neg)
  in
  (lhs, rhs)

let pp ppf c =
  let op = match c with Eq _ -> "=" | Geq _ -> ">=" in
  let lhs, rhs = split_sides (term c) in
  Fmt.pf ppf "%a %s %a" Term.pp lhs op Term.pp rhs

let to_string c = Fmt.str "%a" pp c
