(* Solving equalities for a chosen variable, with UFS inversion.

   Given an equality [t = 0] and a target variable [v], [solve env t v]
   attempts to rewrite the equality into [v = s] where [s] does not
   mention [v]. Besides ordinary affine rearrangement, it can peel one
   single-argument UFS application at a time using inverses registered
   in the {!Ufs_env}: from [y - f(e) = 0] it derives [f_inv(y) - e = 0]
   and recurses into [e]. This is exactly the algebra the paper uses to
   build composed inspectors (e.g. recovering [j] from [j1 = lg(j)] via
   [delta_lg_inv]). *)

(* Count occurrences of [v] as a top-level Var atom and the list of
   top-level UFS atoms (with coefficients) whose arguments mention [v]. *)
let analyze v (t : Term.t) =
  let var_coeff = ref 0 in
  let ufs_with_v = ref [] in
  List.iter
    (fun ((a : Term.atom), c) ->
      match a with
      | Term.Var x -> if String.equal x v then var_coeff := c
      | Term.Ufs (f, args) ->
        if List.exists (Term.mem_var v) args then
          ufs_with_v := (f, args, c) :: !ufs_with_v)
    t.Term.coeffs;
  (!var_coeff, List.rev !ufs_with_v)

let remove_atom atom (t : Term.t) =
  Term.make t.Term.const
    (List.filter (fun (a, _) -> not (Term.equal_atom a atom)) t.Term.coeffs)

let rec solve env (t : Term.t) v =
  match analyze v t with
  | c, [] when (c = 1 || c = -1) ->
    (* t = c*v + rest = 0  ==>  v = -rest/c *)
    let rest = remove_atom (Term.Var v) t in
    Some (Term.scale (-c) rest)
  | 0, [ (f, [ arg ], c) ] when c = 1 || c = -1 -> (
    (* t = c*f(arg) + rest = 0 with v only inside arg:
       f(arg) = -rest/c, hence arg = f_inv(-rest/c) if f is bijective. *)
    match Ufs_env.inverse f env with
    | None -> None
    | Some f_inv ->
      let rest = remove_atom (Term.Ufs (f, [ arg ])) t in
      let rhs = Term.ufs f_inv [ Term.scale (-c) rest ] in
      solve env (Term.sub arg rhs) v)
  | _ -> None

(* Try to solve any of the equalities in [constrs] for [v]; returns the
   solution and the remaining constraints. *)
let solve_in_constrs env constrs v =
  let rec go acc = function
    | [] -> None
    | (Constr.Eq t as c) :: rest -> (
      match solve env t v with
      | Some s when not (Term.mem_var v s) ->
        Some (s, List.rev_append acc rest)
      | _ -> go (c :: acc) rest)
    | c :: rest -> go (c :: acc) rest
  in
  go [] constrs
