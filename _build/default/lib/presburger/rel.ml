(* Integer tuple relations with uninterpreted function symbols.

   A relation is a finite union of [disjunct]s sharing one list of input
   tuple variables. Each disjunct gives the output tuple as a list of
   terms over the input variables and local existentials, constrained by
   a conjunction of affine/UFS constraints:

     { [in_vars] -> [out_tuple] : exists(exists : constrs) }

   This "functional-form" representation makes composition a
   substitution, which is the operation the paper's framework leans on:
   the effect of a data reordering R on a data mapping M is [R . M], and
   the effect of an iteration reordering T on dependences D is
   [T . D . T^-1]. Non-functional relations (dependences) are still
   expressible by using existentials in the output tuple. *)

type disjunct = {
  exists : string list;
  out_tuple : Term.t list;
  constrs : Constr.t list;
}

type t = {
  in_vars : string list;
  out_arity : int;
  disjuncts : disjunct list;
}

let in_arity r = List.length r.in_vars
let out_arity r = r.out_arity
let in_vars r = r.in_vars
let disjuncts r = r.disjuncts

let invalid fmt = Fmt.kstr invalid_arg fmt

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

(* Variables that are neither inputs nor existentials are symbolic
   constants (e.g. n_nodes, n_steps), as in the Omega notation. *)
let make ~in_vars ~out_tuple ?(exists = []) ?(constrs = []) () =
  let d = { exists; out_tuple; constrs } in
  { in_vars; out_arity = List.length out_tuple; disjuncts = [ d ] }

(* The identity relation on [n]-tuples with canonical variable names. *)
let identity ?(prefix = "x") n =
  let vars = List.init n (fun i -> Printf.sprintf "%s%d" prefix i) in
  make ~in_vars:vars ~out_tuple:(List.map Term.var vars) ()

let empty ~in_vars ~out_arity = { in_vars; out_arity; disjuncts = [] }

let is_empty r = r.disjuncts = []

(* A relation is functional in form when no disjunct uses existentials:
   each output tuple is then a direct function of the inputs. *)
let is_functional r = List.for_all (fun d -> d.exists = []) r.disjuncts

(* ------------------------------------------------------------------ *)
(* Renaming and substitution                                           *)

let freshen_disjunct d =
  let renaming =
    List.map (fun e -> (e, Fresh.var ~hint:"u" ())) d.exists
  in
  let f x = match List.assoc_opt x renaming with Some y -> y | None -> x in
  {
    exists = List.map snd renaming;
    out_tuple = List.map (Term.rename f) d.out_tuple;
    constrs = List.map (Constr.rename f) d.constrs;
  }

(* Substitute terms for the input variables of a disjunct. Existentials
   are freshened first so they cannot capture variables of [bindings]. *)
let subst_in_disjunct bindings d =
  let d = freshen_disjunct d in
  {
    d with
    out_tuple = List.map (Term.subst_all bindings) d.out_tuple;
    constrs = List.map (fun c -> Constr.map (Term.subst_all bindings) c) d.constrs;
  }

(* [rename_in_vars names r] re-expresses [r] over input variables
   [names]. *)
let rename_in_vars names r =
  if List.length names <> in_arity r then
    invalid "Rel.rename_in_vars: arity mismatch";
  let bindings = List.map2 (fun old nw -> (old, Term.var nw)) r.in_vars names in
  {
    r with
    in_vars = names;
    disjuncts = List.map (subst_in_disjunct bindings) r.disjuncts;
  }

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)

(* Eliminate existentials that are determined by equalities (possibly
   through UFS inversion), drop trivially-true constraints, and drop
   disjuncts containing a trivially-false constraint. *)
let simplify_disjunct env d =
  let rec eliminate d =
    let try_var v =
      match Solve.solve_in_constrs env d.constrs v with
      | Some (s, remaining) ->
        Some
          {
            exists = List.filter (fun e -> not (String.equal e v)) d.exists;
            out_tuple = List.map (Term.subst v s) d.out_tuple;
            constrs = List.map (Constr.subst v s) remaining;
          }
      | None -> None
    in
    match List.find_map try_var d.exists with
    | Some d' -> eliminate d'
    | None -> d
  in
  let d = eliminate d in
  (* Cancel bijections composed with their inverses. *)
  let collapse = Term.collapse_inverses ~inverse:(fun f -> Ufs_env.inverse f env) in
  let d =
    {
      d with
      out_tuple = List.map collapse d.out_tuple;
      constrs = List.map (Constr.map collapse) d.constrs;
    }
  in
  let constrs =
    List.filter (fun c -> Constr.truth c <> `True) d.constrs
  in
  if List.exists (fun c -> Constr.truth c = `False) constrs then None
  else
    let constrs =
      List.sort_uniq Constr.compare (List.map Constr.normalize constrs)
    in
    (* Drop existentials that no longer occur anywhere. *)
    let used v =
      List.exists (Term.mem_var v) d.out_tuple
      || List.exists (Constr.mem_var v) constrs
    in
    Some { d with constrs; exists = List.filter used d.exists }

let simplify ?(env = Ufs_env.empty) r =
  { r with disjuncts = List.filter_map (simplify_disjunct env) r.disjuncts }

(* ------------------------------------------------------------------ *)
(* Algebra                                                             *)

let union r1 r2 =
  if in_arity r1 <> in_arity r2 || r1.out_arity <> r2.out_arity then
    invalid "Rel.union: arity mismatch (%dx%d vs %dx%d)" (in_arity r1)
      r1.out_arity (in_arity r2) r2.out_arity;
  let r2 = rename_in_vars r1.in_vars r2 in
  { r1 with disjuncts = r1.disjuncts @ r2.disjuncts }

let union_all = function
  | [] -> invalid "Rel.union_all: empty list"
  | r :: rest -> List.fold_left union r rest

(* [compose ?env r2 r1] is [r2 . r1]: apply [r1] first. Since output
   tuples are explicit terms, composition substitutes [r1]'s output
   tuple for [r2]'s input variables, pairwise over disjuncts. *)
let compose ?(env = Ufs_env.empty) r2 r1 =
  if r1.out_arity <> in_arity r2 then
    invalid "Rel.compose: r1 out arity %d <> r2 in arity %d" r1.out_arity
      (in_arity r2);
  let combine d1 d2 =
    let bindings = List.map2 (fun v t -> (v, t)) r2.in_vars d1.out_tuple in
    let d2 = subst_in_disjunct bindings d2 in
    {
      exists = d1.exists @ d2.exists;
      out_tuple = d2.out_tuple;
      constrs = d1.constrs @ d2.constrs;
    }
  in
  let disjuncts =
    List.concat_map
      (fun d1 -> List.map (combine d1) r2.disjuncts)
      r1.disjuncts
  in
  simplify ~env { in_vars = r1.in_vars; out_arity = r2.out_arity; disjuncts }

(* [inverse ?env r] swaps domain and range. For each disjunct, the old
   input variables become existentials related to the new inputs by
   [y_k = out_tuple_k]; simplification then eliminates what it can by
   solving (using registered UFS inverses). *)
let inverse ?(env = Ufs_env.empty) ?(prefix = "y") r =
  let new_in = List.init r.out_arity (fun i -> Printf.sprintf "%s%d" prefix i) in
  let invert_one d =
    (* Freshen old in_vars to avoid clashing with the new input names. *)
    let renaming = List.map (fun v -> (v, Fresh.var ~hint:"v" ())) r.in_vars in
    let f x = match List.assoc_opt x renaming with Some y -> y | None -> x in
    let old_out = List.map (Term.rename f) d.out_tuple in
    let old_constrs = List.map (Constr.rename f) d.constrs in
    let link =
      List.map2 (fun y t -> Constr.eq (Term.var y) t) new_in old_out
    in
    {
      exists = List.map snd renaming @ d.exists;
      out_tuple = List.map (fun (_, v) -> Term.var v) renaming;
      constrs = link @ old_constrs;
    }
  in
  simplify ~env
    {
      in_vars = new_in;
      out_arity = in_arity r;
      disjuncts = List.map invert_one r.disjuncts;
    }

(* ------------------------------------------------------------------ *)
(* Domain and range                                                    *)

(* The domain as a set: the input tuples for which some disjunct's
   constraints are satisfiable. Output-tuple variables and existentials
   become the set conjunct's existentials. *)
let domain r =
  let conjunct_of (d : disjunct) =
    let d = freshen_disjunct d in
    (* Variables appearing only in the out tuple must stay bound:
       introduce them as existentials via equalities out_i = t_i with
       fresh names, then drop the trivially-satisfiable ones. Since
       out-tuple terms are plain terms, the out tuple itself imposes no
       constraint; only [d.constrs] restrict the domain. *)
    { Set_.exists = d.exists; constrs = d.constrs }
  in
  Set_.of_conjuncts ~vars:r.in_vars (List.map conjunct_of r.disjuncts)

(* The range as a set over fresh variables [prefix]0.. *)
let range ?(env = Ufs_env.empty) ?(prefix = "z") r =
  let vars = List.init r.out_arity (fun i -> Printf.sprintf "%s%d" prefix i) in
  let conjunct_of (d : disjunct) =
    let renaming = List.map (fun v -> (v, Fresh.var ~hint:"r" ())) r.in_vars in
    let f x = match List.assoc_opt x renaming with Some y -> y | None -> x in
    let link =
      List.map2
        (fun z t -> Constr.eq (Term.var z) (Term.rename f t))
        vars d.out_tuple
    in
    {
      Set_.exists = List.map snd renaming @ d.exists;
      constrs = link @ List.map (Constr.rename f) d.constrs;
    }
  in
  Set_.simplify ~env
    (Set_.of_conjuncts ~vars (List.map conjunct_of r.disjuncts))

(* [image ?env r s] is the image of set [s] under [r]: fresh output
   variables are linked to the relation's output tuple by equalities,
   the old tuple variables become existentials. *)
let image ?(env = Ufs_env.empty) r s =
  if in_arity r <> Set_.arity s then invalid "Rel.image: arity mismatch";
  let r = rename_in_vars (Set_.vars s) r in
  let out_vars = List.init r.out_arity (fun i -> Printf.sprintf "z%d" i) in
  let combine (c : Set_.conjunct) (d : disjunct) =
    let renaming =
      List.map (fun v -> (v, Fresh.var ~hint:"p" ())) (Set_.vars s)
    in
    let f x = match List.assoc_opt x renaming with Some y -> y | None -> x in
    let link =
      List.map2
        (fun z t -> Constr.eq (Term.var z) (Term.rename f t))
        out_vars d.out_tuple
    in
    {
      Set_.exists = List.map snd renaming @ c.Set_.exists @ d.exists;
      constrs =
        link
        @ List.map (Constr.rename f) c.Set_.constrs
        @ List.map (Constr.rename f) d.constrs;
    }
  in
  Set_.simplify ~env
    (Set_.of_conjuncts ~vars:out_vars
       (List.concat_map
          (fun c -> List.map (combine c) r.disjuncts)
          (Set_.conjuncts s)))

(* Restrict the domain to a set (of matching arity). *)
let restrict_domain r s =
  if Set_.arity s <> in_arity r then invalid "Rel.restrict_domain: arity";
  let s = Set_.rename_vars r.in_vars s in
  let combine (d : disjunct) (c : Set_.conjunct) =
    let c_exists = List.map (fun e -> (e, Fresh.var ~hint:"s" ())) c.Set_.exists in
    let f x = match List.assoc_opt x c_exists with Some y -> y | None -> x in
    {
      d with
      exists = d.exists @ List.map snd c_exists;
      constrs = d.constrs @ List.map (Constr.rename f) c.Set_.constrs;
    }
  in
  {
    r with
    disjuncts =
      List.concat_map
        (fun d -> List.map (combine d) (Set_.conjuncts s))
        r.disjuncts;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation (for testing and run-time legality checks)               *)

(* Evaluate a functional disjunct on a concrete input tuple. Returns
   [None] when a constraint is violated. Only exists-free disjuncts can
   be evaluated directly. *)
let eval_disjunct ~interp in_vars d tuple =
  if d.exists <> [] then
    invalid "Rel.eval: disjunct has existentials; simplify first";
  let bindings = List.combine in_vars tuple in
  let env x =
    match List.assoc_opt x bindings with
    | Some v -> v
    | None -> raise Not_found
  in
  if List.for_all (Constr.eval ~env ~interp) d.constrs then
    Some (List.map (Term.eval ~env ~interp) d.out_tuple)
  else None

(* [eval ~interp r tuple] returns every output tuple produced by some
   disjunct of [r] on [tuple]. *)
let eval ?(interp = fun f _ -> invalid "Rel.eval: uninterpreted %s" f) r tuple
    =
  if List.length tuple <> in_arity r then
    invalid "Rel.eval: tuple arity mismatch";
  List.filter_map (fun d -> eval_disjunct ~interp r.in_vars d tuple) r.disjuncts

(* [eval_fn] for relations expected to be total functions: exactly one
   disjunct must fire. *)
let eval_fn ?interp r tuple =
  match eval ?interp r tuple with
  | [ out ] -> out
  | [] -> invalid "Rel.eval_fn: no disjunct applies"
  | _ -> invalid "Rel.eval_fn: multiple disjuncts apply"

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let ufs_names r =
  let from_disjunct d =
    List.fold_left Term.ufs_names
      (List.fold_left
         (fun acc c -> Term.ufs_names acc (Constr.term c))
         [] d.constrs)
      d.out_tuple
  in
  List.sort_uniq String.compare (List.concat_map from_disjunct r.disjuncts)

let equal r1 r2 =
  in_arity r1 = in_arity r2
  && r1.out_arity = r2.out_arity
  &&
  let r2 = rename_in_vars r1.in_vars r2 in
  let norm d =
    (d.out_tuple, List.sort Constr.compare d.constrs, List.length d.exists)
  in
  let ds1 = List.map norm r1.disjuncts and ds2 = List.map norm r2.disjuncts in
  List.length ds1 = List.length ds2
  && List.for_all
       (fun d1 ->
         List.exists
           (fun d2 ->
             let t1, c1, e1 = d1 and t2, c2, e2 = d2 in
             e1 = e2
             && List.for_all2 Term.equal t1 t2
             && List.length c1 = List.length c2
             && List.for_all2 Constr.equal c1 c2)
           ds2)
       ds1

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_tuple ppf terms =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") Term.pp) terms

let pp_disjunct in_vars ppf d =
  let pp_body ppf () =
    Fmt.pf ppf "[%a] -> %a"
      Fmt.(list ~sep:(any ", ") string)
      in_vars pp_tuple d.out_tuple;
    match d.exists, d.constrs with
    | [], [] -> ()
    | [], cs -> Fmt.pf ppf " : %a" Fmt.(list ~sep:(any " && ") Constr.pp) cs
    | es, cs ->
      Fmt.pf ppf " : exists(%a : %a)"
        Fmt.(list ~sep:(any ", ") string)
        es
        Fmt.(list ~sep:(any " && ") Constr.pp)
        cs
  in
  Fmt.pf ppf "{%a}" pp_body ()

let pp ppf r =
  match r.disjuncts with
  | [] ->
    Fmt.pf ppf "{[%a] -> [] : false}"
      Fmt.(list ~sep:(any ", ") string)
      r.in_vars
  | ds ->
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:(any " union ") (pp_disjunct r.in_vars))
      ds

let to_string r = Fmt.str "%a" pp r
