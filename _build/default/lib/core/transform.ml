(* Compile-time descriptions of run-time reordering transformations
   (Section 4). A plan is a list of these; the composed inspector
   (see {!Inspector}) realizes them at run time, and {!Symbolic}
   computes their abstract effect on data mappings and dependences. *)

type data_algorithm =
  | Cpack
  | Gpart of { part_size : int }
  | Multilevel of { part_size : int } (* METIS-style partitioner *)
  | Rcm
  | Tile_pack (* requires an earlier sparse tiling in the plan *)

type iter_algorithm =
  | Lexgroup
  | Lexsort
  | Bucket_tile of { bucket_size : int }

type tile_growth =
  | Full        (* full sparse tiling: seed anywhere, min/max growth *)
  | Cache_block (* cache blocking: seed on loop 0, shrink forward *)

type seed_partition =
  | Seed_block of { part_size : int }
  | Seed_gpart of { part_size : int }

type t =
  | Data_reorder of data_algorithm
  | Iter_reorder of iter_algorithm
  | Sparse_tile of {
      growth : tile_growth;
      seed : seed_partition;
    }

let data_algorithm_name = function
  | Cpack -> "cpack"
  | Gpart _ -> "gpart"
  | Multilevel _ -> "multilevel"
  | Rcm -> "rcm"
  | Tile_pack -> "tilepack"

let iter_algorithm_name = function
  | Lexgroup -> "lexgroup"
  | Lexsort -> "lexsort"
  | Bucket_tile _ -> "buckettile"

let name = function
  | Data_reorder a -> data_algorithm_name a
  | Iter_reorder a -> iter_algorithm_name a
  | Sparse_tile { growth = Full; _ } -> "fst"
  | Sparse_tile { growth = Cache_block; _ } -> "cacheblock"

(* Does this transformation reorder data (hence require a data remap)? *)
let is_data_reorder = function Data_reorder _ -> true | _ -> false

let pp ppf t =
  match t with
  | Data_reorder (Gpart { part_size }) -> Fmt.pf ppf "gpart(%d)" part_size
  | Data_reorder (Multilevel { part_size }) ->
    Fmt.pf ppf "multilevel(%d)" part_size
  | Iter_reorder (Bucket_tile { bucket_size }) ->
    Fmt.pf ppf "buckettile(%d)" bucket_size
  | Sparse_tile { growth; seed } ->
    let seed_s =
      match seed with
      | Seed_block { part_size } -> Fmt.str "block(%d)" part_size
      | Seed_gpart { part_size } -> Fmt.str "gpart(%d)" part_size
    in
    Fmt.pf ppf "%s[seed=%s]"
      (match growth with Full -> "fst" | Cache_block -> "cacheblock")
      seed_s
  | _ -> Fmt.string ppf (name t)
