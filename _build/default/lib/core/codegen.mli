(** Pseudo-code generation for composed inspectors and executors
    (Figures 10-15), derived mechanically from the symbolic state: the
    compile-time data mappings carry exactly the subscript chains a
    specialized inspector traverses (the paper's "automatic generation
    of specialized run-time inspectors" future work). Output is C-like
    pseudo-code for inspection, not compiled. *)

(** Render a term as a subscript chain: [sigma_cp(left(j))] becomes
    ["sigma_cp[left[j]]"]. *)
val subscript : Presburger.Term.t -> string

(** The subscript expressions of the loop at statement position [pos]
    in a data mapping, with the iteration variable renamed to [iv]. *)
val mapping_subscripts :
  pos:int -> iv:string -> Presburger.Rel.t -> string list

(** A specialized CPACK inspector (Figure 10/12 shape) traversing the
    given data mapping. *)
val cpack_inspector :
  instance:string -> program:Symbolic.program -> Presburger.Rel.t -> string

(** A specialized lexGroup inspector note. *)
val lexgroup_inspector :
  instance:string -> program:Symbolic.program -> Presburger.Rel.t -> string

(** The composed inspector driver (Figure 11 shape): one call per
    transformation, one final remap. *)
val composed_inspector : Symbolic.state -> string

(** The executor (Figure 13 plain / Figure 14 tiled shape). *)
val executor : Symbolic.state -> program:Symbolic.program -> string

(** Specialized inspectors for every step, the composed driver, and
    the executor. *)
val full_report : Symbolic.state -> program:Symbolic.program -> string
