(** Compile-time composition of run-time reorderings (Sections 4-5):
    folding a plan over a Kelly-Pugh program description while
    maintaining the data mapping [M], composed iteration reordering
    [T], composed data reordering [R], and the dependences [D]. *)

(** How a loop reaches the shared node data space. *)
type access_desc =
  | Direct            (** location = loop index (identity-mapped) *)
  | Indexed of string (** through an index-array UFS, e.g. [left] *)

type loop_desc = {
  index : string;
  position : int; (** 1-based statement position *)
  size : string;  (** symbolic trip count *)
  accesses : access_desc list;
  reduction_only : bool;
      (** loop-carried dependences are reductions, so dependence-free
          iteration reorderings are legal (Section 4, footnote 3) *)
}

type program = {
  name : string;
  loops : loop_desc list;
  data_space : string;
  deps : (string * Presburger.Rel.t) list;
}

(** One record per applied transformation. *)
type step = {
  transform : Transform.t;
  fn_name : string;           (** the reordering UFS introduced *)
  relation : Presburger.Rel.t; (** its [R] or [T] *)
  data_map : Presburger.Rel.t; (** [M] after the step *)
  legality : string;
}

type state

(** The initial data mapping [M_{I0 -> data0}] of a program. *)
val initial_data_map : program -> Presburger.Rel.t

(** The interaction loop (the one using index arrays); raises
    [Invalid_argument] if there is none. *)
val indexed_loop : program -> loop_desc

val create : program -> state

(** Fold a plan; raises [Invalid_argument] on illegal applications
    (e.g. lexGroup on a non-reduction loop, two sparse tilings). *)
val apply : state -> Plan.t -> state

val steps : state -> step list
val data_map : state -> Presburger.Rel.t
val t_total : state -> Presburger.Rel.t
val r_total : state -> Presburger.Rel.t
val dependences : state -> (string * Presburger.Rel.t) list
val env : state -> Presburger.Ufs_env.t
val is_tiled : state -> bool

(** The simplified moldyn program of Figure 1 / Section 3. *)
val moldyn_program : program

val nbf_program : program
val irreg_program : program
val program_by_name : string -> program option

val pp_step : step Fmt.t

(** The full Section 5-style report: every step with its relation and
    updated [M], the composed [R]/[T], and the final dependences. *)
val pp_report : state Fmt.t
