(** Run-time verification that inspector-generated reordering functions
    respect every dependence of the transformed program. *)

(** Rebuild per-loop tile functions from a schedule (inverse of
    {!Reorder.Schedule.of_tile_fns}). *)
val tile_fns_of_schedule :
  Reorder.Schedule.t ->
  loop_sizes:int array ->
  Reorder.Sparse_tile.tile_fn array

(** Coverage + dependence-order check of a tiled executor against the
    final kernel's chain. *)
val check_tiled :
  Kernels.Kernel.t -> Reorder.Schedule.t -> (unit, string) result

(** Bijectivity/size sanity of the composed reordering functions. *)
val check_plain : Inspector.result -> (unit, string) result

(** Full verification of an inspector result. *)
val check : Inspector.result -> (unit, string) result
