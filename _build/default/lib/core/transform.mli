(** Compile-time descriptions of run-time reordering transformations
    (Section 4). *)

(** Data reorderings (relocate storage; always legal). *)
type data_algorithm =
  | Cpack              (** consecutive packing, Ding & Kennedy *)
  | Gpart of { part_size : int }
      (** graph-partitioned reordering, Han & Tseng *)
  | Multilevel of { part_size : int }
      (** METIS-style multilevel partitioned reordering *)
  | Rcm                (** reverse Cuthill-McKee *)
  | Tile_pack
      (** pack data by sparse-tile access order; requires an earlier
          sparse tiling in the plan *)

(** Iteration reorderings over dependence-free (reduction) subspaces. *)
type iter_algorithm =
  | Lexgroup                            (** lexicographical grouping *)
  | Lexsort                             (** lexicographical sorting *)
  | Bucket_tile of { bucket_size : int } (** bucket tiling *)

type tile_growth =
  | Full        (** full sparse tiling: seed anywhere, min/max growth *)
  | Cache_block (** cache blocking: seed on loop 0, shrink forward *)

type seed_partition =
  | Seed_block of { part_size : int }
  | Seed_gpart of { part_size : int }

type t =
  | Data_reorder of data_algorithm
  | Iter_reorder of iter_algorithm
  | Sparse_tile of {
      growth : tile_growth;
      seed : seed_partition;
    }

val data_algorithm_name : data_algorithm -> string
val iter_algorithm_name : iter_algorithm -> string
val name : t -> string

(** Does this transformation relocate data (and hence require a data
    remap pass)? *)
val is_data_reorder : t -> bool

val pp : t Fmt.t
