(* Compile-time composition of run-time reorderings (Sections 4-5).

   A [program] describes the unified iteration space of a benchmark in
   the Kelly-Pugh style: each loop contributes a [s, pos, iv, q]
   subspace ([s] the time step, [pos] the loop's statement position,
   [iv] the index value, [q] the statement within the loop body), and
   accesses one shared node data space either directly ([iv] itself)
   or through index arrays modeled as uninterpreted function symbols.

   [apply] folds a plan over the program, maintaining
     - M   : the current data mapping  M_{Ik -> data_k},
     - T   : the composed iteration reordering T_{I0 -> Ik},
     - R   : the composed data reordering  R_{d0 -> dk},
     - D   : the current dependences (one relation per named set),
   exactly as Section 5 does by hand for moldyn:
     a data reordering R updates M to R . M (and reorders
     identity-mapped loops), an iteration reordering T updates M to
     M . T^-1 and D to T . D . T^-1, and sparse tiling prepends a tile
     dimension computed by the (run-time) tile function theta. *)

open Presburger

type access_desc =
  | Direct                (* data location = loop index (i, k loops) *)
  | Indexed of string     (* through an index array UFS (left, right) *)

type loop_desc = {
  index : string;
  position : int;     (* 1-based statement position of the loop *)
  size : string;      (* symbolic trip count, e.g. "n_nodes" *)
  accesses : access_desc list;
  reduction_only : bool;
      (* loop-carried dependences within this loop are all reductions,
         so dependence-free iteration reorderings are legal on it *)
}

type program = {
  name : string;
  loops : loop_desc list;
  data_space : string;
  deps : (string * Rel.t) list; (* named dependence relations on I0 *)
}

(* One record per applied transformation, for reports and tests. *)
type step = {
  transform : Transform.t;
  fn_name : string;       (* the reordering function introduced *)
  relation : Rel.t;       (* its R_{d->d'} or T_{I->I'} *)
  data_map : Rel.t;       (* M after this step *)
  legality : string;      (* why this application is legal *)
}

type state = {
  program : program;
  env : Ufs_env.t;
  tiled : bool;
  data_map : Rel.t;
  t_total : Rel.t;
  r_total : Rel.t;
  deps : (string * Rel.t) list;
  steps : step list;
  counters : (string * int) list;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

(* The interaction loop: the one using index arrays. *)
let indexed_loop program =
  match
    List.find_opt
      (fun l -> List.exists (function Indexed _ -> true | Direct -> false) l.accesses)
      program.loops
  with
  | Some l -> l
  | None -> invalid "Symbolic: program %s has no indexed loop" program.name

(* ------------------------------------------------------------------ *)
(* Building relations from notation strings                            *)

let rel = Parser.relation

(* Tuple syntax for a loop's subspace, e.g. "s,2,j,q". *)
let in_tuple ~tiled l =
  if tiled then Fmt.str "s,t,%d,%s,q" l.position l.index
  else Fmt.str "s,%d,%s,q" l.position l.index

(* The initial data mapping M_{I0 -> data0}. *)
let initial_data_map program =
  let pieces =
    List.concat_map
      (fun l ->
        List.map
          (fun a ->
            let target =
              match a with
              | Direct -> l.index
              | Indexed f -> Fmt.str "%s(%s)" f l.index
            in
            rel (Fmt.str "{[%s] -> [%s]}" (in_tuple ~tiled:false l) target))
          l.accesses)
      program.loops
  in
  Rel.union_all pieces

let identity_on_space ~tiled program =
  let pieces =
    List.map
      (fun l ->
        rel
          (Fmt.str "{[%s] -> [%s]}" (in_tuple ~tiled l) (in_tuple ~tiled l)))
      program.loops
  in
  Rel.union_all pieces

let create program =
  {
    program;
    env = Ufs_env.empty;
    tiled = false;
    data_map = initial_data_map program;
    t_total = identity_on_space ~tiled:false program;
    r_total = rel "{[m] -> [m]}";
    deps = program.deps;
    steps = [];
    counters = [];
  }

(* Fresh reordering-function names: sigma_cp, sigma_cp2, delta_lg, ... *)
let fresh_fn st base =
  let n = match List.assoc_opt base st.counters with Some n -> n | None -> 0 in
  let counters = (base, n + 1) :: List.remove_assoc base st.counters in
  let name = if n = 0 then base else Fmt.str "%s%d" base (n + 1) in
  (name, counters)

(* ------------------------------------------------------------------ *)
(* Effects of the three transformation kinds                           *)

(* The loop-reordering relation for a data reordering [f]: identity
   loops follow the data reordering (Section 5.2: "the data reordering
   function generated for them can be used for reordering the i and k
   loops as well"); other loops unchanged. *)
let t_of_data_reorder ~tiled program f =
  let pieces =
    List.map
      (fun l ->
        let is_identity =
          List.for_all (function Direct -> true | Indexed _ -> false) l.accesses
          && l.accesses <> []
        in
        let prefix = if tiled then Fmt.str "s,t,%d" l.position else Fmt.str "s,%d" l.position in
        let image =
          if is_identity then Fmt.str "%s,%s(%s),q" prefix f l.index
          else Fmt.str "%s,%s,q" prefix l.index
        in
        rel (Fmt.str "{[%s] -> [%s]}" (in_tuple ~tiled l) image))
      program.loops
  in
  Rel.union_all pieces

let t_of_iter_reorder ~tiled program ~target f =
  let pieces =
    List.map
      (fun l ->
        let prefix = if tiled then Fmt.str "s,t,%d" l.position else Fmt.str "s,%d" l.position in
        let image =
          if String.equal l.index target then
            Fmt.str "%s,%s(%s),q" prefix f l.index
          else Fmt.str "%s,%s,q" prefix l.index
        in
        rel (Fmt.str "{[%s] -> [%s]}" (in_tuple ~tiled l) image))
      program.loops
  in
  Rel.union_all pieces

(* Sparse tiling prepends a tile dimension t = theta(pos, iv) after s
   (Section 5.4's T_{I2->I3}). *)
let t_of_sparse_tile program theta =
  let pieces =
    List.map
      (fun l ->
        rel
          (Fmt.str "{[s,%d,%s,q] -> [s,%s(%d,%s),%d,%s,q]}" l.position l.index
             theta l.position l.index l.position l.index))
      program.loops
  in
  Rel.union_all pieces

(* Apply an iteration reordering T to the state: M := M . T^-1,
   D := T . D . T^-1, T_total := T . T_total. *)
let apply_t st t ~now_tiled =
  let env = st.env in
  let t_inv = Rel.inverse ~env t in
  let data_map = Rel.compose ~env st.data_map t_inv in
  let deps =
    List.map
      (fun (name, d) ->
        (name, Rel.compose ~env (Rel.compose ~env t d) t_inv))
      st.deps
  in
  let t_total = Rel.compose ~env t st.t_total in
  { st with data_map; deps; t_total; tiled = now_tiled }

let apply_transform st (transform : Transform.t) =
  match transform with
  | Transform.Data_reorder alg ->
    let base =
      match alg with
      | Transform.Cpack -> "sigma_cp"
      | Transform.Gpart _ -> "sigma_gp"
      | Transform.Multilevel _ -> "sigma_ml"
      | Transform.Rcm -> "sigma_rcm"
      | Transform.Tile_pack -> "sigma_tp"
    in
    let f, counters = fresh_fn st base in
    let env = Ufs_env.add_bijection f ~inverse:(f ^ "_inv") ~arity:1 st.env in
    let r = rel (Fmt.str "{[m] -> [%s(m)]}" f) in
    let st = { st with env; counters } in
    (* R first reorders the data... *)
    let data_map = Rel.compose ~env r st.data_map in
    let r_total = Rel.compose ~env r st.r_total in
    let st = { st with data_map; r_total } in
    (* ... then identity-mapped loops follow it. *)
    let t = t_of_data_reorder ~tiled:st.tiled st.program f in
    let st = apply_t st t ~now_tiled:st.tiled in
    let step =
      {
        transform;
        fn_name = f;
        relation = r;
        data_map = st.data_map;
        legality = "data reorderings never affect dependences (Section 4)";
      }
    in
    { st with steps = step :: st.steps }
  | Transform.Iter_reorder alg ->
    let target = indexed_loop st.program in
    if not target.reduction_only then
      invalid
        "Symbolic: %s on loop %s is illegal: non-reduction loop-carried \
         dependences"
        (Transform.iter_algorithm_name alg)
        target.index;
    let base =
      match alg with
      | Transform.Lexgroup -> "delta_lg"
      | Transform.Lexsort -> "delta_ls"
      | Transform.Bucket_tile _ -> "delta_bt"
    in
    let f, counters = fresh_fn st base in
    let env = Ufs_env.add_bijection f ~inverse:(f ^ "_inv") ~arity:1 st.env in
    let st = { st with env; counters } in
    let t = t_of_iter_reorder ~tiled:st.tiled st.program ~target:target.index f in
    let st = apply_t st t ~now_tiled:st.tiled in
    let step =
      {
        transform;
        fn_name = f;
        relation = t;
        data_map = st.data_map;
        legality =
          Fmt.str
            "loop-carried dependences of loop %s are reductions, which \
             permit reordering (Section 4, footnote 3)"
            target.index;
      }
    in
    { st with steps = step :: st.steps }
  | Transform.Sparse_tile _ ->
    if st.tiled then invalid "Symbolic: already sparse tiled";
    let theta, counters = fresh_fn st "theta" in
    let env = Ufs_env.add ~arity:2 theta st.env in
    let st = { st with env; counters } in
    let t = t_of_sparse_tile st.program theta in
    let st = apply_t st t ~now_tiled:true in
    let step =
      {
        transform;
        fn_name = theta;
        relation = t;
        data_map = st.data_map;
        legality =
          "tile growth traverses the dependences and assigns tiles \
           satisfying tile(p) <= tile(q) for every dependence p -> q \
           (Section 4); checked at run time by the inspector";
      }
    in
    { st with steps = step :: st.steps }

let apply st plan = List.fold_left apply_transform st (Plan.transforms plan)

let steps st = List.rev st.steps
let data_map st = st.data_map
let t_total st = st.t_total
let r_total st = st.r_total
let dependences st = st.deps
let env st = st.env
let is_tiled st = st.tiled

(* ------------------------------------------------------------------ *)
(* Program descriptions for the three benchmarks                       *)

(* Simplified moldyn of Figure 1: i (S1), j (S2/S3), k (S4). *)
let moldyn_program =
  {
    name = "moldyn";
    loops =
      [
        {
          index = "i";
          position = 1;
          size = "n_nodes";
          accesses = [ Direct ];
          reduction_only = true;
        };
        {
          index = "j";
          position = 2;
          size = "n_inter";
          accesses = [ Indexed "left"; Indexed "right" ];
          reduction_only = true;
        };
        {
          index = "k";
          position = 3;
          size = "n_nodes";
          accesses = [ Direct ];
          reduction_only = true;
        };
      ];
    data_space = "x";
    deps =
      [
        ( "d12+d13",
          rel
            "{[s,1,i,1] -> [sp,2,j,q] : i = left(j) && s <= sp && 1 <= q && q \
             <= 2} union {[s,1,i,1] -> [sp,2,j,q] : i = right(j) && s <= sp \
             && 1 <= q && q <= 2}" );
        ( "d24+d34",
          rel
            "{[s,2,j,q] -> [sp,3,left(j),1] : s <= sp && 1 <= q && q <= 2} \
             union {[s,2,j,q] -> [sp,3,right(j),1] : s <= sp && 1 <= q && q \
             <= 2}" );
      ];
  }

let nbf_program =
  {
    name = "nbf";
    loops =
      [
        {
          index = "i";
          position = 1;
          size = "n_nodes";
          accesses = [ Direct ];
          reduction_only = true;
        };
        {
          index = "j";
          position = 2;
          size = "n_inter";
          accesses = [ Indexed "left"; Indexed "right" ];
          reduction_only = true;
        };
      ];
    data_space = "x";
    deps =
      [
        ( "d12",
          rel
            "{[s,1,i,1] -> [sp,2,j,q] : i = left(j) && s <= sp && 1 <= q && q \
             <= 2} union {[s,1,i,1] -> [sp,2,j,q] : i = right(j) && s <= sp \
             && 1 <= q && q <= 2}" );
      ];
  }

let irreg_program =
  {
    name = "irreg";
    loops =
      [
        {
          index = "j";
          position = 1;
          size = "n_inter";
          accesses = [ Indexed "left"; Indexed "right" ];
          reduction_only = true;
        };
        {
          index = "k";
          position = 2;
          size = "n_nodes";
          accesses = [ Direct ];
          reduction_only = true;
        };
      ];
    data_space = "x";
    deps =
      [
        ( "d12",
          rel
            "{[s,1,j,q] -> [sp,2,left(j),1] : s <= sp && 1 <= q && q <= 2} \
             union {[s,1,j,q] -> [sp,2,right(j),1] : s <= sp && 1 <= q && q \
             <= 2}" );
      ];
  }

let program_by_name = function
  | "moldyn" -> Some moldyn_program
  | "nbf" -> Some nbf_program
  | "irreg" -> Some irreg_program
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let pp_step ppf s =
  Fmt.pf ppf "@[<v2>%a (introduces %s):@,relation: %a@,M: %a@,legal: %s@]"
    Transform.pp s.transform s.fn_name Rel.pp s.relation Rel.pp s.data_map
    s.legality

let pp_report ppf st =
  Fmt.pf ppf "@[<v>program %s@,initial M: %a@,@," st.program.name Rel.pp
    (initial_data_map st.program);
  List.iter (fun s -> Fmt.pf ppf "%a@,@," pp_step s) (List.rev st.steps);
  Fmt.pf ppf "composed R (data): %a@,composed T (iterations): %a@,"
    Rel.pp st.r_total Rel.pp st.t_total;
  List.iter
    (fun (name, d) -> Fmt.pf ppf "dependences %s: %a@," name Rel.pp d)
    st.deps;
  Fmt.pf ppf "@]"
