(* Sparse tiling across the outer time-stepping loop (Section 2.3:
   sparse tiles "cut between loops or across an outer loop"). The
   within-step loop chain is unrolled [depth] times; adjacent steps are
   connected by the kernel's cross-step connectivity (first loop of
   step s+1 depends on the last loop of step s). Tiles grown over this
   unrolled chain execute [depth] whole time steps slab-wise, reusing
   each tile's data across steps — the same temporal blocking the
   Gauss-Seidel kernel applies to its convergence loop, here available
   to all three benchmarks.

   The generalized tiled executors interpret a schedule whose loop
   count is a multiple of the chain length (position c runs the body of
   loop c mod chain-length), so the resulting schedule plugs into the
   ordinary [run_tiled]/[run_tiled_traced] entry points with
   steps = slabs. *)

open Reorder

let invalid fmt = Fmt.kstr invalid_arg fmt

(* The unrolled chain: loop sizes repeated [depth] times; conns are the
   within-step conns plus the wrap conn between copies. *)
let unrolled_chain (kernel : Kernels.Kernel.t) ~depth =
  if depth < 1 then invalid "Timetile: depth %d" depth;
  let access = kernel.Kernels.Kernel.access in
  let base = kernel.Kernels.Kernel.chain_of_access access in
  let wrap = kernel.Kernels.Kernel.wrap_conn_of_access access in
  let l = Array.length base.Sparse_tile.loop_sizes in
  let loop_sizes =
    Array.init (depth * l) (fun c -> base.Sparse_tile.loop_sizes.(c mod l))
  in
  let conn =
    Array.init
      ((depth * l) - 1)
      (fun c ->
        if (c + 1) mod l = 0 then wrap else base.Sparse_tile.conn.(c mod l))
  in
  Sparse_tile.make_chain ~loop_sizes ~conn

type t = {
  schedule : Schedule.t; (* depth * chain-length loops *)
  depth : int;           (* time steps per slab *)
  n_tiles : int;
}

(* Grow tiles over [depth] unrolled time steps from a block seed on the
   interaction loop of the middle step. *)
let tile (kernel : Kernels.Kernel.t) ~depth ~seed_part_size =
  let chain = unrolled_chain kernel ~depth in
  let l = Array.length kernel.Kernels.Kernel.loop_sizes in
  let seed_step = depth / 2 in
  let seed_loop = (seed_step * l) + kernel.Kernels.Kernel.seed_loop in
  let seed_tiles =
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block
         ~n:chain.Sparse_tile.loop_sizes.(seed_loop)
         ~part_size:seed_part_size)
  in
  let tiles = Sparse_tile.full ~chain ~seed:seed_loop ~seed_tiles () in
  (match Sparse_tile.check_legality ~chain ~tiles with
  | [] -> ()
  | (lp, a, b) :: _ ->
    invalid "Timetile: illegal tiling (loop pair %d: %d -> %d)" lp a b);
  let schedule = Schedule.of_tile_fns tiles in
  if
    not
      (Schedule.check_coverage schedule
         ~loop_sizes:chain.Sparse_tile.loop_sizes)
  then invalid "Timetile: schedule does not cover the unrolled chain";
  { schedule; depth; n_tiles = Schedule.n_tiles schedule }

(* Execute [total_steps] time steps as consecutive slabs of [depth]
   (must divide evenly); exactly equivalent to [total_steps] plain
   steps when the tiling is legal. *)
let run (kernel : Kernels.Kernel.t) t ~total_steps =
  if total_steps mod t.depth <> 0 then
    invalid "Timetile.run: %d steps not a multiple of depth %d" total_steps
      t.depth;
  kernel.Kernels.Kernel.run_tiled t.schedule ~steps:(total_steps / t.depth)

let run_traced (kernel : Kernels.Kernel.t) t ~total_steps ~layout ~access =
  if total_steps mod t.depth <> 0 then
    invalid "Timetile.run_traced: steps not a multiple of depth";
  kernel.Kernels.Kernel.run_tiled_traced t.schedule
    ~steps:(total_steps / t.depth) ~layout ~access
