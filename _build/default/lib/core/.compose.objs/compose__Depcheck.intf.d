lib/core/depcheck.mli: Kernels Reorder
