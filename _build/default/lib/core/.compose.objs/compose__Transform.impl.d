lib/core/transform.ml: Fmt
