lib/core/plan.mli: Fmt Transform
