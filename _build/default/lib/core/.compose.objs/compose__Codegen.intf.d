lib/core/codegen.mli: Presburger Symbolic
