lib/core/legality.mli: Inspector Kernels Reorder
