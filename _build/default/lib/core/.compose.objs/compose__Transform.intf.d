lib/core/transform.mli: Fmt
