lib/core/compose.ml: Codegen Depcheck Inspector Legality Plan Symbolic Timetile Transform
