lib/core/depcheck.ml: Access Array Kernels List Reorder
