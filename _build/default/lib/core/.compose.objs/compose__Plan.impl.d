lib/core/plan.ml: Fmt List Transform
