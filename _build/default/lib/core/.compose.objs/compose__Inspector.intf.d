lib/core/inspector.mli: Kernels Plan Reorder
