lib/core/timetile.ml: Array Fmt Irgraph Kernels Reorder Schedule Sparse_tile
