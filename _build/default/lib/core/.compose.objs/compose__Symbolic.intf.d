lib/core/symbolic.mli: Fmt Plan Presburger Transform
