lib/core/timetile.mli: Cachesim Kernels Reorder
