lib/core/legality.ml: Array Fmt Inspector Kernels Perm Reorder Result Schedule Sparse_tile
