lib/core/codegen.ml: Buffer Constr Fmt List Presburger Rel Str String Symbolic Term Transform
