lib/core/symbolic.ml: Fmt List Parser Plan Presburger Rel String Transform Ufs_env
