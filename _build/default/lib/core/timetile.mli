(** Sparse tiling across the outer time-stepping loop (Section 2.3's
    "across an outer loop"): unroll the within-step chain [depth]
    times, connect steps through the kernel's cross-step connectivity,
    grow tiles over the whole slab, and execute slab-wise — temporal
    blocking for the three benchmarks, exactly as the Gauss-Seidel
    kernel does for its convergence loop. *)

(** The unrolled chain of [depth] time steps. *)
val unrolled_chain :
  Kernels.Kernel.t -> depth:int -> Reorder.Sparse_tile.chain

type t = {
  schedule : Reorder.Schedule.t;
  depth : int; (** time steps per slab *)
  n_tiles : int;
}

(** Grow and verify a [depth]-step tiling from a block seed on the
    middle step's interaction loop. Raises [Invalid_argument] if the
    grown tiling is illegal (it never is; the check is belt and
    braces). *)
val tile : Kernels.Kernel.t -> depth:int -> seed_part_size:int -> t

(** Execute [total_steps] (a multiple of the depth) time steps
    slab-wise; equivalent to the plain executor. *)
val run : Kernels.Kernel.t -> t -> total_steps:int -> unit

val run_traced :
  Kernels.Kernel.t ->
  t ->
  total_steps:int ->
  layout:Cachesim.Layout.t ->
  access:(int -> unit) ->
  unit
