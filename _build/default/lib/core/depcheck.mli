(** Run-time data dependence analysis for non-affine references
    (Section 8 / [23, 26]): classify a loop's loop-carried dependences
    from its concrete access patterns, validating the compile-time
    "reduction-only" assumption the dependence-free iteration
    reorderings rely on (Section 4, footnote 3). *)

type verdict =
  | Independent
      (** no aliasing at all: any reordering legal, fully parallel *)
  | Reduction
      (** shared update locations, never read: reorderings legal for
          associative updates *)
  | Serialized of Reorder.Access.t
      (** flow dependences exist; the access maps each iteration to the
          earlier iterations it must follow (feed to
          {!Reorder.Wavefront.run}) *)

(** Classify from a loop's plain-read access and commutative-update
    access over one (stacked) data space. *)
val classify :
  reads:Reorder.Access.t -> updates:Reorder.Access.t -> verdict

val verdict_name : verdict -> string

(** Verify a kernel's interaction loop: reads (positions) and updates
    (forces) go through the same index arrays into different arrays,
    so the verdict is {!Reduction} for all three benchmarks. *)
val check_kernel_interaction_loop : Kernels.Kernel.t -> verdict
