(* Run-time data dependence analysis for non-affine references
   (Section 8 cites Pugh-Wonnacott [23] and Rus et al. [26]; Section 4
   relies on knowing whether a subspace's loop-carried dependences are
   reductions before applying lexGroup/lexSort/bucket tiling).

   The compile-time side can only mark a loop "reduction-only" when the
   operator is recognizably associative/commutative; whether two
   iterations actually touch the same location is decided by the index
   arrays. This module inspects concrete access patterns and
   classifies a loop's loop-carried dependences:

   - [Independent]: no two iterations write the same location and no
     iteration reads another's written location — any reordering legal,
     and the loop is fully parallel;
   - [Reduction]: iterations share written locations but never read
     them (update-only) — reorderings legal for associative updates
     (Section 4, footnote 3);
   - [Serialized pairs]: a read of one iteration aliases a write of
     another — reordering must respect those pairs; we return a
     predecessor map suitable for {!Reorder.Wavefront}. *)

open Reorder

type verdict =
  | Independent
  | Reduction
  | Serialized of Access.t (* iteration -> earlier iterations it must follow *)

(* Classify from the loop's read access and update (read-modify-write
   reduction) access over one data space. [reads] are plain reads;
   [updates] are commutative updates (+=). A flow dependence exists
   when a plain read aliases another iteration's update. *)
let classify ~(reads : Access.t) ~(updates : Access.t) =
  if Access.n_iter reads <> Access.n_iter updates then
    invalid_arg "Depcheck.classify: iteration counts differ";
  let n_data = Access.n_data updates in
  if Access.n_data reads <> n_data then
    invalid_arg "Depcheck.classify: data spaces differ";
  let n = Access.n_iter updates in
  (* Which locations are ever updated, and by how many iterations. *)
  let update_count = Array.make n_data 0 in
  for it = 0 to n - 1 do
    Access.iter_touches updates it (fun d ->
        update_count.(d) <- update_count.(d) + 1)
  done;
  (* Flow aliasing: a plain read of a location someone updates. *)
  let aliased = ref false in
  (try
     for it = 0 to n - 1 do
       Access.iter_touches reads it (fun d ->
           if update_count.(d) > 0 then begin
             aliased := true;
             raise Exit
           end)
     done
   with Exit -> ());
  if !aliased then begin
    (* Build the predecessor map: iteration b depends on every earlier
       iteration a whose update set intersects b's read set (flow) or
       b's update set intersects a's read set (anti). We approximate
       with the flow direction over the update transpose, which is the
       order wavefront scheduling needs. *)
    let upd_by_loc = Access.transpose updates in
    let preds =
      Array.init n (fun b ->
          Access.fold_touches reads b
            (fun acc d ->
              Access.fold_touches upd_by_loc d
                (fun acc a -> if a < b then a :: acc else acc)
                acc)
            []
          |> List.sort_uniq compare)
    in
    Serialized (Access.of_lists ~n_data:n preds)
  end
  else if Array.exists (fun c -> c > 1) update_count then Reduction
  else Independent

let verdict_name = function
  | Independent -> "independent"
  | Reduction -> "reduction"
  | Serialized _ -> "serialized"

(* The j loops of irreg/nbf/moldyn read positions (x...) and update
   forces (fx...) through the same index arrays but in *different*
   arrays. Verify the kernels' reduction-only assumption from the
   concrete index arrays by stacking the two arrays' spaces side by
   side — reads in [0, n), updates in [n, 2n) — and classifying. *)
let check_kernel_interaction_loop (kernel : Kernels.Kernel.t) =
  let access = kernel.Kernels.Kernel.access in
  let n = Access.n_data access in
  let reads = Access.shift_data ~offset:0 ~n_data:(2 * n) access in
  let updates = Access.shift_data ~offset:n ~n_data:(2 * n) access in
  classify ~reads ~updates
