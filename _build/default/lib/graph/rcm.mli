(** Cuthill-McKee / reverse Cuthill-McKee bandwidth-reducing orderings
    (cited by the paper as one of the classic run-time data
    reorderings). *)

(** A pseudo-peripheral node of [root]'s component (repeated farthest
    BFS). *)
val pseudo_peripheral : Csr.t -> int -> int

(** Cuthill-McKee order: [order.(k)] is the k-th node in the new
    numbering. *)
val cm_order : Csr.t -> int array

(** Reverse Cuthill-McKee order. *)
val rcm_order : Csr.t -> int array

(** Max over edges of |pos(u) - pos(v)| under [position]. *)
val bandwidth : Csr.t -> position:int array -> int
