(* Partitioning of nodes or iterations into bounded-size parts.

   [gpart] is a lightweight BFS-grown partitioner in the spirit of Han
   and Tseng's GPART: grow each part by breadth-first search from a
   seed until it reaches [part_size], then pick the next unvisited seed
   (preferring frontier nodes so consecutive parts touch). It trades
   partition quality for near-linear running time, which is the point
   of Gpart vs. heavyweight partitioners like Metis.

   [block] is the trivial contiguous partitioner used to seed full
   sparse tiling after a good data+iteration reordering (Section 2.3:
   "a simple block partitioning of the iterations is sufficient"). *)

type t = {
  n_parts : int;
  assign : int array; (* node -> part id, 0-based *)
}

let n_parts p = p.n_parts
let part_of p v = p.assign.(v)
let assignment p = p.assign

let invalid fmt = Fmt.kstr invalid_arg fmt

let make ~n_parts ~assign =
  Array.iter
    (fun a -> if a < 0 || a >= n_parts then invalid "Partition.make: id %d" a)
    assign;
  { n_parts; assign }

(* Sizes of each part. *)
let sizes p =
  let s = Array.make p.n_parts 0 in
  Array.iter (fun a -> s.(a) <- s.(a) + 1) p.assign;
  s

let block ~n ~part_size =
  if part_size <= 0 then invalid "Partition.block: part_size %d" part_size;
  let n_parts = (n + part_size - 1) / part_size in
  let assign = Array.init n (fun v -> v / part_size) in
  { n_parts = max n_parts 1; assign = (if n = 0 then [||] else assign) }

let gpart g ~part_size =
  if part_size <= 0 then invalid "Partition.gpart: part_size %d" part_size;
  let n = Csr.num_nodes g in
  let assign = Array.make n (-1) in
  let queue = Queue.create () in
  let frontier = Queue.create () in
  let current = ref 0 in
  let filled = ref 0 in
  let next_seed = ref 0 in
  let take_seed () =
    (* Prefer a node left on the previous part's frontier so that
       consecutive parts are spatially adjacent; otherwise scan. *)
    let rec from_frontier () =
      if Queue.is_empty frontier then None
      else
        let v = Queue.pop frontier in
        if assign.(v) < 0 then Some v else from_frontier ()
    in
    match from_frontier () with
    | Some v -> Some v
    | None ->
      while !next_seed < n && assign.(!next_seed) >= 0 do
        incr next_seed
      done;
      if !next_seed < n then Some !next_seed else None
  in
  let assigned = ref 0 in
  while !assigned < n do
    match take_seed () with
    | None -> assert false
    | Some seed ->
      (* A part that ran out of component keeps filling from the next
         seed; only a full part closes. *)
      if !filled >= part_size then begin
        incr current;
        filled := 0
      end;
      Queue.clear queue;
      assign.(seed) <- !current;
      incr assigned;
      incr filled;
      Queue.add seed queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Csr.iter_neighbors g v (fun w ->
            if assign.(w) < 0 then
              if !filled < part_size then begin
                assign.(w) <- !current;
                incr assigned;
                incr filled;
                Queue.add w queue
              end
              else Queue.add w frontier)
      done
  done;
  { n_parts = (if n = 0 then 0 else !current + 1); assign }

(* Number of edges whose endpoints lie in different parts. *)
let edge_cut g p =
  let cut = ref 0 in
  for v = 0 to Csr.num_nodes g - 1 do
    Csr.iter_neighbors g v (fun w ->
        if v < w && p.assign.(v) <> p.assign.(w) then incr cut)
  done;
  !cut

(* Group members by part: result.(t) lists the nodes of part t in
   ascending node order. *)
let members p =
  let s = sizes p in
  let out = Array.map (fun k -> Array.make k 0) s in
  let cursor = Array.make p.n_parts 0 in
  Array.iteri
    (fun v a ->
      out.(a).(cursor.(a)) <- v;
      cursor.(a) <- cursor.(a) + 1)
    p.assign;
  out

let pp ppf p = Fmt.pf ppf "partition(%d parts over %d nodes)" p.n_parts
    (Array.length p.assign)
