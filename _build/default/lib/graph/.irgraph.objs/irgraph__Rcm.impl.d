lib/graph/rcm.ml: Array Csr List Queue Stdlib
