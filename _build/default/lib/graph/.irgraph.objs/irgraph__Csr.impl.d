lib/graph/csr.ml: Array Fmt List Queue
