lib/graph/partition.mli: Csr Fmt
