lib/graph/multilevel.ml: Array Csr Hashtbl List Partition Queue
