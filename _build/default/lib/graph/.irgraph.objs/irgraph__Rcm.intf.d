lib/graph/rcm.mli: Csr
