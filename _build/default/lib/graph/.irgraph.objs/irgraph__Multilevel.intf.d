lib/graph/multilevel.mli: Csr Partition
