lib/graph/csr.mli: Fmt
