lib/graph/irgraph.ml: Csr Multilevel Partition Rcm
