lib/graph/partition.ml: Array Csr Fmt Queue
