(** Bounded-size partitionings of nodes/iterations.

    [gpart] is the lightweight BFS-grown partitioner in the spirit of
    Han-Tseng's GPART (used by the Gpart data reordering); [block] is
    the contiguous partitioner used to seed full sparse tiling after a
    good data + iteration reordering. *)

type t = private {
  n_parts : int;
  assign : int array;
}

val n_parts : t -> int
val part_of : t -> int -> int

(** The underlying node -> part array. *)
val assignment : t -> int array

(** Build from an explicit assignment; raises [Invalid_argument] if an
    id is out of range. *)
val make : n_parts:int -> assign:int array -> t

(** Per-part sizes. *)
val sizes : t -> int array

(** Contiguous blocks of [part_size] consecutive ids. *)
val block : n:int -> part_size:int -> t

(** BFS-grown parts of at most [part_size] nodes; near-linear time. *)
val gpart : Csr.t -> part_size:int -> t

(** Number of edges crossing parts. *)
val edge_cut : Csr.t -> t -> int

(** [members p] lists each part's nodes in ascending order. *)
val members : t -> int array array

val pp : t Fmt.t
