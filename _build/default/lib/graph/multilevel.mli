(** Multilevel recursive-bisection graph partitioning (METIS-style):
    heavy-edge-matching coarsening, weighted-BFS initial bisection, and
    boundary Kernighan-Lin refinement at every level. The heavyweight
    alternative GPART was designed to undercut; used in the ablations. *)

(** Partition into [n_parts] approximately balanced parts. *)
val partition : Csr.t -> n_parts:int -> Partition.t

(** Partition into parts of roughly [part_size] nodes. *)
val partition_by_size : Csr.t -> part_size:int -> Partition.t
