(** The moldyn benchmark (9 node arrays, 72 B/molecule; i/j/k loop chain) as a {!Kernel.t}. *)

(** Build the kernel over a dataset's interaction list, with
    deterministic initial conditions derived from node ids. *)
val of_dataset : Datagen.Dataset.t -> Kernel.t
