lib/kernels/kernel.ml: Array Cachesim List Reorder String
