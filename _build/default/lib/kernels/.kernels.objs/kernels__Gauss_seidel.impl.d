lib/kernels/gauss_seidel.ml: Array Cachesim Irgraph List Reorder
