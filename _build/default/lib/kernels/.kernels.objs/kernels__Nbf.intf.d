lib/kernels/nbf.mli: Datagen Kernel
