lib/kernels/moldyn.mli: Datagen Kernel
