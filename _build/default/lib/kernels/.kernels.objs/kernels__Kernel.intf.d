lib/kernels/kernel.mli: Cachesim Reorder
