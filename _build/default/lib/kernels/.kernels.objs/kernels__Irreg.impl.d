lib/kernels/irreg.ml: Array Cachesim Datagen Kernel List Reorder
