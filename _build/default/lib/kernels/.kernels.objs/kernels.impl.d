lib/kernels/kernels.ml: Gauss_seidel Irreg Kernel Moldyn Nbf
