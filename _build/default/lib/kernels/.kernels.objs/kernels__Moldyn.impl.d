lib/kernels/moldyn.ml: Array Cachesim Datagen Kernel List Reorder
