lib/kernels/nbf.ml: Array Cachesim Datagen Kernel List Reorder
