lib/kernels/irreg.mli: Datagen Kernel
