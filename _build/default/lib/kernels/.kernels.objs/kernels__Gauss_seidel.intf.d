lib/kernels/gauss_seidel.mli: Cachesim Irgraph Reorder
