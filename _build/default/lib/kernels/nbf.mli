(** The nbf benchmark (6 node arrays, 48 B/node; i/j loop chain) as a {!Kernel.t}. *)

(** Build the kernel over a dataset's interaction list, with
    deterministic initial conditions derived from node ids. *)
val of_dataset : Datagen.Dataset.t -> Kernel.t
