(** The irreg benchmark (2 node arrays, 16 B/node; j/k loop chain) as a {!Kernel.t}. *)

(** Build the kernel over a dataset's interaction list, with
    deterministic initial conditions derived from node ids. *)
val of_dataset : Datagen.Dataset.t -> Kernel.t
