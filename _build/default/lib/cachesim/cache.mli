(** Set-associative LRU cache simulator (the hardware substitute for
    the paper's Power3 / Pentium 4 L1 caches; see DESIGN.md). *)

type t

(** [create ~size_bytes ~line_bytes ~assoc]; line size and derived set
    count must be powers of two. *)
val create : size_bytes:int -> line_bytes:int -> assoc:int -> t

(** Invalidate all lines and zero the counters. *)
val reset : t -> unit

(** Zero the counters, keeping cache contents (for warm-cache
    measurement windows). *)
val reset_counters : t -> unit

(** One reference at a byte address; [true] on hit. Misses fill the
    line (LRU eviction). *)
val access : t -> int -> bool

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val miss_ratio : t -> float
val pp : t Fmt.t
