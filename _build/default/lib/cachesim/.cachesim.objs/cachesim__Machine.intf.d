lib/cachesim/machine.mli: Cache Fmt Hierarchy
