lib/cachesim/hierarchy.ml: Cache Fmt
