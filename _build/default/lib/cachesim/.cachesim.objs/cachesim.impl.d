lib/cachesim/cachesim.ml: Cache Hierarchy Layout Machine
