lib/cachesim/layout.mli: Fmt
