lib/cachesim/machine.ml: Cache Fmt Hierarchy
