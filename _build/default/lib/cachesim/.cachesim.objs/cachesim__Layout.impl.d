lib/cachesim/layout.ml: Fmt List
