lib/cachesim/cache.ml: Array Fmt
