lib/cachesim/cache.mli: Fmt
