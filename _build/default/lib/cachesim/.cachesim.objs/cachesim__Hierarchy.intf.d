lib/cachesim/hierarchy.mli: Cache Fmt
