(** Trace-driven cache simulation substrate: the stand-in for the
    paper's Power3 / Pentium 4 hardware (see DESIGN.md for the
    substitution argument). *)

module Cache = Cache
module Hierarchy = Hierarchy
module Machine = Machine
module Layout = Layout
