(* Memory layouts: mapping (array, element) references to byte
   addresses for the cache model.

   Two layouts matter for the paper:
   - [separate]: each array in its own contiguous region;
   - [grouped]: inter-array data regrouping (Ding & Kennedy [8]) —
     arrays indexed by the same space are interleaved element-wise
     (array-of-structs), which both the baselines and the transformed
     executors use in the paper's experiments.

   A layout assigns every array a base address and a stride; address =
   base + index * stride. Regions are padded to line-size multiples so
   arrays never share a cache line by accident. *)

type field = {
  base : int;
  stride : int; (* bytes between consecutive elements *)
}

type t = {
  fields : (string * field) list;
  total_bytes : int;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let elem_bytes = 8 (* double-precision floats everywhere *)

let align up x = (x + up - 1) / up * up

(* [separate arrays] lays out each (name, length) contiguously. *)
let separate ?(align_bytes = 128) arrays =
  let fields, total =
    List.fold_left
      (fun (fields, offset) (name, len) ->
        let field = { base = offset; stride = elem_bytes } in
        ((name, field) :: fields, align align_bytes (offset + (len * elem_bytes))))
      ([], 0) arrays
  in
  { fields = List.rev fields; total_bytes = total }

(* [grouped ~groups] interleaves the arrays of each group: group
   arrays must share a length; element i of the g-th member sits at
   group_base + i * (k * 8) + g * 8. *)
let grouped ?(align_bytes = 128) ~groups () =
  let fields, total =
    List.fold_left
      (fun (fields, offset) group ->
        match group with
        | [] -> (fields, offset)
        | (_, len0) :: _ ->
          let k = List.length group in
          List.iter
            (fun (_, len) ->
              if len <> len0 then invalid "Layout.grouped: lengths differ")
            group;
          let stride = k * elem_bytes in
          let fields', _ =
            List.fold_left
              (fun (fs, g) (name, _) ->
                ((name, { base = offset + (g * elem_bytes); stride }) :: fs, g + 1))
              (fields, 0) group
          in
          (fields', align align_bytes (offset + (k * len0 * elem_bytes))))
      ([], 0) groups
  in
  { fields = List.rev fields; total_bytes = total }

let total_bytes l = l.total_bytes

let field l name =
  match List.assoc_opt name l.fields with
  | Some f -> f
  | None -> invalid "Layout.field: unknown array %s" name

(* Byte address of element [index] of array [name]. *)
let address l name index =
  let f = field l name in
  f.base + (index * f.stride)

(* Fast accessor closure for inner loops: resolves the field once. *)
let addresser l name =
  let f = field l name in
  fun index -> f.base + (index * f.stride)

let pp ppf l =
  Fmt.pf ppf "layout(%d arrays, %d bytes)" (List.length l.fields) l.total_bytes
