(** Memory layouts mapping (array, element) to byte addresses,
    including inter-array data regrouping (Ding & Kennedy), which the
    paper's baselines and executors both use. *)

type field = private {
  base : int;
  stride : int;
}

type t

(** Each named array (name, length) contiguous, regions padded to
    [align_bytes]. *)
val separate : ?align_bytes:int -> (string * int) list -> t

(** Arrays within a group interleaved element-wise (array-of-structs);
    group members must share a length. *)
val grouped : ?align_bytes:int -> groups:(string * int) list list -> unit -> t

val total_bytes : t -> int
val field : t -> string -> field

(** Byte address of [index] in array [name]. *)
val address : t -> string -> int -> int

(** Field-resolved accessor for inner loops. *)
val addresser : t -> string -> int -> int

val pp : t Fmt.t
