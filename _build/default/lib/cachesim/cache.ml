(* Set-associative LRU cache simulator.

   The paper's experiments ran on real Power3 / Pentium 4 hardware; we
   substitute a trace-driven L1 model (see DESIGN.md). Executors emit
   their memory references to {!access}; the counters then yield miss
   ratios and a modeled execution time. LRU is tracked by keeping each
   set's tags in most-recently-used-first order. *)

type t = {
  line_bytes : int;
  n_sets : int;
  assoc : int;
  line_shift : int;
  tags : int array; (* n_sets * assoc, MRU first; -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let create ~size_bytes ~line_bytes ~assoc =
  if not (is_pow2 line_bytes) then invalid "Cache.create: line_bytes";
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid "Cache.create: size %d not divisible by line*assoc" size_bytes;
  let n_sets = size_bytes / (line_bytes * assoc) in
  if not (is_pow2 n_sets) then invalid "Cache.create: set count not a power of 2";
  {
    line_bytes;
    n_sets;
    assoc;
    line_shift = log2 line_bytes;
    tags = Array.make (n_sets * assoc) (-1);
    hits = 0;
    misses = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hits <- 0;
  t.misses <- 0

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

(* One memory reference at byte address [addr]. Returns [true] on hit.
   On miss, the line is filled and becomes MRU; LRU is evicted. *)
let access t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.n_sets - 1) in
  let base = set * t.assoc in
  let tags = t.tags in
  (* Find the tag; shift everything in front of it down one slot so the
     found (or inserted) tag lands at MRU position. *)
  let rec find i =
    if i >= t.assoc then -1
    else if tags.(base + i) = line then i
    else find (i + 1)
  in
  match find 0 with
  | 0 ->
    t.hits <- t.hits + 1;
    true
  | -1 ->
    t.misses <- t.misses + 1;
    for j = t.assoc - 1 downto 1 do
      tags.(base + j) <- tags.(base + j - 1)
    done;
    tags.(base) <- line;
    false
  | pos ->
    t.hits <- t.hits + 1;
    for j = pos downto 1 do
      tags.(base + j) <- tags.(base + j - 1)
    done;
    tags.(base) <- line;
    true

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_ratio t =
  let total = accesses t in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let pp ppf t =
  Fmt.pf ppf "cache(%dB lines, %d sets, %d-way; %d hits, %d misses)"
    t.line_bytes t.n_sets t.assoc t.hits t.misses
