(* Deterministic pseudo-random numbers (splitmix64 over OCaml's 63-bit
   ints). Every dataset is reproducible from its seed, independent of
   the stdlib Random state. *)

type t = { mutable state : int }

let create seed = { state = seed land max_int }

(* splitmix64-style constants truncated to OCaml's 63-bit int range;
   the mixer quality is more than enough for dataset jitter. *)
let golden = 0x1E3779B97F4A7C15
let mix1 = 0x3F58476D1CE4E5B9
let mix2 = 0x14D049BB133111EB

let next t =
  t.state <- (t.state + golden) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * mix1 land max_int in
  let z = (z lxor (z lsr 27)) * mix2 land max_int in
  z lxor (z lsr 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound";
  next t mod bound

(* Uniform float in [0, 1). *)
let float t =
  float_of_int (next t land 0xFFFFFFFFFFFF) /. float_of_int 0x1000000000000

(* Uniform float in [-amp, amp). *)
let jitter t amp = (2.0 *. float t -. 1.0) *. amp

(* In-place Fisher-Yates shuffle. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* A random permutation of [0, n). *)
let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
