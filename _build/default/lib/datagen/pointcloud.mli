(** Cutoff-radius interaction lists over jittered lattices in 2 or 3
    dimensions: the machinery behind the molecular and mesh dataset
    generators. Cell binning keeps generation O(n). *)

type point = { x : float; y : float; z : float }

val dist2 : point -> point -> float

(** Jittered lattice of about [n] points; returns the points and the
    grid side length used. [dim] must be 2 or 3. *)
val lattice :
  rng:Rng.t -> dim:int -> n:int -> jitter_amp:float -> point array * int

(** The cutoff radius giving an expected neighbor count of [degree] at
    unit density. *)
val radius_for_degree : dim:int -> degree:float -> float

(** All pairs within [radius] (each emitted once, low id first). *)
val cutoff_pairs :
  dim:int -> side:int -> point array -> radius:float -> (int * int) array
