(* Benchmark datasets: an interaction list over a node space, the
   runtime shape shared by moldyn, nbf and irreg. The paper's datasets
   (mol1/mol2 molecular neighbor lists, foil/auto unstructured meshes)
   are not distributable, so generators in this library synthesize
   graphs with matching node/edge statistics; node ids and interaction
   order are randomly shuffled so the initial numbering carries no
   locality — the state the run-time reorderings are designed to fix. *)

type t = {
  name : string;
  n_nodes : int;
  left : int array;  (* interaction endpoint 1 *)
  right : int array; (* interaction endpoint 2 *)
  coords : (float * float * float) array option;
      (* node coordinates, when the generator has them; only
         non-automatable reorderings (space-filling curves) use these *)
}

let n_interactions d = Array.length d.left

let access d = Reorder.Access.of_pairs ~n_data:d.n_nodes d.left d.right

let to_graph d =
  Irgraph.Csr.of_edges ~n:d.n_nodes
    (Array.init (n_interactions d) (fun j -> (d.left.(j), d.right.(j))))

(* Destroy any locality of the generator's natural numbering: relabel
   nodes by a random permutation and shuffle the interaction order.
   Coordinates follow their nodes. *)
let scramble ~seed d =
  let rng = Rng.create seed in
  let relabel = Rng.permutation rng d.n_nodes in
  let m = n_interactions d in
  let order = Rng.permutation rng m in
  let left = Array.make m 0 and right = Array.make m 0 in
  for j = 0 to m - 1 do
    left.(j) <- relabel.(d.left.(order.(j)));
    right.(j) <- relabel.(d.right.(order.(j)))
  done;
  let coords =
    Option.map
      (fun cs ->
        let out = Array.make d.n_nodes (0.0, 0.0, 0.0) in
        Array.iteri (fun old c -> out.(relabel.(old)) <- c) cs;
        out)
      d.coords
  in
  { d with left; right; coords }

let avg_degree d =
  if d.n_nodes = 0 then 0.0
  else 2.0 *. float_of_int (n_interactions d) /. float_of_int d.n_nodes

let pp ppf d =
  Fmt.pf ppf "%s: %d nodes, %d edges (avg degree %.1f)" d.name d.n_nodes
    (n_interactions d) (avg_degree d)
