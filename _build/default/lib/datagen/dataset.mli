(** Benchmark datasets: an interaction list over a node space — the
    runtime shape shared by moldyn, nbf and irreg. *)

type t = {
  name : string;
  n_nodes : int;
  left : int array;
  right : int array;
  coords : (float * float * float) array option;
      (** node coordinates when the generator has them (only
          non-automatable reorderings like space-filling curves use
          these) *)
}

val n_interactions : t -> int

(** The interaction loop's access pattern. *)
val access : t -> Reorder.Access.t

val to_graph : t -> Irgraph.Csr.t

(** Relabel nodes by a random permutation and shuffle the interaction
    order, destroying the generator's natural locality. *)
val scramble : seed:int -> t -> t

val avg_degree : t -> float
val pp : t Fmt.t
