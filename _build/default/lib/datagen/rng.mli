(** Deterministic pseudo-random numbers (splitmix64-style) so every
    dataset is reproducible from its seed. *)

type t

val create : int -> t

(** Next raw value (non-negative). *)
val next : t -> int

(** Uniform int in [0, bound). *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [-amp, amp). *)
val jitter : t -> float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** A random permutation of [0, n). *)
val permutation : t -> int -> int array
