(** Synthetic versions of the paper's four datasets (Section 2.4),
    matching node counts and average degrees; see DESIGN.md for the
    substitution argument. [scale] divides the node count (1 = paper
    size). All datasets are scrambled. *)

val mol1 : ?scale:int -> unit -> Dataset.t
val mol2 : ?scale:int -> unit -> Dataset.t
val foil : ?scale:int -> unit -> Dataset.t
val auto : ?scale:int -> unit -> Dataset.t
val by_name : ?scale:int -> string -> Dataset.t option
val all : ?scale:int -> unit -> Dataset.t list

(** The node/edge counts the paper reports, for the Section 2.4
    table. *)
val paper_sizes : (string * (int * int)) list
