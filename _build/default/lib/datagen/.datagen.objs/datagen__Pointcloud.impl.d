lib/datagen/pointcloud.ml: Array Float Rng
