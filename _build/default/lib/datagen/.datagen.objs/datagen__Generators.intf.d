lib/datagen/generators.mli: Dataset
