lib/datagen/generators.ml: Array Dataset Pointcloud Rng
