lib/datagen/dataset.ml: Array Fmt Irgraph Option Reorder Rng
