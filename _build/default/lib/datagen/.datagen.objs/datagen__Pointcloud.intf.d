lib/datagen/pointcloud.mli: Rng
