lib/datagen/datagen.ml: Dataset Generators Pointcloud Rng
