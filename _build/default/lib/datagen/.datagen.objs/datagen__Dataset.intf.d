lib/datagen/dataset.mli: Fmt Irgraph Reorder
