lib/datagen/rng.mli:
