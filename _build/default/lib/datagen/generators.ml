(* The four paper datasets (Section 2.4), synthesized:

     Data set   nodes     edges      structure
     mol1       131072    1179648    3-D molecular neighbor list, deg 18
     mol2       442368    3981312    3-D molecular neighbor list, deg 18
     foil       144649    1074393    2-D unstructured mesh, deg ~14.9
     auto       448695    3314611    3-D unstructured mesh, deg ~14.8

   Generators reproduce the node counts and average degrees; the exact
   edge counts differ slightly (cutoff lists are stochastic), which is
   immaterial to the reorderings. [scale] divides the node count for
   laptop-sized runs; scale = 1 is the paper's size. *)

let scaled n scale = max 64 (n / scale)

let coords_of_points points =
  Array.map
    (fun (p : Pointcloud.point) -> (p.Pointcloud.x, p.Pointcloud.y, p.Pointcloud.z))
    points

(* 3-D molecular dataset: jittered lattice + cutoff at degree 18. *)
let molecular ~name ~n_nodes ~seed =
  let rng = Rng.create seed in
  let points, side = Pointcloud.lattice ~rng ~dim:3 ~n:n_nodes ~jitter_amp:0.3 in
  let radius = Pointcloud.radius_for_degree ~dim:3 ~degree:18.0 in
  let pairs = Pointcloud.cutoff_pairs ~dim:3 ~side points ~radius in
  let left = Array.map fst pairs and right = Array.map snd pairs in
  Dataset.scramble ~seed:(seed + 1)
    {
      Dataset.name;
      n_nodes = Array.length points;
      left;
      right;
      coords = Some (coords_of_points points);
    }

(* Unstructured-mesh dataset: jittered lattice + cutoff at the foil /
   auto degree (~14.8). *)
let mesh ~name ~dim ~n_nodes ~seed =
  let rng = Rng.create seed in
  let points, side = Pointcloud.lattice ~rng ~dim ~n:n_nodes ~jitter_amp:0.35 in
  let radius = Pointcloud.radius_for_degree ~dim ~degree:14.85 in
  let pairs = Pointcloud.cutoff_pairs ~dim ~side points ~radius in
  let left = Array.map fst pairs and right = Array.map snd pairs in
  Dataset.scramble ~seed:(seed + 1)
    {
      Dataset.name;
      n_nodes = Array.length points;
      left;
      right;
      coords = Some (coords_of_points points);
    }

let mol1 ?(scale = 1) () =
  molecular ~name:"mol1" ~n_nodes:(scaled 131072 scale) ~seed:0x11

let mol2 ?(scale = 1) () =
  molecular ~name:"mol2" ~n_nodes:(scaled 442368 scale) ~seed:0x22

let foil ?(scale = 1) () =
  mesh ~name:"foil" ~dim:2 ~n_nodes:(scaled 144649 scale) ~seed:0x33

let auto ?(scale = 1) () =
  mesh ~name:"auto" ~dim:3 ~n_nodes:(scaled 448695 scale) ~seed:0x44

let by_name ?scale = function
  | "mol1" -> Some (mol1 ?scale ())
  | "mol2" -> Some (mol2 ?scale ())
  | "foil" -> Some (foil ?scale ())
  | "auto" -> Some (auto ?scale ())
  | _ -> None

let all ?scale () = [ mol1 ?scale (); mol2 ?scale (); foil ?scale (); auto ?scale () ]

(* Paper-reported sizes, for the Section 2.4 table. *)
let paper_sizes =
  [
    ("mol1", (131072, 1179648));
    ("mol2", (442368, 3981312));
    ("foil", (144649, 1074393));
    ("auto", (448695, 3314611));
  ]
