(* Cutoff-radius interaction lists over jittered lattices in 2 or 3
   dimensions — the common machinery behind the molecular (mol1/mol2)
   and mesh (foil/auto) generators. Cell binning keeps generation
   O(n): only the 3^dim surrounding cells are scanned per node.

   The cutoff radius is chosen from the target average degree: in 2D
   the expected number of neighbors within r at unit density is
   pi r^2, in 3D (4/3) pi r^3. *)

type point = { x : float; y : float; z : float }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y and dz = a.z -. b.z in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)

(* Jittered lattice of ~n points; returns the points and the grid side
   length actually used. *)
let lattice ~rng ~dim ~n ~jitter_amp =
  match dim with
  | 2 ->
    let side = int_of_float (ceil (sqrt (float_of_int n))) in
    let pts =
      Array.init (side * side) (fun idx ->
          let i = idx / side and j = idx mod side in
          {
            x = float_of_int i +. Rng.jitter rng jitter_amp;
            y = float_of_int j +. Rng.jitter rng jitter_amp;
            z = 0.0;
          })
    in
    (pts, side)
  | 3 ->
    let side = int_of_float (ceil (Float.cbrt (float_of_int n))) in
    let pts =
      Array.init (side * side * side) (fun idx ->
          let i = idx / (side * side) in
          let j = idx / side mod side in
          let k = idx mod side in
          {
            x = float_of_int i +. Rng.jitter rng jitter_amp;
            y = float_of_int j +. Rng.jitter rng jitter_amp;
            z = float_of_int k +. Rng.jitter rng jitter_amp;
          })
    in
    (pts, side)
  | _ -> invalid_arg "Pointcloud.lattice: dim must be 2 or 3"

let radius_for_degree ~dim ~degree =
  match dim with
  | 2 -> sqrt (degree /. Float.pi)
  | 3 -> Float.cbrt (degree *. 3.0 /. (4.0 *. Float.pi))
  | _ -> invalid_arg "Pointcloud.radius_for_degree"

(* All pairs within [radius], via cell binning with cell size = radius.
   Each pair is emitted once (low id, high id). *)
let cutoff_pairs ~dim ~side points ~radius =
  let n = Array.length points in
  let cell_size = radius in
  let cells_per_side =
    max 1 (int_of_float (ceil (float_of_int side /. cell_size)))
  in
  let cell_of p =
    let cx = min (cells_per_side - 1) (max 0 (int_of_float (p.x /. cell_size))) in
    let cy = min (cells_per_side - 1) (max 0 (int_of_float (p.y /. cell_size))) in
    let cz =
      if dim = 3 then
        min (cells_per_side - 1) (max 0 (int_of_float (p.z /. cell_size)))
      else 0
    in
    ((cz * cells_per_side) + cy) * cells_per_side + cx
  in
  let n_cells =
    cells_per_side * cells_per_side * (if dim = 3 then cells_per_side else 1)
  in
  (* Bucket nodes by cell (CSR-style). *)
  let counts = Array.make n_cells 0 in
  let cell_id = Array.make n 0 in
  Array.iteri
    (fun v p ->
      let c = cell_of p in
      cell_id.(v) <- c;
      counts.(c) <- counts.(c) + 1)
    points;
  let ptr = Array.make (n_cells + 1) 0 in
  for c = 0 to n_cells - 1 do
    ptr.(c + 1) <- ptr.(c) + counts.(c)
  done;
  let members = Array.make n 0 in
  let cursor = Array.copy ptr in
  Array.iteri
    (fun v c ->
      members.(cursor.(c)) <- v;
      cursor.(c) <- cursor.(c) + 1)
    cell_id;
  let r2 = radius *. radius in
  let pairs = ref [] in
  let count = ref 0 in
  let consider v w =
    if v < w && dist2 points.(v) points.(w) <= r2 then begin
      pairs := (v, w) :: !pairs;
      incr count
    end
  in
  let zrange = if dim = 3 then 1 else 0 in
  for cz = 0 to (if dim = 3 then cells_per_side - 1 else 0) do
    for cy = 0 to cells_per_side - 1 do
      for cx = 0 to cells_per_side - 1 do
        let c = ((cz * cells_per_side) + cy) * cells_per_side + cx in
        for dz = -zrange to zrange do
          for dy = -1 to 1 do
            for dx = -1 to 1 do
              let nx = cx + dx and ny = cy + dy and nz = cz + dz in
              if
                nx >= 0 && nx < cells_per_side && ny >= 0
                && ny < cells_per_side && nz >= 0 && nz < cells_per_side
              then begin
                let c' = ((nz * cells_per_side) + ny) * cells_per_side + nx in
                for ia = ptr.(c) to ptr.(c + 1) - 1 do
                  for ib = ptr.(c') to ptr.(c' + 1) - 1 do
                    consider members.(ia) members.(ib)
                  done
                done
              end
            done
          done
        done
      done
    done
  done;
  Array.of_list !pairs
