(* Using the library on a computation the paper does not evaluate:
   sparse matrix-vector multiply y = A x in CSR form (the workload of
   the related-work SPARSITY system). Demonstrates that the run-time
   reordering machinery is not wired to the three benchmarks: any
   iteration-to-data access pattern expressed as an Access drives the
   same inspectors.

   Row i of the matrix touches x at its column indices; CPACK over the
   row-major traversal packs x, and lexGroup then groups rows by their
   first packed column — a column/row reordering of A.

   Run with: dune exec examples/spmv.exe *)

let () =
  (* A sparse matrix from a scrambled mesh: row i has the neighbors of
     node i as nonzero columns (plus the diagonal). *)
  let dataset = Datagen.Generators.foil ~scale:64 () in
  let graph = Datagen.Dataset.to_graph dataset in
  let n = Irgraph.Csr.num_nodes graph in
  let cols =
    Array.init n (fun i ->
        i :: Irgraph.Csr.fold_neighbors graph i (fun acc w -> w :: acc) [])
  in
  let access = Reorder.Access.of_lists ~n_data:n cols in
  Fmt.pr "CSR matrix: %d rows, %d nonzeros@." n (Reorder.Access.n_touches access);

  (* The values; y = A x with a_ij derived from indices. *)
  let x = Array.init n (fun i -> 1.0 +. float_of_int (i mod 7)) in
  let spmv (access : Reorder.Access.t) x =
    let y = Array.make n 0.0 in
    for row = 0 to n - 1 do
      Reorder.Access.iter_touches access row (fun col ->
          y.(row) <- y.(row) +. (0.01 *. x.(col)))
    done;
    y
  in
  let reference = spmv access x in

  (* Inspect: CPACK packs the x vector; lexGroup reorders the rows. *)
  let sigma = Reorder.Cpack.run access in
  let packed = Reorder.Access.map_data sigma access in
  let delta = Reorder.Lexgroup.run packed in
  let transformed = Reorder.Access.reorder_iters delta packed in
  let x' = Reorder.Perm.apply_to_float_array sigma x in

  (* Execute on the reordered matrix and un-permute the result: rows
     moved by delta, so y'(delta(row)) = y(row). *)
  let y' = spmv transformed x' in
  let y_back =
    Reorder.Perm.apply_to_float_array (Reorder.Perm.invert delta) y'
  in
  let max_err =
    Array.fold_left max 0.0
      (Array.mapi (fun i v -> abs_float (v -. reference.(i))) y_back)
  in
  Fmt.pr "max |y - y'| after un-permuting: %g@." max_err;

  (* Cache behavior of the x-vector gather, before and after. *)
  let machine = Cachesim.Machine.pentium4 in
  let misses (access : Reorder.Access.t) =
    let h = Cachesim.Machine.hierarchy machine in
    let layout = Cachesim.Layout.separate [ ("x", n); ("y", n) ] in
    let addr_x = Cachesim.Layout.addresser layout "x" in
    let addr_y = Cachesim.Layout.addresser layout "y" in
    for _rep = 1 to 2 do
      for row = 0 to n - 1 do
        Reorder.Access.iter_touches access row (fun col ->
            Cachesim.Hierarchy.access h (addr_x col));
        Cachesim.Hierarchy.access h (addr_y row)
      done
    done;
    Cachesim.Hierarchy.l1_misses h
  in
  let before = misses access in
  let after = misses transformed in
  Fmt.pr "L1 misses on %a (two passes):@." Cachesim.Machine.pp machine;
  Fmt.pr "  scrambled CSR      : %d@." before;
  Fmt.pr "  CPACK + lexGroup   : %d (%.0f%% fewer)@." after
    (100.0 *. (1.0 -. (float_of_int after /. float_of_int before)))
