(* Sparse tiling the computation it was invented for: a Gauss-Seidel
   smoother over an unstructured mesh, tiled across convergence sweeps
   (Section 2.3). The tiled execution is bitwise identical to the
   plain smoother and cuts L1 misses by reusing each tile's data
   across sweeps.

   Run with: dune exec examples/gauss_seidel.exe *)

let () =
  let dataset = Datagen.Generators.foil ~scale:64 () in
  let graph = Datagen.Dataset.to_graph dataset in
  let n = Irgraph.Csr.num_nodes graph in
  Fmt.pr "mesh: %a@." Irgraph.Csr.pp graph;
  let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 13)) in
  (* Tile [slab] sweeps at a time: growth smears tiles by one mesh
     layer per sweep away from the seed, so shallow slabs keep tiles
     compact (a slab's tile spans roughly slab+1 parts). *)
  let slab = 3 in
  let slabs = 8 in
  let sweeps = slab * slabs in

  (* 1. Partition the mesh into small parts (a tile's slab working set
        is several parts plus halo, and must fit the L1) and renumber
        so each part is consecutive (the seed must be monotone). *)
  let machine = Cachesim.Machine.pentium4 in
  let part_size = machine.Cachesim.Machine.l1_size / 16 / 16 in
  let partition = Irgraph.Partition.gpart graph ~part_size in
  Fmt.pr "partition: %a (edge cut %d)@." Irgraph.Partition.pp partition
    (Irgraph.Partition.edge_cut graph partition);
  let graph', f', _sigma, seed =
    Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition
  in

  (* 2. Grow tiles across one slab of sweeps from a mid-point seed. *)
  let tiling =
    Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep:(slab / 2) ~sweeps:slab
  in
  let violations = Kernels.Gauss_seidel.check_constraints graph' tiling in
  Fmt.pr "tiles: %d per %d-sweep slab; constraint violations: %d@."
    tiling.Kernels.Gauss_seidel.n_tiles slab (List.length violations);

  (* 3. The tiled smoother computes exactly the plain smoother. *)
  let plain = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_plain plain ~sweeps;
  let tiled = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
  Kernels.Gauss_seidel.run_tiled_slabbed tiled tiling ~total_sweeps:sweeps;
  let equal =
    Array.for_all2 ( = ) plain.Kernels.Gauss_seidel.u
      tiled.Kernels.Gauss_seidel.u
  in
  Fmt.pr "tiled result bitwise equal to plain: %b@." equal;

  (* 4. Cache behavior: plain sweeps stream the whole mesh each sweep;
        tiles keep their nodes resident across sweeps. *)
  let misses run =
    let t = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
    let layout = Kernels.Gauss_seidel.layout t in
    let hierarchy = Cachesim.Machine.hierarchy machine in
    run t ~layout ~access:(Cachesim.Hierarchy.access hierarchy);
    Cachesim.Hierarchy.l1_misses hierarchy
  in
  let plain_misses =
    misses (fun t ~layout ~access ->
        Kernels.Gauss_seidel.run_traced t ~sweeps ~layout ~access)
  in
  let tiled_misses =
    misses (fun t ~layout ~access ->
        Kernels.Gauss_seidel.run_tiled_traced ~slabs t tiling ~layout ~access)
  in
  Fmt.pr "L1 misses on %a over %d sweeps:@." Cachesim.Machine.pp machine sweeps;
  Fmt.pr "  plain smoother : %d@." plain_misses;
  Fmt.pr "  sparse tiled   : %d (%.0f%% fewer)@." tiled_misses
    (100.0 *. (1.0 -. (float_of_int tiled_misses /. float_of_int plain_misses)))
