(* Quickstart: compose two run-time reordering transformations on an
   irregular kernel and watch the cache behavior improve.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A synthetic unstructured mesh with scrambled numbering (the
        state real irregular applications arrive in). *)
  let dataset = Datagen.Generators.foil ~scale:64 () in
  Fmt.pr "dataset: %a@." Datagen.Dataset.pp dataset;

  (* 2. The irreg benchmark over that mesh. *)
  let kernel = Kernels.Irreg.of_dataset dataset in

  (* 3. A composition: consecutive packing (data reordering), then
        lexicographical grouping (iteration reordering). *)
  let plan = Compose.Plan.cpack_lexgroup in
  Fmt.pr "plan: %a@." Compose.Plan.pp plan;

  (* 4. Run the composed inspector: it traverses the index arrays,
        generates the reordering functions, and remaps the data once. *)
  let result = Compose.Inspector.run plan kernel in
  (match Compose.Legality.check result with
  | Ok () -> Fmt.pr "legality: ok@."
  | Error msg -> failwith msg);
  Fmt.pr "inspector took %.1f ms, %d data remap pass(es)@."
    (1000.0 *. result.Compose.Inspector.inspector_seconds)
    result.Compose.Inspector.n_data_remaps;

  (* 5. Compare cache behavior of the original and transformed
        executors on the Pentium 4 model (8KB L1, 64B lines). *)
  let machine = Cachesim.Machine.pentium4 in
  let misses (k : Kernels.Kernel.t) =
    let hierarchy = Cachesim.Machine.hierarchy machine in
    let access = Cachesim.Hierarchy.access hierarchy in
    let layout = Kernels.Kernel.layout k in
    k.Kernels.Kernel.run_traced ~steps:1 ~layout ~access;
    Cachesim.Hierarchy.reset_counters hierarchy;
    k.Kernels.Kernel.run_traced ~steps:2 ~layout ~access;
    Cachesim.Hierarchy.l1_misses hierarchy / 2
  in
  let before = misses kernel in
  let after = misses result.Compose.Inspector.kernel in
  Fmt.pr "L1 misses per time step on %a:@." Cachesim.Machine.pp machine;
  Fmt.pr "  original   : %d@." before;
  Fmt.pr "  %-10s : %d (%.0f%% fewer)@."
    (Compose.Plan.name plan) after
    (100.0 *. (1.0 -. (float_of_int after /. float_of_int before)));

  (* 6. The executors compute the same thing: run both and compare
        (after un-permuting the transformed data). *)
  let reference =
    let k = kernel.Kernels.Kernel.copy () in
    k.Kernels.Kernel.run ~steps:3;
    k.Kernels.Kernel.snapshot ()
  in
  let transformed =
    let k = result.Compose.Inspector.kernel in
    k.Kernels.Kernel.run ~steps:3;
    Kernels.Kernel.unpermute_snapshot result.Compose.Inspector.sigma_total
      (k.Kernels.Kernel.snapshot ())
  in
  Fmt.pr "results match: %b@."
    (Kernels.Kernel.snapshots_close reference transformed)
