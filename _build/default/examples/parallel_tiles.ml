(* Run-time reordering transformations for parallelism (Section 4):
   dependence classification, wavefront partial parallelization, and
   the coarser tile-level parallelism sparse tiling provides
   ("by mapping all independent tiles to the same tile number,
   parallelism between tiles can be expressed").

   Run with: dune exec examples/parallel_tiles.exe *)

let () =
  let dataset = Datagen.Generators.foil ~scale:64 () in
  let kernel = Kernels.Irreg.of_dataset dataset in
  Fmt.pr "dataset: %a@.@." Datagen.Dataset.pp dataset;

  (* 1. Run-time dependence classification of the interaction loop:
        positions are read, forces updated, so the loop-carried
        dependences are reductions — which is what licenses lexGroup
        (Section 4, footnote 3). *)
  let verdict = Compose.Depcheck.check_kernel_interaction_loop kernel in
  Fmt.pr "interaction-loop dependences: %s@."
    (Compose.Depcheck.verdict_name verdict);

  (* 2. A loop with real flow dependences instead: Gauss-Seidel's
        within-sweep updates. Wavefront scheduling extracts the
        maximal iteration-level parallelism. *)
  let graph = Datagen.Dataset.to_graph dataset in
  let n = Irgraph.Csr.num_nodes graph in
  let preds =
    Reorder.Access.of_lists ~n_data:n
      (Array.init n (fun v ->
           Irgraph.Csr.fold_neighbors graph v
             (fun acc w -> if w < v then w :: acc else acc)
             []
           |> List.sort compare))
  in
  let w = Reorder.Wavefront.run preds in
  Fmt.pr "gauss-seidel sweep: %a@." Reorder.Wavefront.pp w;
  Fmt.pr "  valid: %b; makespan on 8 procs: %d (serial %d)@."
    (Reorder.Wavefront.check preds w)
    (Reorder.Wavefront.makespan w ~processors:8)
    n;

  (* 3. Tile-level parallelism: sparse-tile the irreg chain, levelize
        the tile dependence DAG, and model multiprocessor speedup. *)
  let plan =
    Compose.Plan.with_fst ~tile_pack:false ~seed_part_size:64
      Compose.Plan.cpack_lexgroup
  in
  let result = Compose.Inspector.run plan kernel in
  let k = result.Compose.Inspector.kernel in
  let sched = Option.get result.Compose.Inspector.schedule in
  let tiles =
    Compose.Legality.tile_fns_of_schedule sched
      ~loop_sizes:k.Kernels.Kernel.loop_sizes
  in
  let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
  let par = Reorder.Tile_par.analyze ~chain ~tiles in
  Fmt.pr "@.sparse-tiled irreg: %a@." Reorder.Tile_par.pp par;
  List.iter
    (fun p ->
      Fmt.pr "  speedup on %2d processors: %.2fx@." p
        (Reorder.Tile_par.speedup par ~processors:p))
    [ 2; 4; 8; 16 ];
  let conflicts =
    Reorder.Tile_par.shared_data_conflicts par ~access:k.Kernels.Kernel.access
      ~tile_of_iter:
        tiles.(k.Kernels.Kernel.seed_loop).Reorder.Sparse_tile.tile_of
  in
  Fmt.pr
    "  %d same-level tile pairs update shared locations (a parallel@.\
    \  runtime privatizes or combines these reductions)@."
    conflicts
