(* The compile-time framework as a DSL: reproduce the worked example of
   Section 5 — data mappings and dependences written in the paper's
   notation, transformed by composing relations with uninterpreted
   function symbols.

   Run with: dune exec examples/composition_dsl.exe *)

open Presburger

let heading fmt = Fmt.pr ("@.--- " ^^ fmt ^^ " ---@.")

let () =
  (* The Kelly-Pugh unified iteration space of simplified moldyn
     (Section 3.1): each loop is a [s, position, index, statement]
     subspace. *)
  heading "Section 3.1: unified iteration space";
  let i0 =
    Parser.set
      "{[s,1,i,1] : 1 <= s <= n_steps && 1 <= i <= n_nodes} union {[s,2,j,q] \
       : 1 <= s <= n_steps && 1 <= j <= n_inter && 1 <= q <= 2} union \
       {[s,3,k,1] : 1 <= s <= n_steps && 1 <= k <= n_nodes}"
  in
  Fmt.pr "I0 = %a@." Set.pp i0;

  (* Data mappings M_{I0 -> x0} (Section 3.2): the j loop reaches x
     through the left/right index arrays, modeled as UFSs. *)
  heading "Section 3.2: data mappings";
  let m_x =
    Parser.relation
      "{[s,1,i,1] -> [i]} union {[s,2,j,q] -> [left(j)]} union {[s,2,j,q] -> \
       [right(j)]} union {[s,3,k,1] -> [k]}"
  in
  Fmt.pr "M_I0->x0 = %a@." Rel.pp m_x;

  (* A CPACK data reordering (Section 5.1): R_{x0->x1}. Registering the
     bijection lets the simplifier use sigma_cp_inv when inverting. *)
  heading "Section 5.1: CPACK data reordering";
  let env =
    Ufs_env.add_bijection "sigma_cp" ~inverse:"sigma_cp_inv" ~arity:1
      (Ufs_env.add_bijection "delta_lg" ~inverse:"delta_lg_inv" ~arity:1
         Ufs_env.empty)
  in
  let r_cp = Parser.relation "{[m] -> [sigma_cp(m)]}" in
  let m_x1 = Rel.compose ~env r_cp m_x in
  Fmt.pr "R_x0->x1 = %a@." Rel.pp r_cp;
  Fmt.pr "M_I0->x1 = R . M = %a@." Rel.pp m_x1;

  (* A lexGroup iteration reordering of the j loop (Section 5.2):
     T_{I0->I1}. Data mappings compose with T^-1; the i and k loops
     follow sigma_cp. *)
  heading "Section 5.2: lexGroup iteration reordering";
  let t01 =
    Parser.relation
      "{[s,1,i,1] -> [s,1,sigma_cp(i),1]} union {[s,2,j,q] -> \
       [s,2,delta_lg(j),q]} union {[s,3,k,1] -> [s,3,sigma_cp(k),1]}"
  in
  let t01_inv = Rel.inverse ~env t01 in
  Fmt.pr "T_I0->I1      = %a@." Rel.pp t01;
  Fmt.pr "T_I0->I1^-1   = %a@." Rel.pp t01_inv;
  let m_i1_x1 = Rel.compose ~env m_x1 t01_inv in
  Fmt.pr "M_I1->x1 = M . T^-1 = %a@." Rel.pp m_i1_x1;

  (* Updated dependences D' = T . D . T^-1 (Section 5.2). *)
  heading "Section 5.2: transformed dependences";
  let d24 =
    Parser.relation
      "{[s,2,j,q] -> [sp,3,left(j),1] : s <= sp && 1 <= q <= 2} union \
       {[s,2,j,q] -> [sp,3,right(j),1] : s <= sp && 1 <= q <= 2}"
  in
  let d24' = Rel.compose ~env (Rel.compose ~env t01 d24) t01_inv in
  Fmt.pr "d24 u d34  = %a@." Rel.pp d24;
  Fmt.pr "updated    = %a@." Rel.pp d24';

  (* The whole Section 5 pipeline, automated: the Symbolic module folds
     a plan over the program description and logs each step. *)
  heading "Sections 5.3-5.4 via Compose.Symbolic";
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  let st =
    Compose.Symbolic.apply
      (Compose.Symbolic.create Compose.Symbolic.moldyn_program)
      plan
  in
  Fmt.pr "%a@." Compose.Symbolic.pp_report st;

  (* Evaluating a composed relation against concrete inspector output:
     the compile-time formula and the run-time index arrays agree. *)
  heading "compile-time formula vs run-time inspector";
  let left = [| 0; 3; 2; 5; 1; 4 |] and right = [| 3; 2; 5; 1; 4; 0 |] in
  let access = Reorder.Access.of_pairs ~n_data:6 left right in
  let sigma = Reorder.Cpack.run access in
  let interp f args =
    match f, args with
    | "sigma_cp", [ m ] -> Reorder.Perm.forward sigma m
    | "left", [ j ] -> left.(j)
    | "right", [ j ] -> right.(j)
    | _ -> failwith ("uninterpreted " ^ f)
  in
  let formula = Parser.relation "{[j] -> [sigma_cp(left(j))]}" in
  for j = 0 to 5 do
    let loc = List.hd (Rel.eval_fn ~interp formula [ j ]) in
    Fmt.pr "j = %d: new location of x[left(j)] is %d@." j loc
  done
