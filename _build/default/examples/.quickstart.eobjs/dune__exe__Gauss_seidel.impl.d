examples/gauss_seidel.ml: Array Cachesim Datagen Fmt Irgraph Kernels List
