examples/parallel_tiles.ml: Array Compose Datagen Fmt Irgraph Kernels List Option Reorder
