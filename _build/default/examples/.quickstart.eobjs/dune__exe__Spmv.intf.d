examples/spmv.mli:
