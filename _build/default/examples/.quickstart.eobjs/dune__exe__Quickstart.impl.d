examples/quickstart.ml: Cachesim Compose Datagen Fmt Kernels
