examples/composition_dsl.ml: Array Compose Fmt List Parser Presburger Rel Reorder Set Ufs_env
