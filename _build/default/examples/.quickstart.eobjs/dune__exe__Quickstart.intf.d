examples/quickstart.mli:
