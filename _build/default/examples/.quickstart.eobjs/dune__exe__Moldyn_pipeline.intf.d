examples/moldyn_pipeline.mli:
