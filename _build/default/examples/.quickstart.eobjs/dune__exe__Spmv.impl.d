examples/spmv.ml: Array Cachesim Datagen Fmt Irgraph Reorder
