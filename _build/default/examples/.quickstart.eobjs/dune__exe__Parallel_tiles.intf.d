examples/parallel_tiles.mli:
