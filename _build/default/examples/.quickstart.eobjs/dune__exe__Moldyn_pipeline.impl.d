examples/moldyn_pipeline.ml: Cachesim Compose Datagen Fmt Harness Kernels List
