examples/composition_dsl.mli:
