(* Hierarchical spans. [with_] is the common form; [with_span] hands
   the open span to the body so it can attach attributes computed
   during the work (e.g. the reordering-function name an inspector
   step produced). *)

type t = Sink.span

let dummy =
  { Sink.id = -1; parent = None; name = ""; depth = 0; start = 0.0; attrs = [] }

let set_attr (s : t) key v =
  if s.Sink.id >= 0 then
    s.Sink.attrs <- (key, v) :: List.remove_assoc key s.Sink.attrs

let start ?(attrs = []) name =
  let parent, depth =
    match !Runtime.stack with
    | [] -> (None, 0)
    | p :: _ -> (Some p.Sink.id, p.Sink.depth + 1)
  in
  incr Runtime.next_id;
  let s =
    {
      Sink.id = !Runtime.next_id;
      parent;
      name;
      depth;
      start = Runtime.now ();
      attrs;
    }
  in
  Runtime.stack := s :: !Runtime.stack;
  Runtime.emit (Sink.Span_start s);
  s

let finish (s : t) =
  (* Drop any spans an exception left open below us before popping. *)
  let rec pop = function
    | top :: rest when top == s -> Runtime.stack := rest
    | _ :: rest -> pop rest
    | [] -> ()
  in
  pop !Runtime.stack;
  Runtime.emit (Sink.Span_end (s, Runtime.now () -. s.Sink.start))

let with_span ?attrs ~name f =
  if not (Runtime.is_enabled ()) then f dummy
  else begin
    let s = start ?attrs name in
    match f s with
    | y ->
      finish s;
      y
    | exception e ->
      finish s;
      raise e
  end

let with_ ?attrs ~name f = with_span ?attrs ~name (fun _ -> f ())
