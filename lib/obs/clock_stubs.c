/* Monotonic clock primitive for Rtrt_obs.Clock.

   CLOCK_MONOTONIC never jumps backwards under NTP slews or wall-clock
   adjustments, which is what every duration measurement in the tree
   wants. The native-code entry point returns an unboxed int64 and is
   [@@noalloc], so a timestamp read is a plain C call with no OCaml
   allocation. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t rtrt_clock_monotonic_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value rtrt_clock_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(rtrt_clock_monotonic_ns_unboxed(unit));
}
