(* Named counters and gauges for domain events (data remaps performed,
   dependences traversed, tiles grown, cache accesses per level, ...).

   Handles are created once at module-initialization time; the hot-path
   operations ([add], [incr], [set]) are a single enabled-branch plus
   an atomic update, so instrumented code pays nothing measurable when
   tracing is off. Values live in [Atomic.t] cells so instrumented
   code may run inside worker domains without losing increments.

   Registration and whole-registry traversals (dump/flush/reset) are
   serialized by [registry_mutex]: pool lanes may create handles
   concurrently with a dump on another domain without the Hashtbl
   resize racing the fold and silently dropping entries.

   Lifecycle: [switch_sink] is the supported way to change sinks
   mid-run — it flushes accumulated values to the OLD sink, installs
   the new one, then resets, so no stale value is ever attributed to
   the new trace. Histogram handles ({!Hist}) ride the same
   reset/dump/flush paths, lowered to derived gauges. *)

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = {
  g_name : string;
  g_value : float Atomic.t;
  g_set : bool Atomic.t;
}

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let registered tbl name make =
  Mutex.lock registry_mutex;
  let handle =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h = make () in
      Hashtbl.add tbl name h;
      h
  in
  Mutex.unlock registry_mutex;
  handle

let counter name =
  registered counters name (fun () ->
      { c_name = name; c_value = Atomic.make 0 })

let add c n =
  if Runtime.is_enabled () then ignore (Atomic.fetch_and_add c.c_value n)

let incr c = add c 1
let value c = Atomic.get c.c_value

let gauge name =
  registered gauges name (fun () ->
      { g_name = name; g_value = Atomic.make 0.0; g_set = Atomic.make false })

let set g v =
  if Runtime.is_enabled () then begin
    Atomic.set g.g_value v;
    Atomic.set g.g_set true
  end

let gauge_value g =
  if Atomic.get g.g_set then Some (Atomic.get g.g_value) else None

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_value 0.0;
      Atomic.set g.g_set false)
    gauges;
  Mutex.unlock registry_mutex;
  Hist.reset ()

(* Snapshot the handle lists under the mutex so a concurrent
   registration (Hashtbl resize) cannot race the fold; values are read
   after, from the atomic cells. *)
let snapshot () =
  Mutex.lock registry_mutex;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
  Mutex.unlock registry_mutex;
  (cs, gs)

(* Touched handles only, sorted by name for deterministic output.
   Histogram summaries are interleaved as derived gauges. *)
let dump () =
  let cs, gs = snapshot () in
  let cs =
    List.filter_map
      (fun c ->
        let v = Atomic.get c.c_value in
        if v <> 0 then Some (c.c_name, float_of_int v) else None)
      cs
  in
  let gs =
    List.filter_map
      (fun g ->
        if Atomic.get g.g_set then Some (g.g_name, Atomic.get g.g_value)
        else None)
      gs
  in
  List.sort compare (cs @ gs @ Hist.dump ())

let flush () =
  if Runtime.is_enabled () then begin
    let t = Runtime.now () in
    let emit kind name v =
      Runtime.emit
        (Sink.Metric { m_name = name; m_kind = kind; m_value = v; m_time = t })
    in
    let cs, gs = snapshot () in
    let cs = List.filter (fun c -> Atomic.get c.c_value <> 0) cs in
    List.iter
      (fun c -> emit Sink.Counter c.c_name (float_of_int (Atomic.get c.c_value)))
      (List.sort (fun a b -> compare a.c_name b.c_name) cs);
    let gs = List.filter (fun g -> Atomic.get g.g_set) gs in
    List.iter
      (fun g -> emit Sink.Gauge g.g_name (Atomic.get g.g_value))
      (List.sort (fun a b -> compare a.g_name b.g_name) gs);
    Hist.flush ()
  end

let switch_sink s =
  flush ();
  (* no-op when disabled; otherwise the old sink gets the totals *)
  Runtime.set_sink s;
  reset ()
