(* Named counters and gauges for domain events (data remaps performed,
   dependences traversed, tiles grown, cache accesses per level, ...).

   Handles are created once at module-initialization time; the hot-path
   operations ([add], [incr], [set]) are a single enabled-branch plus a
   field write, so instrumented code pays nothing measurable when
   tracing is off. [flush] emits one Metric event per touched handle
   to the active sink (and is called automatically at exit by
   Config). *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let add c n = if Runtime.is_enabled () then c.c_value <- c.c_value + n
let incr c = add c 1
let value c = c.c_value

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0; g_set = false } in
    Hashtbl.add gauges name g;
    g

let set g v =
  if Runtime.is_enabled () then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = if g.g_set then Some g.g_value else None

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- 0.0;
      g.g_set <- false)
    gauges

(* Touched handles only, sorted by name for deterministic output. *)
let dump () =
  let cs =
    Hashtbl.fold
      (fun _ c acc ->
        if c.c_value <> 0 then (c.c_name, float_of_int c.c_value) :: acc
        else acc)
      counters []
  in
  let gs =
    Hashtbl.fold
      (fun _ g acc -> if g.g_set then (g.g_name, g.g_value) :: acc else acc)
      gauges []
  in
  List.sort compare (cs @ gs)

let flush () =
  if Runtime.is_enabled () then begin
    let t = Runtime.now () in
    let emit kind name v =
      Runtime.emit
        (Sink.Metric { m_name = name; m_kind = kind; m_value = v; m_time = t })
    in
    let cs =
      Hashtbl.fold
        (fun _ c acc -> if c.c_value <> 0 then c :: acc else acc)
        counters []
    in
    List.iter
      (fun c -> emit Sink.Counter c.c_name (float_of_int c.c_value))
      (List.sort (fun a b -> compare a.c_name b.c_name) cs);
    let gs =
      Hashtbl.fold (fun _ g acc -> if g.g_set then g :: acc else acc) gauges []
    in
    List.iter
      (fun g -> emit Sink.Gauge g.g_name g.g_value)
      (List.sort (fun a b -> compare a.g_name b.g_name) gs)
  end
