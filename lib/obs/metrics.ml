(* Named counters and gauges for domain events (data remaps performed,
   dependences traversed, tiles grown, cache accesses per level, ...).

   Handles are created once at module-initialization time; the hot-path
   operations ([add], [incr], [set]) are a single enabled-branch plus
   an atomic update, so instrumented code pays nothing measurable when
   tracing is off. Values live in [Atomic.t] cells so instrumented
   code may run inside worker domains without losing increments;
   handle registration is serialized by a mutex so pool lanes may
   create handles concurrently. [flush] emits one Metric event per
   touched handle to the active sink (and is called automatically at
   exit by Config). *)

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = {
  g_name : string;
  g_value : float Atomic.t;
  g_set : bool Atomic.t;
}

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let registered tbl name make =
  Mutex.lock registry_mutex;
  let handle =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h = make () in
      Hashtbl.add tbl name h;
      h
  in
  Mutex.unlock registry_mutex;
  handle

let counter name =
  registered counters name (fun () ->
      { c_name = name; c_value = Atomic.make 0 })

let add c n =
  if Runtime.is_enabled () then ignore (Atomic.fetch_and_add c.c_value n)

let incr c = add c 1
let value c = Atomic.get c.c_value

let gauge name =
  registered gauges name (fun () ->
      { g_name = name; g_value = Atomic.make 0.0; g_set = Atomic.make false })

let set g v =
  if Runtime.is_enabled () then begin
    Atomic.set g.g_value v;
    Atomic.set g.g_set true
  end

let gauge_value g =
  if Atomic.get g.g_set then Some (Atomic.get g.g_value) else None

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_value 0.0;
      Atomic.set g.g_set false)
    gauges;
  Mutex.unlock registry_mutex

(* Touched handles only, sorted by name for deterministic output. *)
let dump () =
  let cs =
    Hashtbl.fold
      (fun _ c acc ->
        let v = Atomic.get c.c_value in
        if v <> 0 then (c.c_name, float_of_int v) :: acc else acc)
      counters []
  in
  let gs =
    Hashtbl.fold
      (fun _ g acc ->
        if Atomic.get g.g_set then (g.g_name, Atomic.get g.g_value) :: acc
        else acc)
      gauges []
  in
  List.sort compare (cs @ gs)

let flush () =
  if Runtime.is_enabled () then begin
    let t = Runtime.now () in
    let emit kind name v =
      Runtime.emit
        (Sink.Metric { m_name = name; m_kind = kind; m_value = v; m_time = t })
    in
    let cs =
      Hashtbl.fold
        (fun _ c acc -> if Atomic.get c.c_value <> 0 then c :: acc else acc)
        counters []
    in
    List.iter
      (fun c -> emit Sink.Counter c.c_name (float_of_int (Atomic.get c.c_value)))
      (List.sort (fun a b -> compare a.c_name b.c_name) cs);
    let gs =
      Hashtbl.fold
        (fun _ g acc -> if Atomic.get g.g_set then g :: acc else acc)
        gauges []
    in
    List.iter
      (fun g -> emit Sink.Gauge g.g_name (Atomic.get g.g_value))
      (List.sort (fun a b -> compare a.g_name b.g_name) gs)
  end
