(** Fixed-bucket log-linear latency histograms.

    Buckets have 16 sub-buckets per power of two, so any recorded
    value lands in a bucket whose relative width is at most 6.25% —
    and every quantile estimate is within one bucket width of an exact
    quantile of the recorded samples. [record] costs one branch when
    tracing is disabled; when enabled it is a handful of atomic
    updates and is safe from any domain.

    Histograms register in a global registry like counters/gauges and
    are lowered at flush time to derived [Gauge] metrics named
    [<name>.{count,min_ns,max_ns,mean_ns,p50_ns,p90_ns,p99_ns}], so
    the sink event schema is unchanged. {!Metrics.flush},
    {!Metrics.dump} and {!Metrics.reset} include them. *)

type t

(** Idempotent per name: returns the existing handle if registered. *)
val hist : string -> t

val name : t -> string

(** Record a non-negative nanosecond sample (negative values clamp to
    0). One branch when tracing is off. *)
val record : t -> int -> unit

(** Record a duration in seconds (converted to ns). *)
val record_s : t -> float -> unit

(** Samples recorded since the last reset. *)
val count : t -> int

type stats = {
  st_count : int;
  st_min : int;        (** ns; 0 when empty *)
  st_max : int;        (** ns; 0 when empty *)
  st_mean : float;     (** ns; 0.0 when empty *)
  st_p50 : int;        (** ns *)
  st_p90 : int;        (** ns *)
  st_p99 : int;        (** ns *)
}

(** Summary over the current contents. Extraction reads the buckets
    non-atomically as a whole; call at quiescent points. *)
val stats : t -> stats

(** [quantile h q] for q in [0, 1]: representative value of the first
    bucket whose cumulative count reaches [q * count], clamped to the
    observed min/max. 0 when empty. *)
val quantile : t -> float -> int

(** Zero every registered histogram. *)
val reset : unit -> unit

(** Derived (name, value) pairs of every touched histogram, sorted by
    histogram name. *)
val dump : unit -> (string * float) list

(** Emit the derived pairs as Gauge Metric events to the active sink. *)
val flush : unit -> unit

(**/**)

(* Exposed for the qcheck property tests. *)
val index_of : int -> int
val lower_bound : int -> int
