(** Per-phase execution profiles: monotonic timings plus
    [Gc.quick_stat] deltas (minor/major words, collections) captured
    around a closure. Capture is always on — two [quick_stat] reads
    cost nanoseconds — so figure JSON carries profile blocks even with
    tracing disabled. *)

type phase = {
  ph_name : string;
  ph_seconds : float;            (** monotonic wall time *)
  ph_minor_words : float;
  ph_promoted_words : float;
  ph_major_words : float;
  ph_minor_collections : int;
  ph_major_collections : int;
  ph_compactions : int;
  ph_heap_words : int;           (** major heap size at phase end *)
}

(** [record ~name f] runs [f ()] and returns its result with the
    phase profile. *)
val record : name:string -> (unit -> 'a) -> 'a * phase

val json_of_phase : phase -> Json.t

(** Self-describing profile block:
    [{"schema":"rtrt.profile/1","clock":"monotonic","phases":[...]}] *)
val json_of_phases : phase list -> Json.t

val pp_phase : Format.formatter -> phase -> unit
