(* Environment/CLI configuration surface:

     RTRT_TRACE=pretty            indented trace on stderr
     RTRT_TRACE=jsonl             JSONL trace to ./rtrt_trace.jsonl
     RTRT_TRACE=jsonl:PATH        JSONL trace to PATH
     RTRT_TRACE=off|0|none|""     disabled (the default)

   `rtrt --trace` passes [~default:Pretty] so the env var still wins
   when both are given. An at_exit hook flushes the metrics registry
   and closes the sink, so JSONL traces always end with the counter
   and gauge totals. *)

type mode = Off | Pretty | Jsonl of string

let default_jsonl_path = "rtrt_trace.jsonl"

let parse spec =
  match spec with
  | "" | "0" | "off" | "none" -> Ok Off
  | "pretty" -> Ok Pretty
  | "jsonl" -> Ok (Jsonl default_jsonl_path)
  | s when String.length s > 6 && String.sub s 0 6 = "jsonl:" ->
    Ok (Jsonl (String.sub s 6 (String.length s - 6)))
  | s ->
    Error
      (Fmt.str "unknown RTRT_TRACE value %S (expected pretty | jsonl[:PATH] | off)"
         s)

let exit_hook_registered = ref false

let register_exit_hook () =
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit (fun () ->
        if Runtime.is_enabled () then begin
          Metrics.flush ();
          Runtime.disable () (* flushes and closes the sink *)
        end)
  end

let install = function
  | Off -> Runtime.disable ()
  | Pretty ->
    register_exit_hook ();
    Runtime.set_sink (Sink.pretty Fmt.stderr)
  | Jsonl path -> (
    match Sink.jsonl_file path with
    | sink ->
      register_exit_hook ();
      Runtime.set_sink sink;
      Fmt.epr "rtrt: writing jsonl trace to %s@." path
    | exception Sys_error msg ->
      Fmt.epr "rtrt: cannot open jsonl trace (%s); tracing disabled@." msg;
      Runtime.disable ())

let init ?(default = Off) () =
  match Sys.getenv_opt "RTRT_TRACE" with
  | None -> install default
  | Some spec -> (
    match parse spec with
    | Ok m -> install m
    | Error msg ->
      Fmt.epr "rtrt: %s; tracing disabled@." msg;
      install Off)
