(* Environment/CLI configuration surface:

     RTRT_TRACE=pretty            indented trace on stderr
     RTRT_TRACE=jsonl             JSONL trace to ./rtrt_trace.jsonl
     RTRT_TRACE=jsonl:PATH        JSONL trace to PATH
     RTRT_TRACE=off|0|none|""     disabled (the default)

   `rtrt --trace` passes [~default:Pretty] so the env var still wins
   when both are given. An at_exit hook flushes the metrics registry
   and closes the sink, so JSONL traces always end with the counter
   and gauge totals. *)

type mode = Off | Pretty | Jsonl of string

let default_jsonl_path = "rtrt_trace.jsonl"

(* ------------------------------------------------------------------ *)
(* Warn-and-default environment parsing, shared by every RTRT_* env
   var (RTRT_TRACE here, RTRT_DOMAINS in Pool, RTRT_SCALE and the
   bench toggles in bench/main.ml, RTRT_PLAN_CACHE_DIR in Plancache):
   an unset variable silently yields the default, an unparsable value
   warns once on stderr and yields the default — never a silent
   partial fallback, never an exception. *)

let env_parse ~name ~parse ~default () =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match parse s with
    | Ok v -> v
    | Error msg ->
      Fmt.epr "rtrt: warning: %s=%S %s; using default@." name s msg;
      default)

let env_int ?(min = min_int) ~name ~default () =
  env_parse ~name ~default ()
    ~parse:(fun s ->
      match int_of_string_opt s with
      | Some n when n >= min -> Ok n
      | Some _ -> Error (Fmt.str "is below the minimum %d" min)
      | None -> Error "is not an integer")

let env_bool ~name ~default () =
  env_parse ~name ~default ()
    ~parse:(fun s ->
      match String.lowercase_ascii s with
      | "1" | "true" | "yes" | "on" -> Ok true
      | "" | "0" | "false" | "no" | "off" -> Ok false
      | _ -> Error "is not a boolean (expected 1|true|yes|on|0|false|no|off)")

(* A directory-valued variable; empty or whitespace-only means unset. *)
let env_dir ~name () =
  match Sys.getenv_opt name with
  | None -> None
  | Some s ->
    let s = String.trim s in
    if s = "" then None else Some s

let parse spec =
  match spec with
  | "" | "0" | "off" | "none" -> Ok Off
  | "pretty" -> Ok Pretty
  | "jsonl" -> Ok (Jsonl default_jsonl_path)
  | s when String.length s > 6 && String.sub s 0 6 = "jsonl:" ->
    Ok (Jsonl (String.sub s 6 (String.length s - 6)))
  | s ->
    Error
      (Fmt.str "unknown RTRT_TRACE value %S (expected pretty | jsonl[:PATH] | off)"
         s)

let exit_hook_registered = ref false

let register_exit_hook () =
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit (fun () ->
        if Runtime.is_enabled () then begin
          Metrics.flush ();
          Runtime.disable () (* flushes and closes the sink *)
        end)
  end

let install = function
  | Off -> Runtime.disable ()
  | Pretty ->
    register_exit_hook ();
    Metrics.switch_sink (Sink.pretty Fmt.stderr)
  | Jsonl path -> (
    match Sink.jsonl_file path with
    | sink ->
      register_exit_hook ();
      Metrics.switch_sink sink;
      Fmt.epr "rtrt: writing jsonl trace to %s@." path
    | exception Sys_error msg ->
      Fmt.epr "rtrt: cannot open jsonl trace (%s); tracing disabled@." msg;
      Runtime.disable ())

let init ?(default = Off) () =
  install
    (env_parse ~name:"RTRT_TRACE" ~default ()
       ~parse:(fun spec ->
         match parse spec with
         | Ok m -> Ok m
         | Error _ -> Error "is not pretty | jsonl[:PATH] | off"))
