(** The single monotonic time base shared by spans, histograms, pool
    accounting, and the bench harness. Readings come from
    [CLOCK_MONOTONIC] via a noalloc C stub: they never go backwards
    and have an arbitrary epoch, so only differences are meaningful. *)

(** Monotonic nanoseconds as a native int (wraps after ~146 years). *)
val now_ns : unit -> int

(** Monotonic seconds ([now_ns] scaled); same epoch caveat. *)
val now_s : unit -> float

(** Nanoseconds to seconds. *)
val to_s : int -> float

(** [elapsed_ns t0] = [now_ns () - t0]. *)
val elapsed_ns : int -> int

(** [time f] runs [f ()] and returns its result with the elapsed
    monotonic seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_ns f] runs [f ()] and returns its result with the elapsed
    monotonic nanoseconds. *)
val time_ns : (unit -> 'a) -> 'a * int

(** Wall-clock seconds since the Unix epoch. This is the only
    [Unix.gettimeofday] site in the tree; it exists solely so trace
    headers can carry a human-readable timestamp. *)
val wall_s : unit -> float
