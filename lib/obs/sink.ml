(* Trace events and pluggable sinks.

   A sink consumes the event stream produced by spans and the metrics
   registry. Three implementations ship: [null] (the default — with
   tracing disabled no event is ever built, so this is only reached if
   someone emits while enabled with no sink), [pretty] (indented
   human-readable lines), and [jsonl] (one JSON object per line, the
   machine-readable export the harness's analysis scripts consume).
   [memory] collects events in-process for tests and trace-report. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  start : float; (* monotonic seconds (Clock.now_s) at open *)
  mutable attrs : (string * Json.t) list;
}

type metric_kind = Counter | Gauge

type metric = {
  m_name : string;
  m_kind : metric_kind;
  m_value : float;
  m_time : float;
}

type event =
  | Span_start of span
  | Span_end of span * float (* duration in seconds *)
  | Metric of metric

type t = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null =
  { emit = (fun _ -> ()); flush = (fun () -> ()); close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Pretty sink                                                         *)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Fmt.pf ppf " {%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) ->
           Fmt.pf ppf "%s=%s" k (Json.to_string v)))
      attrs

let pretty ppf =
  let emit = function
    | Span_start s ->
      Fmt.pf ppf "%s> %s%a@."
        (String.make (2 * s.depth) ' ')
        s.name pp_attrs s.attrs
    | Span_end (s, dur) ->
      Fmt.pf ppf "%s< %s %.6fs%a@."
        (String.make (2 * s.depth) ' ')
        s.name dur pp_attrs s.attrs
    | Metric m ->
      Fmt.pf ppf "# %s %s = %g@."
        (match m.m_kind with Counter -> "counter" | Gauge -> "gauge")
        m.m_name m.m_value
  in
  { emit; flush = (fun () -> Fmt.flush ppf ()); close = (fun () -> Fmt.flush ppf ()) }

(* ------------------------------------------------------------------ *)
(* JSONL sink                                                          *)

let json_of_event =
  let open Json in
  function
  | Span_start s ->
    Obj
      [
        ("ev", String "span_start");
        ("id", Int s.id);
        ("parent", (match s.parent with Some p -> Int p | None -> Null));
        ("name", String s.name);
        ("depth", Int s.depth);
        ("t", Float s.start);
        ("attrs", Obj s.attrs);
      ]
  | Span_end (s, dur) ->
    Obj
      [
        ("ev", String "span_end");
        ("id", Int s.id);
        ("parent", (match s.parent with Some p -> Int p | None -> Null));
        ("name", String s.name);
        ("depth", Int s.depth);
        ("t", Float s.start);
        ("dur_s", Float dur);
        ("attrs", Obj s.attrs);
      ]
  | Metric m ->
    Obj
      [
        ( "ev",
          String (match m.m_kind with Counter -> "counter" | Gauge -> "gauge")
        );
        ("name", String m.m_name);
        ("value", Float m.m_value);
        ("t", Float m.m_time);
      ]

let event_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match str "ev" with
  | Some (("span_start" | "span_end") as ev) -> (
    match (str "name", int "id", int "depth", num "t") with
    | Some name, Some id, Some depth, Some t -> (
      let parent =
        match Json.member "parent" j with
        | Some (Json.Int p) -> Some p
        | _ -> None
      in
      let attrs =
        match Json.member "attrs" j with Some (Json.Obj kvs) -> kvs | _ -> []
      in
      let span = { id; parent; name; depth; start = t; attrs } in
      if ev = "span_start" then Ok (Span_start span)
      else
        match num "dur_s" with
        | Some d -> Ok (Span_end (span, d))
        | None -> Error "span_end without dur_s")
    | _ -> Error "span event missing name/id/depth/t")
  | Some (("counter" | "gauge") as ev) -> (
    match (str "name", num "value") with
    | Some name, Some v ->
      Ok
        (Metric
           {
             m_name = name;
             m_kind = (if ev = "counter" then Counter else Gauge);
             m_value = v;
             m_time = Option.value ~default:0.0 (num "t");
           })
    | _ -> Error "metric event missing name/value")
  | Some ev -> Error ("unknown event type " ^ ev)
  | None -> Error "event without \"ev\" field"

let jsonl oc =
  let emit e =
    output_string oc (Json.to_string (json_of_event e));
    output_char oc '\n'
  in
  {
    emit;
    flush = (fun () -> Stdlib.flush oc);
    close = (fun () -> Stdlib.flush oc);
  }

let jsonl_file path =
  let oc = open_out path in
  let emit e =
    output_string oc (Json.to_string (json_of_event e));
    output_char oc '\n'
  in
  { emit; flush = (fun () -> Stdlib.flush oc); close = (fun () -> close_out oc) }

(* ------------------------------------------------------------------ *)
(* In-memory sink                                                      *)

let memory () =
  let events = ref [] in
  ( {
      emit = (fun e -> events := e :: !events);
      flush = (fun () -> ());
      close = (fun () -> ());
    },
    fun () -> List.rev !events )
