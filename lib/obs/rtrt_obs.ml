(** [Rtrt_obs]: zero-dependency structured tracing and metrics for the
    inspector/executor pipeline.

    - {!Clock}: the single monotonic time base (ns) for every duration;
    - {!Span}: hierarchical timed spans ([Span.with_ ~name f]);
    - {!Metrics}: named counters and gauges for domain events;
    - {!Hist}: fixed-bucket log-scale latency histograms;
    - {!Profile}: per-phase GC + timing profiles for figure JSON;
    - {!Sink}: pluggable event consumers (null / pretty / JSONL /
      in-memory);
    - {!Config}: the [RTRT_TRACE] env + CLI surface;
    - {!Report}: span-tree reconstruction and self-time aggregation;
    - {!Json}: the minimal JSON layer backing JSONL export.

    Tracing is off by default; every instrumented hot path is guarded
    by a single enabled-branch, so the disabled cost is unmeasurable
    (verified by test_obs). *)

module Json = Json
module Sink = Sink
module Clock = Clock
module Span = Span
module Metrics = Metrics
module Hist = Hist
module Profile = Profile
module Report = Report
module Config = Config

(** Is tracing currently enabled? *)
let enabled = Runtime.is_enabled

(** Route events to [sink] and enable tracing. Flushes accumulated
    metrics to the previous sink and resets them, so values never leak
    across traces (see {!Metrics.switch_sink}). *)
let set_sink = Metrics.switch_sink

(** Disable tracing, closing the active sink. *)
let disable = Runtime.disable

(** Flush metrics (as Metric events) and the sink. *)
let flush () =
  Metrics.flush ();
  Runtime.flush ()
