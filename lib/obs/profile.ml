(* Per-phase execution profiles: monotonic wall time plus
   Gc.quick_stat deltas around a closure. [record] is always on — one
   quick_stat read per side is nanoseconds — so figure JSON carries a
   profile block whether or not tracing is enabled. *)

type phase = {
  ph_name : string;
  ph_seconds : float;           (* monotonic *)
  ph_minor_words : float;
  ph_promoted_words : float;
  ph_major_words : float;
  ph_minor_collections : int;
  ph_major_collections : int;
  ph_compactions : int;
  ph_heap_words : int;          (* major heap size at phase end *)
}

let record ~name f =
  let q0 = Gc.quick_stat () in
  let t0 = Clock.now_ns () in
  let y = f () in
  let dt = Clock.now_ns () - t0 in
  let q1 = Gc.quick_stat () in
  ( y,
    {
      ph_name = name;
      ph_seconds = Clock.to_s dt;
      ph_minor_words = q1.Gc.minor_words -. q0.Gc.minor_words;
      ph_promoted_words = q1.Gc.promoted_words -. q0.Gc.promoted_words;
      ph_major_words = q1.Gc.major_words -. q0.Gc.major_words;
      ph_minor_collections = q1.Gc.minor_collections - q0.Gc.minor_collections;
      ph_major_collections = q1.Gc.major_collections - q0.Gc.major_collections;
      ph_compactions = q1.Gc.compactions - q0.Gc.compactions;
      ph_heap_words = q1.Gc.heap_words;
    } )

let json_of_phase p =
  Json.Obj
    [
      ("name", Json.String p.ph_name);
      ("seconds", Json.Float p.ph_seconds);
      ("minor_words", Json.Float p.ph_minor_words);
      ("promoted_words", Json.Float p.ph_promoted_words);
      ("major_words", Json.Float p.ph_major_words);
      ("minor_collections", Json.Int p.ph_minor_collections);
      ("major_collections", Json.Int p.ph_major_collections);
      ("compactions", Json.Int p.ph_compactions);
      ("heap_words", Json.Int p.ph_heap_words);
    ]

(* Self-describing: consumers can dispatch on the schema tag without
   knowing which harness produced the file. *)
let json_of_phases phases =
  Json.Obj
    [
      ("schema", Json.String "rtrt.profile/1");
      ("clock", Json.String "monotonic");
      ("phases", Json.List (List.map json_of_phase phases));
    ]

let pp_phase ppf p =
  Fmt.pf ppf "%-18s %8.3f ms  minor %10.0fw  major %9.0fw  gc %d/%d"
    p.ph_name (p.ph_seconds *. 1e3) p.ph_minor_words p.ph_major_words
    p.ph_minor_collections p.ph_major_collections
