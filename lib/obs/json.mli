(** Minimal JSON values: printer, parser, accessors. Backs the JSONL
    trace sink and the [rtrt json <figure>] export; deliberately tiny
    so the observability layer stays dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. Non-finite floats print as
    [null]. *)
val to_string : t -> string

exception Parse_error of string

(** Strings are raw bytes; [\uXXXX] escapes (including surrogate
    pairs) decode to UTF-8, and unpaired surrogates are rejected. *)
val of_string_exn : string -> t

val of_string : string -> (t, string) result

val member : string -> t -> t option
val to_string_opt : t -> string option
val to_int_opt : t -> int option

(** Accepts [Int] too (JSON numbers are untyped). *)
val to_float_opt : t -> float option

val to_list_opt : t -> t list option
val pp : t Fmt.t
