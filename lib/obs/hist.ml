(* Fixed-bucket log-linear latency histograms (HDR-style).

   Buckets cover the non-negative int range with 16 sub-buckets per
   power of two (sub_bits = 4): values below 16 get exact unit
   buckets, and every larger bucket has width 2^(e-4) for values near
   2^e, i.e. at most 1/16 = 6.25% relative error. That bounds the
   error of any quantile estimate by one bucket's relative width,
   which is plenty for latency distributions spanning nanoseconds to
   seconds.

   Hot path: [record] is one enabled-branch when tracing is off; when
   on, it is a bit-scan plus three atomic adds and two CAS loops
   (min/max) — safe from any domain, no allocation. Extraction
   ([stats], [quantile]) walks the bucket array; it is only called at
   flush/report time.

   Histograms live in a registry beside the counter/gauge tables in
   Metrics; [flush] lowers each touched histogram to derived Gauge
   metrics (<name>.{count,min_ns,max_ns,mean_ns,p50_ns,p90_ns,p99_ns})
   so the Sink event schema — and every existing trace consumer —
   stays unchanged. *)

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 sub-buckets per octave *)

(* Enough buckets for any 62-bit value: highest index is
   (62 - sub_bits + 1) * 16 + 15 < 960. *)
let n_buckets = 960

type t = {
  h_name : string;
  buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t; (* max_int while empty *)
  h_max : int Atomic.t; (* -1 while empty *)
}

let name h = h.h_name

(* Index of the most significant set bit of v >= 1. Float.frexp gets
   within one position in constant time; the loops correct for
   rounding at power-of-two boundaries (at most one step each). *)
let msb v =
  let e = ref (snd (Float.frexp (float_of_int v)) - 1) in
  while v lsr !e = 0 do
    decr e
  done;
  while v lsr !e > 1 do
    incr e
  done;
  !e

let index_of v =
  if v < sub then v
  else begin
    let shift = msb v - sub_bits in
    ((shift + 1) lsl sub_bits) + ((v lsr shift) land (sub - 1))
  end

(* Smallest value mapping to [index]; buckets are contiguous, so
   bucket [i] covers [lower_bound i, lower_bound (i+1) - 1]. *)
let lower_bound index =
  if index < sub then index
  else
    let shift = (index lsr sub_bits) - 1 in
    (sub lor (index land (sub - 1))) lsl shift

(* Midpoint used as the representative value of a bucket. *)
let midpoint index = (lower_bound index + lower_bound (index + 1) - 1) / 2

let registry_mutex = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let hist name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h =
        {
          h_name = name;
          buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_min = Atomic.make max_int;
          h_max = Atomic.make (-1);
        }
      in
      Hashtbl.add registry name h;
      h
  in
  Mutex.unlock registry_mutex;
  h

let rec cas_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then cas_min cell v

let rec cas_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

let record h ns =
  if Runtime.is_enabled () then begin
    let ns = if ns < 0 then 0 else ns in
    Atomic.incr h.buckets.(index_of ns);
    Atomic.incr h.h_count;
    ignore (Atomic.fetch_and_add h.h_sum ns);
    cas_min h.h_min ns;
    cas_max h.h_max ns
  end

let record_s h s = record h (int_of_float (s *. 1e9))
let count h = Atomic.get h.h_count

type stats = {
  st_count : int;
  st_min : int;
  st_max : int;
  st_mean : float;
  st_p50 : int;
  st_p90 : int;
  st_p99 : int;
}

(* Quantile over a snapshot of the buckets: the representative value
   of the first bucket whose cumulative count reaches q * total,
   clamped to the observed [min, max] so q=0/q=1 are exact. Concurrent
   recorders can skew a live read by a sample or two — extraction is
   meant for quiescent flush/report points. *)
let quantile_of ~counts ~total ~mn ~mx q =
  if total = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int total)) in
    let rank = if rank < 1 then 1 else if rank > total then total else rank in
    let acc = ref 0 in
    let i = ref 0 in
    while !acc < rank && !i < n_buckets do
      acc := !acc + counts.(!i);
      incr i
    done;
    let v = midpoint (!i - 1) in
    if v < mn then mn else if v > mx then mx else v
  end

let stats h =
  let counts = Array.map Atomic.get h.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then
    {
      st_count = 0;
      st_min = 0;
      st_max = 0;
      st_mean = 0.0;
      st_p50 = 0;
      st_p90 = 0;
      st_p99 = 0;
    }
  else begin
    let mn = Atomic.get h.h_min and mx = Atomic.get h.h_max in
    let q = quantile_of ~counts ~total ~mn ~mx in
    {
      st_count = total;
      st_min = mn;
      st_max = mx;
      st_mean = float_of_int (Atomic.get h.h_sum) /. float_of_int total;
      st_p50 = q 0.50;
      st_p90 = q 0.90;
      st_p99 = q 0.99;
    }
  end

let quantile h q =
  let counts = Array.map Atomic.get h.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  quantile_of ~counts ~total ~mn:(Atomic.get h.h_min)
    ~mx:(Atomic.get h.h_max) q

let reset_one h =
  Array.iter (fun b -> Atomic.set b 0) h.buckets;
  Atomic.set h.h_count 0;
  Atomic.set h.h_sum 0;
  Atomic.set h.h_min max_int;
  Atomic.set h.h_max (-1)

let snapshot_registry () =
  Mutex.lock registry_mutex;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> compare a.h_name b.h_name) hs

let reset () = List.iter reset_one (snapshot_registry ())

(* Derived (name, value) pairs for the touched histograms, in the
   shape Metrics.dump interleaves with counters and gauges. *)
let derived h =
  let st = stats h in
  [
    (h.h_name ^ ".count", float_of_int st.st_count);
    (h.h_name ^ ".min_ns", float_of_int st.st_min);
    (h.h_name ^ ".max_ns", float_of_int st.st_max);
    (h.h_name ^ ".mean_ns", st.st_mean);
    (h.h_name ^ ".p50_ns", float_of_int st.st_p50);
    (h.h_name ^ ".p90_ns", float_of_int st.st_p90);
    (h.h_name ^ ".p99_ns", float_of_int st.st_p99);
  ]

let dump () =
  List.concat_map
    (fun h -> if count h > 0 then derived h else [])
    (snapshot_registry ())

let flush () =
  if Runtime.is_enabled () then begin
    let t = Runtime.now () in
    List.iter
      (fun (name, v) ->
        Runtime.emit
          (Sink.Metric
             { m_name = name; m_kind = Sink.Gauge; m_value = v; m_time = t }))
      (dump ())
  end
