(** Offline analysis of a trace event stream: span-forest
    reconstruction, per-name total/self-time aggregation, and JSONL
    re-reading. *)

type node = { span : Sink.span; dur : float; children : node list }

(** Rebuild the span forest from Span_end events (children close
    before parents; orphans of never-closed parents become roots). *)
val tree_of_events : Sink.event list -> node list

(** Sum of the direct children's durations. *)
val child_seconds : node -> float

(** Duration minus direct children's durations. *)
val self_seconds : node -> float

type agg = { agg_name : string; count : int; total_s : float; self_s : float }

(** Per-span-name aggregates, sorted by descending total time. *)
val summarize : Sink.event list -> agg list

(** The Metric events of the stream, in order. *)
val metrics : Sink.event list -> Sink.metric list

(** Parse a JSONL trace file back into events; raises
    [Invalid_argument] on a malformed line. *)
val events_of_jsonl : string -> Sink.event list

val pp_summary : agg list Fmt.t
val pp_tree : node list Fmt.t
