(* Global tracing state. Everything the hot paths touch funnels through
   [is_enabled]: with tracing off, a span is one branch and a counter
   add is one branch — no allocation, no clock read.

   [now] is monotonic (Clock.now_s): span starts/durations never go
   backwards under wall-clock adjustments. Each [set_sink] emits one
   wall-clock header metric (trace.wall_start_unix_s) so a trace still
   carries a human-readable absolute timestamp. *)

let enabled = ref false
let sink = ref Sink.null
let stack : Sink.span list ref = ref []
let next_id = ref 0

let now () = Clock.now_s ()
let is_enabled () = !enabled
let emit e = !sink.Sink.emit e
let flush () = !sink.Sink.flush ()

let set_sink s =
  !sink.Sink.close ();
  sink := s;
  stack := [];
  enabled := true;
  (* Trace header: the one wall-clock timestamp per trace. *)
  emit
    (Sink.Metric
       {
         m_name = "trace.wall_start_unix_s";
         m_kind = Sink.Gauge;
         m_value = Clock.wall_s ();
         m_time = now ();
       })

let disable () =
  !sink.Sink.close ();
  sink := Sink.null;
  stack := [];
  enabled := false
