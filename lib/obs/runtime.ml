(* Global tracing state. Everything the hot paths touch funnels through
   [is_enabled]: with tracing off, a span is one branch and a counter
   add is one branch — no allocation, no clock read. *)

let enabled = ref false
let sink = ref Sink.null
let stack : Sink.span list ref = ref []
let next_id = ref 0

let now () = Unix.gettimeofday ()
let is_enabled () = !enabled
let emit e = !sink.Sink.emit e
let flush () = !sink.Sink.flush ()

let set_sink s =
  !sink.Sink.close ();
  sink := s;
  stack := [];
  enabled := true

let disable () =
  !sink.Sink.close ();
  sink := Sink.null;
  stack := [];
  enabled := false
