(* The single time base for the tree.

   Every duration — span lengths, histogram samples, bench numbers,
   pool lane accounting — derives from [now_ns], a CLOCK_MONOTONIC
   read through a noalloc C stub. Monotonic time has an arbitrary
   epoch, so absolute values are only meaningful as differences; the
   one place that needs human-readable absolute time (the trace
   header) uses [wall_s], the only Unix.gettimeofday call site left in
   the library tree. *)

external now_ns_unboxed : unit -> (int64[@unboxed])
  = "rtrt_clock_monotonic_ns_byte" "rtrt_clock_monotonic_ns_unboxed"
[@@noalloc]

(* Native int: 63 bits of nanoseconds wrap after ~146 years of uptime,
   and plain int arithmetic keeps the hot paths allocation-free. *)
let now_ns () = Int64.to_int (now_ns_unboxed ())
let ns_per_s = 1e9
let to_s ns = float_of_int ns /. ns_per_s
let now_s () = to_s (now_ns ())
let elapsed_ns t0 = now_ns () - t0

let time f =
  let t0 = now_ns () in
  let y = f () in
  (y, to_s (now_ns () - t0))

let time_ns f =
  let t0 = now_ns () in
  let y = f () in
  (y, now_ns () - t0)

(* Wall-clock seconds since the Unix epoch — trace headers only. *)
let wall_s () = Unix.gettimeofday ()
