(* Minimal JSON values with a printer and a recursive-descent parser.
   The tracing layer must not pull in external dependencies, and the
   repo's exports (JSONL traces, `rtrt json <figure>`) only need plain
   values — so this is deliberately small: no streaming. Strings are
   raw byte strings; we only *emit* \u escapes for control characters,
   but the parser decodes any \uXXXX escape (including surrogate
   pairs) to UTF-8, so traces written by other tools round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest representation that round-trips; non-finite floats have no
   JSON spelling and become null. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_into b k;
        Buffer.add_string b "\":";
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let of_string_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub s !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail "invalid literal"
  in
  (* Strict 4-hex-digit scan ([int_of_string "0x…"] would accept
     underscores and signs). *)
  let hex4 at =
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    (digit s.[at] lsl 12) lor (digit s.[at + 1] lsl 8)
    lor (digit s.[at + 2] lsl 4)
    lor digit s.[at + 3]
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then fail "truncated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'; incr pos
        | '\\' -> Buffer.add_char b '\\'; incr pos
        | '/' -> Buffer.add_char b '/'; incr pos
        | 'n' -> Buffer.add_char b '\n'; incr pos
        | 't' -> Buffer.add_char b '\t'; incr pos
        | 'r' -> Buffer.add_char b '\r'; incr pos
        | 'b' -> Buffer.add_char b '\b'; incr pos
        | 'f' -> Buffer.add_char b '\012'; incr pos
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code = hex4 (!pos + 1) in
          if code >= 0xD800 && code <= 0xDBFF then begin
            (* High surrogate: a low surrogate must follow; anything
               else (including EOF) is rejected, not silently mangled. *)
            if
              not
                (!pos + 10 < n
                && s.[!pos + 5] = '\\'
                && s.[!pos + 6] = 'u')
            then fail "unpaired high surrogate";
            let lo = hex4 (!pos + 7) in
            if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired high surrogate";
            add_utf8 b
              (0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00));
            pos := !pos + 11
          end
          else if code >= 0xDC00 && code <= 0xDFFF then
            fail "unpaired low surrogate"
          else begin
            add_utf8 b code;
            pos := !pos + 5
          end
        | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then incr pos;
    let continue = ref true in
    while !continue && !pos < n do
      match s.[!pos] with
      | '0' .. '9' -> incr pos
      | '.' | 'e' | 'E' ->
        is_float := true;
        incr pos
      | '+' | '-' when !is_float -> incr pos (* exponent sign *)
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input after JSON value";
  v

let of_string s =
  match of_string_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_list_opt = function List vs -> Some vs | _ -> None

let pp ppf v = Fmt.string ppf (to_string v)
