(** Trace events and pluggable sinks (null, pretty, JSONL, in-memory). *)

type span = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  start : float;  (** monotonic seconds at open *)
  mutable attrs : (string * Json.t) list;
      (** attributes may still be added while the span is open; the
          [Span_end] event carries the final set *)
}

type metric_kind = Counter | Gauge

type metric = {
  m_name : string;
  m_kind : metric_kind;
  m_value : float;
  m_time : float;
}

type event =
  | Span_start of span
  | Span_end of span * float  (** duration in seconds *)
  | Metric of metric

type t = {
  emit : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

(** Discards everything. *)
val null : t

(** Indented human-readable lines ([> name] on open, [< name dur] on
    close, [# kind name = v] for metrics). *)
val pretty : Format.formatter -> t

(** One JSON object per line on an existing channel (not closed by
    [close]). *)
val jsonl : out_channel -> t

(** One JSON object per line; the file is created now and closed by
    [close]. *)
val jsonl_file : string -> t

(** Collects events in memory; the second component returns them in
    emission order. *)
val memory : unit -> t * (unit -> event list)

val json_of_event : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val pp_attrs : (string * Json.t) list Fmt.t
