(** Named counters and gauges. Create handles once at module load;
    [add]/[incr]/[set] cost one branch when tracing is disabled and do
    not accumulate. Values are atomic, so handles may be updated from
    worker domains without losing increments; registration and the
    whole-registry traversals ([dump]/[flush]/[reset]) are serialized
    by one mutex, so lanes may register handles concurrently with a
    dump on another domain without entries being silently dropped.

    {2 Lifecycle}

    Metric values belong to the trace that was active while they
    accumulated. Use {!switch_sink} (or [Rtrt_obs.set_sink], which
    forwards here) to change sinks mid-run: it flushes accumulated
    values to the {e old} sink, installs the new one, then resets every
    counter, gauge and histogram — so a new trace never starts with
    stale values attributed to it. [Runtime.set_sink] alone does none
    of this and is only for internal use. [flush] is also called
    automatically at exit by [Config]'s hook. *)

type counter
type gauge

(** Idempotent per name: returns the existing handle if registered. *)
val counter : string -> counter

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float option

(** Zero every counter, unset every gauge, clear every histogram. *)
val reset : unit -> unit

(** Touched handles as (name, value), sorted by name. Histograms
    appear as their derived [<name>.{count,...,p99_ns}] gauges. *)
val dump : unit -> (string * float) list

(** Emit one Metric event per touched handle (and per derived
    histogram stat) to the active sink. *)
val flush : unit -> unit

(** [switch_sink s]: flush to the current sink, route events to [s]
    (enabling tracing), and reset all metric state. The supported way
    to change sinks mid-run. *)
val switch_sink : Sink.t -> unit
