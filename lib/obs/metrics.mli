(** Named counters and gauges. Create handles once at module load;
    [add]/[incr]/[set] cost one branch when tracing is disabled and do
    not accumulate. Values are atomic, so handles may be updated from
    worker domains without losing increments; registration is
    mutex-serialized. *)

type counter
type gauge

(** Idempotent per name: returns the existing handle if registered. *)
val counter : string -> counter

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float option

(** Zero every counter and unset every gauge. *)
val reset : unit -> unit

(** Touched handles as (name, value), sorted by name. *)
val dump : unit -> (string * float) list

(** Emit one Metric event per touched handle to the active sink. *)
val flush : unit -> unit
