(* Offline analysis of an event stream (in-memory or parsed back from
   a JSONL trace): rebuild the span forest and aggregate total vs self
   time per span name. Self time is a span's duration minus its direct
   children's durations — the quantity `rtrt trace-report` prints per
   inspector phase. *)

type node = { span : Sink.span; dur : float; children : node list }

(* Children always close before their parent, so when a Span_end
   arrives every child node is complete. *)
let tree_of_events events =
  let pending : (int, node list ref) Hashtbl.t = Hashtbl.create 32 in
  let roots = ref [] in
  let children_of id =
    match Hashtbl.find_opt pending id with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add pending id r;
      r
  in
  List.iter
    (function
      | Sink.Span_start _ | Sink.Metric _ -> ()
      | Sink.Span_end (s, dur) -> (
        let kids =
          match Hashtbl.find_opt pending s.Sink.id with
          | Some r ->
            Hashtbl.remove pending s.Sink.id;
            List.rev !r
          | None -> []
        in
        let node = { span = s; dur; children = kids } in
        match s.Sink.parent with
        | Some p ->
          let r = children_of p in
          r := node :: !r
        | None -> roots := node :: !roots))
    events;
  (* Orphans whose parent never closed (truncated trace) become
     roots. *)
  Hashtbl.iter (fun _ r -> List.iter (fun n -> roots := n :: !roots) !r)
    pending;
  List.rev !roots

let child_seconds n = List.fold_left (fun acc c -> acc +. c.dur) 0.0 n.children
let self_seconds n = n.dur -. child_seconds n

type agg = { agg_name : string; count : int; total_s : float; self_s : float }

let summarize events =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let rec visit n =
    let name = n.span.Sink.name in
    let cur =
      match Hashtbl.find_opt tbl name with
      | Some a -> a
      | None -> { agg_name = name; count = 0; total_s = 0.0; self_s = 0.0 }
    in
    Hashtbl.replace tbl name
      {
        cur with
        count = cur.count + 1;
        total_s = cur.total_s +. n.dur;
        self_s = cur.self_s +. self_seconds n;
      };
    List.iter visit n.children
  in
  List.iter visit (tree_of_events events);
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let metrics events =
  List.filter_map (function Sink.Metric m -> Some m | _ -> None) events

let events_of_jsonl path =
  let ic = open_in path in
  let fail fmt = Fmt.kstr (fun m -> close_in ic; invalid_arg m) fmt in
  let rec go acc line_no =
    match input_line ic with
    | exception End_of_file ->
      close_in ic;
      List.rev acc
    | line when String.trim line = "" -> go acc (line_no + 1)
    | line -> (
      match Json.of_string line with
      | Error msg -> fail "%s:%d: %s" path line_no msg
      | Ok j -> (
        match Sink.event_of_json j with
        | Ok e -> go (e :: acc) (line_no + 1)
        | Error msg -> fail "%s:%d: %s" path line_no msg))
  in
  go [] 1

let pp_summary ppf aggs =
  Fmt.pf ppf "%-26s %6s %12s %12s %6s@." "span" "count" "total s" "self s"
    "self%";
  List.iter
    (fun a ->
      Fmt.pf ppf "%-26s %6d %12.6f %12.6f %5.1f%%@." a.agg_name a.count
        a.total_s a.self_s
        (if a.total_s > 0.0 then 100.0 *. a.self_s /. a.total_s else 100.0))
    aggs

let rec pp_node ppf n =
  Fmt.pf ppf "%s%s %.6fs (self %.6fs)%a@."
    (String.make (2 * n.span.Sink.depth) ' ')
    n.span.Sink.name n.dur (self_seconds n) Sink.pp_attrs n.span.Sink.attrs;
  List.iter (pp_node ppf) n.children

let pp_tree ppf roots = List.iter (pp_node ppf) roots
