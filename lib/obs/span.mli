(** Hierarchical timed spans. With tracing disabled both entry points
    cost a single branch. *)

type t = Sink.span

(** Run [f] inside a span. *)
val with_ : ?attrs:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a

(** Like {!with_}, but hands the open span to the body so attributes
    computed during the work can be attached with {!set_attr}. *)
val with_span :
  ?attrs:(string * Json.t) list -> name:string -> (t -> 'a) -> 'a

(** Attach/replace an attribute on an open span (no-op on the dummy
    span passed when tracing is disabled). *)
val set_attr : t -> string -> Json.t -> unit
