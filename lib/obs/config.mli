(** Tracing configuration from the [RTRT_TRACE] environment variable
    ([pretty] | [jsonl[:PATH]] | [off]) with an optional programmatic
    default (the CLI's [--trace] flag). *)

type mode = Off | Pretty | Jsonl of string

val default_jsonl_path : string
val parse : string -> (mode, string) result

(** Activate a mode now (registers the exit hook that flushes metrics
    and closes the sink). *)
val install : mode -> unit

(** Read [RTRT_TRACE] and install it; fall back to [default] (itself
    defaulting to [Off]) when the variable is unset. An unparsable
    value warns on stderr and disables tracing. *)
val init : ?default:mode -> unit -> unit
