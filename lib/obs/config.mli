(** Tracing configuration from the [RTRT_TRACE] environment variable
    ([pretty] | [jsonl[:PATH]] | [off]) with an optional programmatic
    default (the CLI's [--trace] flag). *)

type mode = Off | Pretty | Jsonl of string

val default_jsonl_path : string
val parse : string -> (mode, string) result

(** Warn-and-default environment parsing shared by every [RTRT_*]
    variable: unset yields [default] silently; an unparsable value
    warns on stderr (naming the variable and the offending value) and
    yields [default]. *)
val env_parse :
  name:string ->
  parse:(string -> ('a, string) result) ->
  default:'a ->
  unit ->
  'a

(** Integer variable with an optional lower bound (values below [min]
    warn and default). *)
val env_int : ?min:int -> name:string -> default:int -> unit -> int

(** Boolean variable: [1|true|yes|on] / [0|false|no|off|""]. *)
val env_bool : name:string -> default:bool -> unit -> bool

(** Directory-valued variable; unset, empty, or whitespace-only is
    [None]. *)
val env_dir : name:string -> unit -> string option

(** Activate a mode now (registers the exit hook that flushes metrics
    and closes the sink). *)
val install : mode -> unit

(** Read [RTRT_TRACE] and install it; fall back to [default] (itself
    defaulting to [Off]) when the variable is unset. An unparsable
    value warns on stderr and disables tracing. *)
val init : ?default:mode -> unit -> unit
