(** Content-addressed cache of composed inspector results.

    Keys are {!Fingerprint.t} hashes of everything that determines the
    inspection outcome (kernel access pattern, plan transformations,
    strategy, symmetric-dependence sharing). Two tiers: an in-memory
    LRU bounded by a byte budget, and an optional on-disk store (one
    JSON file per key) so the amortization survives process restarts.

    Disk entries are validated on load — array sizes against the
    kernel at hand, permutation bijectivity, schedule coverage — so a
    corrupt or stale file degrades to a miss, never a crash. All
    operations are mutex-guarded and safe to call from worker domains.

    Traffic is published to {!Rtrt_obs.Metrics} under
    [plancache.hit], [plancache.miss], [plancache.evict],
    [plancache.store], [plancache.disk_hit], [plancache.disk_error]
    and the gauge [plancache.bytes] (visible whenever a trace sink is
    active); {!stats} reports the same numbers unconditionally. *)

open Reorder

(** What a warm run needs to skip re-inspection: the total reordering
    functions, the executor schedule, and the cost the cold inspection
    paid (for amortization reporting). *)
type entry = {
  sigma_total : Perm.t;  (** composed data reordering *)
  delta_total : Perm.t;  (** composed iteration reordering *)
  schedule : Schedule.t option;  (** sparse-tiled executor schedule *)
  shape_summary : Shape.summary option;
      (** plan-time {!Reorder.Shape} analysis of [schedule], cached so
          warm hits pick an executor tier without re-walking the items
          array. Only the summary is stored; the run-length index is
          always rebuilt from the validated schedule. Absent in files
          written before this member existed. *)
  reordering_fns : (string * Perm.t) list;
      (** per-transformation reordering functions, in application order *)
  n_data_remaps : int;
  cold_inspector_seconds : float;
      (** inspector wall time of the run that produced this entry *)
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_hits : int;  (** subset of [hits] served by deserializing a file *)
  disk_errors : int;  (** corrupt/unwritable files degraded to misses *)
  entries : int;  (** resident in the memory tier *)
  bytes : int;  (** estimated resident size of the memory tier *)
}

type t

(** [create ()] is memory-only with a 64 MiB budget. [dir] enables the
    disk tier (created if missing). At least one entry stays resident
    regardless of budget. *)
val create : ?mem_budget_bytes:int -> ?dir:string -> unit -> t

val dir : t -> string option

(** [RTRT_PLAN_CACHE_DIR], trimmed; empty/unset means no disk tier. *)
val dir_from_env : unit -> string option

(** Look up a key, checking the memory tier then the disk tier. The
    entry is validated against the caller's kernel shape ([n_data],
    [n_iter], [loop_sizes]) before being returned; anything invalid is
    a miss. A disk hit is promoted into the memory tier. *)
val find :
  t ->
  key:Fingerprint.t ->
  n_data:int ->
  n_iter:int ->
  loop_sizes:int array ->
  entry option

(** Insert into the memory tier (evicting least-recently-used entries
    past the byte budget) and, when a [dir] is configured, write the
    JSON file atomically (tmp + rename). Write failures warn and count
    as [disk_errors]; they never raise. *)
val store : t -> key:Fingerprint.t -> entry -> unit

(** Memory-tier-only lookup with no stats or LRU side effects. *)
val peek : t -> key:Fingerprint.t -> entry option

val stats : t -> stats
val pp_stats : stats Fmt.t
