(* Content-addressed cache of composed inspector results, so repeated
   experiments over an identical (dataset, plan) pair pay the
   inspection cost once (the paper's amortization argument, Figures
   8/9/17, made a first-class subsystem).

   Two tiers:
   - an in-memory LRU keyed by the fingerprint hex, bounded by a byte
     budget (permutations dominate: ~8 bytes per element);
   - an optional on-disk store (one JSON file per key under [dir],
     written atomically via rename), serialized with [Rtrt_obs.Json].

   Loads are validated — array sizes against the kernel the caller is
   about to transform, permutation bijectivity via [Perm.of_forward],
   schedule coverage via [Schedule.check_coverage] — so a corrupt,
   truncated, or mismatched file degrades to a miss, never a crash and
   never a wrong executor. Hit/miss/evict traffic is published as
   [plancache.*] metrics. *)

open Reorder

type entry = {
  sigma_total : Perm.t;
  delta_total : Perm.t;
  schedule : Schedule.t option;
  shape_summary : Shape.summary option;
      (* the schedule's plan-time shape analysis (run counts, identity
         rows, ...), cached so a warm hit can pick its executor tier
         without re-walking the items array. Only the summary is
         stored: the run-length *index* is always rebuilt from the
         validated schedule, never trusted from disk. *)
  reordering_fns : (string * Perm.t) list;
  n_data_remaps : int;
  cold_inspector_seconds : float;
      (* what the inspection cost when it was actually run; a warm hit
         reports its replay time separately, and the pair quantifies
         the amortization win *)
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_hits : int;  (* subset of hits served by deserializing a file *)
  disk_errors : int; (* corrupt/unreadable files degraded to misses *)
  entries : int;
  bytes : int;
}

type slot = { entry : entry; slot_bytes : int; mutable last_use : int }

type t = {
  mem_budget : int;
  dir : string option;
  tbl : (string, slot) Hashtbl.t;
  mutex : Mutex.t;
  mutable clock : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable disk_hits : int;
  mutable disk_errors : int;
}

let c_hit = Rtrt_obs.Metrics.counter "plancache.hit"
let c_miss = Rtrt_obs.Metrics.counter "plancache.miss"
let c_evict = Rtrt_obs.Metrics.counter "plancache.evict"
let c_store = Rtrt_obs.Metrics.counter "plancache.store"
let c_disk_hit = Rtrt_obs.Metrics.counter "plancache.disk_hit"
let c_disk_error = Rtrt_obs.Metrics.counter "plancache.disk_error"
let g_bytes = Rtrt_obs.Metrics.gauge "plancache.bytes"

let default_mem_budget = 64 * 1024 * 1024

let dir_from_env () = Rtrt_obs.Config.env_dir ~name:"RTRT_PLAN_CACHE_DIR" ()

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(mem_budget_bytes = default_mem_budget) ?dir () =
  (match dir with Some d -> mkdir_p d | None -> ());
  {
    mem_budget = mem_budget_bytes;
    dir;
    tbl = Hashtbl.create 32;
    mutex = Mutex.create ();
    clock = 0;
    bytes = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    disk_hits = 0;
    disk_errors = 0;
  }

let dir t = t.dir

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      stores = t.stores;
      evictions = t.evictions;
      disk_hits = t.disk_hits;
      disk_errors = t.disk_errors;
      entries = Hashtbl.length t.tbl;
      bytes = t.bytes;
    }
  in
  Mutex.unlock t.mutex;
  s

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "%d hits (%d from disk), %d misses, %d stores, %d evictions, %d disk \
     errors, %d entries / %d bytes resident"
    s.hits s.disk_hits s.misses s.stores s.evictions s.disk_errors s.entries
    s.bytes

(* ------------------------------------------------------------------ *)
(* Sizing and the LRU memory tier                                      *)

let perm_bytes p = 8 * Perm.size p

let entry_bytes e =
  perm_bytes e.sigma_total + perm_bytes e.delta_total
  + (match e.schedule with
    | None -> 0
    | Some s -> 8 * Schedule.total_iterations s)
  + List.fold_left
      (fun acc (name, p) -> acc + String.length name + perm_bytes p)
      0 e.reordering_fns
  + 128

(* Callers hold the mutex. O(entries) eviction scan: plan caches hold
   tens of entries, not millions. *)
let evict_until_within t =
  while t.bytes > t.mem_budget && Hashtbl.length t.tbl > 1 do
    let victim =
      Hashtbl.fold
        (fun key slot acc ->
          match acc with
          | Some (_, best) when best.last_use <= slot.last_use -> acc
          | _ -> Some (key, slot))
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some (key, slot) ->
      Hashtbl.remove t.tbl key;
      t.bytes <- t.bytes - slot.slot_bytes;
      t.evictions <- t.evictions + 1;
      Rtrt_obs.Metrics.incr c_evict
  done;
  Rtrt_obs.Metrics.set g_bytes (float_of_int t.bytes)

(* Callers hold the mutex. *)
let insert_mem t hex entry =
  (match Hashtbl.find_opt t.tbl hex with
  | Some old ->
    Hashtbl.remove t.tbl hex;
    t.bytes <- t.bytes - old.slot_bytes
  | None -> ());
  let slot_bytes = entry_bytes entry in
  t.clock <- t.clock + 1;
  Hashtbl.replace t.tbl hex { entry; slot_bytes; last_use = t.clock };
  t.bytes <- t.bytes + slot_bytes;
  evict_until_within t

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization — on-disk tier                               *)

module J = Rtrt_obs.Json

(* Version 2 serializes schedules in the flat CSR shape ([row_ptr] over
   [tile * n_loops + loop] rows plus a contiguous [items] array) that
   [Schedule.t] stores natively. Version-1 files used nested per-tile
   item lists; they fail the version check below and degrade to a miss
   (the inspector then re-runs and overwrites them in v2). *)
let format_version = 2

let json_of_int_array a =
  J.List (List.map (fun i -> J.Int i) (Array.to_list a))

let json_of_perm p = json_of_int_array (Perm.to_forward_array p)

let json_of_schedule s =
  J.Obj
    [
      ("n_tiles", J.Int (Schedule.n_tiles s));
      ("n_loops", J.Int (Schedule.n_loops s));
      ("row_ptr", json_of_int_array (Schedule.row_ptr s));
      ("items", json_of_int_array (Schedule.flat_items s));
    ]

(* The shape member is optional and versionless: files written before
   it existed simply lack it and load with [shape_summary = None]. *)
let json_of_summary (sm : Shape.summary) =
  J.Obj
    [
      ("rows", J.Int sm.Shape.rows);
      ("total_items", J.Int sm.Shape.total_items);
      ("runs", J.Int sm.Shape.runs);
      ("identity_rows", J.Int sm.Shape.identity_rows);
      ("max_run", J.Int sm.Shape.max_run);
      ("single_loop", J.Bool sm.Shape.single_loop);
      ( "uniform_tile_items",
        match sm.Shape.uniform_tile_items with
        | None -> J.Null
        | Some n -> J.Int n );
      ("avg_run_len", J.Float sm.Shape.avg_run_len);
    ]

let json_of_entry ~hex e =
  J.Obj
    [
      ("version", J.Int format_version);
      ("key", J.String hex);
      ("sigma", json_of_perm e.sigma_total);
      ("delta", json_of_perm e.delta_total);
      ( "schedule",
        match e.schedule with None -> J.Null | Some s -> json_of_schedule s );
      ( "shape",
        match e.shape_summary with
        | None -> J.Null
        | Some sm -> json_of_summary sm );
      ( "fns",
        J.List
          (List.map
             (fun (name, p) ->
               J.Obj [ ("name", J.String name); ("perm", json_of_perm p) ])
             e.reordering_fns) );
      ("n_data_remaps", J.Int e.n_data_remaps);
      ("cold_inspector_seconds", J.Float e.cold_inspector_seconds);
    ]

let ( let* ) = Result.bind

let int_array_of_json = function
  | J.List vs ->
    let a = Array.make (List.length vs) 0 in
    let rec go i = function
      | [] -> Ok a
      | J.Int n :: rest ->
        a.(i) <- n;
        go (i + 1) rest
      | _ -> Error "expected an integer array"
    in
    go 0 vs
  | _ -> Error "expected an integer array"

let perm_of_json j =
  let* a = int_array_of_json j in
  match Perm.of_forward a with
  | p -> Ok p
  | exception Invalid_argument msg -> Error ("not a permutation: " ^ msg)

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error ("missing field " ^ name)

let int_field name j =
  let* v = field name j in
  match J.to_int_opt v with
  | Some n -> Ok n
  | None -> Error ("field " ^ name ^ " is not an integer")

(* Rebuild a schedule from its flat CSR serialization through per-loop
   tile functions, so [Schedule.of_tile_fns] revalidates from scratch:
   each loop's rows must address its iterations exactly once or the
   reconstruction fails (the bijectivity check for tile schedules, the
   analogue of [Perm.of_forward] for permutations). Reconstruction
   also requires the file's [items] to match the canonical
   (row-ascending) order the constructor produces — every writer emits
   that order, and insisting on it keeps warm replay bit-identical to
   the cold run. *)
let schedule_of_json j =
  let* n_tiles = int_field "n_tiles" j in
  let* n_loops = int_field "n_loops" j in
  if n_tiles <= 0 || n_loops <= 0 then Error "bad schedule shape"
  else
    let* row_ptr =
      let* v = field "row_ptr" j in
      int_array_of_json v
    in
    let* items =
      let* v = field "items" j in
      int_array_of_json v
    in
    let n_rows = n_tiles * n_loops in
    let shape_ok =
      Array.length row_ptr = n_rows + 1
      && row_ptr.(0) = 0
      && row_ptr.(n_rows) = Array.length items
      &&
      let mono = ref true in
      for r = 0 to n_rows - 1 do
        if row_ptr.(r + 1) < row_ptr.(r) then mono := false
      done;
      !mono
    in
    if not shape_ok then Error "bad schedule row pointers"
    else
      let fn_of_loop l =
        let size = ref 0 in
        for tile = 0 to n_tiles - 1 do
          let r = (tile * n_loops) + l in
          size := !size + (row_ptr.(r + 1) - row_ptr.(r))
        done;
        let size = !size in
        let tile_of = Array.make size (-1) in
        let ok = ref true in
        for tile = 0 to n_tiles - 1 do
          let r = (tile * n_loops) + l in
          for i = row_ptr.(r) to row_ptr.(r + 1) - 1 do
            let it = items.(i) in
            if it < 0 || it >= size || tile_of.(it) <> -1 then ok := false
            else tile_of.(it) <- tile
          done
        done;
        if !ok then Ok { Sparse_tile.n_tiles; tile_of }
        else Error "schedule loop does not cover its iterations exactly once"
      in
      let rec fns acc l =
        if l = n_loops then Ok (Array.of_list (List.rev acc))
        else
          let* fn = fn_of_loop l in
          fns (fn :: acc) (l + 1)
      in
      let* fns = fns [] 0 in
      match Schedule.of_tile_fns fns with
      | s ->
        if Schedule.row_ptr s = row_ptr && Schedule.flat_items s = items then
          Ok s
        else Error "schedule items not in canonical order"
      | exception Invalid_argument msg -> Error msg

let summary_of_json j =
  let* rows = int_field "rows" j in
  let* total_items = int_field "total_items" j in
  let* runs = int_field "runs" j in
  let* identity_rows = int_field "identity_rows" j in
  let* max_run = int_field "max_run" j in
  let* single_loop =
    match J.member "single_loop" j with
    | Some (J.Bool b) -> Ok b
    | _ -> Error "single_loop is not a boolean"
  in
  let* uniform_tile_items =
    match J.member "uniform_tile_items" j with
    | None | Some J.Null -> Ok None
    | Some v -> (
      match J.to_int_opt v with
      | Some n -> Ok (Some n)
      | None -> Error "uniform_tile_items is not an integer")
  in
  let* avg_run_len =
    let* v = field "avg_run_len" j in
    match J.to_float_opt v with
    | Some f -> Ok f
    | None -> Error "avg_run_len is not a number"
  in
  Ok
    {
      Shape.rows;
      total_items;
      runs;
      identity_rows;
      max_run;
      single_loop;
      uniform_tile_items;
      avg_run_len;
    }

let entry_of_json j =
  let* version = int_field "version" j in
  if version <> format_version then Error "unsupported format version"
  else
    let* sigma_j = field "sigma" j in
    let* sigma_total = perm_of_json sigma_j in
    let* delta_j = field "delta" j in
    let* delta_total = perm_of_json delta_j in
    let* schedule =
      match J.member "schedule" j with
      | None | Some J.Null -> Ok None
      | Some sj ->
        let* s = schedule_of_json sj in
        Ok (Some s)
    in
    let* shape_summary =
      match J.member "shape" j with
      | None | Some J.Null -> Ok None
      | Some sj ->
        let* sm = summary_of_json sj in
        (* Sanity against the (validated) schedule: a summary that
           cannot belong to it is dropped, not trusted — callers then
           re-analyze. *)
        Ok
          (match schedule with
          | Some s
            when sm.Shape.rows = Schedule.n_tiles s * Schedule.n_loops s
                 && sm.Shape.total_items = Schedule.total_iterations s ->
            Some sm
          | _ -> None)
    in
    let* reordering_fns =
      match J.member "fns" j with
      | Some (J.List fs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | f :: rest ->
            let* name_j = field "name" f in
            let* name =
              match J.to_string_opt name_j with
              | Some s -> Ok s
              | None -> Error "fn name is not a string"
            in
            let* perm_j = field "perm" f in
            let* p = perm_of_json perm_j in
            go ((name, p) :: acc) rest
        in
        go [] fs
      | _ -> Error "bad fns field"
    in
    let* n_data_remaps = int_field "n_data_remaps" j in
    let* cold_inspector_seconds =
      let* v = field "cold_inspector_seconds" j in
      match J.to_float_opt v with
      | Some f -> Ok f
      | None -> Error "cold_inspector_seconds is not a number"
    in
    Ok
      {
        sigma_total;
        delta_total;
        schedule;
        shape_summary;
        reordering_fns;
        n_data_remaps;
        cold_inspector_seconds;
      }

(* Does a (possibly deserialized, possibly fingerprint-colliding)
   entry actually fit the kernel the caller is about to transform? *)
let validate_entry e ~n_data ~n_iter ~loop_sizes =
  if Perm.size e.sigma_total <> n_data then Error "sigma size mismatch"
  else if Perm.size e.delta_total <> n_iter then Error "delta size mismatch"
  else if
    not
      (List.for_all
         (fun (_, p) ->
           let s = Perm.size p in
           s = n_data || s = n_iter)
         e.reordering_fns)
  then Error "reordering-function size mismatch"
  else
    match e.schedule with
    | None -> Ok ()
    | Some s ->
      if Schedule.n_loops s <> Array.length loop_sizes then
        Error "schedule loop-count mismatch"
      else if
        match Schedule.check_coverage s ~loop_sizes with
        | ok -> not ok
        | exception _ -> true
      then Error "schedule does not cover the loop sizes"
      else Ok ()

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)

let file_path dir hex = Filename.concat dir (hex ^ ".json")

let disk_load t hex ~n_data ~n_iter ~loop_sizes =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = file_path dir hex in
    if not (Sys.file_exists path) then None
    else
      let parsed =
        match In_channel.with_open_bin path In_channel.input_all with
        | contents -> (
          match J.of_string contents with
          | Ok j ->
            let* e = entry_of_json j in
            let* () = validate_entry e ~n_data ~n_iter ~loop_sizes in
            Ok e
          | Error msg -> Error msg)
        | exception Sys_error msg -> Error msg
      in
      match parsed with
      | Ok e -> Some e
      | Error msg ->
        t.disk_errors <- t.disk_errors + 1;
        Rtrt_obs.Metrics.incr c_disk_error;
        Fmt.epr
          "rtrt: warning: plan-cache entry %s is invalid (%s); treating as a \
           miss@."
          path msg;
        None)

let disk_store t hex e =
  match t.dir with
  | None -> ()
  | Some dir -> (
    let path = file_path dir hex in
    let tmp = Fmt.str "%s.tmp.%d" path (Unix.getpid ()) in
    match
      Out_channel.with_open_bin tmp (fun oc ->
          output_string oc (J.to_string (json_of_entry ~hex e));
          output_char oc '\n');
      Sys.rename tmp path
    with
    | () -> ()
    | exception Sys_error msg ->
      t.disk_errors <- t.disk_errors + 1;
      Rtrt_obs.Metrics.incr c_disk_error;
      (try Sys.remove tmp with Sys_error _ -> ());
      Fmt.epr "rtrt: warning: cannot write plan-cache entry %s (%s)@." path msg)

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)

let find t ~key ~n_data ~n_iter ~loop_sizes =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.mutex;
  let result =
    match Hashtbl.find_opt t.tbl hex with
    | Some slot
      when validate_entry slot.entry ~n_data ~n_iter ~loop_sizes = Ok () ->
      t.clock <- t.clock + 1;
      slot.last_use <- t.clock;
      Some slot.entry
    | _ -> (
      match disk_load t hex ~n_data ~n_iter ~loop_sizes with
      | Some e ->
        t.disk_hits <- t.disk_hits + 1;
        Rtrt_obs.Metrics.incr c_disk_hit;
        insert_mem t hex e;
        Some e
      | None -> None)
  in
  (match result with
  | Some _ ->
    t.hits <- t.hits + 1;
    Rtrt_obs.Metrics.incr c_hit
  | None ->
    t.misses <- t.misses + 1;
    Rtrt_obs.Metrics.incr c_miss);
  Mutex.unlock t.mutex;
  result

let store t ~key entry =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.mutex;
  t.stores <- t.stores + 1;
  Rtrt_obs.Metrics.incr c_store;
  insert_mem t hex entry;
  disk_store t hex entry;
  Mutex.unlock t.mutex

(* Memory-tier-only lookup with no stats or LRU side effects — for
   reporting layers that want the cold-run cost after [find]/[store]
   already ran. *)
let peek t ~key =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.mutex;
  let e = Option.map (fun s -> s.entry) (Hashtbl.find_opt t.tbl hex) in
  Mutex.unlock t.mutex;
  e
