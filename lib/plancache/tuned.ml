(* Autotuned-winner store: the second content-addressed tier of the
   plan cache. Where [Cache] memoizes the *result* of inspecting one
   (dataset, plan) pair, [Tuned] memoizes the *choice* of plan — the
   winner of an autotune search over the candidate space — keyed by
   the access-pattern fingerprint plus the machine model, so repeat
   traffic on the same pattern gets the tuned plan without re-scoring
   the space.

   The plan itself is opaque here: the harness serializes the winning
   transform list to a JSON string and deserializes it on a hit (this
   library sits below the composition layer and cannot name
   [Transform.t]). Entries also carry the full per-candidate score
   table for reporting.

   Same disk discipline as [Cache]: one [tuned-<hex>.json] file per
   key, atomic tmp+rename writes, validated loads that degrade to a
   miss on any corruption. Traffic is published as [autotune.cache.*]
   metrics. *)

type entry = {
  winner : string;            (* name of the winning plan *)
  winner_plan : string;       (* serialized plan (harness JSON format) *)
  winner_score_ns : float;    (* modeled ns per step of the winner *)
  scores : (string * float) list;  (* every candidate: name, modeled ns/step *)
  machine : string;           (* machine model the scores belong to *)
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  disk_hits : int;
  disk_errors : int;
  entries : int;
}

type t = {
  dir : string option;
  tbl : (string, entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable disk_hits : int;
  mutable disk_errors : int;
}

let c_hit = Rtrt_obs.Metrics.counter "autotune.cache.hit"
let c_miss = Rtrt_obs.Metrics.counter "autotune.cache.miss"
let c_store = Rtrt_obs.Metrics.counter "autotune.cache.store"
let c_disk_hit = Rtrt_obs.Metrics.counter "autotune.cache.disk_hit"
let c_disk_error = Rtrt_obs.Metrics.counter "autotune.cache.disk_error"

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  (match dir with Some d -> mkdir_p d | None -> ());
  {
    dir;
    tbl = Hashtbl.create 16;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    disk_hits = 0;
    disk_errors = 0;
  }

let dir t = t.dir

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      stores = t.stores;
      disk_hits = t.disk_hits;
      disk_errors = t.disk_errors;
      entries = Hashtbl.length t.tbl;
    }
  in
  Mutex.unlock t.mutex;
  s

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "%d hits (%d from disk), %d misses, %d stores, %d disk errors, %d \
     entries resident"
    s.hits s.disk_hits s.misses s.stores s.disk_errors s.entries

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization — on-disk tier                               *)

module J = Rtrt_obs.Json

let format_version = 1

let json_of_entry ~hex e =
  J.Obj
    [
      ("version", J.Int format_version);
      ("key", J.String hex);
      ("winner", J.String e.winner);
      ("winner_plan", J.String e.winner_plan);
      ("winner_score_ns", J.Float e.winner_score_ns);
      ( "scores",
        J.List
          (List.map
             (fun (name, score) ->
               J.Obj [ ("name", J.String name); ("score_ns", J.Float score) ])
             e.scores) );
      ("machine", J.String e.machine);
    ]

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error ("missing field " ^ name)

let string_field name j =
  let* v = field name j in
  match J.to_string_opt v with
  | Some s -> Ok s
  | None -> Error ("field " ^ name ^ " is not a string")

let float_field name j =
  let* v = field name j in
  match J.to_float_opt v with
  | Some f -> Ok f
  | None -> Error ("field " ^ name ^ " is not a number")

let entry_of_json j =
  let* version =
    let* v = field "version" j in
    match J.to_int_opt v with
    | Some n -> Ok n
    | None -> Error "field version is not an integer"
  in
  if version <> format_version then Error "unsupported format version"
  else
    let* winner = string_field "winner" j in
    let* winner_plan = string_field "winner_plan" j in
    let* winner_score_ns = float_field "winner_score_ns" j in
    let* scores =
      match J.member "scores" j with
      | Some (J.List ss) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest ->
            let* name = string_field "name" s in
            let* score = float_field "score_ns" s in
            go ((name, score) :: acc) rest
        in
        go [] ss
      | _ -> Error "bad scores field"
    in
    let* machine = string_field "machine" j in
    if not (List.mem_assoc winner scores) then
      Error "winner missing from the score table"
    else Ok { winner; winner_plan; winner_score_ns; scores; machine }

(* Is this (possibly deserialized, possibly fingerprint-colliding)
   entry usable for the machine the caller is tuning for? *)
let validate_entry e ~machine =
  if e.machine <> machine then Error "machine mismatch"
  else if e.winner_plan = "" then Error "empty winner plan"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)

let file_path dir hex = Filename.concat dir ("tuned-" ^ hex ^ ".json")

let disk_load t hex ~machine =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = file_path dir hex in
    if not (Sys.file_exists path) then None
    else
      let parsed =
        match In_channel.with_open_bin path In_channel.input_all with
        | contents -> (
          match J.of_string contents with
          | Ok j ->
            let* e = entry_of_json j in
            let* () = validate_entry e ~machine in
            Ok e
          | Error msg -> Error msg)
        | exception Sys_error msg -> Error msg
      in
      match parsed with
      | Ok e -> Some e
      | Error msg ->
        t.disk_errors <- t.disk_errors + 1;
        Rtrt_obs.Metrics.incr c_disk_error;
        Fmt.epr
          "rtrt: warning: tuned-plan entry %s is invalid (%s); treating as a \
           miss@."
          path msg;
        None)

let disk_store t hex e =
  match t.dir with
  | None -> ()
  | Some dir -> (
    let path = file_path dir hex in
    let tmp = Fmt.str "%s.tmp.%d" path (Unix.getpid ()) in
    match
      Out_channel.with_open_bin tmp (fun oc ->
          output_string oc (J.to_string (json_of_entry ~hex e));
          output_char oc '\n');
      Sys.rename tmp path
    with
    | () -> ()
    | exception Sys_error msg ->
      t.disk_errors <- t.disk_errors + 1;
      Rtrt_obs.Metrics.incr c_disk_error;
      (try Sys.remove tmp with Sys_error _ -> ());
      Fmt.epr "rtrt: warning: cannot write tuned-plan entry %s (%s)@." path
        msg)

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)

let find t ~key ~machine =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.mutex;
  let result =
    match Hashtbl.find_opt t.tbl hex with
    | Some e when validate_entry e ~machine = Ok () -> Some e
    | _ -> (
      match disk_load t hex ~machine with
      | Some e ->
        t.disk_hits <- t.disk_hits + 1;
        Rtrt_obs.Metrics.incr c_disk_hit;
        Hashtbl.replace t.tbl hex e;
        Some e
      | None -> None)
  in
  (match result with
  | Some _ ->
    t.hits <- t.hits + 1;
    Rtrt_obs.Metrics.incr c_hit
  | None ->
    t.misses <- t.misses + 1;
    Rtrt_obs.Metrics.incr c_miss);
  Mutex.unlock t.mutex;
  result

let store t ~key entry =
  let hex = Fingerprint.to_hex key in
  Mutex.lock t.mutex;
  t.stores <- t.stores + 1;
  Rtrt_obs.Metrics.incr c_store;
  Hashtbl.replace t.tbl hex entry;
  disk_store t hex entry;
  Mutex.unlock t.mutex
