(* Umbrella module: [Rtrt_plancache.Cache], [Rtrt_plancache.Fingerprint]. *)

module Fingerprint = Fingerprint
module Cache = Cache
