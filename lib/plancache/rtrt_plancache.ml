(* Umbrella module: [Rtrt_plancache.Cache], [Rtrt_plancache.Fingerprint],
   [Rtrt_plancache.Tuned]. *)

module Fingerprint = Fingerprint
module Cache = Cache
module Tuned = Tuned
