(** Stable 64-bit content hashes for plan-cache keys (FNV-1a over a
    type-tagged byte stream). Unlike [Hashtbl.hash], the result is
    stable across processes and OCaml versions, so it can address
    cache files on disk. *)

type t

val equal : t -> t -> bool

(** 16 lowercase hex digits; used as the on-disk file stem. *)
val to_hex : t -> string

val pp : t Fmt.t

(** Incremental hash builder. Every ingredient is type-tagged and
    length-prefixed, so adjacent fields never alias. *)
type builder

val create : unit -> builder
val add_int : builder -> int -> unit
val add_bool : builder -> bool -> unit
val add_string : builder -> string -> unit
val add_int_array : builder -> int array -> unit
val add_float : builder -> float -> unit
val value : builder -> t
