(* Stable content hashing for plan-cache keys: 64-bit FNV-1a over a
   type-tagged byte stream. OCaml's polymorphic [Hashtbl.hash] is
   neither stable across versions nor collision-resistant enough to
   address cache files on disk, so the key hash is computed explicitly
   from the ingredients the caller feeds in (access pattern bytes,
   transform descriptions, strategy, flags). Each ingredient is tagged
   with a type byte and variable-length values carry their length, so
   adjacent fields can never alias ("ab"+"c" vs "a"+"bc"). *)

type t = int64

let equal = Int64.equal
let to_hex h = Printf.sprintf "%016Lx" h

let pp ppf h = Fmt.string ppf (to_hex h)

type builder = { mutable h : int64 }

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let create () = { h = fnv_offset }

let add_byte b c =
  b.h <- Int64.mul (Int64.logxor b.h (Int64.of_int (c land 0xff))) fnv_prime

(* 64-bit little-endian, so every int hashes the same number of
   bytes. *)
let add_raw_int64 b v =
  for i = 0 to 7 do
    add_byte b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let add_int b n =
  add_byte b 0x01;
  add_raw_int64 b (Int64.of_int n)

let add_bool b v =
  add_byte b 0x02;
  add_byte b (if v then 1 else 0)

let add_string b s =
  add_byte b 0x03;
  add_raw_int64 b (Int64.of_int (String.length s));
  String.iter (fun c -> add_byte b (Char.code c)) s

let add_int_array b a =
  add_byte b 0x04;
  add_raw_int64 b (Int64.of_int (Array.length a));
  Array.iter (fun n -> add_raw_int64 b (Int64.of_int n)) a

let add_float b f =
  add_byte b 0x05;
  add_raw_int64 b (Int64.bits_of_float f)

let value b = b.h
