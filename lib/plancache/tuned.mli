(** Autotuned-winner store: memoizes the *choice* of plan the way
    {!Cache} memoizes the result of inspecting one.

    Keys are {!Fingerprint.t} hashes of the access pattern, the
    machine model, and the candidate-space shape; the value is the
    winning plan (serialized by the harness — this library sits below
    the composition layer and stores it as an opaque string) together
    with the full per-candidate score table for reporting.

    Two tiers: an in-memory table and an optional on-disk store (one
    [tuned-<hex>.json] per key, written atomically). Disk loads are
    validated — version, machine, winner present in the score table —
    so a corrupt or stale file degrades to a miss, never a crash.
    Traffic is published to {!Rtrt_obs.Metrics} under
    [autotune.cache.hit], [autotune.cache.miss], [autotune.cache.store],
    [autotune.cache.disk_hit], [autotune.cache.disk_error]. *)

type entry = {
  winner : string;  (** name of the winning plan *)
  winner_plan : string;  (** serialized plan (harness JSON format) *)
  winner_score_ns : float;  (** modeled ns per step of the winner *)
  scores : (string * float) list;
      (** every scored candidate: name, modeled ns per step *)
  machine : string;  (** machine model the scores belong to *)
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  disk_hits : int;  (** subset of [hits] served by deserializing a file *)
  disk_errors : int;  (** corrupt/unwritable files degraded to misses *)
  entries : int;  (** resident in the memory tier *)
}

type t

(** [create ()] is memory-only; [dir] enables the disk tier (created
    if missing, shareable with {!Cache} — file names do not
    collide). *)
val create : ?dir:string -> unit -> t

val dir : t -> string option

(** Look up a key, memory tier first, then disk. The entry is
    validated for [machine] before being returned (a hit tuned for a
    different machine is a miss); a disk hit is promoted into the
    memory tier. *)
val find : t -> key:Fingerprint.t -> machine:string -> entry option

(** Insert into the memory tier and, when a [dir] is configured, write
    the JSON file atomically (tmp + rename). Write failures warn and
    count as [disk_errors]; they never raise. *)
val store : t -> key:Fingerprint.t -> entry -> unit

val stats : t -> stats
val pp_stats : stats Fmt.t
