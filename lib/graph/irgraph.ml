(** Graph substrate: CSR graphs, BFS/Cuthill-McKee orderings, and the
    bounded-size partitioners (GPART-style and block) used by the
    run-time reordering transformations. *)

module Csr = Csr
module Partition = Partition
module Rcm = Rcm
module Multilevel = Multilevel
module Scratch = Scratch
