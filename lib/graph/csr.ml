(* Compressed-sparse-row graphs over nodes [0, n). This is the runtime
   view of the data-to-data affinity induced by a loop's data mappings:
   two data locations are adjacent when some iteration touches both
   (the graph Gpart partitions, Section 2.1). *)

type t = {
  n : int;            (* number of nodes *)
  row_ptr : int array; (* length n+1 *)
  col : int array;     (* length row_ptr.(n); neighbor lists *)
}

let num_nodes g = g.n

(* Trusted constructor (no validation, no copy) for builders that
   produce valid CSR by construction — e.g. the pooled twin of
   [of_accesses]. *)
let unsafe_make ~n ~row_ptr ~col = { n; row_ptr; col }

(* Multigraph count: arcs / 2. A duplicate edge (which [of_edges]
   deliberately keeps — meshes may carry multi-edges) contributes once
   per copy; use [num_distinct_edges] for the simple-graph count. *)
let num_edges g = Array.length g.col / 2
let num_arcs g = Array.length g.col

let degree g v = g.row_ptr.(v + 1) - g.row_ptr.(v)

let iter_neighbors g v f =
  for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
    f g.col.(idx)
  done

let fold_neighbors g v f acc =
  let acc = ref acc in
  iter_neighbors g v (fun w -> acc := f !acc w);
  !acc

let neighbors g v = Array.sub g.col g.row_ptr.(v) (degree g v)

(* Build an undirected graph from an edge list; both endpoints get an
   arc to the other. Self-loops are dropped, duplicate edges kept
   (meshes may legitimately carry multi-edges; callers that care can
   dedupe first). *)
let of_edges ~n edges =
  let deg = Array.make n 0 in
  let live = ref 0 in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        incr live
      end)
    edges;
  let row_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + deg.(v)
  done;
  let col = Array.make (2 * !live) 0 in
  let cursor = Array.copy row_ptr in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        col.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1;
        col.(cursor.(v)) <- u;
        cursor.(v) <- cursor.(v) + 1
      end)
    edges;
  { n; row_ptr; col }

(* Build from an iteration-to-data access pattern: data locations
   touched by the same iteration become a clique (usually a pair).
   Two counting-sort passes straight into the CSR arrays — no
   intermediate edge list. *)
let of_accesses ~n_data accesses =
  let deg = Array.make n_data 0 in
  let arcs = ref 0 in
  Array.iter
    (fun touched ->
      let k = Array.length touched in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let u = touched.(a) and v = touched.(b) in
          if u <> v then begin
            deg.(u) <- deg.(u) + 1;
            deg.(v) <- deg.(v) + 1;
            arcs := !arcs + 2
          end
        done
      done)
    accesses;
  let row_ptr = Array.make (n_data + 1) 0 in
  for v = 0 to n_data - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + deg.(v)
  done;
  let col = Array.make !arcs 0 in
  let cursor = Array.copy row_ptr in
  Array.iter
    (fun touched ->
      let k = Array.length touched in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let u = touched.(a) and v = touched.(b) in
          if u <> v then begin
            col.(cursor.(u)) <- v;
            cursor.(u) <- cursor.(u) + 1;
            col.(cursor.(v)) <- u;
            cursor.(v) <- cursor.(v) + 1
          end
        done
      done)
    accesses;
  { n = n_data; row_ptr; col }

(* Undirected edge array with u < v, one entry per stored arc pair
   (so a multi-edge appears once per copy), u ascending. *)
let edges g =
  let out = Array.make (num_edges g) (0, 0) in
  let pos = ref 0 in
  for v = 0 to g.n - 1 do
    iter_neighbors g v (fun w ->
        if v < w then begin
          out.(!pos) <- (v, w);
          incr pos
        end)
  done;
  (* All arcs pair up v < w with w > v, so [pos] lands exactly on
     [num_edges] unless the graph carries (impossible) self-loops. *)
  if !pos <> Array.length out then Array.sub out 0 !pos else out

(* Simple-graph edge count: per-node sorted-unique neighbors above the
   node, using one pooled scratch buffer. *)
let num_distinct_edges g =
  Scratch.with_buf @@ fun buf ->
  let count = ref 0 in
  for v = 0 to g.n - 1 do
    Scratch.clear buf;
    iter_neighbors g v (fun w -> if w > v then Scratch.push buf w);
    Scratch.sort_dedup buf;
    count := !count + Scratch.length buf
  done;
  !count

(* Breadth-first search from [root] over nodes not yet [visited];
   calls [f] on each node in BFS order and marks it visited. *)
let bfs_from g ~visited ~root f =
  let queue = Queue.create () in
  if not visited.(root) then begin
    visited.(root) <- true;
    Queue.add root queue
  end;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    f v;
    iter_neighbors g v (fun w ->
        if not visited.(w) then begin
          visited.(w) <- true;
          Queue.add w queue
        end)
  done

(* BFS order over the whole graph, restarting at the lowest-numbered
   unvisited node of each component. *)
let bfs_order g =
  let visited = Array.make g.n false in
  let order = Array.make g.n 0 in
  let pos = ref 0 in
  for root = 0 to g.n - 1 do
    if not visited.(root) then
      bfs_from g ~visited ~root (fun v ->
          order.(!pos) <- v;
          incr pos)
  done;
  order

let connected_components g =
  let comp = Array.make g.n (-1) in
  let count = ref 0 in
  let visited = Array.make g.n false in
  for root = 0 to g.n - 1 do
    if not visited.(root) then begin
      bfs_from g ~visited ~root (fun v -> comp.(v) <- !count);
      incr count
    end
  done;
  (!count, comp)

let pp ppf g =
  Fmt.pf ppf "graph(n=%d, arcs=%d)" g.n (num_arcs g)
