(* Reusable growable int buffers for inspector hot paths.

   Run-time inspectors (tile growth, adjacency coarsening, conflict
   detection) repeatedly need "collect an unknown number of ints, sort
   them, dedupe them" workspaces. Building those out of lists or
   Hashtbls allocates proportionally to the traffic on every
   inspection — which is exactly the cost the plan-cache cold path and
   the amortization argument (Figure 16) need to keep small. A Scratch
   buffer is an amortized-doubling int array plus a per-domain free
   pool, so repeated inspections reuse the same backing stores and the
   steady-state inspection allocates nothing but its results.

   The sort helpers are plain int quicksorts (median-of-three,
   insertion sort on small ranges, recursion on the smaller half) so
   no comparison closures or boxed elements are involved. *)

type t = { mutable buf : int array; mutable len : int }

let c_grow = Rtrt_obs.Metrics.counter "hotpath.scratch.grows"
let c_reuse = Rtrt_obs.Metrics.counter "hotpath.scratch.reuses"
let g_peak_bytes = Rtrt_obs.Metrics.gauge "scratch.peak_bytes"

(* Live backing-store bytes across every domain's pool (plus buffers
   currently borrowed), and the high-water mark. The peak is what DLS
   pooling pins for the rest of the process unless [trim] releases
   it. *)
let live_bytes = Atomic.make 0
let peak_bytes = Atomic.make 0

let bytes_per_cell = 8

let account_alloc cells =
  let b = Atomic.fetch_and_add live_bytes (cells * bytes_per_cell)
          + (cells * bytes_per_cell) in
  let rec bump () =
    let p = Atomic.get peak_bytes in
    if b > p then
      if Atomic.compare_and_set peak_bytes p b then
        Rtrt_obs.Metrics.set g_peak_bytes (float_of_int b)
      else bump ()
  in
  bump ()

let account_free cells =
  ignore (Atomic.fetch_and_add live_bytes (-(cells * bytes_per_cell)))

let create ?(capacity = 256) () =
  let cap = max 16 capacity in
  account_alloc cap;
  { buf = Array.make cap 0; len = 0 }

let length b = b.len
let clear b = b.len <- 0

let grow b n =
  let old_cap = Array.length b.buf in
  let cap = ref old_cap in
  while !cap < n do
    cap := !cap * 2
  done;
  let buf = Array.make !cap 0 in
  Array.blit b.buf 0 buf 0 b.len;
  b.buf <- buf;
  account_alloc (!cap - old_cap);
  Rtrt_obs.Metrics.incr c_grow

let ensure b n = if n > Array.length b.buf then grow b n

let push b x =
  if b.len = Array.length b.buf then grow b (b.len + 1);
  Array.unsafe_set b.buf b.len x;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Scratch.get";
  Array.unsafe_get b.buf i

let set b i x =
  if i < 0 || i >= b.len then invalid_arg "Scratch.set";
  Array.unsafe_set b.buf i x

(* The backing store; indices >= [length b] are garbage. *)
let data b = b.buf

let to_array b = Array.sub b.buf 0 b.len

(* ------------------------------------------------------------------ *)
(* Per-domain buffer pool                                              *)

let pool : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* Borrow a (cleared) buffer from this domain's pool for the duration
   of [f]; the buffer returns to the pool afterwards, capacity intact,
   so the next inspection on this domain reuses the allocation.
   Nesting is fine: inner calls borrow different buffers. *)
let with_buf f =
  let p = Domain.DLS.get pool in
  let b =
    match !p with
    | b :: rest ->
      p := rest;
      b.len <- 0;
      Rtrt_obs.Metrics.incr c_reuse;
      b
    | [] -> create ()
  in
  Fun.protect ~finally:(fun () -> p := b :: !p) (fun () -> f b)

(* Release this domain's pooled backing stores down to [max_bytes]
   (default: everything). Smaller buffers are kept in preference to
   large ones — they are the cheapest to re-grow and the likeliest to
   satisfy the next borrow. Only free (returned) buffers are dropped;
   borrowed ones are untouched. *)
let trim ?(max_bytes = 0) () =
  let p = Domain.DLS.get pool in
  let bufs =
    List.sort (fun a b -> compare (Array.length a.buf) (Array.length b.buf)) !p
  in
  let kept = ref [] and budget = ref max_bytes in
  List.iter
    (fun b ->
      let bytes = Array.length b.buf * bytes_per_cell in
      if bytes <= !budget then begin
        budget := !budget - bytes;
        kept := b :: !kept
      end
      else account_free (Array.length b.buf))
    bufs;
  p := List.rev !kept

let current_bytes () = Atomic.get live_bytes
let peak_bytes () = Atomic.get peak_bytes

(* ------------------------------------------------------------------ *)
(* Closure-free int sorting                                            *)

let swap (a : int array) i j =
  let t = Array.unsafe_get a i in
  Array.unsafe_set a i (Array.unsafe_get a j);
  Array.unsafe_set a j t

let rec qsort (a : int array) lo hi =
  if hi - lo > 16 then begin
    (* Median of three as pivot. *)
    let mid = lo + ((hi - lo) / 2) in
    if Array.unsafe_get a mid < Array.unsafe_get a lo then swap a mid lo;
    if Array.unsafe_get a (hi - 1) < Array.unsafe_get a lo then swap a (hi - 1) lo;
    if Array.unsafe_get a (hi - 1) < Array.unsafe_get a mid then swap a (hi - 1) mid;
    let pivot = Array.unsafe_get a mid in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while Array.unsafe_get a !i < pivot do incr i done;
      while Array.unsafe_get a !j > pivot do decr j done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    (* Recurse on the smaller half first to bound the stack. *)
    if !j - lo < hi - !i then begin
      qsort a lo (!j + 1);
      qsort a !i hi
    end
    else begin
      qsort a !i hi;
      qsort a lo (!j + 1)
    end
  end
  else
    for k = lo + 1 to hi - 1 do
      let x = Array.unsafe_get a k in
      let j = ref (k - 1) in
      while !j >= lo && Array.unsafe_get a !j > x do
        Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
        decr j
      done;
      Array.unsafe_set a (!j + 1) x
    done

(* Ascending in-place sort of [a.(lo) .. a.(hi-1)]. *)
let sort_range a ~lo ~hi =
  if lo < 0 || hi > Array.length a || lo > hi then
    invalid_arg "Scratch.sort_range";
  qsort a lo hi

let sort b = qsort b.buf 0 b.len

(* Co-sort: reorder [a.(lo..hi-1)] ascending and apply the same
   permutation to [b]. Used to sort (key, payload) pairs without
   boxing tuples (e.g. adjacency destinations with edge weights). *)
let swap2 (a : int array) (b : int array) i j =
  swap a i j;
  swap b i j

let rec qsort2 (a : int array) (b : int array) lo hi =
  if hi - lo > 16 then begin
    let mid = lo + ((hi - lo) / 2) in
    if Array.unsafe_get a mid < Array.unsafe_get a lo then swap2 a b mid lo;
    if Array.unsafe_get a (hi - 1) < Array.unsafe_get a lo then
      swap2 a b (hi - 1) lo;
    if Array.unsafe_get a (hi - 1) < Array.unsafe_get a mid then
      swap2 a b (hi - 1) mid;
    let pivot = Array.unsafe_get a mid in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while Array.unsafe_get a !i < pivot do incr i done;
      while Array.unsafe_get a !j > pivot do decr j done;
      if !i <= !j then begin
        swap2 a b !i !j;
        incr i;
        decr j
      end
    done;
    if !j - lo < hi - !i then begin
      qsort2 a b lo (!j + 1);
      qsort2 a b !i hi
    end
    else begin
      qsort2 a b !i hi;
      qsort2 a b lo (!j + 1)
    end
  end
  else
    for k = lo + 1 to hi - 1 do
      let x = Array.unsafe_get a k and y = Array.unsafe_get b k in
      let j = ref (k - 1) in
      while !j >= lo && Array.unsafe_get a !j > x do
        Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
        Array.unsafe_set b (!j + 1) (Array.unsafe_get b !j);
        decr j
      done;
      Array.unsafe_set a (!j + 1) x;
      Array.unsafe_set b (!j + 1) y
    done

let sort2_range a b ~lo ~hi =
  if
    lo < 0 || hi > Array.length a || hi > Array.length b || lo > hi
  then invalid_arg "Scratch.sort2_range";
  qsort2 a b lo hi

(* Sort the buffer and drop consecutive duplicates; the buffer's
   length shrinks to the number of distinct values. *)
let sort_dedup b =
  if b.len > 1 then begin
    qsort b.buf 0 b.len;
    let a = b.buf in
    let out = ref 1 in
    for i = 1 to b.len - 1 do
      if Array.unsafe_get a i <> Array.unsafe_get a (i - 1) then begin
        Array.unsafe_set a !out (Array.unsafe_get a i);
        incr out
      end
    done;
    b.len <- !out
  end
