(* Multilevel recursive-bisection graph partitioning (METIS-style):
   the heavyweight partitioner Han & Tseng positioned GPART against.
   Used here as an alternative seed/data partitioner in the ablations.

   Pipeline per bisection:
     1. coarsen by heavy-edge matching until the graph is small,
        accumulating node and edge weights;
     2. bisect the coarsest graph by weighted BFS order;
     3. uncoarsen, refining at every level with a boundary
        Kernighan-Lin/FM pass (positive-gain moves under a balance
        constraint).
   k-way partitions come from recursive bisection with proportional
   weight splits, so k need not be a power of two. *)

type wgraph = {
  n : int;
  row_ptr : int array;
  col : int array;
  ewgt : int array;  (* edge weights, parallel to col *)
  nwgt : int array;  (* node weights *)
}

(* Parallel executor handed down by callers that own a domain pool
   (irgraph sits below rtrt_par in the library stack, so the pool
   itself cannot appear here): [run f] must run [f lane] for every
   lane in [0, lanes) and return after all lanes finish. Substituted
   phases are bit-identical to the serial code for any lane count. *)
type par = { lanes : int; run : (int -> unit) -> unit }

(* Inline contiguous chunking (rtrt_par's Chunk is above this layer). *)
let chunk_even ~n ~lanes lane =
  let base = n / lanes and extra = n mod lanes in
  let len = base + if lane < extra then 1 else 0 in
  let start = (lane * base) + min lane extra in
  (start, len)

(* Below this size the barrier overhead of a parallel phase outweighs
   the scan it saves. *)
let par_threshold = 1024

let usable_par par n =
  match par with
  | Some p when p.lanes > 1 && n >= par_threshold -> Some p
  | _ -> None

let of_csr (g : Csr.t) =
  {
    n = Csr.num_nodes g;
    row_ptr = g.Csr.row_ptr;
    col = g.Csr.col;
    ewgt = Array.make (Array.length g.Csr.col) 1;
    nwgt = Array.make (Csr.num_nodes g) 1;
  }

let total_weight g = Array.fold_left ( + ) 0 g.nwgt

(* ------------------------------------------------------------------ *)
(* Coarsening: heavy-edge matching                                     *)

(* Match each unmatched node with its heaviest-edge unmatched neighbor.
   Returns the coarse graph and the node -> coarse-node map.

   The greedy matching itself is order-dependent (node v's partner is
   the heaviest neighbor still unmatched when v is reached), so it
   stays a serial pass. With [par], the heavy part of that pass — the
   adjacency scan — is hoisted into a parallel precomputation of each
   node's heaviest neighbor over ALL neighbors (first strict maximum,
   the same tie-break as the serial scan). When that hint is still
   unmatched at v's turn it IS the serial answer: restricted to the
   unmatched subset the maximum weight is unchanged and no
   earlier-positioned maximum can exist (it would have been the hint).
   Only nodes whose hint was taken fall back to rescanning. *)
let coarsen ?par g =
  let match_of = Array.make g.n (-1) in
  let hint =
    match usable_par par g.n with
    | None -> None
    | Some p ->
      let best = Array.make g.n (-1) in
      p.run (fun lane ->
          let s, len = chunk_even ~n:g.n ~lanes:p.lanes lane in
          for v = s to s + len - 1 do
            let b = ref (-1) and bw = ref 0 in
            for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
              let w = g.col.(idx) in
              if w <> v && g.ewgt.(idx) > !bw then begin
                b := w;
                bw := g.ewgt.(idx)
              end
            done;
            best.(v) <- !b
          done);
      Some best
  in
  let rescan v =
    let best = ref (-1) in
    let best_w = ref 0 in
    for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      let w = g.col.(idx) in
      if w <> v && match_of.(w) < 0 && g.ewgt.(idx) > !best_w then begin
        best := w;
        best_w := g.ewgt.(idx)
      end
    done;
    !best
  in
  for v = 0 to g.n - 1 do
    if match_of.(v) < 0 then begin
      let best =
        match hint with
        | Some hint when hint.(v) >= 0 && match_of.(hint.(v)) < 0 -> hint.(v)
        | Some hint when hint.(v) < 0 -> -1 (* no eligible neighbor at all *)
        | _ -> rescan v
      in
      if best >= 0 then begin
        match_of.(v) <- best;
        match_of.(best) <- v
      end
      else match_of.(v) <- v
    end
  done;
  (* Number the coarse nodes. *)
  let coarse_of = Array.make g.n (-1) in
  let n_coarse = ref 0 in
  for v = 0 to g.n - 1 do
    if coarse_of.(v) < 0 then begin
      coarse_of.(v) <- !n_coarse;
      if match_of.(v) <> v then coarse_of.(match_of.(v)) <- !n_coarse;
      incr n_coarse
    end
  done;
  let nc = !n_coarse in
  (* Coarse arcs by counting sort over the coarse source, then
     sort-and-merge each row: duplicates collapse and their weights
     sum. All int arrays — no per-node Hashtbls. *)
  let nwgt = Array.make nc 0 in
  let cand_ptr = Array.make (nc + 1) 0 in
  for v = 0 to g.n - 1 do
    let cv = coarse_of.(v) in
    nwgt.(cv) <- nwgt.(cv) + g.nwgt.(v);
    for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      if coarse_of.(g.col.(idx)) <> cv then
        cand_ptr.(cv + 1) <- cand_ptr.(cv + 1) + 1
    done
  done;
  for c = 1 to nc do
    cand_ptr.(c) <- cand_ptr.(c) + cand_ptr.(c - 1)
  done;
  let total = cand_ptr.(nc) in
  let dst = Array.make total 0 in
  let wgt = Array.make total 0 in
  let cursor = Array.copy cand_ptr in
  for v = 0 to g.n - 1 do
    let cv = coarse_of.(v) in
    for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      let cw = coarse_of.(g.col.(idx)) in
      if cw <> cv then begin
        dst.(cursor.(cv)) <- cw;
        wgt.(cursor.(cv)) <- g.ewgt.(idx);
        cursor.(cv) <- cursor.(cv) + 1
      end
    done
  done;
  let row_len = Array.make nc 0 in
  (* Each coarse row sorts and merges inside its own [cand_ptr] span,
     so rows are independent: with [par] the rows are chunked across
     lanes and the result is identical to the serial loop. *)
  let merge_row c =
    let lo = cand_ptr.(c) and hi = cand_ptr.(c + 1) in
    if hi > lo then begin
      Scratch.sort2_range dst wgt ~lo ~hi;
      let out = ref lo in
      for i = lo + 1 to hi - 1 do
        if dst.(i) = dst.(!out) then wgt.(!out) <- wgt.(!out) + wgt.(i)
        else begin
          incr out;
          dst.(!out) <- dst.(i);
          wgt.(!out) <- wgt.(i)
        end
      done;
      row_len.(c) <- !out - lo + 1
    end
  in
  (match usable_par par nc with
  | Some p ->
    p.run (fun lane ->
        let s, len = chunk_even ~n:nc ~lanes:p.lanes lane in
        for c = s to s + len - 1 do
          merge_row c
        done)
  | None ->
    for c = 0 to nc - 1 do
      merge_row c
    done);
  let row_ptr = Array.make (nc + 1) 0 in
  for c = 0 to nc - 1 do
    row_ptr.(c + 1) <- row_ptr.(c) + row_len.(c)
  done;
  let col = Array.make row_ptr.(nc) 0 in
  let ewgt = Array.make row_ptr.(nc) 0 in
  for c = 0 to nc - 1 do
    Array.blit dst cand_ptr.(c) col row_ptr.(c) row_len.(c);
    Array.blit wgt cand_ptr.(c) ewgt row_ptr.(c) row_len.(c)
  done;
  ({ n = nc; row_ptr; col; ewgt; nwgt }, coarse_of)

(* ------------------------------------------------------------------ *)
(* Initial bisection: weighted BFS order split                         *)

(* side.(v) = 0/1; the 0-side receives ~[left_share] of the weight. *)
let initial_bisection g ~left_share =
  let target = int_of_float (left_share *. float_of_int (total_weight g)) in
  let side = Array.make g.n 1 in
  let taken = ref 0 in
  let visited = Array.make g.n false in
  let queue = Queue.create () in
  let take v =
    side.(v) <- 0;
    taken := !taken + g.nwgt.(v)
  in
  (try
     for root = 0 to g.n - 1 do
       if not visited.(root) then begin
         visited.(root) <- true;
         Queue.add root queue;
         while not (Queue.is_empty queue) do
           let v = Queue.pop queue in
           if !taken >= target then raise Exit;
           take v;
           for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
             let w = g.col.(idx) in
             if not visited.(w) then begin
               visited.(w) <- true;
               Queue.add w queue
             end
           done
         done
       end
     done
   with Exit -> ());
  side

(* ------------------------------------------------------------------ *)
(* Refinement: one boundary FM pass                                    *)

(* Gain of moving v to the other side: external - internal edge
   weight. Moves with positive gain are applied greedily while the
   balance constraint allows; one pass per level suffices for the
   quality we need. *)
let refine g side ~left_share =
  let total = total_weight g in
  let target = int_of_float (left_share *. float_of_int total) in
  let slack = max (total / 10) (Array.fold_left max 1 g.nwgt) in
  let left_weight = ref 0 in
  Array.iteri (fun v s -> if s = 0 then left_weight := !left_weight + g.nwgt.(v)) side;
  for v = 0 to g.n - 1 do
    let internal = ref 0 and external_ = ref 0 in
    for idx = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      if side.(g.col.(idx)) = side.(v) then internal := !internal + g.ewgt.(idx)
      else external_ := !external_ + g.ewgt.(idx)
    done;
    if !external_ > !internal then begin
      (* Move if balance stays within the slack. *)
      let new_left =
        if side.(v) = 0 then !left_weight - g.nwgt.(v)
        else !left_weight + g.nwgt.(v)
      in
      if abs (new_left - target) <= abs (!left_weight - target) + slack then begin
        side.(v) <- 1 - side.(v);
        left_weight := new_left
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Multilevel bisection                                                *)

let rec bisect ?par g ~left_share ~coarsen_to =
  if g.n <= coarsen_to then begin
    let side = initial_bisection g ~left_share in
    refine g side ~left_share;
    side
  end
  else begin
    let coarse, coarse_of = coarsen ?par g in
    if coarse.n >= g.n then begin
      (* Matching made no progress (e.g. edgeless graph). *)
      let side = initial_bisection g ~left_share in
      refine g side ~left_share;
      side
    end
    else begin
      let coarse_side = bisect ?par coarse ~left_share ~coarsen_to in
      let side = Array.init g.n (fun v -> coarse_side.(coarse_of.(v))) in
      refine g side ~left_share;
      side
    end
  end

(* Restrict a weighted graph to the nodes with side = s; returns the
   subgraph and the local -> global node map. *)
let subgraph g side s =
  let global_of = ref [] in
  let local_of = Array.make g.n (-1) in
  let nl = ref 0 in
  for v = 0 to g.n - 1 do
    if side.(v) = s then begin
      local_of.(v) <- !nl;
      global_of := v :: !global_of;
      incr nl
    end
  done;
  let globals = Array.of_list (List.rev !global_of) in
  let n = !nl in
  let deg = Array.make n 0 in
  Array.iteri
    (fun lv gv ->
      for idx = g.row_ptr.(gv) to g.row_ptr.(gv + 1) - 1 do
        if local_of.(g.col.(idx)) >= 0 then deg.(lv) <- deg.(lv) + 1
      done)
    globals;
  let row_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + deg.(v)
  done;
  let col = Array.make row_ptr.(n) 0 in
  let ewgt = Array.make row_ptr.(n) 0 in
  let cursor = Array.copy row_ptr in
  Array.iteri
    (fun lv gv ->
      for idx = g.row_ptr.(gv) to g.row_ptr.(gv + 1) - 1 do
        let lw = local_of.(g.col.(idx)) in
        if lw >= 0 then begin
          col.(cursor.(lv)) <- lw;
          ewgt.(cursor.(lv)) <- g.ewgt.(idx);
          cursor.(lv) <- cursor.(lv) + 1
        end
      done)
    globals;
  let nwgt = Array.map (fun gv -> g.nwgt.(gv)) globals in
  ({ n; row_ptr; col; ewgt; nwgt }, globals)

(* Recursive bisection into [k] parts with proportional splits. *)
let rec kway ?par g ~k ~coarsen_to ~assign ~globals ~first_part =
  if k <= 1 then
    Array.iter (fun gv -> assign.(gv) <- first_part) globals
  else begin
    let k_left = (k + 1) / 2 in
    let left_share = float_of_int k_left /. float_of_int k in
    let side = bisect ?par g ~left_share ~coarsen_to in
    let g0, l0 = subgraph g side 0 in
    let g1, l1 = subgraph g side 1 in
    let globals0 = Array.map (fun lv -> globals.(lv)) l0 in
    let globals1 = Array.map (fun lv -> globals.(lv)) l1 in
    kway ?par g0 ~k:k_left ~coarsen_to ~assign ~globals:globals0 ~first_part;
    kway ?par g1 ~k:(k - k_left) ~coarsen_to ~assign ~globals:globals1
      ~first_part:(first_part + k_left)
  end

(* [partition g ~n_parts] multilevel-partitions [g] into [n_parts]
   (approximately balanced) parts. *)
let partition ?par (g : Csr.t) ~n_parts =
  if n_parts <= 0 then invalid_arg "Multilevel.partition: n_parts";
  let n = Csr.num_nodes g in
  if n = 0 then Partition.make ~n_parts:0 ~assign:[||]
  else begin
    let wg = of_csr g in
    let assign = Array.make n 0 in
    let globals = Array.init n (fun v -> v) in
    kway ?par wg ~k:(min n_parts n) ~coarsen_to:64 ~assign ~globals
      ~first_part:0;
    Partition.make ~n_parts:(min n_parts n) ~assign
  end

(* Convenience: parts sized for [part_size] nodes. *)
let partition_by_size ?par g ~part_size =
  if part_size <= 0 then invalid_arg "Multilevel.partition_by_size";
  let n = Csr.num_nodes g in
  partition ?par g ~n_parts:(max 1 ((n + part_size - 1) / part_size))
