(** Reusable growable int buffers and closure-free int sorts for
    inspector hot paths.

    Inspectors repeatedly need "collect an unknown number of ints,
    sort, dedupe" workspaces; doing that with lists or Hashtbls
    allocates proportionally to the traffic on every inspection. A
    [Scratch.t] is an amortized-doubling int array; [with_buf] borrows
    one from a per-domain pool so repeated inspections (the plan-cache
    cold path) reuse backing stores instead of reallocating.

    Publishes [hotpath.scratch.grows] / [hotpath.scratch.reuses]
    counters through {!Rtrt_obs.Metrics}. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer. [capacity] is a hint (default 256, min 16). *)

val length : t -> int
val clear : t -> unit
(** [clear b] resets the length to 0; capacity is retained. *)

val ensure : t -> int -> unit
(** [ensure b n] grows the backing store to hold at least [n] elements
    without changing [length b]. *)

val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit

val data : t -> int array
(** The backing store itself, without copying. Only indices
    [0 .. length b - 1] are meaningful; the array is invalidated by the
    next [push]/[ensure] that grows the buffer. *)

val to_array : t -> int array
(** Copy of the live prefix. *)

val with_buf : (t -> 'a) -> 'a
(** [with_buf f] borrows a cleared buffer from the current domain's
    pool for the duration of [f] and returns it afterwards (capacity
    intact). Nested calls borrow distinct buffers. Do not retain the
    buffer (or [data]) past the call. *)

val trim : ?max_bytes:int -> unit -> unit
(** [trim ~max_bytes ()] releases the calling domain's pooled backing
    stores until at most [max_bytes] (default 0: all of them) remain,
    keeping smaller buffers in preference to large ones. Without this,
    the DLS pool pins the largest inspection's working set for the
    rest of the process. Buffers currently borrowed via {!with_buf}
    are never touched. Call it from each domain that should shed its
    pool (e.g. through the same [Pool.parallel] used to fill it). *)

val current_bytes : unit -> int
(** Live backing-store bytes across all domains (pooled + borrowed). *)

val peak_bytes : unit -> int
(** High-water mark of {!current_bytes} since process start; also
    published as the [scratch.peak_bytes] gauge. *)

val sort : t -> unit
(** In-place ascending sort of the live prefix. *)

val sort_dedup : t -> unit
(** In-place ascending sort of the live prefix, then drop duplicates;
    [length] shrinks to the number of distinct values. *)

val sort_range : int array -> lo:int -> hi:int -> unit
(** [sort_range a ~lo ~hi] sorts [a.(lo) .. a.(hi-1)] ascending in
    place with a closure-free int quicksort (insertion sort below 16
    elements, median-of-three pivot, recursion on the smaller half). *)

val sort2_range : int array -> int array -> lo:int -> hi:int -> unit
(** [sort2_range keys payload ~lo ~hi] sorts [keys.(lo..hi-1)]
    ascending and applies the same permutation to [payload] — a
    tuple-free co-sort for (key, weight) pairs. The co-sort is not
    stable; equal keys may see their payloads in any order. *)
