(** Multilevel recursive-bisection graph partitioning (METIS-style):
    heavy-edge-matching coarsening, weighted-BFS initial bisection, and
    boundary Kernighan-Lin refinement at every level. The heavyweight
    alternative GPART was designed to undercut; used in the ablations. *)

(** A parallel executor handed down by callers owning a domain pool
    (this library sits below [rtrt_par], so the pool type cannot
    appear here): [run f] must execute [f lane] for every lane in
    [0, lanes) and return after all lanes finish. With [par], the
    coarsening's heavy-edge candidate scan and per-coarse-row
    sort-and-merge run chunked across lanes; results are bit-identical
    to the serial code for any lane count. *)
type par = { lanes : int; run : (int -> unit) -> unit }

(** Partition into [n_parts] approximately balanced parts. *)
val partition : ?par:par -> Csr.t -> n_parts:int -> Partition.t

(** Partition into parts of roughly [part_size] nodes. *)
val partition_by_size : ?par:par -> Csr.t -> part_size:int -> Partition.t
