(* Cuthill-McKee and reverse Cuthill-McKee orderings (Cuthill & McKee
   1969, cited as a data reordering in the paper's related work).
   Neighbors are visited in increasing-degree order, starting from a
   pseudo-peripheral node of each component. *)

(* Find a pseudo-peripheral node of the component containing [root] by
   repeated BFS to the farthest node. *)
let pseudo_peripheral g root =
  let n = Csr.num_nodes g in
  let dist = Array.make n (-1) in
  let bfs_far start =
    Array.fill dist 0 n (-1);
    let queue = Queue.create () in
    dist.(start) <- 0;
    Queue.add start queue;
    let far = ref start in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if
        dist.(v) > dist.(!far)
        || (dist.(v) = dist.(!far) && Csr.degree g v < Csr.degree g !far)
      then far := v;
      Csr.iter_neighbors g v (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end)
    done;
    (!far, dist.(!far))
  in
  let rec iterate v ecc rounds =
    if rounds = 0 then v
    else
      let far, ecc' = bfs_far v in
      if ecc' > ecc then iterate far ecc' (rounds - 1) else v
  in
  iterate root (-1) 4

(* Cuthill-McKee order: result.(k) is the k-th node in the new order.

   Degrees are precomputed once, and each BFS layer is sorted as
   packed int keys [deg * (n+1) + rank] — no comparison closures, no
   per-node lists. [rank] is the reversed adjacency position, which
   reproduces the historical tie order (a consed list sorted stably by
   degree) exactly; since ranks are distinct the keys are too, so the
   unstable co-sort is deterministic. *)
let cm_order g =
  let n = Csr.num_nodes g in
  let deg = Array.init n (Csr.degree g) in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  Scratch.with_buf @@ fun nodes_buf ->
  Scratch.with_buf @@ fun keys_buf ->
  for candidate = 0 to n - 1 do
    if not visited.(candidate) then begin
      let root = pseudo_peripheral g candidate in
      let queue = Queue.create () in
      visited.(root) <- true;
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(!pos) <- v;
        incr pos;
        Scratch.clear nodes_buf;
        Csr.iter_neighbors g v (fun w ->
            if not visited.(w) then begin
              visited.(w) <- true;
              Scratch.push nodes_buf w
            end);
        let cnt = Scratch.length nodes_buf in
        if cnt > 0 then begin
          let nodes = Scratch.data nodes_buf in
          Scratch.clear keys_buf;
          Scratch.ensure keys_buf cnt;
          for i = 0 to cnt - 1 do
            Scratch.push keys_buf ((deg.(nodes.(i)) * (n + 1)) + (cnt - 1 - i))
          done;
          Scratch.sort2_range (Scratch.data keys_buf) nodes ~lo:0 ~hi:cnt;
          for i = 0 to cnt - 1 do
            Queue.add nodes.(i) queue
          done
        end
      done
    end
  done;
  order

let rcm_order g =
  let order = cm_order g in
  let n = Array.length order in
  Array.init n (fun k -> order.(n - 1 - k))

(* Bandwidth of the graph under a given ordering [position]: max over
   edges of |pos(u) - pos(v)|. *)
let bandwidth g ~position =
  let bw = ref 0 in
  for v = 0 to Csr.num_nodes g - 1 do
    Csr.iter_neighbors g v (fun w ->
        let d = abs (position.(v) - position.(w)) in
        if d > !bw then bw := d)
  done;
  !bw
