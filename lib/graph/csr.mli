(** Compressed-sparse-row undirected graphs over nodes [0, n).

    This is the runtime view of data-to-data affinity induced by a
    loop's data mappings: two data locations are adjacent when some
    iteration touches both (the graph that Gpart partitions). *)

type t = private {
  n : int;
  row_ptr : int array;
  col : int array;
}

val num_nodes : t -> int

(** Trusted raw constructor (no validation, no copy); for builders
    whose arrays are valid CSR by construction. *)
val unsafe_make : n:int -> row_ptr:int array -> col:int array -> t

(** Number of undirected edges counted with multiplicity (arcs / 2):
    a duplicate edge, which {!of_edges} deliberately keeps, counts
    once per copy. See {!num_distinct_edges} for the simple-graph
    count. *)
val num_edges : t -> int

(** Number of distinct undirected edges (duplicates collapsed). Costs
    a sort of each adjacency list; not a hot-path accessor. *)
val num_distinct_edges : t -> int

(** Number of stored arcs (each undirected edge appears twice). *)
val num_arcs : t -> int

val degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val neighbors : t -> int -> int array

(** [of_edges ~n edges] builds an undirected graph; self-loops are
    dropped, duplicates kept. *)
val of_edges : n:int -> (int * int) array -> t

(** [of_accesses ~n_data accesses] connects data locations touched by
    the same iteration (pairwise clique per iteration). *)
val of_accesses : n_data:int -> int array array -> t

(** Undirected edge array with [u < v], [u] ascending; multi-edges
    appear once per copy. *)
val edges : t -> (int * int) array

(** BFS from [root] over unvisited nodes, marking and visiting each. *)
val bfs_from : t -> visited:bool array -> root:int -> (int -> unit) -> unit

(** Whole-graph BFS order (restarts per component). *)
val bfs_order : t -> int array

(** [(count, comp)] where [comp.(v)] is the component id of [v]. *)
val connected_components : t -> int * int array

val pp : t Fmt.t
