(* Degree-preserving re-neighboring by double-edge swaps (the standard
   degree-sequence-preserving rewiring move): two interactions (a,b)
   and (c,d) become (a,d) and (c,b). Every node keeps its incidence
   count, so the degree distribution — which the generators synthesize
   to match the paper's datasets — survives any churn level; only the
   dependence structure moves. *)

type damage = {
  rewired : (int * (int * int) * (int * int)) array;
  touched_nodes : int array;
  requested_edges : int;
  swaps : int;
}

let c_rounds = Rtrt_obs.Metrics.counter "churn.rounds"
let c_swaps = Rtrt_obs.Metrics.counter "churn.swaps"
let c_rewired = Rtrt_obs.Metrics.counter "churn.edges_rewired"
let c_rejects = Rtrt_obs.Metrics.counter "churn.swap_rejects"

let damaged_edges d = Array.length d.rewired

let damage_fraction d ~m =
  if m = 0 then 0.0 else float_of_int (damaged_edges d) /. float_of_int m

(* How many times node [v] appears in endpoint pair [(l, r)]. *)
let count v l r = (if l = v then 1 else 0) + if r = v then 1 else 0

let rewire ~rng ~fraction (d : Dataset.t) =
  if not (fraction >= 0.0 && fraction <= 1.0) then
    invalid_arg (Fmt.str "Churn.rewire: fraction %g outside [0, 1]" fraction);
  let m = Dataset.n_interactions d in
  let left = Array.copy d.left and right = Array.copy d.right in
  let requested =
    int_of_float ((fraction *. float_of_int m) +. 0.5) |> min m
  in
  (* Each successful swap rewires two interactions. The retry budget
     bounds the loop on graphs where most candidate pairs are rejected
     (self-loop or no-op swaps); in practice the synthesized datasets
     accept almost every draw. *)
  let budget = ref ((16 * requested) + 64) in
  let rewired_target = requested in
  let rewired_count = ref 0 in
  let swaps = ref 0 in
  (* Track the pre-churn endpoints of every interaction we touch, so a
     chain of swaps through the same interaction reports one damage
     record (or none, if it lands back on its original endpoints). *)
  let original : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let remember j =
    if not (Hashtbl.mem original j) then
      Hashtbl.add original j (d.left.(j), d.right.(j))
  in
  while m >= 2 && !rewired_count < rewired_target && !budget > 0 do
    decr budget;
    let j1 = Rng.int rng m in
    let j2 = Rng.int rng m in
    let a = left.(j1) and b = right.(j1) in
    let c = left.(j2) and e = right.(j2) in
    (* Reject: same interaction, a swap creating a self-loop, or a swap
       that changes nothing (b = e exchanges identical endpoints). *)
    if j1 = j2 || a = e || c = b || b = e then
      Rtrt_obs.Metrics.incr c_rejects
    else begin
      remember j1;
      remember j2;
      right.(j1) <- e;
      right.(j2) <- b;
      incr swaps;
      rewired_count := !rewired_count + 2
    end
  done;
  (* Damage = interactions whose endpoints differ from before the
     churn, plus the nodes whose incident multiset changed. *)
  let recs = ref [] in
  Hashtbl.iter
    (fun j (ol, orr) ->
      let nl = left.(j) and nr = right.(j) in
      if nl <> ol || nr <> orr then recs := (j, (ol, orr), (nl, nr)) :: !recs)
    original;
  let rewired = Array.of_list !recs in
  Array.sort (fun (j1, _, _) (j2, _, _) -> compare j1 j2) rewired;
  let touched = Hashtbl.create 64 in
  Array.iter
    (fun (_, (ol, orr), (nl, nr)) ->
      let consider v =
        if count v ol orr <> count v nl nr then Hashtbl.replace touched v ()
      in
      consider ol; consider orr; consider nl; consider nr)
    rewired;
  let touched_nodes =
    Hashtbl.fold (fun v () acc -> v :: acc) touched []
    |> List.sort_uniq compare |> Array.of_list
  in
  Rtrt_obs.Metrics.incr c_rounds;
  Rtrt_obs.Metrics.add c_swaps !swaps;
  Rtrt_obs.Metrics.add c_rewired (Array.length rewired);
  ( {
      d with
      name = d.name ^ "+churn";
      left;
      right;
      (* Positions no longer generated the neighbor list. *)
      coords = None;
    },
    {
      rewired;
      touched_nodes;
      requested_edges = requested;
      swaps = !swaps;
    } )

let pp_damage ppf dmg =
  Fmt.pf ppf "churn: %d/%d interactions rewired (%d swaps), %d nodes touched"
    (damaged_edges dmg) dmg.requested_edges dmg.swaps
    (Array.length dmg.touched_nodes)
