(** Graph churn: re-neighboring an existing dataset the way MD codes
    rebuild their neighbor lists every few hundred steps.

    [rewire] mutates a fraction of the interaction list by
    degree-preserving double-edge swaps — pick two interactions (a,b)
    and (c,d), rewire them to (a,d) and (c,b) — so the node degree
    distribution (and hence the locality statistics the datasets were
    synthesized to match) is exactly preserved while the dependence
    structure changes. Deterministic under the figure {!Rng}: the same
    seed always produces the same churned dataset and damage set.

    The damage set is what {!Compose.Repair} consumes: the rewired
    interactions with their old and new endpoints, plus the sorted set
    of nodes whose incident-interaction multiset changed (only those
    nodes can change tile under frozen seed tiles). *)

type damage = {
  rewired : (int * (int * int) * (int * int)) array;
      (** [(j, (old_left, old_right), (new_left, new_right))] for every
          interaction whose endpoints differ from before the churn, in
          ascending [j] order. Interactions rewired twice back to their
          original endpoints are not damage. *)
  touched_nodes : int array;
      (** ascending node ids whose incident-interaction multiset
          changed — the only nodes whose grown tile can change *)
  requested_edges : int;  (** [round (fraction *. m)] *)
  swaps : int;  (** successful double-edge swaps performed *)
}

val damaged_edges : damage -> int
val damage_fraction : damage -> m:int -> float

(** [rewire ~rng ~fraction d] returns the churned dataset (fresh
    arrays; [d] is not mutated) and the damage set. [fraction] is the
    target fraction of interactions to rewire, in [0, 1]; the actual
    count can fall short on degenerate graphs (swap candidates that
    would create self-loops or change nothing are rejected, with a
    bounded retry budget). Coordinates are dropped: churned neighbor
    lists no longer derive from the generator's geometry. Raises
    [Invalid_argument] for a [fraction] outside [0, 1]. *)
val rewire : rng:Rng.t -> fraction:float -> Dataset.t -> Dataset.t * damage

val pp_damage : damage Fmt.t
