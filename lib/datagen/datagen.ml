(** Synthetic benchmark datasets matching the statistics of the
    paper's mol1/mol2/foil/auto inputs (see DESIGN.md for the
    substitution argument). *)

module Rng = Rng
module Dataset = Dataset
module Pointcloud = Pointcloud
module Generators = Generators
module Churn = Churn
