(** Multicore execution for the run-time reordering framework: a
    spawn-once domain {!Pool}, static {!Chunk}ing, the bit-exact
    parallel tiled-executor engine {!Exec}, and parallel inspector
    paths {!Inspect}. *)

module Pool = Pool
module Chunk = Chunk
module Exec = Exec
module Inspect = Inspect
