(** Static contiguous chunking of index ranges across pool lanes. *)

(** [even ~n ~lanes] splits [0, n) into [lanes] contiguous
    (start, len) ranges differing by at most one element. *)
val even : n:int -> lanes:int -> (int * int) array

(** [weighted ~weights ~lanes] splits [0, length weights) into [lanes]
    contiguous (start, len) ranges with approximately balanced weight
    sums; deterministic in [weights] and [lanes]. No chunk is empty
    when [length weights >= lanes]; all-zero weights fall back to
    {!even}. *)
val weighted : weights:int array -> lanes:int -> (int * int) array
