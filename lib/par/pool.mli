(** A reusable pool of OCaml 5 domains. Workers are spawned once and
    then live inside a sense-reversing centralized barrier: between
    {!parallel} calls every worker is parked at the start barrier, so
    dispatch is a single barrier arrival by the caller — no
    mutex/condition broadcast on the hot path. Waiters spin a bounded
    number of [Domain.cpu_relax] iterations (RTRT_POOL_SPIN; forced to
    0 when the pool is wider than the machine) before falling back to
    a futex-style blocking sleep. Every barrier crossing establishes
    happens-before, so plain array writes made by one lane are visible
    to every lane afterwards. *)

type t

(** [create ~domains] spawns [domains - 1] workers; the calling domain
    is lane 0. Raises [Invalid_argument] when [domains < 1]. *)
val create : domains:int -> t

(** Total number of lanes (including the caller). *)
val size : t -> int

(** [parallel t f] runs [f lane] on every lane in [0, size t) and
    returns once all lanes finish (full barrier). The first exception
    raised by any lane is re-raised on the caller after the barrier.
    A pool of size 1 runs [f 0] inline. [profile] forces accounting on
    or off for this round (default: whether tracing is enabled). *)
val parallel : ?profile:bool -> t -> (int -> unit) -> unit

(** [barrier t ~lane] is an in-job phase barrier: callable only from
    inside a {!parallel} job, and every lane must call it the same
    number of times per job (the executors guarantee this statically).
    A pool of size 1 makes it a no-op. Time spent waiting counts
    toward the lane's barrier accounting when the round is profiled. *)
val barrier : t -> lane:int -> unit

(** Join the workers and publish per-lane accounting as
    [pool.lane<i>.{work,barrier,idle}_ns] gauges. The pool must not be
    used afterwards; idempotent. *)
val shutdown : t -> unit

(** {2 Synchronization-cost calibration}

    Measured once per pool on first demand, then cached; also
    exported as the [pool.barrier_cost_ns] and [pool.dispatch_cost_ns]
    gauges. The barrier is measured {e loaded} — a fixed per-lane work
    loop between barriers, with the barrier-free work time subtracted
    — so it reflects the overhead a barrier adds to a step that
    computes something, not an empty-barrier contention storm. Both
    costs are 0 for a pool of size 1. The executor's auto-fallback
    tier decision feeds these into its makespan model. *)

(** Steady-state cost of one in-job {!barrier} crossing under load, ns. *)
val barrier_cost_ns : t -> float

(** Cost of one empty {!parallel} round (dispatch + end barrier), ns. *)
val dispatch_cost_ns : t -> float

(** {2 Per-lane accounting}

    When a round is profiled (tracing enabled at dispatch time, or
    [~profile:true]), it is split per lane into dispatch/idle time
    (wake latency), work time (inside the job, minus in-job barrier
    waits) and barrier time (in-job barrier waits plus the end-of-round
    wait for stragglers). Per-round barrier totals feed the
    [pool.barrier_wait] histogram; the dispatch-to-last-lane-entry
    latency feeds [pool.dispatch_wait]. With tracing off and no
    [~profile:true], no clocks are read. *)

type lane_stats = {
  work_ns : int;     (** total ns inside jobs, excluding barrier waits *)
  barrier_ns : int;  (** total in-job + end-of-round barrier wait ns *)
  idle_ns : int;     (** total dispatch/wake latency ns *)
}

(** Accumulated per-lane totals over the accounted rounds. For every
    lane, [work + barrier + idle = accounted_ns] exactly. Call at
    quiescent points (no parallel call in flight). *)
val lane_stats : t -> lane_stats array

(** Number of rounds that were accounted (profiled). *)
val accounted_rounds : t -> int

(** Sum over accounted rounds of (round end - dispatch) ns. *)
val accounted_ns : t -> int

(** Sum over accounted rounds of (last lane's work entry - dispatch)
    ns — the cumulative [pool.dispatch_wait]. *)
val dispatch_wait_ns : t -> int

(** [with_pool ~domains f] creates a pool, runs [f], and shuts the
    pool down even on exceptions. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** Domain count from the RTRT_DOMAINS environment variable
    ([default], default 1, when unset or invalid). *)
val domains_from_env : ?default:int -> unit -> int
