(** A reusable pool of OCaml 5 domains: workers are spawned once and
    woken per call through a mutex/condition pair. The barrier at the
    end of {!parallel} establishes happens-before, so array writes
    made by one lane are visible to every lane afterwards. *)

type t

(** [create ~domains] spawns [domains - 1] workers; the calling domain
    is lane 0. Raises [Invalid_argument] when [domains < 1]. *)
val create : domains:int -> t

(** Total number of lanes (including the caller). *)
val size : t -> int

(** [parallel t f] runs [f lane] on every lane in [0, size t) and
    returns once all lanes finish (full barrier). The first exception
    raised by any lane is re-raised on the caller after the barrier.
    A pool of size 1 runs [f 0] inline. *)
val parallel : t -> (int -> unit) -> unit

(** Join the workers and publish per-lane accounting as
    [pool.lane<i>.{work,barrier,idle}_ns] gauges. The pool must not be
    used afterwards; idempotent. *)
val shutdown : t -> unit

(** {2 Per-lane accounting}

    When tracing is enabled at dispatch time, every {!parallel} round
    is split per lane into dispatch/idle time (wake latency), work
    time (inside the job) and barrier wait (for stragglers); barrier
    waits also feed the [pool.barrier_wait] histogram. With tracing
    off, no clocks are read. *)

type lane_stats = {
  work_ns : int;     (** total ns inside jobs *)
  barrier_ns : int;  (** total ns waiting at the end-of-round barrier *)
  idle_ns : int;     (** total dispatch/wake latency ns *)
}

(** Accumulated per-lane totals over the accounted rounds. For every
    lane, [work + barrier + idle = accounted_ns] exactly. Call at
    quiescent points (no parallel call in flight). *)
val lane_stats : t -> lane_stats array

(** Number of rounds that were accounted (tracing enabled). *)
val accounted_rounds : t -> int

(** Sum over accounted rounds of (round end - dispatch) ns. *)
val accounted_ns : t -> int

(** [with_pool ~domains f] creates a pool, runs [f], and shuts the
    pool down even on exceptions. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** Domain count from the RTRT_DOMAINS environment variable
    ([default], default 1, when unset or invalid). *)
val domains_from_env : ?default:int -> unit -> int
