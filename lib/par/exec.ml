(* The parallel tiled-executor engine shared by moldyn/nbf/irreg.

   Given a tile schedule and the levelization of its tile dependence
   DAG (Tile_par), [make] renumbers the tiles level-major and builds a
   static execution plan; [run] then executes each level's tiles
   concurrently on a domain pool. The design goal is output that is
   BITWISE identical to the serial tiled executor on the (renumbered)
   schedule, not merely close:

   - Tiles are renumbered level-major (levels ascending, ascending tile
     id within a level), so the serial execution order of the
     renumbered schedule coincides with the parallel (level, tile)
     order. [schedule] exposes the renumbered schedule for the serial
     twin.

   - Within a level, chain positions execute phase-major: position 0
     of every tile (in parallel), barrier, position 1 of every tile,
     and so on. Dependences between adjacent chain positions always
     point to the same or an earlier tile (tiling legality), and both
     ends of a same-level cross-tile pair therefore commute — except
     for reductions.

   - Interaction-loop positions are reductions: same-level tiles may
     update the same datum (fx[left], fx[right]), and float addition
     does not reassociate. Those positions run in two phases:
     [stash] computes each iteration's contribution into per-iteration
     scratch (a pure function of data that is read-only during the
     position), then after a barrier [apply] folds the contributions
     into each datum in exactly the serial order — tiles ascending,
     iterations ascending, left before right — using a prebuilt
     per-datum reference list. Each datum is owned by exactly one
     lane, so the fold order per datum is the serial one and the
     result is bit-exact.

   Execution model (persistent workers): every lane owns a [slice] —
   its chunk of each level's tiles and of each reduction's data,
   computed ONCE at plan time. [run ~batch:k] dispatches the pool once
   per k whole time steps; inside the job each lane walks the level
   program over its slice, synchronizing through the pool's in-job
   sense-reversing barrier. Serial levels run on lane 0; a barrier is
   inserted lazily, only when ownership next changes hands (the
   [pending] flag), so consecutive serial levels cost no
   synchronization at all. The per-(step,level,pos) barrier count is a
   pure function of the plan, which both the auto-fallback cost model
   and the exception-drain path reuse.

   Auto-fallback tier: [decide] compares serial time against an
   Amdahl makespan of the parallel step — the serial-level share at
   full cost, the parallel-level share divided by the lane count,
   plus the measured per-barrier cost times the barriers per step and
   the dispatch cost amortized over the batch — and selects [Serial]
   when parallelism cannot pay. [run ~tier:Serial] then executes the plain
   tile-major loop on the calling domain (bitwise identical by
   construction, it IS the serial order).

   References are packed as [(iter lsl 1) lor slot] with slot 0 =
   left endpoint, slot 1 = right endpoint. *)

type tier = Parallel | Serial

let tier_name = function Parallel -> "parallel" | Serial -> "serial"

type decision = {
  d_tier : tier;
  d_serial_ns_per_step : float;
  d_modeled_par_ns_per_step : float;
  d_barriers_per_step : int;
  d_barrier_cost_ns : float;
  d_dispatch_cost_ns : float;
  d_par_frac : float;
  d_lanes : int;
}

type red = {
  r_data : int array;            (* touched data, discovery order *)
  r_ptr : int array;             (* CSR offsets into r_refs *)
  r_refs : int array;            (* (iter lsl 1) lor slot, serial order *)
  r_lane_data : (int * int) array; (* per-lane (start, len) into r_data *)
}

type level = {
  l_first : int;                 (* first renumbered tile id *)
  l_count : int;
  l_par : bool;                  (* run tiles concurrently *)
  l_lane_tiles : (int * int) array; (* per-lane (offset, len) in level *)
  l_red : red option array;      (* per chain position *)
}

(* A lane's pinned share of the whole plan: one (first, count) tile
   range per level and one (lo, n) datum range per (level, position)
   reduction. Built once at [make]; steps only read it. *)
type slice = {
  s_first : int array;           (* per level: absolute first tile *)
  s_count : int array;           (* per level: tiles owned *)
  s_red_lo : int array;          (* per level * n_chain + pos *)
  s_red_n : int array;
}

type t = {
  pool : Pool.t;
  sched : Reorder.Schedule.t;    (* level-major renumbered *)
  n_chain : int;
  levels : level array;
  slices : slice array;          (* per lane *)
  c_lane_iters : Rtrt_obs.Metrics.counter array;
  any_par : bool;
  total_weight : int;            (* iterations per step, all positions *)
  par_weight : int;              (* modeled critical path (heaviest lane) *)
  par_levels_weight : int;       (* iterations living in parallel levels *)
  barriers_first : int;          (* in-job barriers, first step of a batch *)
  barriers_steady : int;         (* in-job barriers, subsequent steps *)
}

let schedule t = t.sched
let n_levels t = Array.length t.levels

let lane_counters pool =
  Array.init (Pool.size pool) (fun l ->
      Rtrt_obs.Metrics.counter (Fmt.str "par.domain%d.iterations" l))

(* Whole-step latency (all levels, all phases of one time step). *)
let h_step = Rtrt_obs.Hist.hist "par.step"

(* Level-major tile order: levels ascending, tile ids ascending within
   a level (Tile_par builds levels ascending already, but recompute
   from [level_of] so any levelization source works). *)
let level_major_order level_of =
  let n_tiles = Array.length level_of in
  let n_levels = Array.fold_left (fun acc l -> max acc (l + 1)) 1 level_of in
  let counts = Array.make n_levels 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) level_of;
  let first = Array.make n_levels 0 in
  for l = 1 to n_levels - 1 do
    first.(l) <- first.(l - 1) + counts.(l - 1)
  done;
  let order = Array.make n_tiles 0 in
  let cursor = Array.copy first in
  for tile = 0 to n_tiles - 1 do
    let l = level_of.(tile) in
    order.(cursor.(l)) <- tile;
    cursor.(l) <- cursor.(l) + 1
  done;
  (order, first, counts)

(* A tile's iterations are one contiguous block of the flat schedule,
   so its weight is a row_ptr difference. *)
let tile_weight sched tile =
  let rp = Reorder.Schedule.row_ptr sched in
  let nl = Reorder.Schedule.n_loops sched in
  rp.((tile + 1) * nl) - rp.(tile * nl)

(* Per-datum reference lists for one (level, position): scan the
   level's interaction iterations in serial order twice — once to
   discover touched data and count references, once to fill them.
   [count] and [index_of] are caller-provided scratch of size n_data,
   zeroed/reset between builds so construction stays linear in the
   level size, not the data size. *)
let build_red sched ~l_first ~l_count ~pos ~left ~right ~lanes ~count ~index_of
    =
  let data_rev = ref [] in
  let n_data = ref 0 in
  let n_refs = ref 0 in
  let touch d =
    if count.(d) = 0 then begin
      index_of.(d) <- !n_data;
      data_rev := d :: !data_rev;
      incr n_data
    end;
    count.(d) <- count.(d) + 1;
    incr n_refs
  in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  let nl = Reorder.Schedule.n_loops sched in
  for i = 0 to l_count - 1 do
    let r = ((l_first + i) * nl) + pos in
    for k = rp.(r) to rp.(r + 1) - 1 do
      let j = fl.(k) in
      touch left.(j);
      touch right.(j)
    done
  done;
  let r_data = Array.make !n_data 0 in
  List.iteri
    (fun i d -> r_data.(!n_data - 1 - i) <- d)
    !data_rev;
  let r_ptr = Array.make (!n_data + 1) 0 in
  for i = 0 to !n_data - 1 do
    r_ptr.(i + 1) <- r_ptr.(i) + count.(r_data.(i))
  done;
  let cursor = Array.make !n_data 0 in
  let r_refs = Array.make !n_refs 0 in
  let emit d refv =
    let i = index_of.(d) in
    r_refs.(r_ptr.(i) + cursor.(i)) <- refv;
    cursor.(i) <- cursor.(i) + 1
  in
  for i = 0 to l_count - 1 do
    let r = ((l_first + i) * nl) + pos in
    for k = rp.(r) to rp.(r + 1) - 1 do
      let j = fl.(k) in
      emit left.(j) (j lsl 1);
      emit right.(j) ((j lsl 1) lor 1)
    done
  done;
  (* Reset scratch for the next build. *)
  Array.iter (fun d -> count.(d) <- 0) r_data;
  let weights = Array.init !n_data (fun i -> r_ptr.(i + 1) - r_ptr.(i)) in
  { r_data; r_ptr; r_refs; r_lane_data = Chunk.weighted ~weights ~lanes }

(* In-job barriers executed by one step, given whether a serial level
   is still pending a barrier on entry. Every lane computes the same
   program, so this is exact, and the exception-drain path relies on
   it. *)
let step_barriers levels n_chain ~pending_in =
  let count = ref 0 in
  let pending = ref pending_in in
  Array.iter
    (fun lv ->
      if not lv.l_par then pending := true
      else begin
        if !pending then incr count;
        pending := false;
        for pos = 0 to n_chain - 1 do
          count := !count + (match lv.l_red.(pos) with None -> 1 | Some _ -> 2)
        done
      end)
    levels;
  (!count, !pending)

(* Total in-job barriers of a [k]-step batch (a batch always enters
   with no pending barrier: the dispatch itself synchronized). *)
let batch_barriers t ~k =
  if k <= 0 then 0
  else t.barriers_first + ((k - 1) * t.barriers_steady)

let make ~pool ~sched ~level_of ~is_reduction ~left ~right ~n_data =
  let n_tiles = Reorder.Schedule.n_tiles sched in
  if Array.length level_of <> n_tiles then
    invalid_arg "Exec.make: level_of size mismatch";
  let order, first, counts = level_major_order level_of in
  let sched = Reorder.Schedule.permute_tiles sched ~order in
  let n_chain = Reorder.Schedule.n_loops sched in
  let lanes = Pool.size pool in
  let count = Array.make n_data 0 in
  let index_of = Array.make n_data 0 in
  let levels =
    Array.init (Array.length first) (fun l ->
        let l_first = first.(l) and l_count = counts.(l) in
        let l_par = l_count > 1 && lanes > 1 in
        let l_lane_tiles =
          if not l_par then [||]
          else
            let weights =
              Array.init l_count (fun i -> tile_weight sched (l_first + i))
            in
            Chunk.weighted ~weights ~lanes
        in
        let l_red =
          Array.init n_chain (fun pos ->
              if l_par && is_reduction pos then
                Some
                  (build_red sched ~l_first ~l_count ~pos ~left ~right ~lanes
                     ~count ~index_of)
              else None)
        in
        { l_first; l_count; l_par; l_lane_tiles; l_red })
  in
  let n_levels = Array.length levels in
  (* Pin every lane's share once: tile ranges per level, datum ranges
     per reduction position. *)
  let slices =
    Array.init lanes (fun lane ->
        let s_first = Array.make n_levels 0 in
        let s_count = Array.make n_levels 0 in
        let s_red_lo = Array.make (n_levels * n_chain) 0 in
        let s_red_n = Array.make (n_levels * n_chain) 0 in
        Array.iteri
          (fun l lv ->
            if lv.l_par then begin
              let off, len = lv.l_lane_tiles.(lane) in
              s_first.(l) <- lv.l_first + off;
              s_count.(l) <- len;
              Array.iteri
                (fun pos red ->
                  match red with
                  | None -> ()
                  | Some red ->
                    let lo, n = red.r_lane_data.(lane) in
                    s_red_lo.((l * n_chain) + pos) <- lo;
                    s_red_n.((l * n_chain) + pos) <- n)
                lv.l_red
            end)
          levels;
        { s_first; s_count; s_red_lo; s_red_n })
  in
  let any_par = Array.exists (fun lv -> lv.l_par) levels in
  let total_weight =
    Array.fold_left
      (fun acc lv ->
        let w = ref 0 in
        for i = 0 to lv.l_count - 1 do
          w := !w + tile_weight sched (lv.l_first + i)
        done;
        acc + !w)
      0 levels
  in
  (* Modeled parallel critical path: per level, the heaviest lane's
     chunk (serial levels contribute whole). *)
  let par_weight =
    Array.fold_left
      (fun acc lv ->
        if not lv.l_par then begin
          let w = ref 0 in
          for i = 0 to lv.l_count - 1 do
            w := !w + tile_weight sched (lv.l_first + i)
          done;
          acc + !w
        end
        else begin
          let heaviest = ref 0 in
          Array.iter
            (fun (off, len) ->
              let w = ref 0 in
              for i = off to off + len - 1 do
                w := !w + tile_weight sched (lv.l_first + i)
              done;
              if !w > !heaviest then heaviest := !w)
            lv.l_lane_tiles;
          acc + !heaviest
        end)
      0 levels
  in
  (* Parallelizable fraction of the step: iterations that live in
     parallel levels (serial levels can never be divided across
     lanes). *)
  let par_levels_weight =
    Array.fold_left
      (fun acc lv ->
        if not lv.l_par then acc
        else begin
          let w = ref 0 in
          for i = 0 to lv.l_count - 1 do
            w := !w + tile_weight sched (lv.l_first + i)
          done;
          acc + !w
        end)
      0 levels
  in
  let barriers_first, pending_out =
    step_barriers levels n_chain ~pending_in:false
  in
  let barriers_steady, _ = step_barriers levels n_chain ~pending_in:pending_out in
  {
    pool;
    sched;
    n_chain;
    levels;
    slices;
    c_lane_iters = lane_counters pool;
    any_par;
    total_weight;
    par_weight;
    par_levels_weight;
    barriers_first;
    barriers_steady;
  }

(* ------------------------------------------------------------------ *)
(* Auto-fallback tier                                                  *)

(* Amdahl makespan with measured overheads:

     serial x (1 - frac)          serial part, unchanged
   + serial x frac / lanes        parallel part divided across lanes
   + barriers x barrier_cost      per-step synchronization
   + dispatch_cost / batch        pool wake-up amortized over the batch

   where frac is the fraction of the step's iterations living in
   parallel levels. The tie goes to Parallel: equal modeled and serial
   times mean the overheads are fully hidden, so the parallel engine
   (which also keeps the pool warm for neighbouring phases) is
   preferred. *)
let decide t ~serial_ns_per_step ~batch =
  let lanes = Pool.size t.pool in
  if lanes = 1 || not t.any_par then
    {
      d_tier = Serial;
      d_serial_ns_per_step = serial_ns_per_step;
      d_modeled_par_ns_per_step = serial_ns_per_step;
      d_barriers_per_step = 0;
      d_barrier_cost_ns = 0.0;
      d_dispatch_cost_ns = 0.0;
      d_par_frac = 0.0;
      d_lanes = lanes;
    }
  else begin
    let barrier_cost = Pool.barrier_cost_ns t.pool in
    let dispatch_cost = Pool.dispatch_cost_ns t.pool in
    let barriers = t.barriers_steady in
    let frac =
      float_of_int t.par_levels_weight /. float_of_int (max 1 t.total_weight)
    in
    let modeled =
      (serial_ns_per_step *. (1.0 -. frac))
      +. (serial_ns_per_step *. frac /. float_of_int lanes)
      +. (float_of_int barriers *. barrier_cost)
      +. (dispatch_cost /. float_of_int (max 1 batch))
    in
    {
      d_tier = (if modeled <= serial_ns_per_step then Parallel else Serial);
      d_serial_ns_per_step = serial_ns_per_step;
      d_modeled_par_ns_per_step = modeled;
      d_barriers_per_step = barriers;
      d_barrier_cost_ns = barrier_cost;
      d_dispatch_cost_ns = dispatch_cost;
      d_par_frac = frac;
      d_lanes = lanes;
    }
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

(* Serial tier: the plain tile-major loop (levels are contiguous
   ascending tiles, so tile-major IS level-major serial order). *)
let run_serial t ~steps ~body =
  let sched = t.sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  let nl = Reorder.Schedule.n_loops sched in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let iters = ref 0 in
  for _s = 1 to steps do
    let prof = Rtrt_obs.enabled () in
    let t0 = if prof then Rtrt_obs.Clock.now_ns () else 0 in
    for tile = 0 to n_tiles - 1 do
      for pos = 0 to t.n_chain - 1 do
        let r = (tile * nl) + pos in
        let lo = rp.(r) and hi = rp.(r + 1) in
        iters := !iters + (hi - lo);
        body ~pos fl lo hi
      done
    done;
    if prof then Rtrt_obs.Hist.record h_step (Rtrt_obs.Clock.now_ns () - t0)
  done;
  Rtrt_obs.Metrics.add t.c_lane_iters.(0) !iters

(* One lane's walk of a [k]-step batch. All cross-lane synchronization
   is the pool's in-job barrier; the [pending] flag defers the barrier
   after a lane-0-only serial level until ownership next changes. On
   exception the lane drains its remaining barrier quota (every lane
   executes exactly [batch_barriers] per batch), so the other lanes
   cannot deadlock, then rethrows into the pool's failure slot. *)
let run_lane t lane ~k ~prof ~body ~stash ~apply =
  let sched = t.sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  let nl = Reorder.Schedule.n_loops sched in
  let pool = t.pool in
  let levels = t.levels in
  let n_levels = Array.length levels in
  let n_chain = t.n_chain in
  let slice = t.slices.(lane) in
  let iters = ref 0 in
  let bars = ref 0 in
  let pending = ref false in
  (try
     for _step = 1 to k do
       let t0 = if prof && lane = 0 then Rtrt_obs.Clock.now_ns () else 0 in
       for l = 0 to n_levels - 1 do
         let lv = Array.unsafe_get levels l in
         if not lv.l_par then begin
           if lane = 0 then
             for i = 0 to lv.l_count - 1 do
               let tile = lv.l_first + i in
               for pos = 0 to n_chain - 1 do
                 let r = (tile * nl) + pos in
                 let lo = rp.(r) and hi = rp.(r + 1) in
                 iters := !iters + (hi - lo);
                 body ~pos fl lo hi
               done
             done;
           pending := true
         end
         else begin
           if !pending then begin
             Pool.barrier pool ~lane;
             incr bars;
             pending := false
           end;
           let first = slice.s_first.(l) in
           let count = slice.s_count.(l) in
           for pos = 0 to n_chain - 1 do
             match lv.l_red.(pos) with
             | None ->
               for tile = first to first + count - 1 do
                 let r = (tile * nl) + pos in
                 let lo = rp.(r) and hi = rp.(r + 1) in
                 iters := !iters + (hi - lo);
                 body ~pos fl lo hi
               done;
               Pool.barrier pool ~lane;
               incr bars
             | Some red ->
               for tile = first to first + count - 1 do
                 let r = (tile * nl) + pos in
                 let lo = rp.(r) and hi = rp.(r + 1) in
                 iters := !iters + (hi - lo);
                 stash ~pos fl lo hi
               done;
               Pool.barrier pool ~lane;
               incr bars;
               let di0 = slice.s_red_lo.((l * n_chain) + pos) in
               let din = slice.s_red_n.((l * n_chain) + pos) in
               for di = di0 to di0 + din - 1 do
                 apply ~pos ~datum:red.r_data.(di) red.r_refs red.r_ptr.(di)
                   red.r_ptr.(di + 1)
               done;
               Pool.barrier pool ~lane;
               incr bars
           done
         end
       done;
       if prof && lane = 0 then
         Rtrt_obs.Hist.record h_step (Rtrt_obs.Clock.now_ns () - t0)
     done
   with exn ->
     let quota = batch_barriers t ~k in
     while !bars < quota do
       Pool.barrier pool ~lane;
       incr bars
     done;
     Rtrt_obs.Metrics.add t.c_lane_iters.(lane) !iters;
     raise exn);
  Rtrt_obs.Metrics.add t.c_lane_iters.(lane) !iters

let run ?(batch = 1) ?(tier = Parallel) ?profile t ~steps ~body ~stash ~apply =
  Rtrt_obs.Span.with_ ~name:"par.run_tiled"
    ~attrs:
      [
        ("domains", Rtrt_obs.Json.Int (Pool.size t.pool));
        ("levels", Rtrt_obs.Json.Int (Array.length t.levels));
        ("steps", Rtrt_obs.Json.Int steps);
        ("batch", Rtrt_obs.Json.Int batch);
        ("tier", Rtrt_obs.Json.String (tier_name tier));
      ]
  @@ fun () ->
  if steps > 0 then
    if tier = Serial || Pool.size t.pool = 1 || not t.any_par then
      run_serial t ~steps ~body
    else begin
      let batch = max 1 batch in
      let remaining = ref steps in
      while !remaining > 0 do
        let k = min batch !remaining in
        let prof =
          match profile with Some p -> p | None -> Rtrt_obs.enabled ()
        in
        Pool.parallel ~profile:prof t.pool (fun lane ->
            run_lane t lane ~k ~prof ~body ~stash ~apply);
        remaining := !remaining - k
      done
    end

(* ------------------------------------------------------------------ *)
(* Level-by-level driver                                               *)

(* Parallel driver for executors that are not Schedule-based
   (Gauss-Seidel tiles, wavefront iterations): run each level's items
   concurrently, weighted by [weight], with a barrier between
   levels. Items of one level must be pairwise independent — then any
   per-lane order is bit-exact, and we keep ascending order within
   each lane.

   Chunks are computed once, the whole [rounds] repetitions execute
   inside ONE pool dispatch (in-job barriers between levels), and
   singleton levels run on lane 0 with the same lazy pending-barrier
   rule as [run]. [~rounds] is the level-driver's step batching: a
   wavefront executor passes its sweep count and pays one dispatch
   total. *)
let run_levels ?(rounds = 1) ?profile ~pool ~levels ~weight exec =
  let lanes = Pool.size pool in
  let counters = lane_counters pool in
  let n_levels = Array.length levels in
  let l_par =
    Array.map (fun members -> lanes > 1 && Array.length members > 1) levels
  in
  let any_par = Array.exists Fun.id l_par in
  if rounds > 0 then begin
    if not any_par then begin
      let n = ref 0 in
      for _r = 1 to rounds do
        Array.iter
          (fun members ->
            n := !n + Array.length members;
            Array.iter exec members)
          levels
      done;
      Rtrt_obs.Metrics.add counters.(0) !n
    end
    else begin
      let chunks =
        Array.mapi
          (fun l members ->
            if not l_par.(l) then [||]
            else
              let weights = Array.map weight members in
              Chunk.weighted ~weights ~lanes)
          levels
      in
      (* Barriers per round: serial levels defer to the next parallel
         level, so the count depends on whether a round enters with a
         barrier pending (identical for every round after the first,
         since the pending-out state is a function of the last level
         only). *)
      let round_barriers ~pending_in =
        let count = ref 0 in
        let pending = ref pending_in in
        for l = 0 to n_levels - 1 do
          if not l_par.(l) then pending := true
          else begin
            if !pending then incr count;
            pending := false;
            incr count
          end
        done;
        (!count, !pending)
      in
      let first, pending_out = round_barriers ~pending_in:false in
      let steady, _ = round_barriers ~pending_in:pending_out in
      let quota = first + ((rounds - 1) * steady) in
      Pool.parallel ?profile pool (fun lane ->
          let iters = ref 0 in
          let bars = ref 0 in
          let pending = ref false in
          (try
             for _r = 1 to rounds do
               for l = 0 to n_levels - 1 do
                 let members = levels.(l) in
                 if not l_par.(l) then begin
                   if lane = 0 then begin
                     iters := !iters + Array.length members;
                     Array.iter exec members
                   end;
                   pending := true
                 end
                 else begin
                   if !pending then begin
                     Pool.barrier pool ~lane;
                     incr bars;
                     pending := false
                   end;
                   let s, len = chunks.(l).(lane) in
                   iters := !iters + len;
                   for i = s to s + len - 1 do
                     exec members.(i)
                   done;
                   Pool.barrier pool ~lane;
                   incr bars
                 end
               done
             done
           with exn ->
             while !bars < quota do
               Pool.barrier pool ~lane;
               incr bars
             done;
             Rtrt_obs.Metrics.add counters.(lane) !iters;
             raise exn);
          Rtrt_obs.Metrics.add counters.(lane) !iters)
    end
  end
