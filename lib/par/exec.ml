(* The parallel tiled-executor engine shared by moldyn/nbf/irreg.

   Given a tile schedule and the levelization of its tile dependence
   DAG (Tile_par), [make] renumbers the tiles level-major and builds a
   static execution plan; [run] then executes each level's tiles
   concurrently on a domain pool. The design goal is output that is
   BITWISE identical to the serial tiled executor on the (renumbered)
   schedule, not merely close:

   - Tiles are renumbered level-major (levels ascending, ascending tile
     id within a level), so the serial execution order of the
     renumbered schedule coincides with the parallel (level, tile)
     order. [schedule] exposes the renumbered schedule for the serial
     twin.

   - Within a level, chain positions execute phase-major: position 0
     of every tile (in parallel), barrier, position 1 of every tile,
     and so on. Dependences between adjacent chain positions always
     point to the same or an earlier tile (tiling legality), and both
     ends of a same-level cross-tile pair therefore commute — except
     for reductions.

   - Interaction-loop positions are reductions: same-level tiles may
     update the same datum (fx[left], fx[right]), and float addition
     does not reassociate. Those positions run in two phases:
     [stash] computes each iteration's contribution into per-iteration
     scratch (a pure function of data that is read-only during the
     position), then after a barrier [apply] folds the contributions
     into each datum in exactly the serial order — tiles ascending,
     iterations ascending, left before right — using a prebuilt
     per-datum reference list. Each datum is owned by exactly one
     lane, so the fold order per datum is the serial one and the
     result is bit-exact.

   References are packed as [(iter lsl 1) lor slot] with slot 0 =
   left endpoint, slot 1 = right endpoint. *)

type red = {
  r_data : int array;            (* touched data, discovery order *)
  r_ptr : int array;             (* CSR offsets into r_refs *)
  r_refs : int array;            (* (iter lsl 1) lor slot, serial order *)
  r_lane_data : (int * int) array; (* per-lane (start, len) into r_data *)
}

type level = {
  l_first : int;                 (* first renumbered tile id *)
  l_count : int;
  l_par : bool;                  (* run tiles concurrently *)
  l_lane_tiles : (int * int) array; (* per-lane (offset, len) in level *)
  l_red : red option array;      (* per chain position *)
}

type t = {
  pool : Pool.t;
  sched : Reorder.Schedule.t;    (* level-major renumbered *)
  n_chain : int;
  levels : level array;
  c_lane_iters : Rtrt_obs.Metrics.counter array;
}

let schedule t = t.sched
let n_levels t = Array.length t.levels

let lane_counters pool =
  Array.init (Pool.size pool) (fun l ->
      Rtrt_obs.Metrics.counter (Fmt.str "par.domain%d.iterations" l))

(* Whole-step latency (all levels, all phases of one time step). *)
let h_step = Rtrt_obs.Hist.hist "par.step"

(* Level-major tile order: levels ascending, tile ids ascending within
   a level (Tile_par builds levels ascending already, but recompute
   from [level_of] so any levelization source works). *)
let level_major_order level_of =
  let n_tiles = Array.length level_of in
  let n_levels = Array.fold_left (fun acc l -> max acc (l + 1)) 1 level_of in
  let counts = Array.make n_levels 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) level_of;
  let first = Array.make n_levels 0 in
  for l = 1 to n_levels - 1 do
    first.(l) <- first.(l - 1) + counts.(l - 1)
  done;
  let order = Array.make n_tiles 0 in
  let cursor = Array.copy first in
  for tile = 0 to n_tiles - 1 do
    let l = level_of.(tile) in
    order.(cursor.(l)) <- tile;
    cursor.(l) <- cursor.(l) + 1
  done;
  (order, first, counts)

(* A tile's iterations are one contiguous block of the flat schedule,
   so its weight is a row_ptr difference. *)
let tile_weight sched tile =
  let rp = Reorder.Schedule.row_ptr sched in
  let nl = Reorder.Schedule.n_loops sched in
  rp.((tile + 1) * nl) - rp.(tile * nl)

(* Per-datum reference lists for one (level, position): scan the
   level's interaction iterations in serial order twice — once to
   discover touched data and count references, once to fill them.
   [count] and [index_of] are caller-provided scratch of size n_data,
   zeroed/reset between builds so construction stays linear in the
   level size, not the data size. *)
let build_red sched ~l_first ~l_count ~pos ~left ~right ~lanes ~count ~index_of
    =
  let data_rev = ref [] in
  let n_data = ref 0 in
  let n_refs = ref 0 in
  let touch d =
    if count.(d) = 0 then begin
      index_of.(d) <- !n_data;
      data_rev := d :: !data_rev;
      incr n_data
    end;
    count.(d) <- count.(d) + 1;
    incr n_refs
  in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  let nl = Reorder.Schedule.n_loops sched in
  for i = 0 to l_count - 1 do
    let r = ((l_first + i) * nl) + pos in
    for k = rp.(r) to rp.(r + 1) - 1 do
      let j = fl.(k) in
      touch left.(j);
      touch right.(j)
    done
  done;
  let r_data = Array.make !n_data 0 in
  List.iteri
    (fun i d -> r_data.(!n_data - 1 - i) <- d)
    !data_rev;
  let r_ptr = Array.make (!n_data + 1) 0 in
  for i = 0 to !n_data - 1 do
    r_ptr.(i + 1) <- r_ptr.(i) + count.(r_data.(i))
  done;
  let cursor = Array.make !n_data 0 in
  let r_refs = Array.make !n_refs 0 in
  let emit d refv =
    let i = index_of.(d) in
    r_refs.(r_ptr.(i) + cursor.(i)) <- refv;
    cursor.(i) <- cursor.(i) + 1
  in
  for i = 0 to l_count - 1 do
    let r = ((l_first + i) * nl) + pos in
    for k = rp.(r) to rp.(r + 1) - 1 do
      let j = fl.(k) in
      emit left.(j) (j lsl 1);
      emit right.(j) ((j lsl 1) lor 1)
    done
  done;
  (* Reset scratch for the next build. *)
  Array.iter (fun d -> count.(d) <- 0) r_data;
  let weights = Array.init !n_data (fun i -> r_ptr.(i + 1) - r_ptr.(i)) in
  { r_data; r_ptr; r_refs; r_lane_data = Chunk.weighted ~weights ~lanes }

let make ~pool ~sched ~level_of ~is_reduction ~left ~right ~n_data =
  let n_tiles = Reorder.Schedule.n_tiles sched in
  if Array.length level_of <> n_tiles then
    invalid_arg "Exec.make: level_of size mismatch";
  let order, first, counts = level_major_order level_of in
  let sched = Reorder.Schedule.permute_tiles sched ~order in
  let n_chain = Reorder.Schedule.n_loops sched in
  let lanes = Pool.size pool in
  let count = Array.make n_data 0 in
  let index_of = Array.make n_data 0 in
  let levels =
    Array.init (Array.length first) (fun l ->
        let l_first = first.(l) and l_count = counts.(l) in
        let l_par = l_count > 1 && lanes > 1 in
        let l_lane_tiles =
          if not l_par then [||]
          else
            let weights =
              Array.init l_count (fun i -> tile_weight sched (l_first + i))
            in
            Chunk.weighted ~weights ~lanes
        in
        let l_red =
          Array.init n_chain (fun pos ->
              if l_par && is_reduction pos then
                Some
                  (build_red sched ~l_first ~l_count ~pos ~left ~right ~lanes
                     ~count ~index_of)
              else None)
        in
        { l_first; l_count; l_par; l_lane_tiles; l_red })
  in
  { pool; sched; n_chain; levels; c_lane_iters = lane_counters pool }

let run t ~steps ~body ~stash ~apply =
  Rtrt_obs.Span.with_ ~name:"par.run_tiled"
    ~attrs:
      [
        ("domains", Rtrt_obs.Json.Int (Pool.size t.pool));
        ("levels", Rtrt_obs.Json.Int (Array.length t.levels));
        ("steps", Rtrt_obs.Json.Int steps);
      ]
  @@ fun () ->
  let sched = t.sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  let nl = Reorder.Schedule.n_loops sched in
  let counters = t.c_lane_iters in
  for _s = 1 to steps do
    let prof = Rtrt_obs.enabled () in
    let t0 = if prof then Rtrt_obs.Clock.now_ns () else 0 in
    Array.iter
      (fun lv ->
        if not lv.l_par then
          (* Serial path, in exactly the serial executor's tile-major
             order (also taken by singleton levels, where no other
             tile can race). *)
          for i = 0 to lv.l_count - 1 do
            let tile = lv.l_first + i in
            for pos = 0 to t.n_chain - 1 do
              let r = (tile * nl) + pos in
              let lo = rp.(r) and hi = rp.(r + 1) in
              Rtrt_obs.Metrics.add counters.(0) (hi - lo);
              body ~pos fl lo hi
            done
          done
        else
          for pos = 0 to t.n_chain - 1 do
            match lv.l_red.(pos) with
            | None ->
              Pool.parallel t.pool (fun lane ->
                  let s, len = lv.l_lane_tiles.(lane) in
                  for i = s to s + len - 1 do
                    let r = ((lv.l_first + i) * nl) + pos in
                    let lo = rp.(r) and hi = rp.(r + 1) in
                    Rtrt_obs.Metrics.add counters.(lane) (hi - lo);
                    body ~pos fl lo hi
                  done)
            | Some red ->
              Pool.parallel t.pool (fun lane ->
                  let s, len = lv.l_lane_tiles.(lane) in
                  for i = s to s + len - 1 do
                    let r = ((lv.l_first + i) * nl) + pos in
                    let lo = rp.(r) and hi = rp.(r + 1) in
                    Rtrt_obs.Metrics.add counters.(lane) (hi - lo);
                    stash ~pos fl lo hi
                  done);
              Pool.parallel t.pool (fun lane ->
                  let s, len = red.r_lane_data.(lane) in
                  for di = s to s + len - 1 do
                    apply ~pos ~datum:red.r_data.(di) red.r_refs
                      red.r_ptr.(di)
                      red.r_ptr.(di + 1)
                  done)
          done)
      t.levels;
    if prof then Rtrt_obs.Hist.record h_step (Rtrt_obs.Clock.now_ns () - t0)
  done

(* Level-by-level parallel driver for executors that are not
   Schedule-based (Gauss-Seidel tiles, wavefront iterations): run each
   level's items concurrently, weighted by [weight], with a barrier
   between levels. Items of one level must be pairwise independent —
   then any per-lane order is bit-exact, and we keep ascending order
   within each lane. *)
let run_levels ~pool ~levels ~weight ~exec =
  let lanes = Pool.size pool in
  let counters = lane_counters pool in
  Array.iter
    (fun members ->
      let n = Array.length members in
      if lanes = 1 || n <= 1 then begin
        Rtrt_obs.Metrics.add counters.(0) n;
        Array.iter exec members
      end
      else begin
        let weights = Array.map weight members in
        let chunks = Chunk.weighted ~weights ~lanes in
        Pool.parallel pool (fun lane ->
            let s, len = chunks.(lane) in
            Rtrt_obs.Metrics.add counters.(lane) len;
            for i = s to s + len - 1 do
              exec members.(i)
            done)
      end)
    levels
