(* A reusable pool of OCaml 5 domains for SPMD execution.

   Workers are spawned once (domain spawn costs ~10us, far too much to
   pay per tile level) and woken for each [parallel] call through a
   mutex/condition pair. The mutex hand-off on both sides of a call
   establishes the happens-before edges that make plain float/int
   array writes from one lane visible to every other lane after the
   barrier — the executors rely on exactly this for their per-level
   phases.

   Lane 0 is the calling domain itself, so [create ~domains:n] spawns
   n-1 workers and a pool of 1 degenerates to plain serial calls.

   Per-lane accounting: when tracing is enabled at dispatch time, each
   round is split per lane into
     idle    = lane start - dispatch stamp   (wake/dispatch latency)
     work    = lane done  - lane start       (inside the job)
     barrier = round end  - lane done        (waiting for stragglers)
   where "round end" is the latest lane-done stamp. The three pieces
   sum exactly to (round end - dispatch) for every lane, so per-lane
   totals satisfy work + barrier + idle = accounted_ns — the invariant
   test_par checks. Stamps are written lock-free into per-lane slots
   and read by lane 0 after the barrier (mutex hand-off orders them);
   accumulators are only ever touched by their own lane or after the
   barrier, so no atomics are needed. Barrier waits also feed the
   pool.barrier_wait histogram; per-lane totals are published as
   pool.lane<i>.{work,barrier,idle}_ns gauges at shutdown. *)

type lane_stats = {
  work_ns : int;
  barrier_ns : int;
  idle_ns : int;
}

type t = {
  domains : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;           (* bumped once per parallel call *)
  mutable pending : int;         (* workers still inside the job *)
  mutable failure : exn option;  (* first exception of the round *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  (* accounting *)
  mutable profiled : bool;       (* current round is accounted *)
  mutable t_dispatch : int;      (* ns stamp of current dispatch *)
  lane_start : int array;        (* per-lane job-entry stamp, ns *)
  lane_done : int array;         (* per-lane job-exit stamp, ns *)
  acc_work : int array;          (* per-lane totals across rounds *)
  acc_barrier : int array;
  acc_idle : int array;
  mutable accounted_rounds : int;
  mutable accounted_ns : int;    (* sum of (round end - dispatch) *)
}

let h_barrier = Rtrt_obs.Hist.hist "pool.barrier_wait"
let size t = t.domains

let record_failure t exn =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.mutex

let rec worker_loop t lane seen_epoch =
  Mutex.lock t.mutex;
  while (not t.stop) && t.epoch = seen_epoch do
    Condition.wait t.cond t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.job in
    let profiled = t.profiled in
    Mutex.unlock t.mutex;
    if profiled then t.lane_start.(lane) <- Rtrt_obs.Clock.now_ns ();
    (try job lane with exn -> record_failure t exn);
    if profiled then t.lane_done.(lane) <- Rtrt_obs.Clock.now_ns ();
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    worker_loop t lane epoch
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      failure = None;
      stop = false;
      workers = [||];
      profiled = false;
      t_dispatch = 0;
      lane_start = Array.make domains 0;
      lane_done = Array.make domains 0;
      acc_work = Array.make domains 0;
      acc_barrier = Array.make domains 0;
      acc_idle = Array.make domains 0;
      accounted_rounds = 0;
      accounted_ns = 0;
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

(* Lane 0 only, after the barrier: every lane_done stamp is visible
   (mutex hand-off) and no lane is running. *)
let settle_round t =
  let t_end = ref t.lane_done.(0) in
  for l = 1 to t.domains - 1 do
    if t.lane_done.(l) > !t_end then t_end := t.lane_done.(l)
  done;
  for l = 0 to t.domains - 1 do
    let wait = !t_end - t.lane_done.(l) in
    t.acc_idle.(l) <- t.acc_idle.(l) + (t.lane_start.(l) - t.t_dispatch);
    t.acc_work.(l) <- t.acc_work.(l) + (t.lane_done.(l) - t.lane_start.(l));
    t.acc_barrier.(l) <- t.acc_barrier.(l) + wait;
    Rtrt_obs.Hist.record h_barrier wait
  done;
  t.accounted_rounds <- t.accounted_rounds + 1;
  t.accounted_ns <- t.accounted_ns + (!t_end - t.t_dispatch)

let parallel t f =
  if t.domains = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.parallel: pool is shut down"
    end;
    let profiled = Rtrt_obs.enabled () in
    t.profiled <- profiled;
    if profiled then t.t_dispatch <- Rtrt_obs.Clock.now_ns ();
    t.job <- Some f;
    t.failure <- None;
    t.pending <- t.domains - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* Lane 0 works too; its exception must still wait for the
       barrier so no worker is left running inside freed state. *)
    if profiled then t.lane_start.(0) <- Rtrt_obs.Clock.now_ns ();
    (try f 0 with exn -> record_failure t exn);
    if profiled then t.lane_done.(0) <- Rtrt_obs.Clock.now_ns ();
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.cond t.mutex
    done;
    let failure = t.failure in
    t.job <- None;
    t.failure <- None;
    Mutex.unlock t.mutex;
    if profiled then settle_round t;
    match failure with None -> () | Some exn -> raise exn
  end

let lane_stats t =
  Array.init t.domains (fun l ->
      {
        work_ns = t.acc_work.(l);
        barrier_ns = t.acc_barrier.(l);
        idle_ns = t.acc_idle.(l);
      })

let accounted_rounds t = t.accounted_rounds
let accounted_ns t = t.accounted_ns

(* Publish per-lane totals as gauges. Gauges are last-write-wins, so
   with several pools in one trace the most recently shut-down pool's
   breakdown is reported. *)
let publish_stats t =
  if t.accounted_rounds > 0 then
    for l = 0 to t.domains - 1 do
      let set suffix v =
        Rtrt_obs.Metrics.set
          (Rtrt_obs.Metrics.gauge (Fmt.str "pool.lane%d.%s" l suffix))
          (float_of_int v)
      in
      set "work_ns" t.acc_work.(l);
      set "barrier_ns" t.acc_barrier.(l);
      set "idle_ns" t.acc_idle.(l)
    done

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  publish_stats t

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let domains_from_env ?(default = 1) () =
  Rtrt_obs.Config.env_int ~min:1 ~name:"RTRT_DOMAINS" ~default ()
