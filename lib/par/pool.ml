(* A reusable pool of OCaml 5 domains for SPMD execution.

   Workers are spawned once (domain spawn costs ~10us, far too much to
   pay per tile level) and then *live inside a sense-reversing
   centralized barrier*: between rounds every worker is parked at the
   start barrier, so dispatching a job is nothing more than lane 0
   publishing the job fields (plain writes) and arriving at that same
   barrier. One mechanism covers wake-up, in-job phase barriers and
   the end-of-round join.

   Barrier protocol: a shared [arrived] counter, a shared [sense] flag
   and a per-lane local sense. Each arrival flips its local sense; the
   last arriver resets [arrived] *before* flipping [sense], so the
   barrier is immediately reusable. Waiters spin a bounded number of
   [Domain.cpu_relax] iterations, then fall back to a futex-style
   sleep: increment [sleepers], recheck the predicate under the mutex,
   and wait on the condition. The releasing lane sets [sense] first
   and only then reads [sleepers]; since [sleepers] is always >= the
   number of registered sleepers, a releaser that reads 0 is
   sequentially before any sleeper's registration, whose later
   predicate read must then observe the new sense — no lost wake-ups.
   Atomic RMWs on [arrived] give the cross-lane happens-before that
   makes plain float/int array writes from one lane visible to every
   other lane after any barrier — the executors rely on exactly this
   for their per-level phases. The spin budget is forced to 0 when the
   pool is wider than the machine (oversubscribed lanes must yield,
   not burn the core); RTRT_POOL_SPIN overrides it.

   Lane 0 is the calling domain itself, so [create ~domains:n] spawns
   n-1 workers and a pool of 1 degenerates to plain serial calls.

   Per-lane accounting: when the round is profiled (tracing enabled at
   dispatch time, or [~profile:true]), each round splits per lane into
     idle    = lane start - dispatch stamp     (wake/dispatch latency)
     work    = lane done - lane start - in-job barrier ns
     barrier = in-job barrier ns + (round end - lane done)
   where "round end" is the latest lane-done stamp and in-job barrier
   ns is accumulated by [barrier] itself. The three pieces sum exactly
   to (round end - dispatch) for every lane, so per-lane totals
   satisfy work + barrier + idle = accounted_ns — the invariant
   test_par checks. Stamps are written lock-free into padded per-lane
   slots and read by lane 0 after the end barrier. Per-round barrier
   waits feed the pool.barrier_wait histogram; the dispatch latency
   (dispatch stamp to the *last* lane entering work) feeds
   pool.dispatch_wait; per-lane totals are published as
   pool.lane<i>.{work,barrier,idle}_ns gauges at shutdown. *)

type lane_stats = {
  work_ns : int;
  barrier_ns : int;
  idle_ns : int;
}

(* Slot stride for per-lane int arrays: 8 words = 64 bytes keeps each
   lane's hot slot on its own cache line. *)
let pad = 8

type t = {
  domains : int;
  (* sense-reversing barrier *)
  arrived : int Atomic.t;
  sense : int Atomic.t;
  sleepers : int Atomic.t;       (* conservative >= registered sleepers *)
  lane_sense : int array;        (* per-lane local sense, stride [pad] *)
  spin : int;                    (* cpu_relax budget before sleeping *)
  mutex : Mutex.t;               (* blocking fallback + failure record *)
  cond : Condition.t;
  (* round state: written by lane 0 before the release barrier, read
     by workers after it (barrier orders the plain accesses) *)
  mutable job : (int -> unit) option;
  mutable profiled : bool;       (* current round is accounted *)
  mutable failure : exn option;  (* first exception of the round *)
  mutable stop : bool;
  mutable shut : bool;
  mutable workers : unit Domain.t array;
  (* accounting *)
  mutable t_dispatch : int;      (* ns stamp of current dispatch *)
  lane_start : int array;        (* per-lane job-entry stamp, stride pad *)
  lane_done : int array;         (* per-lane job-exit stamp, stride pad *)
  lane_bar : int array;          (* per-lane in-job barrier ns, stride pad *)
  acc_work : int array;          (* per-lane totals across rounds *)
  acc_barrier : int array;
  acc_idle : int array;
  mutable acc_dispatch_wait : int;
  mutable accounted_rounds : int;
  mutable accounted_ns : int;    (* sum of (round end - dispatch) *)
  (* one-shot synchronization-cost calibration, < 0 = not yet run *)
  mutable barrier_cost : float;
  mutable dispatch_cost : float;
}

let h_barrier = Rtrt_obs.Hist.hist "pool.barrier_wait"
let h_dispatch = Rtrt_obs.Hist.hist "pool.dispatch_wait"
let size t = t.domains

let record_failure t exn =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* The barrier                                                         *)

let wait_sense t target =
  let spins = ref t.spin in
  while Atomic.get t.sense <> target && !spins > 0 do
    Domain.cpu_relax ();
    decr spins
  done;
  if Atomic.get t.sense <> target then begin
    Atomic.incr t.sleepers;
    Mutex.lock t.mutex;
    while Atomic.get t.sense <> target do
      Condition.wait t.cond t.mutex
    done;
    Mutex.unlock t.mutex;
    Atomic.decr t.sleepers
  end

(* Release order matters: set [sense] first, then look for sleepers
   (see the module comment's no-lost-wake-up argument). *)
let barrier_raw t lane =
  let target = 1 - t.lane_sense.(lane * pad) in
  t.lane_sense.(lane * pad) <- target;
  if Atomic.fetch_and_add t.arrived 1 = t.domains - 1 then begin
    Atomic.set t.arrived 0;
    Atomic.set t.sense target;
    if Atomic.get t.sleepers > 0 then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
  end
  else wait_sense t target

(* In-job barrier: contributes to the lane's barrier accounting when
   the round is profiled. *)
let barrier t ~lane =
  if t.domains > 1 then
    if t.profiled then begin
      let t0 = Rtrt_obs.Clock.now_ns () in
      barrier_raw t lane;
      t.lane_bar.(lane * pad) <-
        t.lane_bar.(lane * pad) + (Rtrt_obs.Clock.now_ns () - t0)
    end
    else barrier_raw t lane

(* ------------------------------------------------------------------ *)
(* Worker loop: park in the start barrier, run the job, join at the
   end barrier, repeat.                                                *)

let rec worker_loop t lane =
  barrier_raw t lane;
  (* start of round (or shutdown) *)
  if not t.stop then begin
    let job = match t.job with Some j -> j | None -> assert false in
    let profiled = t.profiled in
    if profiled then t.lane_start.(lane * pad) <- Rtrt_obs.Clock.now_ns ();
    (try job lane with exn -> record_failure t exn);
    if profiled then t.lane_done.(lane * pad) <- Rtrt_obs.Clock.now_ns ();
    barrier_raw t lane;
    (* end of round *)
    worker_loop t lane
  end

let spin_budget ~domains =
  let default =
    (* An oversubscribed pool (more lanes than cores) must never spin:
       the waited-for lane needs this core to make progress. *)
    if domains > Domain.recommended_domain_count () then 0 else 4096
  in
  Rtrt_obs.Config.env_int ~min:0 ~name:"RTRT_POOL_SPIN" ~default ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      arrived = Atomic.make 0;
      sense = Atomic.make 0;
      sleepers = Atomic.make 0;
      lane_sense = Array.make (domains * pad) 0;
      spin = spin_budget ~domains;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      profiled = false;
      failure = None;
      stop = false;
      shut = false;
      workers = [||];
      t_dispatch = 0;
      lane_start = Array.make (domains * pad) 0;
      lane_done = Array.make (domains * pad) 0;
      lane_bar = Array.make (domains * pad) 0;
      acc_work = Array.make domains 0;
      acc_barrier = Array.make domains 0;
      acc_idle = Array.make domains 0;
      acc_dispatch_wait = 0;
      accounted_rounds = 0;
      accounted_ns = 0;
      barrier_cost = -1.0;
      dispatch_cost = -1.0;
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

(* Lane 0 only, after the end barrier: every stamp is visible (the
   barrier's RMW chain orders them) and no lane is running. *)
let settle_round t =
  let t_end = ref t.lane_done.(0) in
  for l = 1 to t.domains - 1 do
    if t.lane_done.(l * pad) > !t_end then t_end := t.lane_done.(l * pad)
  done;
  let t_entry = ref t.lane_start.(0) in
  for l = 1 to t.domains - 1 do
    if t.lane_start.(l * pad) > !t_entry then t_entry := t.lane_start.(l * pad)
  done;
  let dispatch_wait = !t_entry - t.t_dispatch in
  t.acc_dispatch_wait <- t.acc_dispatch_wait + dispatch_wait;
  Rtrt_obs.Hist.record h_dispatch dispatch_wait;
  for l = 0 to t.domains - 1 do
    let bar_in = t.lane_bar.(l * pad) in
    t.lane_bar.(l * pad) <- 0;
    let wait = bar_in + (!t_end - t.lane_done.(l * pad)) in
    t.acc_idle.(l) <- t.acc_idle.(l) + (t.lane_start.(l * pad) - t.t_dispatch);
    t.acc_work.(l) <-
      t.acc_work.(l)
      + (t.lane_done.(l * pad) - t.lane_start.(l * pad) - bar_in);
    t.acc_barrier.(l) <- t.acc_barrier.(l) + wait;
    Rtrt_obs.Hist.record h_barrier wait
  done;
  t.accounted_rounds <- t.accounted_rounds + 1;
  t.accounted_ns <- t.accounted_ns + (!t_end - t.t_dispatch)

let parallel ?profile t f =
  if t.domains = 1 then f 0
  else begin
    if t.shut then invalid_arg "Pool.parallel: pool is shut down";
    let profiled =
      match profile with Some p -> p | None -> Rtrt_obs.enabled ()
    in
    t.profiled <- profiled;
    t.job <- Some f;
    t.failure <- None;
    if profiled then t.t_dispatch <- Rtrt_obs.Clock.now_ns ();
    barrier_raw t 0;
    (* workers released *)
    if profiled then t.lane_start.(0) <- Rtrt_obs.Clock.now_ns ();
    (* Lane 0 works too; its exception must still wait for the end
       barrier so no worker is left running inside freed state. *)
    (try f 0 with exn -> record_failure t exn);
    if profiled then t.lane_done.(0) <- Rtrt_obs.Clock.now_ns ();
    barrier_raw t 0;
    (* end of round: all stamps and the failure slot are visible *)
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    if profiled then settle_round t;
    match failure with None -> () | Some exn -> raise exn
  end

(* ------------------------------------------------------------------ *)
(* Synchronization-cost calibration                                    *)

(* Measured once per pool, on demand: the steady-state cost of one
   in-job barrier and of one empty dispatch round. Runs unprofiled so
   calibration never pollutes the accounted totals. Exported as
   pool.barrier_cost_ns / pool.dispatch_cost_ns gauges and consumed by
   the executor's auto-fallback tier decision.

   The barrier is measured LOADED: every lane runs a fixed work loop
   between barriers, and the same work without barriers is timed in a
   second dispatch, so the reported cost is the overhead a barrier
   adds to a step that actually computes something. Back-to-back
   empty barriers measure a contention storm (every lane arriving in
   the same instant, nothing but synchronization competing for the
   cores) that real executor steps never exhibit — on a throttled or
   oversubscribed host that storm reads tens of microseconds per
   barrier while loaded steps observe well under one, which made the
   tier decision reject parallelism that measurably paid. *)
let calibrate t =
  if t.domains = 1 then begin
    t.barrier_cost <- 0.0;
    t.dispatch_cost <- 0.0
  end
  else begin
    let rounds = 256 in
    let work_iters = 4096 in
    let work () =
      let acc = ref 0.0 in
      for i = 1 to work_iters do
        acc := !acc +. float_of_int i
      done;
      ignore (Sys.opaque_identity !acc)
    in
    parallel ~profile:false t (fun lane ->
        for _ = 1 to 32 do
          work ();
          barrier_raw t lane
        done);
    let (), loaded_ns =
      Rtrt_obs.Clock.time_ns (fun () ->
          parallel ~profile:false t (fun lane ->
              for _ = 1 to rounds do
                work ();
                barrier_raw t lane
              done))
    in
    let (), work_ns =
      Rtrt_obs.Clock.time_ns (fun () ->
          parallel ~profile:false t (fun _ ->
              for _ = 1 to rounds do
                work ()
              done))
    in
    t.barrier_cost <-
      Float.max 0.0 (float_of_int (loaded_ns - work_ns) /. float_of_int rounds);
    let dispatches = 64 in
    for _ = 1 to 8 do parallel ~profile:false t (fun _ -> ()) done;
    let (), disp_ns =
      Rtrt_obs.Clock.time_ns (fun () ->
          for _ = 1 to dispatches do
            parallel ~profile:false t (fun _ -> ())
          done)
    in
    t.dispatch_cost <- float_of_int disp_ns /. float_of_int dispatches
  end;
  Rtrt_obs.Metrics.set
    (Rtrt_obs.Metrics.gauge "pool.barrier_cost_ns")
    t.barrier_cost;
  Rtrt_obs.Metrics.set
    (Rtrt_obs.Metrics.gauge "pool.dispatch_cost_ns")
    t.dispatch_cost

let barrier_cost_ns t =
  if t.barrier_cost < 0.0 then calibrate t;
  t.barrier_cost

let dispatch_cost_ns t =
  if t.dispatch_cost < 0.0 then calibrate t;
  t.dispatch_cost

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let lane_stats t =
  Array.init t.domains (fun l ->
      {
        work_ns = t.acc_work.(l);
        barrier_ns = t.acc_barrier.(l);
        idle_ns = t.acc_idle.(l);
      })

let accounted_rounds t = t.accounted_rounds
let accounted_ns t = t.accounted_ns
let dispatch_wait_ns t = t.acc_dispatch_wait

(* Publish per-lane totals as gauges. Gauges are last-write-wins, so
   with several pools in one trace the most recently shut-down pool's
   breakdown is reported. *)
let publish_stats t =
  if t.accounted_rounds > 0 then
    for l = 0 to t.domains - 1 do
      let set suffix v =
        Rtrt_obs.Metrics.set
          (Rtrt_obs.Metrics.gauge (Fmt.str "pool.lane%d.%s" l suffix))
          (float_of_int v)
      in
      set "work_ns" t.acc_work.(l);
      set "barrier_ns" t.acc_barrier.(l);
      set "idle_ns" t.acc_idle.(l)
    done

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    if t.domains > 1 then begin
      t.stop <- true;
      (* Arriving at the start barrier releases the parked workers;
         they observe [stop] and return. *)
      barrier_raw t 0;
      Array.iter Domain.join t.workers;
      t.workers <- [||]
    end;
    publish_stats t
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let domains_from_env ?(default = 1) () =
  Rtrt_obs.Config.env_int ~min:1 ~name:"RTRT_DOMAINS" ~default ()
