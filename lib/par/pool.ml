(* A reusable pool of OCaml 5 domains for SPMD execution.

   Workers are spawned once (domain spawn costs ~10us, far too much to
   pay per tile level) and woken for each [parallel] call through a
   mutex/condition pair. The mutex hand-off on both sides of a call
   establishes the happens-before edges that make plain float/int
   array writes from one lane visible to every other lane after the
   barrier — the executors rely on exactly this for their per-level
   phases.

   Lane 0 is the calling domain itself, so [create ~domains:n] spawns
   n-1 workers and a pool of 1 degenerates to plain serial calls. *)

type t = {
  domains : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;           (* bumped once per parallel call *)
  mutable pending : int;         (* workers still inside the job *)
  mutable failure : exn option;  (* first exception of the round *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let size t = t.domains

let record_failure t exn =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.mutex

let rec worker_loop t lane seen_epoch =
  Mutex.lock t.mutex;
  while (not t.stop) && t.epoch = seen_epoch do
    Condition.wait t.cond t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.job in
    Mutex.unlock t.mutex;
    (try job lane with exn -> record_failure t exn);
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    worker_loop t lane epoch
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      failure = None;
      stop = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let parallel t f =
  if t.domains = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.parallel: pool is shut down"
    end;
    t.job <- Some f;
    t.failure <- None;
    t.pending <- t.domains - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* Lane 0 works too; its exception must still wait for the
       barrier so no worker is left running inside freed state. *)
    (try f 0 with exn -> record_failure t exn);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.cond t.mutex
    done;
    let failure = t.failure in
    t.job <- None;
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with None -> () | Some exn -> raise exn
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let domains_from_env ?(default = 1) () =
  Rtrt_obs.Config.env_int ~min:1 ~name:"RTRT_DOMAINS" ~default ()
