(* Static chunking of an index range across pool lanes. Contiguous
   chunks keep each lane's accesses streaming, and the weighted split
   balances uneven tile costs without any run-time work queue. *)

(* [even ~n ~lanes] splits [0, n) into [lanes] contiguous (start, len)
   ranges differing by at most one element. *)
let even ~n ~lanes =
  if lanes < 1 then invalid_arg "Chunk.even: lanes";
  let base = n / lanes and rem = n mod lanes in
  let start = ref 0 in
  Array.init lanes (fun l ->
      let len = base + if l < rem then 1 else 0 in
      let s = !start in
      start := s + len;
      (s, len))

(* [weighted ~weights ~lanes] splits [0, length weights) into [lanes]
   contiguous ranges whose weight sums are approximately balanced: a
   greedy sweep closes a chunk once it reaches the ideal share. The
   split depends only on [weights] and [lanes], never on timing, so
   parallel runs are deterministic for a given lane count. *)
let weighted ~weights ~lanes =
  if lanes < 1 then invalid_arg "Chunk.weighted: lanes";
  let n = Array.length weights in
  let total = Array.fold_left ( + ) 0 weights in
  (* All-zero (or empty) weights carry no balance information: split
     the index range evenly instead of letting the greedy sweep give
     every lane a single item and the tail to the last lane. *)
  if total = 0 then even ~n ~lanes
  else begin
    let chunks = Array.make lanes (0, 0) in
    let start = ref 0 in
    let consumed = ref 0 in
    for l = 0 to lanes - 1 do
      let remaining_lanes = lanes - l in
      let target = (total - !consumed + remaining_lanes - 1) / remaining_lanes in
      let stop = ref !start in
      let acc = ref 0 in
      (* Cap so each remaining lane can still get one item — but a lane
         with items available always takes at least one, so when
         n < lanes the first n lanes get one item each and the rest
         (including the last) are empty, never the reverse. *)
      let cap = max (!start + 1) (n - (remaining_lanes - 1)) in
      while
        !stop < cap && !stop < n && (!acc < target || !stop = !start)
      do
        acc := !acc + weights.(!stop);
        incr stop
      done;
      let stop = if l = lanes - 1 then n else !stop in
      chunks.(l) <- (!start, stop - !start);
      consumed := !consumed + !acc;
      start := stop
    done;
    chunks
  end
