(** Parallel inspector hot paths. Each function computes a result that
    is independent of the pool's domain count: everything except
    [gpart_cpack] is bit-identical to its serial counterpart in
    {!Reorder} / {!Irgraph}, and [gpart_cpack] is a deterministic
    Gpart/CPACK fusion.

    Several functions accept a fused-composition
    [view = (sigma, delta_inv)] of the base access: current iteration
    [cur] touches [sigma.(d)] for each datum [d] of base row
    [delta_inv.(cur)] — the composed access is traversed without ever
    being materialized. *)

(** Identical to [Reorder.Lexgroup.run] (with [view]: [run_view]):
    parallel stable counting sort (per-lane bucket counting, serial
    offset merge, parallel scatter). *)
val lexgroup :
  pool:Pool.t ->
  ?view:int array * int array ->
  Reorder.Access.t ->
  Reorder.Perm.t

(** Identical to [Reorder.Cpack.run] / [run_in_order] / [run_view]:
    parallel first-touch ranking over the visit stream (per-lane scan,
    min-merge, ordered compaction), untouched data appended in
    ascending order. [order] optionally fixes the visit order over
    (current) iterations. *)
val cpack :
  pool:Pool.t ->
  ?order:int array ->
  ?view:int array * int array ->
  Reorder.Access.t ->
  Reorder.Perm.t

(** Identical to [Reorder.Gpart_reorder.run]: serial BFS partitioning,
    parallel per-part member layout. [graph] supplies a precomputed
    affinity graph (e.g. from {!to_graph}). *)
val gpart :
  pool:Pool.t ->
  ?graph:Irgraph.Csr.t ->
  Reorder.Access.t ->
  part_size:int ->
  Reorder.Perm.t

(** Gpart partitioning with CPACK ordering applied independently
    inside every partition (processed concurrently): members are laid
    out by global first-touch rank within their part, untouched
    members last in ascending order. *)
val gpart_cpack :
  pool:Pool.t ->
  ?graph:Irgraph.Csr.t ->
  Reorder.Access.t ->
  part_size:int ->
  Reorder.Perm.t

(** Identical to [Reorder.Multilevel_reorder.run]: multilevel
    partitioning with the coarsening hot paths chunked across pool
    lanes. *)
val multilevel :
  pool:Pool.t ->
  ?graph:Irgraph.Csr.t ->
  Reorder.Access.t ->
  part_size:int ->
  Reorder.Perm.t

(** Identical to
    [Access.reorder_iters delta (Access.map_data sigma base)] where
    [delta_inv] is [delta]'s inverse array: materializes the fused
    view with one parallel blit-and-map pass. *)
val materialize :
  pool:Pool.t ->
  Reorder.Access.t ->
  sigma:int array ->
  delta_inv:int array ->
  Reorder.Access.t

(** Identical to [Reorder.Access.to_graph] (on the materialized view
    when [view] is given): parallel degree counting and arc scatter
    yielding the exact serial CSR, adjacency in iteration order. *)
val to_graph :
  pool:Pool.t ->
  ?view:int array * int array ->
  Reorder.Access.t ->
  Irgraph.Csr.t

(** Identical to [Reorder.Sparse_tile.grow_backward_scatter] (and
    hence to [grow_backward] over the transposed connectivity):
    per-lane scatter-min over the predecessor set, min-merged across
    lanes. Partially applied, this is a substituted grower for
    [Sparse_tile.full]. *)
val grow_backward :
  pool:Pool.t ->
  conn:Reorder.Access.t ->
  next:Reorder.Sparse_tile.tile_fn ->
  Reorder.Sparse_tile.tile_fn

(** Identical to [Reorder.Sparse_tile.grow_forward]: chunked parallel
    gather-max. *)
val grow_forward :
  pool:Pool.t ->
  conn:Reorder.Access.t ->
  prev:Reorder.Sparse_tile.tile_fn ->
  Reorder.Sparse_tile.tile_fn

(** Identical to [Reorder.Sparse_tile.check_legality], violations in
    the same (traversal) order. *)
val check_legality :
  pool:Pool.t ->
  chain:Reorder.Sparse_tile.chain ->
  tiles:Reorder.Sparse_tile.tile_fn array ->
  (int * int * int) list
