(** Parallel inspector hot paths. Each function computes a result that
    is independent of the pool's domain count: [lexgroup] and [gpart]
    are bit-identical to their serial counterparts, [gpart_cpack] is a
    deterministic Gpart/CPACK fusion. *)

(** Identical to [Reorder.Lexgroup.run]: parallel stable counting sort
    (per-lane bucket counting, serial offset merge, parallel
    scatter). *)
val lexgroup : pool:Pool.t -> Reorder.Access.t -> Reorder.Perm.t

(** Identical to [Reorder.Gpart_reorder.run]: serial BFS partitioning,
    parallel per-part member layout. *)
val gpart :
  pool:Pool.t -> Reorder.Access.t -> part_size:int -> Reorder.Perm.t

(** Gpart partitioning with CPACK ordering applied independently
    inside every partition (processed concurrently): members are laid
    out by global first-touch rank within their part, untouched
    members last in ascending order. *)
val gpart_cpack :
  pool:Pool.t -> Reorder.Access.t -> part_size:int -> Reorder.Perm.t
