(** The parallel tiled-executor engine: level-major tile renumbering,
    per-lane slices pinned at plan time, phase-major execution with
    in-job barriers per (level, chain position), step batching, an
    auto-fallback serial tier, and stash/apply reduction combining
    that reproduces the serial executor's float operations bit for
    bit. *)

type t

(** Which execution strategy {!run} uses. [Serial] runs the plain
    tile-major loop on the calling domain — bitwise identical by
    construction — and is what {!decide} selects when the modeled
    parallel step cannot beat the serial one. *)
type tier = Parallel | Serial

val tier_name : tier -> string

(** The auto-fallback decision and the model behind it, for reporting.
    With [d_par_frac] the fraction of a step's iterations living in
    parallel levels and [d_lanes] the pool width,
    [d_modeled_par_ns_per_step] =
    serial x (1 - [d_par_frac])
    + serial x [d_par_frac] / [d_lanes]
    + barriers-per-step x {!Pool.barrier_cost_ns}
    + {!Pool.dispatch_cost_ns} / batch.
    [d_tier] is [Parallel] exactly when
    [d_modeled_par_ns_per_step <= d_serial_ns_per_step] (and the pool
    has more than one lane with at least one parallel level). *)
type decision = {
  d_tier : tier;
  d_serial_ns_per_step : float;
  d_modeled_par_ns_per_step : float;
  d_barriers_per_step : int;
  d_barrier_cost_ns : float;
  d_dispatch_cost_ns : float;
  d_par_frac : float;
  d_lanes : int;
}

(** [make ~pool ~sched ~level_of ~is_reduction ~left ~right ~n_data]
    renumbers [sched] level-major (per [level_of], the tile dependence
    DAG levelization) and precomputes per-lane slices — each lane's
    chunk of every level's tiles and of every reduction position's
    data, chunked once per plan, not per step — plus, for every chain
    position where [is_reduction pos] holds, the per-datum combine
    lists derived from the [left]/[right] endpoint arrays ([n_data]
    data locations). *)
val make :
  pool:Pool.t ->
  sched:Reorder.Schedule.t ->
  level_of:int array ->
  is_reduction:(int -> bool) ->
  left:int array ->
  right:int array ->
  n_data:int ->
  t

(** The level-major renumbered schedule; the serial twin to compare a
    parallel run against (also a legal schedule). *)
val schedule : t -> Reorder.Schedule.t

val n_levels : t -> int

(** [decide t ~serial_ns_per_step ~batch] evaluates the auto-fallback
    model against a measured serial step time and picks the tier.
    Triggers the pool's one-shot barrier/dispatch calibration on first
    use. *)
val decide : t -> serial_ns_per_step:float -> batch:int -> decision

(** [run t ~steps ~body ~stash ~apply] executes the plan. [body ~pos
    items lo hi] is the serial loop body for chain position [pos]
    (used for serial levels and non-reduction positions); it runs the
    iterations [items.(lo) .. items.(hi - 1)] — a row of the flat
    schedule, handed over without copying. For reduction positions of
    parallel levels, [stash ~pos items lo hi] computes each
    iteration's contribution into per-iteration scratch, and
    [apply ~pos ~datum refs lo hi] folds [refs.(lo..hi-1)] — packed as
    [(iter lsl 1) lor slot], slot 0 = left (+), 1 = right (-) — into
    [datum] in serial order.

    [batch] (default 1) executes up to that many whole time steps per
    pool dispatch; lanes synchronize through in-job barriers, so one
    wake-up amortizes over the batch. Results are bitwise independent
    of [batch]. [tier] (default [Parallel]) selects the strategy —
    pass [(decide t ...).d_tier] for the auto-fallback. [profile]
    forces per-lane pool accounting on or off for the dispatches
    (default: whether tracing is enabled). *)
val run :
  ?batch:int ->
  ?tier:tier ->
  ?profile:bool ->
  t ->
  steps:int ->
  body:(pos:int -> int array -> int -> int -> unit) ->
  stash:(pos:int -> int array -> int -> int -> unit) ->
  apply:(pos:int -> datum:int -> int array -> int -> int -> unit) ->
  unit

(** [run_levels ~pool ~levels ~weight exec] runs each level's items
    concurrently (weighted static chunks computed once, in-job
    barriers between levels, the whole call one pool dispatch). Items
    within one level must be pairwise independent. [rounds] (default
    1) repeats the whole level program that many times inside the same
    dispatch — the level-driver's step batching; a wavefront executor
    passes its sweep count. [profile] as in {!run}. *)
val run_levels :
  ?rounds:int ->
  ?profile:bool ->
  pool:Pool.t ->
  levels:int array array ->
  weight:(int -> int) ->
  (int -> unit) ->
  unit
