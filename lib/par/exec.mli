(** The parallel tiled-executor engine: level-major tile renumbering,
    phase-major execution with barriers per (level, chain position),
    and stash/apply reduction combining that reproduces the serial
    executor's float operations bit for bit. *)

type t

(** [make ~pool ~sched ~level_of ~is_reduction ~left ~right ~n_data]
    renumbers [sched] level-major (per [level_of], the tile dependence
    DAG levelization) and precomputes per-level lane assignments plus,
    for every chain position where [is_reduction pos] holds, the
    per-datum combine lists derived from the [left]/[right] endpoint
    arrays ([n_data] data locations). *)
val make :
  pool:Pool.t ->
  sched:Reorder.Schedule.t ->
  level_of:int array ->
  is_reduction:(int -> bool) ->
  left:int array ->
  right:int array ->
  n_data:int ->
  t

(** The level-major renumbered schedule; the serial twin to compare a
    parallel run against (also a legal schedule). *)
val schedule : t -> Reorder.Schedule.t

val n_levels : t -> int

(** [run t ~steps ~body ~stash ~apply] executes the plan. [body ~pos
    items lo hi] is the serial loop body for chain position [pos]
    (used for serial levels and non-reduction positions); it runs the
    iterations [items.(lo) .. items.(hi - 1)] — a row of the flat
    schedule, handed over without copying. For reduction positions of
    parallel levels, [stash ~pos items lo hi] computes each
    iteration's contribution into per-iteration scratch, and
    [apply ~pos ~datum refs lo hi] folds [refs.(lo..hi-1)] — packed as
    [(iter lsl 1) lor slot], slot 0 = left (+), 1 = right (-) — into
    [datum] in serial order. *)
val run :
  t ->
  steps:int ->
  body:(pos:int -> int array -> int -> int -> unit) ->
  stash:(pos:int -> int array -> int -> int -> unit) ->
  apply:(pos:int -> datum:int -> int array -> int -> int -> unit) ->
  unit

(** [run_levels ~pool ~levels ~weight ~exec] runs each level's items
    concurrently (weighted static chunks, barrier between levels).
    Items within one level must be pairwise independent. *)
val run_levels :
  pool:Pool.t ->
  levels:int array array ->
  weight:(int -> int) ->
  exec:(int -> unit) ->
  unit
