(* Parallel inspector hot paths. Where the serial inspector is kept as
   the specification, the parallel version computes the IDENTICAL
   result for every domain count — parallelism changes the wall clock,
   never the reordering function. *)

open Reorder

(* Lexicographical grouping as a parallel stable counting sort: each
   lane histograms its contiguous iteration chunk, a serial
   (datum-major, lane-minor) exclusive prefix turns the histograms
   into per-lane write cursors, and each lane scatters its chunk in
   order. The scatter position of every iteration equals the serial
   stable counting sort's, so the permutation is identical to
   [Reorder.Lexgroup.run] bit for bit. *)
let lexgroup ~pool (access : Access.t) =
  let lanes = Pool.size pool in
  let n_iter = Access.n_iter access in
  if lanes = 1 || n_iter < 2 * lanes then Lexgroup.run access
  else begin
    let n_data = Access.n_data access in
    let chunks = Chunk.even ~n:n_iter ~lanes in
    let key = Array.make n_iter 0 in
    let counts = Array.init lanes (fun _ -> Array.make n_data 0) in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        let mine = counts.(lane) in
        for it = s to s + len - 1 do
          let k = Access.first_touch access it in
          key.(it) <- k;
          mine.(k) <- mine.(k) + 1
        done);
    let running = ref 0 in
    for d = 0 to n_data - 1 do
      for lane = 0 to lanes - 1 do
        let c = counts.(lane).(d) in
        counts.(lane).(d) <- !running;
        running := !running + c
      done
    done;
    let forward = Array.make n_iter 0 in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        let mine = counts.(lane) in
        for it = s to s + len - 1 do
          let k = key.(it) in
          forward.(it) <- mine.(k);
          mine.(k) <- mine.(k) + 1
        done);
    Perm.unsafe_of_forward forward
  end

(* Per-part member layout shared by the two Gpart variants. *)
let scatter_parts ~pool ~n_data members =
  let n_parts = Array.length members in
  let offsets = Array.make (n_parts + 1) 0 in
  for p = 0 to n_parts - 1 do
    offsets.(p + 1) <- offsets.(p) + Array.length members.(p)
  done;
  let inv = Array.make n_data 0 in
  let weights = Array.map Array.length members in
  let chunks = Chunk.weighted ~weights ~lanes:(Pool.size pool) in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      for p = s to s + len - 1 do
        Array.blit members.(p) 0 inv offsets.(p) (Array.length members.(p))
      done);
  inv

(* Parallel Gpart data reordering: the BFS partitioner itself is
   inherently sequential (and near-linear), but laying the partition
   members out consecutively parallelizes per part. Identical result
   to [Reorder.Gpart_reorder.run]. *)
let gpart ~pool (access : Access.t) ~part_size =
  let g = Access.to_graph access in
  let partition = Irgraph.Partition.gpart g ~part_size in
  let members = Irgraph.Partition.members partition in
  Perm.of_inverse
    (scatter_parts ~pool ~n_data:(Access.n_data access) members)

(* Gpart partitioning combined with per-partition CPACK: within every
   partition, members are ordered by their global first-touch rank
   (CPACK's order restricted to the part; never-touched members keep
   ascending id at the end of their part, like CPACK's trailing loop).
   Partitions are processed concurrently; the result depends only on
   the access and [part_size], never on the domain count. *)
let gpart_cpack ~pool (access : Access.t) ~part_size =
  let n_data = Access.n_data access in
  let g = Access.to_graph access in
  let partition = Irgraph.Partition.gpart g ~part_size in
  let members = Array.map Array.copy (Irgraph.Partition.members partition) in
  (* Global first-touch rank of every datum (one serial linear scan of
     the touch stream, as in CPACK itself). *)
  let rank = Array.make n_data max_int in
  let pos = ref 0 in
  for it = 0 to Access.n_iter access - 1 do
    Access.iter_touches access it (fun d ->
        if rank.(d) = max_int then rank.(d) <- !pos;
        incr pos)
  done;
  let weights = Array.map Array.length members in
  let chunks = Chunk.weighted ~weights ~lanes:(Pool.size pool) in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      for p = s to s + len - 1 do
        (* (rank, id) keys are unique, so any comparison sort yields
           the same order. *)
        Array.sort
          (fun a b ->
            let c = compare rank.(a) rank.(b) in
            if c <> 0 then c else compare a b)
          members.(p)
      done);
  Perm.of_inverse (scatter_parts ~pool ~n_data members)
