(* Parallel inspector hot paths. Where the serial inspector is kept as
   the specification, the parallel version computes the IDENTICAL
   result for every domain count — parallelism changes the wall clock,
   never the reordering function. *)

open Reorder

(* Fused-composition views. A [view = (sigma, delta_inv)] presents the
   composed access without materializing it: current iteration [cur]
   touches [sigma.(d)] for each datum [d] of base row
   [delta_inv.(cur)]. [None] is the base access itself. *)

(* Lexicographical grouping as a parallel stable counting sort: each
   lane histograms its contiguous iteration chunk, a serial
   (datum-major, lane-minor) exclusive prefix turns the histograms
   into per-lane write cursors, and each lane scatters its chunk in
   order. The scatter position of every iteration equals the serial
   stable counting sort's, so the permutation is identical to
   [Reorder.Lexgroup.run] (resp. [run_view]) bit for bit. *)
let lexgroup ~pool ?view (access : Access.t) =
  let lanes = Pool.size pool in
  let n_iter = Access.n_iter access in
  if lanes = 1 || n_iter < 2 * lanes then
    match view with
    | None -> Lexgroup.run access
    | Some (sigma, delta_inv) -> Lexgroup.run_view access ~sigma ~delta_inv
  else begin
    let n_data = Access.n_data access in
    let chunks = Chunk.even ~n:n_iter ~lanes in
    let key = Array.make n_iter 0 in
    let counts = Array.init lanes (fun _ -> Array.make n_data 0) in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        let mine = counts.(lane) in
        for it = s to s + len - 1 do
          let k =
            match view with
            | None -> Access.first_touch access it
            | Some (sigma, delta_inv) ->
              sigma.(Access.first_touch access delta_inv.(it))
          in
          key.(it) <- k;
          mine.(k) <- mine.(k) + 1
        done);
    let running = ref 0 in
    for d = 0 to n_data - 1 do
      for lane = 0 to lanes - 1 do
        let c = counts.(lane).(d) in
        counts.(lane).(d) <- !running;
        running := !running + c
      done
    done;
    let forward = Array.make n_iter 0 in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        let mine = counts.(lane) in
        for it = s to s + len - 1 do
          let k = key.(it) in
          forward.(it) <- mine.(k);
          mine.(k) <- mine.(k) + 1
        done);
    Perm.unsafe_of_forward forward
  end

(* Per-part member layout shared by the two Gpart variants. *)
let scatter_parts ~pool ~n_data members =
  let n_parts = Array.length members in
  let offsets = Array.make (n_parts + 1) 0 in
  for p = 0 to n_parts - 1 do
    offsets.(p + 1) <- offsets.(p) + Array.length members.(p)
  done;
  let inv = Array.make n_data 0 in
  let weights = Array.map Array.length members in
  let chunks = Chunk.weighted ~weights ~lanes:(Pool.size pool) in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      for p = s to s + len - 1 do
        Array.blit members.(p) 0 inv offsets.(p) (Array.length members.(p))
      done);
  inv

(* Parallel Gpart data reordering: the BFS partitioner itself is
   inherently sequential (and near-linear), but laying the partition
   members out consecutively parallelizes per part. Identical result
   to [Reorder.Gpart_reorder.run]. *)
let gpart ~pool ?graph (access : Access.t) ~part_size =
  let g = match graph with Some g -> g | None -> Access.to_graph access in
  let partition = Irgraph.Partition.gpart g ~part_size in
  let members = Irgraph.Partition.members partition in
  Perm.of_inverse
    (scatter_parts ~pool ~n_data:(Access.n_data access) members)

(* Gpart partitioning combined with per-partition CPACK: within every
   partition, members are ordered by their global first-touch rank
   (CPACK's order restricted to the part; never-touched members keep
   ascending id at the end of their part, like CPACK's trailing loop).
   Partitions are processed concurrently; the result depends only on
   the access and [part_size], never on the domain count. *)
let gpart_cpack ~pool ?graph (access : Access.t) ~part_size =
  let n_data = Access.n_data access in
  let g = match graph with Some g -> g | None -> Access.to_graph access in
  let partition = Irgraph.Partition.gpart g ~part_size in
  let members = Array.map Array.copy (Irgraph.Partition.members partition) in
  (* Global first-touch rank of every datum (one serial linear scan of
     the touch stream, as in CPACK itself). *)
  let rank = Array.make n_data max_int in
  let pos = ref 0 in
  for it = 0 to Access.n_iter access - 1 do
    Access.iter_touches access it (fun d ->
        if rank.(d) = max_int then rank.(d) <- !pos;
        incr pos)
  done;
  let weights = Array.map Array.length members in
  let chunks = Chunk.weighted ~weights ~lanes:(Pool.size pool) in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      for p = s to s + len - 1 do
        (* (rank, id) keys are unique, so any comparison sort yields
           the same order. *)
        Array.sort
          (fun a b ->
            let c = compare rank.(a) rank.(b) in
            if c <> 0 then c else compare a b)
          members.(p)
      done);
  Perm.of_inverse (scatter_parts ~pool ~n_data members)

(* ------------------------------------------------------------------ *)
(* Pooled CPACK                                                        *)

(* CPACK as a three-pass parallel first-touch computation. Every touch
   of the visit stream has a global position (prefix sums of row
   lengths); a datum's placement rank is the minimum position at which
   it is touched. Per-lane scans record each datum's first position
   inside the lane's contiguous stream chunk, a min-merge across lanes
   recovers the global first touch, and scattering each datum into a
   stream-length slot array followed by an ordered compaction yields
   exactly the serial first-touch order (positions are unique per
   datum). Untouched data append in ascending id order, like [run]'s
   trailing loop. Bit-identical to [Reorder.Cpack.run] /
   [run_in_order] / [run_view] for every domain count. *)
let cpack ~pool ?order ?view (access : Access.t) =
  let lanes = Pool.size pool in
  let m =
    match order with Some o -> Array.length o | None -> Access.n_iter access
  in
  if lanes = 1 || m < 2 * lanes then
    match view with
    | None -> (
      match order with
      | None -> Cpack.run access
      | Some order -> Cpack.run_in_order access ~order)
    | Some (sigma, delta_inv) -> Cpack.run_view ?order access ~sigma ~delta_inv
  else begin
    let n_data = Access.n_data access in
    let ptr = access.Access.ptr and dat = access.Access.dat in
    (* Base row of the i-th visit. *)
    let row i =
      let cur = match order with Some o -> o.(i) | None -> i in
      match view with Some (_, delta_inv) -> delta_inv.(cur) | None -> cur
    in
    let sigma = match view with Some (s, _) -> Some s | None -> None in
    (* Global stream position of each visit's first touch. *)
    let offsets = Array.make (m + 1) 0 in
    for i = 0 to m - 1 do
      let r = row i in
      offsets.(i + 1) <- offsets.(i) + (ptr.(r + 1) - ptr.(r))
    done;
    let total = offsets.(m) in
    let weights = Array.init m (fun i -> offsets.(i + 1) - offsets.(i)) in
    let chunks = Chunk.weighted ~weights ~lanes in
    (* Per-lane first-touch stream position of every datum. *)
    let rank_l = Array.init lanes (fun _ -> Array.make n_data max_int) in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        let mine = rank_l.(lane) in
        for i = s to s + len - 1 do
          let r = row i in
          let pos = ref offsets.(i) in
          (match sigma with
          | None ->
            for idx = ptr.(r) to ptr.(r + 1) - 1 do
              let d = Array.unsafe_get dat idx in
              if Array.unsafe_get mine d = max_int then
                Array.unsafe_set mine d !pos;
              incr pos
            done
          | Some sg ->
            for idx = ptr.(r) to ptr.(r + 1) - 1 do
              let d = Array.unsafe_get sg (Array.unsafe_get dat idx) in
              if Array.unsafe_get mine d = max_int then
                Array.unsafe_set mine d !pos;
              incr pos
            done)
        done);
    (* Min-merge across lanes; scatter each touched datum into its
       first-touch slot (slots are unique). *)
    let slot = Array.make total (-1) in
    let dchunks = Chunk.even ~n:n_data ~lanes in
    let untouched_l = Array.make lanes 0 in
    Pool.parallel pool (fun lane ->
        let s, len = dchunks.(lane) in
        let untouched = ref 0 in
        for d = s to s + len - 1 do
          let best = ref max_int in
          for l = 0 to lanes - 1 do
            let r = Array.unsafe_get rank_l.(l) d in
            if r < !best then best := r
          done;
          if !best < max_int then Array.unsafe_set slot !best d
          else incr untouched
        done;
        untouched_l.(lane) <- !untouched);
    (* Ordered compaction of the slot array = serial placement order. *)
    let inv = Array.make n_data 0 in
    let schunks = Chunk.even ~n:total ~lanes in
    let base_off = Array.make (lanes + 1) 0 in
    Pool.parallel pool (fun lane ->
        let s, len = schunks.(lane) in
        let c = ref 0 in
        for p = s to s + len - 1 do
          if Array.unsafe_get slot p >= 0 then incr c
        done;
        base_off.(lane + 1) <- !c);
    for lane = 0 to lanes - 1 do
      base_off.(lane + 1) <- base_off.(lane + 1) + base_off.(lane)
    done;
    let placed = base_off.(lanes) in
    Pool.parallel pool (fun lane ->
        let s, len = schunks.(lane) in
        let cursor = ref base_off.(lane) in
        for p = s to s + len - 1 do
          let d = Array.unsafe_get slot p in
          if d >= 0 then begin
            Array.unsafe_set inv !cursor d;
            incr cursor
          end
        done);
    (* Untouched data keep ascending order after the placed prefix. *)
    let ubase = Array.make (lanes + 1) 0 in
    for lane = 0 to lanes - 1 do
      ubase.(lane + 1) <- ubase.(lane) + untouched_l.(lane)
    done;
    Pool.parallel pool (fun lane ->
        let s, len = dchunks.(lane) in
        let cursor = ref (placed + ubase.(lane)) in
        for d = s to s + len - 1 do
          let touched = ref false in
          for l = 0 to lanes - 1 do
            if Array.unsafe_get rank_l.(l) d < max_int then touched := true
          done;
          if not !touched then begin
            Array.unsafe_set inv !cursor d;
            incr cursor
          end
        done);
    Cpack.count_run access ~placed;
    Perm.of_inverse inv
  end

(* ------------------------------------------------------------------ *)
(* Pooled view materialization and graph construction                  *)

(* Materialize a fused view into a concrete access: row [cur] is base
   row [delta_inv.(cur)] mapped through [sigma]. Bit-identical to
   [Access.reorder_iters delta (Access.map_data sigma base)]. *)
let materialize ~pool (base : Access.t) ~sigma ~delta_inv =
  let lanes = Pool.size pool in
  let n_iter = Access.n_iter base and n_data = Access.n_data base in
  let bptr = base.Access.ptr and bdat = base.Access.dat in
  let ptr = Array.make (n_iter + 1) 0 in
  for cur = 0 to n_iter - 1 do
    let r = delta_inv.(cur) in
    ptr.(cur + 1) <- ptr.(cur) + (bptr.(r + 1) - bptr.(r))
  done;
  let dat = Array.make ptr.(n_iter) 0 in
  let weights = Array.init n_iter (fun cur -> ptr.(cur + 1) - ptr.(cur)) in
  let chunks = Chunk.weighted ~weights ~lanes in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      for cur = s to s + len - 1 do
        let src = bptr.(delta_inv.(cur)) and dst = ptr.(cur) in
        for k = 0 to ptr.(cur + 1) - dst - 1 do
          Array.unsafe_set dat (dst + k)
            (Array.unsafe_get sigma (Array.unsafe_get bdat (src + k)))
        done
      done);
  Access.unsafe_make ~n_iter ~n_data ~ptr ~dat

(* Data-affinity graph of an access (or of a fused view of it) built
   in parallel: per-lane degree counting over contiguous iteration
   chunks, a serial row-pointer prefix, per-(lane, node) write cursors
   from a node-major lane-minor prefix, and a parallel arc scatter.
   Each node's adjacency ends up in global iteration order — the exact
   CSR [Access.to_graph] / [Csr.of_accesses] builds serially. *)
let to_graph ~pool ?view (access : Access.t) =
  let lanes = Pool.size pool in
  let n_iter = Access.n_iter access and n_data = Access.n_data access in
  let ptr = access.Access.ptr and dat = access.Access.dat in
  let row it =
    match view with Some (_, delta_inv) -> delta_inv.(it) | None -> it
  in
  let datum =
    match view with
    | Some (sigma, _) -> fun d -> Array.unsafe_get sigma d
    | None -> fun d -> d
  in
  let weights =
    Array.init n_iter (fun it ->
        let r = row it in
        let len = ptr.(r + 1) - ptr.(r) in
        len * (len - 1) / 2)
  in
  let chunks = Chunk.weighted ~weights ~lanes in
  let deg_l = Array.init lanes (fun _ -> Array.make n_data 0) in
  let arcs_l = Array.make lanes 0 in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      let deg = deg_l.(lane) in
      let arcs = ref 0 in
      for it = s to s + len - 1 do
        let r = row it in
        let lo = ptr.(r) and hi = ptr.(r + 1) in
        for a = lo to hi - 1 do
          for b = a + 1 to hi - 1 do
            let u = datum (Array.unsafe_get dat a)
            and v = datum (Array.unsafe_get dat b) in
            if u <> v then begin
              deg.(u) <- deg.(u) + 1;
              deg.(v) <- deg.(v) + 1;
              arcs := !arcs + 2
            end
          done
        done
      done;
      arcs_l.(lane) <- !arcs);
  let row_ptr = Array.make (n_data + 1) 0 in
  for v = 0 to n_data - 1 do
    let tot = ref 0 in
    for l = 0 to lanes - 1 do
      tot := !tot + deg_l.(l).(v)
    done;
    row_ptr.(v + 1) <- row_ptr.(v) + !tot
  done;
  (* Turn per-lane degrees into per-lane write cursors: lane L writes
     node v's arcs after every earlier lane's (= earlier iterations'). *)
  let dchunks = Chunk.even ~n:n_data ~lanes in
  Pool.parallel pool (fun lane ->
      let s, len = dchunks.(lane) in
      for v = s to s + len - 1 do
        let c = ref row_ptr.(v) in
        for l = 0 to lanes - 1 do
          let d = deg_l.(l).(v) in
          deg_l.(l).(v) <- !c;
          c := !c + d
        done
      done);
  let col = Array.make (Array.fold_left ( + ) 0 arcs_l) 0 in
  Pool.parallel pool (fun lane ->
      let s, len = chunks.(lane) in
      let cur = deg_l.(lane) in
      for it = s to s + len - 1 do
        let r = row it in
        let lo = ptr.(r) and hi = ptr.(r + 1) in
        for a = lo to hi - 1 do
          for b = a + 1 to hi - 1 do
            let u = datum (Array.unsafe_get dat a)
            and v = datum (Array.unsafe_get dat b) in
            if u <> v then begin
              Array.unsafe_set col cur.(u) v;
              cur.(u) <- cur.(u) + 1;
              Array.unsafe_set col cur.(v) u;
              cur.(v) <- cur.(v) + 1
            end
          done
        done
      done);
  Irgraph.Csr.unsafe_make ~n:n_data ~row_ptr ~col

(* ------------------------------------------------------------------ *)
(* Pooled sparse-tile growth and legality                              *)

(* Backward growth as a pooled scatter-min over the predecessor
   connectivity (never materializes the successor transpose): each
   lane scatters min into a private tile array over its contiguous
   chunk of assigned-loop iterations; a min-merge across lanes equals
   the serial scatter because min is order-independent. Bit-identical
   to [Sparse_tile.grow_backward_scatter] (and hence to
   [grow_backward] over the transposed connectivity). *)
let grow_backward ~pool ~(conn : Access.t) ~(next : Sparse_tile.tile_fn) =
  let lanes = Pool.size pool in
  let nb = Access.n_iter conn in
  if lanes = 1 || nb < 2 * lanes then
    Sparse_tile.grow_backward_scatter ~conn ~next
  else begin
    if nb <> Array.length next.Sparse_tile.tile_of then
      invalid_arg "Inspect.grow_backward: conn/next size mismatch";
    let n = Access.n_data conn in
    let ptr = conn.Access.ptr and dat = conn.Access.dat in
    let next_of = next.Sparse_tile.tile_of in
    let tile_l = Array.init lanes (fun _ -> Array.make n max_int) in
    let chunks = Chunk.even ~n:nb ~lanes in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        let mine = tile_l.(lane) in
        for b = s to s + len - 1 do
          let t = Array.unsafe_get next_of b in
          for idx = ptr.(b) to ptr.(b + 1) - 1 do
            let a = Array.unsafe_get dat idx in
            if t < Array.unsafe_get mine a then Array.unsafe_set mine a t
          done
        done);
    let tile_of = Array.make n 0 in
    let dchunks = Chunk.even ~n ~lanes in
    Pool.parallel pool (fun lane ->
        let s, len = dchunks.(lane) in
        for a = s to s + len - 1 do
          let best = ref max_int in
          for l = 0 to lanes - 1 do
            let t = Array.unsafe_get tile_l.(l) a in
            if t < !best then best := t
          done;
          tile_of.(a) <- (if !best = max_int then 0 else !best)
        done);
    Sparse_tile.count_growth ~conn next.Sparse_tile.n_tiles;
    { Sparse_tile.n_tiles = next.Sparse_tile.n_tiles; tile_of }
  end

(* Forward growth: every assigned-loop iteration's max is independent,
   so a plain chunked gather is trivially bit-identical to
   [Sparse_tile.grow_forward]. *)
let grow_forward ~pool ~(conn : Access.t) ~(prev : Sparse_tile.tile_fn) =
  let lanes = Pool.size pool in
  let nb = Access.n_iter conn in
  if lanes = 1 || nb < 2 * lanes then Sparse_tile.grow_forward ~conn ~prev
  else begin
    if Access.n_data conn <> Array.length prev.Sparse_tile.tile_of then
      invalid_arg "Inspect.grow_forward: conn/prev size mismatch";
    let prev_of = prev.Sparse_tile.tile_of in
    let ptr = conn.Access.ptr and dat = conn.Access.dat in
    let tile_of = Array.make nb 0 in
    let weights = Array.init nb (fun b -> ptr.(b + 1) - ptr.(b)) in
    let chunks = Chunk.weighted ~weights ~lanes in
    Pool.parallel pool (fun lane ->
        let s, len = chunks.(lane) in
        for b = s to s + len - 1 do
          let t = ref 0 in
          for idx = ptr.(b) to ptr.(b + 1) - 1 do
            let p = Array.unsafe_get prev_of (Array.unsafe_get dat idx) in
            if p > !t then t := p
          done;
          tile_of.(b) <- !t
        done);
    Sparse_tile.count_growth ~conn prev.Sparse_tile.n_tiles;
    { Sparse_tile.n_tiles = prev.Sparse_tile.n_tiles; tile_of }
  end

(* Legality check parallel over each connectivity's assigned-loop
   iterations; per-lane violation lists are collected in traversal
   order and concatenated in lane order, which is exactly the serial
   traversal order of [Sparse_tile.check_legality]. *)
let check_legality ~pool ~(chain : Sparse_tile.chain) ~tiles =
  let lanes = Pool.size pool in
  if lanes = 1 then Sparse_tile.check_legality ~chain ~tiles
  else begin
    let pieces = ref [] in
    Array.iteri
      (fun l (conn : Access.t) ->
        let t_src = tiles.(l).Sparse_tile.tile_of
        and t_dst = tiles.(l + 1).Sparse_tile.tile_of in
        let nb = Access.n_iter conn in
        let chunks = Chunk.even ~n:nb ~lanes in
        let found = Array.make lanes [] in
        Pool.parallel pool (fun lane ->
            let s, len = chunks.(lane) in
            let acc = ref [] in
            for b = s to s + len - 1 do
              Access.iter_touches conn b (fun a ->
                  if t_src.(a) > t_dst.(b) then acc := (l, a, b) :: !acc)
            done;
            found.(lane) <- List.rev !acc);
        Array.iter (fun lst -> pieces := lst :: !pieces) found)
      chain.Sparse_tile.conn;
    List.concat (List.rev !pieces)
  end

(* ------------------------------------------------------------------ *)
(* Pooled multilevel partitioning                                      *)

(* Multilevel data reordering with the coarsening hot paths chunked
   across the pool's lanes (see [Irgraph.Multilevel.par]); the
   partition — and hence the permutation — is bit-identical to the
   serial [Multilevel_reorder.run] for every domain count. *)
let multilevel ~pool ?graph (access : Access.t) ~part_size =
  let par =
    { Irgraph.Multilevel.lanes = Pool.size pool; run = Pool.parallel pool }
  in
  Multilevel_reorder.run ~par ?graph access ~part_size
