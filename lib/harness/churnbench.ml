(* Churn benchmark: repair-vs-cold re-inspection after rewiring k% of
   interactions. Each cell freezes one inspected plan, then chains
   churn rounds: rewire -> incremental repair (timed) -> bit-check
   against frozen regrowth -> true cold re-inspection (timed) ->
   steady-state executor seconds on both resulting plans. Shared by
   `rtrt churn` / `rtrt bench --only churn` and the bench binary's
   RTRT_BENCH_CHURN_ONLY fast mode; the JSON lands in BENCH_CHURN.json
   for the CI perf trajectory (the repair_speedup and bit_identical
   fields are the dimensionless ones the ratios-only gate compares). *)

module I = Compose.Inspector
module R = Compose.Repair

type row = {
  cb_bench : string;
  cb_dataset : string;
  cb_plan : string;
  cb_churn_pct : float;
  cb_rounds : int;
  cb_damaged_edges : int;
  cb_damaged_nodes : int;
  cb_tiles_moved : int;
  cb_fell_back : bool;
  cb_bit_identical : bool;
  cb_repair_seconds : float;
  cb_cold_inspect_seconds : float;
  cb_repair_speedup : float;
  cb_repaired_step_seconds : float;
  cb_cold_step_seconds : float;
  cb_steps_to_amortize : float;
}

type report = {
  rep_scale : int;
  rep_domains : int;
  rep_rounds : int;
  rows : row list;
}

(* Timings are best-of-rounds: each chained round rewires the same
   fraction, so rounds are exchangeable timing samples, and the min is
   far more stable than the median against GC pauses and cgroup
   throttling spikes — the ratios-only CI gate compares these. Damage
   counts use the median (they vary with the churn, not the clock). *)
let min_f xs = List.fold_left Float.min infinity xs

let median_i xs =
  match List.sort compare xs with
  | [] -> 0
  | s -> List.nth s (List.length s / 2)

(* ------------------------------------------------------------------ *)
(* Bit-identity of a repaired result against frozen regrowth, executor
   output included (same check the churn test suite makes). *)

let schedules_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Reorder.Schedule.equal a b
  | _ -> false

let exec_bits (r : I.result) =
  let k = r.I.kernel.Kernels.Kernel.copy () in
  (match r.I.schedule with
  | Some s -> k.Kernels.Kernel.run_tiled s ~steps:2
  | None -> k.Kernels.Kernel.run ~steps:2);
  k.Kernels.Kernel.snapshot ()

let results_equal (a : I.result) (b : I.result) =
  Reorder.Perm.equal a.I.sigma_total b.I.sigma_total
  && Reorder.Perm.equal a.I.delta_total b.I.delta_total
  && schedules_equal a.I.schedule b.I.schedule
  && Kernels.Kernel.snapshots_equal_bits (exec_bits a) (exec_bits b)

(* ------------------------------------------------------------------ *)
(* Steady-state executor seconds per step for an inspected plan. *)

let wall_steps = 3

let step_seconds (r : I.result) =
  let k = r.I.kernel.Kernels.Kernel.copy () in
  let run steps =
    match r.I.schedule with
    | Some s -> k.Kernels.Kernel.run_tiled s ~steps
    | None -> k.Kernels.Kernel.run ~steps
  in
  run 1;
  let t0 = Rtrt_obs.Clock.now_s () in
  run wall_steps;
  (Rtrt_obs.Clock.now_s () -. t0) /. float_of_int wall_steps

(* ------------------------------------------------------------------ *)

let run_cell ?pool ~rounds ~fraction ~bench ~dataset_name ~of_dataset ~plan
    d0 =
  let cold0 = I.run ?pool plan (of_dataset d0) in
  let state = R.prepare plan cold0 in
  (* Untimed warm-up round on a throwaway state: first-touch, code-path
     and GC-growth costs land outside the measured rounds, and the
     measured chain below starts undisturbed from [d0]. *)
  (let ws = R.prepare plan cold0 in
   let wd, wdamage =
     Datagen.Churn.rewire ~rng:(Datagen.Rng.create 0xA11) ~fraction d0
   in
   let wk = of_dataset wd in
   ignore (R.repair ?pool ws wk ~damage:wdamage);
   ignore (I.run ?pool plan wk));
  (* Each level chains its own churn trajectory from the pristine
     dataset, deterministically per level. *)
  let rng =
    Datagen.Rng.create (0x5EED + int_of_float (fraction *. 10_000.))
  in
  let d = ref d0 in
  let repair_ss = ref [] and cold_ss = ref [] in
  let rstep_ss = ref [] and cstep_ss = ref [] in
  let dedges = ref [] and dnodes = ref [] and moved = ref [] in
  let bit = ref true and fell = ref false in
  for _round = 1 to rounds do
    let churned, damage = Datagen.Churn.rewire ~rng ~fraction !d in
    d := churned;
    let kernel' = of_dataset churned in
    let repaired, info = R.repair ?pool state kernel' ~damage in
    bit := !bit && results_equal repaired (R.regrow ?pool state kernel');
    fell := !fell || info.R.fell_back;
    (* The honest competitor: a true cold re-inspection that re-derives
       fresh reorderings for the churned kernel. *)
    let cold = I.run ?pool plan kernel' in
    repair_ss := info.R.seconds :: !repair_ss;
    cold_ss := cold.I.inspector_seconds :: !cold_ss;
    rstep_ss := step_seconds repaired :: !rstep_ss;
    cstep_ss := step_seconds cold :: !cstep_ss;
    dedges := info.R.damaged_edges :: !dedges;
    dnodes := info.R.damaged_nodes :: !dnodes;
    moved := info.R.tiles_moved :: !moved
  done;
  let repair_s = min_f !repair_ss and cold_s = min_f !cold_ss in
  let rstep = min_f !rstep_ss and cstep = min_f !cstep_ss in
  {
    cb_bench = bench;
    cb_dataset = dataset_name;
    cb_plan = Compose.Plan.name plan;
    cb_churn_pct = fraction *. 100.0;
    cb_rounds = rounds;
    cb_damaged_edges = median_i !dedges;
    cb_damaged_nodes = median_i !dnodes;
    cb_tiles_moved = median_i !moved;
    cb_fell_back = !fell;
    cb_bit_identical = !bit;
    cb_repair_seconds = repair_s;
    cb_cold_inspect_seconds = cold_s;
    cb_repair_speedup = (if repair_s > 0.0 then cold_s /. repair_s else 0.0);
    cb_repaired_step_seconds = rstep;
    cb_cold_step_seconds = cstep;
    cb_steps_to_amortize =
      (if rstep <= cstep then -1.0
       else (cold_s -. repair_s) /. (rstep -. cstep));
  }

let default_levels = [ 0.01; 0.02; 0.05; 0.10 ]

let measure ?(full = false) ?(rounds = 5) ?(levels = default_levels) ~scale
    ~domains () =
  let cells =
    [
      ("moldyn", "mol1", fun d -> Kernels.Moldyn.of_dataset d);
      ("cg", "foil", fun d -> Kernels.Cg.of_dataset d);
    ]
    @
    if full then [ ("irreg", "foil", fun d -> Kernels.Irreg.of_dataset d) ]
    else []
  in
  let plans =
    [
      Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup;
      Compose.Plan.with_fst ~seed_part_size:64
        (Compose.Plan.gpart_lexgroup ~part_size:64);
    ]
  in
  let go pool =
    List.concat_map
      (fun (bench, dataset_name, of_dataset) ->
        let d0 = Option.get (Datagen.Generators.by_name ~scale dataset_name) in
        List.concat_map
          (fun plan ->
            List.map
              (fun fraction ->
                run_cell ?pool ~rounds ~fraction ~bench ~dataset_name
                  ~of_dataset ~plan d0)
              levels)
          plans)
      cells
  in
  let rows =
    if domains > 1 then Rtrt_par.Pool.with_pool ~domains (fun p -> go (Some p))
    else go None
  in
  (if rows <> [] then
     let worst =
       List.fold_left
         (fun acc r -> Float.min acc r.cb_repair_speedup)
         infinity rows
     in
     Rtrt_obs.Metrics.set
       (Rtrt_obs.Metrics.gauge "churnbench.min_repair_speedup")
       worst);
  Rtrt_obs.Metrics.set
    (Rtrt_obs.Metrics.gauge "churnbench.bit_identical")
    (if List.for_all (fun r -> r.cb_bit_identical) rows then 1.0 else 0.0);
  { rep_scale = scale; rep_domains = domains; rep_rounds = rounds; rows }

(* ------------------------------------------------------------------ *)

let json_of_report r =
  Rtrt_obs.Json.(
    Obj
      [
        ("scale", Int r.rep_scale);
        ("domains", Int r.rep_domains);
        ("rounds", Int r.rep_rounds);
        ( "rows",
          List
            (List.map
               (fun row ->
                 Obj
                   [
                     ("bench", String row.cb_bench);
                     ("dataset", String row.cb_dataset);
                     ("plan", String row.cb_plan);
                     ("churn_pct", Float row.cb_churn_pct);
                     ("rounds", Int row.cb_rounds);
                     ("damaged_edges", Int row.cb_damaged_edges);
                     ("damaged_nodes", Int row.cb_damaged_nodes);
                     ("tiles_moved", Int row.cb_tiles_moved);
                     ("fell_back", Bool row.cb_fell_back);
                     ("bit_identical", Bool row.cb_bit_identical);
                     ("repair_seconds", Float row.cb_repair_seconds);
                     ( "cold_inspect_seconds",
                       Float row.cb_cold_inspect_seconds );
                     ("repair_speedup", Float row.cb_repair_speedup);
                     ( "repaired_step_seconds",
                       Float row.cb_repaired_step_seconds );
                     ("cold_step_seconds", Float row.cb_cold_step_seconds);
                     ("steps_to_amortize", Float row.cb_steps_to_amortize);
                   ])
               r.rows) );
      ])

let write_json ~path r =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Rtrt_obs.Json.to_string (json_of_report r));
      output_char oc '\n')

let pp_report ppf r =
  Fmt.pf ppf "scale %d, domains %d, %d chained churn rounds per cell@."
    r.rep_scale r.rep_domains r.rep_rounds;
  List.iter
    (fun row ->
      Fmt.pf ppf
        "  %-8s %-6s %-24s %5.1f%%: repair %8.2fms vs cold %8.2fms \
         (%6.1fx)%s, %d moved, amortize %s  %s@."
        row.cb_bench row.cb_dataset row.cb_plan row.cb_churn_pct
        (row.cb_repair_seconds *. 1e3)
        (row.cb_cold_inspect_seconds *. 1e3)
        row.cb_repair_speedup
        (if row.cb_fell_back then " [fell back]" else "")
        row.cb_tiles_moved
        (if row.cb_steps_to_amortize < 0.0 then "never"
         else Fmt.str "%.0f steps" row.cb_steps_to_amortize)
        (if row.cb_bit_identical then "bit-identical" else "OUTPUT DIFFERS"))
    r.rows;
  if r.rows = [] then Fmt.pf ppf "  (no cells)@."
