(* Parallel speedup table: serial vs pool execution of the Full-growth
   tiled executors, with the Tile_par makespan model's prediction
   alongside. Shared by `rtrt bench --only par` and the bench binary's
   RTRT_BENCH_PAR_ONLY fast mode; the JSON lands in BENCH_PAR.json for
   the CI perf trajectory. *)

type row = {
  pb_bench : string;
  pb_dataset : string;
  pb_plan : string;
  pb_par : Experiment.par_measurement;
}

type report = {
  rep_domains : int;
  rep_scale : int;
  rep_lane_count_stable : bool;
  rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;
}

let measure ~machine ~(config : Figures.config) () =
  let exec_rows, profile =
    Rtrt_obs.Profile.record ~name:"executor_time" (fun () ->
        Figures.executor_time ~machine ~config ())
  in
  let rows =
    List.concat_map
      (fun (r : Figures.exec_row) ->
        List.map
          (fun (plan, p) ->
            {
              pb_bench = r.Figures.bench;
              pb_dataset = r.Figures.dataset;
              pb_plan = plan;
              pb_par = p;
            })
          r.Figures.per_plan_par)
      exec_rows
  in
  (* Every row must have run on the same pool width as configured —
     the figure driver threads one pool through the whole table, so a
     row with a different lane count means a pool was silently
     recreated (the per-row spawn cost this report exists to avoid). *)
  let lane_count_stable =
    List.for_all (fun row -> row.pb_par.Experiment.domains = config.Figures.domains) rows
  in
  if not lane_count_stable then
    invalid_arg "Parbench.measure: lane count varied across rows";
  {
    rep_domains = config.Figures.domains;
    rep_scale = config.Figures.scale;
    rep_lane_count_stable = lane_count_stable;
    rows;
    rep_profile = [ profile ];
  }

let json_of_report r =
  Rtrt_obs.Json.(
    Obj
      [
        ("domains", Int r.rep_domains);
        ("scale", Int r.rep_scale);
        ("lane_count_stable", Bool r.rep_lane_count_stable);
        ( "rows",
          List
            (List.map
               (fun row ->
                 let p = row.pb_par in
                 Obj
                   [
                     ("bench", String row.pb_bench);
                     ("dataset", String row.pb_dataset);
                     ("plan", String row.pb_plan);
                     ("domains", Int p.Experiment.domains);
                     ( "serial_seconds_per_step",
                       Float p.Experiment.serial_seconds_per_step );
                     ( "par_seconds_per_step",
                       Float p.Experiment.par_seconds_per_step );
                     ("measured_speedup", Float p.Experiment.measured_speedup);
                     ("modeled_speedup", Float p.Experiment.modeled_speedup);
                     ("modeled_makespan", Int p.Experiment.modeled_makespan);
                     ("bitwise_equal", Bool p.Experiment.bitwise_equal);
                     ("tier", String p.Experiment.par_tier);
                     ("batch", Int p.Experiment.par_batch);
                     ( "modeled_par_seconds_per_step",
                       Float p.Experiment.modeled_par_seconds_per_step );
                     ("barrier_cost_ns", Float p.Experiment.barrier_cost_ns);
                     ( "dispatch_wait_ns_per_step",
                       Float p.Experiment.dispatch_wait_ns_per_step );
                     ( "barrier_wait_ns_per_step",
                       Float p.Experiment.barrier_wait_ns_per_step );
                   ])
               r.rows) );
        ("profile", Rtrt_obs.Profile.json_of_phases r.rep_profile);
      ])

let write_json ~path r =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Rtrt_obs.Json.to_string (json_of_report r));
      output_char oc '\n')

let pp_report ppf r =
  Fmt.pf ppf "domains %d, scale %d@." r.rep_domains r.rep_scale;
  List.iter
    (fun row ->
      let p = row.pb_par in
      Fmt.pf ppf
        "  %-8s %-6s %-24s %5.2fx measured (modeled %5.2fx, makespan %d) \
         [%s, batch %d, dispatch %.0fns/step, barrier %.0fns/step] %s@."
        row.pb_bench row.pb_dataset row.pb_plan
        p.Experiment.measured_speedup p.Experiment.modeled_speedup
        p.Experiment.modeled_makespan p.Experiment.par_tier
        p.Experiment.par_batch p.Experiment.dispatch_wait_ns_per_step
        p.Experiment.barrier_wait_ns_per_step
        (if p.Experiment.bitwise_equal then "bitwise equal"
         else "OUTPUT DIFFERS");
      ())
    r.rows;
  if r.rows = [] then
    Fmt.pf ppf "  (no Full-growth sparse-tiled plans produced a schedule)@."
