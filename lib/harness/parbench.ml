(* Parallel speedup table: serial vs pool execution of the Full-growth
   tiled executors, with the Tile_par makespan model's prediction
   alongside. Shared by `rtrt bench --only par` and the bench binary's
   RTRT_BENCH_PAR_ONLY fast mode; the JSON lands in BENCH_PAR.json for
   the CI perf trajectory. *)

type row = {
  pb_bench : string;
  pb_dataset : string;
  pb_plan : string;
  pb_par : Experiment.par_measurement;
}

type report = {
  rep_domains : int;
  rep_scale : int;
  rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;
}

let measure ~machine ~(config : Figures.config) () =
  let exec_rows, profile =
    Rtrt_obs.Profile.record ~name:"executor_time" (fun () ->
        Figures.executor_time ~machine ~config ())
  in
  let rows =
    List.concat_map
      (fun (r : Figures.exec_row) ->
        List.map
          (fun (plan, p) ->
            {
              pb_bench = r.Figures.bench;
              pb_dataset = r.Figures.dataset;
              pb_plan = plan;
              pb_par = p;
            })
          r.Figures.per_plan_par)
      exec_rows
  in
  {
    rep_domains = config.Figures.domains;
    rep_scale = config.Figures.scale;
    rows;
    rep_profile = [ profile ];
  }

let json_of_report r =
  Rtrt_obs.Json.(
    Obj
      [
        ("domains", Int r.rep_domains);
        ("scale", Int r.rep_scale);
        ( "rows",
          List
            (List.map
               (fun row ->
                 let p = row.pb_par in
                 Obj
                   [
                     ("bench", String row.pb_bench);
                     ("dataset", String row.pb_dataset);
                     ("plan", String row.pb_plan);
                     ("domains", Int p.Experiment.domains);
                     ( "serial_seconds_per_step",
                       Float p.Experiment.serial_seconds_per_step );
                     ( "par_seconds_per_step",
                       Float p.Experiment.par_seconds_per_step );
                     ("measured_speedup", Float p.Experiment.measured_speedup);
                     ("modeled_speedup", Float p.Experiment.modeled_speedup);
                     ("modeled_makespan", Int p.Experiment.modeled_makespan);
                     ("bitwise_equal", Bool p.Experiment.bitwise_equal);
                   ])
               r.rows) );
        ("profile", Rtrt_obs.Profile.json_of_phases r.rep_profile);
      ])

let write_json ~path r =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Rtrt_obs.Json.to_string (json_of_report r));
      output_char oc '\n')

let pp_report ppf r =
  Fmt.pf ppf "domains %d, scale %d@." r.rep_domains r.rep_scale;
  List.iter
    (fun row ->
      let p = row.pb_par in
      Fmt.pf ppf
        "  %-8s %-6s %-24s %5.2fx measured (modeled %5.2fx, makespan %d) %s@."
        row.pb_bench row.pb_dataset row.pb_plan
        p.Experiment.measured_speedup p.Experiment.modeled_speedup
        p.Experiment.modeled_makespan
        (if p.Experiment.bitwise_equal then "bitwise equal"
         else "OUTPUT DIFFERS");
      ())
    r.rows;
  if r.rows = [] then
    Fmt.pf ppf "  (no Full-growth sparse-tiled plans produced a schedule)@."
