(* Cold-inspection cost of composed plans (the Figure 16 axis the
   fused strategy attacks): for each composition, the serial Remap_once
   inspector against the fused one-pass composition, serial and on a
   domain pool. Every timed run's output is checked bit-identical to
   the serial baseline (sigma/delta, reordering functions, and the
   tile schedule when the plan sparse-tiles), so the table can never
   report a speedup of a different answer. Results land in
   BENCH_INSPECTOR.json and the [inspctime.*] gauges. *)

let g_fused_speedup = Rtrt_obs.Metrics.gauge "inspctime.fused_speedup"

let g_fused_pool_speedup =
  Rtrt_obs.Metrics.gauge "inspctime.fused_pool_speedup"

type timing = {
  t_config : string;  (** "serial", "fused", or "fused+pN" *)
  t_domains : int;  (** 0 when no pool was used *)
  t_seconds : float;  (** best cold [inspector_seconds] of the repeats *)
  t_speedup : float;  (** serial best / this best *)
  t_identical : bool;  (** output bit-identical to the serial run *)
}

type row = {
  row_plan : string;
  row_serial_seconds : float;
  row_timings : timing list;  (** serial first, then fused variants *)
}

type report = {
  rep_scale : int;
  rep_repeats : int;
  rep_domains : int list;
  rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;  (* one phase per plan row *)
}

(* Best-of-N cold inspections; each run pays the full inspector (no
   cache is passed), and the minimum is the least-perturbed round. The
   result returned is the best round's, for the identity check. *)
let best_of ~repeats run =
  let best = ref infinity and result = ref None in
  for _ = 1 to repeats do
    let r = run () in
    let s = r.Compose.Inspector.inspector_seconds in
    if s < !best then begin
      best := s;
      result := Some r
    end
  done;
  (!best, Option.get !result)

let schedules_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    Reorder.Schedule.row_ptr a = Reorder.Schedule.row_ptr b
    && Reorder.Schedule.flat_items a = Reorder.Schedule.flat_items b
  | _ -> false

let results_equal (a : Compose.Inspector.result)
    (b : Compose.Inspector.result) =
  Reorder.Perm.equal a.sigma_total b.sigma_total
  && Reorder.Perm.equal a.delta_total b.delta_total
  && schedules_equal a.schedule b.schedule
  && List.length a.reordering_fns = List.length b.reordering_fns
  && List.for_all2
       (fun (na, pa) (nb, pb) -> na = nb && Reorder.Perm.equal pa pb)
       a.reordering_fns b.reordering_fns

let measure_plan ~repeats ~domains plan kernel =
  let inspect ?pool ~strategy () =
    Compose.Inspector.run ?pool ~strategy plan kernel
  in
  let serial_seconds, baseline =
    best_of ~repeats (inspect ~strategy:Compose.Inspector.Remap_once)
  in
  let timing ~config ~pool_domains seconds result =
    {
      t_config = config;
      t_domains = pool_domains;
      t_seconds = seconds;
      t_speedup = serial_seconds /. max 1e-12 seconds;
      t_identical = results_equal baseline result;
    }
  in
  let serial =
    timing ~config:"serial" ~pool_domains:0 serial_seconds baseline
  in
  let fused_seconds, fused_result =
    best_of ~repeats (inspect ~strategy:Compose.Inspector.Fused)
  in
  let fused =
    timing ~config:"fused" ~pool_domains:0 fused_seconds fused_result
  in
  let pooled =
    List.map
      (fun d ->
        Rtrt_par.Pool.with_pool ~domains:d @@ fun pool ->
        let seconds, result =
          best_of ~repeats (inspect ~pool ~strategy:Compose.Inspector.Fused)
        in
        timing
          ~config:(Printf.sprintf "fused+p%d" d)
          ~pool_domains:d seconds result)
      domains
  in
  {
    row_plan = Compose.Plan.name plan;
    row_serial_seconds = serial_seconds;
    row_timings = (serial :: fused :: pooled);
  }

(* GC (two back-to-back data reorderings) plus the two full-sparse-
   tiling compositions — the plans whose inspectors dominate Figure 16's
   cost axis. *)
let plans ~part_size ~seed_part_size =
  [
    Compose.Plan.gpart_cpack ~part_size;
    Compose.Plan.with_fst ~seed_part_size Compose.Plan.cpack_lexgroup;
    Compose.Plan.with_fst ~seed_part_size
      (Compose.Plan.gpart_lexgroup ~part_size);
  ]

let measure ?(repeats = 5) ?(domains = [ 1; 2; 4 ]) ~scale () =
  let dataset = Option.get (Datagen.Generators.by_name ~scale "mol1") in
  let kernel = (Option.get (Kernels.by_name "moldyn")) dataset in
  let rows_profiled =
    List.map
      (fun plan ->
        Rtrt_obs.Profile.record
          ~name:("plan:" ^ Compose.Plan.name plan)
          (fun () -> measure_plan ~repeats ~domains plan kernel))
      (plans ~part_size:64 ~seed_part_size:64)
  in
  let rows = List.map fst rows_profiled in
  (match rows with
  | first :: _ ->
    List.iter
      (fun t ->
        if t.t_config = "fused" then
          Rtrt_obs.Metrics.set g_fused_speedup t.t_speedup)
      first.row_timings;
    let max_pool =
      List.fold_left
        (fun acc t -> if t.t_domains > 0 then Some t else acc)
        None first.row_timings
    in
    Option.iter
      (fun t -> Rtrt_obs.Metrics.set g_fused_pool_speedup t.t_speedup)
      max_pool
  | [] -> ());
  {
    rep_scale = scale;
    rep_repeats = repeats;
    rep_domains = domains;
    rows;
    rep_profile = List.map snd rows_profiled;
  }

let identical r =
  List.for_all
    (fun row -> List.for_all (fun t -> t.t_identical) row.row_timings)
    r.rows

let json_of_report r =
  Rtrt_obs.Json.(
    Obj
      [
        ("scale", Int r.rep_scale);
        ("repeats", Int r.rep_repeats);
        ("domains", List (List.map (fun d -> Int d) r.rep_domains));
        ("identical", Bool (identical r));
        ( "plans",
          List
            (List.map
               (fun row ->
                 Obj
                   [
                     ("plan", String row.row_plan);
                     ("serial_seconds", Float row.row_serial_seconds);
                     ( "timings",
                       List
                         (List.map
                            (fun t ->
                              Obj
                                [
                                  ("config", String t.t_config);
                                  ("domains", Int t.t_domains);
                                  ("seconds", Float t.t_seconds);
                                  ("speedup", Float t.t_speedup);
                                  ("identical", Bool t.t_identical);
                                ])
                            row.row_timings) );
                   ])
               r.rows) );
        ("profile", Rtrt_obs.Profile.json_of_phases r.rep_profile);
      ])

let write_json ~path r =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Rtrt_obs.Json.to_string (json_of_report r));
      output_char oc '\n')

let pp_report ppf r =
  Fmt.pf ppf "inspector cold-cost table, scale %d, best of %d@." r.rep_scale
    r.rep_repeats;
  List.iter
    (fun row ->
      Fmt.pf ppf "  %s:@." row.row_plan;
      List.iter
        (fun t ->
          Fmt.pf ppf "    %-10s %.6fs  %.2fx%s@." t.t_config t.t_seconds
            t.t_speedup
            (if t.t_identical then "" else "  MISMATCH"))
        row.row_timings)
    r.rows
