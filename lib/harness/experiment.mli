(** Measurement of one (plan, kernel, machine) combination: inspector
    cost, executor wall clock, and modeled cycles from the cache
    simulator. *)

(** Multicore execution of the tiled schedule vs. the serial executor
    on the identical (level-major renumbered) schedule, plus the
    Tile_par makespan model's prediction. *)
type par_measurement = {
  domains : int;
  serial_seconds_per_step : float;
  par_seconds_per_step : float;
  measured_speedup : float;
  modeled_speedup : float;
  modeled_makespan : int;
  bitwise_equal : bool;
}

type measurement = {
  plan_name : string;
  inspector_seconds : float;
  executor_seconds_per_step : float;
  modeled_cycles_per_step : float;
  misses_per_step : float;
  accesses_per_step : float;
  miss_ratio : float;
  n_data_remaps : int;
  n_tiles : int; (** 1 when not sparse tiled *)
  par : par_measurement option;
      (** parallel run, when a multi-domain pool was given and the plan
          sparse-tiles with Full growth *)
}

(** Run the inspector and verify the result (raises on an illegal
    plan/result). *)
val inspect :
  ?pool:Rtrt_par.Pool.t ->
  ?strategy:Compose.Inspector.strategy ->
  ?share_symmetric_deps:bool ->
  Compose.Plan.t ->
  Kernels.Kernel.t ->
  Compose.Inspector.result

(** Measure one plan: [warmup] steps warm the modeled cache,
    [trace_steps_n] steps are counted, [wall_steps] steps are timed.
    When [pool] has more than one domain and the plan sparse-tiles
    with Full growth, the tiled executor additionally runs on the
    pool and the serial-vs-parallel comparison lands in [par]. *)
val measure :
  ?pool:Rtrt_par.Pool.t ->
  ?strategy:Compose.Inspector.strategy ->
  ?share_symmetric_deps:bool ->
  ?layout_of:(Kernels.Kernel.t -> Cachesim.Layout.t) ->
  ?warmup:int ->
  ?trace_steps_n:int ->
  ?wall_steps:int ->
  machine:Cachesim.Machine.t ->
  plan:Compose.Plan.t ->
  Kernels.Kernel.t ->
  measurement

(** Pair each measurement with (modeled, wall-clock) ratios against the
    first (base) measurement — Figures 6/7. *)
val normalize :
  measurement list -> (measurement * float * float) list

(** Outer-loop iterations to amortize the inspector against the
    per-step executor savings (Figures 8/9); [None] when the
    transformation does not save time. *)
val amortization : base:measurement -> measurement -> float option

(** Modeled-cycles variant of {!amortization}. *)
val amortization_modeled : base:measurement -> measurement -> float option

val pp_par_measurement : par_measurement Fmt.t
val pp_measurement : measurement Fmt.t
