(** Measurement of one (plan, kernel, machine) combination: inspector
    cost, executor wall clock, and modeled cycles from the cache
    simulator. *)

(** Multicore execution of the tiled schedule vs. the serial executor
    on the identical (level-major renumbered) schedule, plus the
    Tile_par makespan model's prediction. The executor runs at
    whatever tier the auto-fallback decision picked ([par_tier],
    {!Rtrt_par.Exec.tier_name}) with [par_batch] steps per pool
    dispatch; the pool's calibrated barrier cost and the per-step
    dispatch/barrier wait observed during the run separate
    synchronization overhead from work. *)
type par_measurement = {
  domains : int;
  serial_seconds_per_step : float;
  par_seconds_per_step : float;
  measured_speedup : float;
  modeled_speedup : float;
  modeled_makespan : int;
  bitwise_equal : bool;
  par_tier : string;  (** "parallel" or "serial" (auto-fallback) *)
  par_batch : int;  (** steps per pool dispatch *)
  modeled_par_seconds_per_step : float;
      (** the tier decision's modeled parallel step time *)
  barrier_cost_ns : float;  (** pool calibration, {!Rtrt_par.Pool.barrier_cost_ns} *)
  dispatch_wait_ns_per_step : float;
      (** per-step [pool.dispatch_wait] during the parallel run *)
  barrier_wait_ns_per_step : float;
      (** per-step per-lane barrier wait during the parallel run *)
}

(** Plan-cache traffic around one measurement. When [pc_hit], the
    measurement's [inspector_seconds] is the replay cost of a cache
    hit; [pc_cold_inspector_seconds] is what the cold inspection paid,
    so both sides of the amortization argument are available. *)
type plancache_report = {
  pc_hit : bool;
  pc_cold_inspector_seconds : float;
  pc_hits : int;  (** cumulative cache hits after this measurement *)
  pc_misses : int;
}

type measurement = {
  plan_name : string;
  inspector_seconds : float;
  executor_seconds_per_step : float;
  modeled_cycles_per_step : float;
  misses_per_step : float;
  accesses_per_step : float;
  miss_ratio : float;
  n_data_remaps : int;
  n_tiles : int; (** 1 when not sparse tiled *)
  par : par_measurement option;
      (** parallel run, when a multi-domain pool was given and the plan
          sparse-tiles with Full growth *)
  plancache : plancache_report option;  (** when a cache was given *)
  profile : Rtrt_obs.Profile.phase list;
      (** per-phase GC + monotonic timing deltas (inspect, cache_model,
          wall_clock, and par when measured) *)
}

(** Run the inspector and verify the result (raises on an illegal
    plan/result). [cache] is passed through to
    {!Compose.Inspector.run}. *)
val inspect :
  ?cache:Rtrt_plancache.Cache.t ->
  ?pool:Rtrt_par.Pool.t ->
  ?strategy:Compose.Inspector.strategy ->
  ?share_symmetric_deps:bool ->
  Compose.Plan.t ->
  Kernels.Kernel.t ->
  Compose.Inspector.result

(** Run an inspected kernel through the cache model: [warmup] steps
    warm the hierarchy, [steps] steps are counted. Returns per-step
    (modeled cycles, L1 misses, accesses) and the overall miss ratio —
    the locality half of the autotuner's cost model. *)
val trace_steps :
  ?layout_of:(Kernels.Kernel.t -> Cachesim.Layout.t) ->
  Compose.Inspector.result ->
  machine:Cachesim.Machine.t ->
  warmup:int ->
  steps:int ->
  float * float * float * float

(** Wall-clock seconds per step of the inspected kernel's executor.
    With a schedule, execution dispatches through
    {!Compose.Specialize}: shape-specialized (Tier A) when profitable,
    compiled (Tier B) when [--specialize]/[RTRT_SPECIALIZE] is on,
    interpreted otherwise — the tier is chosen and bitwise-verified
    outside the timed region. *)
val wall_clock_steps : Compose.Inspector.result -> steps:int -> float

(** Measure one plan: [warmup] steps warm the modeled cache,
    [trace_steps_n] steps are counted, [wall_steps] steps are timed.
    When [pool] has more than one domain and the plan sparse-tiles
    with Full growth, the tiled executor additionally runs on the
    pool and the serial-vs-parallel comparison lands in [par]. When
    [cache] is given, the inspection goes through the plan cache and
    [plancache] reports the hit/miss traffic. At the end of a
    measurement every participating domain's scratch pool is trimmed
    to [scratch_keep_bytes] bytes (default 1 MiB), so transient
    inspector working sets do not linger between plans. *)
val measure :
  ?cache:Rtrt_plancache.Cache.t ->
  ?pool:Rtrt_par.Pool.t ->
  ?strategy:Compose.Inspector.strategy ->
  ?share_symmetric_deps:bool ->
  ?layout_of:(Kernels.Kernel.t -> Cachesim.Layout.t) ->
  ?warmup:int ->
  ?trace_steps_n:int ->
  ?wall_steps:int ->
  ?scratch_keep_bytes:int ->
  machine:Cachesim.Machine.t ->
  plan:Compose.Plan.t ->
  Kernels.Kernel.t ->
  measurement

(** Pair each measurement with (modeled, wall-clock) ratios against the
    first (base) measurement — Figures 6/7. *)
val normalize :
  measurement list -> (measurement * float * float) list

(** Outer-loop iterations to amortize the inspector against the
    per-step executor savings (Figures 8/9); [None] when the
    transformation does not save time. *)
val amortization : base:measurement -> measurement -> float option

(** Modeled-cycles variant of {!amortization}. *)
val amortization_modeled : base:measurement -> measurement -> float option

(** Hit/miss-aware amortization: [(uncached, cached)] outer-loop
    iterations to pay off, respectively, a full inspection and what
    this run actually spent (a replay on a hit). [None] without a
    cache or when the plan does not save time. *)
val amortization_cached :
  base:measurement -> measurement -> (float * float) option

val pp_plancache_report : plancache_report Fmt.t
val pp_par_measurement : par_measurement Fmt.t
val pp_measurement : measurement Fmt.t
