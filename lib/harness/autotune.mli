(** Plan autotuning (ROADMAP item 3): search the validated composition
    space over {cpack, gpart, lexGroup, lexSort, FST, tilePack},
    scoring each candidate with the cache-model locality cost
    (modeled cycles per step on the machine's clock) composed with the
    {!Rtrt_par.Exec.decide} makespan model for Full-growth tiled
    candidates on a live pool. Winners are memoized in
    {!Rtrt_plancache.Tuned} keyed by (access-pattern fingerprint,
    machine, candidate space). The hand-named standard suite is a
    subset of the candidate space, so the winner matches or beats the
    best hand-named plan on the model by construction. *)

(** Serialize / parse a plan (name + transform list) as the JSON
    string stored in {!Rtrt_plancache.Tuned} entries. [plan_of_string]
    re-validates with {!Compose.Plan.validate}. *)
val plan_to_string : Compose.Plan.t -> string

val plan_of_string : string -> (Compose.Plan.t, string) result

(** The candidate space for a kernel, sized for a machine's L1 (same
    sizing rule as {!Figures.suite_for}). *)
val candidates_for :
  machine:Cachesim.Machine.t -> Kernels.Kernel.t -> Compose.Plan.t list

(** The tuned-winner cache key: kernel shape and access pattern,
    machine name, and the candidate space's transforms. *)
val fingerprint :
  machine:Cachesim.Machine.t ->
  space:Compose.Plan.t list ->
  Kernels.Kernel.t ->
  Rtrt_plancache.Fingerprint.t

(** One scored candidate. [sc_score_ns] is the effective modeled
    nanoseconds per step: the locality model alone, or the cheaper of
    serial locality and the makespan model's parallel prediction when
    the candidate Full-growth-tiles on a multi-lane pool. *)
type scored = {
  sc_plan : Compose.Plan.t;
  sc_locality_ns : float;
  sc_makespan_ns : float option;
  sc_tier : string;
  sc_score_ns : float;
  sc_miss_ratio : float;
}

(** Score one candidate (inspect, trace, optionally makespan). Returns
    the inspection result alongside so callers can reuse it. *)
val score :
  ?cache:Rtrt_plancache.Cache.t ->
  ?pool:Rtrt_par.Pool.t ->
  ?trace_steps:int ->
  ?batch:int ->
  machine:Cachesim.Machine.t ->
  Compose.Plan.t ->
  Kernels.Kernel.t ->
  scored * Compose.Inspector.result

(** A tuning outcome. [at_details] is empty when the winner was served
    from the tuned store ([at_cached]). *)
type t = {
  at_winner : Compose.Plan.t;
  at_winner_score_ns : float;
  at_scores : (string * float) list;
  at_details : scored list;
  at_cached : bool;
  at_key_hex : string;
}

(** [tune ~machine kernel] scores every candidate and returns the
    argmin. [candidates] overrides the space (each entry re-checked
    with {!Compose.Plan.validate}; raises [Invalid_argument] on an
    invalid or empty space). [tuned] consults/updates the winner
    store; [cache] routes inspections through the plan cache; [pool]
    enables makespan scoring. Publishes [autotune.*] metrics. *)
val tune :
  ?cache:Rtrt_plancache.Cache.t ->
  ?pool:Rtrt_par.Pool.t ->
  ?tuned:Rtrt_plancache.Tuned.t ->
  ?trace_steps:int ->
  ?batch:int ->
  ?candidates:Compose.Plan.t list ->
  machine:Cachesim.Machine.t ->
  Kernels.Kernel.t ->
  t

(** One bench/dataset/machine cell of BENCH_AUTOTUNE. *)
type row = {
  ab_bench : string;
  ab_dataset : string;
  ab_machine : string;
  ab_candidates : (string * float) list;
  ab_winner : string;
  ab_winner_score_ns : float;
  ab_best_named : string;
  ab_best_named_score_ns : float;
  ab_winner_over_named_normalized : float;
      (** winner score / best named score; <= 1.0 by construction *)
  ab_winner_wall_seconds_per_step : float;
  ab_best_named_wall_seconds_per_step : float;
  ab_winner_wall_speedup_over_named : float;
      (** named wall / winner wall (measured, best-of-3) *)
  ab_cached : bool;
}

type report = {
  rep_scale : int;
  rep_domains : int;
  rep_rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;
}

(** Tune every (bench, dataset, machine) cell of the paper's pairings
    and measure the winner's and the best hand-named plan's wall
    clocks. [machines] defaults to power3 and pentium4. *)
val measure :
  ?machines:Cachesim.Machine.t list ->
  config:Figures.config ->
  unit ->
  report

val json_of_report : report -> Rtrt_obs.Json.t
val write_json : path:string -> report -> unit
val pp_scored : scored Fmt.t
val pp_result : t Fmt.t
val pp_report : report Fmt.t
