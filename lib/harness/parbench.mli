(** Parallel speedup table (serial vs domain-pool execution of the
    Full-growth tiled executors, next to the Tile_par makespan model's
    prediction). Shared by [rtrt bench --only par] and the bench
    binary; the JSON feeds BENCH_PAR.json. *)

type row = {
  pb_bench : string;
  pb_dataset : string;
  pb_plan : string;
  pb_par : Experiment.par_measurement;
}

type report = {
  rep_domains : int;
  rep_scale : int;
  rep_lane_count_stable : bool;
      (** every row ran on a pool of exactly [rep_domains] lanes;
          [measure] raises when this fails, so a written report always
          has [true] *)
  rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;
}

(** Run the Figures 6/7 suite with [config] (domains/scale taken from
    it) and keep the plans that ran on the pool. All rows share one
    domain pool (and its one-shot barrier calibration); raises
    [Invalid_argument] if any row's lane count deviates from
    [config.domains]. *)
val measure :
  machine:Cachesim.Machine.t -> config:Figures.config -> unit -> report

val json_of_report : report -> Rtrt_obs.Json.t
val write_json : path:string -> report -> unit
val pp_report : report Fmt.t
