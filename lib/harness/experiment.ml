(* Measuring one (plan, kernel, machine) combination: inspector cost,
   executor wall-clock, and modeled cycles from the cache simulator.

   The cache-model measurement warms the cache for [warmup] time steps,
   then counts over [steps] steps, mirroring the paper's reporting of
   executor time per outer-loop iteration with overhead excluded. *)

(* Multicore execution of the tiled schedule, measured against the
   serial executor on the identical (level-major renumbered) schedule.
   [modeled_*] come from the Tile_par DAG makespan model, so figure
   tables can show measured next to modeled. [par_tier] is which tier
   the auto-fallback decision selected for the timed run (fed by the
   measured serial step time); the dispatch/barrier waits come from
   pool accounting deltas around the run, separating synchronization
   overhead from work in BENCH_PAR.json. *)
type par_measurement = {
  domains : int;
  serial_seconds_per_step : float;
  par_seconds_per_step : float;
  measured_speedup : float;
  modeled_speedup : float;
  modeled_makespan : int;
  bitwise_equal : bool;
  par_tier : string;
  par_batch : int;
  modeled_par_seconds_per_step : float;
  barrier_cost_ns : float;
  dispatch_wait_ns_per_step : float;
  barrier_wait_ns_per_step : float;
}

(* Plan-cache traffic around one measurement. [pc_hit] says whether
   THIS measurement's inspection was served from the cache (its
   [inspector_seconds] is then the replay cost, not a full
   inspection); [pc_cold_inspector_seconds] is what the cold run paid,
   so cached-vs-uncached amortization can put both on the same
   footing. *)
type plancache_report = {
  pc_hit : bool;
  pc_cold_inspector_seconds : float;
  pc_hits : int; (* cumulative cache hits after this measurement *)
  pc_misses : int;
}

type measurement = {
  plan_name : string;
  inspector_seconds : float;
  executor_seconds_per_step : float;
  modeled_cycles_per_step : float;
  misses_per_step : float;
  accesses_per_step : float;
  miss_ratio : float;
  n_data_remaps : int;
  n_tiles : int; (* 1 when not sparse tiled *)
  par : par_measurement option; (* parallel run, when a pool was given *)
  plancache : plancache_report option; (* when a cache was given *)
  profile : Rtrt_obs.Profile.phase list;
      (* per-phase GC + monotonic timing deltas *)
}

let time f = Rtrt_obs.Clock.time f

(* Run the inspector and verify the result. *)
let inspect ?cache ?pool ?strategy ?share_symmetric_deps plan kernel =
  Rtrt_obs.Span.with_ ~name:"experiment.inspect"
    ~attrs:[ ("plan", Rtrt_obs.Json.String (Compose.Plan.name plan)) ]
  @@ fun () ->
  let result =
    Compose.Inspector.run ?cache ?pool ?strategy ?share_symmetric_deps plan
      kernel
  in
  (match Compose.Legality.check result with
  | Ok () -> ()
  | Error msg ->
    Fmt.invalid_arg "experiment: plan %s produced illegal result: %s"
      (Compose.Plan.name plan) msg);
  result

let trace_steps ?(layout_of = Kernels.Kernel.layout)
    (result : Compose.Inspector.result) ~machine ~warmup ~steps =
  Rtrt_obs.Span.with_ ~name:"experiment.trace"
    ~attrs:
      [
        ("machine", Rtrt_obs.Json.String machine.Cachesim.Machine.name);
        ("steps", Rtrt_obs.Json.Int steps);
      ]
  @@ fun () ->
  let kernel = result.Compose.Inspector.kernel in
  let layout = layout_of kernel in
  let hierarchy = Cachesim.Machine.hierarchy machine in
  let access = Cachesim.Hierarchy.access hierarchy in
  (match result.Compose.Inspector.schedule with
  | None ->
    kernel.Kernels.Kernel.run_traced ~steps:warmup ~layout ~access;
    Cachesim.Hierarchy.reset_counters hierarchy;
    kernel.Kernels.Kernel.run_traced ~steps ~layout ~access
  | Some sched ->
    kernel.Kernels.Kernel.run_tiled_traced sched ~steps:warmup ~layout ~access;
    Cachesim.Hierarchy.reset_counters hierarchy;
    kernel.Kernels.Kernel.run_tiled_traced sched ~steps ~layout ~access);
  Cachesim.Hierarchy.publish_metrics hierarchy;
  let misses = float_of_int (Cachesim.Hierarchy.l1_misses hierarchy) in
  let accesses = float_of_int (Cachesim.Hierarchy.accesses hierarchy) in
  let cycles = Cachesim.Hierarchy.modeled_cycles hierarchy in
  ( cycles /. float_of_int steps,
    misses /. float_of_int steps,
    accesses /. float_of_int steps,
    Cachesim.Hierarchy.miss_ratio hierarchy )

let wall_clock_steps (result : Compose.Inspector.result) ~steps =
  Rtrt_obs.Span.with_ ~name:"experiment.wall_clock"
    ~attrs:[ ("steps", Rtrt_obs.Json.Int steps) ]
  @@ fun () ->
  let kernel = result.Compose.Inspector.kernel in
  match result.Compose.Inspector.schedule with
  | None ->
    let (), seconds = time (fun () -> kernel.Kernels.Kernel.run ~steps) in
    seconds /. float_of_int steps
  | Some sched ->
    (* The staged tier choice (interpreted / shaped / compiled) is made
       at plan time, outside the timed region; construction verifies
       the chosen tier bitwise against the interpreted walk on
       two-step copies, so the timed executor is provably the same
       computation. *)
    let spec = Compose.Specialize.make kernel sched in
    let (), seconds = time (fun () -> spec.Compose.Specialize.run ~steps) in
    seconds /. float_of_int steps

(* Only Full growth guarantees that same-level tiles at non-adjacent
   chain positions never share data (conn-path transitivity), which the
   phase-major parallel executor's bitwise claim rests on; Cache_block
   tilings are excluded from parallel measurement. *)
let plan_full_growth plan =
  List.exists
    (function
      | Compose.Transform.Sparse_tile { growth = Compose.Transform.Full; _ } ->
        true
      | _ -> false)
    (Compose.Plan.transforms plan)

(* Derive the tile DAG post-hoc from the schedule, build the parallel
   executor, and time it against the engine's own serial tier running
   the SAME (level-major renumbered) schedule on an identical kernel
   copy. The serial reference is the engine's [Serial] tier — not the
   kernel's [run_tiled] — so the two sides run identical code whenever
   the auto-fallback picks serial (the ratio then centers on 1.0
   instead of measuring an incidental codegen difference between two
   serial loops), and a parallel-tier row measures the engine against
   its exact serial twin, which is also what the makespan model
   predicts against. *)
let measure_par ~pool (result : Compose.Inspector.result) sched ~wall_steps =
  let domains = Rtrt_par.Pool.size pool in
  Rtrt_obs.Span.with_ ~name:"experiment.measure_par"
    ~attrs:
      [
        ("domains", Rtrt_obs.Json.Int domains);
        ("steps", Rtrt_obs.Json.Int wall_steps);
      ]
  @@ fun () ->
  let k = result.Compose.Inspector.kernel in
  let tiles =
    Compose.Legality.tile_fns_of_schedule sched
      ~loop_sizes:k.Kernels.Kernel.loop_sizes
  in
  let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
  let par = Reorder.Tile_par.analyze ~chain ~tiles in
  let k_ser = k.Kernels.Kernel.copy () in
  let k_par = k.Kernels.Kernel.copy () in
  let pe_ser =
    k_ser.Kernels.Kernel.plan_par ~pool sched
      ~level_of:par.Reorder.Tile_par.level_of
  in
  let pe =
    k_par.Kernels.Kernel.plan_par ~pool sched
      ~level_of:par.Reorder.Tile_par.level_of
  in
  (* Measurement design, hardened against noisy hosts:

     - Correctness: [k_ser] runs one window at the engine's [Serial]
       tier, [k_par] one window at the [Parallel] tier, and their
       snapshots are compared bit for bit.

     - [measured_speedup] is always serial tier vs PARALLEL tier —
       the counterfactual the auto-fallback decides about — not vs
       whichever tier [decide] picked. Measuring the chosen tier would
       make serial-tier rows compare the executor against itself
       (identical code, so the ratio is pure timing noise around 1.0,
       and on throttled hosts that noise reaches +-20%); measuring the
       parallel tier instead lets the table genuinely audit the
       decision: a row whose measured parallel speedup clearly exceeds
       1 while [par_tier] says "serial" is a model failure, and a row
       whose speedup is below 1 with tier "serial" is the model
       earning its keep.

     - Timing: BOTH sides of the speedup run on the same kernel copy
       ([k_par]) and the same plan, alternating a serial-tier window
       with a parallel-tier window. One copy for both sides cancels
       allocation/placement luck between two otherwise-identical
       array sets, which otherwise shows up as a persistent phantom
       10-15% "speedup" on a random row.

     - The reported speedup is the median of the per-pair ratios, not
       the ratio of the two minima: a pair's windows are adjacent in
       time and share the same throttling/GC environment, so each
       ratio is stable even when absolute window times are not, while
       min/min can pair one side's lone clean window against the other
       side's stalled ones. Pairs alternate which side goes first so
       any systematic first-window penalty (CPU-quota replenishment,
       GC debt from the previous window) lands on both sides equally
       often. *)
  let reps = 7 in
  let steps_f = float_of_int wall_steps in
  let run_ser_check () =
    pe_ser.Kernels.Kernel.par_run ~batch:1 ~tier:Rtrt_par.Exec.Serial
      ~profile:false ~steps:wall_steps ()
  in
  let (), ser_warm = time run_ser_check in
  (* Auto-fallback tier: feed the measured serial step time into the
     engine's model (triggers the pool's one-shot barrier/dispatch
     calibration). The decision is REPORTED (and audited against the
     measured ratio); the timed windows below always run the parallel
     tier. *)
  let batch = max 1 (min wall_steps 8) in
  let serial_ns_per_step = ser_warm *. 1e9 /. steps_f in
  let decision = pe.Kernels.Kernel.par_decide ~serial_ns_per_step ~batch in
  let tier = decision.Rtrt_par.Exec.d_tier in
  let run_par ~profile () =
    pe.Kernels.Kernel.par_run ~batch ~tier:Rtrt_par.Exec.Parallel ~profile
      ~steps:wall_steps ()
  in
  run_par ~profile:false ();
  let bitwise_equal =
    Kernels.Kernel.snapshots_equal_bits
      (k_ser.Kernels.Kernel.snapshot ())
      (k_par.Kernels.Kernel.snapshot ())
  in
  (* Timed windows all advance [k_par]; the serial side reuses the
     same plan at the [Serial] tier. *)
  let run_ser () =
    pe.Kernels.Kernel.par_run ~batch:1 ~tier:Rtrt_par.Exec.Serial
      ~profile:false ~steps:wall_steps ()
  in
  (* Pool accounting deltas around the (force-profiled) runs isolate
     this measurement's dispatch/barrier waits. *)
  let barrier_total stats =
    Array.fold_left
      (fun acc (s : Rtrt_par.Pool.lane_stats) ->
        acc + s.Rtrt_par.Pool.barrier_ns)
      0 stats
  in
  let dw0 = Rtrt_par.Pool.dispatch_wait_ns pool in
  let bw0 = barrier_total (Rtrt_par.Pool.lane_stats pool) in
  let ser_times = Array.make reps 0.0 and par_times = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    if i land 1 = 0 then begin
      let (), s = time run_ser in
      ser_times.(i) <- s;
      let (), p = time (run_par ~profile:true) in
      par_times.(i) <- p
    end
    else begin
      let (), p = time (run_par ~profile:true) in
      par_times.(i) <- p;
      let (), s = time run_ser in
      ser_times.(i) <- s
    end
  done;
  let ser_seconds = Array.fold_left Float.min infinity ser_times in
  let par_seconds = Array.fold_left Float.min infinity par_times in
  let ratios =
    Array.init reps (fun i ->
        if par_times.(i) > 0.0 then ser_times.(i) /. par_times.(i) else 1.0)
  in
  Array.sort compare ratios;
  let median_speedup = ratios.(reps / 2) in
  let dw1 = Rtrt_par.Pool.dispatch_wait_ns pool in
  let bw1 = barrier_total (Rtrt_par.Pool.lane_stats pool) in
  (* The accounting deltas cover all timed reps, not just the best. *)
  let timed_steps_f = steps_f *. float_of_int reps in
  {
    domains;
    serial_seconds_per_step = ser_seconds /. steps_f;
    par_seconds_per_step = par_seconds /. steps_f;
    measured_speedup = median_speedup;
    modeled_speedup = Reorder.Tile_par.speedup par ~processors:domains;
    modeled_makespan = Reorder.Tile_par.makespan par ~processors:domains;
    bitwise_equal;
    par_tier = Rtrt_par.Exec.tier_name tier;
    par_batch = batch;
    modeled_par_seconds_per_step =
      decision.Rtrt_par.Exec.d_modeled_par_ns_per_step *. 1e-9;
    barrier_cost_ns = decision.Rtrt_par.Exec.d_barrier_cost_ns;
    dispatch_wait_ns_per_step = float_of_int (dw1 - dw0) /. timed_steps_f;
    barrier_wait_ns_per_step =
      float_of_int (bw1 - bw0) /. float_of_int domains /. timed_steps_f;
  }

let measure ?cache ?pool ?strategy ?share_symmetric_deps ?layout_of
    ?(warmup = 1) ?(trace_steps_n = 2) ?(wall_steps = 5)
    ?(scratch_keep_bytes = 1 lsl 20) ~machine ~plan kernel =
  Rtrt_obs.Span.with_ ~name:"experiment.measure"
    ~attrs:
      [
        ("plan", Rtrt_obs.Json.String (Compose.Plan.name plan));
        ("machine", Rtrt_obs.Json.String machine.Cachesim.Machine.name);
      ]
  @@ fun () ->
  let pc_before = Option.map Rtrt_plancache.Cache.stats cache in
  let result, ph_inspect =
    Rtrt_obs.Profile.record ~name:"inspect" (fun () ->
        inspect ?cache ?pool ?strategy ?share_symmetric_deps plan
          (kernel : Kernels.Kernel.t))
  in
  let plancache =
    match (cache, pc_before) with
    | Some cache, Some before ->
      let after = Rtrt_plancache.Cache.stats cache in
      (* A replay reports its own (tiny) wall time; the stored entry
         remembers what the cold inspection cost. *)
      let key =
        Compose.Inspector.fingerprint ?strategy ?share_symmetric_deps plan
          kernel
      in
      let cold =
        match Rtrt_plancache.Cache.peek cache ~key with
        | Some e -> e.Rtrt_plancache.Cache.cold_inspector_seconds
        | None -> result.Compose.Inspector.inspector_seconds
      in
      Some
        {
          pc_hit = after.Rtrt_plancache.Cache.hits > before.Rtrt_plancache.Cache.hits;
          pc_cold_inspector_seconds = cold;
          pc_hits = after.Rtrt_plancache.Cache.hits;
          pc_misses = after.Rtrt_plancache.Cache.misses;
        }
    | _ -> None
  in
  let (cycles, misses, accesses, ratio), ph_model =
    Rtrt_obs.Profile.record ~name:"cache_model" (fun () ->
        trace_steps ?layout_of result ~machine ~warmup ~steps:trace_steps_n)
  in
  let exec_seconds, ph_wall =
    Rtrt_obs.Profile.record ~name:"wall_clock" (fun () ->
        wall_clock_steps result ~steps:wall_steps)
  in
  let par, ph_par =
    match (pool, result.Compose.Inspector.schedule) with
    | Some pool, Some sched
      when Rtrt_par.Pool.size pool > 1 && plan_full_growth plan ->
      let p, ph =
        Rtrt_obs.Profile.record ~name:"par" (fun () ->
            measure_par ~pool result sched ~wall_steps)
      in
      (Some p, [ ph ])
    | _ -> (None, [])
  in
  (* Shed the per-domain scratch pools this measurement grew (the
     inspector's composition accumulators and workspaces would
     otherwise stay pinned at the largest inspection's size for the
     rest of the process), keeping a small warm set per domain. The
     high-water mark survives in the [scratch.peak_bytes] gauge. *)
  (match pool with
  | Some pool when Rtrt_par.Pool.size pool > 1 ->
    Rtrt_par.Pool.parallel pool (fun _ ->
        Irgraph.Scratch.trim ~max_bytes:scratch_keep_bytes ())
  | _ -> Irgraph.Scratch.trim ~max_bytes:scratch_keep_bytes ());
  {
    plan_name = Compose.Plan.name plan;
    inspector_seconds = result.Compose.Inspector.inspector_seconds;
    executor_seconds_per_step = exec_seconds;
    modeled_cycles_per_step = cycles;
    misses_per_step = misses;
    accesses_per_step = accesses;
    miss_ratio = ratio;
    n_data_remaps = result.Compose.Inspector.n_data_remaps;
    n_tiles =
      (match result.Compose.Inspector.schedule with
      | None -> 1
      | Some s -> Reorder.Schedule.n_tiles s);
    par;
    plancache;
    profile = [ ph_inspect; ph_model; ph_wall ] @ ph_par;
  }

(* Normalized against the first (base) measurement, as Figures 6-7. *)
let normalize measurements =
  match measurements with
  | [] -> []
  | base :: _ ->
    List.map
      (fun m ->
        ( m,
          m.modeled_cycles_per_step /. base.modeled_cycles_per_step,
          m.executor_seconds_per_step /. base.executor_seconds_per_step ))
      measurements

(* Outer-loop iterations needed to amortize the inspector (Figures
   8-9): inspector time divided by per-step executor savings. [None]
   when the transformation does not save time. *)
let amortization ~base m =
  let savings = base.executor_seconds_per_step -. m.executor_seconds_per_step in
  if savings <= 0.0 then None
  else Some (m.inspector_seconds /. savings)

(* Modeled-cycle variant of amortization: inspector cost is converted
   to cycles at the measured executor cycles-per-second rate, so both
   quantities live on the machine model's clock. *)
let amortization_modeled ~base m =
  let savings = base.modeled_cycles_per_step -. m.modeled_cycles_per_step in
  if savings <= 0.0 then None
  else begin
    let cycles_per_second =
      if m.executor_seconds_per_step > 0.0 then
        m.modeled_cycles_per_step /. m.executor_seconds_per_step
      else 0.0
    in
    Some (m.inspector_seconds *. cycles_per_second /. savings)
  end

(* Hit/miss-aware amortization (the plan-cache variant of Figures
   8/9): executor steps to pay off a full (uncached) inspection next
   to the steps to pay off what this run actually spent (a replay on a
   hit). [None] without a cache or when the plan does not save time. *)
let amortization_cached ~base m =
  match m.plancache with
  | None -> None
  | Some pc ->
    let savings =
      base.executor_seconds_per_step -. m.executor_seconds_per_step
    in
    if savings <= 0.0 then None
    else
      Some
        ( pc.pc_cold_inspector_seconds /. savings,
          m.inspector_seconds /. savings )

let pp_plancache_report ppf pc =
  Fmt.pf ppf "%s (cold insp %.3fs; %d hits / %d misses)"
    (if pc.pc_hit then "hit" else "miss")
    pc.pc_cold_inspector_seconds pc.pc_hits pc.pc_misses

let pp_par_measurement ppf p =
  Fmt.pf ppf
    "%d domains [%s, batch %d]: %.2fx speedup (modeled %.2fx, makespan %d)  \
     %.2e -> %.2e s/step  bitwise %s  (barrier %.0fns, disp wait %.0fns/step)"
    p.domains p.par_tier p.par_batch p.measured_speedup p.modeled_speedup
    p.modeled_makespan p.serial_seconds_per_step p.par_seconds_per_step
    (if p.bitwise_equal then "equal" else "DIFFERS")
    p.barrier_cost_ns p.dispatch_wait_ns_per_step

let pp_measurement ppf m =
  Fmt.pf ppf
    "%-12s cycles/step %.3e  misses/step %.3e  miss%% %5.2f  insp %.3fs  \
     exec/step %.2e s  tiles %d"
    m.plan_name m.modeled_cycles_per_step m.misses_per_step
    (100.0 *. m.miss_ratio) m.inspector_seconds m.executor_seconds_per_step
    m.n_tiles;
  (match m.plancache with
  | None -> ()
  | Some pc -> Fmt.pf ppf "@,  plan cache: %a" pp_plancache_report pc);
  match m.par with
  | None -> ()
  | Some p -> Fmt.pf ppf "@,  par: %a" pp_par_measurement p
