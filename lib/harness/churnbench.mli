(** Repair-vs-cold re-inspection under graph churn (the
    {!Compose.Repair} trade). For each (benchmark, plan, churn level)
    cell: churn the dataset, repair the frozen plan incrementally, and
    compare against a true cold re-inspection — inspector seconds,
    executor steady-state seconds on both resulting plans, the
    steps-to-amortize break-even, and the bit-identity of repair
    against frozen regrowth. Shared by [rtrt churn] /
    [rtrt bench --only churn] and the bench binary's
    [RTRT_BENCH_CHURN_ONLY] fast mode; the JSON feeds
    BENCH_CHURN.json. *)

type row = {
  cb_bench : string;
  cb_dataset : string;
  cb_plan : string;
  cb_churn_pct : float;  (** churn level, percent of interactions *)
  cb_rounds : int;
      (** chained churn rounds: timings are best-of-rounds (each round
          rewires the same fraction, and the min resists GC/throttling
          spikes), damage counts are medians *)
  cb_damaged_edges : int;  (** median damaged interactions per round *)
  cb_damaged_nodes : int;
  cb_tiles_moved : int;  (** median schedule memberships changed *)
  cb_fell_back : bool;  (** any round took the cold fallback *)
  cb_bit_identical : bool;
      (** every round's repair was bit-identical (schedule and
          executor output) to frozen regrowth *)
  cb_repair_seconds : float;  (** best-of-rounds repair wall seconds *)
  cb_cold_inspect_seconds : float;
      (** best-of-rounds true cold [Compose.Inspector.run] wall
          seconds *)
  cb_repair_speedup : float;  (** cold / repair *)
  cb_repaired_step_seconds : float;
      (** steady-state executor seconds per step on the repaired plan *)
  cb_cold_step_seconds : float;  (** same on the cold re-inspected plan *)
  cb_steps_to_amortize : float;
      (** executor steps after which the cold path's better plan has
          paid back its dearer inspector:
          (cold_inspect - repair) / (repaired_step - cold_step);
          [-1] when the repaired plan's executor is not slower, i.e.
          the cold path never catches up *)
}

type report = {
  rep_scale : int;
  rep_domains : int;
  rep_rounds : int;
  rows : row list;
}

(** Run the churn suite: moldyn/mol1 and cg/foil (plus irreg/foil when
    [full]) under CL+FST and GL+FST, churned at [levels] (fractions;
    default 1/2/5/10%) for [rounds] chained rounds per cell.
    Deterministic datasets and churn (figure RNG); pooled growth and
    inspection when [domains > 1]. Sets the
    [churnbench.min_repair_speedup] and [churnbench.bit_identical]
    gauges. *)
val measure :
  ?full:bool ->
  ?rounds:int ->
  ?levels:float list ->
  scale:int ->
  domains:int ->
  unit ->
  report

val json_of_report : report -> Rtrt_obs.Json.t
val write_json : path:string -> report -> unit
val pp_report : report Fmt.t
