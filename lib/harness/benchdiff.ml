(* Bench-regression differ: compare two BENCH_*.json files
   metric-by-metric.

   Both files are flattened to (path, number) rows — object keys join
   with '.', list elements are labeled by their identifying string
   fields ("bench"/"dataset"/"plan"/"config"/"name", falling back to
   the index) so rows line up even if list order changes. Each path is
   classified by key-name heuristics into lower-is-better
   (seconds, misses, ...), higher-is-better (speedup, gbps, identity
   booleans), or informational (scale, steps, counts); gated rows
   whose relative change exceeds the tolerance become verdicts.

   Absolute timings differ across machines, so CI gates with
   [ratios_only], which restricts gating to dimensionless or modeled
   metrics (speedups, normalized ratios, miss ratios, identity
   booleans) — everything else is reported but informational. *)

type direction = Lower_better | Higher_better | Info
type verdict = Improved | Regressed | Equal | Neutral | Missing | Added

type row = {
  r_path : string;
  r_old : float option;
  r_new : float option;
  r_delta_pct : float option; (* (new - old) / |old| * 100 *)
  r_dir : direction;
  r_verdict : verdict;
}

(* ------------------------------------------------------------------ *)
(* Flattening                                                          *)

let id_keys = [ "bench"; "dataset"; "plan"; "config"; "name" ]

let label_of_element i j =
  let ids =
    List.filter_map
      (fun k ->
        match Rtrt_obs.Json.member k j with
        | Some (Rtrt_obs.Json.String s) -> Some s
        | _ -> None)
      id_keys
  in
  match ids with
  | [] -> string_of_int i
  | ids -> String.concat "/" ids

let rec flatten prefix (j : Rtrt_obs.Json.t) acc =
  let join a b = if a = "" then b else a ^ "." ^ b in
  match j with
  | Rtrt_obs.Json.Obj kvs ->
    List.fold_left (fun acc (k, v) -> flatten (join prefix k) v acc) acc kvs
  | Rtrt_obs.Json.List xs ->
    let _, acc =
      List.fold_left
        (fun (i, acc) x ->
          let label = Fmt.str "[%s]" (label_of_element i x) in
          (i + 1, flatten (prefix ^ label) x acc))
        (0, acc) xs
    in
    acc
  | Rtrt_obs.Json.Int n -> (prefix, float_of_int n) :: acc
  | Rtrt_obs.Json.Float f -> (prefix, f) :: acc
  | Rtrt_obs.Json.Bool b -> (prefix, if b then 1.0 else 0.0) :: acc
  | Rtrt_obs.Json.String _ | Rtrt_obs.Json.Null -> acc

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let last_segment path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let direction_of path =
  let key = String.lowercase_ascii (last_segment path) in
  let has sub = contains ~sub key in
  if
    (* configuration / size facts: changes are neither good nor bad *)
    List.mem key
      [
        "scale"; "steps"; "passes"; "items"; "domains"; "repeats"; "count";
        "n_tiles"; "modeled_makespan"; "heap_words"; "wall_start_unix_s";
      ]
    || has "collections" || has "compactions" || has "words"
  then Info
  else if
    has "speedup" || has "gbps" || has "reduction_pct" || has "identical"
    || has "bitwise" || has "hit"
  then Higher_better
  else if
    has "seconds" || has "_ns" || has "miss" || has "cycles" || has "access"
    || has "breakeven" || has "tiled_over_plain" || has "normalized"
    || has "remap"
  then Lower_better
  else Info

(* Dimensionless or deterministic-model metrics: stable across
   machines, so CI can gate on them with a generous tolerance. *)
let ratio_like path =
  let key = String.lowercase_ascii (last_segment path) in
  let has sub = contains ~sub key in
  has "speedup" || has "tiled_over_plain" || has "normalized"
  || has "miss_ratio" || has "reduction_pct" || has "identical"
  || has "bitwise"

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let classify ~tolerance ~dir old_v new_v =
  match dir with
  | Info -> Neutral
  | _ ->
    if old_v = new_v then Equal
    else begin
      let denom = Float.abs old_v in
      let rel =
        if denom > 0.0 then (new_v -. old_v) /. denom
        else if new_v > 0.0 then infinity
        else neg_infinity
      in
      let worse, better =
        match dir with
        | Lower_better -> (rel > tolerance, rel < -.tolerance)
        | Higher_better -> (rel < -.tolerance, rel > tolerance)
        | Info -> (false, false)
      in
      if worse then Regressed else if better then Improved else Equal
    end

let compare_json ?(tolerance = 0.1) ?(ratios_only = false) old_j new_j =
  let olds = flatten "" old_j [] and news = flatten "" new_j [] in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace tbl p (Some v, None)) olds;
  List.iter
    (fun (p, v) ->
      match Hashtbl.find_opt tbl p with
      | Some (o, _) -> Hashtbl.replace tbl p (o, Some v)
      | None -> Hashtbl.replace tbl p (None, Some v))
    news;
  let rows =
    Hashtbl.fold
      (fun path (o, n) acc ->
        let dir = direction_of path in
        let dir = if ratios_only && not (ratio_like path) then Info else dir in
        let verdict, delta =
          match (o, n) with
          | Some o, Some n ->
            let delta =
              if Float.abs o > 0.0 then Some ((n -. o) /. Float.abs o *. 100.0)
              else None
            in
            (classify ~tolerance ~dir o n, delta)
          | Some _, None -> (Missing, None)
          | None, Some _ -> (Added, None)
          | None, None -> (Neutral, None)
        in
        {
          r_path = path;
          r_old = o;
          r_new = n;
          r_delta_pct = delta;
          r_dir = dir;
          r_verdict = verdict;
        }
        :: acc)
      tbl []
  in
  List.sort (fun a b -> compare a.r_path b.r_path) rows

let regressions rows =
  List.filter (fun r -> r.r_verdict = Regressed) rows

let has_regression rows = regressions rows <> []

(* ------------------------------------------------------------------ *)
(* Files and printing                                                  *)

let load path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Rtrt_obs.Json.of_string text with
  | Ok j -> j
  | Error msg -> Fmt.failwith "%s: %s" path msg

let compare_files ?tolerance ?ratios_only ~old_path ~new_path () =
  compare_json ?tolerance ?ratios_only (load old_path) (load new_path)

let verdict_name = function
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Equal -> "equal"
  | Neutral -> "info"
  | Missing -> "missing"
  | Added -> "added"

let pp_cell ppf = function
  | None -> Fmt.pf ppf "%14s" "-"
  | Some v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Fmt.pf ppf "%14.0f" v
    else Fmt.pf ppf "%14.6g" v

let pp_row ppf r =
  Fmt.pf ppf "%-64s %a %a %10s  %s" r.r_path pp_cell r.r_old pp_cell r.r_new
    (match r.r_delta_pct with
    | None -> "-"
    | Some d -> Fmt.str "%+.1f%%" d)
    (verdict_name r.r_verdict)

(* [all] prints every row; otherwise informational rows whose value
   did not move are suppressed so the table stays readable. *)
let pp_table ?(all = false) ppf rows =
  Fmt.pf ppf "%-64s %14s %14s %10s  %s@." "metric" "old" "new" "delta"
    "verdict";
  let interesting r =
    all
    || (match r.r_verdict with
       | Regressed | Improved | Missing | Added -> true
       | Equal -> r.r_dir <> Info
       | Neutral -> false)
  in
  List.iter
    (fun r -> if interesting r then Fmt.pf ppf "%a@." pp_row r)
    rows;
  let count v = List.length (List.filter (fun r -> r.r_verdict = v) rows) in
  Fmt.pf ppf
    "summary: %d metrics, %d improved, %d regressed, %d equal, %d \
     missing/added@."
    (List.length rows) (count Improved) (count Regressed) (count Equal)
    (count Missing + count Added)
