(** Drivers regenerating every measured table/figure of the paper; the
    CLI, the bench harness and the tests all consume these. *)

type config = {
  scale : int;       (** dataset node-count divisor; 1 = paper size *)
  trace_steps : int; (** time steps counted by the cache model *)
  wall_steps : int;  (** time steps for wall-clock measurement *)
  domains : int;
      (** OCaml domains; > 1 additionally runs Full-growth tiled
          executors on a domain pool and reports measured speedup *)
  plan_cache : Rtrt_plancache.Cache.t option;
      (** inspections go through the plan cache when set *)
}

val default_config : config

(** The paper's benchmark/dataset pairings (Figures 6-9). *)
val pairings : (string * string list) list

(** Instantiate a kernel on a dataset / a dataset at the config's
    scale (raises on unknown names). *)
val kernel_of : name:string -> Datagen.Dataset.t -> Kernels.Kernel.t

val dataset_of : config:config -> string -> Datagen.Dataset.t

(** Run [f] with one pool for a whole table when [config.domains > 1]
    (rows share the domains and the one-shot barrier calibration),
    or with [None] otherwise. *)
val with_config_pool :
  config:config -> (Rtrt_par.Pool.t option -> 'a) -> 'a

(** Gpart nodes-per-partition for a cache-byte target. *)
val gpart_size_for : target_bytes:int -> Kernels.Kernel.t -> int

(** FST seed-block size (interactions) for a cache-byte target; see
    EXPERIMENTS.md for the calibration. *)
val seed_size_for : target_bytes:int -> Kernels.Kernel.t -> int

(** The eight standard compositions, sized for a machine's L1. *)
val suite_for : machine:Cachesim.Machine.t -> Kernels.Kernel.t -> Compose.Plan.t list

(** Measure the full suite on one kernel. [pool] reuses an existing
    domain pool across measurements (the figure drivers thread one
    pool through every row so repeated measurements never pay domain
    spawn or recalibration cost); without it, a pool is created for
    this call when [config.domains > 1]. *)
val run_suite :
  ?pool:Rtrt_par.Pool.t ->
  machine:Cachesim.Machine.t ->
  config:config ->
  Kernels.Kernel.t ->
  Experiment.measurement list

(** Section 2.4 dataset table. *)
type dataset_row = {
  ds_name : string;
  gen_nodes : int;
  gen_edges : int;
  paper_nodes : int;
  paper_edges : int;
  footprint_mb : (string * float) list;
      (** per-benchmark working set at paper size (Figure 8's MB
          labels) *)
}

val dataset_table : config:config -> unit -> dataset_row list
val pp_dataset_table : dataset_row list Fmt.t

(** Figures 6/7: normalized executor time without overhead. *)
type exec_row = {
  bench : string;
  dataset : string;
  per_plan : (string * float * float) list;
      (** plan, normalized modeled cycles, normalized wall clock *)
  per_plan_par : (string * Experiment.par_measurement) list;
      (** plans that additionally ran on a domain pool *)
  per_plan_profile : (string * Rtrt_obs.Profile.phase list) list;
      (** per-plan GC + phase-timing profiles, same order as [per_plan] *)
}

val executor_time :
  machine:Cachesim.Machine.t -> config:config -> unit -> exec_row list

val pp_exec_rows : exec_row list Fmt.t

(** Figures 8/9: outer-loop iterations to amortize the inspector. *)
type amort_row = {
  a_bench : string;
  a_dataset : string;
  a_per_plan : (string * float option * float option) list;
      (** plan, modeled-based, wall-clock-based *)
}

val amortization :
  machine:Cachesim.Machine.t -> config:config -> unit -> amort_row list

val pp_amort_rows : amort_row list Fmt.t

(** Figure 16: inspector-overhead reduction from remapping once. *)
type remap_row = {
  r_bench : string;
  r_dataset : string;
  r_plan : string;
  seconds_each : float;
  seconds_once : float;
  reduction_pct : float;
}

val remap_overhead :
  ?repeats:int ->
  machine:Cachesim.Machine.t ->
  config:config ->
  unit ->
  remap_row list

val pp_remap_rows : remap_row list Fmt.t

(** Figure 17: executor time vs cache-size target. *)
type sweep_row = {
  s_bench : string;
  s_dataset : string;
  s_target_kb : int;
  s_gl : float;
  s_fst : float;
}

val cache_target_sweep :
  ?targets_kb:int list ->
  machine:Cachesim.Machine.t ->
  config:config ->
  unit ->
  sweep_row list

val pp_sweep_rows : sweep_row list Fmt.t

(** Plot-ready CSV renderings of the figure tables. *)

val csv_exec_rows : exec_row list -> string
val csv_amort_rows : amort_row list -> string
val csv_sweep_rows : sweep_row list -> string

(** Machine-readable renderings of the figure tables ([rtrt json]);
    amortization cells that never pay off render as JSON null. *)

val json_dataset_rows : dataset_row list -> Rtrt_obs.Json.t
val json_exec_rows : exec_row list -> Rtrt_obs.Json.t
val json_amort_rows : amort_row list -> Rtrt_obs.Json.t
val json_remap_rows : remap_row list -> Rtrt_obs.Json.t
val json_sweep_rows : sweep_row list -> Rtrt_obs.Json.t
