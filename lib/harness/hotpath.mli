(** Hot-path microbenchmarks for the flat-CSR schedule representation:
    schedule-walk bandwidth (flat + unsafe streaming vs the pre-flat
    nested-array reference), moldyn tiled-vs-plain executor steady
    state, the specialized-executor tiers (interpreted vs Tier A
    shaped vs Tier B compiled, {!Compose.Specialize}), and the
    inspector's per-span phase breakdown. Results feed
    BENCH_HOTPATH.json and the [hotpath.*] gauges. *)

type walk_result = {
  walk_items : int;  (** schedule items per pass *)
  walk_passes : int;
  nested_seconds : float;
  flat_seconds : float;
  nested_gbps : float;
  flat_gbps : float;
  walk_speedup : float;  (** nested_seconds / flat_seconds *)
}

type exec_result = {
  exec_steps : int;
  plain_seconds_per_step : float;
  tiled_seconds_per_step : float;
  tiled_over_plain : float;
}

(** One kernel × plan comparison of the three executor tiers on the
    same frozen schedule. GB/s figures are nominal schedule bandwidth
    (8 bytes per schedule item per step); speedups are ratios of the
    interpreted walk's best time over the tier's best time. *)
type spec_row = {
  spec_kernel : string;
  spec_plan : string;
  spec_tier : string;  (** best tier reached: interp / shaped / codegen *)
  spec_items : int;  (** schedule iterations per step *)
  spec_steps : int;  (** steps per timed round *)
  spec_runs : int;  (** contiguous runs in the schedule *)
  spec_identity_rows : int;
  spec_avg_run_len : float;
  spec_interp_gbps : float;
  spec_shaped_gbps : float;
  spec_shaped_speedup : float;  (** interp_seconds / shaped_seconds *)
  spec_codegen_gbps : float option;  (** [None] when Tier B unavailable *)
  spec_codegen_speedup : float option;
  spec_compile_seconds : float;
  spec_cmxs_cache_hit : bool;
  spec_bitwise : bool;  (** final states of all tiers bitwise equal *)
}

type phase = {
  phase_name : string;
  phase_count : int;
  phase_total_s : float;
  phase_self_s : float;
}

type report = {
  rep_scale : int;
  rep_plan : string;
  walk : walk_result;
  exec : exec_result;
  spec : spec_row list;
  phases : phase list;
  rep_profile : Rtrt_obs.Profile.phase list;
      (** GC + monotonic timing per benchmark section *)
}

(** Walk every (tile, loop) row of [sched] both ways; passes are
    calibrated so one timing round of the nested walk takes roughly
    [min_seconds], and each side reports the minimum of five rounds
    (rejects scheduler noise). *)
val bench_walk : ?min_seconds:float -> Reorder.Schedule.t -> walk_result

(** Tiled executor (from the inspector result) vs the plain executor
    on the untransformed kernel, seconds per time step after one
    warmup step each. Raises if the plan produced no schedule. *)
val bench_exec :
  ?steps:int -> Kernels.Kernel.t -> Compose.Inspector.result -> exec_result

(** Time the interpreted, shaped (Tier A), and compiled (Tier B)
    executors on the inspected schedule. The step count is calibrated
    so one timing round takes roughly [min_seconds / rounds]; each
    tier then runs one warmup step plus the best of [rounds] timed
    rounds on its own copy of the transformed kernel. Tier B is
    requested explicitly; a missing toolchain or emitter refusal
    leaves the codegen columns [None]. Asserts the tiers' final
    states are bitwise equal; raises if the plan produced no
    schedule. *)
val bench_spec :
  ?min_seconds:float ->
  ?rounds:int ->
  plan_name:string ->
  Compose.Inspector.result ->
  spec_row

(** Re-run the inspector under an in-memory trace sink and return the
    per-span-name aggregates (descending total time). *)
val inspector_phases : Compose.Plan.t -> Kernels.Kernel.t -> phase list

(** The whole table on moldyn/mol1 with the Full-sparse-tiling plan. *)
val measure : scale:int -> unit -> report

val json_of_report : report -> Rtrt_obs.Json.t
val write_json : path:string -> report -> unit
val pp_report : report Fmt.t
