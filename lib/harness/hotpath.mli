(** Hot-path microbenchmarks for the flat-CSR schedule representation:
    schedule-walk bandwidth (flat + unsafe streaming vs the pre-flat
    nested-array reference), moldyn tiled-vs-plain executor steady
    state, and the inspector's per-span phase breakdown. Results feed
    BENCH_HOTPATH.json and the [hotpath.*] gauges. *)

type walk_result = {
  walk_items : int;  (** schedule items per pass *)
  walk_passes : int;
  nested_seconds : float;
  flat_seconds : float;
  nested_gbps : float;
  flat_gbps : float;
  walk_speedup : float;  (** nested_seconds / flat_seconds *)
}

type exec_result = {
  exec_steps : int;
  plain_seconds_per_step : float;
  tiled_seconds_per_step : float;
  tiled_over_plain : float;
}

type phase = {
  phase_name : string;
  phase_count : int;
  phase_total_s : float;
  phase_self_s : float;
}

type report = {
  rep_scale : int;
  rep_plan : string;
  walk : walk_result;
  exec : exec_result;
  phases : phase list;
  rep_profile : Rtrt_obs.Profile.phase list;
      (** GC + monotonic timing per benchmark section *)
}

(** Walk every (tile, loop) row of [sched] both ways; passes are
    calibrated so one timing round of the nested walk takes roughly
    [min_seconds], and each side reports the minimum of five rounds
    (rejects scheduler noise). *)
val bench_walk : ?min_seconds:float -> Reorder.Schedule.t -> walk_result

(** Tiled executor (from the inspector result) vs the plain executor
    on the untransformed kernel, seconds per time step after one
    warmup step each. Raises if the plan produced no schedule. *)
val bench_exec :
  ?steps:int -> Kernels.Kernel.t -> Compose.Inspector.result -> exec_result

(** Re-run the inspector under an in-memory trace sink and return the
    per-span-name aggregates (descending total time). *)
val inspector_phases : Compose.Plan.t -> Kernels.Kernel.t -> phase list

(** The whole table on moldyn/mol1 with the Full-sparse-tiling plan. *)
val measure : scale:int -> unit -> report

val json_of_report : report -> Rtrt_obs.Json.t
val write_json : path:string -> report -> unit
val pp_report : report Fmt.t
