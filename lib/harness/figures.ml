(* Reproduction drivers for every measured table/figure in the paper:

   - Section 2.4 dataset table          -> [dataset_table]
   - Figures 6/7 (normalized executor time, Power3 / Pentium 4)
                                        -> [executor_time ~machine]
   - Figures 8/9 (inspector amortization in outer-loop iterations)
                                        -> [amortization ~machine]
   - Figure 16 (% inspector-overhead reduction from remap-once)
                                        -> [remap_overhead]
   - Figure 17 (executor time vs cache-size target)
                                        -> [cache_target_sweep ~machine]

   Each driver returns structured rows plus a printer, so the CLI, the
   bench harness and the tests all consume the same code path. *)

type config = {
  scale : int;       (* dataset node-count divisor; 1 = paper size *)
  trace_steps : int; (* time steps counted by the cache model *)
  wall_steps : int;  (* time steps for wall-clock measurement *)
  domains : int;     (* OCaml domains; > 1 runs tiled executors in parallel *)
  plan_cache : Rtrt_plancache.Cache.t option;
      (* inspections go through the plan cache when set *)
}

let default_config =
  { scale = 16; trace_steps = 2; wall_steps = 5; domains = 1;
    plan_cache = None }

(* The paper's benchmark/dataset pairings (Figures 6-9). *)
let pairings =
  [ ("irreg", [ "foil"; "auto" ]); ("nbf", [ "foil"; "auto" ]);
    ("moldyn", [ "mol1"; "mol2" ]) ]

let kernel_of ~name dataset =
  match Kernels.by_name name with
  | Some f -> f dataset
  | None -> Fmt.invalid_arg "figures: unknown kernel %s" name

let dataset_of ~config name =
  match Datagen.Generators.by_name ~scale:config.scale name with
  | Some d -> d
  | None -> Fmt.invalid_arg "figures: unknown dataset %s" name

(* Partition sizes from a cache-byte target (Section 2.4: "we target
   the L1 cache when selecting parameters"):
   - Gpart: nodes per partition = target / bytes-per-node;
   - FST seed (a block of the interaction loop after CL/GL): each
     interaction touches two nodes, so a seed block of
     nodes_per_part / 4 interactions keeps the tile's distinct node
     data at roughly half the target, leaving the other half for the
     second-endpoint halo and the index arrays (measured optimum on
     all three kernels; see EXPERIMENTS.md). *)
let gpart_size_for ~target_bytes kernel =
  max 16 (target_bytes / Kernels.Kernel.bytes_per_node kernel)

let seed_size_for ~target_bytes (kernel : Kernels.Kernel.t) =
  max 16 (gpart_size_for ~target_bytes kernel / 4)

let suite_for ~machine kernel =
  let target_bytes = machine.Cachesim.Machine.l1_size in
  Compose.Plan.standard_suite
    ~gpart_size:(gpart_size_for ~target_bytes kernel)
    ~seed_part_size:(seed_size_for ~target_bytes kernel)

(* ------------------------------------------------------------------ *)
(* Section 2.4 dataset table                                           *)

type dataset_row = {
  ds_name : string;
  gen_nodes : int;
  gen_edges : int;
  paper_nodes : int;
  paper_edges : int;
  (* Working-set footprint per benchmark at the PAPER's size, in MB
     with 4-byte index entries — the "10MB ... 61MB" labels of
     Figure 8 (e.g. moldyn/mol1: 131072*72 + 1179648*8 = 18.9 MB). *)
  footprint_mb : (string * float) list;
}

let footprint ~nodes ~edges ~bytes_per_node =
  float_of_int ((nodes * bytes_per_node) + (edges * 2 * 4)) /. (1024.0 *. 1024.0)

let dataset_table ~config () =
  List.map
    (fun (name, (paper_nodes, paper_edges)) ->
      let d = dataset_of ~config name in
      {
        ds_name = name;
        gen_nodes = d.Datagen.Dataset.n_nodes;
        gen_edges = Datagen.Dataset.n_interactions d;
        paper_nodes;
        paper_edges;
        footprint_mb =
          List.map
            (fun (bench, bpn) ->
              ( bench,
                footprint ~nodes:paper_nodes ~edges:paper_edges
                  ~bytes_per_node:bpn ))
            [ ("irreg", 16); ("nbf", 48); ("moldyn", 72) ];
      })
    Datagen.Generators.paper_sizes

let pp_dataset_table ppf rows =
  Fmt.pf ppf "%-6s %12s %12s %14s %14s %22s@." "data" "nodes" "edges"
    "paper nodes" "paper edges" "paper MB (ir/nbf/mol)";
  List.iter
    (fun r ->
      let mb b = List.assoc b r.footprint_mb in
      Fmt.pf ppf "%-6s %12d %12d %14d %14d %6.0f %6.0f %6.0f@." r.ds_name
        r.gen_nodes r.gen_edges r.paper_nodes r.paper_edges (mb "irreg")
        (mb "nbf") (mb "moldyn"))
    rows

(* ------------------------------------------------------------------ *)
(* Figures 6/7: normalized executor time without overhead              *)

type exec_row = {
  bench : string;
  dataset : string;
  per_plan : (string * float * float) list;
      (* plan, normalized modeled cycles, normalized wall clock *)
  per_plan_par : (string * Experiment.par_measurement) list;
      (* plans that additionally ran on a domain pool *)
  per_plan_profile : (string * Rtrt_obs.Profile.phase list) list;
      (* per-plan GC + phase-timing profiles, same order as per_plan *)
}

(* One pool for a whole figure table: every row's measurements reuse
   the same domains (and the same one-shot barrier calibration), so no
   row pays domain spawn cost — and the lane count is stable across a
   report, which Parbench asserts. *)
let with_config_pool ~config f =
  if config.domains > 1 then
    Rtrt_par.Pool.with_pool ~domains:config.domains (fun pool -> f (Some pool))
  else f None

let run_suite ?pool ~machine ~config kernel =
  let measure_all pool =
    let plans = suite_for ~machine kernel in
    List.map
      (fun plan ->
        Experiment.measure ?cache:config.plan_cache ?pool
          ~trace_steps_n:config.trace_steps ~wall_steps:config.wall_steps
          ~machine ~plan kernel)
      plans
  in
  match pool with
  | Some _ -> measure_all pool
  | None -> with_config_pool ~config measure_all

let executor_time ~machine ~config () =
  with_config_pool ~config @@ fun pool ->
  List.concat_map
    (fun (bench, datasets) ->
      List.map
        (fun ds_name ->
          let kernel = kernel_of ~name:bench (dataset_of ~config ds_name) in
          let ms = run_suite ?pool ~machine ~config kernel in
          let normalized = Experiment.normalize ms in
          {
            bench;
            dataset = ds_name;
            per_plan =
              List.map
                (fun ((m : Experiment.measurement), cyc, wall) ->
                  (m.Experiment.plan_name, cyc, wall))
                normalized;
            per_plan_par =
              List.filter_map
                (fun (m : Experiment.measurement) ->
                  Option.map
                    (fun p -> (m.Experiment.plan_name, p))
                    m.Experiment.par)
                ms;
            per_plan_profile =
              List.map
                (fun (m : Experiment.measurement) ->
                  (m.Experiment.plan_name, m.Experiment.profile))
                ms;
          })
        datasets)
    pairings

let pp_exec_rows ppf rows =
  List.iter
    (fun r ->
      Fmt.pf ppf "@[<v2>%s / %s (normalized executor time; cycles | wall):@,"
        r.bench r.dataset;
      List.iter
        (fun (plan, cyc, wall) ->
          Fmt.pf ppf "%-10s %6.3f | %6.3f@," plan cyc wall)
        r.per_plan;
      List.iter
        (fun (plan, p) ->
          Fmt.pf ppf "%-10s %a@," plan Experiment.pp_par_measurement p)
        r.per_plan_par;
      Fmt.pf ppf "@]@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figures 8/9: amortization in outer-loop iterations                  *)

type amort_row = {
  a_bench : string;
  a_dataset : string;
  (* plan, steps to amortize by modeled cycles, by wall clock *)
  a_per_plan : (string * float option * float option) list;
}

let amortization ~machine ~config () =
  with_config_pool ~config @@ fun pool ->
  List.concat_map
    (fun (bench, datasets) ->
      List.map
        (fun ds_name ->
          let kernel = kernel_of ~name:bench (dataset_of ~config ds_name) in
          match run_suite ?pool ~machine ~config kernel with
          | [] -> { a_bench = bench; a_dataset = ds_name; a_per_plan = [] }
          | base :: rest ->
            {
              a_bench = bench;
              a_dataset = ds_name;
              a_per_plan =
                List.map
                  (fun m ->
                    ( m.Experiment.plan_name,
                      Experiment.amortization_modeled ~base m,
                      Experiment.amortization ~base m ))
                  rest;
            })
        datasets)
    pairings

let pp_amort_rows ppf rows =
  let cell ppf = function
    | Some steps -> Fmt.pf ppf "%8.1f" steps
    | None -> Fmt.pf ppf "%8s" "n/a"
  in
  List.iter
    (fun r ->
      Fmt.pf ppf
        "@[<v2>%s / %s (outer iterations to amortize inspector; modeled | \
         wall):@,"
        r.a_bench r.a_dataset;
      List.iter
        (fun (plan, modeled, wall) ->
          Fmt.pf ppf "%-10s %a | %a@," plan cell modeled cell wall)
        r.a_per_plan;
      Fmt.pf ppf "@]@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figure 16: inspector-overhead reduction from remapping data once    *)

type remap_row = {
  r_bench : string;
  r_dataset : string;
  r_plan : string;
  seconds_each : float;
  seconds_once : float;
  reduction_pct : float;
}

(* Compositions with two or more data reorderings (the paper shows
   irreg and moldyn; nbf does not benefit from tilePack). *)
let remap_overhead ?(repeats = 3) ~machine ~config () =
  let best f =
    let rec go acc k = if k = 0 then acc else go (min acc (f ())) (k - 1) in
    go (f ()) (repeats - 1)
  in
  let cases =
    [ ("irreg", "foil"); ("irreg", "auto"); ("moldyn", "mol1");
      ("moldyn", "mol2") ]
  in
  List.concat_map
    (fun (bench, ds_name) ->
      let kernel = kernel_of ~name:bench (dataset_of ~config ds_name) in
      let target_bytes = machine.Cachesim.Machine.l1_size in
      let seed = seed_size_for ~target_bytes kernel in
      let plans =
        [
          Compose.Plan.cpack_lexgroup_twice;
          Compose.Plan.with_fst ~seed_part_size:seed
            Compose.Plan.cpack_lexgroup;
          Compose.Plan.with_fst ~seed_part_size:seed
            Compose.Plan.cpack_lexgroup_twice;
        ]
      in
      List.map
        (fun plan ->
          let insp strategy () =
            (Experiment.inspect ~strategy plan kernel)
              .Compose.Inspector.inspector_seconds
          in
          let each = best (insp Compose.Inspector.Remap_each) in
          let once = best (insp Compose.Inspector.Remap_once) in
          {
            r_bench = bench;
            r_dataset = ds_name;
            r_plan = Compose.Plan.name plan;
            seconds_each = each;
            seconds_once = once;
            reduction_pct = 100.0 *. (each -. once) /. each;
          })
        plans)
    cases

let pp_remap_rows ppf rows =
  Fmt.pf ppf "%-8s %-6s %-10s %12s %12s %8s@." "bench" "data" "plan"
    "remap-each" "remap-once" "redux%";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-8s %-6s %-10s %10.4fs %10.4fs %7.1f%%@." r.r_bench
        r.r_dataset r.r_plan r.seconds_each r.seconds_once r.reduction_pct)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 17: executor performance vs cache-size target                *)

type sweep_row = {
  s_bench : string;
  s_dataset : string;
  s_target_kb : int;
  s_gl : float;  (* normalized modeled cycles, Gpart+lexGroup *)
  s_fst : float; (* normalized modeled cycles, CL+FST *)
}

let cache_target_sweep ?(targets_kb = [ 2; 4; 8; 16; 32; 64; 128; 256 ])
    ~machine ~config () =
  List.concat_map
    (fun (bench, ds_name) ->
      let kernel = kernel_of ~name:bench (dataset_of ~config ds_name) in
      let measure plan =
        (Experiment.measure ~trace_steps_n:config.trace_steps
           ~wall_steps:config.wall_steps ~machine ~plan kernel)
          .Experiment.modeled_cycles_per_step
      in
      let base = measure Compose.Plan.base in
      List.map
        (fun kb ->
          let target_bytes = kb * 1024 in
          let gl =
            measure
              (Compose.Plan.gpart_lexgroup
                 ~part_size:(gpart_size_for ~target_bytes kernel))
          in
          let fst_m =
            measure
              (Compose.Plan.with_fst
                 ~seed_part_size:(seed_size_for ~target_bytes kernel)
                 Compose.Plan.cpack_lexgroup)
          in
          {
            s_bench = bench;
            s_dataset = ds_name;
            s_target_kb = kb;
            s_gl = gl /. base;
            s_fst = fst_m /. base;
          })
        targets_kb)
    [ ("irreg", "foil"); ("moldyn", "mol1") ]

(* ------------------------------------------------------------------ *)
(* JSON export (rtrt json <figure>)                                    *)

module J = Rtrt_obs.Json

let json_dataset_rows rows =
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("dataset", J.String r.ds_name);
             ("nodes", J.Int r.gen_nodes);
             ("edges", J.Int r.gen_edges);
             ("paper_nodes", J.Int r.paper_nodes);
             ("paper_edges", J.Int r.paper_edges);
             ( "paper_footprint_mb",
               J.Obj
                 (List.map (fun (b, mb) -> (b, J.Float mb)) r.footprint_mb) );
           ])
       rows)

let json_par_measurement (p : Experiment.par_measurement) =
  J.Obj
    [
      ("domains", J.Int p.Experiment.domains);
      ("serial_seconds_per_step", J.Float p.Experiment.serial_seconds_per_step);
      ("par_seconds_per_step", J.Float p.Experiment.par_seconds_per_step);
      ("measured_speedup", J.Float p.Experiment.measured_speedup);
      ("modeled_speedup", J.Float p.Experiment.modeled_speedup);
      ("modeled_makespan", J.Int p.Experiment.modeled_makespan);
      ("bitwise_equal", J.Bool p.Experiment.bitwise_equal);
      ("tier", J.String p.Experiment.par_tier);
      ("batch", J.Int p.Experiment.par_batch);
      ( "modeled_par_seconds_per_step",
        J.Float p.Experiment.modeled_par_seconds_per_step );
      ("barrier_cost_ns", J.Float p.Experiment.barrier_cost_ns);
      ( "dispatch_wait_ns_per_step",
        J.Float p.Experiment.dispatch_wait_ns_per_step );
      ( "barrier_wait_ns_per_step",
        J.Float p.Experiment.barrier_wait_ns_per_step );
    ]

let json_exec_rows rows =
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("bench", J.String r.bench);
             ("dataset", J.String r.dataset);
             ( "plans",
               J.List
                 (List.map
                    (fun (plan, cyc, wall) ->
                      J.Obj
                        [
                          ("plan", J.String plan);
                          ("normalized_cycles", J.Float cyc);
                          ("normalized_wall", J.Float wall);
                        ])
                    r.per_plan) );
             ( "parallel",
               J.List
                 (List.map
                    (fun (plan, p) ->
                      J.Obj
                        [
                          ("plan", J.String plan);
                          ("par", json_par_measurement p);
                        ])
                    r.per_plan_par) );
             ( "profiles",
               J.List
                 (List.map
                    (fun (plan, phases) ->
                      J.Obj
                        [
                          ("plan", J.String plan);
                          ("profile", Rtrt_obs.Profile.json_of_phases phases);
                        ])
                    r.per_plan_profile) );
           ])
       rows)

let json_amort_rows rows =
  let cell = function Some v -> J.Float v | None -> J.Null in
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("bench", J.String r.a_bench);
             ("dataset", J.String r.a_dataset);
             ( "plans",
               J.List
                 (List.map
                    (fun (plan, modeled, wall) ->
                      J.Obj
                        [
                          ("plan", J.String plan);
                          ("amortize_modeled", cell modeled);
                          ("amortize_wall", cell wall);
                        ])
                    r.a_per_plan) );
           ])
       rows)

let json_remap_rows rows =
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("bench", J.String r.r_bench);
             ("dataset", J.String r.r_dataset);
             ("plan", J.String r.r_plan);
             ("seconds_remap_each", J.Float r.seconds_each);
             ("seconds_remap_once", J.Float r.seconds_once);
             ("reduction_pct", J.Float r.reduction_pct);
           ])
       rows)

let json_sweep_rows rows =
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("bench", J.String r.s_bench);
             ("dataset", J.String r.s_dataset);
             ("target_kb", J.Int r.s_target_kb);
             ("gl", J.Float r.s_gl);
             ("cl_fst", J.Float r.s_fst);
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* CSV export (plot-ready)                                             *)

let csv_exec_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "bench,dataset,plan,normalized_cycles,normalized_wall\n";
  List.iter
    (fun r ->
      List.iter
        (fun (plan, cyc, wall) ->
          Buffer.add_string b
            (Fmt.str "%s,%s,%s,%.6f,%.6f\n" r.bench r.dataset plan cyc wall))
        r.per_plan)
    rows;
  Buffer.contents b

let csv_amort_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "bench,dataset,plan,amortize_modeled,amortize_wall\n";
  let cell = function Some v -> Fmt.str "%.2f" v | None -> "" in
  List.iter
    (fun r ->
      List.iter
        (fun (plan, modeled, wall) ->
          Buffer.add_string b
            (Fmt.str "%s,%s,%s,%s,%s\n" r.a_bench r.a_dataset plan
               (cell modeled) (cell wall)))
        r.a_per_plan)
    rows;
  Buffer.contents b

let csv_sweep_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "bench,dataset,target_kb,gl,cl_fst\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Fmt.str "%s,%s,%d,%.6f,%.6f\n" r.s_bench r.s_dataset r.s_target_kb
           r.s_gl r.s_fst))
    rows;
  Buffer.contents b

let pp_sweep_rows ppf rows =
  Fmt.pf ppf "%-8s %-6s %10s %10s %10s@." "bench" "data" "target KB"
    "GL" "CL+FST";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-8s %-6s %10d %10.3f %10.3f@." r.s_bench r.s_dataset
        r.s_target_kb r.s_gl r.s_fst)
    rows
