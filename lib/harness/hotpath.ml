(* Hot-path microbenchmarks for the flat-CSR schedule representation:

   - schedule walk: stream every (tile, loop) row of a real sparse-tiled
     schedule, flat CSR with validated-once [Array.unsafe_get] against a
     locally synthesized nested [int array array array] reference (the
     pre-flat representation), reporting GB/s for both and the ratio;
   - executor steady state: moldyn's tiled executor against the plain
     executor, seconds per time step (the tiled executor must stay
     within a small factor of plain at default scale — its payoff is
     locality, not raw dispatch);
   - specialized executors: the interpreted [run_tiled] walk against
     the Tier A shape-specialized executor and the Tier B compiled
     executor ([Compose.Specialize]) on the same frozen schedule, per
     kernel, on a contiguous-run-rich plan (tilePack on) plus a
     run-poor comparison, nominal schedule GB/s for each;
   - inspector phase breakdown: the composed inspector re-run under an
     in-memory trace sink, per-span-name totals via [Rtrt_obs.Report].

   Results land in BENCH_HOTPATH.json (the CI perf trajectory) and in
   the [hotpath.*] gauges. *)

let g_flat_gbps = Rtrt_obs.Metrics.gauge "hotpath.walk.flat_gbps"
let g_walk_speedup = Rtrt_obs.Metrics.gauge "hotpath.walk.speedup"
let g_exec_ratio = Rtrt_obs.Metrics.gauge "hotpath.exec.tiled_over_plain"
let g_spec_shaped = Rtrt_obs.Metrics.gauge "hotpath.spec.shaped_speedup"
let g_spec_codegen = Rtrt_obs.Metrics.gauge "hotpath.spec.codegen_speedup"

type walk_result = {
  walk_items : int;  (** schedule items per pass *)
  walk_passes : int;
  nested_seconds : float;
  flat_seconds : float;
  nested_gbps : float;
  flat_gbps : float;
  walk_speedup : float;  (** nested_seconds / flat_seconds *)
}

type exec_result = {
  exec_steps : int;
  plain_seconds_per_step : float;
  tiled_seconds_per_step : float;
  tiled_over_plain : float;
}

type spec_row = {
  spec_kernel : string;
  spec_plan : string;
  spec_tier : string;  (** best tier reached: interp / shaped / codegen *)
  spec_items : int;  (** schedule iterations per step *)
  spec_steps : int;  (** steps per timed round *)
  spec_runs : int;  (** contiguous runs in the schedule *)
  spec_identity_rows : int;
  spec_avg_run_len : float;
  spec_interp_gbps : float;
  spec_shaped_gbps : float;
  spec_shaped_speedup : float;  (** interp_seconds / shaped_seconds *)
  spec_codegen_gbps : float option;  (** [None] when Tier B unavailable *)
  spec_codegen_speedup : float option;
  spec_compile_seconds : float;
  spec_cmxs_cache_hit : bool;
  spec_bitwise : bool;  (** final states of all tiers bitwise equal *)
}

type phase = {
  phase_name : string;
  phase_count : int;
  phase_total_s : float;
  phase_self_s : float;
}

type report = {
  rep_scale : int;
  rep_plan : string;
  walk : walk_result;
  exec : exec_result;
  spec : spec_row list;
  phases : phase list;
  rep_profile : Rtrt_obs.Profile.phase list;
}

let time f = snd (Rtrt_obs.Clock.time f)

(* ------------------------------------------------------------------ *)
(* Schedule walk                                                       *)

(* The pre-flat representation, synthesized from the same schedule so
   both walks visit identical items in identical order. Rows are
   allocated loop-major, as the nested [of_tile_fns] built them (one
   loop's rows at a time), so the tile-major walk below hops between
   allocations exactly as the old executors did. *)
let nested_of_schedule s =
  let nt = Reorder.Schedule.n_tiles s and nl = Reorder.Schedule.n_loops s in
  let nested = Array.init nt (fun _ -> Array.make nl [||]) in
  for loop = 0 to nl - 1 do
    for tile = 0 to nt - 1 do
      nested.(tile).(loop) <- Reorder.Schedule.items s ~tile ~loop
    done
  done;
  nested

(* The old executors fetched each row through [Schedule.items], a
   cross-module call the compiler did not inline. *)
let[@inline never] nested_row (nested : int array array array) tile loop =
  nested.(tile).(loop)

let walk_nested (nested : int array array array) =
  let acc = ref 0 in
  for tile = 0 to Array.length nested - 1 do
    for loop = 0 to Array.length nested.(tile) - 1 do
      let row = nested_row nested tile loop in
      for i = 0 to Array.length row - 1 do
        acc := !acc + row.(i)
      done
    done
  done;
  !acc

(* Row-major flat walk, one row-pointer read per row (rows are
   contiguous, so the previous row's end is the next row's start) —
   the executors' access pattern. *)
let walk_flat s =
  let rp = Reorder.Schedule.row_ptr s
  and fl = Reorder.Schedule.flat_items s in
  let n_rows = Reorder.Schedule.n_tiles s * Reorder.Schedule.n_loops s in
  let acc = ref 0 in
  let lo = ref 0 in
  for r = 0 to n_rows - 1 do
    let hi = Array.unsafe_get rp (r + 1) in
    for i = !lo to hi - 1 do
      acc := !acc + Array.unsafe_get fl i
    done;
    lo := hi
  done;
  !acc

let bench_walk ?(min_seconds = 0.2) sched =
  let nested = nested_of_schedule sched in
  let items = Reorder.Schedule.total_iterations sched in
  let check = walk_flat sched in
  if walk_nested nested <> check then failwith "Hotpath.bench_walk: mismatch";
  (* Calibrate the pass count on the nested walk, then time both sides
     as the best of several rounds of [passes] walks each — the
     minimum is the least scheduler-perturbed round, so the ratio is
     stable run to run. *)
  let sink = ref 0 in
  let one = time (fun () -> sink := !sink + walk_nested nested) in
  let rounds = 5 in
  let passes =
    max 3 (int_of_float (min_seconds /. float_of_int rounds /. max 1e-9 one))
  in
  let run walk =
    let best = ref infinity in
    for _ = 1 to rounds do
      let t =
        time (fun () ->
            for _ = 1 to passes do
              sink := !sink + walk ()
            done)
      in
      if t < !best then best := t
    done;
    !best
  in
  let nested_seconds = run (fun () -> walk_nested nested) in
  let flat_seconds = run (fun () -> walk_flat sched) in
  ignore (Sys.opaque_identity !sink);
  let gbps sec =
    float_of_int (8 * items * passes) /. max 1e-12 sec /. 1e9
  in
  let r =
    {
      walk_items = items;
      walk_passes = passes;
      nested_seconds;
      flat_seconds;
      nested_gbps = gbps nested_seconds;
      flat_gbps = gbps flat_seconds;
      walk_speedup = nested_seconds /. max 1e-12 flat_seconds;
    }
  in
  Rtrt_obs.Metrics.set g_flat_gbps r.flat_gbps;
  Rtrt_obs.Metrics.set g_walk_speedup r.walk_speedup;
  r

(* ------------------------------------------------------------------ *)
(* Executor steady state                                               *)

let bench_exec ?(steps = 3) (kernel : Kernels.Kernel.t)
    (result : Compose.Inspector.result) =
  match result.Compose.Inspector.schedule with
  | None -> invalid_arg "Hotpath.bench_exec: plan produced no schedule"
  | Some sched ->
    let k = result.Compose.Inspector.kernel in
    let plain = Kernels.Kernel.(kernel.copy ()) in
    let tiled = Kernels.Kernel.(k.copy ()) in
    (* One warmup step each, then the timed steady state. *)
    plain.Kernels.Kernel.run ~steps:1;
    tiled.Kernels.Kernel.run_tiled sched ~steps:1;
    let plain_s =
      time (fun () -> plain.Kernels.Kernel.run ~steps) /. float_of_int steps
    in
    let tiled_s =
      time (fun () -> tiled.Kernels.Kernel.run_tiled sched ~steps)
      /. float_of_int steps
    in
    let r =
      {
        exec_steps = steps;
        plain_seconds_per_step = plain_s;
        tiled_seconds_per_step = tiled_s;
        tiled_over_plain = tiled_s /. max 1e-12 plain_s;
      }
    in
    Rtrt_obs.Metrics.set g_exec_ratio r.tiled_over_plain;
    r

(* ------------------------------------------------------------------ *)
(* Specialized executors                                               *)

let bench_spec ?(min_seconds = 0.25) ?(rounds = 5) ~plan_name
    (result : Compose.Inspector.result) =
  match result.Compose.Inspector.schedule with
  | None -> invalid_arg "Hotpath.bench_spec: plan produced no schedule"
  | Some sched ->
    let k = result.Compose.Inspector.kernel in
    let items = Reorder.Schedule.total_iterations sched in
    (* Calibrate the step count off the interpreted walk's warmup step
       so one timing round lasts roughly [min_seconds / rounds] — the
       per-step times here are far too short to gate on raw. Each
       variant runs on its own copy of the transformed kernel; the
       rounds are interleaved across the tiers (interp round, shaped
       round, codegen round, repeat) so ambient machine drift lands on
       every tier equally and the best-of-rounds ratios stay stable.
       Every variant executes the same 1 + rounds*steps walks, so the
       final states must be bitwise equal — asserted below. *)
    let interp_k = Kernels.Kernel.(k.copy ()) in
    let one =
      time (fun () -> interp_k.Kernels.Kernel.run_tiled sched ~steps:1)
    in
    let steps =
      max 3
        (int_of_float
           (min_seconds /. float_of_int rounds /. max 1e-9 one))
    in
    let shaped_k = Kernels.Kernel.(k.copy ()) in
    let shape = Reorder.Shape.analyze sched in
    (* Tier B on its own copy; construction verifies bitwise on
       throwaway copies and degrades to a counted fallback when the
       toolchain is missing. *)
    let cg_k = Kernels.Kernel.(k.copy ()) in
    let cg = Compose.Specialize.make ~tier_b:true cg_k sched in
    let have_cg = cg.Compose.Specialize.tier = Compose.Specialize.Codegen in
    (* Warmups (the calibration step already warmed interp_k). *)
    shaped_k.Kernels.Kernel.run_tiled_shaped sched shape ~steps:1;
    if have_cg then cg.Compose.Specialize.run ~steps:1;
    let interp_best = ref infinity
    and shaped_best = ref infinity
    and cg_best = ref infinity in
    for _ = 1 to rounds do
      let keep cell t = if t < !cell then cell := t in
      keep interp_best
        (time (fun () -> interp_k.Kernels.Kernel.run_tiled sched ~steps));
      keep shaped_best
        (time (fun () ->
             shaped_k.Kernels.Kernel.run_tiled_shaped sched shape ~steps));
      if have_cg then
        keep cg_best (time (fun () -> cg.Compose.Specialize.run ~steps))
    done;
    let interp_seconds = !interp_best in
    let shaped_seconds = !shaped_best in
    let codegen_seconds = if have_cg then Some !cg_best else None in
    let eq a b =
      Kernels.Kernel.snapshots_equal_bits
        (a.Kernels.Kernel.snapshot ())
        (b.Kernels.Kernel.snapshot ())
    in
    let bitwise =
      eq interp_k shaped_k
      && (codegen_seconds = None || eq interp_k cg_k)
    in
    if not bitwise then failwith "Hotpath.bench_spec: tiers diverged";
    let sm = cg.Compose.Specialize.summary in
    let gbps sec =
      float_of_int (8 * items * steps) /. max 1e-12 sec /. 1e9
    in
    let shaped_speedup = interp_seconds /. max 1e-12 shaped_seconds in
    let codegen_speedup =
      Option.map (fun s -> interp_seconds /. max 1e-12 s) codegen_seconds
    in
    Rtrt_obs.Metrics.set g_spec_shaped shaped_speedup;
    Option.iter (Rtrt_obs.Metrics.set g_spec_codegen) codegen_speedup;
    {
      spec_kernel = k.Kernels.Kernel.name;
      spec_plan = plan_name;
      spec_tier = Compose.Specialize.tier_name cg.Compose.Specialize.tier;
      spec_items = items;
      spec_steps = steps;
      spec_runs = sm.Reorder.Shape.runs;
      spec_identity_rows = sm.Reorder.Shape.identity_rows;
      spec_avg_run_len = sm.Reorder.Shape.avg_run_len;
      spec_interp_gbps = gbps interp_seconds;
      spec_shaped_gbps = gbps shaped_seconds;
      spec_shaped_speedup = shaped_speedup;
      spec_codegen_gbps = Option.map gbps codegen_seconds;
      spec_codegen_speedup = codegen_speedup;
      spec_compile_seconds = cg.Compose.Specialize.compile_seconds;
      spec_cmxs_cache_hit = cg.Compose.Specialize.cmxs_cache_hit;
      spec_bitwise = bitwise;
    }

(* ------------------------------------------------------------------ *)
(* Inspector phase breakdown                                           *)

let inspector_phases plan kernel =
  let sink, events = Rtrt_obs.Sink.memory () in
  Rtrt_obs.set_sink sink;
  Fun.protect ~finally:Rtrt_obs.disable (fun () ->
      ignore (Experiment.inspect plan kernel));
  List.map
    (fun (a : Rtrt_obs.Report.agg) ->
      {
        phase_name = a.Rtrt_obs.Report.agg_name;
        phase_count = a.count;
        phase_total_s = a.total_s;
        phase_self_s = a.self_s;
      })
    (Rtrt_obs.Report.summarize (events ()))

(* ------------------------------------------------------------------ *)
(* The whole table                                                     *)

let measure ~scale () =
  let dataset = Option.get (Datagen.Generators.by_name ~scale "mol1") in
  let kernel = (Option.get (Kernels.by_name "moldyn")) dataset in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  let result = Experiment.inspect plan kernel in
  let sched =
    match result.Compose.Inspector.schedule with
    | Some s -> s
    | None -> invalid_arg "Hotpath.measure: plan produced no schedule"
  in
  let walk, ph_walk =
    Rtrt_obs.Profile.record ~name:"walk" (fun () -> bench_walk sched)
  in
  let exec, ph_exec =
    Rtrt_obs.Profile.record ~name:"exec" (fun () -> bench_exec kernel result)
  in
  let spec, ph_spec =
    Rtrt_obs.Profile.record ~name:"specialize" (fun () ->
        (* Run-rich rows: the top-level plan tilePacks, so its rows are
           long contiguous runs — the shape the Tier A streaming
           executors exploit. The final row drops tilePack for a
           run-poor comparison on the same kernel. *)
        let row p kname dname =
          let dataset = Option.get (Datagen.Generators.by_name ~scale dname) in
          let k = (Option.get (Kernels.by_name kname)) dataset in
          bench_spec ~plan_name:(Compose.Plan.name p)
            (Experiment.inspect p k)
        in
        let rich =
          Compose.Plan.with_fst ~seed_part_size:128
            Compose.Plan.cpack_lexgroup_twice
        in
        let poor =
          Compose.Plan.with_fst ~tile_pack:false ~seed_part_size:64
            Compose.Plan.cpack_lexgroup
        in
        [
          bench_spec ~plan_name:(Compose.Plan.name plan) result;
          row rich "nbf" "foil";
          row rich "irreg" "foil";
          row poor "moldyn" "mol1";
        ])
  in
  let phases, ph_insp =
    Rtrt_obs.Profile.record ~name:"inspector_phases" (fun () ->
        inspector_phases plan kernel)
  in
  {
    rep_scale = scale;
    rep_plan = Compose.Plan.name plan;
    walk;
    exec;
    spec;
    phases;
    rep_profile = [ ph_walk; ph_exec; ph_spec; ph_insp ];
  }

let json_of_report r =
  Rtrt_obs.Json.(
    Obj
      [
        ("scale", Int r.rep_scale);
        ("plan", String r.rep_plan);
        ( "schedule_walk",
          Obj
            [
              ("items", Int r.walk.walk_items);
              ("passes", Int r.walk.walk_passes);
              ("nested_seconds", Float r.walk.nested_seconds);
              ("flat_seconds", Float r.walk.flat_seconds);
              ("nested_gbps", Float r.walk.nested_gbps);
              ("flat_gbps", Float r.walk.flat_gbps);
              ("speedup", Float r.walk.walk_speedup);
            ] );
        ( "executor",
          Obj
            [
              ("steps", Int r.exec.exec_steps);
              ("plain_seconds_per_step", Float r.exec.plain_seconds_per_step);
              ("tiled_seconds_per_step", Float r.exec.tiled_seconds_per_step);
              ("tiled_over_plain", Float r.exec.tiled_over_plain);
            ] );
        ( "specialize",
          List
            (List.map
               (fun s ->
                 Obj
                   ([
                      ("bench", String s.spec_kernel);
                      ("plan", String s.spec_plan);
                      ("tier", String s.spec_tier);
                      ("items", Int s.spec_items);
                      ("steps", Int s.spec_steps);
                      ("runs", Int s.spec_runs);
                      ("identity_rows", Int s.spec_identity_rows);
                      ("avg_run_len", Float s.spec_avg_run_len);
                      ("interp_gbps", Float s.spec_interp_gbps);
                      ("shaped_gbps", Float s.spec_shaped_gbps);
                      ("shaped_speedup", Float s.spec_shaped_speedup);
                    ]
                   @ (match (s.spec_codegen_gbps, s.spec_codegen_speedup) with
                     | Some g, Some sp ->
                       [
                         ("codegen_gbps", Float g);
                         ("codegen_speedup", Float sp);
                       ]
                     | _ -> [])
                   @ [
                       ("compile_seconds", Float s.spec_compile_seconds);
                       ("cmxs_cache_hit", Bool s.spec_cmxs_cache_hit);
                       ("bitwise", Bool s.spec_bitwise);
                     ]))
               r.spec) );
        ( "inspector_phases",
          List
            (List.map
               (fun p ->
                 Obj
                   [
                     ("name", String p.phase_name);
                     ("count", Int p.phase_count);
                     ("total_seconds", Float p.phase_total_s);
                     ("self_seconds", Float p.phase_self_s);
                   ])
               r.phases) );
        ("profile", Rtrt_obs.Profile.json_of_phases r.rep_profile);
      ])

let write_json ~path r =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Rtrt_obs.Json.to_string (json_of_report r));
      output_char oc '\n')

let pp_report ppf r =
  Fmt.pf ppf
    "plan %s, scale %d@.  schedule walk: %d items, %d passes: nested %.3f \
     GB/s, flat %.3f GB/s (%.2fx)@.  executor: plain %.6fs/step, tiled \
     %.6fs/step (tiled/plain %.3fx)@."
    r.rep_plan r.rep_scale r.walk.walk_items r.walk.walk_passes
    r.walk.nested_gbps r.walk.flat_gbps r.walk.walk_speedup
    r.exec.plain_seconds_per_step r.exec.tiled_seconds_per_step
    r.exec.tiled_over_plain;
  Fmt.pf ppf "  specialized executors:@.";
  List.iter
    (fun s ->
      Fmt.pf ppf
        "    %-8s %-18s tier %-7s interp %.3f GB/s, shaped %.3f GB/s \
         (%.2fx)%s, runs %d avg %.1f%s@."
        s.spec_kernel s.spec_plan s.spec_tier s.spec_interp_gbps
        s.spec_shaped_gbps s.spec_shaped_speedup
        (match (s.spec_codegen_gbps, s.spec_codegen_speedup) with
        | Some g, Some sp -> Fmt.str ", codegen %.3f GB/s (%.2fx)" g sp
        | _ -> "")
        s.spec_runs s.spec_avg_run_len
        (if s.spec_compile_seconds > 0.0 then
           Fmt.str ", compile %.2fs" s.spec_compile_seconds
         else if s.spec_cmxs_cache_hit then ", cmxs cached"
         else ""))
    r.spec;
  Fmt.pf ppf "  inspector phases:@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "    %-32s %3dx total %.4fs self %.4fs@." p.phase_name
        p.phase_count p.phase_total_s p.phase_self_s)
    r.phases
