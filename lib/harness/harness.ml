(** Experiment harness: measurement of (plan, kernel, machine)
    combinations and the drivers that regenerate each of the paper's
    figures. *)

module Experiment = Experiment
module Figures = Figures
module Ablations = Ablations
module Guidance = Guidance
module Hotpath = Hotpath
module Inspctime = Inspctime
module Parbench = Parbench
module Churnbench = Churnbench
module Autotune = Autotune
module Benchdiff = Benchdiff
