(** Cold-inspection cost benchmark for composed plans: the serial
    Remap_once inspector vs the fused one-pass composition, serial and
    on a domain pool, on GC and the full-sparse-tiling compositions.
    Every timed variant is verified bit-identical to the serial
    baseline. Results feed BENCH_INSPECTOR.json and the
    [inspctime.*] gauges. *)

type timing = {
  t_config : string;  (** "serial", "fused", or "fused+pN" *)
  t_domains : int;  (** 0 when no pool was used *)
  t_seconds : float;  (** best cold [inspector_seconds] of the repeats *)
  t_speedup : float;  (** serial best / this best *)
  t_identical : bool;  (** output bit-identical to the serial run *)
}

type row = {
  row_plan : string;
  row_serial_seconds : float;
  row_timings : timing list;  (** serial first, then fused variants *)
}

type report = {
  rep_scale : int;
  rep_repeats : int;
  rep_domains : int list;
  rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;
      (** GC + monotonic timing, one phase per plan row *)
}

(** Time one plan's cold inspections (best of [repeats]) under serial
    Remap_once, serial Fused, and Fused on a fresh pool per domain
    count in [domains]; each variant's result is compared against the
    serial baseline. *)
val measure_plan :
  repeats:int ->
  domains:int list ->
  Compose.Plan.t ->
  Kernels.Kernel.t ->
  row

(** The whole table on moldyn/mol1: GC (Gpart then CPACK) plus the
    CL+FST and GL+FST sparse-tiling compositions, part/seed size 64.
    Defaults: best of 5, pools of 1, 2, and 4 domains. *)
val measure : ?repeats:int -> ?domains:int list -> scale:int -> unit -> report

(** Whether every timed variant matched the serial baseline bit for
    bit. *)
val identical : report -> bool

val json_of_report : report -> Rtrt_obs.Json.t
val write_json : path:string -> report -> unit
val pp_report : report Fmt.t
