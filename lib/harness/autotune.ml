(* Plan autotuning (ROADMAP item 3): search the validated composition
   space over {cpack, gpart, lexGroup, lexSort, FST, tilePack} with
   the repo's two cost models composed end to end:

   - locality: the candidate's inspected kernel runs through the
     Cachesim two-level hierarchy; modeled cycles per step convert to
     nanoseconds on the machine model's clock;
   - makespan: for Full-growth sparse-tiled candidates on a live
     domain pool, the locality prediction is fed into the (fixed)
     [Exec.decide] Amdahl model as the serial step time, and the
     candidate scores the cheaper of the two tiers — exactly the time
     the auto-fallback executor would take if the locality model were
     the truth.

   The winner is the score argmin. Because the hand-named standard
   suite is a subset of the candidate space, the winner matches or
   beats the best hand-named plan by construction (on the model; the
   report measures both wall clocks next to it).

   Winners are memoized in [Rtrt_plancache.Tuned] keyed by the
   access-pattern fingerprint plus machine, so repeat traffic skips
   the search; tuned entries carry the serialized winning plan and the
   full score table. Search traffic is published as [autotune.*]
   metrics. *)

module J = Rtrt_obs.Json

(* ------------------------------------------------------------------ *)
(* Plan (de)serialization — the opaque string stored in Tuned entries  *)

let json_of_transform (t : Compose.Transform.t) =
  let open Compose.Transform in
  match t with
  | Data_reorder Cpack -> J.Obj [ ("t", J.String "cpack") ]
  | Data_reorder (Gpart { part_size }) ->
    J.Obj [ ("t", J.String "gpart"); ("part_size", J.Int part_size) ]
  | Data_reorder (Multilevel { part_size }) ->
    J.Obj [ ("t", J.String "multilevel"); ("part_size", J.Int part_size) ]
  | Data_reorder Rcm -> J.Obj [ ("t", J.String "rcm") ]
  | Data_reorder Tile_pack -> J.Obj [ ("t", J.String "tilepack") ]
  | Iter_reorder Lexgroup -> J.Obj [ ("t", J.String "lexgroup") ]
  | Iter_reorder Lexsort -> J.Obj [ ("t", J.String "lexsort") ]
  | Iter_reorder (Bucket_tile { bucket_size }) ->
    J.Obj [ ("t", J.String "buckettile"); ("bucket_size", J.Int bucket_size) ]
  | Sparse_tile { growth; seed } ->
    let seed_kind, part_size =
      match seed with
      | Seed_block { part_size } -> ("block", part_size)
      | Seed_gpart { part_size } -> ("gpart", part_size)
    in
    J.Obj
      [
        ("t", J.String "sparse_tile");
        ( "growth",
          J.String
            (match growth with Full -> "full" | Cache_block -> "cache_block")
        );
        ("seed", J.String seed_kind);
        ("part_size", J.Int part_size);
      ]

let json_of_plan plan =
  J.Obj
    [
      ("name", J.String (Compose.Plan.name plan));
      ( "transforms",
        J.List (List.map json_of_transform (Compose.Plan.transforms plan)) );
    ]

let plan_to_string plan = J.to_string (json_of_plan plan)

let ( let* ) = Result.bind

let int_field name j =
  match J.member name j with
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Ok n
    | None -> Error ("field " ^ name ^ " is not an integer"))
  | None -> Error ("missing field " ^ name)

let string_field name j =
  match J.member name j with
  | Some v -> (
    match J.to_string_opt v with
    | Some s -> Ok s
    | None -> Error ("field " ^ name ^ " is not a string"))
  | None -> Error ("missing field " ^ name)

let transform_of_json j =
  let open Compose.Transform in
  let* t = string_field "t" j in
  match t with
  | "cpack" -> Ok (Data_reorder Cpack)
  | "gpart" ->
    let* part_size = int_field "part_size" j in
    Ok (Data_reorder (Gpart { part_size }))
  | "multilevel" ->
    let* part_size = int_field "part_size" j in
    Ok (Data_reorder (Multilevel { part_size }))
  | "rcm" -> Ok (Data_reorder Rcm)
  | "tilepack" -> Ok (Data_reorder Tile_pack)
  | "lexgroup" -> Ok (Iter_reorder Lexgroup)
  | "lexsort" -> Ok (Iter_reorder Lexsort)
  | "buckettile" ->
    let* bucket_size = int_field "bucket_size" j in
    Ok (Iter_reorder (Bucket_tile { bucket_size }))
  | "sparse_tile" ->
    let* growth =
      let* g = string_field "growth" j in
      match g with
      | "full" -> Ok Full
      | "cache_block" -> Ok Cache_block
      | _ -> Error ("unknown growth " ^ g)
    in
    let* part_size = int_field "part_size" j in
    let* seed =
      let* s = string_field "seed" j in
      match s with
      | "block" -> Ok (Seed_block { part_size })
      | "gpart" -> Ok (Seed_gpart { part_size })
      | _ -> Error ("unknown seed " ^ s)
    in
    Ok (Sparse_tile { growth; seed })
  | _ -> Error ("unknown transform " ^ t)

let plan_of_json j =
  let* name = string_field "name" j in
  let* transforms =
    match J.member "transforms" j with
    | Some (J.List ts) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | t :: rest ->
          let* tr = transform_of_json t in
          go (tr :: acc) rest
      in
      go [] ts
    | _ -> Error "bad transforms field"
  in
  let plan = Compose.Plan.make ~name transforms in
  let* () = Compose.Plan.validate plan in
  Ok plan

let plan_of_string s =
  let* j = J.of_string s in
  plan_of_json j

(* ------------------------------------------------------------------ *)
(* Candidate space and fingerprint                                     *)

let candidates_for ~machine kernel =
  let target_bytes = machine.Cachesim.Machine.l1_size in
  Compose.Plan.candidates
    ~gpart_size:(Figures.gpart_size_for ~target_bytes kernel)
    ~seed_part_size:(Figures.seed_size_for ~target_bytes kernel)

(* The tuned-winner key: the kernel's shape and access pattern (the
   run-time data the tuning is FOR), the machine model, and the
   candidate space itself (a winner chosen from a different space is a
   different answer). Plan names are excluded, as in the inspector's
   fingerprint. *)
let fingerprint ~machine ~space (kernel : Kernels.Kernel.t) =
  let module F = Rtrt_plancache.Fingerprint in
  let b = F.create () in
  F.add_string b "autotune-v1";
  F.add_string b kernel.Kernels.Kernel.name;
  F.add_int b kernel.Kernels.Kernel.n_nodes;
  F.add_int b kernel.Kernels.Kernel.n_inter;
  F.add_int_array b kernel.Kernels.Kernel.loop_sizes;
  F.add_int b kernel.Kernels.Kernel.seed_loop;
  let access = kernel.Kernels.Kernel.access in
  F.add_int_array b access.Reorder.Access.ptr;
  F.add_int_array b access.Reorder.Access.dat;
  F.add_string b machine.Cachesim.Machine.name;
  List.iter
    (fun p ->
      List.iter
        (fun t -> F.add_string b (Fmt.str "%a" Compose.Transform.pp t))
        (Compose.Plan.transforms p))
    space;
  F.value b

(* ------------------------------------------------------------------ *)
(* Scoring                                                             *)

type scored = {
  sc_plan : Compose.Plan.t;
  sc_locality_ns : float;  (* modeled cycles/step on the machine clock *)
  sc_makespan_ns : float option;  (* decide's modeled parallel ns/step *)
  sc_tier : string;  (* tier the makespan model picked ("serial" w/o pool) *)
  sc_score_ns : float;  (* effective modeled ns/step: min of the tiers *)
  sc_miss_ratio : float;
}

let plan_full_growth plan =
  List.exists
    (function
      | Compose.Transform.Sparse_tile { growth = Compose.Transform.Full; _ } ->
        true
      | _ -> false)
    (Compose.Plan.transforms plan)

(* Score one candidate: inspect, run the cache model, and — when the
   plan Full-growth-tiles and a multi-lane pool is live — feed the
   locality prediction into the engine's tier model as the serial
   step time. The candidate's score is the cheaper tier. *)
let score ?cache ?pool ?(trace_steps = 2) ?(batch = 8) ~machine plan kernel =
  let result = Experiment.inspect ?cache ?pool plan kernel in
  let cycles, _misses, _accesses, miss_ratio =
    Experiment.trace_steps result ~machine ~warmup:1 ~steps:trace_steps
  in
  let locality_ns = Cachesim.Machine.ns_of_cycles machine cycles in
  let makespan =
    match (pool, result.Compose.Inspector.schedule) with
    | Some pool, Some sched
      when Rtrt_par.Pool.size pool > 1 && plan_full_growth plan ->
      let k = result.Compose.Inspector.kernel in
      let tiles =
        Compose.Legality.tile_fns_of_schedule sched
          ~loop_sizes:k.Kernels.Kernel.loop_sizes
      in
      let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
      let par = Reorder.Tile_par.analyze ~chain ~tiles in
      let pe =
        k.Kernels.Kernel.plan_par ~pool sched
          ~level_of:par.Reorder.Tile_par.level_of
      in
      let d =
        pe.Kernels.Kernel.par_decide ~serial_ns_per_step:locality_ns ~batch
      in
      Some d
    | _ -> None
  in
  let scored =
    match makespan with
    | Some d ->
      {
        sc_plan = plan;
        sc_locality_ns = locality_ns;
        sc_makespan_ns = Some d.Rtrt_par.Exec.d_modeled_par_ns_per_step;
        sc_tier = Rtrt_par.Exec.tier_name d.Rtrt_par.Exec.d_tier;
        sc_score_ns =
          Float.min locality_ns d.Rtrt_par.Exec.d_modeled_par_ns_per_step;
        sc_miss_ratio = miss_ratio;
      }
    | None ->
      {
        sc_plan = plan;
        sc_locality_ns = locality_ns;
        sc_makespan_ns = None;
        sc_tier = "serial";
        sc_score_ns = locality_ns;
        sc_miss_ratio = miss_ratio;
      }
  in
  (scored, result)

(* ------------------------------------------------------------------ *)
(* The tuner                                                           *)

type t = {
  at_winner : Compose.Plan.t;
  at_winner_score_ns : float;
  at_scores : (string * float) list;  (* every candidate: name, ns/step *)
  at_details : scored list;  (* per-candidate detail; empty on a cached hit *)
  at_cached : bool;  (* winner served from the tuned store *)
  at_key_hex : string;
}

let g_candidates = Rtrt_obs.Metrics.gauge "autotune.candidates"
let g_winner_score = Rtrt_obs.Metrics.gauge "autotune.winner_score_ns"
let c_search = Rtrt_obs.Metrics.counter "autotune.search"
let c_served_cached = Rtrt_obs.Metrics.counter "autotune.served_cached"
let h_search = Rtrt_obs.Hist.hist "autotune.search"

let search ?cache ?pool ?trace_steps ?batch ~machine ~space kernel =
  Rtrt_obs.Span.with_ ~name:"autotune.search"
    ~attrs:
      [
        ("machine", J.String machine.Cachesim.Machine.name);
        ("candidates", J.Int (List.length space));
      ]
  @@ fun () ->
  let t0 = Rtrt_obs.Clock.now_ns () in
  let details =
    List.map
      (fun plan ->
        fst (score ?cache ?pool ?trace_steps ?batch ~machine plan kernel))
      space
  in
  let winner =
    match details with
    | [] -> invalid_arg "Autotune.search: empty candidate space"
    | first :: rest ->
      List.fold_left
        (fun best c -> if c.sc_score_ns < best.sc_score_ns then c else best)
        first rest
  in
  Rtrt_obs.Metrics.incr c_search;
  Rtrt_obs.Metrics.set g_candidates (float_of_int (List.length details));
  Rtrt_obs.Metrics.set g_winner_score winner.sc_score_ns;
  Rtrt_obs.Hist.record h_search (Rtrt_obs.Clock.now_ns () - t0);
  (winner, details)

(* Tune one (kernel, machine) cell. Candidates default to
   [candidates_for]; every candidate must pass [Plan.validate] (the
   default space is pruned by construction, a caller-supplied one is
   re-checked here). With [tuned], the search is skipped when the
   store already holds a winner for this (access pattern, machine,
   space) key, and a fresh search's winner is stored back. *)
let tune ?cache ?pool ?tuned ?trace_steps ?batch ?candidates ~machine kernel =
  let space =
    match candidates with
    | Some c -> c
    | None -> candidates_for ~machine kernel
  in
  if space = [] then invalid_arg "Autotune.tune: empty candidate space";
  List.iter
    (fun p ->
      match Compose.Plan.validate p with
      | Ok () -> ()
      | Error msg ->
        Fmt.invalid_arg "Autotune.tune: invalid candidate %s: %s"
          (Compose.Plan.name p) msg)
    space;
  let key = fingerprint ~machine ~space kernel in
  let key_hex = Rtrt_plancache.Fingerprint.to_hex key in
  let machine_name = machine.Cachesim.Machine.name in
  let cached_entry =
    Option.bind tuned (fun store ->
        Rtrt_plancache.Tuned.find store ~key ~machine:machine_name)
  in
  let of_entry (e : Rtrt_plancache.Tuned.entry) =
    match plan_of_string e.Rtrt_plancache.Tuned.winner_plan with
    | Ok plan ->
      Rtrt_obs.Metrics.incr c_served_cached;
      Some
        {
          at_winner = plan;
          at_winner_score_ns = e.Rtrt_plancache.Tuned.winner_score_ns;
          at_scores = e.Rtrt_plancache.Tuned.scores;
          at_details = [];
          at_cached = true;
          at_key_hex = key_hex;
        }
    | Error _ -> None (* corrupt payload: fall through to a fresh search *)
  in
  match Option.bind cached_entry of_entry with
  | Some t -> t
  | None ->
    let winner, details =
      search ?cache ?pool ?trace_steps ?batch ~machine ~space kernel
    in
    let scores =
      List.map
        (fun c -> (Compose.Plan.name c.sc_plan, c.sc_score_ns))
        details
    in
    (match tuned with
    | None -> ()
    | Some store ->
      Rtrt_plancache.Tuned.store store ~key
        {
          Rtrt_plancache.Tuned.winner = Compose.Plan.name winner.sc_plan;
          winner_plan = plan_to_string winner.sc_plan;
          winner_score_ns = winner.sc_score_ns;
          scores;
          machine = machine_name;
        });
    {
      at_winner = winner.sc_plan;
      at_winner_score_ns = winner.sc_score_ns;
      at_scores = scores;
      at_details = details;
      at_cached = false;
      at_key_hex = key_hex;
    }

(* ------------------------------------------------------------------ *)
(* The BENCH_AUTOTUNE table                                            *)

type row = {
  ab_bench : string;
  ab_dataset : string;
  ab_machine : string;
  ab_candidates : (string * float) list;
  ab_winner : string;
  ab_winner_score_ns : float;
  ab_best_named : string;
  ab_best_named_score_ns : float;
  (* winner score / best named score; <= 1.0 by construction since the
     named suite is a subset of the candidate space *)
  ab_winner_over_named_normalized : float;
  ab_winner_wall_seconds_per_step : float;
  ab_best_named_wall_seconds_per_step : float;
  (* named wall / winner wall; > 1.0 means the tuned plan also wins
     the measured comparison *)
  ab_winner_wall_speedup_over_named : float;
  ab_cached : bool;
}

type report = {
  rep_scale : int;
  rep_domains : int;
  rep_rows : row list;
  rep_profile : Rtrt_obs.Profile.phase list;
}

(* Best plan among the hand-named standard suite, read out of the
   score table (the suite is a subset of the candidate space, and
   shared transform lists keep the suite's plan names through the
   dedupe). *)
let best_named ~machine ~scores kernel =
  let named =
    List.filter_map
      (fun p ->
        Option.map
          (fun s -> (Compose.Plan.name p, s))
          (List.assoc_opt (Compose.Plan.name p) scores))
      (Figures.suite_for ~machine kernel)
  in
  match named with
  | [] -> invalid_arg "Autotune: no hand-named plan in the candidate space"
  | first :: rest ->
    List.fold_left
      (fun (bn, bs) (n, s) -> if s < bs then (n, s) else (bn, bs))
      first rest

let wall_of_plan ?cache ?pool ~wall_steps plan kernel =
  let result = Experiment.inspect ?cache ?pool plan kernel in
  (* Best-of-3: the table divides two short wall-clock windows. *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let s = Experiment.wall_clock_steps result ~steps:wall_steps in
    if s < !best then best := s
  done;
  !best

let measure ?(machines = [ Cachesim.Machine.power3; Cachesim.Machine.pentium4 ])
    ~(config : Figures.config) () =
  let cache = config.Figures.plan_cache in
  let tuned =
    Rtrt_plancache.Tuned.create
      ?dir:(Option.bind cache Rtrt_plancache.Cache.dir)
      ()
  in
  let rows, profile =
    Rtrt_obs.Profile.record ~name:"autotune" (fun () ->
        Figures.with_config_pool ~config @@ fun pool ->
        List.concat_map
          (fun (bench, datasets) ->
            List.concat_map
              (fun ds_name ->
                let dataset = Figures.dataset_of ~config ds_name in
                List.map
                  (fun machine ->
                    let kernel = Figures.kernel_of ~name:bench dataset in
                    let t =
                      tune ?cache ?pool ~tuned
                        ~trace_steps:config.Figures.trace_steps ~machine
                        kernel
                    in
                    let named_name, named_score =
                      best_named ~machine ~scores:t.at_scores kernel
                    in
                    let wall p =
                      wall_of_plan ?cache ?pool
                        ~wall_steps:config.Figures.wall_steps p kernel
                    in
                    let winner_wall = wall t.at_winner in
                    let named_plan =
                      List.find
                        (fun p -> Compose.Plan.name p = named_name)
                        (Figures.suite_for ~machine kernel)
                    in
                    let named_wall = wall named_plan in
                    {
                      ab_bench = bench;
                      ab_dataset = ds_name;
                      ab_machine = machine.Cachesim.Machine.name;
                      ab_candidates = t.at_scores;
                      ab_winner = Compose.Plan.name t.at_winner;
                      ab_winner_score_ns = t.at_winner_score_ns;
                      ab_best_named = named_name;
                      ab_best_named_score_ns = named_score;
                      ab_winner_over_named_normalized =
                        (if named_score > 0.0 then
                           t.at_winner_score_ns /. named_score
                         else 1.0);
                      ab_winner_wall_seconds_per_step = winner_wall;
                      ab_best_named_wall_seconds_per_step = named_wall;
                      ab_winner_wall_speedup_over_named =
                        (if winner_wall > 0.0 then named_wall /. winner_wall
                         else 1.0);
                      ab_cached = t.at_cached;
                    })
                  machines)
              datasets)
          Figures.pairings)
  in
  {
    rep_scale = config.Figures.scale;
    rep_domains = config.Figures.domains;
    rep_rows = rows;
    rep_profile = [ profile ];
  }

let json_of_report r =
  J.Obj
    [
      ("scale", J.Int r.rep_scale);
      ("domains", J.Int r.rep_domains);
      ( "rows",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("bench", J.String row.ab_bench);
                   ("dataset", J.String row.ab_dataset);
                   (* labeled "name" so bench-diff's flattener keys the
                      row as bench/dataset/machine *)
                   ("name", J.String row.ab_machine);
                   ( "candidates",
                     J.List
                       (List.map
                          (fun (name, score) ->
                            J.Obj
                              [
                                ("name", J.String name);
                                ("score_ns_per_step", J.Float score);
                              ])
                          row.ab_candidates) );
                   ("winner", J.String row.ab_winner);
                   ("winner_score_ns_per_step", J.Float row.ab_winner_score_ns);
                   ("best_named", J.String row.ab_best_named);
                   ( "best_named_score_ns_per_step",
                     J.Float row.ab_best_named_score_ns );
                   ( "winner_over_named_normalized",
                     J.Float row.ab_winner_over_named_normalized );
                   ( "winner_wall_seconds_per_step",
                     J.Float row.ab_winner_wall_seconds_per_step );
                   ( "best_named_wall_seconds_per_step",
                     J.Float row.ab_best_named_wall_seconds_per_step );
                   ( "winner_wall_speedup_over_named",
                     J.Float row.ab_winner_wall_speedup_over_named );
                   ("served_from_tuned_cache", J.Bool row.ab_cached);
                 ])
             r.rep_rows) );
      ("profile", Rtrt_obs.Profile.json_of_phases r.rep_profile);
    ]

let write_json ~path r =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (J.to_string (json_of_report r));
      output_char oc '\n')

let pp_scored ppf c =
  Fmt.pf ppf "%-12s %10.1f ns/step [%s]%a"
    (Compose.Plan.name c.sc_plan)
    c.sc_score_ns c.sc_tier
    (fun ppf -> function
      | Some m -> Fmt.pf ppf " (par model %.1f ns/step)" m
      | None -> ())
    c.sc_makespan_ns

let pp_result ppf t =
  Fmt.pf ppf "winner %s at %.1f ns/step%s (%d candidates, key %s)@."
    (Compose.Plan.name t.at_winner)
    t.at_winner_score_ns
    (if t.at_cached then " [tuned cache]" else "")
    (List.length t.at_scores) t.at_key_hex;
  List.iter (fun c -> Fmt.pf ppf "  %a@." pp_scored c) t.at_details

let pp_report ppf r =
  Fmt.pf ppf "scale %d, domains %d@." r.rep_scale r.rep_domains;
  List.iter
    (fun row ->
      Fmt.pf ppf
        "  %-8s %-6s %-9s winner %-12s %9.1f ns/step  named %-12s %9.1f  \
         (model ratio %.3f, wall speedup %.2fx)%s@."
        row.ab_bench row.ab_dataset row.ab_machine row.ab_winner
        row.ab_winner_score_ns row.ab_best_named row.ab_best_named_score_ns
        row.ab_winner_over_named_normalized
        row.ab_winner_wall_speedup_over_named
        (if row.ab_cached then " [cached]" else ""))
    r.rep_rows
