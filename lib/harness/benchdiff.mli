(** Bench-regression differ: compare two [BENCH_*.json] files
    metric-by-metric with a configurable relative tolerance. Backs
    [rtrt bench-diff] and the CI regression gate.

    Both files are flattened to (path, number) rows; list elements are
    labeled by their identifying string fields
    ([bench]/[dataset]/[plan]/[config]/[name]) so rows line up across
    reorderings. Paths classify by key-name heuristics into
    lower-is-better, higher-is-better, or informational. *)

type direction = Lower_better | Higher_better | Info

type verdict =
  | Improved
  | Regressed
  | Equal      (** within tolerance (or exactly equal) *)
  | Neutral    (** informational metric: never gates *)
  | Missing    (** present in old, absent in new *)
  | Added      (** absent in old, present in new *)

type row = {
  r_path : string;
  r_old : float option;
  r_new : float option;
  r_delta_pct : float option;  (** (new - old) / |old| * 100 *)
  r_dir : direction;
  r_verdict : verdict;
}

(** Direction heuristic for a flattened metric path (exposed for
    tests). *)
val direction_of : string -> direction

(** Whether a path is dimensionless/modeled — stable across machines,
    so CI can gate on it ([ratios_only]). *)
val ratio_like : string -> bool

(** [compare_json ~tolerance ~ratios_only old new] — rows sorted by
    path. [tolerance] is relative (default 0.1 = 10%); with
    [ratios_only] (default false) only {!ratio_like} paths gate, the
    rest become informational. *)
val compare_json :
  ?tolerance:float ->
  ?ratios_only:bool ->
  Rtrt_obs.Json.t ->
  Rtrt_obs.Json.t ->
  row list

(** Parse both files (raising [Failure] on unreadable/invalid JSON)
    and compare. *)
val compare_files :
  ?tolerance:float ->
  ?ratios_only:bool ->
  old_path:string ->
  new_path:string ->
  unit ->
  row list

val regressions : row list -> row list
val has_regression : row list -> bool

(** Table of the interesting rows plus a summary line; [all] prints
    every row including unchanged informational ones. *)
val pp_table : ?all:bool -> Format.formatter -> row list -> unit
