(* The nbf benchmark (non-bonded force kernel, CHARMM-style, from the
   Han-Tseng suite): 6 node arrays (48 bytes per node) and a heavier
   Lennard-Jones-like force expression than moldyn's.

   Loop chain per time step:
     loop 0 (i): position integration  x += c * fx   (writes x, reads fx)
     loop 1 (j): pairwise LJ forces    fx[l] += g, fx[r] -= g *)

type state = {
  n : int;
  m : int;
  left : int array;
  right : int array;
  x : float array;
  y : float array;
  z : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  (* Endpoint-scan memo: one successful scan validates every later
     executor run on this state (left/right are replaced, never
     mutated in place, by transformations). *)
  mutable endpoints_ok : bool;
}

let dt = 0.0001

let node_array_names = [ "x"; "y"; "z"; "fx"; "fy"; "fz" ]
let inter_array_names = [ "left"; "right" ]

let force_j st j =
  let l = st.left.(j) and r = st.right.(j) in
  let dx = st.x.(l) -. st.x.(r) in
  let dy = st.y.(l) -. st.y.(r) in
  let dz = st.z.(l) -. st.z.(r) in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
  let ir2 = 1.0 /. r2 in
  let ir6 = ir2 *. ir2 *. ir2 in
  (* Lennard-Jones 12-6 shape. *)
  let g = ((2.0 *. ir6 *. ir6) -. ir6) *. ir2 in
  st.fx.(l) <- st.fx.(l) +. (g *. dx);
  st.fx.(r) <- st.fx.(r) -. (g *. dx);
  st.fy.(l) <- st.fy.(l) +. (g *. dy);
  st.fy.(r) <- st.fy.(r) -. (g *. dy);
  st.fz.(l) <- st.fz.(l) +. (g *. dz);
  st.fz.(r) <- st.fz.(r) -. (g *. dz)

let update_i st i =
  st.x.(i) <- st.x.(i) +. (dt *. st.fx.(i));
  st.y.(i) <- st.y.(i) +. (dt *. st.fy.(i));
  st.z.(i) <- st.z.(i) +. (dt *. st.fz.(i))

let run_plain st ~steps =
  for _s = 1 to steps do
    for i = 0 to st.n - 1 do
      update_i st i
    done;
    for j = 0 to st.m - 1 do
      force_j st j
    done
  done

let check_endpoints ~who st =
  for j = 0 to st.m - 1 do
    let l = st.left.(j) and r = st.right.(j) in
    if l < 0 || l >= st.n || r < 0 || r >= st.n then
      invalid_arg (who ^ ": interaction endpoint out of range")
  done

let check_endpoints_cached st ~who =
  if st.endpoints_ok then Kernel.endpoint_scan_skipped ()
  else begin
    check_endpoints ~who st;
    st.endpoints_ok <- true
  end

(* Unsafe twins of the loop bodies, sound only after [check_fits] and
   the endpoint scan have validated every index source. *)
let update_i_u st i =
  Array.unsafe_set st.x i
    (Array.unsafe_get st.x i +. (dt *. Array.unsafe_get st.fx i));
  Array.unsafe_set st.y i
    (Array.unsafe_get st.y i +. (dt *. Array.unsafe_get st.fy i));
  Array.unsafe_set st.z i
    (Array.unsafe_get st.z i +. (dt *. Array.unsafe_get st.fz i))

let force_j_u st j =
  let l = Array.unsafe_get st.left j and r = Array.unsafe_get st.right j in
  let dx = Array.unsafe_get st.x l -. Array.unsafe_get st.x r in
  let dy = Array.unsafe_get st.y l -. Array.unsafe_get st.y r in
  let dz = Array.unsafe_get st.z l -. Array.unsafe_get st.z r in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
  let ir2 = 1.0 /. r2 in
  let ir6 = ir2 *. ir2 *. ir2 in
  let g = ((2.0 *. ir6 *. ir6) -. ir6) *. ir2 in
  Array.unsafe_set st.fx l (Array.unsafe_get st.fx l +. (g *. dx));
  Array.unsafe_set st.fx r (Array.unsafe_get st.fx r -. (g *. dx));
  Array.unsafe_set st.fy l (Array.unsafe_get st.fy l +. (g *. dy));
  Array.unsafe_set st.fy r (Array.unsafe_get st.fy r -. (g *. dy));
  Array.unsafe_set st.fz l (Array.unsafe_get st.fz l +. (g *. dz));
  Array.unsafe_set st.fz r (Array.unsafe_get st.fz r -. (g *. dz))

(* Chain position c executes loop (c mod 2): a 2-loop schedule is one
   time step, a 2S-loop schedule is S time steps (time-step tiling).
   Validated-once-then-unsafe: [check_fits] + the endpoint scan, then
   the flat schedule streams with [Array.unsafe_get]. *)
let run_tiled_st st (sched : Reorder.Schedule.t) ~steps =
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m |]) then
    invalid_arg "Nbf.run_tiled: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Nbf.run_tiled";
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let lo = Array.unsafe_get rp r and hi = Array.unsafe_get rp (r + 1) in
        if c mod 2 = 0 then
          for idx = lo to hi - 1 do
            update_i_u st (Array.unsafe_get fl idx)
          done
        else
          for idx = lo to hi - 1 do
            force_j_u st (Array.unsafe_get fl idx)
          done
      done
    done
  done

(* Tier A shape-specialized twin of [run_tiled_st]: streams each row's
   run-length index as [for i = lo to hi] ranges; bitwise identical by
   construction (see Reorder.Shape). *)
let run_shaped_st st (sched : Reorder.Schedule.t) (shape : Reorder.Shape.t)
    ~steps =
  if not (Reorder.Shape.for_schedule shape sched) then
    invalid_arg "Nbf.run_shaped: shape built from a different schedule";
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m |]) then
    invalid_arg "Nbf.run_shaped: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Nbf.run_shaped";
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rq = Reorder.Shape.run_ptr shape in
  let rlo = Reorder.Shape.run_lo shape in
  let rln = Reorder.Shape.run_len shape in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let klo = Array.unsafe_get rq r and khi = Array.unsafe_get rq (r + 1) in
        if c mod 2 = 0 then
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for i = lo to hi do
              update_i_u st i
            done
          done
        else
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for j = lo to hi do
              force_j_u st j
            done
          done
      done
    done
  done

(* Parallel tiled executor: the force positions (c mod 2 = 1) are
   reductions over fx/fy/fz. The stashed contribution g*dx is a pure
   function of x/y/z, read-only during the position, so the ordered
   apply reproduces the serial float operations bit for bit. *)
let plan_par_st st ~pool sched ~level_of =
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m |]) then
    invalid_arg "Nbf.plan_par: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Nbf.plan_par";
  let gx = Array.make st.m 0.0 in
  let gy = Array.make st.m 0.0 in
  let gz = Array.make st.m 0.0 in
  let exec =
    Rtrt_par.Exec.make ~pool ~sched ~level_of
      ~is_reduction:(fun c -> c mod 2 = 1)
      ~left:st.left ~right:st.right ~n_data:st.n
  in
  let body ~pos items lo hi =
    if pos mod 2 = 0 then
      for idx = lo to hi - 1 do
        update_i_u st (Array.unsafe_get items idx)
      done
    else
      for idx = lo to hi - 1 do
        force_j_u st (Array.unsafe_get items idx)
      done
  in
  let stash ~pos:_ items lo hi =
    for idx = lo to hi - 1 do
      let j = Array.unsafe_get items idx in
      let l = Array.unsafe_get st.left j and r = Array.unsafe_get st.right j in
      let dx = Array.unsafe_get st.x l -. Array.unsafe_get st.x r in
      let dy = Array.unsafe_get st.y l -. Array.unsafe_get st.y r in
      let dz = Array.unsafe_get st.z l -. Array.unsafe_get st.z r in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
      let ir2 = 1.0 /. r2 in
      let ir6 = ir2 *. ir2 *. ir2 in
      let g = ((2.0 *. ir6 *. ir6) -. ir6) *. ir2 in
      Array.unsafe_set gx j (g *. dx);
      Array.unsafe_set gy j (g *. dy);
      Array.unsafe_set gz j (g *. dz)
    done
  in
  let apply ~pos:_ ~datum refs lo hi =
    let fx = st.fx and fy = st.fy and fz = st.fz in
    for k = lo to hi - 1 do
      let rv = refs.(k) in
      let j = rv lsr 1 in
      if rv land 1 = 0 then begin
        fx.(datum) <- fx.(datum) +. gx.(j);
        fy.(datum) <- fy.(datum) +. gy.(j);
        fz.(datum) <- fz.(datum) +. gz.(j)
      end
      else begin
        fx.(datum) <- fx.(datum) -. gx.(j);
        fy.(datum) <- fy.(datum) -. gy.(j);
        fz.(datum) <- fz.(datum) -. gz.(j)
      end
    done
  in
  {
    Kernel.par_sched = Rtrt_par.Exec.schedule exec;
    par_run =
      (fun ?batch ?tier ?profile ~steps () ->
        Rtrt_par.Exec.run ?batch ?tier ?profile exec ~steps ~body ~stash
          ~apply);
    par_decide =
      (fun ~serial_ns_per_step ~batch ->
        Rtrt_par.Exec.decide exec ~serial_ns_per_step ~batch);
  }

let trace_i ~touch i =
  touch 0 i; touch 1 i; touch 2 i;
  touch 3 i; touch 4 i; touch 5 i

let trace_j ~touch ~touch_inter left right j =
  touch_inter 0 j;
  touch_inter 1 j;
  let l = left.(j) and r = right.(j) in
  touch 0 l; touch 1 l; touch 2 l;
  touch 0 r; touch 1 r; touch 2 r;
  touch 3 l; touch 4 l; touch 5 l;
  touch 3 r; touch 4 r; touch 5 r

let make_touch ~layout ~access names =
  let addr = Array.of_list (List.map (Cachesim.Layout.addresser layout) names) in
  fun a i -> access (addr.(a) i)

let run_traced_st st ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  for _s = 1 to steps do
    for i = 0 to st.n - 1 do
      trace_i ~touch i
    done;
    for j = 0 to st.m - 1 do
      trace_j ~touch ~touch_inter st.left st.right j
    done
  done

(* Traced twin: same flat walk, every access bounds-checked. *)
let run_tiled_traced_st st sched ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let lo = rp.(r) and hi = rp.(r + 1) in
        if c mod 2 = 0 then
          for i = lo to hi - 1 do trace_i ~touch fl.(i) done
        else
          for i = lo to hi - 1 do
            trace_j ~touch ~touch_inter st.left st.right fl.(i)
          done
      done
    done
  done

let rec make st =
  let access = Reorder.Access.of_pairs ~n_data:st.n st.left st.right in
  let chain_of_access acc =
    Reorder.Sparse_tile.make_chain ~loop_sizes:[| st.n; st.m |] ~conn:[| acc |]
  in
  let apply_data_perm sigma =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.remap_values sigma st.left;
        right = Reorder.Perm.remap_values sigma st.right;
        x = Reorder.Perm.apply_to_float_array sigma st.x;
        y = Reorder.Perm.apply_to_float_array sigma st.y;
        z = Reorder.Perm.apply_to_float_array sigma st.z;
        fx = Reorder.Perm.apply_to_float_array sigma st.fx;
        fy = Reorder.Perm.apply_to_float_array sigma st.fy;
        fz = Reorder.Perm.apply_to_float_array sigma st.fz;
      }
  in
  let apply_iter_perm delta =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.apply_to_array delta st.left;
        right = Reorder.Perm.apply_to_array delta st.right;
      }
  in
  {
    Kernel.name = "nbf";
    n_nodes = st.n;
    n_inter = st.m;
    node_array_names;
    inter_array_names;
    access;
    loop_sizes = [| st.n; st.m |];
    seed_loop = 1;
    chain_of_access;
    wrap_conn_of_access = Reorder.Access.transpose;
    symmetric_backward = [];
    apply_data_perm;
    apply_iter_perm;
    run = (fun ~steps -> run_plain st ~steps);
    run_tiled = (fun sched ~steps -> run_tiled_st st sched ~steps);
    run_tiled_shaped =
      (fun sched shape ~steps -> run_shaped_st st sched shape ~steps);
    exec_arrays =
      (fun () ->
        ( [| st.left; st.right |],
          [| st.x; st.y; st.z; st.fx; st.fy; st.fz |] ));
    run_traced =
      (fun ~steps ~layout ~access -> run_traced_st st ~steps ~layout ~access);
    run_tiled_traced =
      (fun sched ~steps ~layout ~access ->
        run_tiled_traced_st st sched ~steps ~layout ~access);
    plan_par =
      (fun ~pool sched ~level_of -> plan_par_st st ~pool sched ~level_of);
    snapshot =
      (fun () ->
        [
          ("x", Array.copy st.x);
          ("y", Array.copy st.y);
          ("z", Array.copy st.z);
          ("fx", Array.copy st.fx);
          ("fy", Array.copy st.fy);
          ("fz", Array.copy st.fz);
        ]);
    copy =
      (fun () ->
        make
          {
            st with
            endpoints_ok = false;
            left = Array.copy st.left;
            right = Array.copy st.right;
            x = Array.copy st.x;
            y = Array.copy st.y;
            z = Array.copy st.z;
            fx = Array.copy st.fx;
            fy = Array.copy st.fy;
            fz = Array.copy st.fz;
          });
  }

let init_value ~salt i =
  let h = ((i + 1) * 2654435761) land 0xFFFFFF in
  float_of_int ((h lxor salt) land 0xFFFF) /. 65536.0

let of_dataset (d : Datagen.Dataset.t) =
  let n = d.Datagen.Dataset.n_nodes in
  let m = Datagen.Dataset.n_interactions d in
  make
    {
      n;
      m;
      left = Array.copy d.Datagen.Dataset.left;
      right = Array.copy d.Datagen.Dataset.right;
      x = Array.init n (init_value ~salt:11);
      y = Array.init n (init_value ~salt:12);
      z = Array.init n (init_value ~salt:13);
      fx = Array.make n 0.0;
      fy = Array.make n 0.0;
      fz = Array.make n 0.0;
      endpoints_ok = false;
    }
