(** Gauss-Seidel smoothing over an irregular mesh — the computation
    sparse tiling was originally developed for (Section 2.3). Tiles
    grow across convergence sweeps; the tiled executor is bitwise
    identical to the plain smoother when {!check_constraints} reports
    no violations. *)

type t = {
  graph : Irgraph.Csr.t;
  u : float array;
  f : float array;
}

val create : graph:Irgraph.Csr.t -> f:float array -> t
val copy : t -> t

(** One in-place update of node [v]. *)
val update : t -> int -> unit

(** Plain smoother: [sweeps] sweeps in numbering order. *)
val run_plain : t -> sweeps:int -> unit

(** A tile function across sweeps: [theta.(s).(v)] is node [v]'s tile
    at sweep [s]. *)
type tiling = {
  n_tiles : int;
  sweeps : int;
  theta : int array array;
}

(** Grow a tiling from a seed partitioning at [seed_sweep]
    (min-backward / max-forward over closed neighborhoods, then
    within-sweep repair). The seed should be monotone among adjacent
    nodes — renumber with {!renumber_by_partition} first. *)
val grow :
  Irgraph.Csr.t ->
  seed:Reorder.Sparse_tile.tile_fn ->
  seed_sweep:int ->
  sweeps:int ->
  tiling

(** All violations of the Gauss-Seidel dependence constraints C1/C2/C3
    (see the implementation header); empty means the tiled execution
    is exactly the plain smoother. *)
val check_constraints :
  Irgraph.Csr.t ->
  tiling ->
  ([ `C1 | `C2 | `C3 ] * int * int * int) list

(** The tiling as a flat executor schedule (sweep [s] is chain
    position [s]; member nodes ascending within each row). *)
val schedule : tiling -> Reorder.Schedule.t

(** Execute the tiling's sweeps, tiles atomically in order. *)
val run_tiled : t -> tiling -> unit

(** Walk a flat schedule directly (tiles, then chain positions, then
    member nodes in row order); [run_tiled] is [run_sched] of
    [schedule tiling]. *)
val run_sched : t -> Reorder.Schedule.t -> unit

(** Tier A shape-specialized twin of {!run_sched}: streams the
    schedule's run-length index; bitwise identical. The shape must be
    {!Reorder.Shape.analyze} of this exact schedule value. *)
val run_sched_shaped : t -> Reorder.Schedule.t -> Reorder.Shape.t -> unit

(** The graph's CSR arrays [(ptr, adj)] with adjacency in
    [iter_neighbors] order, for the Tier B executor emitter. *)
val csr_arrays : Irgraph.Csr.t -> int array * int array

(** Execute [total_sweeps] as consecutive slabs of [tiling.sweeps]
    (temporal blocking); raises if not a multiple. *)
val run_tiled_slabbed : t -> tiling -> total_sweeps:int -> unit

(** Levelized tile dependence DAG of the tiling (C1/C2/C3 edges);
    same-level tiles are fully independent. Raises [Invalid_argument]
    on an illegal tiling. *)
val tile_dag : Irgraph.Csr.t -> tiling -> Reorder.Tile_par.t

(** Execute the tiling with same-level tiles concurrent; bitwise equal
    to {!run_tiled}. *)
val run_tiled_par :
  pool:Rtrt_par.Pool.t -> t -> tiling -> Reorder.Tile_par.t -> unit

(** Dependences of one sweep for wavefront scheduling: each node
    depends on its lower-numbered neighbors. *)
val wavefront_preds : Irgraph.Csr.t -> Reorder.Access.t

(** [sweeps] sweeps with each wavefront level's nodes updated
    concurrently; bitwise equal to {!run_plain}. *)
val run_wavefront_par :
  pool:Rtrt_par.Pool.t -> t -> Reorder.Wavefront.t -> sweeps:int -> unit

val run_traced :
  t -> sweeps:int -> layout:Cachesim.Layout.t -> access:(int -> unit) -> unit

val run_tiled_traced :
  ?slabs:int ->
  t ->
  tiling ->
  layout:Cachesim.Layout.t ->
  access:(int -> unit) ->
  unit

(** Grouped u/f layout for the cache model. *)
val layout : t -> Cachesim.Layout.t

(** Renumber the mesh so the partition's blocks are consecutive;
    returns the permuted graph and right-hand side, the permutation,
    and the seed tile function (monotone by construction). *)
val renumber_by_partition :
  Irgraph.Csr.t ->
  f:float array ->
  partition:Irgraph.Partition.t ->
  Irgraph.Csr.t * float array * Reorder.Perm.t * Reorder.Sparse_tile.tile_fn
