(* The uniform executor interface over the three benchmarks (moldyn,
   nbf, irreg).

   A kernel instance owns its data arrays and index arrays. The
   composition framework transforms it through [apply_data_perm]
   (a data reordering R: permute every node array, remap index-array
   values — and implicitly reorder the identity-mapped node loops) and
   [apply_iter_perm] (an iteration reordering T of the interaction
   loop: permute the index arrays and any per-interaction data).

   Executors come in four flavors: plain (Figure 13-style: the code is
   unchanged, only the arrays moved) and sparse-tiled (Figure 14-style:
   tiles outermost), each with a traced twin that reports every memory
   reference to a cache model. The traced twins duplicate the loop
   bodies deliberately: the plain executors must stay allocation- and
   closure-free for wall-clock measurements. *)

(* A parallel tiled executor instance: the level-major renumbered
   schedule it executes (the serial twin for comparison) plus the run
   function, built by [plan_par] over an Exec engine. [par_run] takes
   the engine's batching/tier/profiling knobs; [par_decide] evaluates
   the auto-fallback tier model against a measured serial step time. *)
type par_exec = {
  par_sched : Reorder.Schedule.t;
  par_run :
    ?batch:int ->
    ?tier:Rtrt_par.Exec.tier ->
    ?profile:bool ->
    steps:int ->
    unit ->
    unit;
  par_decide :
    serial_ns_per_step:float -> batch:int -> Rtrt_par.Exec.decision;
}

type t = {
  name : string;
  n_nodes : int;
  n_inter : int;
  (* Node arrays in layout order (grouped for inter-array regrouping);
     lengths all n_nodes. *)
  node_array_names : string list;
  (* Per-interaction arrays (index arrays and e.g. edge weights). *)
  inter_array_names : string list;
  (* The interaction loop's access to the node space (current). *)
  access : Reorder.Access.t;
  (* Loop chain for sparse tiling, with the interaction loop's position.
     [chain_of_access] builds the chain from any (possibly transformed)
     access so composed inspectors can work on pending reorderings. *)
  loop_sizes : int array;
  seed_loop : int;
  chain_of_access : Reorder.Access.t -> Reorder.Sparse_tile.chain;
  (* Cross-time-step connectivity: for each iteration of the chain's
     FIRST loop at step s+1, the iterations of the LAST loop at step s
     it shares data with. Lets sparse tiling grow across the outer
     time-stepping loop (Section 2.3: "across an outer loop"). *)
  wrap_conn_of_access : Reorder.Access.t -> Reorder.Access.t;
  (* [(backward_loop, conn_index)] pairs recording that the successor
     connectivity needed to grow loop [backward_loop] backward equals
     [chain.conn.(conn_index)] — the paper's symmetric-dependence
     observation (Section 6), letting the inspector traverse one set. *)
  symmetric_backward : (int * int) list;
  apply_data_perm : Reorder.Perm.t -> t;
  apply_iter_perm : Reorder.Perm.t -> t;
  (* Executors; [run*] mutate the kernel's arrays in place. *)
  run : steps:int -> unit;
  run_tiled : Reorder.Schedule.t -> steps:int -> unit;
  (* Tier A specialized executor: same walk as [run_tiled] but streams
     the schedule's run-length index (lo..hi ranges) instead of loading
     every iteration id; bitwise identical by construction. The shape
     must have been built (Reorder.Shape.analyze) from this exact
     schedule value. *)
  run_tiled_shaped :
    Reorder.Schedule.t -> Reorder.Shape.t -> steps:int -> unit;
  (* Tier B handshake: the kernel's index arrays and float arrays in
     the executor-emitter's documented order (Compose.Specialize);
     the arrays themselves, not copies. *)
  exec_arrays : unit -> int array array * float array array;
  run_traced :
    steps:int -> layout:Cachesim.Layout.t -> access:(int -> unit) -> unit;
  run_tiled_traced :
    Reorder.Schedule.t ->
    steps:int ->
    layout:Cachesim.Layout.t ->
    access:(int -> unit) ->
    unit;
  (* Parallel executor over a tiled schedule; [par_run] is bitwise
     identical to [run_tiled] on the renumbered [par_sched]. *)
  plan_par :
    pool:Rtrt_par.Pool.t ->
    Reorder.Schedule.t ->
    level_of:int array ->
    par_exec;
  (* Current node arrays, for correctness comparison. *)
  snapshot : unit -> (string * float array) list;
  (* Deep copy (fresh arrays, same values). *)
  copy : unit -> t;
}

(* Endpoint scans (each kernel's index-array range validation) are
   memoized per kernel state; replays of a cache-hit schedule on the
   same kernel skip the O(m) scan and count it here. *)
let c_endpoint_skips = Rtrt_obs.Metrics.counter "plancache.endpoint_scan_skips"
let endpoint_scan_skipped () = Rtrt_obs.Metrics.incr c_endpoint_skips

(* The memory layout used by the paper's experiments: inter-array data
   regrouping over the node arrays, index/interaction arrays
   separate. *)
let layout k =
  let node_group = List.map (fun n -> (n, k.n_nodes)) k.node_array_names in
  let inter_group = List.map (fun n -> (n, k.n_inter)) k.inter_array_names in
  Cachesim.Layout.grouped ~groups:(node_group :: List.map (fun a -> [ a ]) inter_group) ()

(* Layout without regrouping (each array separate) for the regrouping
   ablation. *)
let layout_separate k =
  let node_arrays = List.map (fun n -> (n, k.n_nodes)) k.node_array_names in
  let inter_arrays = List.map (fun n -> (n, k.n_inter)) k.inter_array_names in
  Cachesim.Layout.separate (node_arrays @ inter_arrays)

(* Bytes of node data per node (the paper quotes 72 B for moldyn). *)
let bytes_per_node k = 8 * List.length k.node_array_names

(* Relative comparison of two snapshots; reductions are reassociated by
   the transformations, so exact equality is not expected. *)
let snapshots_close ?(rtol = 1e-9) s1 s2 =
  List.for_all2
    (fun (n1, a1) (n2, a2) ->
      String.equal n1 n2
      && Array.length a1 = Array.length a2
      && Array.for_all2
           (fun x y ->
             let scale = max (abs_float x) (abs_float y) in
             abs_float (x -. y) <= rtol *. max scale 1.0)
           a1 a2)
    s1 s2

(* Bitwise equality via IEEE bit patterns, so NaN payloads and signed
   zeros also have to match — the standard parallel executions claim. *)
let snapshots_equal_bits s1 s2 =
  List.length s1 = List.length s2
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         String.equal n1 n2
         && Array.length a1 = Array.length a2
         && Array.for_all2
              (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
              a1 a2)
       s1 s2

(* Un-permute a snapshot taken after a data reordering [sigma] back to
   original numbering, for comparison against an untransformed run. *)
let unpermute_snapshot sigma s =
  List.map
    (fun (name, a) ->
      (name, Reorder.Perm.apply_to_float_array (Reorder.Perm.invert sigma) a))
    s
