(* A CG-style dependent-reduction kernel (after Yang et al.,
   "Simplifying Dependent Reductions in the Polyhedral Model"): each
   step applies the sparse operator and folds a dot product whose
   value feeds the next step's vector updates.

   Loop chain per step over nodes (n) and interactions (m):
     S1 (i loop): diagonal SpMV        q[i]  = diag[i] * p[i]
     S2 (j loop): off-diagonal scatter q[l] += w*p[r], q[r] += w*p[l]
     S3 (k loop): dot partials + update
                  dot[k] = p[k]*q[k]
                  x[k] += alpha*p[k];  r[k] -= alpha*q[k]
                  p[k]  = r[k] + beta*p[k]
     epilogue (scalar, serial): pap = fold of dot[k] in execution
                  order; alpha = rho / (1 + |pap|)

   The dot product is the dependent reduction: its partials are
   produced inside the tiles (S3), but the scalar it feeds (alpha)
   is consumed by every tile of the *next* step, so the reduction
   genuinely crosses tile boundaries. Executors therefore fold the
   per-node partials serially after each whole schedule walk, in
   schedule order — the same float additions in the same order for the
   interpreted, shaped, and parallel executors, which keeps all three
   bitwise identical on a given schedule. (Like every reduction here,
   *different* schedules reassociate the folds, so cross-plan
   comparisons use [snapshots_close].)

   Because alpha must be refreshed between consecutive chain walks,
   time-step sparse tiling is illegal for this kernel: the tiled
   executors require a schedule whose loop count is exactly the 3-loop
   chain and raise otherwise. *)

type state = {
  n : int;
  m : int;
  left : int array;
  right : int array;
  w : float array; (* per-interaction off-diagonal weight *)
  p : float array;
  q : float array;
  x : float array;
  r : float array;
  diag : float array;
  dot : float array; (* per-node dot-product partial, S3's stash *)
  mutable alpha : float;
  mutable endpoints_ok : bool;
}

let beta = 0.5
let rho = 0.25

let node_array_names = [ "p"; "q"; "x"; "r"; "diag"; "dot" ]
let inter_array_names = [ "left"; "right"; "w" ]

(* The serial scalar epilogue shared by every executor: fold the dot
   partials in the given order and refresh alpha. *)
let fold_alpha st pap = st.alpha <- rho /. (1.0 +. Float.abs pap)

let run_plain st ~steps =
  let n = st.n and m = st.m in
  let left = st.left and right = st.right and w = st.w in
  let p = st.p and q = st.q and x = st.x and r = st.r in
  let diag = st.diag and dot = st.dot in
  for _s = 1 to steps do
    let alpha = st.alpha in
    for i = 0 to n - 1 do
      q.(i) <- diag.(i) *. p.(i)
    done;
    for j = 0 to m - 1 do
      let l = left.(j) and rr = right.(j) in
      q.(l) <- q.(l) +. (w.(j) *. p.(rr));
      q.(rr) <- q.(rr) +. (w.(j) *. p.(l))
    done;
    for k = 0 to n - 1 do
      dot.(k) <- p.(k) *. q.(k);
      x.(k) <- x.(k) +. (alpha *. p.(k));
      r.(k) <- r.(k) -. (alpha *. q.(k));
      p.(k) <- r.(k) +. (beta *. p.(k))
    done;
    let pap = ref 0.0 in
    for k = 0 to n - 1 do
      pap := !pap +. dot.(k)
    done;
    fold_alpha st !pap
  done

let check_chain ~who (sched : Reorder.Schedule.t) =
  if Reorder.Schedule.n_loops sched <> 3 then
    invalid_arg
      (who
     ^ ": the dependent reduction needs its scalar refreshed between \
        chain walks, so time-step tiling (n_loops > 3) is illegal")

let check_endpoints_cached st ~who =
  if st.endpoints_ok then Kernel.endpoint_scan_skipped ()
  else begin
    if Array.length st.left <> st.m || Array.length st.right <> st.m then
      invalid_arg (who ^ ": endpoint array size mismatch");
    for j = 0 to st.m - 1 do
      let l = st.left.(j) and r = st.right.(j) in
      if l < 0 || l >= st.n || r < 0 || r >= st.n then
        invalid_arg (who ^ ": interaction endpoint out of range")
    done;
    st.endpoints_ok <- true
  end

(* Fold the dot partials in tiled execution order (the S3 rows of the
   schedule, tile-major): the serial epilogue every tiled executor —
   interpreted, shaped, parallel — shares bitwise. *)
let pap_of_schedule st (sched : Reorder.Schedule.t) =
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  let dot = st.dot in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let pap = ref 0.0 in
  for t = 0 to n_tiles - 1 do
    let r = (t * 3) + 2 in
    let lo = Array.unsafe_get rp r and hi = Array.unsafe_get rp (r + 1) in
    for idx = lo to hi - 1 do
      pap := !pap +. Array.unsafe_get dot (Array.unsafe_get fl idx)
    done
  done;
  !pap

let run_tiled_st st (sched : Reorder.Schedule.t) ~steps =
  check_chain ~who:"Cg.run_tiled" sched;
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m; st.n |])
  then invalid_arg "Cg.run_tiled: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Cg.run_tiled";
  let left = st.left and right = st.right and w = st.w in
  let p = st.p and q = st.q and x = st.x and r = st.r in
  let diag = st.diag and dot = st.dot in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    let alpha = st.alpha in
    for t = 0 to n_tiles - 1 do
      for c = 0 to 2 do
        let row = (t * 3) + c in
        let lo = Array.unsafe_get rp row
        and hi = Array.unsafe_get rp (row + 1) in
        match c with
        | 0 ->
          for idx = lo to hi - 1 do
            let i = Array.unsafe_get fl idx in
            Array.unsafe_set q i
              (Array.unsafe_get diag i *. Array.unsafe_get p i)
          done
        | 1 ->
          for idx = lo to hi - 1 do
            let j = Array.unsafe_get fl idx in
            let l = Array.unsafe_get left j and rr = Array.unsafe_get right j in
            let wj = Array.unsafe_get w j in
            Array.unsafe_set q l
              (Array.unsafe_get q l +. (wj *. Array.unsafe_get p rr));
            Array.unsafe_set q rr
              (Array.unsafe_get q rr +. (wj *. Array.unsafe_get p l))
          done
        | _ ->
          for idx = lo to hi - 1 do
            let k = Array.unsafe_get fl idx in
            let pk = Array.unsafe_get p k and qk = Array.unsafe_get q k in
            Array.unsafe_set dot k (pk *. qk);
            Array.unsafe_set x k (Array.unsafe_get x k +. (alpha *. pk));
            let rk = Array.unsafe_get r k -. (alpha *. qk) in
            Array.unsafe_set r k rk;
            Array.unsafe_set p k (rk +. (beta *. pk))
          done
      done
    done;
    fold_alpha st (pap_of_schedule st sched)
  done

(* Tier A shape-specialized twin: streams the run-length index; same
   iterations in the same order, so bitwise [run_tiled_st]. *)
let run_shaped_st st (sched : Reorder.Schedule.t) (shape : Reorder.Shape.t)
    ~steps =
  check_chain ~who:"Cg.run_shaped" sched;
  if not (Reorder.Shape.for_schedule shape sched) then
    invalid_arg "Cg.run_shaped: shape built from a different schedule";
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m; st.n |])
  then invalid_arg "Cg.run_shaped: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Cg.run_shaped";
  let left = st.left and right = st.right and w = st.w in
  let p = st.p and q = st.q and x = st.x and r = st.r in
  let diag = st.diag and dot = st.dot in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let rq = Reorder.Shape.run_ptr shape in
  let rlo = Reorder.Shape.run_lo shape in
  let rln = Reorder.Shape.run_len shape in
  for _s = 1 to steps do
    let alpha = st.alpha in
    for t = 0 to n_tiles - 1 do
      for c = 0 to 2 do
        let row = (t * 3) + c in
        let klo = Array.unsafe_get rq row
        and khi = Array.unsafe_get rq (row + 1) in
        match c with
        | 0 ->
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for i = lo to hi do
              Array.unsafe_set q i
                (Array.unsafe_get diag i *. Array.unsafe_get p i)
            done
          done
        | 1 ->
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for j = lo to hi do
              let l = Array.unsafe_get left j
              and rr = Array.unsafe_get right j in
              let wj = Array.unsafe_get w j in
              Array.unsafe_set q l
                (Array.unsafe_get q l +. (wj *. Array.unsafe_get p rr));
              Array.unsafe_set q rr
                (Array.unsafe_get q rr +. (wj *. Array.unsafe_get p l))
            done
          done
        | _ ->
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for i = lo to hi do
              let pk = Array.unsafe_get p i and qk = Array.unsafe_get q i in
              Array.unsafe_set dot i (pk *. qk);
              Array.unsafe_set x i (Array.unsafe_get x i +. (alpha *. pk));
              let rk = Array.unsafe_get r i -. (alpha *. qk) in
              Array.unsafe_set r i rk;
              Array.unsafe_set p i (rk +. (beta *. pk))
            done
          done
      done
    done;
    fold_alpha st (pap_of_schedule st sched)
  done

(* Parallel tiled executor: chain position 1 is the SpMV scatter
   reduction. [stash] computes each interaction's two contributions
   (w*p[r] toward the left slot, w*p[l] toward the right slot) — pure
   reads of p, which only S3 writes — and [apply] folds them into q
   per datum in serial order, so parallel execution is bitwise the
   serial walk. The dependent-reduction epilogue forces one pool
   dispatch per step: alpha must be refreshed (serially, in schedule
   order) between consecutive chain walks, so steps cannot be batched
   inside the engine. *)
let plan_par_st st ~pool sched ~level_of =
  check_chain ~who:"Cg.plan_par" sched;
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m; st.n |])
  then invalid_arg "Cg.plan_par: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Cg.plan_par";
  let left = st.left and right = st.right and w = st.w in
  let p = st.p and q = st.q and x = st.x and r = st.r in
  let diag = st.diag and dot = st.dot in
  let gl = Array.make st.m 0.0 in
  let gr = Array.make st.m 0.0 in
  let exec =
    Rtrt_par.Exec.make ~pool ~sched ~level_of
      ~is_reduction:(fun c -> c mod 3 = 1)
      ~left ~right ~n_data:st.n
  in
  let par_sched = Rtrt_par.Exec.schedule exec in
  let body ~pos items lo hi =
    match pos mod 3 with
    | 0 ->
      for idx = lo to hi - 1 do
        let i = Array.unsafe_get items idx in
        Array.unsafe_set q i (Array.unsafe_get diag i *. Array.unsafe_get p i)
      done
    | 1 ->
      for idx = lo to hi - 1 do
        let j = Array.unsafe_get items idx in
        let l = Array.unsafe_get left j and rr = Array.unsafe_get right j in
        let wj = Array.unsafe_get w j in
        Array.unsafe_set q l
          (Array.unsafe_get q l +. (wj *. Array.unsafe_get p rr));
        Array.unsafe_set q rr
          (Array.unsafe_get q rr +. (wj *. Array.unsafe_get p l))
      done
    | _ ->
      let alpha = st.alpha in
      for idx = lo to hi - 1 do
        let k = Array.unsafe_get items idx in
        let pk = Array.unsafe_get p k and qk = Array.unsafe_get q k in
        Array.unsafe_set dot k (pk *. qk);
        Array.unsafe_set x k (Array.unsafe_get x k +. (alpha *. pk));
        let rk = Array.unsafe_get r k -. (alpha *. qk) in
        Array.unsafe_set r k rk;
        Array.unsafe_set p k (rk +. (beta *. pk))
      done
  in
  let stash ~pos:_ items lo hi =
    for idx = lo to hi - 1 do
      let j = Array.unsafe_get items idx in
      let l = Array.unsafe_get left j and rr = Array.unsafe_get right j in
      let wj = Array.unsafe_get w j in
      Array.unsafe_set gl j (wj *. Array.unsafe_get p rr);
      Array.unsafe_set gr j (wj *. Array.unsafe_get p l)
    done
  in
  let apply ~pos:_ ~datum refs lo hi =
    for k = lo to hi - 1 do
      let rv = refs.(k) in
      let j = rv lsr 1 in
      if rv land 1 = 0 then q.(datum) <- q.(datum) +. gl.(j)
      else q.(datum) <- q.(datum) +. gr.(j)
    done
  in
  {
    Kernel.par_sched;
    par_run =
      (fun ?batch ?tier ?profile ~steps () ->
        (* One engine dispatch per step: the scalar epilogue is a
           cross-tile dependence the step batching may not elide. *)
        ignore batch;
        for _s = 1 to steps do
          Rtrt_par.Exec.run ?tier ?profile exec ~steps:1 ~body ~stash ~apply;
          fold_alpha st (pap_of_schedule st par_sched)
        done);
    par_decide =
      (fun ~serial_ns_per_step ~batch:_ ->
        (* Batching is unavailable (see par_run), so the decision is
           always evaluated at batch 1. *)
        Rtrt_par.Exec.decide exec ~serial_ns_per_step ~batch:1);
  }

(* Traced twins: one touch per distinct array-element reference,
   including the epilogue's serial read-back of the dot partials. *)
let trace_i ~touch i =
  touch 4 i; (* diag *)
  touch 0 i; (* p *)
  touch 1 i (* q *)

let trace_j ~touch ~touch_inter left right j =
  touch_inter 0 j;
  touch_inter 1 j;
  touch_inter 2 j;
  let l = left.(j) and r = right.(j) in
  touch 0 l; touch 0 r;
  touch 1 l; touch 1 r

let trace_k ~touch k =
  touch 0 k; touch 1 k;
  touch 2 k; touch 3 k;
  touch 5 k (* dot *)

let make_touch ~layout ~access names =
  let addr =
    Array.of_list (List.map (Cachesim.Layout.addresser layout) names)
  in
  fun a i -> access (addr.(a) i)

let run_traced_st st ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  for _s = 1 to steps do
    for i = 0 to st.n - 1 do
      trace_i ~touch i
    done;
    for j = 0 to st.m - 1 do
      trace_j ~touch ~touch_inter st.left st.right j
    done;
    for k = 0 to st.n - 1 do
      trace_k ~touch k
    done;
    for k = 0 to st.n - 1 do
      touch 5 k (* epilogue dot fold *)
    done
  done

let run_tiled_traced_st st sched ~steps ~layout ~access =
  check_chain ~who:"Cg.run_tiled_traced" sched;
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to 2 do
        let row = (t * 3) + c in
        let lo = rp.(row) and hi = rp.(row + 1) in
        match c with
        | 0 -> for i = lo to hi - 1 do trace_i ~touch fl.(i) done
        | 1 ->
          for i = lo to hi - 1 do
            trace_j ~touch ~touch_inter st.left st.right fl.(i)
          done
        | _ -> for i = lo to hi - 1 do trace_k ~touch fl.(i) done
      done
    done;
    for t = 0 to n_tiles - 1 do
      let row = (t * 3) + 2 in
      for i = rp.(row) to rp.(row + 1) - 1 do
        touch 5 fl.(i) (* epilogue dot fold, schedule order *)
      done
    done
  done

let rec make st =
  let access = Reorder.Access.of_pairs ~n_data:st.n st.left st.right in
  (* Same chain shape as moldyn: both dependence sets of the 3-loop
     chain are constrained by left/right (Section 6 symmetric
     dependences), so conn.(1) doubles as loop 0's successor set. *)
  let chain_of_access acc =
    Reorder.Sparse_tile.make_chain
      ~loop_sizes:[| st.n; st.m; st.n |]
      ~conn:[| acc; Reorder.Access.transpose acc |]
  in
  let apply_data_perm sigma =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.remap_values sigma st.left;
        right = Reorder.Perm.remap_values sigma st.right;
        p = Reorder.Perm.apply_to_float_array sigma st.p;
        q = Reorder.Perm.apply_to_float_array sigma st.q;
        x = Reorder.Perm.apply_to_float_array sigma st.x;
        r = Reorder.Perm.apply_to_float_array sigma st.r;
        diag = Reorder.Perm.apply_to_float_array sigma st.diag;
        dot = Reorder.Perm.apply_to_float_array sigma st.dot;
      }
  in
  let apply_iter_perm delta =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.apply_to_array delta st.left;
        right = Reorder.Perm.apply_to_array delta st.right;
        w = Reorder.Perm.apply_to_float_array delta st.w;
      }
  in
  {
    Kernel.name = "cg";
    n_nodes = st.n;
    n_inter = st.m;
    node_array_names;
    inter_array_names;
    access;
    loop_sizes = [| st.n; st.m; st.n |];
    seed_loop = 1;
    chain_of_access;
    wrap_conn_of_access = (fun _acc -> Reorder.Access.identity st.n);
    symmetric_backward = [ (0, 1) ];
    apply_data_perm;
    apply_iter_perm;
    run = (fun ~steps -> run_plain st ~steps);
    run_tiled = (fun sched ~steps -> run_tiled_st st sched ~steps);
    run_tiled_shaped =
      (fun sched shape ~steps -> run_shaped_st st sched shape ~steps);
    exec_arrays =
      (fun () ->
        ( [| st.left; st.right |],
          [| st.p; st.q; st.x; st.r; st.diag; st.dot; st.w |] ));
    run_traced =
      (fun ~steps ~layout ~access -> run_traced_st st ~steps ~layout ~access);
    run_tiled_traced =
      (fun sched ~steps ~layout ~access ->
        run_tiled_traced_st st sched ~steps ~layout ~access);
    plan_par =
      (fun ~pool sched ~level_of -> plan_par_st st ~pool sched ~level_of);
    snapshot =
      (fun () ->
        [
          ("p", Array.copy st.p);
          ("q", Array.copy st.q);
          ("x", Array.copy st.x);
          ("r", Array.copy st.r);
          ("diag", Array.copy st.diag);
          ("dot", Array.copy st.dot);
        ]);
    copy =
      (fun () ->
        make
          {
            st with
            endpoints_ok = false;
            left = Array.copy st.left;
            right = Array.copy st.right;
            w = Array.copy st.w;
            p = Array.copy st.p;
            q = Array.copy st.q;
            x = Array.copy st.x;
            r = Array.copy st.r;
            diag = Array.copy st.diag;
            dot = Array.copy st.dot;
          });
  }

(* Deterministic initial conditions derived from ids (same scheme as
   the other kernels), with the diagonal dominating the off-diagonal
   weights so the iteration contracts instead of overflowing. *)
let init_value ~salt i =
  let h = ((i + 1) * 2654435761) land 0xFFFFFF in
  float_of_int ((h lxor salt) land 0xFFFF) /. 65536.0

let of_dataset (d : Datagen.Dataset.t) =
  let n = d.Datagen.Dataset.n_nodes in
  let m = Datagen.Dataset.n_interactions d in
  make
    {
      n;
      m;
      left = Array.copy d.Datagen.Dataset.left;
      right = Array.copy d.Datagen.Dataset.right;
      w = Array.init m (fun j -> 0.01 *. init_value ~salt:11 j);
      p = Array.init n (init_value ~salt:1);
      q = Array.make n 0.0;
      x = Array.make n 0.0;
      r = Array.init n (init_value ~salt:2);
      diag = Array.init n (fun i -> 1.0 +. init_value ~salt:7 i);
      dot = Array.make n 0.0;
      alpha = 0.1;
      endpoints_ok = false;
    }
