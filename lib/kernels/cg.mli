(** A CG-style dependent-reduction kernel (SpMV + dot-product
    reduction, after Yang et al.) as a {!Kernel.t}: 6 node arrays
    (48 B/node) plus per-interaction weights. Each step's dot product
    is folded serially in schedule order after the tile walk and feeds
    the next step's scalar, so the reduction crosses tile boundaries;
    tiled executors require the plain 3-loop chain (time-step tiling
    raises [Invalid_argument]). *)

(** Build the kernel over a dataset's interaction list, with
    deterministic initial conditions derived from node/interaction
    ids. *)
val of_dataset : Datagen.Dataset.t -> Kernel.t
