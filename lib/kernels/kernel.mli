(** The uniform executor interface over the benchmarks.

    A kernel owns its data and index arrays; the composition framework
    transforms it through [apply_data_perm] (a data reordering R) and
    [apply_iter_perm] (an iteration reordering T of the interaction
    loop). Executors come in plain (Figure 13) and sparse-tiled
    (Figure 14) forms, each with a traced twin feeding the cache
    model. *)

(** A parallel tiled executor instance: the level-major renumbered
    schedule it executes (the serial twin for comparison) and the
    run function. *)
type par_exec = {
  par_sched : Reorder.Schedule.t;
  par_run :
    ?batch:int ->
    ?tier:Rtrt_par.Exec.tier ->
    ?profile:bool ->
    steps:int ->
    unit ->
    unit;
      (** [batch] steps per pool dispatch (default 1); [tier] the
          execution strategy (default [Parallel]); [profile] forces
          pool accounting for the run. *)
  par_decide :
    serial_ns_per_step:float -> batch:int -> Rtrt_par.Exec.decision;
      (** The engine's auto-fallback tier model, for selecting [tier]. *)
}

type t = {
  name : string;
  n_nodes : int;
  n_inter : int;
  node_array_names : string list;
  inter_array_names : string list;
  access : Reorder.Access.t;
      (** the interaction loop's access to the node space (current) *)
  loop_sizes : int array;
  seed_loop : int; (** the interaction loop's position in the chain *)
  chain_of_access : Reorder.Access.t -> Reorder.Sparse_tile.chain;
  wrap_conn_of_access : Reorder.Access.t -> Reorder.Access.t;
      (** cross-time-step connectivity: for each first-loop iteration at
          step s+1, the last-loop iterations at step s it shares data
          with — lets sparse tiling grow across the outer loop *)
  symmetric_backward : (int * int) list;
      (** [(backward_loop, conn_index)]: the successor connectivity for
          growing [backward_loop] equals [chain.conn.(conn_index)]
          (Section 6 symmetric dependences) *)
  apply_data_perm : Reorder.Perm.t -> t;
  apply_iter_perm : Reorder.Perm.t -> t;
  run : steps:int -> unit;
  run_tiled : Reorder.Schedule.t -> steps:int -> unit;
  run_tiled_shaped :
    Reorder.Schedule.t -> Reorder.Shape.t -> steps:int -> unit;
      (** Tier A shape-specialized executor: streams the run-length
          index built by {!Reorder.Shape.analyze} from this exact
          schedule value; bitwise identical to [run_tiled]. *)
  exec_arrays : unit -> int array array * float array array;
      (** The kernel's index arrays and float arrays (not copies) in
          the Tier B emitter's documented order; see
          [Compose.Specialize]. *)
  run_traced :
    steps:int -> layout:Cachesim.Layout.t -> access:(int -> unit) -> unit;
  run_tiled_traced :
    Reorder.Schedule.t ->
    steps:int ->
    layout:Cachesim.Layout.t ->
    access:(int -> unit) ->
    unit;
  plan_par :
    pool:Rtrt_par.Pool.t ->
    Reorder.Schedule.t ->
    level_of:int array ->
    par_exec;
      (** Build a parallel executor for a tiled schedule from the tile
          DAG levelization [level_of]; [par_run] is bitwise identical
          to [run_tiled] on [par_sched]. *)
  snapshot : unit -> (string * float array) list;
  copy : unit -> t;
}

val endpoint_scan_skipped : unit -> unit
(** Bump the [plancache.endpoint_scan_skips] counter: a kernel skipped
    its endpoint-range scan because the same state already passed it. *)

(** The paper's memory layout: inter-array regrouping over the node
    arrays; index arrays separate. *)
val layout : t -> Cachesim.Layout.t

(** No regrouping (each array separate), for the regrouping ablation. *)
val layout_separate : t -> Cachesim.Layout.t

(** Bytes of node data per node (72 for moldyn, as the paper quotes). *)
val bytes_per_node : t -> int

(** Relative comparison of snapshots (reductions are reassociated by
    the transformations, so bitwise equality is not expected). *)
val snapshots_close :
  ?rtol:float ->
  (string * float array) list ->
  (string * float array) list ->
  bool

(** Bitwise snapshot equality (NaN-safe: compares IEEE bit patterns),
    for checking that parallel execution reproduces serial execution
    exactly. *)
val snapshots_equal_bits :
  (string * float array) list -> (string * float array) list -> bool

(** Un-permute a snapshot taken after data reordering [sigma] back to
    original numbering. *)
val unpermute_snapshot :
  Reorder.Perm.t -> (string * float array) list -> (string * float array) list
