(** The paper's three benchmarks as loop chains over flat float arrays,
    each with plain, sparse-tiled, and trace-emitting executors, plus a
    Gauss-Seidel smoother for the sparse-tiling generality claim. *)

module Kernel = Kernel
module Moldyn = Moldyn
module Nbf = Nbf
module Irreg = Irreg
module Cg = Cg
module Gauss_seidel = Gauss_seidel

(** Benchmark constructors by name. *)
let by_name = function
  | "moldyn" -> Some Moldyn.of_dataset
  | "nbf" -> Some Nbf.of_dataset
  | "irreg" -> Some Irreg.of_dataset
  | "cg" -> Some Cg.of_dataset
  | _ -> None

let all_names = [ "irreg"; "nbf"; "moldyn"; "cg" ]
