(* The irreg benchmark (irregular CFD-style edge/node kernel from the
   Han-Tseng suite): only 2 node arrays (16 bytes per node) and a
   per-edge weight array, so spatial reordering has the most room to
   help (many nodes per cache line).

   Loop chain per time step:
     loop 0 (j): edge flux    y[l] += w*(x[l]-x[r]); y[r] += w*(x[r]-x[l])
     loop 1 (k): node update  x[k] += c * y[k] *)

type state = {
  n : int;
  m : int;
  left : int array;
  right : int array;
  w : float array; (* per-edge weights: follow iteration reorderings *)
  x : float array;
  y : float array;
  (* Endpoint-scan memo: one successful scan validates every later
     executor run on this state (index arrays are replaced, never
     mutated in place, by transformations). *)
  mutable endpoints_ok : bool;
}

let relax = 0.001

let node_array_names = [ "x"; "y" ]
let inter_array_names = [ "left"; "right"; "w" ]

let flux_j st j =
  let l = st.left.(j) and r = st.right.(j) in
  let d = st.w.(j) *. (st.x.(l) -. st.x.(r)) in
  st.y.(l) <- st.y.(l) +. d;
  st.y.(r) <- st.y.(r) -. d

let update_k st k =
  st.x.(k) <- st.x.(k) +. (relax *. st.y.(k))

let run_plain st ~steps =
  for _s = 1 to steps do
    for j = 0 to st.m - 1 do
      flux_j st j
    done;
    for k = 0 to st.n - 1 do
      update_k st k
    done
  done

let check_endpoints ~who st =
  if Array.length st.w <> st.m then
    invalid_arg (who ^ ": weight array size mismatch");
  for j = 0 to st.m - 1 do
    let l = st.left.(j) and r = st.right.(j) in
    if l < 0 || l >= st.n || r < 0 || r >= st.n then
      invalid_arg (who ^ ": interaction endpoint out of range")
  done

let check_endpoints_cached st ~who =
  if st.endpoints_ok then Kernel.endpoint_scan_skipped ()
  else begin
    check_endpoints ~who st;
    st.endpoints_ok <- true
  end

(* Unsafe twins of the loop bodies, sound only after [check_fits] and
   the endpoint scan have validated every index source. *)
let flux_j_u st j =
  let l = Array.unsafe_get st.left j and r = Array.unsafe_get st.right j in
  let d =
    Array.unsafe_get st.w j
    *. (Array.unsafe_get st.x l -. Array.unsafe_get st.x r)
  in
  Array.unsafe_set st.y l (Array.unsafe_get st.y l +. d);
  Array.unsafe_set st.y r (Array.unsafe_get st.y r -. d)

let update_k_u st k =
  Array.unsafe_set st.x k
    (Array.unsafe_get st.x k +. (relax *. Array.unsafe_get st.y k))

(* Chain position c executes loop (c mod 2): a 2-loop schedule is one
   time step, a 2S-loop schedule is S time steps (time-step tiling).
   Validated-once-then-unsafe: [check_fits] + the endpoint scan, then
   the flat schedule streams with [Array.unsafe_get]. *)
let run_tiled_st st (sched : Reorder.Schedule.t) ~steps =
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.m; st.n |]) then
    invalid_arg "Irreg.run_tiled: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Irreg.run_tiled";
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let lo = Array.unsafe_get rp r and hi = Array.unsafe_get rp (r + 1) in
        if c mod 2 = 0 then
          for idx = lo to hi - 1 do
            flux_j_u st (Array.unsafe_get fl idx)
          done
        else
          for idx = lo to hi - 1 do
            update_k_u st (Array.unsafe_get fl idx)
          done
      done
    done
  done

(* Tier A shape-specialized twin of [run_tiled_st]: streams each row's
   run-length index as [for i = lo to hi] ranges; bitwise identical by
   construction (see Reorder.Shape). *)
let run_shaped_st st (sched : Reorder.Schedule.t) (shape : Reorder.Shape.t)
    ~steps =
  if not (Reorder.Shape.for_schedule shape sched) then
    invalid_arg "Irreg.run_shaped: shape built from a different schedule";
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.m; st.n |]) then
    invalid_arg "Irreg.run_shaped: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Irreg.run_shaped";
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rq = Reorder.Shape.run_ptr shape in
  let rlo = Reorder.Shape.run_lo shape in
  let rln = Reorder.Shape.run_len shape in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let klo = Array.unsafe_get rq r and khi = Array.unsafe_get rq (r + 1) in
        if c mod 2 = 0 then
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for j = lo to hi do
              flux_j_u st j
            done
          done
        else
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for i = lo to hi do
              update_k_u st i
            done
          done
      done
    done
  done

(* Parallel tiled executor: the flux positions (c mod 2 = 0) are
   reductions over y. The stashed flux w*(x[l]-x[r]) is a pure
   function of w and x, read-only during the position, so the ordered
   apply reproduces the serial float operations bit for bit. *)
let plan_par_st st ~pool sched ~level_of =
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.m; st.n |]) then
    invalid_arg "Irreg.plan_par: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Irreg.plan_par";
  let dj = Array.make st.m 0.0 in
  let exec =
    Rtrt_par.Exec.make ~pool ~sched ~level_of
      ~is_reduction:(fun c -> c mod 2 = 0)
      ~left:st.left ~right:st.right ~n_data:st.n
  in
  let body ~pos items lo hi =
    if pos mod 2 = 0 then
      for idx = lo to hi - 1 do
        flux_j_u st (Array.unsafe_get items idx)
      done
    else
      for idx = lo to hi - 1 do
        update_k_u st (Array.unsafe_get items idx)
      done
  in
  let stash ~pos:_ items lo hi =
    for idx = lo to hi - 1 do
      let j = Array.unsafe_get items idx in
      let l = Array.unsafe_get st.left j and r = Array.unsafe_get st.right j in
      Array.unsafe_set dj j
        (Array.unsafe_get st.w j
        *. (Array.unsafe_get st.x l -. Array.unsafe_get st.x r))
    done
  in
  let apply ~pos:_ ~datum refs lo hi =
    let y = st.y in
    for k = lo to hi - 1 do
      let rv = refs.(k) in
      let j = rv lsr 1 in
      if rv land 1 = 0 then y.(datum) <- y.(datum) +. dj.(j)
      else y.(datum) <- y.(datum) -. dj.(j)
    done
  in
  {
    Kernel.par_sched = Rtrt_par.Exec.schedule exec;
    par_run =
      (fun ?batch ?tier ?profile ~steps () ->
        Rtrt_par.Exec.run ?batch ?tier ?profile exec ~steps ~body ~stash
          ~apply);
    par_decide =
      (fun ~serial_ns_per_step ~batch ->
        Rtrt_par.Exec.decide exec ~serial_ns_per_step ~batch);
  }

let trace_j ~touch ~touch_inter left right j =
  touch_inter 0 j;
  touch_inter 1 j;
  touch_inter 2 j;
  let l = left.(j) and r = right.(j) in
  touch 0 l; touch 0 r;
  touch 1 l; touch 1 r

let trace_k ~touch k =
  touch 0 k;
  touch 1 k

let make_touch ~layout ~access names =
  let addr = Array.of_list (List.map (Cachesim.Layout.addresser layout) names) in
  fun a i -> access (addr.(a) i)

let run_traced_st st ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  for _s = 1 to steps do
    for j = 0 to st.m - 1 do
      trace_j ~touch ~touch_inter st.left st.right j
    done;
    for k = 0 to st.n - 1 do
      trace_k ~touch k
    done
  done

(* Traced twin: same flat walk, every access bounds-checked. *)
let run_tiled_traced_st st sched ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let lo = rp.(r) and hi = rp.(r + 1) in
        if c mod 2 = 0 then
          for i = lo to hi - 1 do
            trace_j ~touch ~touch_inter st.left st.right fl.(i)
          done
        else for i = lo to hi - 1 do trace_k ~touch fl.(i) done
      done
    done
  done

let rec make st =
  let access = Reorder.Access.of_pairs ~n_data:st.n st.left st.right in
  (* Chain [j; k]: k-iterations depend on the j-iterations touching
     their node, i.e. the transpose of the j access. *)
  let chain_of_access acc =
    Reorder.Sparse_tile.make_chain
      ~loop_sizes:[| st.m; st.n |]
      ~conn:[| Reorder.Access.transpose acc |]
  in
  let apply_data_perm sigma =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.remap_values sigma st.left;
        right = Reorder.Perm.remap_values sigma st.right;
        x = Reorder.Perm.apply_to_float_array sigma st.x;
        y = Reorder.Perm.apply_to_float_array sigma st.y;
      }
  in
  let apply_iter_perm delta =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.apply_to_array delta st.left;
        right = Reorder.Perm.apply_to_array delta st.right;
        w = Reorder.Perm.apply_to_float_array delta st.w;
      }
  in
  {
    Kernel.name = "irreg";
    n_nodes = st.n;
    n_inter = st.m;
    node_array_names;
    inter_array_names;
    access;
    loop_sizes = [| st.m; st.n |];
    seed_loop = 0;
    chain_of_access;
    wrap_conn_of_access = (fun acc -> acc);
    symmetric_backward = [];
    apply_data_perm;
    apply_iter_perm;
    run = (fun ~steps -> run_plain st ~steps);
    run_tiled = (fun sched ~steps -> run_tiled_st st sched ~steps);
    run_tiled_shaped =
      (fun sched shape ~steps -> run_shaped_st st sched shape ~steps);
    exec_arrays =
      (fun () -> ([| st.left; st.right |], [| st.w; st.x; st.y |]));
    run_traced =
      (fun ~steps ~layout ~access -> run_traced_st st ~steps ~layout ~access);
    run_tiled_traced =
      (fun sched ~steps ~layout ~access ->
        run_tiled_traced_st st sched ~steps ~layout ~access);
    plan_par =
      (fun ~pool sched ~level_of -> plan_par_st st ~pool sched ~level_of);
    snapshot =
      (fun () -> [ ("x", Array.copy st.x); ("y", Array.copy st.y) ]);
    copy =
      (fun () ->
        make
          {
            st with
            endpoints_ok = false;
            left = Array.copy st.left;
            right = Array.copy st.right;
            w = Array.copy st.w;
            x = Array.copy st.x;
            y = Array.copy st.y;
          });
  }

let init_value ~salt i =
  let h = ((i + 1) * 2654435761) land 0xFFFFFF in
  float_of_int ((h lxor salt) land 0xFFFF) /. 65536.0

let of_dataset (d : Datagen.Dataset.t) =
  let n = d.Datagen.Dataset.n_nodes in
  let m = Datagen.Dataset.n_interactions d in
  make
    {
      n;
      m;
      left = Array.copy d.Datagen.Dataset.left;
      right = Array.copy d.Datagen.Dataset.right;
      w = Array.init m (init_value ~salt:21);
      x = Array.init n (init_value ~salt:22);
      y = Array.make n 0.0;
      endpoints_ok = false;
    }
